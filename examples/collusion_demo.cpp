// Collusion: why tau+1 fragments are necessary and sufficient (Section 6).
//
// Two runs with the same workload:
//   1. Plain CONGOS (tau = 1, two fragments per partition) while a coalition
//      of 2 curious processes pools everything it sees. The coalition CAN
//      reconstruct rumors - two fragments suffice, one per group, and a
//      2-coalition spanning both groups of some partition gets both. This is
//      exactly the attack the tau parameter exists for.
//   2. Collusion-tolerant CONGOS with tau = 2 (three fragments over
//      c*tau*log n random partitions). The same coalition now learns at most
//      two of the three groups' fragments of any partition: reconstruction
//      impossible, machine-checked by the coalition auditor.
#include <cstdio>
#include <memory>

#include "adversary/adversary.h"
#include "adversary/workload.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "congos/congos_process.h"
#include "sim/engine.h"

using namespace congos;

namespace {

struct RunOutcome {
  std::uint64_t injected = 0;
  std::uint64_t breakable_by_2 = 0;  // rumors some 2-coalition could read
  std::size_t weakest = SIZE_MAX;    // smallest breaking coalition overall
  bool qod_ok = false;
  std::uint64_t direct_leaks = 0;
};

RunOutcome run_with_tau(std::uint32_t tau, std::uint64_t seed) {
  constexpr std::size_t kN = 64;
  core::CongosConfig ccfg;
  ccfg.tau = tau;
  ccfg.allow_degenerate = false;  // keep the pipeline on at this small n
  auto cfg = std::make_shared<const core::CongosConfig>(ccfg);
  auto partitions = core::CongosProcess::build_partitions(kN, *cfg);

  audit::DeliveryAuditor qod(kN);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(seed);
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, cfg, partitions,
                                                          seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  audit::ConfidentialityAuditor conf(kN, partitions.get());
  engine.add_observer(&conf);
  engine.add_observer(&qod);

  adversary::Composite adv;
  adversary::Continuous::Options w;
  w.inject_prob = 0.01;
  w.dest_min = 2;
  w.dest_max = 4;
  w.deadlines = {64};
  w.last_injection_round = 256;
  adv.add(std::make_unique<adversary::Continuous>(w));
  engine.set_adversary(&adv);
  engine.run(256 + 64 + 2);

  RunOutcome out;
  out.injected = qod.injected_count();
  out.qod_ok = qod.finalize(engine.now()).ok();
  out.direct_leaks = conf.leaks();
  out.weakest = conf.weakest_rumor_coalition();
  // Count rumors breakable by some coalition of size <= 2.
  for (std::uint64_t seq = 1; seq <= 32; ++seq) {
    for (ProcessId src = 0; src < kN; ++src) {
      if (conf.breakable_by_coalition(RumorUid{src, seq}, 2)) ++out.breakable_by_2;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("-- run 1: plain CONGOS (tau = 1) vs a 2-process coalition --\n");
  const auto weak = run_with_tau(1, 42);
  std::printf("rumors injected                  : %llu\n",
              static_cast<unsigned long long>(weak.injected));
  std::printf("delivery (QoD)                   : %s\n", weak.qod_ok ? "ok" : "FAILED");
  std::printf("single-process leaks             : %llu\n",
              static_cast<unsigned long long>(weak.direct_leaks));
  std::printf("rumors a 2-coalition could read  : %llu  <-- tau=1 tolerates only 1\n",
              static_cast<unsigned long long>(weak.breakable_by_2));

  std::printf("\n-- run 2: collusion-tolerant CONGOS (tau = 2), same coalition --\n");
  const auto strong = run_with_tau(2, 42);
  std::printf("rumors injected                  : %llu\n",
              static_cast<unsigned long long>(strong.injected));
  std::printf("delivery (QoD)                   : %s\n",
              strong.qod_ok ? "ok" : "FAILED");
  std::printf("single-process leaks             : %llu\n",
              static_cast<unsigned long long>(strong.direct_leaks));
  std::printf("rumors a 2-coalition could read  : %llu\n",
              static_cast<unsigned long long>(strong.breakable_by_2));
  if (strong.weakest == SIZE_MAX) {
    std::printf("smallest breaking coalition      : none exists\n");
  } else {
    std::printf("smallest breaking coalition      : %zu (> tau = 2)\n",
                strong.weakest);
  }

  const bool ok = weak.qod_ok && strong.qod_ok && weak.direct_leaks == 0 &&
                  strong.direct_leaks == 0 && weak.breakable_by_2 > 0 &&
                  strong.breakable_by_2 == 0;
  std::printf("\n%s\n",
              ok ? "OK: tau = 1 falls to a pair of colluders; tau = 2 does not."
                 : "UNEXPECTED: see counters above.");
  return ok ? 0 : 1;
}
