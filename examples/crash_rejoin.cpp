// Crash and rejoin: a CONGOS node is killed mid-run and resumed from its
// durable checkpoint, and nobody can tell (DESIGN.md section 14).
//
// Four nodes gossip over the deterministic in-process transport. Node 2 -
// a rumor destination - journals every state mutation; halfway through
// its delivery window we destroy the runtime object (the in-process
// equivalent of SIGKILL: no flush, no goodbye), rebuild a fresh one from
// the checkpoint, and let the run finish. A twin cluster that never
// crashed runs alongside; the demo prints both sides' counters and
// asserts they match - the checkpoint is a replay journal, so resuming
// reproduces the pre-crash state byte for byte, half-built fragment
// pipelines and all.
//
// The real-wire version of this demo is `congos_d --state/--resume` under
// harness::run_cluster's SIGKILL schedule (EXPERIMENTS.md E18).
#include <cstdio>
#include <memory>
#include <vector>

#include "net/checkpoint.h"
#include "net/runtime.h"
#include "net/sim_transport.h"

using namespace congos;

namespace {

constexpr std::size_t kN = 4;
constexpr std::uint64_t kSeed = 42;
constexpr Round kRounds = 48;
constexpr ProcessId kVictim = 2;

net::NodeConfig node_cfg(ProcessId p) {
  net::NodeConfig cfg;
  cfg.id = p;
  cfg.n = kN;
  cfg.seed = kSeed;
  cfg.max_rounds = kRounds;
  cfg.journal = true;  // checkpoint in memory, no state file needed
  cfg.congos.allow_degenerate = false;
  cfg.congos.retransmit.enabled = true;
  cfg.congos.retransmit.max_link_delay = 1;
  return cfg;
}

struct Feed final : net::DatagramSink {
  net::NodeRuntime* rt = nullptr;
  void on_datagram(ProcessId from, std::span<const std::uint8_t> d) override {
    rt->handle_datagram(from, d);
  }
};

struct Cluster {
  net::SimLink link{kN};
  std::vector<std::unique_ptr<net::NodeRuntime>> nodes;

  Cluster() {
    for (ProcessId p = 0; p < kN; ++p) {
      nodes.push_back(
          std::make_unique<net::NodeRuntime>(node_cfg(p), &link.endpoint(p)));
      std::string err;
      if (!nodes.back()->start(&err)) {
        std::fprintf(stderr, "start failed: %s\n", err.c_str());
        std::exit(1);
      }
    }
    // One rumor from node 1 to node 2, deadline 40 rounds out.
    run_rounds(1);
    DynamicBitset dest(kN);
    dest.set(kVictim);
    nodes[1]->inject(/*seq=*/7, /*deadline=*/40, dest, {0xC0, 0xFF, 0xEE});
  }

  void run_rounds(Round count) {
    for (Round i = 0; i < count; ++i) {
      link.advance_round();
      const Round target = link.round();
      for (ProcessId p = 0; p < kN; ++p) {
        Feed feed;
        feed.rt = nodes[p].get();
        link.endpoint(p).poll(0, feed);
        nodes[p]->advance_to(target);
      }
    }
  }
};

}  // namespace

int main() {
  Cluster steady;   // never crashes
  Cluster chaotic;  // node 2 dies at round 16

  steady.run_rounds(kRounds - 1);

  chaotic.run_rounds(15);
  const net::NodeCheckpoint ck = chaotic.nodes[kVictim]->make_checkpoint();
  std::printf("round %lld: checkpointed node %u (%zu journal events), "
              "killing it\n",
              static_cast<long long>(ck.round), kVictim, ck.events.size());
  chaotic.nodes[kVictim].reset();  // SIGKILL, in-process flavor

  chaotic.nodes[kVictim] = std::make_unique<net::NodeRuntime>(
      node_cfg(kVictim), &chaotic.link.endpoint(kVictim));
  std::string err;
  if (!chaotic.nodes[kVictim]->resume(ck, &err)) {
    std::fprintf(stderr, "resume failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("node %u resumed at round %lld (resume_count=%u)\n", kVictim,
              static_cast<long long>(chaotic.nodes[kVictim]->resumed_at()),
              chaotic.nodes[kVictim]->resume_count());
  chaotic.run_rounds(kRounds - 16);

  bool identical = true;
  for (ProcessId p = 0; p < kN; ++p) {
    const auto& a = *steady.nodes[p];
    const auto& b = *chaotic.nodes[p];
    std::printf(
        "node %u  steady: deliveries=%llu frames=%llu   "
        "crashed-and-resumed: deliveries=%llu frames=%llu\n",
        p, static_cast<unsigned long long>(a.deliveries()),
        static_cast<unsigned long long>(a.frames_received()),
        static_cast<unsigned long long>(b.deliveries()),
        static_cast<unsigned long long>(b.frames_received()));
    identical = identical && a.deliveries() == b.deliveries() &&
                a.frames_received() == b.frames_received() &&
                a.now() == b.now() && b.healthy();
  }
  if (chaotic.nodes[kVictim]->deliveries() == 0) {
    std::fprintf(stderr, "FAIL: the rumor never arrived\n");
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: the crash was observable\n");
    return 1;
  }
  std::printf("crash was invisible: resumed cluster matches the twin that "
              "never died\n");
  return 0;
}
