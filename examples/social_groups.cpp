// Social-network groups: the scenario the paper's introduction motivates.
//
// A network of social-networking sites wants to share in-group statistics
// (say, average acquaintance counts) so that each figure reaches exactly the
// members of its group - colleagues but not competitors, a psychiatrist's
// patients but not everyone. Groups overlap, membership differs per rumor,
// and there is no stable group structure a key-tree scheme could amortize.
//
// This example builds overlapping "communities", has community members
// publish updates addressed to their own community, and shows that
// (a) members always receive the updates of each community they belong to,
// (b) no process ever learns an update of a community it does not belong
//     to - even though all 96 processes collaborate in carrying fragments.
#include <cstdio>
#include <memory>

#include "adversary/adversary.h"
#include "adversary/workload.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "congos/congos_process.h"
#include "sim/engine.h"

using namespace congos;

int main() {
  constexpr std::size_t kN = 96;
  constexpr std::size_t kCommunities = 6;
  constexpr Round kDeadline = 64;

  // Overlapping communities: community c holds every process p with
  // p % kCommunities == c, plus a band of "bridge" members shared with the
  // next community.
  std::vector<DynamicBitset> community(kCommunities, DynamicBitset(kN));
  for (ProcessId p = 0; p < kN; ++p) {
    community[p % kCommunities].set(p);
    if (p % 7 == 0) community[(p + 1) % kCommunities].set(p);  // bridges
  }

  core::CongosConfig ccfg;
  auto cfg = std::make_shared<const core::CongosConfig>(ccfg);
  auto partitions = core::CongosProcess::build_partitions(kN, *cfg);

  audit::DeliveryAuditor qod(kN);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(7);
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, cfg, partitions,
                                                          seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  audit::ConfidentialityAuditor conf(kN, partitions.get());
  engine.add_observer(&conf);
  engine.add_observer(&qod);

  // Workload: each round, with small probability, a community member
  // publishes an update addressed to its whole community.
  adversary::Composite adv;
  adversary::Continuous::Options w;
  w.inject_prob = 0.01;
  w.deadlines = {kDeadline};
  w.last_injection_round = 400;
  w.dest_gen = [&](sim::Engine& e, ProcessId p) {
    auto& rng = e.rng();
    // Pick one of p's communities.
    std::vector<std::size_t> mine;
    for (std::size_t c = 0; c < kCommunities; ++c) {
      if (community[c].test(p)) mine.push_back(c);
    }
    return community[mine[rng.next_below(mine.size())]];
  };
  adv.add(std::make_unique<adversary::Continuous>(w));
  engine.set_adversary(&adv);

  std::printf("simulating %zu processes, %zu overlapping communities...\n", kN,
              kCommunities);
  engine.run(400 + kDeadline + 2);

  const auto report = qod.finalize(engine.now());
  std::printf("\ncommunity updates published      : %llu\n",
              static_cast<unsigned long long>(qod.injected_count()));
  std::printf("member deliveries required       : %llu\n",
              static_cast<unsigned long long>(report.admissible_pairs));
  std::printf("delivered on time                : %llu (late: %llu, missing: %llu)\n",
              static_cast<unsigned long long>(report.delivered_on_time),
              static_cast<unsigned long long>(report.late),
              static_cast<unsigned long long>(report.missing));
  std::printf("cross-community leaks            : %llu\n",
              static_cast<unsigned long long>(conf.leaks()));
  std::printf("messages in the busiest round    : %llu\n",
              static_cast<unsigned long long>(engine.stats().max_per_round()));

  const bool ok = report.ok() && conf.leaks() == 0;
  std::printf("\n%s\n", ok ? "OK: every community kept its updates to itself."
                           : "FAILURE: see counters above.");
  return ok ? 0 : 1;
}
