// Quickstart: the smallest end-to-end CONGOS run.
//
// 64 processes; one confidential rumor is injected at process 0 with five
// destinations and a deadline of 128 rounds; we let the system run, then
// show that (a) every destination delivered the rumor on time, (b) nobody
// outside the destination set could have reconstructed it, and (c) how many
// messages that took compared to the rumor being broadcast naively.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "adversary/workload.h"
#include "harness/scenario.h"
#include "sim/rumor.h"

using namespace congos;

int main() {
  harness::ScenarioConfig cfg;
  cfg.n = 64;
  cfg.seed = 42;
  cfg.rounds = 640;
  cfg.protocol = harness::Protocol::kCongos;

  // A light continuous workload: each process injects a rumor with ~2%
  // probability per round, destinations drawn at random, deadline 128.
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.01;
  cfg.continuous.dest_min = 3;
  cfg.continuous.dest_max = 8;
  cfg.continuous.deadlines = {128};
  cfg.measure_from = 256;  // services need ~2/3 of a deadline of uptime

  std::printf("running CONGOS: n=%zu, %lld rounds, deadline 128...\n", cfg.n,
              static_cast<long long>(cfg.rounds));
  const auto r = harness::run_scenario(cfg);

  std::printf("\n-- delivery (Quality of Delivery, Definition 1) --\n");
  std::printf("rumors injected            : %llu\n",
              static_cast<unsigned long long>(r.injected));
  std::printf("admissible (rumor,dest)    : %llu\n",
              static_cast<unsigned long long>(r.qod.admissible_pairs));
  std::printf("delivered on time          : %llu\n",
              static_cast<unsigned long long>(r.qod.delivered_on_time));
  std::printf("late / missing / corrupted : %llu / %llu / %llu\n",
              static_cast<unsigned long long>(r.qod.late),
              static_cast<unsigned long long>(r.qod.missing),
              static_cast<unsigned long long>(r.qod.data_mismatches));
  std::printf("mean delivery latency      : %.1f rounds\n", r.qod.mean_latency);

  std::printf("\n-- confidentiality (Definition 2) --\n");
  std::printf("leaks (non-dest learned a rumor)   : %llu\n",
              static_cast<unsigned long long>(r.leaks));
  std::printf("foreign fragments (structural)     : %llu\n",
              static_cast<unsigned long long>(r.foreign_fragments));

  std::printf("\n-- cost --\n");
  std::printf("confirmed before deadline : %llu (fallback 'shoots': %llu)\n",
              static_cast<unsigned long long>(r.cg_confirmed),
              static_cast<unsigned long long>(r.cg_shoots));
  std::printf("max messages in a round   : %llu\n",
              static_cast<unsigned long long>(r.max_per_round));
  std::printf("mean messages per round   : %.1f\n", r.mean_per_round);

  const bool ok = r.qod.ok() && r.leaks == 0 && r.foreign_fragments == 0;
  std::printf("\n%s\n", ok ? "OK: confidential gossip delivered."
                           : "FAILURE: see counters above.");
  return ok ? 0 : 1;
}
