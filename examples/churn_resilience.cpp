// Churn resilience: CONGOS against the adaptive CRRI adversary.
//
// Three attack waves run against one long execution:
//   1. background crash/restart churn for the whole run;
//   2. an adaptive proxy-killer that crashes processes the moment they are
//      asked to act as a proxy (the Section-1 attack on cross-group relays);
//   3. a mass crash that leaves only a handful of survivors per group.
// The run then verifies the paper's promise: every rumor whose source and
// destination stayed continuously alive arrived by its deadline, and nothing
// leaked, no matter what the adversary did.
#include <cstdio>
#include <memory>

#include "adversary/adversary.h"
#include "adversary/patterns.h"
#include "adversary/workload.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "congos/congos_process.h"
#include "sim/engine.h"

using namespace congos;

int main() {
  constexpr std::size_t kN = 64;
  constexpr Round kDeadline = 64;
  constexpr Round kRounds = 512;

  core::CongosConfig ccfg;
  auto cfg = std::make_shared<const core::CongosConfig>(ccfg);
  auto partitions = core::CongosProcess::build_partitions(kN, *cfg);

  audit::DeliveryAuditor qod(kN);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(99);
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, cfg, partitions,
                                                          seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  audit::ConfidentialityAuditor conf(kN, partitions.get());
  engine.add_observer(&conf);
  engine.add_observer(&qod);

  adversary::Composite adv;

  // Workload.
  adversary::Continuous::Options w;
  w.inject_prob = 0.02;
  w.dest_min = 2;
  w.dest_max = 8;
  w.deadlines = {kDeadline};
  w.last_injection_round = kRounds - 1;
  adv.add(std::make_unique<adversary::Continuous>(w));

  // Wave 1: background churn.
  adversary::RandomChurn::Options churn;
  churn.crash_prob = 0.004;
  churn.restart_prob = 0.05;
  churn.min_alive = 8;
  adv.add(std::make_unique<adversary::RandomChurn>(churn));

  // Wave 2: adaptive proxy-killer.
  adversary::CrashOnService::Options killer;
  killer.target = sim::ServiceKind::kProxy;
  killer.per_round_budget = 2;
  killer.total_budget = 80;
  killer.restart_after = 20;
  killer.min_alive = 8;
  auto killer_ptr = std::make_unique<adversary::CrashOnService>(killer);
  auto* killer_raw = killer_ptr.get();
  adv.add(std::move(killer_ptr));

  // Wave 3: mass crash at round 300, sparing two survivors per bit-group.
  DynamicBitset survivors(kN);
  for (ProcessId p = 0; p < 16; ++p) survivors.set(p);
  adv.add(std::make_unique<adversary::MassCrash>(300, survivors));

  engine.set_adversary(&adv);
  std::printf("running %lld rounds of churn + adaptive attacks on %zu processes...\n",
              static_cast<long long>(kRounds), kN);
  engine.run(kRounds + kDeadline + 2);

  const auto report = qod.finalize(engine.now());
  std::printf("\ncrashes / restarts observed    : %llu / %llu\n",
              static_cast<unsigned long long>(qod.crash_count()),
              static_cast<unsigned long long>(qod.restart_count()));
  std::printf("adaptive proxy-kills           : %zu\n", killer_raw->crashes_caused());
  std::printf("rumors injected                : %llu\n",
              static_cast<unsigned long long>(qod.injected_count()));
  std::printf("admissible (rumor,dest) pairs  : %llu\n",
              static_cast<unsigned long long>(report.admissible_pairs));
  std::printf("delivered on time              : %llu (late %llu, missing %llu)\n",
              static_cast<unsigned long long>(report.delivered_on_time),
              static_cast<unsigned long long>(report.late),
              static_cast<unsigned long long>(report.missing));
  std::printf("bonus deliveries (best-effort) : %llu\n",
              static_cast<unsigned long long>(report.bonus_deliveries));
  std::printf("confidentiality violations     : %llu\n",
              static_cast<unsigned long long>(conf.leaks()));

  const bool ok = report.ok() && conf.leaks() == 0;
  std::printf("\n%s\n",
              ok ? "OK: every admissible rumor beat its deadline; zero leaks."
                 : "FAILURE: see counters above.");
  return ok ? 0 : 1;
}
