#!/usr/bin/env python3
"""Bench-regression gate over the BENCH_engine.json perf trajectory.

The trajectory file is JSON-lines: one record per benchmark per
check_bench.sh invocation, each carrying a git rev and a rounds_per_sec
counter. This script groups records by rev *in file order*, takes the two
most recent rev groups, and compares rounds_per_sec per benchmark name.

Exit status:
  0  no benchmark regressed by more than the threshold (default 10%),
     or fewer than two rev groups exist (nothing to compare),
     or --informational was given.
  1  at least one benchmark regressed beyond the threshold.
  2  usage / malformed input.

Benchmarks present in only one of the two groups are reported and skipped;
so are pairs whose bench_scale, engine_threads, or transport context
differs (a reduced-scale CI record is not comparable to a full-scale local
one, nor a serial-engine record to a sharded one, nor a sim-transport
lockstep record to a udp-transport wall-clock one). A *baseline* record stamped
"dirty": true is refused as a comparison base (warn and skip): it came from
an uncommitted tree, so its rev does not identify the code that produced
it. A dirty head record gets a warning but still compares — that is the
normal state while iterating locally.

Usage: tools/bench_diff.py [--file BENCH_engine.json] [--threshold 0.10]
                           [--informational] [--self-test]
"""

import argparse
import json
import os
import sys
import tempfile


def load_records(path):
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"error: {path}:{lineno}: bad JSON line: {e}")
            if "rev" not in rec or "name" not in rec:
                raise SystemExit(f"error: {path}:{lineno}: record lacks rev/name")
            records.append(rec)
    return records


def group_by_rev(records):
    """Rev groups in file (= chronological) order; a rev re-appearing later
    starts a fresh group, so re-running on the same commit compares the two
    runs rather than silently merging them."""
    groups = []
    for rec in records:
        if not groups or groups[-1][0] != rec["rev"]:
            groups.append((rec["rev"], []))
        groups[-1][1].append(rec)
    return groups


def compare(base_recs, head_recs, threshold, out=sys.stdout):
    """Returns the list of regressed benchmark names."""
    base = {r["name"]: r for r in base_recs}
    head = {r["name"]: r for r in head_recs}
    regressed = []
    for name in sorted(set(base) | set(head)):
        if name not in base or name not in head:
            where = "head" if name not in base else "base"
            print(f"  {name}: only in {where} group, skipped", file=out)
            continue
        b, h = base[name], head[name]
        if b.get("bench_scale", "default") != h.get("bench_scale", "default"):
            print(
                f"  {name}: bench_scale mismatch "
                f"({b.get('bench_scale')} vs {h.get('bench_scale')}), skipped",
                file=out,
            )
            continue
        b_et = str(b.get("engine_threads", "1"))
        h_et = str(h.get("engine_threads", "1"))
        if b_et != h_et:
            print(
                f"  {name}: engine_threads mismatch ({b_et} vs {h_et}), skipped",
                file=out,
            )
            continue
        # Records predating the transport field are lockstep-simulator runs.
        b_tr = b.get("transport", "sim")
        h_tr = h.get("transport", "sim")
        if b_tr != h_tr:
            print(
                f"  {name}: transport mismatch ({b_tr} vs {h_tr}), skipped",
                file=out,
            )
            continue
        if b.get("dirty", False):
            print(
                f"  {name}: baseline record is dirty (uncommitted tree), "
                f"not a trustworthy base, skipped",
                file=out,
            )
            continue
        if h.get("dirty", False):
            print(
                f"  {name}: warning: head record is dirty (uncommitted tree), "
                f"comparing anyway",
                file=out,
            )
        try:
            b_rps = float(b["rounds_per_sec"])
            h_rps = float(h["rounds_per_sec"])
        except (KeyError, TypeError, ValueError):
            print(f"  {name}: missing rounds_per_sec, skipped", file=out)
            continue
        if b_rps <= 0:
            print(f"  {name}: non-positive baseline, skipped", file=out)
            continue
        ratio = h_rps / b_rps
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSED"
            regressed.append(name)
        print(
            f"  {name}: {b_rps:.3f} -> {h_rps:.3f} rounds/sec "
            f"({(ratio - 1.0) * 100.0:+.1f}%) {verdict}",
            file=out,
        )
    return regressed


def run(path, threshold, informational):
    if not os.path.exists(path):
        print(f"bench_diff: {path} not found; nothing to compare")
        return 0
    groups = group_by_rev(load_records(path))
    if len(groups) < 2:
        print(f"bench_diff: fewer than two rev groups in {path}; nothing to compare")
        return 0
    (base_rev, base_recs), (head_rev, head_recs) = groups[-2], groups[-1]
    print(f"bench_diff: {base_rev} (base) vs {head_rev} (head), "
          f"threshold {threshold * 100:.0f}%")
    regressed = compare(base_recs, head_recs, threshold)
    if regressed:
        print(f"bench_diff: {len(regressed)} benchmark(s) regressed "
              f">{threshold * 100:.0f}%: {', '.join(regressed)}")
        if informational:
            print("bench_diff: informational mode, not failing")
            return 0
        return 1
    print("bench_diff: no regression")
    return 0


def self_test():
    """Synthetic-trajectory checks, including the mandatory negative test:
    a >10% rounds_per_sec drop must exit nonzero."""

    def trajectory(*lines):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for rec in lines:
                fh.write(json.dumps(rec) + "\n")
        return path

    def rec(rev, name, rps, scale="default", dirty=False, engine_threads=None,
            transport=None):
        r = {"rev": rev, "name": name, "rounds_per_sec": rps,
             "bench_scale": scale, "dirty": dirty}
        if engine_threads is not None:
            r["engine_threads"] = engine_threads
        if transport is not None:
            r["transport"] = transport
        return r

    failures = []

    def check(label, got, want):
        if got != want:
            failures.append(f"{label}: exit {got}, want {want}")

    # >10% regression on one benchmark -> fail.
    p = trajectory(rec("aaa", "BM_X/256", 100.0), rec("aaa", "BM_X/1024", 10.0),
                   rec("bbb", "BM_X/256", 101.0), rec("bbb", "BM_X/1024", 8.5))
    check("regression", run(p, 0.10, informational=False), 1)
    check("regression-informational", run(p, 0.10, informational=True), 0)
    os.unlink(p)

    # 5% drop is inside the threshold -> pass.
    p = trajectory(rec("aaa", "BM_X/256", 100.0), rec("bbb", "BM_X/256", 95.0))
    check("within-threshold", run(p, 0.10, informational=False), 0)
    os.unlink(p)

    # Improvement -> pass.
    p = trajectory(rec("aaa", "BM_X/256", 100.0), rec("bbb", "BM_X/256", 160.0))
    check("improvement", run(p, 0.10, informational=False), 0)
    os.unlink(p)

    # Single rev group -> nothing to compare -> pass.
    p = trajectory(rec("aaa", "BM_X/256", 100.0))
    check("single-group", run(p, 0.10, informational=False), 0)
    os.unlink(p)

    # Scale mismatch is skipped, not compared -> pass.
    p = trajectory(rec("aaa", "BM_X/256", 100.0),
                   rec("bbb", "BM_X/256", 10.0, scale="ci-smoke"))
    check("scale-mismatch", run(p, 0.10, informational=False), 0)
    os.unlink(p)

    # Same rev re-appearing later forms a fresh group (re-run comparison).
    p = trajectory(rec("aaa", "BM_X/256", 100.0), rec("bbb", "BM_X/256", 99.0),
                   rec("aaa", "BM_X/256", 50.0))
    check("rerun-same-rev", run(p, 0.10, informational=False), 1)
    os.unlink(p)

    # A dirty BASELINE is untrustworthy: skipped even across a huge drop.
    p = trajectory(rec("aaa", "BM_X/256", 100.0, dirty=True),
                   rec("bbb", "BM_X/256", 10.0))
    check("dirty-base-skipped", run(p, 0.10, informational=False), 0)
    os.unlink(p)

    # A dirty HEAD still compares (with a warning): regressions must fail.
    p = trajectory(rec("aaa", "BM_X/256", 100.0),
                   rec("bbb", "BM_X/256", 10.0, dirty=True))
    check("dirty-head-compares", run(p, 0.10, informational=False), 1)
    os.unlink(p)

    # engine_threads context mismatch is skipped (missing counts as "1").
    p = trajectory(rec("aaa", "BM_X/256", 100.0),
                   rec("bbb", "BM_X/256", 10.0, engine_threads="4"))
    check("engine-threads-mismatch", run(p, 0.10, informational=False), 0)
    p2 = trajectory(rec("aaa", "BM_X/256", 100.0, engine_threads="4"),
                    rec("bbb", "BM_X/256", 10.0, engine_threads="4"))
    check("engine-threads-match-compares", run(p2, 0.10, informational=False), 1)
    os.unlink(p)
    os.unlink(p2)

    # Transport mismatch is skipped (missing counts as "sim"): a wall-clock
    # udp run must never gate against a lockstep sim baseline.
    p = trajectory(rec("aaa", "BM_X/256", 100.0),
                   rec("bbb", "BM_X/256", 10.0, transport="udp"))
    check("transport-mismatch", run(p, 0.10, informational=False), 0)
    p2 = trajectory(rec("aaa", "BM_X/256", 100.0, transport="sim"),
                    rec("bbb", "BM_X/256", 10.0))
    check("transport-sim-default-compares", run(p2, 0.10, informational=False), 1)
    os.unlink(p)
    os.unlink(p2)

    # The udp datagram lane (BM_UdpLoopback, recorded by check_bench.sh with
    # datagrams_per_sec mapped into rounds_per_sec) gates rev-over-rev like
    # any other row once both records are transport=udp.
    p = trajectory(
        rec("aaa", "BM_UdpLoopback/batch:1/bytes:1200", 1000.0, transport="udp"),
        rec("bbb", "BM_UdpLoopback/batch:1/bytes:1200", 500.0, transport="udp"))
    check("udp-lane-regression", run(p, 0.10, informational=False), 1)
    os.unlink(p)

    # A benchmark appearing for the first time (head-only name, e.g. the
    # first recording of BM_DatagramCodec) is reported and skipped - a new
    # lane must never fail the gate on its debut.
    p = trajectory(
        rec("aaa", "BM_UdpLoopback/batch:1/bytes:1200", 1000.0, transport="udp"),
        rec("bbb", "BM_UdpLoopback/batch:1/bytes:1200", 1000.0, transport="udp"),
        rec("bbb", "BM_DatagramCodec/lz4:0", 900.0, transport="udp"))
    check("udp-new-name-skipped", run(p, 0.10, informational=False), 0)
    os.unlink(p)

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("bench_diff self-test: all cases passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--file", default="BENCH_engine.json",
                    help="JSON-lines trajectory file (default: BENCH_engine.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated fractional drop (default: 0.10)")
    ap.add_argument("--informational", action="store_true",
                    help="report regressions but always exit 0")
    ap.add_argument("--self-test", action="store_true",
                    help="run built-in synthetic checks and exit")
    args = ap.parse_args()
    if not 0.0 < args.threshold < 1.0:
        ap.error("--threshold must be in (0, 1)")
    if args.self_test:
        return self_test()
    return run(args.file, args.threshold, args.informational)


if __name__ == "__main__":
    sys.exit(main())
