// congos_replay: load a .repro artifact and re-execute it deterministically.
//
// The simulator is a pure function of (ScenarioConfig, seed), so a replay
// must reproduce the recorded run byte-for-byte: the per-round delivered
// envelope counts, their FNV-1a golden hash, and the full adversary decision
// trace. Any divergence is reported with the first differing round/decision.
//
// Examples:
//   congos_replay sweep-17.repro                  # full verified replay
//   congos_replay sweep-17.repro --until-round=96 # prefix replay
//   congos_replay sweep-17.repro --diff-golden    # also diff result summary
//   congos_replay sweep-17.repro --dump-state --until-round=96
//   congos_replay sweep-17.repro --verify-rewind  # checkpoint/rewind check
//   congos_replay sweep-17.repro --schedule       # inspect, don't run
//
// Exit codes: 0 verified, 1 divergence detected, 2 usage or load error.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "harness/record.h"
#include "replay/repro.h"
#include "sim/engine.h"
#include "wire/wire.h"

using namespace congos;

namespace {

const char kUsage[] = R"(congos_replay - deterministic .repro re-execution

  congos_replay FILE.repro [flags]

  --until-round=R  stop the re-execution at round R (default: run to the end;
                   prefix replays verify per-round counts up to R only)
  --diff-golden    diff the replayed ScenarioResult against the recorded
                   summary field by field
  --dump-state     print an engine state summary at the stop round
  --verify-rewind  save an engine checkpoint mid-run, finish, rewind, re-run
                   the tail and require identical per-round counts
  --rewind-round=R checkpoint round for --verify-rewind (default: halfway)
  --schedule       print the recorded adversary decision trace and exit
  --show-faults    print the recorded link-fault plan and fault counters, exit
  --show-trace     print the recorded TraceLog tail and exit
  --help           this text
)";

int fail_usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n\n%s", msg.c_str(), kUsage);
  return 2;
}

const char* kind_name(replay::Decision::Kind k) {
  switch (k) {
    case replay::Decision::Kind::kCrash: return "crash";
    case replay::Decision::Kind::kRestart: return "restart";
    case replay::Decision::Kind::kInject: return "inject";
  }
  return "?";
}

void print_schedule(const replay::ReproFile& file) {
  std::printf("# %zu decisions\n", file.decisions.size());
  for (const auto& d : file.decisions) {
    if (d.kind == replay::Decision::Kind::kInject) {
      std::printf("round %-6lld inject  p%-5u rumor=%u/%llu dests=%llu deadline=%lld\n",
                  static_cast<long long>(d.round), d.process, d.rumor.source,
                  static_cast<unsigned long long>(d.rumor.seq),
                  static_cast<unsigned long long>(d.dest_count),
                  static_cast<long long>(d.deadline));
    } else {
      std::printf("round %-6lld %-7s p%-5u policy=%d\n",
                  static_cast<long long>(d.round), kind_name(d.kind), d.process,
                  static_cast<int>(d.policy));
    }
  }
}

void print_faults(const replay::ReproFile& file) {
  std::printf("fault plan       : %s\n", sim::describe(file.config.faults).c_str());
  const auto& rt = file.config.congos.retransmit;
  if (rt.enabled) {
    std::printf("retransmission   : on (budget %d, max link delay %lld)\n",
                rt.budget, static_cast<long long>(rt.max_link_delay));
  } else {
    std::printf("retransmission   : off\n");
  }
  std::printf("fault events     : ");
  for (std::size_t f = 0; f < sim::kNumFaultKinds; ++f) {
    std::printf("%s%llu %s", f == 0 ? "" : ", ",
                static_cast<unsigned long long>(file.faults_by_kind[f]),
                sim::to_string(static_cast<sim::FaultKind>(f)));
  }
  std::printf("\nduplicates       : %llu suppressed by gossip idempotence\n",
              static_cast<unsigned long long>(file.duplicates_suppressed));
  if (!file.config.faults.enabled()) {
    std::printf("(fault layer was off for this run - a v1 artifact reads the "
                "same way)\n");
  }
}

void dump_state(const replay::ReproFile& file, Round stop) {
  // A separate, unrecorded execution: determinism makes it land in exactly
  // the state the verified replay reached at `stop`.
  harness::ScenarioConfig cfg = file.config;
  cfg.extra_observers.clear();
  cfg.extra_adversaries.clear();
  harness::ScenarioRun run(cfg);
  run.run_until(stop < 0 ? run.total_rounds() : stop);

  sim::Engine& eng = run.engine();
  std::printf("-- engine state at round %lld --\n",
              static_cast<long long>(eng.now()));
  std::printf("processes        : %zu (%zu alive)\n", eng.n(), eng.alive_count());
  std::string dead;
  for (ProcessId p = 0; p < eng.n(); ++p) {
    if (!eng.alive(p)) dead += " p" + std::to_string(p);
  }
  std::printf("crashed          :%s\n", dead.empty() ? " (none)" : dead.c_str());
  const auto& stats = eng.stats();
  std::printf("messages         : %llu total, %llu bytes\n",
              static_cast<unsigned long long>(stats.total_sent()),
              static_cast<unsigned long long>(stats.total_bytes()));
}

/// Checkpoint/rewind self-check: fast-forward to `at`, checkpoint, run the
/// tail recording per-round counts, rewind, run the tail again and compare.
/// Auditors are not rewound (DESIGN.md section 7), so this path never calls
/// finalize() after the rewind.
int verify_rewind(const replay::ReproFile& file, Round at) {
  harness::ScenarioConfig cfg = file.config;
  cfg.extra_observers.clear();
  cfg.extra_adversaries.clear();
  harness::ScenarioRun run(cfg);
  if (at <= 0 || at >= run.total_rounds()) at = run.total_rounds() / 2;
  run.run_until(at);

  sim::Engine& eng = run.engine();
  const sim::EngineCheckpoint cp = eng.save_checkpoint();
  if (!cp.complete) {
    std::printf("rewind           : SKIPPED (checkpoint incomplete: a process "
                "or adversary lacks snapshot support)\n");
    return 0;
  }

  replay::DecisionRecorder first;
  eng.add_observer(&first);
  run.run_all();
  const std::vector<std::uint64_t> want = first.round_deliveries();

  if (!eng.restore_checkpoint(cp) || eng.now() != at) {
    std::printf("rewind           : FAILED (restore_checkpoint rejected a "
                "complete checkpoint)\n");
    return 1;
  }
  replay::DecisionRecorder second;
  eng.add_observer(&second);
  run.run_all();
  const auto& got = second.round_deliveries();

  bool ok = got.size() == want.size();
  for (std::size_t i = 0; ok && i < got.size(); ++i) ok = got[i] == want[i];
  std::printf("rewind           : %s (checkpoint at round %lld, tail of %zu "
              "rounds re-run %s)\n",
              ok ? "OK" : "DIVERGED", static_cast<long long>(at), want.size(),
              ok ? "identically" : "differently");
  return ok ? 0 : 1;
}

int diff_golden(const replay::ReproFile& file, const harness::ScenarioResult& r) {
  struct Field {
    const char* name;
    std::uint64_t recorded;
    std::uint64_t replayed;
  };
  const Field fields[] = {
      {"total_messages", file.total_messages, r.total_messages},
      {"total_bytes", file.total_bytes, r.total_bytes},
      {"injected", file.injected, r.injected},
      {"crashes", file.crashes, r.crashes},
      {"restarts", file.restarts, r.restarts},
      {"leaks", file.leaks, r.leaks},
      {"foreign_fragments", file.foreign_fragments, r.foreign_fragments},
      {"qod_delivered_on_time", file.qod_delivered_on_time, r.qod.delivered_on_time},
      {"qod_late", file.qod_late, r.qod.late},
      {"qod_missing", file.qod_missing, r.qod.missing},
      {"qod_data_mismatches", file.qod_data_mismatches, r.qod.data_mismatches},
  };
  int diffs = 0;
  for (const auto& f : fields) {
    if (f.recorded != f.replayed) {
      std::printf("golden diff      : %s recorded=%llu replayed=%llu\n", f.name,
                  static_cast<unsigned long long>(f.recorded),
                  static_cast<unsigned long long>(f.replayed));
      ++diffs;
    }
  }
  if (diffs == 0) std::printf("golden diff      : all %zu fields match\n",
                              std::size(fields));
  return diffs == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const auto unknown = flags.unknown_keys(
      {"until-round", "diff-golden", "dump-state", "verify-rewind",
       "rewind-round", "schedule", "show-faults", "show-trace", "help"});
  if (!unknown.empty()) return fail_usage("unknown flag --" + unknown.front());
  if (flags.positional().size() != 1) {
    return fail_usage("expected exactly one FILE.repro argument");
  }

  const std::string path = flags.positional().front();
  replay::ReproFile file;
  std::string error;
  if (!replay::read_file(path, &file, &error)) {
    std::fprintf(stderr, "error: cannot load %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }

  std::printf("artifact         : %s\n", path.c_str());
  std::printf("label            : %s%s%s\n", file.label.c_str(),
              file.reason.empty() ? "" : " - ", file.reason.c_str());
  std::printf("scenario         : %s n=%zu seed=%llu rounds=%lld\n",
              harness::to_string(file.config.protocol), file.config.n,
              static_cast<unsigned long long>(file.config.seed),
              static_cast<long long>(file.config.rounds));
  std::printf("recorded         : %zu decisions, %zu rounds, trace hash "
              "%016" PRIx64 "\n",
              file.decisions.size(), file.round_deliveries.size(),
              file.trace_hash);
  if (file.wire_codec_version == 0) {
    std::printf("wire codec       : pre-codec (byte totals use the old "
                "fixed-width model)\n");
  } else {
    std::printf("wire codec       : v%u%s\n", file.wire_codec_version,
                file.wire_codec_version == wire::kWireFormatVersion
                    ? ""
                    : " (DIFFERS from this build - byte totals not comparable)");
  }

  if (flags.get_bool("schedule", false)) {
    print_schedule(file);
    return 0;
  }
  if (flags.get_bool("show-faults", false)) {
    print_faults(file);
    return 0;
  }
  if (flags.get_bool("show-trace", false)) {
    std::fputs(file.trace_tail.empty() ? "(no trace tail recorded)\n"
                                       : file.trace_tail.c_str(),
               stdout);
    return 0;
  }

  harness::ReplayOptions opt;
  opt.until_round = flags.get_int("until-round", -1);

  const harness::ReplayReport report = harness::replay_file(file, opt);
  std::printf("replayed         : %lld rounds (%s), trace hash %016" PRIx64 "\n",
              static_cast<long long>(report.executed_rounds),
              report.complete ? "complete" : "prefix", report.trace_hash);
  if (!report.counts_match) {
    std::printf("counts           : DIVERGED at round %lld\n",
                static_cast<long long>(report.first_count_divergence));
  } else {
    std::printf("counts           : match over the executed prefix\n");
  }
  if (!report.decisions_match) {
    std::printf("decisions        : DIVERGED at decision #%zu\n",
                report.first_decision_divergence);
  } else {
    std::printf("decisions        : match (%zu recorded)\n",
                file.decisions.size());
  }
  if (report.complete) {
    std::printf("hash             : %s\n",
                report.hash_match ? "match" : "MISMATCH");
  }

  int rc = report.verified() ? 0 : 1;
  if (flags.get_bool("diff-golden", false) && report.complete) {
    rc |= diff_golden(file, report.result);
  }
  if (flags.get_bool("dump-state", false)) {
    dump_state(file, opt.until_round);
  }
  if (flags.get_bool("verify-rewind", false)) {
    rc |= verify_rewind(file, flags.get_int("rewind-round", -1));
  }
  std::printf("verdict          : %s\n", rc == 0 ? "REPLAY VERIFIED"
                                                 : "REPLAY DIVERGED");
  return rc;
}
