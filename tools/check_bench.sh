#!/usr/bin/env sh
# Runs the engine hot-path microbenchmark and appends one JSON record per
# benchmark to BENCH_engine.json (JSON-lines: one record per line, so the
# file accumulates a perf trajectory across commits).
#
# Usage: tools/check_bench.sh [build-dir] [output-file]
#   build-dir    defaults to ./build
#   output-file  defaults to ./BENCH_engine.json
set -eu

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_engine.json}"
BENCH_BIN="$BUILD_DIR/bench/micro_engine"

if [ ! -x "$BENCH_BIN" ]; then
  echo "error: $BENCH_BIN not found; build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

# A fault-injected run measures the fault layer, not the hot path, and the
# timings would silently pollute the trajectory (the env var reaches every
# child process). Refuse outright.
if [ -n "${CONGOS_FAULTS:-}" ]; then
  echo "error: CONGOS_FAULTS is set ('${CONGOS_FAULTS}');" >&2
  echo "       refusing to record benchmark timings with link faults enabled." >&2
  echo "       Unset CONGOS_FAULTS and re-run." >&2
  exit 1
fi

# Sanitized builds are 2-20x slower: a record from one would pollute the
# perf trajectory. Detect from the configured cache and refuse.
CACHE="$BUILD_DIR/CMakeCache.txt"
if [ -f "$CACHE" ]; then
  SANITIZE="$(sed -n 's/^CONGOS_SANITIZE:[A-Z]*=//p' "$CACHE")"
  case "$SANITIZE" in
    ""|OFF|Off|off|FALSE|False|false|NO|No|no|0) SANITIZE="" ;;
  esac
  if [ -n "$SANITIZE" ]; then
    echo "error: $BUILD_DIR was configured with CONGOS_SANITIZE=$SANITIZE;" >&2
    echo "       refusing to append sanitized timings to $OUT_FILE." >&2
    echo "       Re-run from an unsanitized build directory." >&2
    exit 1
  fi
fi

# Context recorded with each line: thread count the sweep runner would use
# and the bench scale, so trajectory lines are comparable across machines.
THREADS="${CONGOS_BENCH_THREADS:-$(nproc 2>/dev/null || echo unknown)}"
SCALE="${CONGOS_BENCH_SCALE:-default}"
# Engine thread count: the headline number tracks the sharded round engine
# (DESIGN.md section 12) at 4 threads. Override with CONGOS_ENGINE_THREADS=1
# for serial measurements; bench_diff.py refuses to compare records whose
# engine_threads context differs.
ENGINE_THREADS="${CONGOS_ENGINE_THREADS:-4}"
export CONGOS_ENGINE_THREADS="$ENGINE_THREADS"
# Wire codec version (src/wire/wire.h): byte-accounting work in the hot path
# depends on the envelope format, so records stamp which codec produced them.
WIRE_VERSION="$(sed -n 's/^inline constexpr std::uint8_t kWireFormatVersion = \([0-9]*\);.*/\1/p' \
  "$(dirname "$0")/../src/wire/wire.h" 2>/dev/null || true)"
WIRE_VERSION="${WIRE_VERSION:-unknown}"
# Transport the benchmark ran over (DESIGN.md section 13): "sim" is the
# lockstep simulator hot path; the micro_net lane below stamps "udp".
# Wall-clock rounds are not comparable to lockstep rounds, so
# bench_diff.py never compares records across transports.
TRANSPORT="${CONGOS_BENCH_TRANSPORT:-sim}"
# CI runs a reduced-scale smoke (e.g. only /256); records made under a
# non-default filter should set CONGOS_BENCH_SCALE too, so bench_diff.py
# never compares them against full-scale records.
FILTER="${CONGOS_BENCH_FILTER:-BM_HotPathRounds}"

TMP_JSON="$(mktemp)"
trap 'rm -f "$TMP_JSON"' EXIT

"$BENCH_BIN" --benchmark_filter="$FILTER" \
  --benchmark_out="$TMP_JSON" --benchmark_out_format=json \
  --benchmark_format=console

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
# Full SHA plus a dirty marker, so a trajectory line can be tied back to an
# exact tree (the short rev alone is ambiguous across rebases).
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=false
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
  GIT_DIRTY=true
fi

# One compact line per benchmark: name, real/cpu time, rounds/sec, context.
jq -c --arg rev "$GIT_REV" --arg sha "$GIT_SHA" --argjson dirty "$GIT_DIRTY" \
  --arg threads "$THREADS" --arg scale "$SCALE" --arg wire "$WIRE_VERSION" \
  --arg ethreads "$ENGINE_THREADS" --arg transport "$TRANSPORT" \
  '.context.date as $date | .benchmarks[] |
   {date: $date, rev: $rev, sha: $sha, dirty: $dirty, name: .name,
    real_time_ms: .real_time, cpu_time_ms: .cpu_time,
    rounds_per_sec: .rounds_per_sec, threads: $threads, bench_scale: $scale,
    wire_codec_version: $wire, engine_threads: $ethreads,
    transport: $transport}' \
  "$TMP_JSON" >> "$OUT_FILE"

echo "appended $(jq '.benchmarks | length' "$TMP_JSON") benchmark record(s) to $OUT_FILE:"
tail -n 2 "$OUT_FILE"

# UDP datagram-path lane (DESIGN.md section 13): transport=udp rows from
# bench/micro_net. The figure of merit goes into the same rounds_per_sec
# field the gate reads (datagrams/sec for BM_UdpLoopback, frames/sec for
# BM_DatagramCodec); the raw counters ride along, including
# send_syscalls_per_dgram - the batching win that holds across machines
# even where cheap syscalls flatten the wall-clock difference.
NET_BIN="$BUILD_DIR/bench/micro_net"
if [ -x "$NET_BIN" ]; then
  NET_FILTER="${CONGOS_BENCH_NET_FILTER:-BM_UdpLoopback|BM_DatagramCodec}"
  TMP_NET_JSON="$(mktemp)"
  "$NET_BIN" --benchmark_filter="$NET_FILTER" \
    --benchmark_out="$TMP_NET_JSON" --benchmark_out_format=json \
    --benchmark_format=console

  jq -c --arg rev "$GIT_REV" --arg sha "$GIT_SHA" --argjson dirty "$GIT_DIRTY" \
    --arg threads "$THREADS" --arg scale "$SCALE" --arg wire "$WIRE_VERSION" \
    --arg ethreads "$ENGINE_THREADS" \
    '.context.date as $date | .benchmarks[] |
     {date: $date, rev: $rev, sha: $sha, dirty: $dirty, name: .name,
      real_time_ms: .real_time, cpu_time_ms: .cpu_time,
      rounds_per_sec: (.datagrams_per_sec // .frames_per_sec),
      datagrams_per_sec: .datagrams_per_sec,
      frames_per_sec: .frames_per_sec,
      send_syscalls_per_dgram: .send_syscalls_per_dgram,
      bytes_per_second: .bytes_per_second,
      threads: $threads, bench_scale: $scale,
      wire_codec_version: $wire, engine_threads: $ethreads,
      transport: "udp"}' \
    "$TMP_NET_JSON" >> "$OUT_FILE"

  echo "appended $(jq '.benchmarks | length' "$TMP_NET_JSON") transport=udp record(s) to $OUT_FILE:"
  tail -n 2 "$OUT_FILE"
  rm -f "$TMP_NET_JSON"
else
  echo "note: $NET_BIN not built; skipping the transport=udp lane" >&2
fi

# Regression gate: compare the two most recent rev groups in the trajectory.
# CONGOS_BENCH_DIFF_MODE: strict (default, >10% drop fails), informational
# (report only), off.
DIFF_MODE="${CONGOS_BENCH_DIFF_MODE:-strict}"
SCRIPT_DIR="$(dirname "$0")"
case "$DIFF_MODE" in
  off) ;;
  informational)
    python3 "$SCRIPT_DIR/bench_diff.py" --file "$OUT_FILE" --informational ;;
  *)
    python3 "$SCRIPT_DIR/bench_diff.py" --file "$OUT_FILE" ;;
esac
