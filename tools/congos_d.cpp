// congos_d: one CONGOS process as a long-running daemon over real UDP
// sockets (DESIGN.md section 13).
//
// The daemon binds two datagram sockets on 127.0.0.1 - data (protocol
// traffic, envelope frames coalesced per framing.h) and control (the
// line-based protocol in net/control.h) - then prints
//
//   READY id=<I> data=<port> control=<port>
//
// on stdout and waits for the cluster runner's `start` command carrying
// the shared wall-clock epoch, the round length and the full peer port
// table. From the epoch on it runs the runtime loop: rounds advance at
// wall-clock boundaries, datagrams received during a round's window form
// the next receive phase's inbox, and injections arrive over the control
// socket. On stop (control command, --rounds bound, --duration cap or
// SIGTERM) it dumps one `STATS <json>` line on stdout and exits:
//
//   0  clean run, local invariants held
//   1  local violation (decode errors, unencodable payloads, filter drops)
//   2  usage / setup error
//   3  bound exceeded (--duration wall cap, or no `start` in time)
//
// Examples:
//   congos_d --id=0 --n=8 --rounds=64 --log=node0.log
//   congos_d --id=3 --n=8 --faults=drop:0.05,delay:2 --retransmit
#include <poll.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/flags.h"
#include "net/clock.h"
#include "net/control.h"
#include "net/fault_shim.h"
#include "net/runtime.h"
#include "net/udp_transport.h"
#include "sim/faults.h"

using namespace congos;

namespace {

const char kUsage[] = R"(congos_d - CONGOS daemon over UDP on 127.0.0.1

  --id=I            this process's id in [0, n)            (required)
  --n=N             cluster size                           (required)
  --seed=S          system seed (shared by the cluster)    (default 1)
  --tau=T           collusion tolerance                    (default 1)
  --no-degenerate   keep the fragment pipeline below the Thm 16 cutoff
  --retransmit      deadline-aware ack/retransmit hardening;
                    --retransmit-budget=B, --max-link-delay=K tune it
  --faults=SPEC     socket-level fault shim, same spec as congos_sim
                    --faults (drop/dup/delay/partition/seed)
  --rounds=R        stop after R rounds                    (default 256)
  --duration=SEC    wall-clock cap; exceeded -> exit 3     (default 120)
  --log=PATH        event log (inject/deliver/recv lines)
  --state=PATH      durable checkpoint file (net/checkpoint.h), rewritten
                    atomically every --checkpoint-every rounds and at exit
  --checkpoint-every=K  rounds between checkpoint writes   (default 8)
  --resume=PATH     reload a checkpoint and rejoin the running cluster;
                    corrupted/truncated/stale files are rejected (exit 2)
  --compress        LZ4-compress outbound datagrams (plain peers interop;
                    refused at startup when LZ4 is unavailable)
  --no-batch        single-syscall UDP path (no sendmmsg/recvmmsg)
  --queue-cap=K     per-peer send-queue cap, 0 = unbounded (default 512)
  --port=P          data socket port, 0 = ephemeral        (default 0)
  --control-port=P  control socket port, 0 = ephemeral     (default 0)
  --start-timeout-ms=MS  max wait for `start`              (default 30000)
  --help            this text
)";

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int fail_usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n\n%s", msg.c_str(), kUsage);
  return 2;
}

/// The control socket is raw POSIX (unlike the data path it must reply to
/// whoever sent the command, not to a fixed peer table).
int open_control(std::uint16_t port, std::uint16_t* bound, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  *bound = ntohs(addr.sin_port);
  return fd;
}

struct RuntimeSink final : net::DatagramSink {
  net::NodeRuntime* rt = nullptr;
  void on_datagram(ProcessId from_hint,
                   std::span<const std::uint8_t> data) override {
    rt->handle_datagram(from_hint, data);
  }
};

/// One control datagram handled; replies go back to the sender address.
struct Controller {
  int fd = -1;
  net::NodeRuntime* rt = nullptr;
  net::StartCommand start;
  bool started = false;
  bool stop = false;
  /// Injections arriving before round 0 opens, applied right after start.
  std::vector<net::InjectCommand> pending;
  /// seqs already injected: a retried `inject` whose ack got lost must be
  /// re-acked, never re-injected.
  std::vector<std::uint64_t> seen_seqs;

  void reply(const sockaddr_in& to, const std::string& line) const {
    (void)::sendto(fd, line.data(), line.size(), 0,
                   reinterpret_cast<const sockaddr*>(&to), sizeof(to));
  }

  void handle(const std::string& text, const sockaddr_in& from) {
    net::Line line;
    if (!net::parse_line(text, &line)) return;
    if (line.verb == "start") {
      net::StartCommand cmd;
      std::string err;
      if (!net::parse_start(line, &cmd, &err)) {
        reply(from, "err start " + err);
        return;
      }
      if (!started) {
        start = cmd;
        started = true;
      }
      reply(from, "ok start");
    } else if (line.verb == "inject") {
      net::InjectCommand cmd;
      std::string err;
      if (!net::parse_inject(line, &cmd, &err)) {
        reply(from, "err inject " + err);
        return;
      }
      bool dup = false;
      for (const std::uint64_t s : seen_seqs) dup = dup || (s == cmd.seq);
      if (!dup) {
        seen_seqs.push_back(cmd.seq);
        if (rt != nullptr && rt->started()) {
          rt->inject(cmd.seq, cmd.deadline, std::move(cmd.dest),
                     std::move(cmd.data));
          rt->flush_log();
        } else {
          pending.push_back(std::move(cmd));
        }
      }
      reply(from, "ok inject seq=" + std::to_string(cmd.seq));
    } else if (line.verb == "stats") {
      reply(from, rt != nullptr && rt->started() ? rt->stats_json() : "{}");
    } else if (line.verb == "stop") {
      stop = true;
      reply(from, "ok stop");
    } else {
      reply(from, "err unknown " + line.verb);
    }
  }

  void drain() {
    char buf[65536];
    for (;;) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t got = ::recvfrom(fd, buf, sizeof(buf), 0,
                                     reinterpret_cast<sockaddr*>(&from), &from_len);
      if (got < 0) return;  // EAGAIN or a transient error: nothing to read
      handle(std::string(buf, static_cast<std::size_t>(got)), from);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const auto unknown = flags.unknown_keys(
      {"id", "n", "seed", "tau", "no-degenerate", "retransmit",
       "retransmit-budget", "max-link-delay", "faults", "rounds", "duration",
       "log", "compress", "no-batch", "queue-cap", "port", "control-port",
       "start-timeout-ms", "state", "checkpoint-every", "resume", "help"});
  if (!unknown.empty()) return fail_usage("unknown flag --" + unknown.front());

  net::NodeConfig ncfg;
  ncfg.n = static_cast<std::size_t>(flags.get_int("n", 0));
  if (ncfg.n < 2) return fail_usage("--n must be at least 2");
  const std::int64_t id = flags.get_int("id", -1);
  if (id < 0 || static_cast<std::size_t>(id) >= ncfg.n) {
    return fail_usage("--id must be in [0, n)");
  }
  ncfg.id = static_cast<ProcessId>(id);
  ncfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  ncfg.max_rounds = flags.get_int("rounds", 256);
  if (ncfg.max_rounds <= 0) return fail_usage("--rounds must be positive");
  ncfg.log_path = flags.get("log", "");
  ncfg.compress = flags.get_bool("compress", false);
  ncfg.state_path = flags.get("state", "");
  const Round checkpoint_every = flags.get_int("checkpoint-every", 8);
  if (checkpoint_every <= 0) {
    return fail_usage("--checkpoint-every must be positive");
  }
  const std::string resume_path = flags.get("resume", "");
  ncfg.congos.tau = static_cast<std::uint32_t>(flags.get_int("tau", 1));
  ncfg.congos.allow_degenerate = !flags.get_bool("no-degenerate", false);

  sim::FaultConfig faults;
  const std::string fault_spec = flags.get("faults", "");
  if (!fault_spec.empty()) {
    std::string err;
    if (!sim::parse_fault_spec(fault_spec, &faults, &err)) {
      return fail_usage("bad --faults spec: " + err);
    }
  }
  if (flags.get_bool("retransmit", false)) {
    ncfg.congos.retransmit.enabled = true;
    ncfg.congos.retransmit.budget =
        static_cast<int>(flags.get_int("retransmit-budget", 3));
    const Round default_mld =
        (faults.delay_rate > 0.0 || faults.dup_rate > 0.0) ? faults.max_delay : 1;
    ncfg.congos.retransmit.max_link_delay =
        flags.get_int("max-link-delay", default_mld);
  }
  const std::int64_t duration_s = flags.get_int("duration", 120);
  const std::int64_t start_timeout_ms = flags.get_int("start-timeout-ms", 30000);

  // A corrupted, truncated or foreign state file must fail loudly before
  // the daemon joins the wire - never fall back to a fresh start, which
  // would silently re-run rounds the cluster already saw from this id.
  net::NodeCheckpoint resume_ck;
  const bool resuming = !resume_path.empty();
  if (resuming) {
    std::string ck_err;
    if (!net::read_checkpoint_file(resume_path, &resume_ck, &ck_err)) {
      std::fprintf(stderr, "error: --resume: %s\n", ck_err.c_str());
      return 2;
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  net::UdpTransport udp;
  std::string err;
  if (!udp.open(static_cast<std::uint16_t>(flags.get_int("port", 0)), &err)) {
    std::fprintf(stderr, "error: data socket: %s\n", err.c_str());
    return 2;
  }
  if (flags.get_bool("no-batch", false)) udp.set_batching(false);
  const std::int64_t queue_cap = flags.get_int("queue-cap", -1);
  if (queue_cap >= 0) udp.set_queue_cap(static_cast<std::size_t>(queue_cap));
  std::uint16_t control_port = 0;
  const int control_fd = open_control(
      static_cast<std::uint16_t>(flags.get_int("control-port", 0)),
      &control_port, &err);
  if (control_fd < 0) {
    std::fprintf(stderr, "error: control socket: %s\n", err.c_str());
    return 2;
  }

  std::printf("READY id=%u data=%u control=%u\n", ncfg.id, udp.local_port(),
              control_port);
  std::fflush(stdout);

  net::FaultShim shim(&udp, faults, ncfg.id);
  net::Transport* transport = faults.enabled()
                                  ? static_cast<net::Transport*>(&shim)
                                  : static_cast<net::Transport*>(&udp);
  net::NodeRuntime runtime(ncfg, transport, faults.enabled() ? &shim : nullptr);

  Controller ctl;
  ctl.fd = control_fd;
  ctl.rt = &runtime;
  // Control-level idempotence must survive the crash too: a runner retry of
  // an inject the previous incarnation already took has to be re-acked,
  // never re-injected, so the journal's seqs seed the duplicate filter.
  if (resuming) {
    for (const net::CheckpointEvent& e : resume_ck.events) {
      if (e.kind == net::CheckpointEvent::Kind::kInject) {
        ctl.seen_seqs.push_back(e.seq);
      }
    }
  }

  const std::int64_t boot_ms = net::wall_ms_now();

  // Phase 1: wait for `start` (or stop/signal/timeout).
  while (!ctl.started && !ctl.stop && g_signal == 0) {
    if (net::wall_ms_now() - boot_ms > start_timeout_ms) {
      std::fprintf(stderr, "error: no start command within %lld ms\n",
                   static_cast<long long>(start_timeout_ms));
      return 3;
    }
    pollfd pfd{control_fd, POLLIN, 0};
    (void)::poll(&pfd, 1, 100);
    ctl.drain();
  }
  if (ctl.stop || g_signal != 0) {
    std::printf("STATS {}\n");
    return 0;
  }

  for (std::size_t p = 0; p < ctl.start.peer_ports.size(); ++p) {
    udp.set_peer(static_cast<ProcessId>(p), ctl.start.peer_ports[p]);
  }
  if (ctl.start.peer_ports.size() != ncfg.n) {
    std::fprintf(stderr, "error: start listed %zu peers for n=%zu\n",
                 ctl.start.peer_ports.size(), ncfg.n);
    return 2;
  }
  const net::RoundClock clock(ctl.start.epoch_ms, ctl.start.round_ms);
  runtime.set_clock_binding(ctl.start.epoch_ms, ctl.start.round_ms);
  if (resuming) {
    // Staleness gate: the checkpoint must come from *this* cluster run.
    // The shared epoch the runner just distributed is the run's identity.
    std::string ck_err;
    if (!net::validate_checkpoint_clock(resume_ck, ctl.start.epoch_ms,
                                        ctl.start.round_ms, &ck_err)) {
      std::fprintf(stderr, "error: --resume: %s\n", ck_err.c_str());
      return 2;
    }
  }

  // Phase 2: idle until round 0 opens, then boot the protocol. A resumed
  // daemon rejoins mid-run, so the wall clock is already past round 0 and
  // this loop exits immediately; the round loop's catch-up then ticks the
  // downtime rounds (empty inboxes, live sends) up to the current round.
  while (clock.round_at(net::wall_ms_now()) < 0 && g_signal == 0 && !ctl.stop) {
    pollfd pfd{control_fd, POLLIN, 0};
    (void)::poll(&pfd, 1,
                 static_cast<int>(clock.ms_until_next(net::wall_ms_now())));
    ctl.drain();
  }
  if (resuming ? !runtime.resume(resume_ck, &err) : !runtime.start(&err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  for (net::InjectCommand& cmd : ctl.pending) {
    runtime.inject(cmd.seq, cmd.deadline, std::move(cmd.dest),
                   std::move(cmd.data));
  }
  ctl.pending.clear();

  // Phase 3: the round loop.
  RuntimeSink sink;
  sink.rt = &runtime;
  bool timed_out = false;
  while (!ctl.stop && g_signal == 0 && !runtime.done()) {
    const std::int64_t now_ms = net::wall_ms_now();
    if (now_ms - boot_ms > duration_s * 1000) {
      timed_out = true;
      break;
    }
    const Round target = clock.round_at(now_ms);
    if (target > runtime.now()) {
      udp.drain(sink);  // everything that arrived inside the closing window
      runtime.advance_to(target);
      runtime.flush_log();
      if (!ncfg.state_path.empty() &&
          runtime.now() - runtime.last_checkpoint_round() >= checkpoint_every &&
          !runtime.save_checkpoint(&err)) {
        std::fprintf(stderr, "warning: checkpoint: %s\n", err.c_str());
      }
      continue;
    }
    udp.flush();
    pollfd pfds[2] = {{udp.fd(), POLLIN, 0}, {control_fd, POLLIN, 0}};
    if (udp.want_write()) pfds[0].events |= POLLOUT;
    const int timeout =
        static_cast<int>(std::min<std::int64_t>(clock.ms_until_next(now_ms), 100));
    (void)::poll(pfds, 2, timeout);
    if ((pfds[0].revents & POLLIN) != 0) udp.drain(sink);
    if ((pfds[1].revents & POLLIN) != 0) ctl.drain();
  }

  runtime.flush_log();
  // Final checkpoint on every exit path - stop command, --rounds bound,
  // SIGTERM - so a graceful shutdown is always resumable.
  if (!ncfg.state_path.empty() && !runtime.save_checkpoint(&err)) {
    std::fprintf(stderr, "warning: checkpoint: %s\n", err.c_str());
  }
  std::printf("STATS %s\n", runtime.stats_json().c_str());
  std::fflush(stdout);
  ::close(control_fd);
  if (timed_out) {
    std::fprintf(stderr, "error: --duration=%llds exceeded at round %lld\n",
                 static_cast<long long>(duration_s),
                 static_cast<long long>(runtime.now()));
    return 3;
  }
  return runtime.healthy() ? 0 : 1;
}
