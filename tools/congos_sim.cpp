// congos_sim: command-line driver for the simulator.
//
// Runs one fully-audited scenario and prints a summary (or CSV). Exit code 0
// iff Quality of Delivery held and no confidentiality violation occurred.
//
// Examples:
//   congos_sim --protocol=congos --n=64 --deadline=128 --rounds=512
//   congos_sim --protocol=congos --tau=2 --no-degenerate --churn=0.005
//   congos_sim --protocol=plain-gossip --n=32          # watch it leak
//   congos_sim --protocol=congos --expander --csv
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "harness/record.h"
#include "harness/scenario.h"
#include "sim/faults.h"
#include "sim/trace.h"

using namespace congos;

namespace {

const char kUsage[] = R"(congos_sim - confidential continuous gossip simulator

  --protocol=P     congos | direct | direct-paced | strong-conf | plain-gossip
  --n=N            number of processes                      (default 64)
  --rounds=R       injection horizon in rounds              (default 512)
  --seed=S         experiment seed                          (default 1)
  --deadline=D     rumor deadline in rounds                 (default 128)
  --inject-prob=P  per-process injection probability        (default 0.01)
  --dest-min=K --dest-max=K  destination-set size range     (default 2..8)
  --tau=T          collusion tolerance (congos only)        (default 1)
  --no-degenerate  keep the fragment pipeline below the Thm 16 cutoff
  --expander       deterministic expander gossip instead of epidemic push
  --gossip-fanout=F  black-box gossip fan-out               (default 3)
  --churn=P        per-round crash probability (restart 0.05)
  --faults=SPEC    link-fault plan: comma-separated key:value pairs, e.g.
                   drop:0.05,delay:2 - keys: drop/dup (probabilities),
                   delay:K (max lateness), delay-rate:P, partition:PERIOD/DUR,
                   seed:S. CONGOS_FAULTS env is the fallback when unset.
  --retransmit     deadline-aware ack/retransmit hardening (congos only);
                   --retransmit-budget=B (default 3) and
                   --max-link-delay=K (default: the fault plan's delay bound)
                   tune the schedule
  --lazy=F         fraction of freeloading processes (congos only)
  --measure-from=R exclude rounds < R from peak statistics  (default 2*D)
  --duration=SEC   wall-clock cap; exceeding it exits 3 (CI hang guard)
  --no-audit       skip the confidentiality auditor (faster)
  --record-repro=F write a replayable .repro artifact of this run to F
  --csv            machine-readable one-line output
  --trace=N        dump the last N lifecycle events after the run
  --help           this text
)";

int fail_usage(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n\n%s", msg.c_str(), kUsage);
  return 2;
}

// --duration hang guard: a lockstep run has no natural place to poll a
// wall clock, so the cap is an alarm that aborts the process outright
// (async-signal-safe write + _exit) with the distinct exit code 3.
void on_duration_exceeded(int) {
  const char msg[] = "error: --duration exceeded\n";
  (void)!::write(STDERR_FILENO, msg, sizeof(msg) - 1);
  ::_exit(3);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const auto unknown = flags.unknown_keys(
      {"protocol", "n", "rounds", "seed", "deadline", "inject-prob", "dest-min",
       "dest-max", "tau", "no-degenerate", "expander", "gossip-fanout", "churn",
       "faults", "retransmit", "retransmit-budget", "max-link-delay", "lazy",
       "measure-from", "duration", "no-audit", "record-repro", "csv", "trace",
       "help"});
  if (!unknown.empty()) return fail_usage("unknown flag --" + unknown.front());

  const std::int64_t duration_s = flags.get_int("duration", 0);
  if (duration_s < 0) return fail_usage("--duration must be >= 0");
  if (duration_s > 0) {
    std::signal(SIGALRM, on_duration_exceeded);
    ::alarm(static_cast<unsigned>(duration_s));
  }

  harness::ScenarioConfig cfg;
  const std::string proto = flags.get("protocol", "congos");
  if (proto == "congos") {
    cfg.protocol = harness::Protocol::kCongos;
  } else if (proto == "direct") {
    cfg.protocol = harness::Protocol::kDirect;
  } else if (proto == "direct-paced") {
    cfg.protocol = harness::Protocol::kDirectPaced;
  } else if (proto == "strong-conf") {
    cfg.protocol = harness::Protocol::kStrongConfidential;
  } else if (proto == "plain-gossip") {
    cfg.protocol = harness::Protocol::kPlainGossip;
  } else {
    return fail_usage("unknown protocol '" + proto + "'");
  }

  cfg.n = static_cast<std::size_t>(flags.get_int("n", 64));
  if (cfg.n < 2) return fail_usage("--n must be at least 2");
  cfg.rounds = flags.get_int("rounds", 512);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Round deadline = flags.get_int("deadline", 128);
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = flags.get_double("inject-prob", 0.01);
  cfg.continuous.dest_min = static_cast<std::size_t>(flags.get_int("dest-min", 2));
  cfg.continuous.dest_max = static_cast<std::size_t>(flags.get_int("dest-max", 8));
  cfg.continuous.deadlines = {deadline};
  cfg.congos.tau = static_cast<std::uint32_t>(flags.get_int("tau", 1));
  cfg.congos.allow_degenerate = !flags.get_bool("no-degenerate", false);
  cfg.congos.gossip_fanout = static_cast<int>(flags.get_int("gossip-fanout", 3));
  if (flags.get_bool("expander", false)) {
    cfg.congos.gossip_strategy = gossip::GossipStrategy::kExpander;
  }
  cfg.measure_from = flags.get_int("measure-from", 2 * deadline);
  cfg.audit_confidentiality = !flags.get_bool("no-audit", false);
  cfg.lazy_fraction = flags.get_double("lazy", 0.0);
  const double churn = flags.get_double("churn", 0.0);
  if (churn > 0) {
    cfg.churn = adversary::RandomChurn::Options{};
    cfg.churn->crash_prob = churn;
    cfg.churn->restart_prob = 0.05;
    cfg.churn->min_alive = std::max<std::size_t>(2, cfg.n / 8);
  }

  std::string fault_spec = flags.get("faults", "");
  if (fault_spec.empty()) {
    const char* env = std::getenv("CONGOS_FAULTS");
    if (env != nullptr) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    std::string err;
    if (!sim::parse_fault_spec(fault_spec, &cfg.faults, &err)) {
      return fail_usage("bad --faults spec: " + err);
    }
  }
  if (flags.get_bool("retransmit", false)) {
    cfg.congos.retransmit.enabled = true;
    cfg.congos.retransmit.budget =
        static_cast<int>(flags.get_int("retransmit-budget", 3));
    // Default the delay budget to the fault plan's own bound, so "turn on
    // retransmission" alone is already sized to the configured faults.
    const Round default_mld =
        (cfg.faults.delay_rate > 0.0 || cfg.faults.dup_rate > 0.0)
            ? cfg.faults.max_delay
            : 0;
    cfg.congos.retransmit.max_link_delay =
        flags.get_int("max-link-delay", default_mld);
  }

  sim::TraceLog trace;
  const auto trace_n = flags.get_int("trace", 0);
  if (trace_n > 0) cfg.extra_observers.push_back(&trace);

  harness::ScenarioResult r;
  const std::string repro_path = flags.get("record-repro", "");
  if (!repro_path.empty()) {
    std::string why;
    if (!replay::is_recordable(cfg, &why)) {
      return fail_usage("cannot record this configuration: " + why);
    }
    auto recorded = harness::run_recorded(cfg, "congos_sim",
                                          "recorded via --record-repro");
    r = recorded.result;
    if (!replay::write_file(repro_path, recorded.repro)) {
      std::fprintf(stderr, "error: cannot write %s\n", repro_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu decisions, %zu rounds)\n",
                 repro_path.c_str(), recorded.repro.decisions.size(),
                 recorded.repro.round_deliveries.size());
  } else {
    r = harness::run_scenario(cfg);
  }
  const bool ok = r.qod.ok() && r.leaks == 0;

  if (trace_n > 0) trace.dump(std::cerr, static_cast<std::size_t>(trace_n));

  if (flags.get_bool("csv", false)) {
    std::printf(
        "protocol,n,rounds,seed,deadline,injected,admissible,on_time,late,missing,"
        "leaks,shoots,max_per_round,mean_per_round,max_bytes_per_round,ok\n");
    std::printf("%s,%zu,%lld,%llu,%lld,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.1f,%llu,%d\n",
                proto.c_str(), cfg.n, static_cast<long long>(cfg.rounds),
                static_cast<unsigned long long>(cfg.seed),
                static_cast<long long>(deadline),
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.qod.admissible_pairs),
                static_cast<unsigned long long>(r.qod.delivered_on_time),
                static_cast<unsigned long long>(r.qod.late),
                static_cast<unsigned long long>(r.qod.missing),
                static_cast<unsigned long long>(r.leaks),
                static_cast<unsigned long long>(r.cg_shoots),
                static_cast<unsigned long long>(r.max_per_round), r.mean_per_round,
                static_cast<unsigned long long>(r.max_bytes_per_round), ok ? 1 : 0);
    return ok ? 0 : 1;
  }

  std::printf("protocol         : %s (n=%zu, seed=%llu)\n", proto.c_str(), cfg.n,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("rumors           : %llu injected, deadline %lld\n",
              static_cast<unsigned long long>(r.injected),
              static_cast<long long>(deadline));
  std::printf("delivery         : %llu/%llu admissible on time (late %llu, "
              "missing %llu, corrupted %llu)\n",
              static_cast<unsigned long long>(r.qod.delivered_on_time),
              static_cast<unsigned long long>(r.qod.admissible_pairs),
              static_cast<unsigned long long>(r.qod.late),
              static_cast<unsigned long long>(r.qod.missing),
              static_cast<unsigned long long>(r.qod.data_mismatches));
  std::printf("latency (rounds) : mean %.1f, p50 %lld, p95 %lld, max %lld\n",
              r.qod.mean_latency, static_cast<long long>(r.qod.latency_p50),
              static_cast<long long>(r.qod.latency_p95),
              static_cast<long long>(r.qod.latency_max));
  std::printf("confidentiality  : %llu leaks, %llu structural violations%s\n",
              static_cast<unsigned long long>(r.leaks),
              static_cast<unsigned long long>(r.foreign_fragments),
              cfg.audit_confidentiality ? "" : " (auditing disabled)");
  std::printf("cost             : max %llu msgs/round, mean %.1f; peak %llu "
              "bytes/round\n",
              static_cast<unsigned long long>(r.max_per_round), r.mean_per_round,
              static_cast<unsigned long long>(r.max_bytes_per_round));
  if (cfg.protocol == harness::Protocol::kCongos) {
    std::printf("pipeline         : %llu confirmed, %llu fallback shoots, %llu "
                "direct (short deadline)\n",
                static_cast<unsigned long long>(r.cg_confirmed),
                static_cast<unsigned long long>(r.cg_shoots),
                static_cast<unsigned long long>(r.cg_injected_direct));
  }
  if (cfg.faults.enabled()) {
    std::printf("faults           : %s\n", sim::describe(cfg.faults).c_str());
    std::printf("fault events     : %llu dropped, %llu duplicated, %llu delayed, "
                "%llu partitioned; %llu dup rumors suppressed\n",
                static_cast<unsigned long long>(
                    r.faults_by_kind[static_cast<int>(sim::FaultKind::kDropped)]),
                static_cast<unsigned long long>(
                    r.faults_by_kind[static_cast<int>(sim::FaultKind::kDuplicated)]),
                static_cast<unsigned long long>(
                    r.faults_by_kind[static_cast<int>(sim::FaultKind::kDelayed)]),
                static_cast<unsigned long long>(
                    r.faults_by_kind[static_cast<int>(sim::FaultKind::kPartitioned)]),
                static_cast<unsigned long long>(r.duplicates_suppressed));
    std::printf("retransmission   : %s (QoD contract %s)\n",
                cfg.congos.retransmit.enabled ? "on" : "off",
                audit::delivery_guaranteed(cfg.faults, cfg.congos.retransmit)
                    ? "guaranteed"
                    : "not guaranteed - violations are detected, never masked");
  }
  std::printf("verdict          : %s\n", ok ? "OK" : "VIOLATIONS DETECTED");
  return ok ? 0 : 1;
}
