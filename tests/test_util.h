// Shared helpers for the test suite: tiny scriptable processes and payloads
// used to exercise the simulator substrate in isolation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/message.h"
#include "sim/process.h"

namespace congos::testutil {

struct IntPayload final : sim::Payload {
  explicit IntPayload(int v) : value(v) {}
  int value;
};

/// A process driven by lambdas; records everything it receives.
class ScriptedProcess final : public sim::Process {
 public:
  using SendFn = std::function<void(Round, sim::Sender&, ScriptedProcess&)>;

  explicit ScriptedProcess(ProcessId id, SendFn on_send = nullptr)
      : sim::Process(id), on_send_(std::move(on_send)) {}

  void on_restart(Round now) override {
    ++restarts;
    last_restart = now;
    received.clear();  // no durable storage
  }

  void send_phase(Round now, sim::Sender& out) override {
    ++send_phases;
    if (on_send_) on_send_(now, out, *this);
  }

  void receive_phase(Round now, std::span<const sim::Envelope> inbox) override {
    last_receive_round = now;
    for (const auto& e : inbox) received.push_back(e);
  }

  void inject(const sim::Rumor& rumor) override { injected.push_back(rumor); }

  /// Convenience: count received messages with a given int payload value.
  int count_value(int v) const {
    int c = 0;
    for (const auto& e : received) {
      if (const auto* p = dynamic_cast<const IntPayload*>(e.body.get())) {
        if (p->value == v) ++c;
      }
    }
    return c;
  }

  std::vector<sim::Envelope> received;
  std::vector<sim::Rumor> injected;
  int send_phases = 0;
  int restarts = 0;
  Round last_restart = kNoRound;
  Round last_receive_round = kNoRound;

 private:
  SendFn on_send_;
};

inline sim::Envelope make_msg(ProcessId from, ProcessId to, int value,
                              sim::ServiceKind kind = sim::ServiceKind::kOther) {
  return sim::Envelope{from, to, sim::ServiceTag{kind, 0},
                       std::make_shared<IntPayload>(value)};
}

/// Builds an engine over `n` ScriptedProcesses sharing one send function.
struct ScriptedSystem {
  std::vector<ScriptedProcess*> procs;  // borrowed from the engine
  std::unique_ptr<sim::Engine> engine;
};

inline ScriptedSystem make_system(std::size_t n, std::uint64_t seed,
                                  ScriptedProcess::SendFn send = nullptr) {
  ScriptedSystem sys;
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < n; ++p) {
    auto sp = std::make_unique<ScriptedProcess>(p, send);
    sys.procs.push_back(sp.get());
    procs.push_back(std::move(sp));
  }
  sys.engine = std::make_unique<sim::Engine>(std::move(procs), seed);
  return sys;
}

/// One-shot adversary from a lambda (runs at a specific hook point).
class LambdaAdversary final : public sim::Adversary {
 public:
  std::function<void(sim::Engine&)> on_round_start;
  std::function<void(sim::Engine&)> on_after_sends;
  std::function<void(sim::Engine&)> on_round_end;

  void at_round_start(sim::Engine& e) override {
    if (on_round_start) on_round_start(e);
  }
  void after_sends(sim::Engine& e) override {
    if (on_after_sends) on_after_sends(e);
  }
  void at_round_end(sim::Engine& e) override {
    if (on_round_end) on_round_end(e);
  }
};

}  // namespace congos::testutil
