// Real-wire acceptance tests (ISSUE: real-wire runtime): fork an
// 8-process congos_d cluster over actual UDP sockets on 127.0.0.1, inject
// rumors with wall-clock deadlines, and require the observed-traffic
// audits to pass - once on clean links and once under the seeded
// socket-level fault shim.
//
// The daemon binary comes from $CONGOS_D_BIN (set by tests/CMakeLists.txt
// from the congos_d target); the tests skip when it is absent so the suite
// stays runnable from unusual build layouts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "harness/cluster.h"
#include "wire/compress.h"

namespace congos {
namespace {

std::string daemon_path() {
  const char* env = std::getenv("CONGOS_D_BIN");
  return env != nullptr ? env : "";
}

std::string fresh_workdir(const std::string& tag) {
  return "cluster_" + tag + "_" + std::to_string(::getpid());
}

harness::ClusterConfig base_config(const std::string& tag) {
  harness::ClusterConfig cfg;
  cfg.daemon = daemon_path();
  cfg.workdir = fresh_workdir(tag);
  cfg.n = 8;
  cfg.seed = 20260808;
  cfg.rounds = 64;
  // Generous rounds: CI machines (especially under ASan) deschedule
  // daemons for tens of milliseconds; the retransmission layer absorbs
  // the resulting +-1 round skew.
  cfg.round_ms = 40;
  cfg.duration_s = 60;

  DynamicBitset d1(cfg.n);
  d1.set(3);
  d1.set(5);
  cfg.injections.push_back(
      {/*source=*/0, /*seq=*/1, /*round=*/2, /*deadline=*/40, d1,
       {0x11, 0x22, 0x33, 0x44}});
  DynamicBitset d2(cfg.n);
  d2.set(1);
  d2.set(6);
  d2.set(7);
  cfg.injections.push_back(
      {/*source=*/4, /*seq=*/2, /*round=*/4, /*deadline=*/40, d2,
       {0xAA, 0xBB}});
  return cfg;
}

void expect_cluster_ok(const harness::ClusterResult& r) {
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.exit_codes.size(), 8u);
  for (std::size_t i = 0; i < r.exit_codes.size(); ++i) {
    EXPECT_EQ(r.exit_codes[i], 0) << "daemon " << i << " stats: "
                                  << r.stats_json[i];
  }
  EXPECT_EQ(r.log_parse_errors, 0u);
  EXPECT_EQ(r.injected, 2u);
  EXPECT_GT(r.recv_frames, 0u) << "no traffic observed";

  // QoD (Definition 1) on observed deliveries.
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late
                          << " missing=" << r.qod.missing
                          << " mismatches=" << r.qod.data_mismatches;
  EXPECT_EQ(r.qod.admissible_pairs, 5u);  // 2 + 3 destinations
  EXPECT_EQ(r.qod.delivered_on_time, 5u);

  // Confidentiality (Definition 2) on every decoded wire frame.
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
  EXPECT_EQ(r.unknown_payloads, 0u);
  EXPECT_GT(r.weakest_coalition, 1u);  // Lemma 14: > tau

  EXPECT_TRUE(r.ok());
}

TEST(Cluster, EightDaemonsOverUdpSatisfyQodAndConfidentiality) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  const harness::ClusterConfig cfg = base_config("clean");
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

TEST(Cluster, SurvivesSeededFaultShim) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  harness::ClusterConfig cfg = base_config("faults");
  // Within the delivery-guaranteed envelope (audit::delivery_guaranteed):
  // drop <= 10%, delays bounded by the retransmission layer's budget.
  cfg.fault_spec = "drop:0.05,dup:0.03,delay:2,delay-rate:0.05,seed:7";
  cfg.max_link_delay = 2;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

// The default cluster above runs the batched sendmmsg/recvmmsg fast path;
// this one forces the single-syscall fallback on every daemon. Identical
// acceptance bar: the two wire paths must be behaviorally equivalent at
// cluster scale, not just in the transport unit tests.
TEST(Cluster, SingleSyscallFallbackPathPassesSameAudits) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  harness::ClusterConfig cfg = base_config("nobatch");
  cfg.udp_batch = false;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

// All daemons LZ4-compress their outbound datagrams (the receive side
// auto-detects, so this also exercises the container unwrap on every hop).
TEST(Cluster, Lz4CompressedClusterPassesSameAudits) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  harness::ClusterConfig cfg = base_config("lz4");
  cfg.compress = true;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

TEST(Cluster, ReportsSpawnFailure) {
  harness::ClusterConfig cfg;
  cfg.daemon = "/nonexistent/congos_d";
  cfg.workdir = fresh_workdir("bad");
  cfg.n = 2;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace congos
