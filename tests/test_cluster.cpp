// Real-wire acceptance tests (ISSUE: real-wire runtime): fork an
// 8-process congos_d cluster over actual UDP sockets on 127.0.0.1, inject
// rumors with wall-clock deadlines, and require the observed-traffic
// audits to pass - once on clean links and once under the seeded
// socket-level fault shim.
//
// The daemon binary comes from $CONGOS_D_BIN (set by tests/CMakeLists.txt
// from the congos_d target); the tests skip when it is absent so the suite
// stays runnable from unusual build layouts.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "net/checkpoint.h"
#include "wire/compress.h"

namespace congos {
namespace {

std::string daemon_path() {
  const char* env = std::getenv("CONGOS_D_BIN");
  return env != nullptr ? env : "";
}

std::string fresh_workdir(const std::string& tag) {
  return "cluster_" + tag + "_" + std::to_string(::getpid());
}

harness::ClusterConfig base_config(const std::string& tag) {
  harness::ClusterConfig cfg;
  cfg.daemon = daemon_path();
  cfg.workdir = fresh_workdir(tag);
  cfg.n = 8;
  cfg.seed = 20260808;
  cfg.rounds = 64;
  // Generous rounds: CI machines (especially under ASan) deschedule
  // daemons for tens of milliseconds; the retransmission layer absorbs
  // the resulting +-1 round skew.
  cfg.round_ms = 40;
  cfg.duration_s = 60;

  DynamicBitset d1(cfg.n);
  d1.set(3);
  d1.set(5);
  cfg.injections.push_back(
      {/*source=*/0, /*seq=*/1, /*round=*/2, /*deadline=*/40, d1,
       {0x11, 0x22, 0x33, 0x44}});
  DynamicBitset d2(cfg.n);
  d2.set(1);
  d2.set(6);
  d2.set(7);
  cfg.injections.push_back(
      {/*source=*/4, /*seq=*/2, /*round=*/4, /*deadline=*/40, d2,
       {0xAA, 0xBB}});
  return cfg;
}

void expect_cluster_ok(const harness::ClusterResult& r) {
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.exit_codes.size(), 8u);
  for (std::size_t i = 0; i < r.exit_codes.size(); ++i) {
    EXPECT_EQ(r.exit_codes[i], 0) << "daemon " << i << " stats: "
                                  << r.stats_json[i];
  }
  EXPECT_EQ(r.log_parse_errors, 0u);
  EXPECT_EQ(r.injected, 2u);
  EXPECT_GT(r.recv_frames, 0u) << "no traffic observed";

  // QoD (Definition 1) on observed deliveries.
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late
                          << " missing=" << r.qod.missing
                          << " mismatches=" << r.qod.data_mismatches;
  EXPECT_EQ(r.qod.admissible_pairs, 5u);  // 2 + 3 destinations
  EXPECT_EQ(r.qod.delivered_on_time, 5u);

  // Confidentiality (Definition 2) on every decoded wire frame.
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
  EXPECT_EQ(r.unknown_payloads, 0u);
  EXPECT_GT(r.weakest_coalition, 1u);  // Lemma 14: > tau

  EXPECT_TRUE(r.ok());
}

TEST(Cluster, EightDaemonsOverUdpSatisfyQodAndConfidentiality) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  const harness::ClusterConfig cfg = base_config("clean");
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

TEST(Cluster, SurvivesSeededFaultShim) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  harness::ClusterConfig cfg = base_config("faults");
  // Within the delivery-guaranteed envelope (audit::delivery_guaranteed):
  // drop <= 10%, delays bounded by the retransmission layer's budget.
  cfg.fault_spec = "drop:0.05,dup:0.03,delay:2,delay-rate:0.05,seed:7";
  cfg.max_link_delay = 2;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

// The default cluster above runs the batched sendmmsg/recvmmsg fast path;
// this one forces the single-syscall fallback on every daemon. Identical
// acceptance bar: the two wire paths must be behaviorally equivalent at
// cluster scale, not just in the transport unit tests.
TEST(Cluster, SingleSyscallFallbackPathPassesSameAudits) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  harness::ClusterConfig cfg = base_config("nobatch");
  cfg.udp_batch = false;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

// All daemons LZ4-compress their outbound datagrams (the receive side
// auto-detects, so this also exercises the container unwrap on every hop).
TEST(Cluster, Lz4CompressedClusterPassesSameAudits) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  harness::ClusterConfig cfg = base_config("lz4");
  cfg.compress = true;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  expect_cluster_ok(r);
}

// -- crash/restart survival (DESIGN.md section 14) ---------------------------

TEST(KillSchedule, ReproducibleFromSeedAndRespectsProtectedIds) {
  harness::KillScheduleConfig gen;
  gen.seed = 99;
  gen.kills = 3;
  gen.protected_ids = {0, 4};
  const auto a = harness::make_kill_schedule(gen, 8, 64);
  const auto b = harness::make_kill_schedule(gen, 8, 64);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), a.size());
  std::vector<bool> seen(8, false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].kill_round, b[i].kill_round);
    EXPECT_EQ(a[i].down_rounds, b[i].down_rounds);
    EXPECT_NE(a[i].target, 0u);
    EXPECT_NE(a[i].target, 4u);
    EXPECT_FALSE(seen[a[i].target]) << "victim drawn twice";
    seen[a[i].target] = true;
    EXPECT_GE(a[i].kill_round, gen.min_round);
    // Auto max leaves room to resume and drain before the round budget.
    EXPECT_LE(a[i].kill_round + a[i].down_rounds, 64 - 8);
    EXPECT_GE(a[i].down_rounds, gen.down_min);
    EXPECT_LE(a[i].down_rounds, gen.down_max);
    if (i > 0) EXPECT_GE(a[i].kill_round, a[i - 1].kill_round);
  }
  // A different seed draws a different schedule.
  gen.seed = 100;
  const auto c = harness::make_kill_schedule(gen, 8, 64);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_diff = any_diff || c[i].target != a[i].target ||
               c[i].kill_round != a[i].kill_round;
  }
  EXPECT_TRUE(any_diff);
}

// The chaos acceptance gate from the issue: SIGKILL two of the eight
// daemons mid-run on a fixed schedule, respawn them with --resume from
// their durable checkpoints, and require both auditors to pass under the
// paper's continuously-alive admissibility rule. Daemon 6 is a destination
// of rumor 2 and dies inside its delivery window, so (rumor2, 6) becomes
// inadmissible; daemon 2 is neither source nor destination. Everything
// else must still deliver on time.
TEST(Cluster, SurvivesScheduledKillsWithResume) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  harness::ClusterConfig cfg = base_config("chaos");
  cfg.checkpoint_every = 4;
  cfg.kill_plan = {{/*target=*/2, /*kill_round=*/10, /*down_rounds=*/6},
                   {/*target=*/6, /*kill_round=*/14, /*down_rounds=*/8}};
  const harness::ClusterResult r = harness::run_cluster(cfg);

  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.exit_codes.size(), 8u);
  for (std::size_t i = 0; i < r.exit_codes.size(); ++i) {
    EXPECT_EQ(r.exit_codes[i], 0) << "daemon " << i << " stats: "
                                  << r.stats_json[i];
  }
  EXPECT_EQ(r.scheduled_kills, 2u);
  EXPECT_EQ(r.resumes, 2u);
  EXPECT_EQ(r.unexpected_exits, 0u);
  EXPECT_EQ(r.respawn_failures, 0u);

  EXPECT_EQ(r.injected, 2u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late
                          << " missing=" << r.qod.missing
                          << " mismatches=" << r.qod.data_mismatches;
  EXPECT_EQ(r.qod.admissible_pairs, 4u);   // (rumor2, 6) crashed out
  EXPECT_EQ(r.qod.delivered_on_time, 4u);

  // Confidentiality across crash/restart - wire frames AND the checkpoint
  // files the respawned daemons left on disk.
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
  EXPECT_EQ(r.state_files_audited, 8u);
  EXPECT_EQ(r.state_file_errors, 0u);
  EXPECT_GT(r.weakest_coalition, 1u);

  // The resumed incarnations report their lineage.
  for (const ProcessId victim : {2, 6}) {
    EXPECT_NE(r.stats_json[victim].find("\"resume_count\":1"),
              std::string::npos)
        << "daemon " << victim << " stats: " << r.stats_json[victim];
  }
  EXPECT_TRUE(r.ok());
}

// Same gate, but with the kill schedule drawn from a seed instead of
// hand-picked - the real-wire echo of the sim adversary's RandomChurn.
// Victims and timings vary with the seed, so the QoD assertion is the
// invariant form: no admissible pair may be late or missing.
TEST(Cluster, SeededKillSchedulePassesBothAuditors) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  harness::ClusterConfig cfg = base_config("seeded");
  harness::KillScheduleConfig gen;
  gen.seed = cfg.seed;
  gen.kills = 2;
  gen.protected_ids = {0, 4};  // injection sources outlive their deadlines
  cfg.kill_plan = harness::make_kill_schedule(gen, cfg.n, cfg.rounds);
  ASSERT_EQ(cfg.kill_plan.size(), 2u);
  cfg.checkpoint_every = 4;
  const harness::ClusterResult r = harness::run_cluster(cfg);

  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.scheduled_kills, 2u);
  EXPECT_EQ(r.resumes, 2u);
  EXPECT_EQ(r.unexpected_exits, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late
                          << " missing=" << r.qod.missing;
  EXPECT_LE(r.qod.admissible_pairs, 5u);
  EXPECT_EQ(r.qod.delivered_on_time, r.qod.admissible_pairs);
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.state_files_audited, 8u);
  EXPECT_EQ(r.state_file_errors, 0u);
  EXPECT_TRUE(r.ok());
}

// An unscheduled death must be surfaced, never masked: daemon 3's
// --duration backstop is shrunk so it exits mid-run (code 3) with no kill
// scheduled. The supervisor records it as an unexpected exit and ok()
// fails, even though the run itself completes.
TEST(Cluster, UnexpectedExitIsSurfacedNotMasked) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  harness::ClusterConfig cfg = base_config("unexpected");
  cfg.duration_overrides.assign(cfg.n, 0);
  cfg.duration_overrides[3] = 1;  // dies ~1s in, long before round 64
  const harness::ClusterResult r = harness::run_cluster(cfg);

  EXPECT_TRUE(r.error.empty()) << r.error;  // surfaced as data, not failure
  EXPECT_EQ(r.unexpected_exits, 1u);
  EXPECT_EQ(r.scheduled_kills, 0u);
  EXPECT_EQ(r.resumes, 0u);
  ASSERT_EQ(r.exit_codes.size(), 8u);
  EXPECT_EQ(r.exit_codes[3], 3);  // the real exit code, recorded verbatim
  EXPECT_FALSE(r.daemons_ok());
  EXPECT_FALSE(r.ok());
}

// congos_d --resume must reject damaged state files with exit code 2
// (setup failure) before touching the network: garbage bytes and a
// truncated-but-genuine checkpoint both count.
TEST(Cluster, DaemonRejectsCorruptOrTruncatedStateFile) {
  if (daemon_path().empty()) GTEST_SKIP() << "CONGOS_D_BIN not set";
  const auto run_resume = [&](const std::string& state) {
    const std::string cmd = daemon_path() + " --id=0 --n=2 --resume=" + state +
                            " >/dev/null 2>&1";
    const int st = std::system(cmd.c_str());
    EXPECT_TRUE(WIFEXITED(st));
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
  };

  const std::string tag = std::to_string(::getpid());
  const std::string garbage = "resume_garbage_" + tag + ".ckpt";
  std::FILE* f = std::fopen(garbage.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a checkpoint", f);
  std::fclose(f);
  EXPECT_EQ(run_resume(garbage), 2);

  net::NodeCheckpoint ck;
  ck.id = 0;
  ck.n = 2;
  ck.seed = 5;
  ck.round_ms = 40;
  ck.round = 4;
  const std::vector<std::uint8_t> bytes = net::encode_checkpoint(ck);
  ASSERT_GT(bytes.size(), 5u);
  const std::string truncated = "resume_truncated_" + tag + ".ckpt";
  f = std::fopen(truncated.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size() - 5, f),
            bytes.size() - 5);
  std::fclose(f);
  EXPECT_EQ(run_resume(truncated), 2);

  EXPECT_EQ(run_resume("no_such_state_file.ckpt"), 2);

  std::remove(garbage.c_str());
  std::remove(truncated.c_str());
}

TEST(Cluster, ReportsSpawnFailure) {
  harness::ClusterConfig cfg;
  cfg.daemon = "/nonexistent/congos_d";
  cfg.workdir = fresh_workdir("bad");
  cfg.n = 2;
  const harness::ClusterResult r = harness::run_cluster(cfg);
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace congos
