// Targeted failure injection at the protocol's structural weak points:
// whole-group kills (the reason log n partitions exist - Lemma 5), mass
// crashes down to two survivors, block-boundary harassment, and
// source-kills right after injection.
#include <gtest/gtest.h>

#include "adversary/patterns.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "congos/congos_process.h"
#include "harness/scenario.h"
#include "sim/engine.h"

namespace congos {
namespace {

struct Rig {
  std::shared_ptr<const core::CongosConfig> cfg;
  std::shared_ptr<const partition::PartitionSet> partitions;
  std::unique_ptr<audit::DeliveryAuditor> qod;
  std::unique_ptr<audit::ConfidentialityAuditor> conf;
  std::unique_ptr<sim::Engine> engine;
};

Rig make_rig(std::size_t n, std::uint64_t seed) {
  Rig rig;
  core::CongosConfig ccfg;
  rig.cfg = std::make_shared<const core::CongosConfig>(ccfg);
  rig.partitions = core::CongosProcess::build_partitions(n, ccfg);
  rig.qod = std::make_unique<audit::DeliveryAuditor>(n);
  rig.conf = std::make_unique<audit::ConfidentialityAuditor>(n, rig.partitions.get());
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(seed);
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, rig.cfg, rig.partitions,
                                                          seeder.next(), rig.qod.get()));
  }
  rig.engine = std::make_unique<sim::Engine>(std::move(procs), seeder.next());
  rig.engine->add_observer(rig.qod.get());
  rig.engine->add_observer(rig.conf.get());
  return rig;
}

sim::Rumor rumor_between(std::size_t n, ProcessId src, std::vector<std::uint32_t> dest,
                         Round deadline) {
  auto r = sim::make_rumor(src, 1, adversary::canonical_payload({src, 1}, 16),
                           deadline, DynamicBitset::from_indices(n, dest));
  return r;
}

TEST(CongosFailures, TwoSurvivorsStillDeliver) {
  // Lemma 5's extreme: right after injection, everyone except the source
  // and the single destination is crashed. Some bit partition separates the
  // two survivors, and in the worst case the deadline fallback covers it -
  // either way QoD must hold.
  const std::size_t n = 16;
  auto rig = make_rig(n, 91);
  adversary::Composite adv;
  std::vector<adversary::OneShot::Item> items;
  items.push_back({4, rumor_between(n, 3, {12}, 64)});
  adv.add(std::make_unique<adversary::OneShot>(std::move(items)));
  DynamicBitset survivors(n);
  survivors.set(3);
  survivors.set(12);
  adv.add(std::make_unique<adversary::MassCrash>(6, survivors));
  rig.engine->set_adversary(&adv);
  rig.engine->run(80);

  EXPECT_EQ(rig.qod->delivery_round({3, 1}, 12) != kNoRound, true);
  const auto report = rig.qod->finalize(rig.engine->now());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.admissible_pairs, 1u);
  EXPECT_EQ(rig.conf->leaks(), 0u);
}

TEST(CongosFailures, WholeGroupOfOnePartitionKilled) {
  // Kill every process in group 0 of partition 0 (all even ids) except none
  // of the rumor's endpoints (both odd): the remaining partitions must keep
  // the pipeline alive (this is exactly why there are log n partitions).
  const std::size_t n = 16;
  auto rig = make_rig(n, 92);
  adversary::Composite adv;
  std::vector<adversary::OneShot::Item> items;
  items.push_back({2, rumor_between(n, 1, {5, 13}, 64)});
  adv.add(std::make_unique<adversary::OneShot>(std::move(items)));
  std::vector<adversary::Scripted::Event> kills;
  for (ProcessId p = 0; p < n; p += 2) {
    kills.push_back({3, adversary::Scripted::Event::Kind::kCrash, p,
                     sim::PartialDelivery::kDropAll});
  }
  adv.add(std::make_unique<adversary::Scripted>(std::move(kills)));
  rig.engine->set_adversary(&adv);
  rig.engine->run(80);

  const auto report = rig.qod->finalize(rig.engine->now());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.admissible_pairs, 2u);
  EXPECT_EQ(report.delivered_on_time, 2u);
  EXPECT_EQ(rig.conf->leaks(), 0u);
}

TEST(CongosFailures, BlockBoundaryHarassment) {
  // One process is crashed at every 16-round boundary and restarted 2
  // rounds later: it never accumulates the uptime the services need, so it
  // contributes nothing - but rumors between the *other* processes must be
  // unaffected, and rumors destined to it are simply not admissible.
  const std::size_t n = 16;
  auto rig = make_rig(n, 93);
  adversary::Composite adv;

  adversary::Continuous::Options w;
  w.inject_prob = 0.05;
  w.deadlines = {64};
  w.dest_min = 2;
  w.dest_max = 4;
  w.last_injection_round = 200;
  adv.add(std::make_unique<adversary::Continuous>(w));

  std::vector<adversary::Scripted::Event> events;
  for (Round b = 16; b <= 260; b += 16) {
    events.push_back({b, adversary::Scripted::Event::Kind::kCrash, 9,
                      sim::PartialDelivery::kRandom});
    events.push_back({b + 2, adversary::Scripted::Event::Kind::kRestart, 9,
                      sim::PartialDelivery::kRandom});
  }
  adv.add(std::make_unique<adversary::Scripted>(std::move(events)));
  rig.engine->set_adversary(&adv);
  rig.engine->run(200 + 64 + 4);

  const auto report = rig.qod->finalize(rig.engine->now());
  EXPECT_GT(rig.qod->injected_count(), 0u);
  EXPECT_TRUE(report.ok()) << "late=" << report.late << " missing=" << report.missing;
  EXPECT_EQ(rig.conf->leaks(), 0u);
}

TEST(CongosFailures, SourceKilledImmediatelyAfterInjection) {
  // The adversary crashes the source in the very round of injection with
  // all its messages dropped: the rumor is not admissible for anyone, so
  // nothing is required - but nothing may leak either, and the auditors
  // must classify it correctly.
  const std::size_t n = 16;
  auto rig = make_rig(n, 94);

  struct KillSource final : sim::Adversary {
    bool injected = false;
    void at_round_start(sim::Engine& e) override {
      if (e.now() == 2) {
        e.inject(4, sim::make_rumor(4, 1, {1, 2, 3}, 64,
                                    DynamicBitset::from_indices(e.n(), {7, 9})));
        injected = true;
      }
    }
    void after_sends(sim::Engine& e) override {
      if (e.now() == 2) e.crash(4, sim::PartialDelivery::kDropAll);
    }
  } adv;
  rig.engine->set_adversary(&adv);
  rig.engine->run(80);

  const auto report = rig.qod->finalize(rig.engine->now());
  EXPECT_EQ(report.admissible_pairs, 0u);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(rig.conf->leaks(), 0u);
}

TEST(CongosFailures, LazyMajorityCannotBreakAnything) {
  // Section 7's "malicious users" direction: half the processes freeload
  // (drop proxy requests, never run GroupDistribution). QoD and
  // confidentiality are unconditional; the honest minority plus the source
  // fallback carry the load.
  harness::ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = 96;
  cfg.rounds = 256;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.lazy_fraction = 0.5;
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  const auto r = harness::run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
}

TEST(CongosFailures, LazyAndChurnTogether) {
  harness::ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = 97;
  cfg.rounds = 256;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.lazy_fraction = 0.25;
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  cfg.churn = adversary::RandomChurn::Options{};
  cfg.churn->crash_prob = 0.004;
  cfg.churn->restart_prob = 0.05;
  cfg.churn->min_alive = 6;
  const auto r = harness::run_scenario(cfg);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
}

TEST(CongosFailures, DestinationChurnsAroundTheDeadline) {
  // A destination crashes mid-window and restarts before the deadline: not
  // continuously alive, so exempt - but it frequently still gets the rumor
  // (bonus delivery) because fragments keep flowing.
  const std::size_t n = 16;
  auto rig = make_rig(n, 95);
  adversary::Composite adv;
  std::vector<adversary::OneShot::Item> items;
  items.push_back({2, rumor_between(n, 1, {5, 6}, 64)});
  adv.add(std::make_unique<adversary::OneShot>(std::move(items)));
  std::vector<adversary::Scripted::Event> events{
      {20, adversary::Scripted::Event::Kind::kCrash, 6,
       sim::PartialDelivery::kDropAll},
      {30, adversary::Scripted::Event::Kind::kRestart, 6,
       sim::PartialDelivery::kDeliverAll},
  };
  adv.add(std::make_unique<adversary::Scripted>(std::move(events)));
  rig.engine->set_adversary(&adv);
  rig.engine->run(100);

  const auto report = rig.qod->finalize(rig.engine->now());
  EXPECT_EQ(report.admissible_pairs, 1u);  // only p5
  EXPECT_EQ(report.delivered_on_time, 1u);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(rig.conf->leaks(), 0u);
}

}  // namespace
}  // namespace congos
