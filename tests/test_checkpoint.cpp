// Durable checkpoint coverage (DESIGN.md section 14): the codec rejects
// every corruption we can synthesize (truncation at each offset, each bit
// flipped, foreign versions, non-monotone journals, stale clock bindings),
// the file writer is atomic, and - the core guarantee - a NodeRuntime
// resumed from a checkpoint is byte-for-byte the process that would have
// existed had the crash never happened, pinned over a deterministic
// SimLink cluster including the partially-buffered-inbox case.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/checkpoint.h"
#include "net/runtime.h"
#include "net/sim_transport.h"
#include "replay/codec.h"

namespace congos {
namespace {

net::NodeCheckpoint sample_checkpoint() {
  net::NodeCheckpoint ck;
  ck.id = 3;
  ck.n = 8;
  ck.seed = 20260808;
  ck.tau = 2;
  ck.allow_degenerate = false;
  ck.retransmit.enabled = true;
  ck.retransmit.budget = 4;
  ck.retransmit.max_link_delay = 2;
  ck.max_rounds = 64;
  ck.epoch_ms = 1754600000123;
  ck.round_ms = 40;
  ck.round = 17;
  ck.resume_count = 1;

  net::CheckpointEvent inj;
  inj.round = 2;
  inj.kind = net::CheckpointEvent::Kind::kInject;
  inj.seq = 9;
  inj.deadline = 40;
  inj.dest = DynamicBitset(8);
  inj.dest.set(1);
  inj.dest.set(6);
  inj.data = {0xDE, 0xAD, 0xBE, 0xEF};
  ck.events.push_back(inj);

  net::CheckpointEvent recv;
  recv.round = 17;
  recv.kind = net::CheckpointEvent::Kind::kRecv;
  recv.frame = {0x01, 0x02, 0x03, 0x04, 0x05};
  ck.events.push_back(recv);
  return ck;
}

TEST(CheckpointCodec, RoundTripsAllFields) {
  const net::NodeCheckpoint ck = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = net::encode_checkpoint(ck);
  net::NodeCheckpoint back;
  std::string err;
  ASSERT_TRUE(net::decode_checkpoint(bytes, &back, &err)) << err;
  EXPECT_TRUE(back == ck);
}

TEST(CheckpointCodec, RejectsTruncationAtEveryOffset) {
  const std::vector<std::uint8_t> bytes =
      net::encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    net::NodeCheckpoint back;
    std::string err;
    EXPECT_FALSE(net::decode_checkpoint(bytes.data(), len, &back, &err))
        << "accepted a file truncated to " << len << " bytes";
  }
}

TEST(CheckpointCodec, RejectsEveryBitFlip) {
  const std::vector<std::uint8_t> good =
      net::encode_checkpoint(sample_checkpoint());
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      std::vector<std::uint8_t> bad = good;
      bad[i] ^= static_cast<std::uint8_t>(1u << b);
      net::NodeCheckpoint back;
      std::string err;
      EXPECT_FALSE(net::decode_checkpoint(bad, &back, &err))
          << "accepted bit " << b << " of byte " << i << " flipped";
    }
  }
}

TEST(CheckpointCodec, RejectsUnknownVersion) {
  // Patch the version field (u32 after the u64 magic) and re-seal the
  // checksum so only the version check can reject it.
  std::vector<std::uint8_t> bytes = net::encode_checkpoint(sample_checkpoint());
  bytes[8] = 0x63;
  const std::size_t body = bytes.size() - 8;
  const std::uint64_t sum = replay::fnv1a(bytes.data(), body);
  for (int b = 0; b < 8; ++b) {
    bytes[body + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(sum >> (8 * b));
  }
  net::NodeCheckpoint back;
  std::string err;
  EXPECT_FALSE(net::decode_checkpoint(bytes, &back, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(CheckpointCodec, RejectsNonMonotoneJournalRounds) {
  net::NodeCheckpoint ck = sample_checkpoint();
  std::swap(ck.events[0], ck.events[1]);  // 17 then 2: order violated
  net::NodeCheckpoint back;
  std::string err;
  EXPECT_FALSE(net::decode_checkpoint(net::encode_checkpoint(ck), &back, &err));
  EXPECT_NE(err.find("monotone"), std::string::npos) << err;
}

TEST(CheckpointCodec, RejectsJournalEventPastCheckpointRound) {
  net::NodeCheckpoint ck = sample_checkpoint();
  ck.events.back().round = ck.round + 1;
  net::NodeCheckpoint back;
  std::string err;
  EXPECT_FALSE(net::decode_checkpoint(net::encode_checkpoint(ck), &back, &err));
  EXPECT_NE(err.find("past checkpoint round"), std::string::npos) << err;
}

TEST(CheckpointCodec, StaleClockBindingRejected) {
  const net::NodeCheckpoint ck = sample_checkpoint();
  std::string err;
  EXPECT_TRUE(net::validate_checkpoint_clock(ck, ck.epoch_ms, ck.round_ms, &err));
  EXPECT_FALSE(net::validate_checkpoint_clock(ck, ck.epoch_ms + 1, ck.round_ms, &err));
  EXPECT_NE(err.find("stale"), std::string::npos) << err;
  EXPECT_FALSE(net::validate_checkpoint_clock(ck, ck.epoch_ms, ck.round_ms + 5, &err));
}

TEST(CheckpointFile, AtomicWriteReadBackAndRewrite) {
  const std::string path =
      "checkpoint_io_" + std::to_string(::getpid()) + ".ckpt";
  net::NodeCheckpoint ck = sample_checkpoint();
  std::string err;
  ASSERT_TRUE(net::write_checkpoint_file(path, ck, &err)) << err;
  // The temp file must be gone: a crash between write and rename leaves
  // either the old complete file or the new one, never a torn hybrid.
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);

  net::NodeCheckpoint back;
  ASSERT_TRUE(net::read_checkpoint_file(path, &back, &err)) << err;
  EXPECT_TRUE(back == ck);

  ck.round = 21;
  ck.resume_count = 2;
  ASSERT_TRUE(net::write_checkpoint_file(path, ck, &err)) << err;
  ASSERT_TRUE(net::read_checkpoint_file(path, &back, &err)) << err;
  EXPECT_EQ(back.round, 21);
  EXPECT_EQ(back.resume_count, 2u);
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsGarbageAndMissingFiles) {
  const std::string path =
      "checkpoint_garbage_" + std::to_string(::getpid()) + ".ckpt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a checkpoint file", f);
  std::fclose(f);
  net::NodeCheckpoint back;
  std::string err;
  EXPECT_FALSE(net::read_checkpoint_file(path, &back, &err));
  EXPECT_FALSE(net::read_checkpoint_file("no_such_file.ckpt", &back, &err));
  std::remove(path.c_str());
}

// -- resume equivalence over a deterministic SimLink cluster ------------------

net::NodeConfig node_cfg(ProcessId p, std::size_t n, std::uint64_t seed,
                         Round max_rounds) {
  net::NodeConfig cfg;
  cfg.id = p;
  cfg.n = n;
  cfg.seed = seed;
  cfg.max_rounds = max_rounds;
  cfg.journal = true;  // checkpoint via make_checkpoint(), no file needed
  cfg.congos.allow_degenerate = false;
  cfg.congos.retransmit.enabled = true;
  cfg.congos.retransmit.max_link_delay = 1;
  return cfg;
}

struct Feed final : net::DatagramSink {
  net::NodeRuntime* rt = nullptr;
  void on_datagram(ProcessId from, std::span<const std::uint8_t> d) override {
    rt->handle_datagram(from, d);
  }
};

/// A SimLink cluster with explicit per-step control so the test can crash
/// and resume one node at any point inside a round.
struct ResumableCluster {
  std::size_t n;
  std::uint64_t seed;
  Round max_rounds;
  net::SimLink link;
  std::vector<std::unique_ptr<net::NodeRuntime>> nodes;

  ResumableCluster(std::size_t n_, std::uint64_t seed_, Round max_rounds_)
      : n(n_), seed(seed_), max_rounds(max_rounds_), link(n_) {
    for (ProcessId p = 0; p < n; ++p) {
      nodes.push_back(std::make_unique<net::NodeRuntime>(
          node_cfg(p, n, seed, max_rounds), &link.endpoint(p)));
      std::string err;
      EXPECT_TRUE(nodes.back()->start(&err)) << err;
    }
  }

  void poll_into(ProcessId p) {
    Feed feed;
    feed.rt = nodes[p].get();
    link.endpoint(p).poll(0, feed);
  }

  void run_rounds(Round count) {
    for (Round i = 0; i < count; ++i) {
      link.advance_round();
      const Round target = link.round();
      for (ProcessId p = 0; p < n; ++p) {
        poll_into(p);
        nodes[p]->advance_to(target);
      }
    }
  }

  /// Kill node p and bring up a fresh runtime resumed from `ck` on the
  /// same link endpoint.
  void crash_and_resume(ProcessId p, const net::NodeCheckpoint& ck) {
    nodes[p].reset();
    nodes[p] = std::make_unique<net::NodeRuntime>(
        node_cfg(p, n, seed, max_rounds), &link.endpoint(p));
    std::string err;
    ASSERT_TRUE(nodes[p]->resume(ck, &err)) << err;
  }

  std::string fingerprint(ProcessId p) const {
    const net::NodeRuntime& rt = *nodes[p];
    return std::to_string(rt.now()) + "/" + std::to_string(rt.injections()) +
           "/" + std::to_string(rt.deliveries()) + "/" +
           std::to_string(rt.frames_received()) + "/" +
           (rt.healthy() ? "ok" : "BAD");
  }
};

TEST(NodeRuntimeResume, ResumedNodeMatchesUninterruptedRun) {
  const std::size_t n = 4;
  const std::uint64_t seed = 7;
  // Long enough for the deadline-40 pipeline to deliver: the comparison
  // below must cover post-delivery state, not just mid-flight state.
  const Round rounds = 48;
  const ProcessId victim = 2;

  const auto inject = [&](ResumableCluster& c) {
    DynamicBitset dest(n);
    dest.set(2);
    c.run_rounds(1);
    c.nodes[1]->inject(5, 40, dest, {0xAB, 0xCD});
  };

  // Reference: no crash.
  ResumableCluster a(n, seed, rounds);
  inject(a);
  a.run_rounds(rounds - 1);
  ASSERT_GE(a.nodes[victim]->deliveries(), 1u)
      << "reference run never delivered; the equivalence check would be "
         "vacuous";

  // Crash victim mid-round 14: frames for the closing round are already
  // polled into its inbox (journaled at the checkpoint round), the round
  // is not yet ticked - the hardest point to reconstruct.
  ResumableCluster b(n, seed, rounds);
  inject(b);
  b.run_rounds(13);  // every node now at round 14
  b.link.advance_round();
  const Round target = b.link.round();
  for (ProcessId p = 0; p < n; ++p) b.poll_into(p);
  const net::NodeCheckpoint ck = b.nodes[victim]->make_checkpoint();
  EXPECT_EQ(ck.round, 14);
  b.crash_and_resume(victim, ck);
  EXPECT_EQ(b.nodes[victim]->resume_count(), 1u);
  EXPECT_EQ(b.nodes[victim]->resumed_at(), 14);
  for (ProcessId p = 0; p < n; ++p) b.nodes[p]->advance_to(target);
  b.run_rounds(rounds - 15);

  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_EQ(a.fingerprint(p), b.fingerprint(p)) << "node " << p;
    EXPECT_TRUE(b.nodes[p]->healthy()) << b.nodes[p]->stats_json();
  }
  // The resumed incarnation reports its lineage in stats.
  const std::string stats = b.nodes[victim]->stats_json();
  EXPECT_NE(stats.find("\"resume_count\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"uptime_rounds\":"), std::string::npos) << stats;
}

TEST(NodeRuntimeResume, JournalSurvivesChainedResumes) {
  // Resume-of-a-resume: the journal carried forward must keep the full
  // history, not just the events since the last incarnation.
  const std::size_t n = 4;
  const Round rounds = 48;  // deadline-40 pipeline delivers near round 41
  ResumableCluster c(n, 11, rounds);
  DynamicBitset dest(n);
  dest.set(3);
  c.run_rounds(1);
  c.nodes[0]->inject(1, 40, dest, {0x42});
  c.run_rounds(7);

  net::NodeCheckpoint ck1 = c.nodes[3]->make_checkpoint();
  c.crash_and_resume(3, ck1);
  c.run_rounds(8);

  net::NodeCheckpoint ck2 = c.nodes[3]->make_checkpoint();
  EXPECT_EQ(ck2.resume_count, 1u);
  EXPECT_GE(ck2.events.size(), ck1.events.size());
  c.crash_and_resume(3, ck2);
  EXPECT_EQ(c.nodes[3]->resume_count(), 2u);
  c.run_rounds(rounds - 16);
  EXPECT_TRUE(c.nodes[3]->healthy()) << c.nodes[3]->stats_json();
  EXPECT_GE(c.nodes[3]->deliveries(), 1u);
}

TEST(NodeRuntimeResume, RejectsMismatchedConfigBinding) {
  ResumableCluster c(4, 7, 24);
  c.run_rounds(4);
  const net::NodeCheckpoint ck = c.nodes[1]->make_checkpoint();

  net::NodeConfig other = node_cfg(1, 4, /*seed=*/8, 24);  // wrong seed
  net::SimLink lonely(4);
  net::NodeRuntime rt(other, &lonely.endpoint(1));
  std::string err;
  EXPECT_FALSE(rt.resume(ck, &err));
  EXPECT_NE(err.find("config binding"), std::string::npos) << err;
}

}  // namespace
}  // namespace congos
