#include "partition/partition.h"

#include <gtest/gtest.h>

#include "partition/bit_partition.h"
#include "partition/random_partition.h"

namespace congos::partition {
namespace {

TEST(Partition, GroupMembershipConsistent) {
  Partition p(6, 3, {0, 1, 2, 0, 1, 2});
  EXPECT_EQ(p.n(), 6u);
  EXPECT_EQ(p.num_groups(), 3u);
  for (ProcessId q = 0; q < 6; ++q) {
    EXPECT_TRUE(p.members(p.group_of(q)).test(q));
    for (GroupIndex g = 0; g < 3; ++g) {
      if (g != p.group_of(q)) {
        EXPECT_FALSE(p.members(g).test(q));
      }
    }
  }
  EXPECT_EQ(p.group_size(0), 2u);
  EXPECT_TRUE(p.well_formed());
}

TEST(Partition, EmptyGroupDetected) {
  Partition p(4, 3, {0, 1, 0, 1});  // group 2 empty
  EXPECT_FALSE(p.well_formed());
}

TEST(Partition, CoversRequiresAllGroups) {
  Partition p(6, 2, {0, 0, 0, 1, 1, 1});
  DynamicBitset both(6), left(6);
  both.set(0);
  both.set(5);
  left.set(0);
  left.set(1);
  EXPECT_TRUE(p.covers(both));
  EXPECT_FALSE(p.covers(left));
}

TEST(BitPartition, CountMatchesCeilLog2) {
  EXPECT_EQ(bit_partition_count(2), 1);
  EXPECT_EQ(bit_partition_count(3), 2);
  EXPECT_EQ(bit_partition_count(4), 2);
  EXPECT_EQ(bit_partition_count(5), 3);
  EXPECT_EQ(bit_partition_count(64), 6);
  EXPECT_EQ(bit_partition_count(65), 7);
}

class BitPartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitPartitionSweep, WellFormedTwoGroups) {
  const std::size_t n = GetParam();
  auto set = make_bit_partitions(n);
  EXPECT_EQ(set.count(), static_cast<std::size_t>(bit_partition_count(n)));
  for (PartitionIndex l = 0; l < set.count(); ++l) {
    EXPECT_EQ(set[l].num_groups(), 2u);
    EXPECT_TRUE(set[l].well_formed());
    EXPECT_EQ(set[l].group_size(0) + set[l].group_size(1), n);
  }
}

TEST_P(BitPartitionSweep, Lemma5SeparatesEveryPair) {
  // Lemma 5: any two distinct ids differ in some bit, so some partition
  // separates them.
  const std::size_t n = GetParam();
  auto set = make_bit_partitions(n);
  for (ProcessId p = 0; p < n; ++p) {
    for (ProcessId q = p + 1; q < n; ++q) {
      const auto l = set.separating(p, q);
      ASSERT_LT(l, set.count()) << p << "," << q;
      EXPECT_NE(set[l].group_of(p), set[l].group_of(q));
    }
  }
}

TEST_P(BitPartitionSweep, GroupIsBitOfId) {
  const std::size_t n = GetParam();
  auto set = make_bit_partitions(n);
  for (PartitionIndex l = 0; l < set.count(); ++l) {
    for (ProcessId p = 0; p < n; ++p) {
      EXPECT_EQ(set[l].group_of(p), (p >> l) & 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitPartitionSweep,
                         ::testing::Values(2, 3, 5, 8, 17, 64, 100, 128));

TEST(PartitionSet, SeparatingReturnsCountWhenInseparable) {
  // A single partition putting everyone in group 0 vs 1 by parity cannot
  // separate two even ids.
  Partition p(4, 2, {0, 1, 0, 1});
  PartitionSet set({p});
  EXPECT_EQ(set.separating(0, 2), set.count());
  EXPECT_EQ(set.separating(0, 1), 0u);
}

class RandomPartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {};

TEST_P(RandomPartitionSweep, PropertiesHold) {
  const auto [n, tau] = GetParam();
  Rng rng(n * 31 + tau);
  RandomPartitionOptions opt;
  opt.tau = tau;
  auto result = make_random_partitions(n, opt, rng);
  const auto& set = result.partitions;
  EXPECT_GE(set.count(), 1u);
  // Partition-Property 1, checked exactly:
  for (PartitionIndex l = 0; l < set.count(); ++l) {
    EXPECT_EQ(set[l].num_groups(), tau + 1);
    EXPECT_TRUE(set[l].well_formed());
  }
  // Partition-Property 2 on fresh random subsets (not the construction's own
  // verification samples):
  Rng check(999 + n);
  const std::size_t subset = std::min<std::size_t>(result.property2_subset_size, n);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = check.sample_without_replacement(static_cast<std::uint32_t>(n),
                                                static_cast<std::uint32_t>(subset));
    auto s = DynamicBitset::from_indices(n, idx);
    bool covered = false;
    for (PartitionIndex l = 0; l < set.count() && !covered; ++l) {
      covered = set[l].covers(s);
    }
    EXPECT_TRUE(covered) << "n=" << n << " tau=" << tau << " trial=" << trial;
  }
  EXPECT_LE(result.attempts, 8u);  // Lemma 13: succeeds quickly
}

INSTANTIATE_TEST_SUITE_P(Params, RandomPartitionSweep,
                         ::testing::Values(std::make_tuple(64, 2),
                                           std::make_tuple(64, 3),
                                           std::make_tuple(128, 2),
                                           std::make_tuple(128, 4),
                                           std::make_tuple(256, 5)));

TEST(MakeCongosPartitions, DispatchesOnTau) {
  Rng rng(7);
  auto bit = make_congos_partitions(64, 1, rng);
  EXPECT_EQ(bit.count(), 6u);
  EXPECT_EQ(bit[0].num_groups(), 2u);

  auto rnd = make_congos_partitions(64, 3, rng);
  EXPECT_GT(rnd.count(), 6u);
  EXPECT_EQ(rnd[0].num_groups(), 4u);
}

TEST(RandomPartitionDeath, MoreGroupsThanProcesses) {
  Rng rng(8);
  RandomPartitionOptions opt;
  opt.tau = 10;
  EXPECT_DEATH((void)make_random_partitions(4, opt, rng), "");
}

}  // namespace
}  // namespace congos::partition
