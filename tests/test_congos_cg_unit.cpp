// White-box unit tests of the ConfidentialGossip coordinator (Fig. 8):
// splitting, routing, reassembly, the confirmation matrix, and the deadline
// fallback - with mocked Proxy/GroupDistribution hooks.
#include "congos/confidential_gossip.h"

#include <gtest/gtest.h>

#include "adversary/workload.h"
#include "partition/bit_partition.h"

namespace congos::core {
namespace {

constexpr std::size_t kN = 8;  // 3 bit partitions

struct FakeSender final : sim::Sender {
  std::vector<sim::Envelope> sent;
  void send(sim::Envelope e) override { sent.push_back(std::move(e)); }
};

struct GossipInjection {
  PartitionIndex partition;
  Round when;
  sim::PayloadPtr body;
  Round deadline_at;
};

struct Delivery {
  RumorUid uid;
  Round when;
  std::vector<std::uint8_t> data;
};

class CgFixture : public ::testing::Test, public sim::DeliveryListener {
 protected:
  CgFixture() : partitions_(partition::make_bit_partitions(kN)), rng_(5) {
    // Mock Proxy/GD instances: record enqueued fragments.
    ConfidentialGossipService::Hooks hooks;
    hooks.gossip_fragment = [this](PartitionIndex l, Round now, sim::PayloadPtr body,
                                   Round deadline_at) {
      gossip_.push_back(GossipInjection{l, now, std::move(body), deadline_at});
    };
    hooks.proxy = [this](Round dline, PartitionIndex l) {
      if (!proxy_) {
        ProxyService::Hooks ph;
        ph.alive_since = [] { return 0; };
        proxy_ = std::make_unique<ProxyService>(kSelf, l, &partitions_[l], dline,
                                                &cfg_, &rng_, std::move(ph));
      }
      return proxy_.get();
    };
    hooks.gd = [this](Round dline, PartitionIndex l) {
      if (!gd_) {
        GroupDistributionService::Hooks gh;
        gh.alive_since = [] { return 0; };
        gd_ = std::make_unique<GroupDistributionService>(
            kSelf, l, &partitions_[l], dline, &cfg_, &rng_, std::move(gh));
      }
      return gd_.get();
    };
    cg_ = std::make_unique<ConfidentialGossipService>(
        kSelf, &cfg_, &partitions_, /*degenerate=*/false, &rng_, this,
        std::move(hooks));
  }

  void on_rumor_delivered(ProcessId at, const RumorUid& uid, Round when,
                          std::span<const std::uint8_t> data) override {
    EXPECT_EQ(at, kSelf);
    deliveries_.push_back(Delivery{uid, when, {data.begin(), data.end()}});
  }

  static constexpr ProcessId kSelf = 0;  // group 0 of every bit partition
  partition::PartitionSet partitions_;
  CongosConfig cfg_;
  Rng rng_;
  std::vector<GossipInjection> gossip_;
  std::vector<Delivery> deliveries_;
  std::unique_ptr<ProxyService> proxy_;
  std::unique_ptr<GroupDistributionService> gd_;
  std::unique_ptr<ConfidentialGossipService> cg_;
};

sim::Rumor test_rumor(ProcessId src, Round deadline, std::vector<std::uint32_t> dest) {
  auto r = sim::make_rumor(src, 1, adversary::canonical_payload({src, 1}, 16),
                           deadline, DynamicBitset::from_indices(kN, dest));
  r.injected_at = 0;
  return r;
}

TEST_F(CgFixture, InjectSplitsPerPartitionOwnGroupToGossip) {
  cg_->inject(0, test_rumor(kSelf, 64, {3, 5}));
  // One own-group fragment per partition goes to GroupGossip.
  ASSERT_EQ(gossip_.size(), partitions_.count());
  for (const auto& g : gossip_) {
    const auto* body = dynamic_cast<const FragmentBody*>(g.body.get());
    ASSERT_NE(body, nullptr);
    // Self is 0 -> group 0 in every bit partition.
    EXPECT_EQ(body->fragment.meta.key.group, 0u);
    EXPECT_EQ(body->fragment.meta.key.partition, g.partition);
    EXPECT_EQ(body->fragment.meta.dline, 64);
    EXPECT_EQ(g.deadline_at, 8);  // now + sqrt(64)
  }
  EXPECT_EQ(cg_->counters().injected, 1u);
  EXPECT_EQ(cg_->counters().injected_direct, 0u);
}

TEST_F(CgFixture, ShortDeadlineGoesDirect) {
  cg_->inject(0, test_rumor(kSelf, 8, {3, 5}));
  EXPECT_TRUE(gossip_.empty());
  EXPECT_EQ(cg_->counters().injected_direct, 1u);
  FakeSender out;
  cg_->send_phase(0, out);
  ASSERT_EQ(out.sent.size(), 2u);  // one per destination
  for (const auto& e : out.sent) {
    EXPECT_EQ(e.tag.kind, sim::ServiceKind::kFallback);
    EXPECT_TRUE(e.to == 3 || e.to == 5);
  }
}

TEST_F(CgFixture, SourceInDestinationDeliversImmediately) {
  cg_->inject(0, test_rumor(kSelf, 64, {0, 3}));
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].uid, (RumorUid{kSelf, 1}));
}

TEST_F(CgFixture, PartialsReassembleAcrossGroups) {
  // Build a 2-fragment rumor (partition 0) addressed to self and feed both
  // partials; reassembly must reproduce the original bytes.
  auto r = test_rumor(3, 64, {0});
  auto frags = split_rumor(r, 0, 2, 64, 64, rng_);
  PartialsPayload p1, p2;
  p1.fragments.push_back(frags[0]);
  p2.fragments.push_back(frags[1]);
  cg_->on_partials(5, p1);
  EXPECT_TRUE(deliveries_.empty());  // one share reveals nothing
  cg_->on_partials(6, p2);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].when, 6);
  EXPECT_EQ(deliveries_[0].data, r.data);
  EXPECT_EQ(cg_->counters().reassembled, 1u);
}

TEST_F(CgFixture, MixedPartitionFragmentsDoNotReassemble) {
  auto r = test_rumor(3, 64, {0});
  auto f0 = split_rumor(r, 0, 2, 64, 64, rng_);
  auto f1 = split_rumor(r, 1, 2, 64, 64, rng_);
  PartialsPayload p;
  p.fragments.push_back(f0[0]);
  p.fragments.push_back(f1[1]);  // different partition: useless pair
  cg_->on_partials(5, p);
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(CgFixture, DuplicateDeliveryIsSuppressed) {
  auto r = test_rumor(3, 64, {0});
  auto frags = split_rumor(r, 0, 2, 64, 64, rng_);
  PartialsPayload p;
  p.fragments = frags;
  cg_->on_partials(5, p);
  DirectRumorPayload direct;
  direct.rumor = r;
  cg_->on_direct(6, direct);
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(CgFixture, ConfirmationNeedsEveryGroupAndEveryDestination) {
  cg_->inject(0, test_rumor(kSelf, 64, {3, 5}));
  auto report = [&](GroupIndex g, ProcessId reporter,
                    std::vector<ProcessId> targets) {
    DistributionReportBody rep;
    rep.reporter = reporter;
    rep.partition = 0;
    rep.group = g;
    rep.dline = 64;
    for (auto t : targets) rep.hits.push_back(Hit{t, RumorUid{kSelf, 1}});
    cg_->on_report(10, rep);
  };
  // Group 0 covered both destinations; group 1 only one: not confirmed yet.
  report(0, 2, {3, 5});
  report(1, 1, {3});
  EXPECT_EQ(cg_->counters().confirmed, 0u);
  // Group 1 covers the remaining destination: confirmed.
  report(1, 1, {5});
  EXPECT_EQ(cg_->counters().confirmed, 1u);
  // Confirmed rumor is not shot at the deadline.
  FakeSender out;
  cg_->send_phase(64, out);
  EXPECT_TRUE(out.sent.empty());
  EXPECT_EQ(cg_->counters().shoots, 0u);
}

TEST_F(CgFixture, UnconfirmedRumorIsShotAtDeadline) {
  cg_->inject(0, test_rumor(kSelf, 64, {3, 5}));
  FakeSender out;
  cg_->send_phase(63, out);
  EXPECT_TRUE(out.sent.empty());  // not yet
  cg_->send_phase(64, out);
  ASSERT_EQ(out.sent.size(), 2u);
  EXPECT_EQ(cg_->counters().shoots, 1u);
  for (const auto& e : out.sent) {
    const auto* d = dynamic_cast<const DirectRumorPayload*>(e.body.get());
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->rumor.dest.test(e.to));
  }
  // Shot once only.
  FakeSender out2;
  cg_->send_phase(64 + 1, out2);
  EXPECT_TRUE(out2.sent.empty());
}

TEST_F(CgFixture, ReportsForForeignRumorsAreIgnored) {
  DistributionReportBody rep;
  rep.reporter = 2;
  rep.partition = 0;
  rep.group = 0;
  rep.dline = 64;
  rep.hits.push_back(Hit{3, RumorUid{7, 99}});  // we are not the source
  cg_->on_report(10, rep);  // must not crash or confirm anything
  EXPECT_EQ(cg_->counters().confirmed, 0u);
}

TEST_F(CgFixture, ResetForgetsInFlightRumors) {
  cg_->inject(0, test_rumor(kSelf, 64, {3, 5}));
  cg_->reset(10);
  FakeSender out;
  cg_->send_phase(64, out);
  EXPECT_TRUE(out.sent.empty());  // no memory of the rumor, no shoot
}

}  // namespace
}  // namespace congos::core
