// Section-7 metadata-hiding extensions: destination-set hiding and cover
// traffic.
#include "congos/extensions.h"

#include <gtest/gtest.h>

#include <set>

#include "adversary/adversary.h"
#include "adversary/workload.h"
#include "congos/congos_process.h"
#include "harness/scenario.h"
#include "test_util.h"

namespace congos::core {
namespace {

TEST(HideDestinationSet, ProducesOneSingletonPerProcess) {
  Rng rng(1);
  const std::size_t n = 16;
  auto r = sim::make_rumor(3, 5, adversary::canonical_payload({3, 5}, 32), 64,
                           DynamicBitset::from_indices(n, {1, 7, 12}));
  auto exploded = hide_destination_set(r, n, 100, rng);
  ASSERT_EQ(exploded.size(), n);
  for (ProcessId q = 0; q < n; ++q) {
    const auto& s = exploded[q];
    EXPECT_EQ(s.uid.source, r.uid.source);
    EXPECT_EQ(s.uid.seq, 100u + q);
    EXPECT_EQ(s.deadline, r.deadline);
    EXPECT_EQ(s.dest.count(), 1u);
    EXPECT_TRUE(s.dest.test(q));
    EXPECT_EQ(s.data.size(), r.data.size());
    if (r.dest.test(q)) {
      EXPECT_EQ(s.data, r.data) << "destination " << q << " must get content";
    } else {
      EXPECT_NE(s.data, r.data) << "chaff for " << q << " must differ";
    }
  }
}

TEST(HideDestinationSet, ChaffIsFreshPerProcess) {
  Rng rng(2);
  const std::size_t n = 8;
  auto r = sim::make_rumor(0, 1, coding::Bytes(32, 0x11), 64, DynamicBitset(n));
  auto exploded = hide_destination_set(r, n, 1, rng);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      EXPECT_NE(exploded[a].data, exploded[b].data);
    }
  }
}

TEST(HideDestinationSet, UniformSizesHideMembership) {
  // The observable shape (count, sizes, deadlines) is identical no matter
  // what the real destination set was.
  Rng rng(3);
  const std::size_t n = 12;
  auto r1 = sim::make_rumor(0, 1, coding::Bytes(16, 0x22), 64,
                            DynamicBitset::from_indices(n, {1}));
  auto r2 = sim::make_rumor(0, 1, coding::Bytes(16, 0x33), 64,
                            DynamicBitset::from_indices(n, {2, 3, 4, 5, 6, 7}));
  auto e1 = hide_destination_set(r1, n, 1, rng);
  auto e2 = hide_destination_set(r2, n, 1, rng);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].data.size(), e2[i].data.size());
    EXPECT_EQ(e1[i].dest.count(), e2[i].dest.count());
    EXPECT_EQ(e1[i].deadline, e2[i].deadline);
  }
}

TEST(HideDestinationSet, ExplodedRumorsFlowThroughCongos) {
  // Inject the exploded singletons through the full stack: real destinations
  // get the real content; confidentiality holds.
  const std::size_t n = 16;
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 4;
  cfg.rounds = 160;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.congos.allow_degenerate = false;
  cfg.workload = harness::WorkloadKind::kNone;
  // run_scenario has no hook for custom adversaries beyond its options, so
  // exercise the path via a dest_gen continuous load of singletons, which is
  // what hide_destination_set reduces the system to.
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.05;
  cfg.continuous.dest_min = 1;
  cfg.continuous.dest_max = 1;
  cfg.continuous.deadlines = {64};
  const auto r = harness::run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
}

TEST(OpaqueIds, SequenceNumbersAreScrambledButUnique) {
  // Section 7: "the sequence number can be replaced with a pseudorandom
  // identifier".
  auto sys = testutil::make_system(8, 77);
  adversary::Composite comp;
  adversary::Continuous::Options w;
  w.inject_prob = 0.5;
  w.dest_min = 1;
  w.dest_max = 2;
  w.opaque_ids = true;
  comp.add(std::make_unique<adversary::Continuous>(w));
  sys.engine->set_adversary(&comp);
  sys.engine->run(60);
  for (auto* p : sys.procs) {
    std::set<std::uint64_t> seqs;
    bool sequential_prefix = true;
    std::uint64_t i = 1;
    for (const auto& r : p->injected) {
      EXPECT_TRUE(seqs.insert(r.uid.seq).second) << "duplicate uid";
      sequential_prefix = sequential_prefix && (r.uid.seq == i++);
      EXPECT_LT(r.uid.seq, 1ull << 40);  // fits the packed uid field
    }
    if (p->injected.size() >= 3) {
      EXPECT_FALSE(sequential_prefix) << "ids look sequential, not opaque";
    }
  }
}

TEST(OpaqueIds, EndToEndThroughCongos) {
  harness::ScenarioConfig cfg;
  cfg.n = 16;
  cfg.seed = 78;
  cfg.rounds = 160;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.continuous.inject_prob = 0.05;
  cfg.continuous.deadlines = {64};
  cfg.continuous.opaque_ids = true;
  const auto r = harness::run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
}

TEST(CoverTraffic, InjectsDecoysAtConfiguredRate) {
  auto sys = testutil::make_system(16, 5);
  CoverTraffic::Options opt;
  opt.rate = 0.25;
  adversary::Composite comp;
  auto ct = std::make_unique<CoverTraffic>(opt);
  auto* raw = ct.get();
  comp.add(std::move(ct));
  sys.engine->set_adversary(&comp);
  sys.engine->run(100);
  EXPECT_GT(raw->decoys_injected(), 250u);
  EXPECT_LT(raw->decoys_injected(), 550u);
  for (auto* p : sys.procs) {
    for (const auto& r : p->injected) {
      EXPECT_EQ(r.dest.count(), 1u);
      EXPECT_GE(r.uid.seq, opt.seq_base);
    }
  }
}

TEST(CoverTraffic, CoexistsWithRealWorkload) {
  // One-injection-per-round rule must hold when decoys and real rumors mix.
  auto sys = testutil::make_system(8, 6);
  adversary::Composite comp;
  adversary::Continuous::Options w;
  w.inject_prob = 0.5;
  w.dest_min = 1;
  w.dest_max = 2;
  comp.add(std::make_unique<adversary::Continuous>(w));
  CoverTraffic::Options opt;
  opt.rate = 0.5;
  comp.add(std::make_unique<CoverTraffic>(opt));
  sys.engine->set_adversary(&comp);
  sys.engine->run(50);  // would abort on a double injection
  std::size_t total = 0;
  for (auto* p : sys.procs) total += p->injected.size();
  EXPECT_GT(total, 100u);
}

TEST(CoverTraffic, DecoysAreDeliveredLikeRealRumors) {
  // Run decoy-only traffic through full CONGOS: decoys are real rumors as
  // far as the protocol is concerned, so QoD must hold for them too.
  const std::size_t n = 16;
  core::CongosConfig ccfg;
  ccfg.allow_degenerate = false;
  auto cfg = std::make_shared<const core::CongosConfig>(ccfg);
  auto partitions = CongosProcess::build_partitions(n, ccfg);
  audit::DeliveryAuditor qod(n);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(7);
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(
        std::make_unique<CongosProcess>(p, cfg, partitions, seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  engine.add_observer(&qod);
  adversary::Composite comp;
  CoverTraffic::Options opt;
  opt.rate = 0.02;
  opt.deadline = 64;
  comp.add(std::make_unique<CoverTraffic>(opt));
  engine.set_adversary(&comp);
  engine.run(256);
  const auto report = qod.finalize(engine.now());
  EXPECT_GT(qod.injected_count(), 0u);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace congos::core
