// Deterministic Reed-Solomon-style partitions - the paper's open problem
// ("we leave the polynomial time construction of partitions satisfying the
// required conditions as future work", Section 6.2).
#include "partition/algebraic_partition.h"

#include <gtest/gtest.h>

#include <tuple>

#include "adversary/adversary.h"
#include "adversary/workload.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "congos/congos_process.h"
#include "sim/engine.h"

namespace congos::partition {
namespace {

TEST(NextPrime, SmallValues) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(24), 29u);
  EXPECT_EQ(next_prime(90), 97u);
}

class AlgebraicSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {};

TEST_P(AlgebraicSweep, DeterministicFamilyPassesBothProperties) {
  const auto [n, tau] = GetParam();
  RandomPartitionOptions opt;
  opt.tau = tau;
  Rng rng(1234);
  const auto result = make_algebraic_partitions(n, opt, rng);

  EXPECT_TRUE(result.property1) << "empty group";
  EXPECT_GE(result.property2_pass, 0.999);
  EXPECT_GE(result.partitions.count(), 1u);
  for (PartitionIndex l = 0; l < result.partitions.count(); ++l) {
    EXPECT_EQ(result.partitions[l].num_groups(), tau + 1);
  }
}

TEST_P(AlgebraicSweep, IsDeterministic) {
  const auto [n, tau] = GetParam();
  RandomPartitionOptions opt;
  opt.tau = tau;
  Rng r1(1), r2(2);  // verification rng must not influence the family
  const auto a = make_algebraic_partitions(n, opt, r1);
  const auto b = make_algebraic_partitions(n, opt, r2);
  ASSERT_EQ(a.partitions.count(), b.partitions.count());
  for (PartitionIndex l = 0; l < a.partitions.count(); ++l) {
    for (ProcessId p = 0; p < n; ++p) {
      ASSERT_EQ(a.partitions[l].group_of(p), b.partitions[l].group_of(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Params, AlgebraicSweep,
                         ::testing::Values(std::make_tuple(64, 2),
                                           std::make_tuple(64, 3),
                                           std::make_tuple(128, 2),
                                           std::make_tuple(128, 4),
                                           std::make_tuple(256, 3),
                                           std::make_tuple(256, 5)));

TEST(Algebraic, EveryPairIsSeparatedManyTimes) {
  // Before group folding, two distinct ids agree on at most deg < k of the
  // L evaluation points (Reed-Solomon distance); the non-linear fold then
  // merges values pseudo-randomly, so each pair should still be separated
  // in a large fraction of the partitions. We verify the CONGOS requirement
  // (every pair separated somewhere - Lemma 5's role) exactly, and that the
  // typical separation is far above the minimum.
  const std::size_t n = 128;
  RandomPartitionOptions opt;
  opt.tau = 2;
  Rng rng(7);
  const auto result = make_algebraic_partitions(n, opt, rng);
  const auto& set = result.partitions;
  std::size_t min_separated = SIZE_MAX;
  for (ProcessId p = 0; p < n; ++p) {
    for (ProcessId w = p + 1; w < n; ++w) {
      std::size_t separated = 0;
      for (PartitionIndex l = 0; l < set.count(); ++l) {
        if (set[l].group_of(p) != set[l].group_of(w)) ++separated;
      }
      min_separated = std::min(min_separated, separated);
    }
  }
  EXPECT_GE(min_separated, 1u);  // every pair separable somewhere
  // The family is far better than the bare minimum in practice.
  EXPECT_GE(min_separated, set.count() / 4);
}

TEST(Algebraic, GroupSizesAreBalanced) {
  // RS evaluations are equidistributed enough that no group hogs the space.
  const std::size_t n = 256;
  RandomPartitionOptions opt;
  opt.tau = 3;
  Rng rng(9);
  const auto result = make_algebraic_partitions(n, opt, rng);
  for (PartitionIndex l = 0; l < result.partitions.count(); ++l) {
    for (GroupIndex g = 0; g < 4; ++g) {
      const auto size = result.partitions[l].group_size(g);
      EXPECT_GT(size, n / 16) << "partition " << l << " group " << g;
      EXPECT_LT(size, n / 2) << "partition " << l << " group " << g;
    }
  }
}

TEST(Algebraic, WorksInsideCongosEndToEnd) {
  // Swap the verified deterministic family into a full CONGOS run.
  const std::size_t n = 48;
  const std::uint32_t tau = 2;
  RandomPartitionOptions opt;
  opt.tau = tau;
  Rng rng(11);
  auto result = make_algebraic_partitions(n, opt, rng);
  ASSERT_TRUE(result.property1);
  ASSERT_GE(result.property2_pass, 0.999);
  auto partitions =
      std::make_shared<const PartitionSet>(std::move(result.partitions));

  core::CongosConfig ccfg;
  ccfg.tau = tau;
  ccfg.allow_degenerate = false;
  auto cfg = std::make_shared<const core::CongosConfig>(ccfg);
  audit::DeliveryAuditor qod(n);
  audit::ConfidentialityAuditor conf(n, partitions.get());
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(12);
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, cfg, partitions,
                                                          seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  engine.add_observer(&qod);
  engine.add_observer(&conf);
  adversary::Composite adv;
  adversary::Continuous::Options w;
  w.inject_prob = 0.01;
  w.deadlines = {64};
  w.last_injection_round = 200;
  adv.add(std::make_unique<adversary::Continuous>(w));
  engine.set_adversary(&adv);
  engine.run(270);

  const auto report = qod.finalize(engine.now());
  EXPECT_GT(qod.injected_count(), 0u);
  EXPECT_TRUE(report.ok()) << "late=" << report.late << " missing=" << report.missing;
  EXPECT_EQ(conf.leaks(), 0u);
  EXPECT_GT(conf.weakest_rumor_coalition(), tau);
}

}  // namespace
}  // namespace congos::partition
