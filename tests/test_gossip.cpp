#include "gossip/continuous_gossip.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/engine.h"
#include "test_util.h"

namespace congos::gossip {
namespace {

constexpr sim::ServiceTag kTag{sim::ServiceKind::kGroupGossip, 0};

struct Delivery {
  std::uint64_t gid;
  Round when;
  ProcessId origin;
};

/// A process hosting exactly one gossip service.
class GossipHost final : public sim::Process {
 public:
  GossipHost(ProcessId id, GossipConfig cfg, std::uint64_t seed)
      : sim::Process(id), rng_(seed) {
    cfg_ = cfg;
    rebuild();
  }

  void on_restart(Round now) override {
    rebuild();
    svc_->reset(now);
    delivered.clear();
  }

  void send_phase(Round now, sim::Sender& out) override { svc_->send_phase(now, out); }

  void receive_phase(Round now, std::span<const sim::Envelope> inbox) override {
    for (const auto& e : inbox) svc_->on_envelope(now, e);
  }

  ContinuousGossipService& service() { return *svc_; }
  std::vector<Delivery> delivered;

 private:
  void rebuild() {
    svc_ = std::make_unique<ContinuousGossipService>(
        id(), cfg_, &rng_, [this](Round now, const GossipRumor& r) {
          delivered.push_back(Delivery{r.gid, now, r.origin});
        });
  }

  GossipConfig cfg_;
  Rng rng_;
  std::unique_ptr<ContinuousGossipService> svc_;
};

/// Records any stray envelopes (for out-of-universe leak checks).
class SilentProcess final : public sim::Process {
 public:
  explicit SilentProcess(ProcessId id) : sim::Process(id) {}
  void on_restart(Round) override {}
  void send_phase(Round, sim::Sender&) override {}
  void receive_phase(Round, std::span<const sim::Envelope> inbox) override {
    received += inbox.size();
  }
  std::size_t received = 0;
};

struct GossipSystem {
  std::vector<GossipHost*> hosts;          // index == id for in-universe hosts
  std::vector<SilentProcess*> silent;
  std::unique_ptr<sim::Engine> engine;
};

GossipSystem make_gossip_system(std::size_t n, const DynamicBitset& universe,
                                int fanout, bool guaranteed, std::uint64_t seed) {
  GossipSystem sys;
  sys.hosts.assign(n, nullptr);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(seed);
  for (ProcessId p = 0; p < n; ++p) {
    if (universe.test(p)) {
      GossipConfig cfg;
      cfg.tag = kTag;
      cfg.universe = universe;
      cfg.fanout = fanout;
      cfg.guaranteed = guaranteed;
      auto host = std::make_unique<GossipHost>(p, cfg, seeder.next());
      sys.hosts[p] = host.get();
      procs.push_back(std::move(host));
    } else {
      auto s = std::make_unique<SilentProcess>(p);
      sys.silent.push_back(s.get());
      procs.push_back(std::move(s));
    }
  }
  sys.engine = std::make_unique<sim::Engine>(std::move(procs), seeder.next());
  return sys;
}

TEST(Gossip, EpidemicReachesWholeUniverse) {
  const std::size_t n = 16;
  auto universe = DynamicBitset::full(n);
  auto sys = make_gossip_system(n, universe, 3, false, 101);
  // Inject once before the first round's send phase via the adversary hook.
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[0]->service().inject(0, std::make_shared<testutil::IntPayload>(7),
                                     universe, 24);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(24);
  for (ProcessId p = 0; p < n; ++p) {
    ASSERT_EQ(sys.hosts[p]->delivered.size(), 1u) << "p=" << p;
    EXPECT_EQ(sys.hosts[p]->delivered[0].origin, 0u);
    EXPECT_LE(sys.hosts[p]->delivered[0].when, 24);
  }
}

TEST(Gossip, DeliversOnlyToDestinations) {
  const std::size_t n = 12;
  auto universe = DynamicBitset::full(n);
  auto sys = make_gossip_system(n, universe, 3, false, 102);
  DynamicBitset dest(n);
  dest.set(3);
  dest.set(7);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[1]->service().inject(0, std::make_shared<testutil::IntPayload>(1),
                                     dest, 20);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(20);
  for (ProcessId p = 0; p < n; ++p) {
    const bool is_dest = dest.test(p);
    EXPECT_EQ(sys.hosts[p]->delivered.size(), is_dest ? 1u : 0u) << "p=" << p;
  }
}

TEST(Gossip, UniverseRestrictionIsAirtight) {
  // Universe = even ids. Odd processes must never receive a single envelope.
  const std::size_t n = 16;
  DynamicBitset universe(n);
  for (std::size_t p = 0; p < n; p += 2) universe.set(p);
  auto sys = make_gossip_system(n, universe, 3, false, 103);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[0]->service().inject(0, std::make_shared<testutil::IntPayload>(1),
                                     universe, 30);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(30);
  for (auto* s : sys.silent) EXPECT_EQ(s->received, 0u);
  for (ProcessId p = 0; p < n; p += 2) {
    EXPECT_EQ(sys.hosts[p]->delivered.size(), 1u) << "p=" << p;
    EXPECT_EQ(sys.hosts[p]->service().filter_drops(), 0u);
  }
}

TEST(Gossip, GuaranteedModeBeatsImpossibleEpidemicWindow) {
  // fanout 1 and a 3-round deadline cannot reach 32 processes epidemically;
  // the origin's deterministic fallback must cover the rest.
  const std::size_t n = 32;
  auto universe = DynamicBitset::full(n);
  auto sys = make_gossip_system(n, universe, 1, true, 104);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[5]->service().inject(0, std::make_shared<testutil::IntPayload>(9),
                                     universe, 3);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(4);
  for (ProcessId p = 0; p < n; ++p) {
    ASSERT_EQ(sys.hosts[p]->delivered.size(), 1u) << "p=" << p;
    EXPECT_LE(sys.hosts[p]->delivered[0].when, 3);
  }
}

TEST(Gossip, GuaranteedModeAcksSuppressDuplicateFallback) {
  // With a long deadline the epidemic finishes early; the fallback then has
  // nobody left to cover, so per-round traffic near the deadline stays flat.
  const std::size_t n = 16;
  auto universe = DynamicBitset::full(n);
  auto sys = make_gossip_system(n, universe, 3, true, 105);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[0]->service().inject(0, std::make_shared<testutil::IntPayload>(2),
                                     universe, 40);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(41);
  // Every host delivered exactly once (dedup works).
  for (ProcessId p = 0; p < n; ++p) {
    ASSERT_EQ(sys.hosts[p]->delivered.size(), 1u);
  }
  // The fallback round (39) must not spike above the steady epidemic
  // traffic: every destination acked, so there is nobody left to cover.
  const auto& per_round = sys.engine->stats().per_round_totals();
  EXPECT_LE(per_round[39], per_round[38]);
}

TEST(Gossip, ExpiredRumorsArePurged) {
  const std::size_t n = 8;
  auto universe = DynamicBitset::full(n);
  auto sys = make_gossip_system(n, universe, 2, false, 106);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[0]->service().inject(0, std::make_shared<testutil::IntPayload>(3),
                                     universe, 5);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(10);
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_EQ(sys.hosts[p]->service().known_active(10), 0u);
  }
  // No gossip traffic after expiry (rounds 7+ silent).
  const auto& per_round = sys.engine->stats().per_round_totals();
  for (std::size_t r = 7; r < per_round.size(); ++r) {
    EXPECT_EQ(per_round[r], 0u) << "round " << r;
  }
}

TEST(Gossip, RestartWipesStateAndGidsStayUnique) {
  const std::size_t n = 8;
  auto universe = DynamicBitset::full(n);
  auto sys = make_gossip_system(n, universe, 2, false, 107);
  std::uint64_t gid_before = 0, gid_after = 0;
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      gid_before = sys.hosts[2]->service().inject(
          0, std::make_shared<testutil::IntPayload>(1), universe, 30);
    }
    if (e.now() == 2) e.crash(2);
    if (e.now() == 4) e.restart(2);
    if (e.now() == 5) {
      gid_after = sys.hosts[2]->service().inject(
          5, std::make_shared<testutil::IntPayload>(2), universe, 30);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(30);
  EXPECT_NE(gid_before, gid_after);
  // Host 2 redelivers the first rumor after restart (relearned from peers)
  // and its own second rumor.
  EXPECT_EQ(sys.hosts[2]->delivered.size(), 2u);
  // Everyone else got both rumors.
  for (ProcessId p = 0; p < n; ++p) {
    if (p == 2) continue;
    EXPECT_EQ(sys.hosts[p]->delivered.size(), 2u) << "p=" << p;
  }
}

TEST(Gossip, SurvivesSourceCrashOnceSeeded) {
  // After the rumor has spread a bit, killing the source must not stop the
  // epidemic (the collaboration benefit the paper builds on).
  const std::size_t n = 24;
  auto universe = DynamicBitset::full(n);
  auto sys = make_gossip_system(n, universe, 3, false, 108);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[0]->service().inject(0, std::make_shared<testutil::IntPayload>(4),
                                     universe, 30);
    }
    if (e.now() == 3) e.crash(0);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(30);
  for (ProcessId p = 1; p < n; ++p) {
    EXPECT_EQ(sys.hosts[p]->delivered.size(), 1u) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Deterministic expander strategy (the [13]-style derandomized black box)
// ---------------------------------------------------------------------------

TEST(Expander, NeighborsAreDistinctMembersAndExcludeSelf) {
  DynamicBitset universe(64);
  for (std::size_t p = 0; p < 64; p += 2) universe.set(p);  // even ids
  for (ProcessId self = 0; self < 64; self += 2) {
    auto nb = expander_neighbors(self, universe, 5, 42);
    ASSERT_EQ(nb.size(), 5u);
    std::set<ProcessId> uniq(nb.begin(), nb.end());
    EXPECT_EQ(uniq.size(), nb.size());
    for (auto q : nb) {
      EXPECT_NE(q, self);
      EXPECT_TRUE(universe.test(q));
    }
  }
}

TEST(Expander, SameSeedSameGraphEverywhere) {
  // Every member derives the same skips, so the graph is consistent: if i's
  // k-th neighbor at rank r, then the member at rank r-skip has i... we just
  // check two independent computations agree.
  DynamicBitset universe = DynamicBitset::full(33);
  for (ProcessId self : {0u, 7u, 32u}) {
    EXPECT_EQ(expander_neighbors(self, universe, 4, 7),
              expander_neighbors(self, universe, 4, 7));
  }
  EXPECT_NE(expander_neighbors(0, universe, 4, 7),
            expander_neighbors(0, universe, 4, 8));
}

TEST(Expander, GraphHasLogarithmicDiameter) {
  // BFS from node 0 over the directed circulant; with degree ~log2 m the
  // eccentricity should be small.
  const std::size_t m = 200;
  DynamicBitset universe = DynamicBitset::full(m);
  const int degree = 8;
  std::vector<int> dist(m, -1);
  std::vector<ProcessId> frontier = {0};
  dist[0] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<ProcessId> next;
    for (auto u : frontier) {
      for (auto v : expander_neighbors(u, universe, degree, 99)) {
        if (dist[v] < 0) {
          dist[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  int ecc = 0;
  for (std::size_t v = 0; v < m; ++v) {
    ASSERT_GE(dist[v], 0) << "node " << v << " unreachable";
    ecc = std::max(ecc, dist[v]);
  }
  EXPECT_LE(ecc, 10) << "diameter should be ~log m";
}

TEST(Expander, TinyUniverses) {
  DynamicBitset lone(4);
  lone.set(2);
  EXPECT_TRUE(expander_neighbors(2, lone, 3, 1).empty());
  DynamicBitset pair(4);
  pair.set(1);
  pair.set(3);
  auto nb = expander_neighbors(1, pair, 3, 1);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0], 3u);
}

TEST(Expander, DeliversDeterministically) {
  const std::size_t n = 24;
  auto universe = DynamicBitset::full(n);
  auto run_once = [&] {
    GossipSystem sys;
    sys.hosts.assign(n, nullptr);
    std::vector<std::unique_ptr<sim::Process>> procs;
    Rng seeder(200);
    for (ProcessId p = 0; p < n; ++p) {
      GossipConfig cfg;
      cfg.tag = kTag;
      cfg.universe = universe;
      cfg.strategy = GossipStrategy::kExpander;
      cfg.fanout = 3;
      auto host = std::make_unique<GossipHost>(p, cfg, seeder.next());
      sys.hosts[p] = host.get();
      procs.push_back(std::move(host));
    }
    sys.engine = std::make_unique<sim::Engine>(std::move(procs), seeder.next());
    testutil::LambdaAdversary adv;
    adv.on_round_start = [&](sim::Engine& e) {
      if (e.now() == 0) {
        sys.hosts[3]->service().inject(0, std::make_shared<testutil::IntPayload>(1),
                                       universe, 20);
      }
    };
    sys.engine->set_adversary(&adv);
    sys.engine->run(20);
    std::size_t delivered = 0;
    for (auto* h : sys.hosts) delivered += h->delivered.size();
    return std::make_pair(delivered, sys.engine->stats().total_sent());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, n);  // everyone delivered
  EXPECT_EQ(a, b);        // deterministic traffic
}

// ---------------------------------------------------------------------------
// Push-pull strategy (Karp et al. [19])
// ---------------------------------------------------------------------------

GossipSystem make_pushpull_system(std::size_t n, std::uint64_t seed) {
  GossipSystem sys;
  sys.hosts.assign(n, nullptr);
  auto universe = DynamicBitset::full(n);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(seed);
  for (ProcessId p = 0; p < n; ++p) {
    GossipConfig cfg;
    cfg.tag = kTag;
    cfg.universe = universe;
    cfg.fanout = 2;
    cfg.strategy = GossipStrategy::kPushPull;
    auto host = std::make_unique<GossipHost>(p, cfg, seeder.next());
    sys.hosts[p] = host.get();
    procs.push_back(std::move(host));
  }
  sys.engine = std::make_unique<sim::Engine>(std::move(procs), seeder.next());
  return sys;
}

TEST(PushPull, ReachesWholeUniverse) {
  const std::size_t n = 24;
  auto sys = make_pushpull_system(n, 300);
  auto universe = DynamicBitset::full(n);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[0]->service().inject(0, std::make_shared<testutil::IntPayload>(1),
                                     universe, 24);
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(24);
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_EQ(sys.hosts[p]->delivered.size(), 1u) << "p=" << p;
  }
}

TEST(PushPull, IdleUniverseStillSendsPullRequests) {
  // Pull requests are the anti-entropy heartbeat: one per member per round
  // even with no rumors in flight.
  const std::size_t n = 8;
  auto sys = make_pushpull_system(n, 301);
  sys.engine->run(5);
  const auto& per_round = sys.engine->stats().per_round_totals();
  for (auto count : per_round) EXPECT_EQ(count, n);
}

TEST(PushPull, RestartedProcessCatchesUpByPulling) {
  const std::size_t n = 12;
  auto sys = make_pushpull_system(n, 302);
  auto universe = DynamicBitset::full(n);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [&](sim::Engine& e) {
    if (e.now() == 0) {
      sys.hosts[4]->service().inject(0, std::make_shared<testutil::IntPayload>(1),
                                     universe, 40);
    }
    if (e.now() == 10) e.crash(7);
    if (e.now() == 20) e.restart(7);  // wipes its state (delivered cleared)
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(40);
  // Host 7 re-learned the still-active rumor after its restart.
  ASSERT_EQ(sys.hosts[7]->delivered.size(), 1u);
  EXPECT_GE(sys.hosts[7]->delivered[0].when, 20);
}

TEST(GossipDeath, InjectOutsideUniverse) {
  const std::size_t n = 8;
  DynamicBitset universe(n);
  universe.set(0);
  universe.set(1);
  GossipConfig cfg;
  cfg.tag = kTag;
  cfg.universe = universe;
  Rng rng(1);
  ContinuousGossipService svc(0, cfg, &rng, nullptr);
  DynamicBitset bad(n);
  bad.set(5);  // not in universe
  EXPECT_DEATH(svc.inject(0, nullptr, bad, 10), "within the service universe");
}

TEST(Gossip, GidPackingAtEpochBoundary) {
  // The packed layout is [source:24 | epoch+1:19 | counter:21]; the largest
  // epoch round whose stored value epoch+1 still fits 19 bits is 2^19 - 2.
  const std::size_t n = 4;
  auto universe = DynamicBitset::full(n);
  GossipConfig cfg;
  cfg.tag = kTag;
  cfg.universe = universe;
  Rng rng(7);
  ContinuousGossipService svc(2, cfg, &rng, nullptr);
  constexpr Round kMaxEpoch = (Round{1} << 19) - 2;
  svc.reset(kMaxEpoch);
  const auto gid = svc.inject(kMaxEpoch, nullptr, universe, kMaxEpoch + 8);
  EXPECT_EQ(gid >> 40, 2u);  // source-id field untouched by the epoch
  EXPECT_EQ((gid >> 21) & ((1u << 19) - 1),
            static_cast<std::uint64_t>(kMaxEpoch) + 1);
  EXPECT_EQ(gid & ((1u << 21) - 1), 0u);  // first counter value of the epoch
}

TEST(GossipDeath, GidEpochOverflowAborts) {
  // One restart round later, epoch+1 == 2^19 would spill into bit 40 and
  // alias gids of source self+1, epoch 0. The service must refuse instead
  // of silently colliding.
  const std::size_t n = 4;
  auto universe = DynamicBitset::full(n);
  GossipConfig cfg;
  cfg.tag = kTag;
  cfg.universe = universe;
  Rng rng(7);
  ContinuousGossipService svc(2, cfg, &rng, nullptr);
  constexpr Round kOverflowEpoch = (Round{1} << 19) - 1;
  svc.reset(kOverflowEpoch);
  EXPECT_DEATH(svc.inject(kOverflowEpoch, nullptr, universe, kOverflowEpoch + 8),
               "gid packing range");
}

TEST(GossipDeath, HostMustBeInUniverse) {
  DynamicBitset universe(8);
  universe.set(1);
  GossipConfig cfg;
  cfg.tag = kTag;
  cfg.universe = universe;
  Rng rng(1);
  EXPECT_DEATH(ContinuousGossipService(0, cfg, &rng, nullptr), "belong");
}

}  // namespace
}  // namespace congos::gossip
