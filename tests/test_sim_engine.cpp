#include "sim/engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace congos::sim {
namespace {

using testutil::LambdaAdversary;
using testutil::make_msg;
using testutil::make_system;
using testutil::ScriptedProcess;

TEST(Engine, SameRoundDelivery) {
  // Process 0 sends to 1 every round; 1 receives it in the same round.
  auto sys = make_system(2, 1, [](Round now, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0) out.send(make_msg(0, 1, static_cast<int>(now)));
  });
  sys.engine->run(3);
  ASSERT_EQ(sys.procs[1]->received.size(), 3u);
  EXPECT_EQ(sys.procs[1]->count_value(0), 1);
  EXPECT_EQ(sys.procs[1]->count_value(2), 1);
  EXPECT_EQ(sys.procs[1]->last_receive_round, 2);
}

TEST(Engine, CrashedProcessNeitherSendsNorReceives) {
  auto sys = make_system(3, 2, [](Round, Sender& out, ScriptedProcess& self) {
    // Everyone sends to everyone.
    for (ProcessId q = 0; q < 3; ++q) {
      if (q != self.id()) out.send(make_msg(self.id(), q, 1));
    }
  });
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 1 && e.alive(2)) e.crash(2);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(3);
  // Round 0: p2 alive -> 2 sends each, receives 2. Rounds 1,2: p2 dead.
  EXPECT_EQ(sys.procs[2]->send_phases, 1);
  EXPECT_EQ(sys.procs[2]->received.size(), 2u);
  // p0 got msgs from p1 every round + p2 only round 0.
  EXPECT_EQ(sys.procs[0]->received.size(), 3u + 1u);
  EXPECT_EQ(sys.engine->alive_count(), 2u);
}

TEST(Engine, CrashAfterSendsDropAll) {
  auto sys = make_system(2, 3, [](Round, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0) out.send(make_msg(0, 1, 42));
  });
  LambdaAdversary adv;
  adv.on_after_sends = [](Engine& e) {
    if (e.now() == 0) e.crash(0, PartialDelivery::kDropAll);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(1);
  EXPECT_EQ(sys.procs[1]->received.size(), 0u);
  // Sent messages still count towards message complexity (Definition 3).
  EXPECT_EQ(sys.engine->stats().total_sent(), 1u);
}

TEST(Engine, CrashAfterSendsDeliverAll) {
  auto sys = make_system(2, 4, [](Round, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0) out.send(make_msg(0, 1, 42));
  });
  LambdaAdversary adv;
  adv.on_after_sends = [](Engine& e) {
    if (e.now() == 0) e.crash(0, PartialDelivery::kDeliverAll);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(1);
  EXPECT_EQ(sys.procs[1]->received.size(), 1u);
}

TEST(Engine, CrashVictimDoesNotReceiveItsLastRound) {
  auto sys = make_system(2, 5, [](Round, Sender& out, ScriptedProcess& self) {
    if (self.id() == 1) out.send(make_msg(1, 0, 5));
  });
  LambdaAdversary adv;
  adv.on_after_sends = [](Engine& e) {
    if (e.now() == 0) e.crash(0, PartialDelivery::kDeliverAll);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(1);
  EXPECT_EQ(sys.procs[0]->received.size(), 0u);
}

TEST(Engine, RestartResetsStateAndResumesParticipation) {
  auto sys = make_system(2, 6, [](Round, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0) out.send(make_msg(0, 1, 9));
  });
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 1) e.crash(1);
    if (e.now() == 3) e.restart(1);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(5);
  EXPECT_EQ(sys.procs[1]->restarts, 1);
  EXPECT_EQ(sys.procs[1]->last_restart, 3);
  // Received rounds 3,4 post-restart (round 0 wiped by on_restart clear).
  EXPECT_EQ(sys.procs[1]->received.size(), 2u);
  EXPECT_EQ(sys.engine->alive_since(1), 3);
}

TEST(Engine, AliveSinceTracksRestarts) {
  auto sys = make_system(2, 7);
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 2) e.crash(0);
    if (e.now() == 5) e.restart(0);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(7);
  EXPECT_EQ(sys.engine->alive_since(0), 5);
  EXPECT_EQ(sys.engine->alive_since(1), 0);
}

TEST(Engine, InjectStampsRoundAndRoutes) {
  auto sys = make_system(2, 8);
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 4) {
      Rumor r = make_rumor(0, 1, {1, 2, 3}, 16, DynamicBitset(2));
      e.inject(0, std::move(r));
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(5);
  ASSERT_EQ(sys.procs[0]->injected.size(), 1u);
  EXPECT_EQ(sys.procs[0]->injected[0].injected_at, 4);
  EXPECT_EQ(sys.procs[0]->injected[0].expires_at(), 20);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto sys = make_system(8, 77, [](Round, Sender& out, ScriptedProcess& self) {
      out.send(make_msg(self.id(), (self.id() + 1) % 8, 1));
    });
    LambdaAdversary adv;
    adv.on_round_start = [](Engine& e) {
      // Random churn from the engine's own rng: deterministic per seed.
      for (ProcessId p = 0; p < e.n(); ++p) {
        if (e.alive(p) && e.alive_count() > 2 && e.rng().chance(0.1)) e.crash(p);
      }
    };
    sys.engine->set_adversary(&adv);
    sys.engine->run(50);
    return std::make_pair(sys.engine->stats().total_sent(), sys.engine->alive_count());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, ObserversSeeLifecycleEvents) {
  struct Recorder final : ExecutionObserver {
    int crashes = 0, restarts = 0, injects = 0, rounds = 0, delivered = 0;
    void on_crash(ProcessId, Round) override { ++crashes; }
    void on_restart(ProcessId, Round) override { ++restarts; }
    void on_inject(const Rumor&, Round) override { ++injects; }
    void on_round_end(Round) override { ++rounds; }
    void on_envelope_delivered(const Envelope&, Round) override { ++delivered; }
  } rec;

  auto sys = make_system(2, 9, [](Round now, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0 && now == 0) out.send(make_msg(0, 1, 1));
  });
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 1) e.crash(1);
    if (e.now() == 2) e.restart(1);
    if (e.now() == 3) {
      e.inject(0, make_rumor(0, 1, {1}, 8, DynamicBitset(2)));
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->add_observer(&rec);
  sys.engine->run(4);
  EXPECT_EQ(rec.crashes, 1);
  EXPECT_EQ(rec.restarts, 1);
  EXPECT_EQ(rec.injects, 1);
  EXPECT_EQ(rec.rounds, 4);
  EXPECT_EQ(rec.delivered, 1);
}

TEST(Engine, CrashAtRoundEndTakesEffectNextRound) {
  // Phase-C crash: the victim completed this round's receive, but must not
  // participate in the next round.
  auto sys = make_system(2, 14, [](Round, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0) out.send(make_msg(0, 1, 1));
  });
  LambdaAdversary adv;
  adv.on_round_end = [](Engine& e) {
    if (e.now() == 1) e.crash(1);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(4);
  // Received rounds 0 and 1; dead for 2, 3.
  EXPECT_EQ(sys.procs[1]->received.size(), 2u);
  EXPECT_EQ(sys.procs[1]->send_phases, 2);
}

TEST(Engine, RestartRandomPolicyDropsSomeInbound) {
  // A restarting process may lose an adversary-chosen subset of the round's
  // inbound messages (Section 2). With kRandom and many messages, some but
  // not all should survive.
  auto sys = make_system(2, 15, [](Round now, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0 && now == 5) {
      for (int i = 0; i < 600; ++i) out.send(make_msg(0, 1, i));
    }
  });
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 2) e.crash(1);
    if (e.now() == 5) e.restart(1, PartialDelivery::kRandom);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(6);
  const auto got = sys.procs[1]->received.size();
  EXPECT_GT(got, 150u);
  EXPECT_LT(got, 450u);
}

TEST(Engine, RestartDeliverAllKeepsInbound) {
  auto sys = make_system(2, 16, [](Round now, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0 && now == 5) out.send(make_msg(0, 1, 1));
  });
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 2) e.crash(1);
    if (e.now() == 5) e.restart(1, PartialDelivery::kDeliverAll);
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(6);
  EXPECT_EQ(sys.procs[1]->received.size(), 1u);
}

TEST(Engine, InjectedFlagsResetEachRound) {
  auto sys = make_system(2, 17);
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    EXPECT_FALSE(e.injected_this_round(0));
    if (e.now() < 3) {
      e.inject(0, make_rumor(0, static_cast<std::uint64_t>(e.now()) + 1, {1}, 8,
                             DynamicBitset(2)));
      EXPECT_TRUE(e.injected_this_round(0));
    }
    EXPECT_FALSE(e.lifecycle_event_this_round(1));
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(4);
  EXPECT_EQ(sys.procs[0]->injected.size(), 3u);
}

TEST(EngineDeath, DoubleLifecycleEventSameRound) {
  auto sys = make_system(2, 10);
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 0) {
      e.crash(0);
      e.restart(0);  // second lifecycle event in the same round: forbidden
    }
  };
  sys.engine->set_adversary(&adv);
  EXPECT_DEATH(sys.engine->run(1), "one crash/restart per process");
}

TEST(EngineDeath, DoubleInjectSameRound) {
  auto sys = make_system(2, 11);
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 0) {
      e.inject(0, make_rumor(0, 1, {1}, 8, DynamicBitset(2)));
      e.inject(0, make_rumor(0, 2, {1}, 8, DynamicBitset(2)));
    }
  };
  sys.engine->set_adversary(&adv);
  EXPECT_DEATH(sys.engine->run(1), "one rumor");
}

TEST(EngineDeath, InjectAtCrashedProcess) {
  auto sys = make_system(2, 12);
  LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 0) e.crash(0);
    if (e.now() == 1) e.inject(0, make_rumor(0, 1, {1}, 8, DynamicBitset(2)));
  };
  sys.engine->set_adversary(&adv);
  EXPECT_DEATH(sys.engine->run(2), "crashed");
}

TEST(EngineDeath, SpoofedSenderId) {
  auto sys = make_system(2, 13, [](Round, Sender& out, ScriptedProcess& self) {
    if (self.id() == 0) out.send(make_msg(1, 0, 1));  // lies about `from`
  });
  EXPECT_DEATH(sys.engine->run(1), "spoofed");
}

}  // namespace
}  // namespace congos::sim
