// Golden seed grid: FNV-1a hashes of per-round delivery traces across a
// grid of (protocol, strategy, seed) points, including a collusion-tolerant
// configuration (tau = 2) whose iteration order exercises the multi-group
// proxy path and the multi-deadline shoot path.
//
// These pins were captured immediately BEFORE the flat-container / payload
// pool migration (PR "allocation-free round engine") from the determinism-
// hardened build: ProxyService::send_requests iterates groups in sorted
// order, so no pinned trace depends on std::unordered_map bucket layout.
// The container swap, the payload pools and the incremental batch engine
// must reproduce every constant bit-for-bit; a diff means the optimisation
// changed protocol behaviour, which is a bug by definition.
#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace congos {
namespace {

/// Per-round delivered-envelope counts; hashing the vector pins message
/// ordering and per-round volume, not just aggregates.
class RoundTrace final : public sim::ExecutionObserver {
 public:
  void on_envelope_delivered(const sim::Envelope&, Round) override { ++current_; }
  void on_round_end(Round) override {
    counts_.push_back(current_);
    current_ = 0;
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::uint64_t current_ = 0;
  std::vector<std::uint64_t> counts_;
};

std::uint64_t fnv1a(const std::vector<std::uint64_t>& counts) {
  std::uint64_t h = 1469598103934665603ull;
  for (auto c : counts) {
    for (int b = 0; b < 8; ++b) {
      h ^= (c >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct TracePin {
  std::uint64_t delivered_total = 0;
  std::uint64_t trace_hash = 0;
  std::uint64_t total_messages = 0;
  // Actual wire-codec frame bytes (src/wire), not the fixed-width size
  // model: these pins change whenever kWireFormatVersion's layout does.
  std::uint64_t total_bytes = 0;
};

void expect_pinned(harness::ScenarioConfig cfg, const TracePin& pin) {
  RoundTrace trace;
  cfg.extra_observers.push_back(&trace);
  const auto r = harness::run_scenario(cfg);
  std::uint64_t delivered_total = 0;
  for (auto c : trace.counts()) delivered_total += c;
  EXPECT_EQ(delivered_total, pin.delivered_total);
  EXPECT_EQ(fnv1a(trace.counts()), pin.trace_hash);
  EXPECT_EQ(r.total_messages, pin.total_messages);
  EXPECT_EQ(r.total_bytes, pin.total_bytes);
  EXPECT_EQ(r.leaks, 0u);
}

harness::ScenarioConfig congos_config(std::uint64_t seed,
                                      gossip::GossipStrategy strategy) {
  harness::ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = seed;
  cfg.rounds = 96;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.congos.gossip_strategy = strategy;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {48};
  return cfg;
}

TEST(GoldenGrid, CongosEpidemicPushSeedA) {
  expect_pinned(congos_config(7101, gossip::GossipStrategy::kEpidemicPush),
                {108233, 11296553228243308885ull, 108233, 170285414});
}

TEST(GoldenGrid, CongosEpidemicPushSeedB) {
  expect_pinned(congos_config(7102, gossip::GossipStrategy::kEpidemicPush),
                {107652, 1631911090717838219ull, 107652, 163878386});
}

TEST(GoldenGrid, CongosPushPull) {
  expect_pinned(congos_config(7103, gossip::GossipStrategy::kPushPull),
                {162857, 13660042587754093689ull, 162857, 246920996});
}

TEST(GoldenGrid, CongosExpander) {
  expect_pinned(congos_config(7104, gossip::GossipStrategy::kExpander),
                {133184, 12718668825252000421ull, 133184, 265111717});
}

TEST(GoldenGrid, PlainGossip) {
  harness::ScenarioConfig cfg;
  cfg.n = 64;
  cfg.seed = 7105;
  cfg.rounds = 96;
  cfg.protocol = harness::Protocol::kPlainGossip;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {32};
  // Plain gossip leaks by design (that is its point of comparison), so pin
  // the trace directly instead of going through expect_pinned's leaks == 0.
  RoundTrace trace;
  cfg.extra_observers.push_back(&trace);
  const auto r = harness::run_scenario(cfg);
  std::uint64_t delivered_total = 0;
  for (auto c : trace.counts()) delivered_total += c;
  EXPECT_EQ(delivered_total, 24322u);
  EXPECT_EQ(fnv1a(trace.counts()), 1631052094024548409ull);
  EXPECT_EQ(r.total_messages, 24322u);
  EXPECT_EQ(r.total_bytes, 33641671u);
}

// The collusion-tolerant configuration (tau = 2, degenerate cutoff off) runs
// multiple groups per proxy block and multiple fragments per rumor: the only
// grid point whose trace is sensitive to the sorted-group hardening in
// ProxyService::send_requests.
TEST(GoldenGrid, CollusionTau2) {
  harness::ScenarioConfig cfg;
  cfg.n = 48;
  cfg.seed = 7106;
  cfg.rounds = 192;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.congos.tau = 2;
  cfg.congos.allow_degenerate = false;
  cfg.continuous.inject_prob = 0.01;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 5;
  cfg.continuous.deadlines = {64};
  cfg.measure_from = 64;
  expect_pinned(cfg, {1105252, 6470995426676477150ull, 1105252, 4219076187ull});
}

}  // namespace
}  // namespace congos
