#include "common/strings.h"

#include <gtest/gtest.h>

namespace congos {
namespace {

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}), ""); }

TEST(Strings, JoinOne) { EXPECT_EQ(join({7}), "7"); }

TEST(Strings, JoinMany) {
  EXPECT_EQ(join({1, 2, 3}), "1, 2, 3");
  EXPECT_EQ(join({1, 2, 3}, "-"), "1-2-3");
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
  EXPECT_EQ(fmt_double(-2.5, 1), "-2.5");
}

TEST(Strings, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(100000), "100,000");
}

}  // namespace
}  // namespace congos
