#include <gtest/gtest.h>

#include <cmath>

#include "adversary/workload.h"
#include "common/math.h"
#include "congos/config.h"
#include "congos/congos_process.h"
#include "congos/fragment.h"

namespace congos::core {
namespace {

TEST(Config, EffectiveDeadlinePolicy) {
  CongosConfig cfg;  // direct_threshold 32, cap 1024
  EXPECT_EQ(effective_deadline(1, cfg), 0);
  EXPECT_EQ(effective_deadline(31, cfg), 0);
  EXPECT_EQ(effective_deadline(32, cfg), 32);
  EXPECT_EQ(effective_deadline(33, cfg), 32);
  EXPECT_EQ(effective_deadline(63, cfg), 32);
  EXPECT_EQ(effective_deadline(64, cfg), 64);
  EXPECT_EQ(effective_deadline(100, cfg), 64);
  EXPECT_EQ(effective_deadline(1 << 14, cfg), 1 << 10);  // capped
}

TEST(Config, EffectiveDeadlineIsAlwaysUsable) {
  CongosConfig cfg;
  for (Round d = 32; d <= 4096; ++d) {
    const Round e = effective_deadline(d, cfg);
    ASSERT_GE(e, 32);
    ASSERT_LE(e, d);
    ASSERT_TRUE(is_pow2(static_cast<std::uint64_t>(e)));
    ASSERT_GE(iterations_per_block(e), 1);
  }
}

TEST(Config, BlockAndIterationGeometry) {
  EXPECT_EQ(block_length(32), 8);
  EXPECT_EQ(block_length(128), 32);
  EXPECT_EQ(iteration_length(64), 10);   // sqrt(64)+2
  EXPECT_EQ(iteration_length(100), 12);  // floor(sqrt(100))+2
  EXPECT_EQ(iterations_per_block(64), 1);
  EXPECT_EQ(iterations_per_block(256), 3);  // 64 / 18
  EXPECT_EQ(iterations_per_block(1024), 7); // 256 / 34
}

TEST(Config, Lemma6IterationLowerBound) {
  // Lemma 6: at least sqrt(dline)/8 iterations per block.
  CongosConfig cfg;
  cfg.max_effective_deadline = 1 << 14;
  for (Round d : {64, 256, 1024, 4096, 16384}) {
    const double want = std::sqrt(static_cast<double>(d)) / 8.0;
    EXPECT_GE(static_cast<double>(iterations_per_block(d)) + 1e-9, std::floor(want))
        << d;
  }
}

TEST(Config, ServiceFanoutShape) {
  CongosConfig cfg;
  cfg.fanout_exponent = 6.0;
  cfg.fanout_c = 1.0;
  // More collaborators -> smaller per-process fan-out.
  const auto few = service_fanout(256, 256, 2, cfg);
  const auto many = service_fanout(256, 256, 200, cfg);
  EXPECT_GT(few, many);
  // Longer deadlines -> smaller fan-out.
  const auto short_d = service_fanout(256, 64, 50, cfg);
  const auto long_d = service_fanout(256, 1024, 50, cfg);
  EXPECT_GE(short_d, long_d);
  // Clamped to [1, n].
  EXPECT_GE(service_fanout(256, 1 << 20, 1 << 20, cfg), 1u);
  EXPECT_LE(service_fanout(256, 32, 1, cfg), 256u);
}

TEST(Config, DegenerateTauThreshold) {
  CongosConfig cfg;
  cfg.tau = 1;
  EXPECT_FALSE(CongosProcess::is_degenerate(256, cfg));
  cfg.tau = 200;  // 256/log2(256)^2 = 4
  EXPECT_TRUE(CongosProcess::is_degenerate(256, cfg));
  cfg.tau = 4;
  EXPECT_TRUE(CongosProcess::is_degenerate(256, cfg));
  cfg.tau = 3;
  EXPECT_FALSE(CongosProcess::is_degenerate(256, cfg));
}

TEST(Fragment, SplitRumorMetadata) {
  Rng rng(1);
  sim::Rumor r = sim::make_rumor(3, 9, adversary::canonical_payload({3, 9}, 24), 64,
                                 DynamicBitset::from_indices(16, {1, 5}));
  r.injected_at = 100;
  auto frags = split_rumor(r, 2, 3, 164, 64, rng);
  ASSERT_EQ(frags.size(), 3u);
  for (GroupIndex g = 0; g < 3; ++g) {
    EXPECT_EQ(frags[g].meta.key.rumor, r.uid);
    EXPECT_EQ(frags[g].meta.key.partition, 2u);
    EXPECT_EQ(frags[g].meta.key.group, g);
    EXPECT_EQ(frags[g].meta.dest, r.dest);
    EXPECT_EQ(frags[g].meta.expires_at, 164);
    EXPECT_EQ(frags[g].meta.dline, 64);
    EXPECT_EQ(frags[g].meta.num_groups, 3u);
    EXPECT_EQ(frags[g].data.size(), r.data.size());
  }
  // XOR of all fragments reconstructs the datum.
  std::vector<coding::Bytes> parts;
  for (const auto& f : frags) parts.push_back(f.data);
  EXPECT_EQ(coding::combine(parts), r.data);
}

TEST(Fragment, SplitsAreIndependentAcrossPartitions) {
  Rng rng(2);
  sim::Rumor r = sim::make_rumor(0, 1, coding::Bytes(32, 0xAB), 64,
                                 DynamicBitset(8));
  auto a = split_rumor(r, 0, 2, 64, 64, rng);
  auto b = split_rumor(r, 1, 2, 64, 64, rng);
  EXPECT_NE(a[0].data, b[0].data);  // fresh randomness per partition
}

TEST(Fragment, KeyHashAndEquality) {
  FragmentKey a{{1, 2}, 3, 0};
  FragmentKey b{{1, 2}, 3, 0};
  FragmentKey c{{1, 2}, 3, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  FragmentKeyHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));  // not guaranteed in general, but true for this hash
}

TEST(Types, RumorUidPackRoundTrips) {
  RumorUid a{7, 12345};
  RumorUid b{7, 12346};
  EXPECT_NE(pack(a), pack(b));
  std::hash<RumorUid> h;
  EXPECT_EQ(h(a), h(a));
  EXPECT_NE(h(a), h(b));
}

TEST(Partitions, BuildPartitionsMatchesTau) {
  CongosConfig cfg;
  cfg.tau = 1;
  auto bit = CongosProcess::build_partitions(64, cfg);
  EXPECT_EQ(bit->count(), 6u);
  cfg.tau = 2;
  auto rnd = CongosProcess::build_partitions(64, cfg);
  EXPECT_EQ((*rnd)[0].num_groups(), 3u);
  // Deterministic: same seed, same family.
  auto rnd2 = CongosProcess::build_partitions(64, cfg);
  for (PartitionIndex l = 0; l < rnd->count(); ++l) {
    for (ProcessId p = 0; p < 64; ++p) {
      EXPECT_EQ((*rnd)[l].group_of(p), (*rnd2)[l].group_of(p));
    }
  }
}

}  // namespace
}  // namespace congos::core
