// Unit tests for the real-wire runtime building blocks (src/net): datagram
// framing, wall-clock round mapping, the control/event-log codec, the
// socket-level fault shim, the deterministic SimLink transport, and a full
// in-process NodeRuntime cluster running CONGOS over SimLink.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "congos/fragment.h"
#include "net/clock.h"
#include "net/control.h"
#include "net/fault_shim.h"
#include "net/framing.h"
#include "net/runtime.h"
#include "net/sim_transport.h"
#include "wire/envelope.h"

namespace congos {
namespace {

sim::Envelope direct_envelope(ProcessId from, ProcessId to,
                              std::vector<std::uint8_t> data) {
  auto body = std::make_shared<core::DirectRumorPayload>();
  body->rumor.uid = RumorUid{from, 7};
  body->rumor.data = std::move(data);
  body->rumor.deadline = 16;
  body->rumor.dest = DynamicBitset(8);
  body->rumor.dest.set(to);
  sim::Envelope e;
  e.from = from;
  e.to = to;
  e.tag.kind = sim::ServiceKind::kFallback;
  e.body = std::move(body);
  return e;
}

// -- framing ------------------------------------------------------------------

TEST(Framing, RoundTripSingleFrame) {
  std::vector<std::uint8_t> datagram;
  const sim::Envelope e = direct_envelope(1, 2, {0xAA, 0xBB});
  ASSERT_TRUE(net::append_frame(e, 5, &datagram));

  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame);
  wire::DecodedEnvelope dec;
  std::string err;
  ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &dec, &err))
      << err;
  EXPECT_EQ(dec.round, 5);
  EXPECT_EQ(dec.env.from, 1u);
  EXPECT_EQ(dec.env.to, 2u);
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kDone);
}

TEST(Framing, CoalescedFramesSplitInOrder) {
  std::vector<std::uint8_t> datagram;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(net::append_frame(
        direct_envelope(static_cast<ProcessId>(i), 7, {std::uint8_t(i)}), 3,
        &datagram));
  }
  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame) << i;
    wire::DecodedEnvelope dec;
    ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &dec));
    EXPECT_EQ(dec.env.from, static_cast<ProcessId>(i));
  }
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kDone);
}

TEST(Framing, TruncationDetected) {
  std::vector<std::uint8_t> datagram;
  ASSERT_TRUE(net::append_frame(direct_envelope(1, 2, {1, 2, 3}), 0, &datagram));
  for (std::size_t cut = 1; cut < datagram.size(); ++cut) {
    net::FrameSplitter sp(std::span<const std::uint8_t>(datagram.data(), cut));
    std::span<const std::uint8_t> frame;
    EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kTruncated) << cut;
  }
}

TEST(Framing, OpaquePayloadRejected) {
  sim::Envelope e;
  e.from = 0;
  e.to = 1;
  e.body = std::make_shared<net::DatagramPayload>(std::vector<std::uint8_t>{1});
  std::vector<std::uint8_t> datagram;
  EXPECT_FALSE(net::append_frame(e, 0, &datagram));
  EXPECT_TRUE(datagram.empty());
}

TEST(Framing, BuilderFlushesOnBudgetAndPreservesFrames) {
  net::DatagramBuilder builder;
  std::vector<std::vector<std::uint8_t>> sent;
  const auto flush = [&](std::span<const std::uint8_t> d) {
    sent.emplace_back(d.begin(), d.end());
  };
  const std::vector<std::uint8_t> blob(300, 0x5A);
  const int kFrames = 40;  // ~300+ bytes each: forces several datagrams
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(builder.add(direct_envelope(1, 2, blob), 9, flush));
  }
  builder.finish(flush);
  ASSERT_GT(sent.size(), 1u);
  int frames = 0;
  for (const auto& datagram : sent) {
    EXPECT_LE(datagram.size(), net::kDatagramBudget + 400);
    net::FrameSplitter sp(datagram);
    std::span<const std::uint8_t> frame;
    net::FrameSplitter::Status st;
    while ((st = sp.next(&frame)) == net::FrameSplitter::Status::kFrame) {
      wire::DecodedEnvelope dec;
      ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &dec));
      ++frames;
    }
    EXPECT_EQ(st, net::FrameSplitter::Status::kDone);
  }
  EXPECT_EQ(frames, kFrames);
}

// -- round clock --------------------------------------------------------------

TEST(RoundClock, MapsWallTimeToRounds) {
  const net::RoundClock clock(1000, 20);
  EXPECT_EQ(clock.round_at(999), -1);
  EXPECT_EQ(clock.round_at(1000), 0);
  EXPECT_EQ(clock.round_at(1019), 0);
  EXPECT_EQ(clock.round_at(1020), 1);
  EXPECT_EQ(clock.round_at(900), -5);
  EXPECT_EQ(clock.start_of(3), 1060);
  EXPECT_EQ(clock.ms_until_next(1000), 20);
  EXPECT_EQ(clock.ms_until_next(1019), 1);
  EXPECT_GE(clock.ms_until_next(1020), 1);
}

// -- control / event-log codec ------------------------------------------------

TEST(Control, StartRoundTrip) {
  net::StartCommand cmd;
  cmd.epoch_ms = 1754650000123;
  cmd.round_ms = 25;
  cmd.peer_ports = {4000, 4001, 4002};
  net::Line line;
  ASSERT_TRUE(net::parse_line(net::encode_start(cmd), &line));
  net::StartCommand back;
  std::string err;
  ASSERT_TRUE(net::parse_start(line, &back, &err)) << err;
  EXPECT_EQ(back.epoch_ms, cmd.epoch_ms);
  EXPECT_EQ(back.round_ms, cmd.round_ms);
  EXPECT_EQ(back.peer_ports, cmd.peer_ports);
}

TEST(Control, StartRejectsBadPorts) {
  net::Line line;
  ASSERT_TRUE(net::parse_line("start epoch=5 round-ms=20 peers=4000,0,4002", &line));
  net::StartCommand cmd;
  EXPECT_FALSE(net::parse_start(line, &cmd, nullptr));
  ASSERT_TRUE(net::parse_line("start epoch=5 round-ms=20 peers=70000", &line));
  EXPECT_FALSE(net::parse_start(line, &cmd, nullptr));
}

TEST(Control, InjectRoundTrip) {
  net::InjectCommand cmd;
  cmd.seq = 42;
  cmd.deadline = 40;
  cmd.dest = DynamicBitset(8);
  cmd.dest.set(3);
  cmd.dest.set(5);
  cmd.data = {0xDE, 0xAD, 0xBE, 0xEF};
  net::Line line;
  ASSERT_TRUE(net::parse_line(net::encode_inject(cmd), &line));
  net::InjectCommand back;
  std::string err;
  ASSERT_TRUE(net::parse_inject(line, &back, &err)) << err;
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.deadline, 40);
  EXPECT_EQ(back.dest.size(), 8u);
  EXPECT_TRUE(back.dest.test(3));
  EXPECT_TRUE(back.dest.test(5));
  EXPECT_EQ(back.dest.count(), 2u);
  EXPECT_EQ(back.data, cmd.data);
}

TEST(Control, InjectEventRoundTrip) {
  sim::Rumor rumor;
  rumor.uid = RumorUid{4, 9};
  rumor.data = {1, 2, 3};
  rumor.deadline = 32;
  rumor.dest = DynamicBitset(8);
  rumor.dest.set(0);
  net::Line line;
  ASSERT_TRUE(net::parse_line(net::encode_inject_event(6, rumor), &line));
  sim::Rumor back;
  Round round = 0;
  std::string err;
  ASSERT_TRUE(net::parse_inject_event(line, &back, &round, &err)) << err;
  EXPECT_EQ(round, 6);
  EXPECT_EQ(back.injected_at, 6);
  EXPECT_EQ(back.uid, rumor.uid);
  EXPECT_EQ(back.deadline, 32);
  EXPECT_EQ(back.data, rumor.data);
  EXPECT_TRUE(back.dest.test(0));
}

TEST(Control, RejectsMalformedLines) {
  net::Line line;
  EXPECT_FALSE(net::parse_line("", &line));
  EXPECT_FALSE(net::parse_line("verb =nokey", &line));
  ASSERT_TRUE(net::parse_line("inject seq=notanumber deadline=5 dest=00 data=",
                              &line));
  net::InjectCommand cmd;
  EXPECT_FALSE(net::parse_inject(line, &cmd, nullptr));
}

TEST(Control, HexHelpers) {
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(net::from_hex("00ff10", &bytes));
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0x00, 0xFF, 0x10}));
  EXPECT_EQ(net::to_hex(bytes), "00ff10");
  EXPECT_FALSE(net::from_hex("0", &bytes));     // odd length
  EXPECT_FALSE(net::from_hex("zz", &bytes));    // not hex
  EXPECT_TRUE(net::from_hex("", &bytes));       // empty payload is legal
  EXPECT_TRUE(bytes.empty());

  DynamicBitset b(19);
  b.set(0);
  b.set(18);
  DynamicBitset back;
  ASSERT_TRUE(net::bitset_from_hex(net::bitset_to_hex(b), &back));
  EXPECT_EQ(back.size(), 19u);
  EXPECT_TRUE(back.test(0));
  EXPECT_TRUE(back.test(18));
  EXPECT_EQ(back.count(), 2u);
}

// -- fault shim ---------------------------------------------------------------

/// Transport double that records sends and delivers nothing.
struct RecordingTransport final : net::Transport {
  std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> sent;
  net::TransportStats stats_;

  bool send(ProcessId to, std::span<const std::uint8_t> d) override {
    sent.emplace_back(to, std::vector<std::uint8_t>(d.begin(), d.end()));
    return true;
  }
  std::size_t poll(int, net::DatagramSink&) override { return 0; }
  const net::TransportStats& stats() const override { return stats_; }
};

TEST(FaultShim, DisabledConfigPassesThrough) {
  RecordingTransport inner;
  net::FaultShim shim(&inner, sim::FaultConfig{}, 0);
  const std::vector<std::uint8_t> d{1, 2, 3};
  EXPECT_TRUE(shim.send(1, d));
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(shim.fault_total(), 0u);
}

TEST(FaultShim, DropEverything) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.drop_rate = 1.0;
  net::FaultShim shim(&inner, cfg, 0);
  for (int i = 0; i < 50; ++i) shim.send(1, std::vector<std::uint8_t>{1});
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(shim.faults(sim::FaultKind::kDropped), 50u);
}

TEST(FaultShim, DelayReleasesAfterRounds) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.max_delay = 3;
  net::FaultShim shim(&inner, cfg, 2);
  for (int i = 0; i < 20; ++i) shim.send(1, std::vector<std::uint8_t>{1});
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(shim.faults(sim::FaultKind::kDelayed), 20u);
  for (Round r = 1; r <= 4; ++r) shim.set_round(r);
  EXPECT_EQ(inner.sent.size(), 20u);  // all due by now_ + max_delay
}

TEST(FaultShim, DuplicateSendsCopyLater) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.dup_rate = 1.0;
  cfg.max_delay = 2;
  net::FaultShim shim(&inner, cfg, 1);
  shim.send(3, std::vector<std::uint8_t>{9});
  EXPECT_EQ(inner.sent.size(), 1u);  // original goes out immediately
  EXPECT_EQ(shim.faults(sim::FaultKind::kDuplicated), 1u);
  for (Round r = 1; r <= 3; ++r) shim.set_round(r);
  EXPECT_EQ(inner.sent.size(), 2u);
  EXPECT_EQ(inner.sent[1].first, 3u);
  EXPECT_EQ(inner.sent[1].second, inner.sent[0].second);
}

TEST(FaultShim, PartitionMirrorsPureHash) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.partition_period = 8;
  cfg.partition_duration = 2;
  cfg.seed = 77;
  net::FaultShim shim(&inner, cfg, 2);
  std::uint64_t expect_cut = 0;
  for (Round r = 0; r < 64; ++r) {
    shim.set_round(r);
    if (sim::partition_cuts(cfg, r, 2, 5)) ++expect_cut;
    shim.send(5, std::vector<std::uint8_t>{1});
  }
  EXPECT_EQ(shim.faults(sim::FaultKind::kPartitioned), expect_cut);
  EXPECT_GT(expect_cut, 0u);
  EXPECT_EQ(inner.sent.size(), 64 - expect_cut);
}

TEST(FaultShim, DeterministicPerSeedAndSelf) {
  const auto run = [](std::uint64_t seed, ProcessId self) {
    RecordingTransport inner;
    sim::FaultConfig cfg;
    cfg.drop_rate = 0.3;
    cfg.seed = seed;
    net::FaultShim shim(&inner, cfg, self);
    std::string pattern;
    for (int i = 0; i < 200; ++i) {
      const std::size_t before = inner.sent.size();
      shim.send(1, std::vector<std::uint8_t>{1});
      pattern.push_back(inner.sent.size() > before ? 's' : 'd');
    }
    return pattern;
  };
  EXPECT_EQ(run(1, 0), run(1, 0));
  EXPECT_NE(run(1, 0), run(2, 0));
  EXPECT_NE(run(1, 0), run(1, 1));
}

// -- sim transport ------------------------------------------------------------

struct CollectSink final : net::DatagramSink {
  std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> got;
  void on_datagram(ProcessId from, std::span<const std::uint8_t> d) override {
    got.emplace_back(from, std::vector<std::uint8_t>(d.begin(), d.end()));
  }
};

TEST(SimLink, DeliversBytesAtNextRound) {
  net::SimLink link(4);
  const std::vector<std::uint8_t> payload{0xCA, 0xFE};
  EXPECT_TRUE(link.endpoint(0).send(3, payload));

  CollectSink sink;
  EXPECT_EQ(link.endpoint(3).poll(0, sink), 0u);  // not delivered yet
  link.advance_round();
  EXPECT_EQ(link.endpoint(3).poll(0, sink), 1u);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0].first, 0u);
  EXPECT_EQ(sink.got[0].second, payload);
  EXPECT_EQ(link.endpoint(3).poll(0, sink), 0u);  // queue drained
  EXPECT_EQ(link.endpoint(0).stats().datagrams_sent, 1u);
  EXPECT_EQ(link.endpoint(3).stats().datagrams_received, 1u);
}

TEST(SimLink, OutOfRangeDestinationCountsNoRoute) {
  net::SimLink link(2);
  EXPECT_FALSE(link.endpoint(0).send(9, std::vector<std::uint8_t>{1}));
  EXPECT_EQ(link.endpoint(0).stats().no_route, 1u);
}

// -- NodeRuntime over SimLink: a deterministic in-process cluster ------------

class SimCluster {
 public:
  SimCluster(std::size_t n, std::uint64_t seed, Round max_rounds)
      : link_(n) {
    for (ProcessId p = 0; p < n; ++p) {
      net::NodeConfig cfg;
      cfg.id = p;
      cfg.n = n;
      cfg.seed = seed;
      cfg.max_rounds = max_rounds;
      // Keep the fragment pipeline running: at n=8 the Theorem 16 cutoff
      // (tau >= n/log^2 n) would degenerate CONGOS to direct sending.
      cfg.congos.allow_degenerate = false;
      cfg.congos.retransmit.enabled = true;
      cfg.congos.retransmit.max_link_delay = 1;
      nodes_.push_back(
          std::make_unique<net::NodeRuntime>(cfg, &link_.endpoint(p)));
      std::string err;
      EXPECT_TRUE(nodes_.back()->start(&err)) << err;
    }
  }

  net::NodeRuntime& node(ProcessId p) { return *nodes_[p]; }

  void run_rounds(Round count) {
    struct Feed final : net::DatagramSink {
      net::NodeRuntime* rt = nullptr;
      void on_datagram(ProcessId from,
                       std::span<const std::uint8_t> d) override {
        rt->handle_datagram(from, d);
      }
    };
    for (Round i = 0; i < count; ++i) {
      link_.advance_round();
      const Round target = link_.round();
      for (std::size_t p = 0; p < nodes_.size(); ++p) {
        Feed feed;
        feed.rt = nodes_[p].get();
        link_.endpoint(static_cast<ProcessId>(p)).poll(0, feed);
        nodes_[p]->advance_to(target);
      }
    }
  }

 private:
  net::SimLink link_;
  std::vector<std::unique_ptr<net::NodeRuntime>> nodes_;
};

TEST(NodeRuntime, InProcessClusterDeliversInjectedRumor) {
  const std::size_t n = 8;
  const Round kRounds = 56;
  SimCluster cluster(n, 42, kRounds);

  DynamicBitset dest(n);
  dest.set(3);
  dest.set(5);
  cluster.run_rounds(2);
  cluster.node(0).inject(1, 40, dest, {0x11, 0x22, 0x33});
  cluster.run_rounds(kRounds - 2);

  EXPECT_GE(cluster.node(3).deliveries(), 1u);
  EXPECT_GE(cluster.node(5).deliveries(), 1u);
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(cluster.node(p).healthy()) << p << ": "
                                           << cluster.node(p).stats_json();
    EXPECT_EQ(cluster.node(p).decode_errors(), 0u);
  }
  EXPECT_EQ(cluster.node(0).injections(), 1u);
  // Every node moved real frames (the gossip substrate is always on).
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_GT(cluster.node(p).frames_received(), 0u) << p;
  }
  const std::string stats = cluster.node(0).stats_json();
  EXPECT_NE(stats.find("\"injections\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"transport\""), std::string::npos) << stats;
}

TEST(NodeRuntime, TwoIdenticalClustersAgreeByteForByte) {
  const auto run = [] {
    SimCluster cluster(4, 7, 24);
    DynamicBitset dest(4);
    dest.set(2);
    cluster.run_rounds(1);
    cluster.node(1).inject(5, 40, dest, {0xAB});
    cluster.run_rounds(23);
    std::string out;
    for (ProcessId p = 0; p < 4; ++p) out += cluster.node(p).stats_json();
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(NodeRuntime, MalformedDatagramCountedNotFatal) {
  net::SimLink link(2);
  net::NodeConfig cfg;
  cfg.id = 0;
  cfg.n = 2;
  cfg.max_rounds = 8;
  net::NodeRuntime rt(cfg, &link.endpoint(0));
  std::string err;
  ASSERT_TRUE(rt.start(&err)) << err;
  const std::vector<std::uint8_t> garbage{0xFF, 0xFF, 0xFF, 0xFF};
  rt.handle_datagram(1, garbage);
  EXPECT_EQ(rt.malformed_datagrams(), 1u);
  EXPECT_FALSE(rt.healthy());
  rt.advance_to(8);  // still ticks to completion
  EXPECT_TRUE(rt.done());
}

}  // namespace
}  // namespace congos
