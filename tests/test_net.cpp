// Unit tests for the real-wire runtime building blocks (src/net): datagram
// framing, wall-clock round mapping, the control/event-log codec, the
// socket-level fault shim, the deterministic SimLink transport, a full
// in-process NodeRuntime cluster running CONGOS over SimLink, and the
// batched UDP fast path (sendmmsg/recvmmsg vs single-syscall equivalence,
// queue bounds, pooled buffers, LZ4 datagram compression).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "congos/fragment.h"
#include "net/clock.h"
#include "net/control.h"
#include "net/fault_shim.h"
#include "net/framing.h"
#include "net/runtime.h"
#include "net/sim_transport.h"
#include "net/udp_transport.h"
#include "wire/compress.h"
#include "wire/envelope.h"

namespace congos {
namespace {

sim::Envelope direct_envelope(ProcessId from, ProcessId to,
                              std::vector<std::uint8_t> data) {
  auto body = std::make_shared<core::DirectRumorPayload>();
  body->rumor.uid = RumorUid{from, 7};
  body->rumor.data = std::move(data);
  body->rumor.deadline = 16;
  body->rumor.dest = DynamicBitset(8);
  body->rumor.dest.set(to);
  sim::Envelope e;
  e.from = from;
  e.to = to;
  e.tag.kind = sim::ServiceKind::kFallback;
  e.body = std::move(body);
  return e;
}

// -- framing ------------------------------------------------------------------

TEST(Framing, RoundTripSingleFrame) {
  std::vector<std::uint8_t> datagram;
  const sim::Envelope e = direct_envelope(1, 2, {0xAA, 0xBB});
  ASSERT_TRUE(net::append_frame(e, 5, &datagram));

  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame);
  wire::DecodedEnvelope dec;
  std::string err;
  ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &dec, &err))
      << err;
  EXPECT_EQ(dec.round, 5);
  EXPECT_EQ(dec.env.from, 1u);
  EXPECT_EQ(dec.env.to, 2u);
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kDone);
}

TEST(Framing, CoalescedFramesSplitInOrder) {
  std::vector<std::uint8_t> datagram;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(net::append_frame(
        direct_envelope(static_cast<ProcessId>(i), 7, {std::uint8_t(i)}), 3,
        &datagram));
  }
  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame) << i;
    wire::DecodedEnvelope dec;
    ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &dec));
    EXPECT_EQ(dec.env.from, static_cast<ProcessId>(i));
  }
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kDone);
}

TEST(Framing, TruncationDetected) {
  std::vector<std::uint8_t> datagram;
  ASSERT_TRUE(net::append_frame(direct_envelope(1, 2, {1, 2, 3}), 0, &datagram));
  for (std::size_t cut = 1; cut < datagram.size(); ++cut) {
    net::FrameSplitter sp(std::span<const std::uint8_t>(datagram.data(), cut));
    std::span<const std::uint8_t> frame;
    EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kTruncated) << cut;
  }
}

TEST(Framing, OpaquePayloadRejected) {
  sim::Envelope e;
  e.from = 0;
  e.to = 1;
  e.body = std::make_shared<net::DatagramPayload>(std::vector<std::uint8_t>{1});
  std::vector<std::uint8_t> datagram;
  EXPECT_FALSE(net::append_frame(e, 0, &datagram));
  EXPECT_TRUE(datagram.empty());
}

TEST(Framing, BuilderFlushesOnBudgetAndPreservesFrames) {
  net::DatagramBuilder builder;
  std::vector<std::vector<std::uint8_t>> sent;
  const auto flush = [&](net::DatagramHandle d) { sent.push_back(d->bytes); };
  const std::vector<std::uint8_t> blob(300, 0x5A);
  const int kFrames = 40;  // ~300+ bytes each: forces several datagrams
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(builder.add(direct_envelope(1, 2, blob), 9, flush));
  }
  builder.finish(flush);
  ASSERT_GT(sent.size(), 1u);
  int frames = 0;
  for (const auto& datagram : sent) {
    EXPECT_LE(datagram.size(), net::kDatagramBudget + 400);
    net::FrameSplitter sp(datagram);
    std::span<const std::uint8_t> frame;
    net::FrameSplitter::Status st;
    while ((st = sp.next(&frame)) == net::FrameSplitter::Status::kFrame) {
      wire::DecodedEnvelope dec;
      ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &dec));
      ++frames;
    }
    EXPECT_EQ(st, net::FrameSplitter::Status::kDone);
  }
  EXPECT_EQ(frames, kFrames);
}

// -- round clock --------------------------------------------------------------

TEST(RoundClock, MapsWallTimeToRounds) {
  const net::RoundClock clock(1000, 20);
  EXPECT_EQ(clock.round_at(999), -1);
  EXPECT_EQ(clock.round_at(1000), 0);
  EXPECT_EQ(clock.round_at(1019), 0);
  EXPECT_EQ(clock.round_at(1020), 1);
  EXPECT_EQ(clock.round_at(900), -5);
  EXPECT_EQ(clock.start_of(3), 1060);
  EXPECT_EQ(clock.ms_until_next(1000), 20);
  EXPECT_EQ(clock.ms_until_next(1019), 1);
  EXPECT_GE(clock.ms_until_next(1020), 1);
}

// -- control / event-log codec ------------------------------------------------

TEST(Control, StartRoundTrip) {
  net::StartCommand cmd;
  cmd.epoch_ms = 1754650000123;
  cmd.round_ms = 25;
  cmd.peer_ports = {4000, 4001, 4002};
  net::Line line;
  ASSERT_TRUE(net::parse_line(net::encode_start(cmd), &line));
  net::StartCommand back;
  std::string err;
  ASSERT_TRUE(net::parse_start(line, &back, &err)) << err;
  EXPECT_EQ(back.epoch_ms, cmd.epoch_ms);
  EXPECT_EQ(back.round_ms, cmd.round_ms);
  EXPECT_EQ(back.peer_ports, cmd.peer_ports);
}

TEST(Control, StartRejectsBadPorts) {
  net::Line line;
  ASSERT_TRUE(net::parse_line("start epoch=5 round-ms=20 peers=4000,0,4002", &line));
  net::StartCommand cmd;
  EXPECT_FALSE(net::parse_start(line, &cmd, nullptr));
  ASSERT_TRUE(net::parse_line("start epoch=5 round-ms=20 peers=70000", &line));
  EXPECT_FALSE(net::parse_start(line, &cmd, nullptr));
}

TEST(Control, InjectRoundTrip) {
  net::InjectCommand cmd;
  cmd.seq = 42;
  cmd.deadline = 40;
  cmd.dest = DynamicBitset(8);
  cmd.dest.set(3);
  cmd.dest.set(5);
  cmd.data = {0xDE, 0xAD, 0xBE, 0xEF};
  net::Line line;
  ASSERT_TRUE(net::parse_line(net::encode_inject(cmd), &line));
  net::InjectCommand back;
  std::string err;
  ASSERT_TRUE(net::parse_inject(line, &back, &err)) << err;
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.deadline, 40);
  EXPECT_EQ(back.dest.size(), 8u);
  EXPECT_TRUE(back.dest.test(3));
  EXPECT_TRUE(back.dest.test(5));
  EXPECT_EQ(back.dest.count(), 2u);
  EXPECT_EQ(back.data, cmd.data);
}

TEST(Control, InjectEventRoundTrip) {
  sim::Rumor rumor;
  rumor.uid = RumorUid{4, 9};
  rumor.data = {1, 2, 3};
  rumor.deadline = 32;
  rumor.dest = DynamicBitset(8);
  rumor.dest.set(0);
  net::Line line;
  ASSERT_TRUE(net::parse_line(net::encode_inject_event(6, rumor), &line));
  sim::Rumor back;
  Round round = 0;
  std::string err;
  ASSERT_TRUE(net::parse_inject_event(line, &back, &round, &err)) << err;
  EXPECT_EQ(round, 6);
  EXPECT_EQ(back.injected_at, 6);
  EXPECT_EQ(back.uid, rumor.uid);
  EXPECT_EQ(back.deadline, 32);
  EXPECT_EQ(back.data, rumor.data);
  EXPECT_TRUE(back.dest.test(0));
}

TEST(Control, RejectsMalformedLines) {
  net::Line line;
  EXPECT_FALSE(net::parse_line("", &line));
  EXPECT_FALSE(net::parse_line("verb =nokey", &line));
  ASSERT_TRUE(net::parse_line("inject seq=notanumber deadline=5 dest=00 data=",
                              &line));
  net::InjectCommand cmd;
  EXPECT_FALSE(net::parse_inject(line, &cmd, nullptr));
}

TEST(Control, HexHelpers) {
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(net::from_hex("00ff10", &bytes));
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0x00, 0xFF, 0x10}));
  EXPECT_EQ(net::to_hex(bytes), "00ff10");
  EXPECT_FALSE(net::from_hex("0", &bytes));     // odd length
  EXPECT_FALSE(net::from_hex("zz", &bytes));    // not hex
  EXPECT_TRUE(net::from_hex("", &bytes));       // empty payload is legal
  EXPECT_TRUE(bytes.empty());

  DynamicBitset b(19);
  b.set(0);
  b.set(18);
  DynamicBitset back;
  ASSERT_TRUE(net::bitset_from_hex(net::bitset_to_hex(b), &back));
  EXPECT_EQ(back.size(), 19u);
  EXPECT_TRUE(back.test(0));
  EXPECT_TRUE(back.test(18));
  EXPECT_EQ(back.count(), 2u);
}

// -- fault shim ---------------------------------------------------------------

/// Transport double that records sends and delivers nothing.
struct RecordingTransport final : net::Transport {
  std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> sent;
  net::TransportStats stats_;

  bool send(ProcessId to, std::span<const std::uint8_t> d) override {
    sent.emplace_back(to, std::vector<std::uint8_t>(d.begin(), d.end()));
    return true;
  }
  std::size_t poll(int, net::DatagramSink&) override { return 0; }
  const net::TransportStats& stats() const override { return stats_; }
};

TEST(FaultShim, DisabledConfigPassesThrough) {
  RecordingTransport inner;
  net::FaultShim shim(&inner, sim::FaultConfig{}, 0);
  const std::vector<std::uint8_t> d{1, 2, 3};
  EXPECT_TRUE(shim.send(1, d));
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(shim.fault_total(), 0u);
}

TEST(FaultShim, DropEverything) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.drop_rate = 1.0;
  net::FaultShim shim(&inner, cfg, 0);
  for (int i = 0; i < 50; ++i) shim.send(1, std::vector<std::uint8_t>{1});
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(shim.faults(sim::FaultKind::kDropped), 50u);
}

TEST(FaultShim, DelayReleasesAfterRounds) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.max_delay = 3;
  net::FaultShim shim(&inner, cfg, 2);
  for (int i = 0; i < 20; ++i) shim.send(1, std::vector<std::uint8_t>{1});
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(shim.faults(sim::FaultKind::kDelayed), 20u);
  for (Round r = 1; r <= 4; ++r) shim.set_round(r);
  EXPECT_EQ(inner.sent.size(), 20u);  // all due by now_ + max_delay
}

TEST(FaultShim, DuplicateSendsCopyLater) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.dup_rate = 1.0;
  cfg.max_delay = 2;
  net::FaultShim shim(&inner, cfg, 1);
  shim.send(3, std::vector<std::uint8_t>{9});
  EXPECT_EQ(inner.sent.size(), 1u);  // original goes out immediately
  EXPECT_EQ(shim.faults(sim::FaultKind::kDuplicated), 1u);
  for (Round r = 1; r <= 3; ++r) shim.set_round(r);
  EXPECT_EQ(inner.sent.size(), 2u);
  EXPECT_EQ(inner.sent[1].first, 3u);
  EXPECT_EQ(inner.sent[1].second, inner.sent[0].second);
}

TEST(FaultShim, PartitionMirrorsPureHash) {
  RecordingTransport inner;
  sim::FaultConfig cfg;
  cfg.partition_period = 8;
  cfg.partition_duration = 2;
  cfg.seed = 77;
  net::FaultShim shim(&inner, cfg, 2);
  std::uint64_t expect_cut = 0;
  for (Round r = 0; r < 64; ++r) {
    shim.set_round(r);
    if (sim::partition_cuts(cfg, r, 2, 5)) ++expect_cut;
    shim.send(5, std::vector<std::uint8_t>{1});
  }
  EXPECT_EQ(shim.faults(sim::FaultKind::kPartitioned), expect_cut);
  EXPECT_GT(expect_cut, 0u);
  EXPECT_EQ(inner.sent.size(), 64 - expect_cut);
}

TEST(FaultShim, DeterministicPerSeedAndSelf) {
  const auto run = [](std::uint64_t seed, ProcessId self) {
    RecordingTransport inner;
    sim::FaultConfig cfg;
    cfg.drop_rate = 0.3;
    cfg.seed = seed;
    net::FaultShim shim(&inner, cfg, self);
    std::string pattern;
    for (int i = 0; i < 200; ++i) {
      const std::size_t before = inner.sent.size();
      shim.send(1, std::vector<std::uint8_t>{1});
      pattern.push_back(inner.sent.size() > before ? 's' : 'd');
    }
    return pattern;
  };
  EXPECT_EQ(run(1, 0), run(1, 0));
  EXPECT_NE(run(1, 0), run(2, 0));
  EXPECT_NE(run(1, 0), run(1, 1));
}

// -- sim transport ------------------------------------------------------------

struct CollectSink final : net::DatagramSink {
  std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> got;
  void on_datagram(ProcessId from, std::span<const std::uint8_t> d) override {
    got.emplace_back(from, std::vector<std::uint8_t>(d.begin(), d.end()));
  }
};

TEST(SimLink, DeliversBytesAtNextRound) {
  net::SimLink link(4);
  const std::vector<std::uint8_t> payload{0xCA, 0xFE};
  EXPECT_TRUE(link.endpoint(0).send(3, payload));

  CollectSink sink;
  EXPECT_EQ(link.endpoint(3).poll(0, sink), 0u);  // not delivered yet
  link.advance_round();
  EXPECT_EQ(link.endpoint(3).poll(0, sink), 1u);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0].first, 0u);
  EXPECT_EQ(sink.got[0].second, payload);
  EXPECT_EQ(link.endpoint(3).poll(0, sink), 0u);  // queue drained
  EXPECT_EQ(link.endpoint(0).stats().datagrams_sent, 1u);
  EXPECT_EQ(link.endpoint(3).stats().datagrams_received, 1u);
}

TEST(SimLink, OutOfRangeDestinationCountsNoRoute) {
  net::SimLink link(2);
  EXPECT_FALSE(link.endpoint(0).send(9, std::vector<std::uint8_t>{1}));
  EXPECT_EQ(link.endpoint(0).stats().no_route, 1u);
}

// -- NodeRuntime over SimLink: a deterministic in-process cluster ------------

class SimCluster {
 public:
  /// `compress_mask` (optional) selects which nodes LZ4-compress their
  /// outbound datagrams - mixed clusters prove plain/compressed interop.
  SimCluster(std::size_t n, std::uint64_t seed, Round max_rounds,
             DynamicBitset compress_mask = DynamicBitset())
      : link_(n) {
    for (ProcessId p = 0; p < n; ++p) {
      net::NodeConfig cfg;
      cfg.id = p;
      cfg.n = n;
      cfg.seed = seed;
      cfg.max_rounds = max_rounds;
      cfg.compress = p < compress_mask.size() && compress_mask.test(p);
      // Keep the fragment pipeline running: at n=8 the Theorem 16 cutoff
      // (tau >= n/log^2 n) would degenerate CONGOS to direct sending.
      cfg.congos.allow_degenerate = false;
      cfg.congos.retransmit.enabled = true;
      cfg.congos.retransmit.max_link_delay = 1;
      nodes_.push_back(
          std::make_unique<net::NodeRuntime>(cfg, &link_.endpoint(p)));
      std::string err;
      EXPECT_TRUE(nodes_.back()->start(&err)) << err;
    }
  }

  net::NodeRuntime& node(ProcessId p) { return *nodes_[p]; }

  void run_rounds(Round count) {
    struct Feed final : net::DatagramSink {
      net::NodeRuntime* rt = nullptr;
      void on_datagram(ProcessId from,
                       std::span<const std::uint8_t> d) override {
        rt->handle_datagram(from, d);
      }
    };
    for (Round i = 0; i < count; ++i) {
      link_.advance_round();
      const Round target = link_.round();
      for (std::size_t p = 0; p < nodes_.size(); ++p) {
        Feed feed;
        feed.rt = nodes_[p].get();
        link_.endpoint(static_cast<ProcessId>(p)).poll(0, feed);
        nodes_[p]->advance_to(target);
      }
    }
  }

 private:
  net::SimLink link_;
  std::vector<std::unique_ptr<net::NodeRuntime>> nodes_;
};

TEST(NodeRuntime, InProcessClusterDeliversInjectedRumor) {
  const std::size_t n = 8;
  const Round kRounds = 56;
  SimCluster cluster(n, 42, kRounds);

  DynamicBitset dest(n);
  dest.set(3);
  dest.set(5);
  cluster.run_rounds(2);
  cluster.node(0).inject(1, 40, dest, {0x11, 0x22, 0x33});
  cluster.run_rounds(kRounds - 2);

  EXPECT_GE(cluster.node(3).deliveries(), 1u);
  EXPECT_GE(cluster.node(5).deliveries(), 1u);
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(cluster.node(p).healthy()) << p << ": "
                                           << cluster.node(p).stats_json();
    EXPECT_EQ(cluster.node(p).decode_errors(), 0u);
  }
  EXPECT_EQ(cluster.node(0).injections(), 1u);
  // Every node moved real frames (the gossip substrate is always on).
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_GT(cluster.node(p).frames_received(), 0u) << p;
  }
  const std::string stats = cluster.node(0).stats_json();
  EXPECT_NE(stats.find("\"injections\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"transport\""), std::string::npos) << stats;
}

TEST(NodeRuntime, TwoIdenticalClustersAgreeByteForByte) {
  const auto run = [] {
    SimCluster cluster(4, 7, 24);
    DynamicBitset dest(4);
    dest.set(2);
    cluster.run_rounds(1);
    cluster.node(1).inject(5, 40, dest, {0xAB});
    cluster.run_rounds(23);
    std::string out;
    for (ProcessId p = 0; p < 4; ++p) out += cluster.node(p).stats_json();
    return out;
  };
  EXPECT_EQ(run(), run());
}

// -- pooled datagram buffers --------------------------------------------------

TEST(DatagramPool, RecyclesBuffersAndKeepsCapacity) {
  net::DatagramPool pool;
  net::DatagramHandle a = pool.acquire();
  a->bytes.assign(2000, 0xAB);
  net::DatagramBuffer* raw = a.get();
  const std::size_t cap = a->bytes.capacity();
  a.reset();  // back to the free list
  EXPECT_EQ(pool.idle(), 1u);

  net::DatagramHandle b = pool.acquire();
  EXPECT_EQ(b.get(), raw);               // same object came back
  EXPECT_TRUE(b->bytes.empty());         // reuse() cleared it...
  EXPECT_GE(b->bytes.capacity(), cap);   // ...but kept the capacity
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(DatagramPool, GrowsPastIdleSupplyWithoutDisturbingLiveHandles) {
  net::DatagramPool pool;
  std::vector<net::DatagramHandle> live;
  for (int i = 0; i < 16; ++i) {
    live.push_back(pool.acquire());
    live.back()->bytes.assign(1, static_cast<std::uint8_t>(i));
  }
  // Exhausted the free list 16 times over; every handle is distinct and
  // intact.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(live[static_cast<std::size_t>(i)]->bytes[0],
              static_cast<std::uint8_t>(i));
  }
  live.clear();
  EXPECT_EQ(pool.idle(), 16u);
  // Handles may outlive the pool (common/pool.h contract) - exercised by
  // acquiring before destroying the pool in a nested scope.
  net::DatagramHandle survivor;
  {
    net::DatagramPool scoped;
    survivor = scoped.acquire();
    survivor->bytes = {1, 2, 3};
  }
  EXPECT_EQ(survivor->bytes.size(), 3u);
}

TEST(Framing, BuilderUsesAttachedPool) {
  net::DatagramPool pool;
  net::DatagramBuilder builder;
  builder.set_pool(&pool);
  std::vector<net::DatagramHandle> shipped;
  const auto flush = [&](net::DatagramHandle d) {
    shipped.push_back(std::move(d));
  };
  const std::vector<std::uint8_t> blob(600, 0x5A);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(builder.add(direct_envelope(1, 2, blob), 3, flush));
  }
  builder.finish(flush);
  ASSERT_GT(shipped.size(), 1u);
  shipped.clear();  // handles die -> buffers return to the pool
  EXPECT_GT(pool.idle(), 0u);
  const std::size_t idle_before = pool.idle();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(builder.add(direct_envelope(1, 2, blob), 4, flush));
  }
  builder.finish(flush);
  // The second phase ran entirely on recycled buffers.
  EXPECT_LE(pool.idle(), idle_before);
}

// -- compressed datagram container --------------------------------------------

TEST(Framing, PlainDatagramNeverStartsWithCompressMarker) {
  std::vector<std::uint8_t> datagram;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(net::append_frame(direct_envelope(1, 2, {std::uint8_t(i)}), 3,
                                  &datagram));
  }
  ASSERT_FALSE(datagram.empty());
  // The marker byte is only unambiguous because no legal frame sequence can
  // begin with 0x00 (a zero frame length is malformed).
  EXPECT_NE(datagram[0], net::kCompressedDatagramMarker);
}

TEST(Framing, ZeroFrameLengthIsMalformed) {
  std::vector<std::uint8_t> datagram;
  ASSERT_TRUE(net::append_frame(direct_envelope(1, 2, {7}), 0, &datagram));
  datagram.push_back(0x00);  // trailing zero-length "frame"
  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame);
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kMalformed);
}

TEST(Framing, CompressedDatagramRoundTrips) {
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  std::vector<std::uint8_t> datagram;
  // Highly repetitive payloads so LZ4 actually wins and the container ships.
  const std::vector<std::uint8_t> blob(400, 0x42);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net::append_frame(direct_envelope(1, 2, blob), 9, &datagram));
  }
  const std::vector<std::uint8_t> plain = datagram;
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(net::compress_datagram(&datagram, &scratch));
  EXPECT_LT(datagram.size(), plain.size());
  EXPECT_EQ(datagram[0], net::kCompressedDatagramMarker);

  std::vector<std::uint8_t> unwrap_scratch;
  std::span<const std::uint8_t> frames;
  ASSERT_EQ(net::unwrap_datagram(datagram, &unwrap_scratch, &frames),
            net::DatagramKind::kDecompressed);
  EXPECT_TRUE(std::equal(frames.begin(), frames.end(), plain.begin(),
                         plain.end()));
}

TEST(Framing, CompressSkipsTinyAndIncompressibleDatagrams) {
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  std::vector<std::uint8_t> scratch;
  // Below the minimum size: ships plain.
  std::vector<std::uint8_t> tiny{1, 2, 3};
  EXPECT_FALSE(net::compress_datagram(&tiny, &scratch));
  EXPECT_EQ(tiny, (std::vector<std::uint8_t>{1, 2, 3}));
  // Incompressible (pseudo-random) bytes: the container would not shrink
  // the datagram, so it ships plain too.
  std::vector<std::uint8_t> noise;
  std::uint32_t x = 0x12345678;
  for (int i = 0; i < 512; ++i) {
    x = x * 1664525u + 1013904223u;
    noise.push_back(static_cast<std::uint8_t>(x >> 24));
  }
  const std::vector<std::uint8_t> noise_before = noise;
  if (!net::compress_datagram(&noise, &scratch)) {
    EXPECT_EQ(noise, noise_before);
  }
}

TEST(Framing, CorruptCompressedBodyRejected) {
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  std::vector<std::uint8_t> datagram;
  const std::vector<std::uint8_t> blob(400, 0x42);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net::append_frame(direct_envelope(1, 2, blob), 9, &datagram));
  }
  const std::vector<std::uint8_t> plain = datagram;
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(net::compress_datagram(&datagram, &scratch));

  // Flip every byte position in turn: the unwrap must never crash, and any
  // mutant that still decodes must either reproduce the original bytes or
  // be caught downstream by the envelope checksum.
  for (std::size_t i = 0; i < datagram.size(); ++i) {
    std::vector<std::uint8_t> mutant = datagram;
    mutant[i] ^= 0xFF;
    std::vector<std::uint8_t> us;
    std::span<const std::uint8_t> frames;
    const net::DatagramKind kind = net::unwrap_datagram(mutant, &us, &frames);
    if (kind == net::DatagramKind::kDecompressed &&
        !std::equal(frames.begin(), frames.end(), plain.begin(), plain.end())) {
      // Silent corruption at the container level: the per-frame checksum
      // must reject every frame that differs.
      net::FrameSplitter sp(frames);
      std::span<const std::uint8_t> frame;
      while (sp.next(&frame) == net::FrameSplitter::Status::kFrame) {
        wire::DecodedEnvelope dec;
        std::vector<std::uint8_t> fcopy(frame.begin(), frame.end());
        const bool in_plain =
            std::search(plain.begin(), plain.end(), fcopy.begin(),
                        fcopy.end()) != plain.end();
        if (!in_plain) {
          EXPECT_FALSE(wire::decode_envelope(frame.data(), frame.size(), &dec))
              << "corrupted frame decoded cleanly at byte " << i;
        }
      }
    }
  }

  // Truncations of the container must be rejected outright.
  for (std::size_t cut = 1; cut + 1 < datagram.size(); ++cut) {
    std::vector<std::uint8_t> mutant(datagram.begin(),
                                     datagram.begin() + static_cast<std::ptrdiff_t>(cut));
    std::vector<std::uint8_t> us;
    std::span<const std::uint8_t> frames;
    EXPECT_NE(net::unwrap_datagram(mutant, &us, &frames),
              net::DatagramKind::kDecompressed)
        << cut;
  }
}

TEST(Framing, CompressedContainerDeclaringOversizeLengthIsMalformed) {
  // A hostile container may not force a huge decompression target.
  std::vector<std::uint8_t> hostile{net::kCompressedDatagramMarker};
  std::uint64_t v = net::kMaxDatagramBytes + 1;
  while (v >= 0x80) {
    hostile.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  hostile.push_back(static_cast<std::uint8_t>(v));
  hostile.push_back(0xAA);
  std::vector<std::uint8_t> scratch;
  std::span<const std::uint8_t> frames;
  EXPECT_EQ(net::unwrap_datagram(hostile, &scratch, &frames),
            net::DatagramKind::kMalformed);
  // Declared length zero is equally malformed.
  const std::vector<std::uint8_t> zero{net::kCompressedDatagramMarker, 0x00};
  EXPECT_EQ(net::unwrap_datagram(zero, &scratch, &frames),
            net::DatagramKind::kMalformed);
}

// -- batched UDP fast path ----------------------------------------------------

/// Collects raw received datagrams (bytes only, in arrival order).
struct ByteSink final : net::DatagramSink {
  std::vector<std::vector<std::uint8_t>> got;
  void on_datagram(ProcessId, std::span<const std::uint8_t> d) override {
    got.emplace_back(d.begin(), d.end());
  }
};

/// Drains `rx` until `expect` datagrams arrived (bounded retries: loopback
/// delivery is synchronous, so one or two passes normally suffice).
void drain_expect(net::UdpTransport& rx, ByteSink& sink, std::size_t expect) {
  for (int tries = 0; sink.got.size() < expect && tries < 2000; ++tries) {
    rx.drain(sink);
  }
}

std::vector<std::vector<std::uint8_t>> udp_roundtrip(bool batched,
                                                     std::size_t count) {
  net::UdpTransport tx;
  net::UdpTransport rx;
  std::string err;
  EXPECT_TRUE(tx.open(0, &err)) << err;
  EXPECT_TRUE(rx.open(0, &err)) << err;
  tx.set_peer(1, rx.local_port());
  rx.set_peer(0, tx.local_port());
  tx.set_batching(batched);
  rx.set_batching(batched);

  for (std::size_t i = 0; i < count; ++i) {
    // Varied sizes and content so reordering or truncation would show.
    std::vector<std::uint8_t> d(1 + (i * 37) % 900);
    for (std::size_t j = 0; j < d.size(); ++j) {
      d[j] = static_cast<std::uint8_t>(i * 131 + j);
    }
    EXPECT_TRUE(tx.send(1, std::span<const std::uint8_t>(d)));
  }
  for (int tries = 0; !tx.flush() && tries < 2000; ++tries) {
  }
  ByteSink sink;
  drain_expect(rx, sink, count);
  EXPECT_EQ(tx.stats().datagrams_sent, count);
  EXPECT_EQ(rx.stats().datagrams_received, count);
  return sink.got;
}

TEST(UdpPath, BatchedAndSingleSyscallStreamsAreByteIdentical) {
  const std::size_t kCount = 150;
  const auto batched = udp_roundtrip(true, kCount);
  const auto single = udp_roundtrip(false, kCount);
  ASSERT_EQ(batched.size(), kCount);
  ASSERT_EQ(single.size(), kCount);
  // Byte-for-byte: same datagrams, same per-peer order, regardless of how
  // many kernel crossings carried them.
  EXPECT_EQ(batched, single);
}

TEST(UdpPath, BatchingActuallyBatchesSyscalls) {
  net::UdpTransport tx;
  net::UdpTransport rx;
  std::string err;
  ASSERT_TRUE(tx.open(0, &err)) << err;
  ASSERT_TRUE(rx.open(0, &err)) << err;
  tx.set_peer(1, rx.local_port());
  rx.set_peer(0, tx.local_port());
  if (!tx.batching()) GTEST_SKIP() << "no sendmmsg on this platform";

  const std::size_t kCount = net::UdpTransport::kMaxBatch * 3;
  const std::vector<std::uint8_t> d(200, 0x77);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(tx.send(1, std::span<const std::uint8_t>(d)));
  }
  for (int tries = 0; !tx.flush() && tries < 2000; ++tries) {
  }
  EXPECT_EQ(tx.stats().datagrams_sent, kCount);
  // 96 datagrams in >= 3 sendmmsg calls, nowhere near 96 sendto calls.
  EXPECT_LE(tx.stats().send_syscalls, kCount / net::UdpTransport::kMaxBatch + 2);

  ByteSink sink;
  drain_expect(rx, sink, kCount);
  ASSERT_EQ(sink.got.size(), kCount);
  EXPECT_LE(rx.stats().recv_syscalls, kCount / net::UdpTransport::kMaxBatch + 2000);
  EXPECT_LT(rx.stats().recv_syscalls, kCount);
}

TEST(UdpPath, HandleSendTakesOwnershipWithoutCopy) {
  net::UdpTransport tx;
  net::UdpTransport rx;
  std::string err;
  ASSERT_TRUE(tx.open(0, &err)) << err;
  ASSERT_TRUE(rx.open(0, &err)) << err;
  tx.set_peer(1, rx.local_port());
  rx.set_peer(0, tx.local_port());
  tx.set_batching(true);
  if (!tx.batching()) GTEST_SKIP() << "no sendmmsg on this platform";

  net::DatagramPool pool;
  net::DatagramHandle d = pool.acquire();
  d->bytes.assign(300, 0x3C);
  ASSERT_TRUE(tx.send(1, std::move(d)));
  // Queued (batched mode defers to flush), so the buffer is NOT back in the
  // pool yet - the queue holds the live handle, no copy was made.
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_TRUE(tx.want_write());
  for (int tries = 0; !tx.flush() && tries < 2000; ++tries) {
  }
  // Flushed: the handle died inside the transport and the buffer recycled.
  EXPECT_EQ(pool.idle(), 1u);
  ByteSink sink;
  drain_expect(rx, sink, 1);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0], std::vector<std::uint8_t>(300, 0x3C));
}

TEST(UdpPath, QueueCapDropsOldestAndCountsOverflow) {
  net::UdpTransport tx;
  net::UdpTransport rx;
  std::string err;
  ASSERT_TRUE(tx.open(0, &err)) << err;
  ASSERT_TRUE(rx.open(0, &err)) << err;
  tx.set_peer(1, rx.local_port());
  rx.set_peer(0, tx.local_port());
  tx.set_batching(true);
  if (!tx.batching()) GTEST_SKIP() << "no sendmmsg on this platform";
  tx.set_queue_cap(4);

  for (std::uint8_t i = 0; i < 10; ++i) {
    const std::vector<std::uint8_t> d{i};
    ASSERT_TRUE(tx.send(1, std::span<const std::uint8_t>(d)));
  }
  EXPECT_EQ(tx.stats().queue_overflow, 6u);
  EXPECT_EQ(tx.stats().queue_hwm, 4u);
  for (int tries = 0; !tx.flush() && tries < 2000; ++tries) {
  }
  ByteSink sink;
  drain_expect(rx, sink, 4);
  ASSERT_EQ(sink.got.size(), 4u);
  // Drop-oldest: the four NEWEST datagrams survived, in order.
  for (std::uint8_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.got[i], std::vector<std::uint8_t>{std::uint8_t(6 + i)});
  }
}

/// UdpTransport with a scripted wire: real loopback UDP (almost) never
/// surfaces EAGAIN or fatal sendto errors, so the flush policy is driven
/// through the virtual wire_send seam instead.
class ScriptedUdp final : public net::UdpTransport {
 public:
  using net::UdpTransport::WireResult;  // protected in the base; tests script it
  std::map<std::uint16_t, WireResult> script;

 protected:
  WireResult wire_send(std::uint16_t port, const std::uint8_t*,
                       std::size_t) override {
    const auto it = script.find(port);
    return it == script.end() ? WireResult::kSent : it->second;
  }
};

TEST(UdpPath, FlushSkipsBackpressuredPeerInsteadOfStalling) {
  ScriptedUdp tx;
  std::string err;
  ASSERT_TRUE(tx.open(0, &err)) << err;
  tx.set_batching(false);  // the single-syscall path owns the HOL policy
  tx.set_peer(1, 50001);
  tx.set_peer(2, 50002);
  tx.script[50001] = ScriptedUdp::WireResult::kAgain;
  tx.script[50002] = ScriptedUdp::WireResult::kAgain;

  const std::vector<std::uint8_t> d{0xEE};
  ASSERT_TRUE(tx.send(1, std::span<const std::uint8_t>(d)));
  ASSERT_TRUE(tx.send(2, std::span<const std::uint8_t>(d)));
  EXPECT_EQ(tx.stats().datagrams_sent, 0u);
  EXPECT_TRUE(tx.want_write());

  // Peer 1 stays backpressured, peer 2 opens up: flush must deliver peer
  // 2's queue anyway (the PR 8 code returned at the first EAGAIN and
  // starved every peer behind it).
  tx.script[50002] = ScriptedUdp::WireResult::kSent;
  EXPECT_FALSE(tx.flush());
  EXPECT_EQ(tx.stats().datagrams_sent, 1u);
  EXPECT_TRUE(tx.want_write());

  tx.script[50001] = ScriptedUdp::WireResult::kSent;
  EXPECT_TRUE(tx.flush());
  EXPECT_EQ(tx.stats().datagrams_sent, 2u);
  EXPECT_FALSE(tx.want_write());
}

TEST(UdpPath, FatalWireErrorDropsQueuedDatagramAndCounts) {
  ScriptedUdp tx;
  std::string err;
  ASSERT_TRUE(tx.open(0, &err)) << err;
  tx.set_batching(false);
  tx.set_peer(1, 50001);
  tx.script[50001] = ScriptedUdp::WireResult::kAgain;
  const std::vector<std::uint8_t> d{0xEE};
  ASSERT_TRUE(tx.send(1, std::span<const std::uint8_t>(d)));
  EXPECT_TRUE(tx.want_write());
  tx.script[50001] = ScriptedUdp::WireResult::kFatal;
  EXPECT_TRUE(tx.flush());  // queue drained (by dropping), nothing pending
  EXPECT_EQ(tx.stats().send_errors, 1u);
  EXPECT_FALSE(tx.want_write());
}

std::vector<std::vector<std::uint8_t>> faulted_udp_run(bool batched) {
  net::UdpTransport tx;
  net::UdpTransport rx;
  std::string err;
  EXPECT_TRUE(tx.open(0, &err)) << err;
  EXPECT_TRUE(rx.open(0, &err)) << err;
  tx.set_peer(1, rx.local_port());
  rx.set_peer(0, tx.local_port());
  tx.set_batching(batched);
  rx.set_batching(batched);

  sim::FaultConfig fcfg;
  fcfg.seed = 20260808;
  fcfg.drop_rate = 0.15;
  fcfg.dup_rate = 0.1;
  fcfg.delay_rate = 0.2;
  fcfg.max_delay = 3;
  net::FaultShim shim(&tx, fcfg, 0);

  ByteSink sink;
  std::size_t sent = 0;
  for (Round r = 0; r < 40; ++r) {
    shim.set_round(r);  // releases due held datagrams through tx
    for (int k = 0; k < 5; ++k) {
      std::vector<std::uint8_t> d(32 + (sent % 64));
      for (std::size_t j = 0; j < d.size(); ++j) {
        d[j] = static_cast<std::uint8_t>(sent * 17 + j);
      }
      ++sent;
      shim.send(1, std::span<const std::uint8_t>(d));
    }
    for (int tries = 0; !tx.flush() && tries < 2000; ++tries) {
    }
    rx.drain(sink);
  }
  shim.set_round(43);  // flush the tail of held datagrams
  for (int tries = 0; !tx.flush() && tries < 2000; ++tries) {
  }
  drain_expect(rx, sink, tx.stats().datagrams_sent);
  EXPECT_GT(shim.fault_total(), 0u);
  return sink.got;
}

TEST(UdpPath, FaultMixProducesIdenticalStreamsBatchedAndSingle) {
  // The seeded fault shim sits above the transport: its drop/dup/delay
  // decisions and the resulting byte stream must be identical whether the
  // wire below batches syscalls or not.
  const auto batched = faulted_udp_run(true);
  const auto single = faulted_udp_run(false);
  ASSERT_FALSE(batched.empty());
  EXPECT_EQ(batched, single);
}

// -- NodeRuntime clusters over real UDP sockets -------------------------------

/// Lockstep in-process cluster over real UDP loopback sockets: rounds are
/// advanced manually (flush all -> drain all -> advance all), which makes
/// protocol traffic deterministic and lets the batched and single-syscall
/// paths be compared event for event.
class UdpCluster {
 public:
  UdpCluster(std::size_t n, std::uint64_t seed, Round max_rounds, bool batched,
             const std::string& log_prefix) {
    transports_.reserve(n);
    for (ProcessId p = 0; p < n; ++p) {
      transports_.push_back(std::make_unique<net::UdpTransport>());
      std::string err;
      EXPECT_TRUE(transports_.back()->open(0, &err)) << err;
    }
    for (ProcessId p = 0; p < n; ++p) {
      transports_[p]->set_batching(batched);
      for (ProcessId q = 0; q < n; ++q) {
        if (q != p) transports_[p]->set_peer(q, transports_[q]->local_port());
      }
    }
    for (ProcessId p = 0; p < n; ++p) {
      net::NodeConfig cfg;
      cfg.id = p;
      cfg.n = n;
      cfg.seed = seed;
      cfg.max_rounds = max_rounds;
      cfg.congos.allow_degenerate = false;
      cfg.congos.retransmit.enabled = true;
      cfg.congos.retransmit.max_link_delay = 1;
      if (!log_prefix.empty()) {
        cfg.log_path = log_prefix + std::to_string(p) + ".log";
      }
      nodes_.push_back(
          std::make_unique<net::NodeRuntime>(cfg, transports_[p].get()));
      std::string err;
      EXPECT_TRUE(nodes_.back()->start(&err)) << err;
    }
  }

  net::NodeRuntime& node(ProcessId p) { return *nodes_[p]; }

  void run_rounds(Round count) {
    struct Feed final : net::DatagramSink {
      net::NodeRuntime* rt = nullptr;
      void on_datagram(ProcessId from,
                       std::span<const std::uint8_t> d) override {
        rt->handle_datagram(from, d);
      }
    };
    for (Round i = 0; i < count; ++i) {
      ++round_;
      // Strict phase order - flush every node, drain every node, only then
      // advance rounds. On the single-syscall path a send phase can hit the
      // wire immediately; draining all inboxes before any node advances
      // keeps the per-round traffic identical across both paths.
      for (auto& t : transports_) {
        for (int tries = 0; !t->flush() && tries < 2000; ++tries) {
        }
      }
      for (std::size_t p = 0; p < nodes_.size(); ++p) {
        Feed feed;
        feed.rt = nodes_[p].get();
        transports_[p]->drain(feed);
      }
      for (auto& n : nodes_) n->advance_to(round_);
    }
    for (auto& n : nodes_) n->flush_log();
  }

 private:
  std::vector<std::unique_ptr<net::UdpTransport>> transports_;
  std::vector<std::unique_ptr<net::NodeRuntime>> nodes_;
  Round round_ = 0;
};

std::vector<std::string> sorted_log_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(UdpCluster, BatchedAndSingleSyscallClustersProduceIdenticalTraffic) {
  const std::size_t n = 4;
  const Round kRounds = 32;
  const std::string dir = ::testing::TempDir();

  const auto run = [&](bool batched, const std::string& prefix) {
    UdpCluster cluster(n, 99, kRounds, batched, dir + prefix);
    DynamicBitset dest(n);
    dest.set(2);
    dest.set(3);
    cluster.run_rounds(1);
    cluster.node(0).inject(1, 24, dest, {0xCA, 0xFE});
    cluster.run_rounds(kRounds - 1);
    for (ProcessId p = 0; p < n; ++p) {
      EXPECT_TRUE(cluster.node(p).healthy()) << cluster.node(p).stats_json();
    }
    EXPECT_GE(cluster.node(2).deliveries(), 1u);
    EXPECT_GE(cluster.node(3).deliveries(), 1u);
    std::vector<std::uint64_t> fingerprint;
    for (ProcessId p = 0; p < n; ++p) {
      fingerprint.push_back(cluster.node(p).frames_received());
      fingerprint.push_back(cluster.node(p).deliveries());
      fingerprint.push_back(cluster.node(p).injections());
    }
    return fingerprint;
  };

  const auto batched = run(true, "udpc_b_");
  const auto single = run(false, "udpc_s_");
  EXPECT_EQ(batched, single);

  // Event-for-event: every node logged the same injections, deliveries and
  // received frames (sorted: arrival interleaving across senders within a
  // round differs between the paths, the traffic itself may not). A node
  // outside the rumor's path may legitimately log nothing - but the cluster
  // as a whole must have.
  std::size_t total_lines = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto b = sorted_log_lines(dir + "udpc_b_" + std::to_string(p) + ".log");
    const auto s = sorted_log_lines(dir + "udpc_s_" + std::to_string(p) + ".log");
    total_lines += b.size();
    EXPECT_EQ(b, s) << "node " << p << " saw different traffic";
  }
  EXPECT_GT(total_lines, 0u);
}

TEST(UdpCluster, CompressionStatsSurfaceInStatsJson) {
  net::SimLink link(2);
  net::NodeConfig cfg;
  cfg.id = 0;
  cfg.n = 2;
  cfg.max_rounds = 4;
  net::NodeRuntime rt(cfg, &link.endpoint(0));
  std::string err;
  ASSERT_TRUE(rt.start(&err)) << err;
  const std::string stats = rt.stats_json();
  EXPECT_NE(stats.find("\"datagrams_compressed\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_overflow\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"send_syscalls\""), std::string::npos) << stats;
}

TEST(NodeRuntime, MixedCompressedAndPlainNodesInteroperate) {
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  const std::size_t n = 8;
  const Round kRounds = 56;
  DynamicBitset compress_mask(n);
  for (ProcessId p = 0; p < n; p += 2) compress_mask.set(p);  // half compress
  SimCluster cluster(n, 42, kRounds, compress_mask);

  DynamicBitset dest(n);
  dest.set(3);
  dest.set(5);
  cluster.run_rounds(2);
  cluster.node(0).inject(1, 40, dest, {0x11, 0x22, 0x33});
  cluster.run_rounds(kRounds - 2);

  EXPECT_GE(cluster.node(3).deliveries(), 1u);
  EXPECT_GE(cluster.node(5).deliveries(), 1u);
  std::uint64_t compressed = 0;
  std::uint64_t received = 0;
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(cluster.node(p).healthy()) << cluster.node(p).stats_json();
    compressed += cluster.node(p).datagrams_compressed();
    received += cluster.node(p).compressed_received();
    EXPECT_EQ(cluster.node(p).unsupported_datagrams(), 0u);
  }
  // Compression actually engaged, and compressed datagrams were accepted.
  EXPECT_GT(compressed, 0u);
  EXPECT_GT(received, 0u);
}

TEST(NodeRuntime, CompressedRequestFailsCleanlyWithoutLz4) {
  if (wire::lz4_available()) {
    GTEST_SKIP() << "LZ4 present; the unavailable path cannot trigger";
  }
  net::SimLink link(2);
  net::NodeConfig cfg;
  cfg.id = 0;
  cfg.n = 2;
  cfg.compress = true;
  net::NodeRuntime rt(cfg, &link.endpoint(0));
  std::string err;
  EXPECT_FALSE(rt.start(&err));
  EXPECT_NE(err.find("LZ4"), std::string::npos) << err;
}

TEST(NodeRuntime, MalformedDatagramCountedNotFatal) {
  net::SimLink link(2);
  net::NodeConfig cfg;
  cfg.id = 0;
  cfg.n = 2;
  cfg.max_rounds = 8;
  net::NodeRuntime rt(cfg, &link.endpoint(0));
  std::string err;
  ASSERT_TRUE(rt.start(&err)) << err;
  const std::vector<std::uint8_t> garbage{0xFF, 0xFF, 0xFF, 0xFF};
  rt.handle_datagram(1, garbage);
  EXPECT_EQ(rt.malformed_datagrams(), 1u);
  EXPECT_FALSE(rt.healthy());
  rt.advance_to(8);  // still ticks to completion
  EXPECT_TRUE(rt.done());
}

}  // namespace
}  // namespace congos
