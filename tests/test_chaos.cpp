// Chaos grid (DESIGN.md section 10 acceptance): the QoD contract under link
// faults. With retransmission on and loss within the guaranteed envelope,
// delivery still meets every deadline across a seed grid; past the envelope
// the auditors *detect* the violations (never mask them) and the failing run
// dumps a .repro artifact that replays to the identical failure. The
// confidentiality auditor must hold in every fault configuration - faults
// may lose or duplicate fragments, never leak them.
#include <gtest/gtest.h>

#include <cstdio>

#include "audit/qod.h"
#include "harness/record.h"
#include "harness/scenario.h"
#include "replay/repro.h"

namespace congos {
namespace {

using harness::Protocol;
using harness::run_recorded;
using harness::run_scenario;
using harness::ScenarioConfig;
using harness::scenario_failed;

/// Small-but-real CONGOS scenario: big enough that every service (gossip,
/// proxy, group distribution, fallback) carries traffic, small enough that a
/// grid of them stays test-sized.
ScenarioConfig chaos_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.seed = seed;
  cfg.rounds = 128;
  cfg.protocol = Protocol::kCongos;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  return cfg;
}

/// At n=16 the tau >= n/log^2 n cutoff makes CONGOS degenerate (everything
/// ships on the direct path). This variant disables the cutoff so the full
/// four-service pipeline - gossip, proxy, group distribution, fallback -
/// actually runs under faults.
ScenarioConfig pipeline_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = seed;
  cfg.rounds = 160;
  cfg.protocol = Protocol::kCongos;
  cfg.congos.allow_degenerate = false;
  cfg.continuous.inject_prob = 0.01;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 5;
  cfg.continuous.deadlines = {64};
  return cfg;
}

// ---------------------------------------------------------------------------
// The delivery_guaranteed contract itself
// ---------------------------------------------------------------------------

TEST(DeliveryContract, ClassifiesFaultRegimes) {
  sim::FaultConfig f;
  core::RetransmitConfig rt;

  // Reliable network: guaranteed with or without retransmission.
  EXPECT_TRUE(audit::delivery_guaranteed(f, rt));

  // Any loss without retransmission voids the guarantee.
  f.drop_rate = 0.05;
  EXPECT_FALSE(audit::delivery_guaranteed(f, rt));

  // Loss within the threshold, retransmission on: guaranteed.
  rt.enabled = true;
  EXPECT_TRUE(audit::delivery_guaranteed(f, rt));

  // Loss above the threshold: not guaranteed even with retransmission.
  f.drop_rate = audit::kGuaranteedLossThreshold + 0.01;
  EXPECT_FALSE(audit::delivery_guaranteed(f, rt));
  f.drop_rate = audit::kGuaranteedLossThreshold;
  EXPECT_TRUE(audit::delivery_guaranteed(f, rt));

  // Partitions void the guarantee regardless of retransmission.
  f.partition_period = 16;
  f.partition_duration = 4;
  EXPECT_FALSE(audit::delivery_guaranteed(f, rt));
  f.partition_period = f.partition_duration = 0;

  // Delays are guaranteed only when the protocol's assumed link delay
  // covers the fault layer's actual maximum.
  f.delay_rate = 0.25;
  f.max_delay = 3;
  rt.max_link_delay = 2;
  EXPECT_FALSE(audit::delivery_guaranteed(f, rt));
  rt.max_link_delay = 3;
  EXPECT_TRUE(audit::delivery_guaranteed(f, rt));
}

// ---------------------------------------------------------------------------
// Guaranteed regime: loss within the envelope, retransmission on
// ---------------------------------------------------------------------------

TEST(ChaosGrid, DropWithinThresholdDeliversAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    ScenarioConfig cfg = chaos_config(seed);
    cfg.faults.drop_rate = 0.08;
    cfg.faults.seed = 0xfa071 + seed;
    cfg.congos.retransmit.enabled = true;
    cfg.congos.retransmit.budget = 3;
    ASSERT_TRUE(audit::delivery_guaranteed(cfg.faults, cfg.congos.retransmit));

    const auto r = run_scenario(cfg);
    EXPECT_GT(r.injected, 0u) << "seed " << seed;
    EXPECT_GT(r.fault_total, 0u) << "seed " << seed << ": no faults fired";
    EXPECT_TRUE(r.qod.ok()) << "seed " << seed << " late=" << r.qod.late
                            << " missing=" << r.qod.missing;
    EXPECT_EQ(r.leaks, 0u) << "seed " << seed;
    EXPECT_EQ(r.foreign_fragments, 0u) << "seed " << seed;
  }
}

TEST(ChaosGrid, PipelineDropWithinThresholdDelivers) {
  // Same regime, but through the full service pipeline: the ack-gated
  // GroupDistribution hitset, the proxy mid-iteration resend and the
  // deadline-aware fallback schedule are what keep QoD intact here.
  ScenarioConfig cfg = pipeline_config(14);
  cfg.faults.drop_rate = 0.08;
  cfg.congos.retransmit.enabled = true;
  cfg.congos.retransmit.budget = 3;
  ASSERT_TRUE(audit::delivery_guaranteed(cfg.faults, cfg.congos.retransmit));

  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_GT(r.fault_total, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
}

TEST(ChaosGrid, BoundedDelayWithMatchedLinkAssumptionDelivers) {
  ScenarioConfig cfg = chaos_config(21);
  cfg.faults.delay_rate = 0.15;
  cfg.faults.max_delay = 2;
  cfg.congos.retransmit.enabled = true;
  cfg.congos.retransmit.budget = 3;
  cfg.congos.retransmit.max_link_delay = 2;
  ASSERT_TRUE(audit::delivery_guaranteed(cfg.faults, cfg.congos.retransmit));

  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_GT(r.faults_by_kind[static_cast<std::size_t>(sim::FaultKind::kDelayed)], 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
}

// ---------------------------------------------------------------------------
// Past the envelope: violations are detected and reproducible, never masked
// ---------------------------------------------------------------------------

TEST(ChaosGrid, ExcessLossIsDetectedAndReproReplaysToSameFailure) {
  ScenarioConfig cfg = chaos_config(31);
  cfg.faults.drop_rate = 0.5;  // far past the guaranteed envelope
  EXPECT_FALSE(audit::delivery_guaranteed(cfg.faults, cfg.congos.retransmit));

  const auto rec = run_recorded(cfg, "chaos-excess-loss", "drop past threshold");
  EXPECT_TRUE(scenario_failed(rec.result))
      << "50% loss without retransmission must violate QoD, not be masked";
  EXPECT_GT(rec.result.qod.missing + rec.result.qod.late, 0u);
  EXPECT_EQ(rec.result.leaks, 0u) << "loss must never become a leak";

  // The artifact must survive a disk round-trip and replay byte-identically
  // to the same failure - that is what makes a chaos-grid hit debuggable.
  const std::string path = ::testing::TempDir() + "/chaos_excess_loss.repro";
  ASSERT_TRUE(replay::write_file(path, rec.repro));
  replay::ReproFile loaded;
  std::string err;
  ASSERT_TRUE(replay::read_file(path, &loaded, &err)) << err;
  EXPECT_EQ(loaded.config.faults, cfg.faults);
  EXPECT_EQ(loaded.qod_missing, rec.result.qod.missing);

  const auto report = harness::replay_file(loaded);
  EXPECT_TRUE(report.verified());
  EXPECT_EQ(report.result.qod.missing, rec.result.qod.missing);
  EXPECT_EQ(report.result.qod.late, rec.result.qod.late);
  EXPECT_TRUE(scenario_failed(report.result));
  std::remove(path.c_str());
}

TEST(ChaosGrid, PartitionOutageIsDetected) {
  // A partition long enough to swallow a whole deadline window must surface
  // as missing rumors (detected), with confidentiality intact.
  ScenarioConfig cfg = chaos_config(41);
  cfg.faults.partition_period = 64;
  cfg.faults.partition_duration = 48;
  cfg.congos.retransmit.enabled = true;  // retransmission must not mask it
  EXPECT_FALSE(audit::delivery_guaranteed(cfg.faults, cfg.congos.retransmit));

  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_GT(r.faults_by_kind[static_cast<std::size_t>(sim::FaultKind::kPartitioned)], 0u);
  EXPECT_FALSE(r.qod.ok()) << "a 48/64 partition cannot meet every deadline";
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
}

// ---------------------------------------------------------------------------
// Confidentiality under every fault mix (duplication may re-deliver a
// fragment; it must never widen who learns it)
// ---------------------------------------------------------------------------

TEST(ChaosGrid, ConfidentialityHoldsInEveryFaultConfig) {
  struct Mix {
    const char* name;
    sim::FaultConfig faults;
  };
  std::vector<Mix> mixes;
  {
    Mix m{"heavy-drop", {}};
    m.faults.drop_rate = 0.3;
    mixes.push_back(m);
  }
  {
    Mix m{"dup-and-delay", {}};
    m.faults.dup_rate = 0.2;
    m.faults.delay_rate = 0.25;
    m.faults.max_delay = 3;
    mixes.push_back(m);
  }
  {
    Mix m{"partition", {}};
    m.faults.partition_period = 16;
    m.faults.partition_duration = 4;
    mixes.push_back(m);
  }
  {
    Mix m{"kitchen-sink", {}};
    m.faults.drop_rate = 0.1;
    m.faults.dup_rate = 0.1;
    m.faults.delay_rate = 0.2;
    m.faults.max_delay = 2;
    m.faults.partition_period = 32;
    m.faults.partition_duration = 4;
    mixes.push_back(m);
  }
  for (const auto& mix : mixes) {
    for (const bool retransmit : {false, true}) {
      ScenarioConfig cfg = chaos_config(51);
      cfg.faults = mix.faults;
      cfg.congos.retransmit.enabled = retransmit;
      const auto r = run_scenario(cfg);
      EXPECT_GT(r.injected, 0u) << mix.name;
      EXPECT_EQ(r.leaks, 0u) << mix.name << " retransmit=" << retransmit;
      EXPECT_EQ(r.foreign_fragments, 0u)
          << mix.name << " retransmit=" << retransmit;
      // QoD deliberately unasserted: these mixes sit outside the guaranteed
      // envelope, and the auditor's job there is detection, not success.
    }
  }
}

TEST(ChaosGrid, CollusionToleranceSurvivesDupAndDelay) {
  // tau-collusion with duplication: the fault layer re-delivers fragments,
  // and a curious coalition of tau processes must still learn nothing
  // (Lemma 14). Duplicated fragments reach the same receiver twice, never a
  // new one, so the knowledge sets are unchanged.
  ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = 61;
  cfg.rounds = 192;
  cfg.protocol = Protocol::kCongos;
  cfg.congos.tau = 2;
  cfg.congos.allow_degenerate = false;
  cfg.continuous.inject_prob = 0.01;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 5;
  cfg.continuous.deadlines = {64};
  cfg.faults.dup_rate = 0.25;
  cfg.faults.delay_rate = 0.25;
  cfg.faults.max_delay = 3;
  cfg.congos.retransmit.enabled = true;
  cfg.congos.retransmit.max_link_delay = 3;

  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_GT(r.faults_by_kind[static_cast<std::size_t>(sim::FaultKind::kDuplicated)], 0u);
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
  EXPECT_GT(r.weakest_coalition, static_cast<std::size_t>(cfg.congos.tau));
}

// ---------------------------------------------------------------------------
// Gossip idempotence: duplicated rumors are absorbed, and counted
// ---------------------------------------------------------------------------

TEST(ChaosGrid, DuplicatesAreSuppressedByGidIdempotence) {
  // Needs the pipeline config: on the degenerate direct path no rumor ever
  // rides a gossip message, so there would be nothing to suppress.
  ScenarioConfig cfg = pipeline_config(71);
  cfg.faults.dup_rate = 0.3;
  cfg.faults.max_delay = 2;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.faults_by_kind[static_cast<std::size_t>(sim::FaultKind::kDuplicated)], 0u);
  EXPECT_GT(r.duplicates_suppressed, 0u)
      << "duplicated gossip must be absorbed by the gid index";
  EXPECT_EQ(r.leaks, 0u);
}

}  // namespace
}  // namespace congos
