// Snapshot & replay subsystem: codec round-trips, artifact rejection on
// corruption, recorded-run purity, byte-identical replay over a seed grid,
// sweep artifact dumping under the thread pool, and engine checkpoint
// rewind. DESIGN.md section 7 documents the contracts pinned here.
#include "harness/record.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "harness/sweep.h"
#include "replay/codec.h"
#include "replay/recorder.h"
#include "replay/repro.h"
#include "common/bitset.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace congos {
namespace {

using harness::Protocol;
using harness::ScenarioConfig;
using harness::ScenarioResult;
using replay::ByteReader;
using replay::ByteWriter;
using replay::Decision;
using replay::ReproFile;

// ---------------------------------------------------------------------------
// Codec primitives

TEST(Codec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.boolean(true);
  w.f64(3.25);
  w.str("hello");
  w.vec_u64({1, 2, 3});

  const auto bytes = w.take();
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, ReaderLatchesOnTruncation) {
  ByteWriter w;
  w.u64(7);
  const auto bytes = w.take();
  ByteReader r(bytes.data(), 3);  // not enough for a u64
  (void)r.u64();
  EXPECT_FALSE(r.ok());
  // Every subsequent read stays failed and returns zero values.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Codec, HashMatchesGoldenFold) {
  // fnv1a_u64 folded over values must equal byte-wise fnv1a over their
  // little-endian encoding (the golden-trace definition in test_golden.cpp).
  const std::uint64_t values[] = {0, 1, 0xFFFFFFFFFFFFFFFFull, 12345};
  std::uint64_t folded = replay::kFnvOffset;
  ByteWriter w;
  for (std::uint64_t v : values) {
    folded = replay::fnv1a_u64(folded, v);
    w.u64(v);
  }
  const auto bytes = w.take();
  EXPECT_EQ(folded, replay::fnv1a(bytes.data(), bytes.size()));
}

// ---------------------------------------------------------------------------
// ReproFile encode/decode

ReproFile sample_file() {
  ReproFile f;
  f.config.n = 24;
  f.config.seed = 99;
  f.config.rounds = 128;
  f.config.protocol = Protocol::kCongos;
  f.config.congos.tau = 2;
  f.config.congos.allow_degenerate = false;
  f.config.continuous.inject_prob = 0.03;
  f.config.continuous.dest_min = 2;
  f.config.continuous.dest_max = 5;
  f.config.continuous.deadlines = {48, 96};
  f.config.churn = adversary::RandomChurn::Options{};
  f.config.churn->crash_prob = 0.01;
  f.config.measure_from = 96;
  f.config.lazy_fraction = 0.125;
  f.config.faults.drop_rate = 0.05;
  f.config.faults.delay_rate = 0.25;
  f.config.faults.max_delay = 2;
  f.config.faults.seed = 31337;
  f.config.congos.retransmit.enabled = true;
  f.config.congos.retransmit.budget = 4;
  f.config.congos.retransmit.max_link_delay = 2;
  f.label = "unit";
  f.reason = "encode/decode round trip";
  f.decisions.push_back(
      {3, Decision::Kind::kCrash, 7, sim::PartialDelivery::kDropAll, {}, 0, 0});
  f.decisions.push_back({5, Decision::Kind::kInject, 2,
                         sim::PartialDelivery::kDeliverAll, RumorUid{2, 1}, 4,
                         48});
  f.round_deliveries = {0, 3, 9, 12};
  f.trace_hash = 0xFEEDFACE;
  f.total_messages = 1000;
  f.leaks = 1;
  f.faults_by_kind[0] = 17;
  f.faults_by_kind[2] = 4;
  f.duplicates_suppressed = 9;
  f.trace_tail = "round 3: crash p7\n";
  return f;
}

TEST(ReproFile, EncodeDecodeRoundTrip) {
  const ReproFile f = sample_file();
  const auto bytes = replay::encode(f);

  ReproFile g;
  std::string error;
  ASSERT_TRUE(replay::decode(bytes, &g, &error)) << error;

  EXPECT_EQ(g.config.n, f.config.n);
  EXPECT_EQ(g.config.seed, f.config.seed);
  EXPECT_EQ(g.config.rounds, f.config.rounds);
  EXPECT_EQ(g.config.protocol, f.config.protocol);
  EXPECT_EQ(g.config.congos.tau, f.config.congos.tau);
  EXPECT_EQ(g.config.congos.allow_degenerate, f.config.congos.allow_degenerate);
  EXPECT_EQ(g.config.continuous.inject_prob, f.config.continuous.inject_prob);
  EXPECT_EQ(g.config.continuous.deadlines, f.config.continuous.deadlines);
  ASSERT_TRUE(g.config.churn.has_value());
  EXPECT_EQ(g.config.churn->crash_prob, f.config.churn->crash_prob);
  EXPECT_EQ(g.config.measure_from, f.config.measure_from);
  EXPECT_EQ(g.config.lazy_fraction, f.config.lazy_fraction);
  EXPECT_EQ(g.label, f.label);
  EXPECT_EQ(g.reason, f.reason);
  EXPECT_EQ(g.decisions, f.decisions);
  EXPECT_EQ(g.round_deliveries, f.round_deliveries);
  EXPECT_EQ(g.trace_hash, f.trace_hash);
  EXPECT_EQ(g.total_messages, f.total_messages);
  EXPECT_EQ(g.leaks, f.leaks);
  EXPECT_EQ(g.config.faults, f.config.faults);
  EXPECT_EQ(g.config.congos.retransmit, f.config.congos.retransmit);
  for (std::size_t k = 0; k < sim::kNumFaultKinds; ++k) {
    EXPECT_EQ(g.faults_by_kind[k], f.faults_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(g.duplicates_suppressed, f.duplicates_suppressed);
  EXPECT_EQ(g.wire_codec_version, f.wire_codec_version);
  EXPECT_EQ(g.trace_tail, f.trace_tail);
}

TEST(ReproFile, AcceptsVersion1Artifacts) {
  // A byte-exact v1 artifact (written before the fault layer existed): the
  // v2 decoder must accept it, defaulting the fault plan to "off" and the
  // fault counters to zero. This pins the v1 wire layout - if decode's
  // backward-compatibility path regresses, this is the test that fires.
  ByteWriter w;
  w.u32(replay::kReproMagic);
  w.u32(1);  // version 1
  // config (v1 layout: everything up to min_drain, nothing after)
  w.u64(8);               // n
  w.u64(5);               // seed
  w.i64(32);              // rounds
  w.u8(0);                // protocol = kCongos
  w.u32(1);               // congos.tau
  w.f64(1.0);             // congos.partition_c
  w.f64(48.0);            // congos.fanout_exponent
  w.f64(1.0);             // congos.fanout_c
  w.u32(2);               // congos.gossip_fanout
  w.u8(0);                // congos.gossip_strategy
  w.i64(48);              // congos.direct_threshold
  w.i64(1024);            // congos.max_effective_deadline
  w.f64(2.0 / 3.0);       // congos.gd_alive_factor
  w.boolean(true);        // congos.allow_degenerate
  w.u64(7);               // congos.partition_seed
  w.u8(1);                // workload = kContinuous
  w.f64(0.02);            // continuous.inject_prob
  w.u64(2);               // continuous.dest_min
  w.u64(8);               // continuous.dest_max
  w.vec_i64({64});        // continuous.deadlines
  w.u64(16);              // continuous.payload_len
  w.i64(-1);              // continuous.last_injection_round
  w.boolean(false);       // continuous.opaque_ids
  w.f64(4.0);             // theorem1.x
  w.i64(64);              // theorem1.dmax
  w.u64(16);              // theorem1.payload_len
  w.boolean(false);       // no churn
  w.boolean(false);       // no crash_on_service
  w.boolean(false);       // no crash_senders
  w.i64(0);               // measure_from
  w.f64(0.0);             // lazy_fraction
  w.u32(3);               // baseline_fanout
  w.boolean(true);        // audit_confidentiality
  w.i64(0);               // min_drain
  // trailer (v1 layout: no fault counters)
  w.str("v1-artifact");
  w.str("compat pin");
  w.u64(0);               // decisions
  w.vec_u64({1, 2, 3});   // round_deliveries
  w.u64(0xABCD);          // trace_hash
  w.u64(10);              // total_messages
  w.u64(100);             // total_bytes
  w.u64(1);               // injected
  w.u64(0);               // crashes
  w.u64(0);               // restarts
  w.u64(0);               // leaks
  w.u64(0);               // foreign_fragments
  w.u64(1);               // qod_delivered_on_time
  w.u64(0);               // qod_late
  w.u64(0);               // qod_missing
  w.u64(0);               // qod_data_mismatches
  w.str("");              // trace_tail
  auto bytes = w.take();
  const std::uint64_t sum = replay::fnv1a(bytes.data(), bytes.size());
  for (int b = 0; b < 8; ++b) {
    bytes.push_back(static_cast<std::uint8_t>(sum >> (8 * b)));
  }

  ReproFile out;
  std::string error;
  ASSERT_TRUE(replay::decode(bytes, &out, &error)) << error;
  EXPECT_EQ(out.config.n, 8u);
  EXPECT_EQ(out.config.rounds, 32);
  EXPECT_EQ(out.label, "v1-artifact");
  EXPECT_EQ(out.round_deliveries, (std::vector<std::uint64_t>{1, 2, 3}));
  // The v2 fields default to "fault layer off, nothing counted".
  EXPECT_FALSE(out.config.faults.enabled());
  EXPECT_EQ(out.config.faults, sim::FaultConfig{});
  EXPECT_FALSE(out.config.congos.retransmit.enabled);
  for (std::size_t k = 0; k < sim::kNumFaultKinds; ++k) {
    EXPECT_EQ(out.faults_by_kind[k], 0u);
  }
  EXPECT_EQ(out.duplicates_suppressed, 0u);
  // ...and the v3 field to "pre-codec".
  EXPECT_EQ(out.wire_codec_version, 0u);
}

TEST(ReproFile, RejectsCorruptionEverywhere) {
  const auto bytes = replay::encode(sample_file());
  // Flip one bit at a spread of positions; decode must fail every time
  // (magic, checksum or a bounds check catches it).
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    auto copy = bytes;
    copy[pos] ^= 0x10;
    ReproFile out;
    EXPECT_FALSE(replay::decode(copy, &out))
        << "bit flip at byte " << pos << " was accepted";
  }
}

TEST(ReproFile, RejectsTruncation) {
  const auto bytes = replay::encode(sample_file());
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{15},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> copy(bytes.begin(), bytes.begin() + len);
    ReproFile out;
    std::string error;
    EXPECT_FALSE(replay::decode(copy, &out, &error))
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(ReproFile, RejectsBadMagicAndVersion) {
  auto bytes = replay::encode(sample_file());
  {
    auto copy = bytes;
    copy[0] ^= 0xFF;
    ReproFile out;
    std::string error;
    EXPECT_FALSE(replay::decode(copy, &out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
  }
  {
    // Bump the version and re-stamp the trailing checksum so only the
    // version check can reject it.
    auto copy = bytes;
    copy[4] += 1;
    const std::size_t body = copy.size() - 8;
    const std::uint64_t sum = replay::fnv1a(copy.data(), body);
    for (int b = 0; b < 8; ++b) {
      copy[body + b] = static_cast<std::uint8_t>(sum >> (8 * b));
    }
    ReproFile out;
    std::string error;
    EXPECT_FALSE(replay::decode(copy, &out, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
}

TEST(ReproFile, Recordability) {
  ScenarioConfig cfg;
  std::string why;
  EXPECT_TRUE(replay::is_recordable(cfg, &why)) << why;

  ScenarioConfig with_gen = cfg;
  with_gen.continuous.dest_gen = [](sim::Engine&, ProcessId) {
    return DynamicBitset(4);
  };
  EXPECT_FALSE(replay::is_recordable(with_gen, &why));

  adversary::OneShot extra({});
  ScenarioConfig with_adv = cfg;
  with_adv.extra_adversaries.push_back(&extra);
  EXPECT_FALSE(replay::is_recordable(with_adv));

  // Observers are passive: they never block recording.
  sim::TraceLog trace;
  ScenarioConfig with_obs = cfg;
  with_obs.extra_observers.push_back(&trace);
  EXPECT_TRUE(replay::is_recordable(with_obs, &why)) << why;
}

// ---------------------------------------------------------------------------
// Recorded runs and replay

ScenarioConfig small_config(std::uint64_t seed, Protocol proto) {
  ScenarioConfig cfg;
  cfg.protocol = proto;
  cfg.n = 16;
  cfg.seed = seed;
  cfg.rounds = 64;
  cfg.continuous.inject_prob = 0.05;
  cfg.continuous.deadlines = {32};
  cfg.churn = adversary::RandomChurn::Options{};
  cfg.churn->crash_prob = 0.01;
  cfg.churn->restart_prob = 0.05;
  cfg.churn->min_alive = 4;
  return cfg;
}

TEST(RecordedRun, ObserversArePassive) {
  const ScenarioConfig cfg = small_config(7, Protocol::kCongos);
  const ScenarioResult plain = harness::run_scenario(cfg);
  const auto recorded = harness::run_recorded(cfg, "test", "passivity");

  EXPECT_EQ(plain.total_messages, recorded.result.total_messages);
  EXPECT_EQ(plain.total_bytes, recorded.result.total_bytes);
  EXPECT_EQ(plain.injected, recorded.result.injected);
  EXPECT_EQ(plain.crashes, recorded.result.crashes);
  EXPECT_EQ(plain.qod.delivered_on_time, recorded.result.qod.delivered_on_time);
  EXPECT_EQ(plain.leaks, recorded.result.leaks);
  EXPECT_FALSE(recorded.repro.trace_tail.empty());
}

// The headline property: write -> read -> re-run reproduces the identical
// ScenarioResult and the identical golden trace hash, across a seed grid and
// across protocols.
TEST(Replay, ByteIdenticalAcrossSeedGrid) {
  for (Protocol proto : {Protocol::kCongos, Protocol::kPlainGossip}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 20260805ull}) {
      SCOPED_TRACE(std::string(harness::to_string(proto)) + " seed " +
                   std::to_string(seed));
      const ScenarioConfig cfg = small_config(seed, proto);
      const auto recorded = harness::run_recorded(cfg, "grid", "property test");

      // Through the full serialization path, not just in-memory.
      const auto bytes = replay::encode(recorded.repro);
      ReproFile loaded;
      std::string error;
      ASSERT_TRUE(replay::decode(bytes, &loaded, &error)) << error;

      const harness::ReplayReport report = harness::replay_file(loaded);
      EXPECT_TRUE(report.complete);
      EXPECT_TRUE(report.verified());
      EXPECT_EQ(report.trace_hash, recorded.repro.trace_hash);
      EXPECT_EQ(report.result.total_messages, recorded.result.total_messages);
      EXPECT_EQ(report.result.total_bytes, recorded.result.total_bytes);
      EXPECT_EQ(report.result.injected, recorded.result.injected);
      EXPECT_EQ(report.result.crashes, recorded.result.crashes);
      EXPECT_EQ(report.result.restarts, recorded.result.restarts);
      EXPECT_EQ(report.result.leaks, recorded.result.leaks);
      EXPECT_EQ(report.result.qod.delivered_on_time,
                recorded.result.qod.delivered_on_time);
      EXPECT_EQ(report.result.qod.missing, recorded.result.qod.missing);
    }
  }
}

TEST(Replay, PrefixReplayVerifiesPrefix) {
  const ScenarioConfig cfg = small_config(11, Protocol::kCongos);
  const auto recorded = harness::run_recorded(cfg);

  harness::ReplayOptions opt;
  opt.until_round = 24;
  const auto report = harness::replay_file(recorded.repro, opt);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.executed_rounds, 24);
  EXPECT_TRUE(report.counts_match);
  EXPECT_TRUE(report.decisions_match);
  EXPECT_TRUE(report.verified());
}

TEST(Replay, DetectsTamperedObservations) {
  const ScenarioConfig cfg = small_config(13, Protocol::kCongos);
  auto recorded = harness::run_recorded(cfg);

  // Tamper with a mid-run count: the replay itself still executes fine but
  // verification must pinpoint the divergence.
  ASSERT_GT(recorded.repro.round_deliveries.size(), 10u);
  recorded.repro.round_deliveries[10] += 1;
  recorded.repro.trace_hash ^= 1;  // keep hash_match from masking the count
  const auto report = harness::replay_file(recorded.repro);
  EXPECT_FALSE(report.verified());
  EXPECT_FALSE(report.counts_match);
  EXPECT_EQ(report.first_count_divergence, 10);
}

TEST(Replay, FileRoundTripThroughDisk) {
  const ScenarioConfig cfg = small_config(17, Protocol::kCongos);
  const auto recorded = harness::run_recorded(cfg, "disk", "io round trip");

  const std::string path = ::testing::TempDir() + "/replay_io_test.repro";
  ASSERT_TRUE(replay::write_file(path, recorded.repro));
  ReproFile loaded;
  std::string error;
  ASSERT_TRUE(replay::read_file(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.trace_hash, recorded.repro.trace_hash);
  EXPECT_EQ(loaded.decisions, recorded.repro.decisions);
  std::remove(path.c_str());

  EXPECT_FALSE(replay::read_file(path + ".missing", &loaded, &error));
}

// ---------------------------------------------------------------------------
// Sweep artifact dumping

TEST(SweepArtifacts, FailingScenarioEmitsLoadableRepro) {
  // Plain gossip floods rumors to non-destinations, so the confidentiality
  // auditor always flags it: every grid entry fails and dumps an artifact.
  std::vector<ScenarioConfig> grid;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    grid.push_back(small_config(seed, Protocol::kPlainGossip));
  }
  // And one healthy scenario that must NOT produce an artifact.
  grid.push_back(small_config(4, Protocol::kCongos));

  const std::string dir = ::testing::TempDir() + "/repro_artifacts";
  harness::SweepRunner::Options opts;
  opts.threads = 2;  // exercise the pooled path
  opts.progress = false;
  opts.label = "leaktest";
  opts.artifact_dir = dir.c_str();
  harness::SweepRunner runner(opts);

  const auto results = runner.run(grid);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(harness::scenario_failed(results[i])) << "grid entry " << i;
  }
  EXPECT_FALSE(harness::scenario_failed(results[3]));
  ASSERT_EQ(runner.artifacts().size(), 3u);

  // Every artifact loads and replays verified.
  for (const std::string& path : runner.artifacts()) {
    SCOPED_TRACE(path);
    ReproFile loaded;
    std::string error;
    ASSERT_TRUE(replay::read_file(path, &loaded, &error)) << error;
    EXPECT_EQ(loaded.label, "leaktest");
    EXPECT_GT(loaded.leaks, 0u);
    const auto report = harness::replay_file(loaded);
    EXPECT_TRUE(report.verified());
    EXPECT_EQ(report.result.leaks, loaded.leaks);
    std::remove(path.c_str());
  }
}

TEST(SweepArtifacts, EmptyDirDisablesDumping) {
  std::vector<ScenarioConfig> grid = {small_config(1, Protocol::kPlainGossip)};
  harness::SweepRunner::Options opts;
  opts.progress = false;
  opts.artifact_dir = "";  // explicit off, regardless of CONGOS_REPRO_DIR
  harness::SweepRunner runner(opts);
  const auto results = runner.run(grid);
  EXPECT_TRUE(harness::scenario_failed(results[0]));
  EXPECT_TRUE(runner.artifacts().empty());
}

// ---------------------------------------------------------------------------
// Engine checkpoints

TEST(Checkpoint, RewindReproducesTheTail) {
  const ScenarioConfig cfg = small_config(23, Protocol::kCongos);
  harness::ScenarioRun run(cfg);
  const Round mid = run.total_rounds() / 2;
  run.run_until(mid);

  sim::Engine& eng = run.engine();
  const sim::EngineCheckpoint cp = eng.save_checkpoint();
  ASSERT_TRUE(cp.complete);
  EXPECT_EQ(cp.now, mid);

  replay::DecisionRecorder first;
  eng.add_observer(&first);
  run.run_all();
  ASSERT_TRUE(run.finished());
  const std::vector<std::uint64_t> tail = first.round_deliveries();
  const auto decisions = first.decisions();

  ASSERT_TRUE(eng.restore_checkpoint(cp));
  EXPECT_EQ(eng.now(), mid);
  EXPECT_FALSE(run.finished());

  replay::DecisionRecorder second;
  eng.add_observer(&second);
  run.run_all();
  EXPECT_EQ(second.round_deliveries(), tail);
  EXPECT_EQ(second.decisions(), decisions);
}

TEST(Checkpoint, RestoreCanRepeat) {
  // A checkpoint is not consumed by restore: rewinding twice replays the
  // same tail both times.
  const ScenarioConfig cfg = small_config(29, Protocol::kCongos);
  harness::ScenarioRun run(cfg);
  run.run_until(20);
  sim::Engine& eng = run.engine();
  const sim::EngineCheckpoint cp = eng.save_checkpoint();
  ASSERT_TRUE(cp.complete);

  // One recorder stays attached across both rewinds (observers cannot be
  // detached), so its count stream is the first tail followed by the second.
  replay::DecisionRecorder rec;
  eng.add_observer(&rec);
  run.run_until(40);
  const std::vector<std::uint64_t> tail0 = rec.round_deliveries();
  ASSERT_EQ(tail0.size(), 20u);

  ASSERT_TRUE(eng.restore_checkpoint(cp));
  run.run_until(40);
  const auto& all = rec.round_deliveries();
  ASSERT_EQ(all.size(), 40u);
  const std::vector<std::uint64_t> tail1(all.begin() + 20, all.end());
  EXPECT_EQ(tail0, tail1);
}

TEST(Checkpoint, RewindUnderFaultsReproducesTheTail) {
  // Regression for the restore_sent_total bug: a checkpoint must rewind ALL
  // round-boundary network state - under faults that includes the in-flight
  // delayed queue and the dedicated fault Rng. If either is missed, the tail
  // after a rewind delivers a different envelope stream.
  ScenarioConfig cfg = small_config(37, Protocol::kCongos);
  cfg.faults.drop_rate = 0.1;
  cfg.faults.dup_rate = 0.1;
  cfg.faults.delay_rate = 0.2;
  cfg.faults.max_delay = 2;
  cfg.congos.retransmit.enabled = true;
  cfg.congos.retransmit.max_link_delay = 2;

  harness::ScenarioRun run(cfg);
  const Round mid = run.total_rounds() / 2;
  run.run_until(mid);

  sim::Engine& eng = run.engine();
  ASSERT_TRUE(eng.network().faults_enabled());
  const sim::EngineCheckpoint cp = eng.save_checkpoint();
  ASSERT_TRUE(cp.complete);

  replay::DecisionRecorder first;
  eng.add_observer(&first);
  run.run_all();
  const std::vector<std::uint64_t> tail = first.round_deliveries();
  const std::uint64_t faults_after =
      eng.stats().fault_total();

  ASSERT_TRUE(eng.restore_checkpoint(cp));
  EXPECT_EQ(eng.now(), mid);
  EXPECT_EQ(eng.network().in_flight_delayed(), cp.network.delayed.size());

  replay::DecisionRecorder second;
  eng.add_observer(&second);
  run.run_all();
  EXPECT_EQ(second.round_deliveries(), tail)
      << "delayed queue or fault Rng not rewound";
  EXPECT_EQ(eng.stats().fault_total(), faults_after)
      << "fault counters not rewound with the stats checkpoint";
  EXPECT_GT(faults_after, 0u);
}

/// A process without snapshot support: checkpoints of engines containing it
/// are incomplete and must refuse to restore.
class NoSnapshotProcess final : public sim::Process {
 public:
  using sim::Process::Process;
  void on_restart(Round) override {}
  void send_phase(Round, sim::Sender&) override {}
  void receive_phase(Round, std::span<const sim::Envelope>) override {}
};

TEST(Checkpoint, IncompleteCheckpointRefusesRestore) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < 4; ++p) {
    procs.push_back(std::make_unique<NoSnapshotProcess>(p));
  }
  sim::Engine eng(std::move(procs), 1);
  eng.run(3);
  const sim::EngineCheckpoint cp = eng.save_checkpoint();
  EXPECT_FALSE(cp.complete);
  EXPECT_FALSE(eng.restore_checkpoint(cp));
  EXPECT_EQ(eng.now(), 3);  // left untouched
}

}  // namespace
}  // namespace congos
