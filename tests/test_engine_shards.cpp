// Shard-count equivalence suite (DESIGN.md section 12): the sharded round
// engine is a wall-clock knob, never a behaviour knob. Every test here runs
// the same scenario at engine_threads 1/2/4/8 and requires byte-identical
// observations — golden trace hashes, per-round delivery counts, adversary
// decision traces, .repro replay verification and checkpoint rewind — under
// clean runs, churn, and the PR 5 link-fault mixes (drop/dup/delay/
// partition x retransmission).
//
// The CI TSan job runs this binary too: a data race between shard workers
// would show up here even if it happened not to perturb a trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/record.h"
#include "harness/scenario.h"
#include "replay/codec.h"
#include "replay/recorder.h"
#include "replay/repro.h"
#include "sim/engine.h"

namespace congos {
namespace {

using harness::Protocol;
using harness::ScenarioConfig;
using harness::ScenarioResult;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

/// Per-round delivered-envelope counts (same observer as test_golden_grid:
/// hashing the vector pins ordering and per-round volume, not aggregates).
class RoundTrace final : public sim::ExecutionObserver {
 public:
  void on_envelope_delivered(const sim::Envelope&, Round) override { ++current_; }
  void on_round_end(Round) override {
    counts_.push_back(current_);
    current_ = 0;
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::uint64_t current_ = 0;
  std::vector<std::uint64_t> counts_;
};

std::uint64_t fnv1a(const std::vector<std::uint64_t>& counts) {
  std::uint64_t h = 1469598103934665603ull;
  for (auto c : counts) {
    for (int b = 0; b < 8; ++b) {
      h ^= (c >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Golden pins: the sharded engine must reproduce the exact constants pinned
// by test_golden_grid for the serial engine. Any drift at any thread count
// means sharding changed protocol behaviour, which is a bug by definition.

TEST(ShardEquivalence, GoldenCongosPinAtEveryThreadCount) {
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    ScenarioConfig cfg;
    cfg.n = 32;
    cfg.seed = 7101;
    cfg.rounds = 96;
    cfg.protocol = Protocol::kCongos;
    cfg.congos.gossip_strategy = gossip::GossipStrategy::kEpidemicPush;
    cfg.continuous.inject_prob = 0.02;
    cfg.continuous.deadlines = {48};
    cfg.engine_threads = threads;
    RoundTrace trace;
    cfg.extra_observers.push_back(&trace);
    const ScenarioResult r = harness::run_scenario(cfg);
    // The pins from test_golden_grid's CongosEpidemicPushSeedA.
    EXPECT_EQ(fnv1a(trace.counts()), 11296553228243308885ull);
    EXPECT_EQ(r.total_messages, 108233u);
    EXPECT_EQ(r.total_bytes, 170285414u);
    EXPECT_EQ(r.leaks, 0u);
  }
}

TEST(ShardEquivalence, GoldenPlainGossipPinAtEveryThreadCount) {
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    ScenarioConfig cfg;
    cfg.n = 64;
    cfg.seed = 7105;
    cfg.rounds = 96;
    cfg.protocol = Protocol::kPlainGossip;
    cfg.continuous.inject_prob = 0.02;
    cfg.continuous.deadlines = {32};
    cfg.engine_threads = threads;
    RoundTrace trace;
    cfg.extra_observers.push_back(&trace);
    const ScenarioResult r = harness::run_scenario(cfg);
    // The pins from test_golden_grid's PlainGossip.
    EXPECT_EQ(fnv1a(trace.counts()), 1631052094024548409ull);
    EXPECT_EQ(r.total_messages, 24322u);
    EXPECT_EQ(r.total_bytes, 33641671u);
  }
}

// ---------------------------------------------------------------------------
// Fault mixes: the PR 5 chaos dimensions, with churn on top. Each mix is
// recorded serially, then re-recorded at 2/4/8 engine threads; the full
// observation set (trace hash, per-round counts, decision trace) and the
// audited result must match field for field.

struct FaultMix {
  const char* label;
  sim::FaultConfig faults;
};

std::vector<FaultMix> fault_mixes() {
  std::vector<FaultMix> mixes;
  {
    FaultMix m{"drop", {}};
    m.faults.drop_rate = 0.3;
    mixes.push_back(m);
  }
  {
    FaultMix m{"dup+delay", {}};
    m.faults.dup_rate = 0.2;
    m.faults.delay_rate = 0.25;
    m.faults.max_delay = 3;
    mixes.push_back(m);
  }
  {
    FaultMix m{"partition", {}};
    m.faults.partition_period = 16;
    m.faults.partition_duration = 4;
    mixes.push_back(m);
  }
  {
    FaultMix m{"all", {}};
    m.faults.drop_rate = 0.1;
    m.faults.dup_rate = 0.1;
    m.faults.delay_rate = 0.2;
    m.faults.max_delay = 2;
    m.faults.partition_period = 32;
    m.faults.partition_duration = 4;
    mixes.push_back(m);
  }
  return mixes;
}

ScenarioConfig faulted_config(const FaultMix& mix, std::size_t threads) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kCongos;
  cfg.n = 16;
  cfg.seed = 4242;
  cfg.rounds = 64;
  cfg.continuous.inject_prob = 0.05;
  cfg.continuous.deadlines = {32};
  cfg.churn = adversary::RandomChurn::Options{};
  cfg.churn->crash_prob = 0.01;
  cfg.churn->restart_prob = 0.05;
  cfg.churn->min_alive = 4;
  cfg.faults = mix.faults;
  cfg.congos.retransmit.enabled = true;
  cfg.congos.retransmit.budget = 3;
  cfg.congos.retransmit.max_link_delay = cfg.faults.max_delay;
  cfg.engine_threads = threads;
  return cfg;
}

TEST(ShardEquivalence, FaultMixesByteIdentical) {
  for (const FaultMix& mix : fault_mixes()) {
    const auto serial = harness::run_recorded(faulted_config(mix, 1), "shards",
                                              "serial reference");
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      SCOPED_TRACE(std::string(mix.label) + " engine_threads=" +
                   std::to_string(threads));
      const auto sharded = harness::run_recorded(faulted_config(mix, threads),
                                                 "shards", "sharded run");
      EXPECT_EQ(sharded.repro.trace_hash, serial.repro.trace_hash);
      EXPECT_EQ(sharded.repro.round_deliveries, serial.repro.round_deliveries);
      EXPECT_EQ(sharded.repro.decisions, serial.repro.decisions);
      EXPECT_EQ(sharded.result.total_messages, serial.result.total_messages);
      EXPECT_EQ(sharded.result.total_bytes, serial.result.total_bytes);
      EXPECT_EQ(sharded.result.injected, serial.result.injected);
      EXPECT_EQ(sharded.result.crashes, serial.result.crashes);
      EXPECT_EQ(sharded.result.restarts, serial.result.restarts);
      EXPECT_EQ(sharded.result.fault_total, serial.result.fault_total);
      for (std::size_t k = 0; k < sim::kNumFaultKinds; ++k) {
        EXPECT_EQ(sharded.result.faults_by_kind[k],
                  serial.result.faults_by_kind[k])
            << "fault kind " << k;
      }
      EXPECT_EQ(sharded.result.leaks, serial.result.leaks);
      EXPECT_EQ(sharded.result.qod.delivered_on_time,
                serial.result.qod.delivered_on_time);
      EXPECT_EQ(sharded.result.qod.late, serial.result.qod.late);
      EXPECT_EQ(sharded.result.qod.missing, serial.result.qod.missing);
    }
  }
}

// ---------------------------------------------------------------------------
// Replay: engine_threads is deliberately NOT serialized into a .repro, so a
// run recorded under sharding replays under whatever thread count the
// replaying host defaults to (serial under plain ctest). verified() passing
// here IS the byte-identity proof across the record/replay thread gap.

TEST(ShardEquivalence, ShardedRecordingReplaysVerified) {
  ScenarioConfig cfg = faulted_config(fault_mixes()[3], /*threads=*/4);
  const auto recorded = harness::run_recorded(cfg, "shards", "replay gap");

  // Through the full serialization path, not just in-memory.
  const auto bytes = replay::encode(recorded.repro);
  replay::ReproFile loaded;
  std::string error;
  ASSERT_TRUE(replay::decode(bytes, &loaded, &error)) << error;
  EXPECT_EQ(loaded.config.engine_threads, 0u)
      << "engine_threads must not survive serialization";

  const harness::ReplayReport report = harness::replay_file(loaded);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.verified());
  EXPECT_EQ(report.trace_hash, recorded.repro.trace_hash);
  EXPECT_EQ(report.result.total_messages, recorded.result.total_messages);
  EXPECT_EQ(report.result.fault_total, recorded.result.fault_total);
}

// ---------------------------------------------------------------------------
// Checkpoint rewind under sharding + faults: the rewound tail must equal the
// first tail even though both tails execute on shard workers, and it must
// also equal the tail a serial engine produces from the same checkpoint
// round (cross-checked via the serial recording above the fault Rng state).

TEST(ShardEquivalence, CheckpointRewindShardedUnderFaults) {
  ScenarioConfig cfg = faulted_config(fault_mixes()[1], /*threads=*/4);
  harness::ScenarioRun run(cfg);
  const Round mid = run.total_rounds() / 2;
  run.run_until(mid);

  sim::Engine& eng = run.engine();
  ASSERT_TRUE(eng.network().faults_enabled());
  const sim::EngineCheckpoint cp = eng.save_checkpoint();
  ASSERT_TRUE(cp.complete);
  EXPECT_EQ(cp.now, mid);

  replay::DecisionRecorder first;
  eng.add_observer(&first);
  run.run_all();
  ASSERT_TRUE(run.finished());
  const std::vector<std::uint64_t> tail = first.round_deliveries();
  const auto decisions = first.decisions();

  ASSERT_TRUE(eng.restore_checkpoint(cp));
  EXPECT_EQ(eng.now(), mid);

  replay::DecisionRecorder second;
  eng.add_observer(&second);
  run.run_all();
  EXPECT_EQ(second.round_deliveries(), tail);
  EXPECT_EQ(second.decisions(), decisions);
}

// Dead-process bookkeeping after a rewind: restore_checkpoint re-derives the
// alive id list and the drop-all inbound policy from the bitset. A crash
// right after the rewind exercises the incremental alive_ids_ erase against
// the rebuilt list at every thread count.

TEST(ShardEquivalence, CrashAfterRewindStaysConsistent) {
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    ScenarioConfig cfg = faulted_config(fault_mixes()[0], threads);
    harness::ScenarioRun run(cfg);
    run.run_until(16);
    sim::Engine& eng = run.engine();
    const sim::EngineCheckpoint cp = eng.save_checkpoint();
    ASSERT_TRUE(cp.complete);
    run.run_until(24);
    ASSERT_TRUE(eng.restore_checkpoint(cp));

    // Crash the first alive process, step, restart it, and finish: nothing
    // to pin here beyond "the invariants hold" — the CONGOS_ASSERTs inside
    // Engine fire on any alive-set / filter-policy divergence. The churn
    // adversary may beat us to the restart, so re-check liveness first.
    ASSERT_FALSE(eng.alive_ids().empty());
    const ProcessId victim = eng.alive_ids().front();
    eng.crash(victim);
    EXPECT_FALSE(eng.alive(victim));
    eng.step();
    if (!eng.alive(victim)) eng.restart(victim);
    EXPECT_TRUE(eng.alive(victim));
    run.run_all();
    EXPECT_TRUE(run.finished());
  }
}

}  // namespace
}  // namespace congos
