#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace congos {
namespace {

using harness::Protocol;
using harness::run_scenario;
using harness::ScenarioConfig;
using harness::WorkloadKind;

ScenarioConfig workload_config(Protocol proto, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = seed;
  cfg.protocol = proto;
  cfg.rounds = 256;
  cfg.workload = WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 8;
  cfg.continuous.deadlines = {64};
  return cfg;
}

TEST(DirectSend, DeliversEverythingImmediately) {
  const auto r = run_scenario(workload_config(Protocol::kDirect, 10));
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_NEAR(r.qod.mean_latency, 0.0, 1e-9);  // same-round delivery
}

TEST(DirectSendPaced, DeliversWithinDeadline) {
  const auto r = run_scenario(workload_config(Protocol::kDirectPaced, 11));
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
}

TEST(DirectSendPaced, LowersPeakPerRound) {
  // Pacing spreads a burst of big destination sets across the deadline.
  auto burst = workload_config(Protocol::kDirect, 12);
  burst.workload = WorkloadKind::kTheorem1;
  burst.theorem1.x = 16.0;
  burst.theorem1.dmax = 64;
  burst.rounds = 80;
  const auto direct = run_scenario(burst);

  burst.protocol = Protocol::kDirectPaced;
  const auto paced = run_scenario(burst);

  EXPECT_TRUE(direct.qod.ok());
  EXPECT_TRUE(paced.qod.ok());
  EXPECT_LT(paced.max_per_round, direct.max_per_round);
}

TEST(StrongConfidential, ConfidentialAndOnTime) {
  const auto r = run_scenario(workload_config(Protocol::kStrongConfidential, 13));
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  // Strong confidentiality implies Definition-2 confidentiality.
  EXPECT_EQ(r.leaks, 0u);
}

TEST(StrongConfidential, SurvivesChurn) {
  auto cfg = workload_config(Protocol::kStrongConfidential, 14);
  cfg.churn = adversary::RandomChurn::Options{};
  cfg.churn->crash_prob = 0.005;
  cfg.churn->restart_prob = 0.1;
  cfg.churn->min_alive = 4;
  const auto r = run_scenario(cfg);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
}

TEST(PlainGossip, DeliversButLeaks) {
  const auto r = run_scenario(workload_config(Protocol::kPlainGossip, 15));
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok());
  // The paper's motivating failure: epidemic relaying hands rumors to
  // processes outside the destination set.
  EXPECT_GT(r.leaks, 0u);
}

TEST(Comparison, CongosLeaksNothingWherePlainGossipLeaks) {
  const auto plain = run_scenario(workload_config(Protocol::kPlainGossip, 16));
  const auto congos = run_scenario(workload_config(Protocol::kCongos, 16));
  EXPECT_GT(plain.leaks, 0u);
  EXPECT_EQ(congos.leaks, 0u);
  EXPECT_TRUE(plain.qod.ok());
  EXPECT_TRUE(congos.qod.ok());
}

}  // namespace
}  // namespace congos
