// Byte-accounting audit (Section 7 discussion + ROADMAP item 3): every
// payload reports TWO serialized sizes — encoded_size(), the actual bytes
// the wire codec emits, and modeled_size(), the legacy fixed-width model —
// and the stats collector aggregates actual bytes per round.
//
// The audit test at the top is the cross-check the wire-codec PR demanded:
// it enumerates every payload kind and pins encoded_size() to the length
// encode_payload() really produces, so a hand-maintained estimate can never
// silently disagree with the serializer again. (That check is what exposed
// the old bugs fixed in this PR: sim::Rumor's estimate ignored injected_at,
// Fragment counted the group-count field at the wrong width against a
// comment saying otherwise, and StrongAckPayload had no override at all —
// every ack billed 8 bytes no matter how many uids it carried.)
#include <gtest/gtest.h>

#include "baseline/baseline_payload.h"
#include "congos/fragment.h"
#include "gossip/continuous_gossip.h"
#include "harness/scenario.h"
#include "sim/stats.h"
#include "wire/payload_codec.h"

namespace congos {
namespace {

sim::Rumor small_rumor(std::size_t n, std::size_t payload) {
  auto r = sim::make_rumor(0, 1, std::vector<std::uint8_t>(payload, 0xAB), 64,
                           DynamicBitset(n));
  return r;
}

core::Fragment small_fragment(std::size_t n, std::size_t payload) {
  core::Fragment f;
  f.meta.key = core::FragmentKey{{0, 1}, 0, 0};
  f.meta.dest = DynamicBitset(n);
  f.data.assign(payload, 0xCD);
  return f;
}

/// One payload of every codec-serializable kind, with non-default contents
/// so size formulas cannot pass by accident.
std::vector<sim::PayloadPtr> one_of_each_kind() {
  std::vector<sim::PayloadPtr> all;

  auto msg = std::make_shared<gossip::GossipMsg>();
  for (int i = 0; i < 3; ++i) {
    gossip::GossipRumor r;
    r.gid = 100 + static_cast<std::uint64_t>(i);
    r.origin = 2;
    r.deadline_at = 64;
    r.dest = DynamicBitset(48);
    r.dest.set(static_cast<std::size_t>(5 + i));
    if (i != 1) {  // mix nested bodies and null bodies
      auto body = std::make_shared<core::FragmentBody>();
      body->fragment = small_fragment(48, 24);
      r.body = body;
    }
    msg->rumors.push_back(r);
  }
  all.push_back(msg);

  auto ack = std::make_shared<gossip::GossipAck>();
  ack->gids = {9, 3, 4000, 4001};
  all.push_back(ack);

  all.push_back(std::make_shared<gossip::GossipPull>());

  auto proxy_req = std::make_shared<core::ProxyRequestPayload>();
  proxy_req->dline = 32;
  proxy_req->fragments = {small_fragment(48, 16), small_fragment(48, 16)};
  all.push_back(proxy_req);

  auto proxy_ack = std::make_shared<core::ProxyAckPayload>();
  proxy_ack->dline = 32;
  all.push_back(proxy_ack);

  auto partials = std::make_shared<core::PartialsPayload>();
  partials->dline = 16;
  partials->fragments = {small_fragment(48, 8)};
  all.push_back(partials);

  auto direct = std::make_shared<core::DirectRumorPayload>();
  direct->rumor = small_rumor(48, 20);
  all.push_back(direct);

  auto partials_ack = std::make_shared<core::PartialsAckPayload>();
  partials_ack->dline = 16;
  all.push_back(partials_ack);

  auto direct_ack = std::make_shared<core::DirectAckPayload>();
  direct_ack->rumor = RumorUid{7, 300};
  all.push_back(direct_ack);

  auto frag_body = std::make_shared<core::FragmentBody>();
  frag_body->fragment = small_fragment(48, 40);
  all.push_back(frag_body);

  auto proxy_share = std::make_shared<core::ProxyShareBody>();
  proxy_share->dline = 32;
  proxy_share->block = 2;
  proxy_share->from = 11;
  proxy_share->proxied = {small_fragment(48, 12)};
  proxy_share->failed_proxies = {3, 4};
  all.push_back(proxy_share);

  auto hit_share = std::make_shared<core::HitSetShareBody>();
  hit_share->dline = 32;
  hit_share->block = 1;
  hit_share->from = 9;
  hit_share->hits = {{4, {1, 2}}, {5, {1, 3}}};
  all.push_back(hit_share);

  auto report = std::make_shared<core::DistributionReportBody>();
  report->reporter = 6;
  report->partition = 1;
  report->group = 2;
  report->dline = 64;
  report->hits = {{8, {2, 5}}};
  all.push_back(report);

  auto base_rumor = std::make_shared<baseline::BaselineRumorPayload>();
  base_rumor->rumor = small_rumor(48, 32);
  all.push_back(base_rumor);

  auto base_batch = std::make_shared<baseline::BaselineBatchPayload>();
  base_batch->rumors = {small_rumor(48, 8), small_rumor(48, 8)};
  all.push_back(base_batch);

  auto strong_ack = std::make_shared<baseline::StrongAckPayload>();
  strong_ack->uids = {{1, 2}, {3, 4}, {5, 6}};
  all.push_back(strong_ack);

  return all;
}

// The cross-check: for EVERY serializable payload kind, encoded_size() must
// equal the byte count encode_payload() actually emits. Any discrepancy is
// a bug in a size override, not a tolerance.
TEST(WireSizeAudit, EncodedSizeMatchesEncoderForEveryKind) {
  const auto all = one_of_each_kind();
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(sim::PayloadKind::kStrongAck));  // all but kOpaque
  for (const auto& p : all) {
    wire::WriteSink s;
    ASSERT_TRUE(wire::encode_payload(s, *p))
        << "kind " << static_cast<int>(p->kind());
    ASSERT_TRUE(s.ok()) << "kind " << static_cast<int>(p->kind());
    EXPECT_EQ(p->encoded_size(), s.data().size())
        << "encoded_size() disagrees with the encoder for kind "
        << static_cast<int>(p->kind());
  }
}

TEST(WireSizeAudit, OpaquePayloadsAreNotSerializable) {
  const sim::Payload opaque;
  wire::WriteSink s;
  EXPECT_FALSE(wire::encode_payload(s, opaque));
}

TEST(WireSize, RumorModelCountsEveryField) {
  EXPECT_GT(sim::modeled_size(small_rumor(64, 100)),
            sim::modeled_size(small_rumor(64, 10)));
  EXPECT_GT(sim::modeled_size(small_rumor(6400, 10)),
            sim::modeled_size(small_rumor(64, 10)));
  // uid (12) + deadline (8) + injected_at (8) + dest bitset + payload: the
  // pre-codec estimate dropped injected_at.
  EXPECT_EQ(sim::modeled_size(small_rumor(64, 10)), 12u + 8u + 8u + 8u + 10u);
}

TEST(WireSize, FragmentCountsGroupCountExactlyOnce) {
  EXPECT_GT(core::modeled_size(small_fragment(64, 100)),
            core::modeled_size(small_fragment(64, 10)));
  // The whole layout in one formula (fragment.h documents it next to the
  // codec walk): meta fixed part + dest bitset + share bytes.
  EXPECT_EQ(core::modeled_size(small_fragment(64, 10)),
            core::kFragmentMetaModeledBytes + 8u + 10u);
  EXPECT_EQ(core::kFragmentMetaModeledBytes, 12u + 4u + 4u + 8u + 8u + 4u);
}

TEST(WireSize, GossipMsgSumsRumors) {
  gossip::GossipMsg msg;
  EXPECT_EQ(msg.modeled_size(), 4u);
  EXPECT_EQ(msg.encoded_size(), 1u);  // just the varint count
  gossip::GossipRumor r;
  r.dest = DynamicBitset(64);
  auto body = std::make_shared<core::FragmentBody>();
  body->fragment = small_fragment(64, 16);
  r.body = body;
  const auto one_m = msg.modeled_size();
  const auto one_e = msg.encoded_size();
  msg.rumors.push_back(r);
  const auto two_m = msg.modeled_size();
  const auto two_e = msg.encoded_size();
  msg.rumors.push_back(r);
  // Identical rumors (gid delta 0) grow both sizes by equal increments.
  EXPECT_EQ(msg.modeled_size() - two_m, two_m - one_m);
  EXPECT_EQ(msg.encoded_size() - two_e, two_e - one_e);
  EXPECT_GT(two_m, one_m);
  EXPECT_GT(two_e, one_e);
}

TEST(WireSize, BatchAndDirectPayloads) {
  baseline::BaselineRumorPayload single;
  single.rumor = small_rumor(64, 16);
  EXPECT_EQ(single.modeled_size(), sim::modeled_size(single.rumor));

  baseline::BaselineBatchPayload batch;
  batch.rumors = {small_rumor(64, 16), small_rumor(64, 16)};
  EXPECT_EQ(batch.modeled_size(), 4u + 2 * sim::modeled_size(small_rumor(64, 16)));

  core::DirectRumorPayload direct;
  direct.rumor = small_rumor(64, 16);
  EXPECT_EQ(direct.modeled_size(), sim::modeled_size(direct.rumor));
}

TEST(WireSize, MetadataPayloadsAreDataFree) {
  // Shares and reports carry identifiers only: size independent of any
  // rumor payload length (that is what makes them safe to gossip widely).
  core::HitSetShareBody share;
  share.hits.resize(5);
  EXPECT_EQ(share.modeled_size(), 24u + 5 * core::kHitModeledBytes);
  core::DistributionReportBody report;
  report.hits.resize(3);
  EXPECT_EQ(report.modeled_size(), 24u + 3 * core::kHitModeledBytes);
  core::ProxyAckPayload ack;
  EXPECT_EQ(ack.modeled_size(), 8u);
}

TEST(WireSize, StrongAckScalesWithUids) {
  // The pre-codec version of this payload had NO size override: every ack
  // was billed the 8-byte opaque default regardless of contents.
  baseline::StrongAckPayload ack;
  EXPECT_EQ(ack.modeled_size(), 4u);
  ack.uids.resize(10, RumorUid{1, 1});
  EXPECT_EQ(ack.modeled_size(), 4u + 10 * 12u);
  EXPECT_GT(ack.encoded_size(), 10u);  // >= 1 byte per uid on the real wire
}

TEST(WireSize, StatsAccumulateBytes) {
  sim::MessageStats s;
  s.note_sent(sim::ServiceKind::kProxy, 100, 120);
  s.note_sent(sim::ServiceKind::kProxy, 50, 60);
  s.end_round(0);
  s.note_sent(sim::ServiceKind::kFallback, 10, 12);
  s.end_round(1);
  EXPECT_EQ(s.total_bytes(), 160u);
  EXPECT_EQ(s.max_bytes_per_round(), 150u);
  EXPECT_EQ(s.max_bytes_from(1), 10u);
  EXPECT_NEAR(s.mean_bytes_per_round(), 80.0, 1e-9);
  EXPECT_EQ(s.total_modeled_bytes(), 192u);
  EXPECT_EQ(s.total_modeled_bytes(sim::ServiceKind::kProxy), 180u);
}

TEST(WireSize, StatsByteCountersDoNotNarrow) {
  // Large-n sweeps overflow 32-bit intermediates; the whole accumulation
  // path is std::uint64_t (static_asserts in stats.h pin the member types).
  sim::MessageStats s;
  const std::uint64_t big = 1ull << 40;
  for (int i = 0; i < 8; ++i) s.note_sent(sim::ServiceKind::kProxy, big, big);
  s.end_round(0);
  EXPECT_EQ(s.total_bytes(), 8 * big);
  EXPECT_EQ(s.total_bytes(sim::ServiceKind::kProxy), 8 * big);
  EXPECT_EQ(s.total_modeled_bytes(), 8 * big);
  EXPECT_GT(s.total_bytes(), std::uint64_t{0xFFFFFFFFull});
}

TEST(WireSize, ScenarioReportsBytes) {
  harness::ScenarioConfig cfg;
  cfg.n = 16;
  cfg.seed = 9;
  cfg.rounds = 96;
  cfg.protocol = harness::Protocol::kDirect;
  cfg.continuous.inject_prob = 0.05;
  cfg.continuous.deadlines = {64};
  const auto r = harness::run_scenario(cfg);
  EXPECT_GT(r.total_bytes, 0u);
  EXPECT_GT(r.max_bytes_per_round, 0u);
  // Bytes strictly exceed message count (every frame has a header and an
  // 8-byte checksum).
  EXPECT_GT(r.total_bytes, r.total_messages * sim::kEnvelopeHeaderBytes);
  // The compact encoding beats the fixed-width model: actual < modeled.
  EXPECT_GT(r.total_bytes_modeled, 0u);
  EXPECT_LT(r.total_bytes, r.total_bytes_modeled);
}

TEST(WireSize, CongosBytesDominatedByFragmentTraffic) {
  harness::ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = 10;
  cfg.rounds = 192;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  cfg.continuous.payload_len = 64;
  const auto small = harness::run_scenario(cfg);
  cfg.continuous.payload_len = 1024;
  const auto big = harness::run_scenario(cfg);
  // Same message counts (payload length does not change the protocol), but
  // much larger byte volume.
  EXPECT_GT(big.total_bytes, small.total_bytes * 2);
  // Delta-gid and shared-header batching compress the real wire well below
  // the fixed-width model on fragment-heavy traffic.
  EXPECT_LT(small.total_bytes, small.total_bytes_modeled);
  EXPECT_LT(big.total_bytes, big.total_bytes_modeled);
}

}  // namespace
}  // namespace congos
