// Communication-complexity accounting (Section 7 discussion): every payload
// reports a serialized size; the stats collector aggregates bytes per round.
#include <gtest/gtest.h>

#include "baseline/baseline_payload.h"
#include "congos/fragment.h"
#include "gossip/continuous_gossip.h"
#include "harness/scenario.h"
#include "sim/stats.h"

namespace congos {
namespace {

sim::Rumor small_rumor(std::size_t n, std::size_t payload) {
  auto r = sim::make_rumor(0, 1, std::vector<std::uint8_t>(payload, 0xAB), 64,
                           DynamicBitset(n));
  return r;
}

core::Fragment small_fragment(std::size_t n, std::size_t payload) {
  core::Fragment f;
  f.meta.key = core::FragmentKey{{0, 1}, 0, 0};
  f.meta.dest = DynamicBitset(n);
  f.data.assign(payload, 0xCD);
  return f;
}

TEST(WireSize, RumorScalesWithPayloadAndUniverse) {
  EXPECT_GT(wire_size(small_rumor(64, 100)), wire_size(small_rumor(64, 10)));
  EXPECT_GT(wire_size(small_rumor(6400, 10)), wire_size(small_rumor(64, 10)));
  EXPECT_EQ(wire_size(small_rumor(64, 10)), 12u + 8u + 8u + 10u);
}

TEST(WireSize, FragmentScalesWithShare) {
  EXPECT_GT(core::wire_size(small_fragment(64, 100)),
            core::wire_size(small_fragment(64, 10)));
}

TEST(WireSize, GossipMsgSumsRumors) {
  gossip::GossipMsg msg;
  EXPECT_EQ(msg.wire_size(), 4u);
  gossip::GossipRumor r;
  r.dest = DynamicBitset(64);
  r.body = std::make_shared<core::FragmentBody>();
  const auto one = msg.wire_size();
  msg.rumors.push_back(r);
  const auto two = msg.wire_size();
  msg.rumors.push_back(r);
  EXPECT_EQ(msg.wire_size() - two, two - one);
  EXPECT_GT(two, one);
}

TEST(WireSize, BatchAndDirectPayloads) {
  baseline::BaselineRumorPayload single;
  single.rumor = small_rumor(64, 16);
  EXPECT_EQ(single.wire_size(), wire_size(single.rumor));

  baseline::BaselineBatchPayload batch;
  batch.rumors = {small_rumor(64, 16), small_rumor(64, 16)};
  EXPECT_EQ(batch.wire_size(), 4u + 2 * wire_size(small_rumor(64, 16)));

  core::DirectRumorPayload direct;
  direct.rumor = small_rumor(64, 16);
  EXPECT_EQ(direct.wire_size(), wire_size(direct.rumor));
}

TEST(WireSize, MetadataPayloadsAreDataFree) {
  // Shares and reports carry identifiers only: size independent of any
  // rumor payload length (that is what makes them safe to gossip widely).
  core::HitSetShareBody share;
  share.hits.resize(5);
  EXPECT_EQ(share.wire_size(), 20u + 5 * 16u);
  core::DistributionReportBody report;
  report.hits.resize(3);
  EXPECT_EQ(report.wire_size(), 20u + 3 * 16u);
  core::ProxyAckPayload ack;
  EXPECT_EQ(ack.wire_size(), 8u);
}

TEST(WireSize, StatsAccumulateBytes) {
  sim::MessageStats s;
  s.note_sent(sim::ServiceKind::kProxy, 100);
  s.note_sent(sim::ServiceKind::kProxy, 50);
  s.end_round(0);
  s.note_sent(sim::ServiceKind::kFallback, 10);
  s.end_round(1);
  EXPECT_EQ(s.total_bytes(), 160u);
  EXPECT_EQ(s.max_bytes_per_round(), 150u);
  EXPECT_EQ(s.max_bytes_from(1), 10u);
  EXPECT_NEAR(s.mean_bytes_per_round(), 80.0, 1e-9);
}

TEST(WireSize, ScenarioReportsBytes) {
  harness::ScenarioConfig cfg;
  cfg.n = 16;
  cfg.seed = 9;
  cfg.rounds = 96;
  cfg.protocol = harness::Protocol::kDirect;
  cfg.continuous.inject_prob = 0.05;
  cfg.continuous.deadlines = {64};
  const auto r = harness::run_scenario(cfg);
  EXPECT_GT(r.total_bytes, 0u);
  EXPECT_GT(r.max_bytes_per_round, 0u);
  // Bytes strictly exceed message count (every envelope has a header).
  EXPECT_GT(r.total_bytes, r.total_messages * sim::kEnvelopeHeaderBytes);
}

TEST(WireSize, CongosBytesDominatedByFragmentTraffic) {
  harness::ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = 10;
  cfg.rounds = 192;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  cfg.continuous.payload_len = 64;
  const auto small = harness::run_scenario(cfg);
  cfg.continuous.payload_len = 1024;
  const auto big = harness::run_scenario(cfg);
  // Same message counts (payload length does not change the protocol), but
  // much larger byte volume.
  EXPECT_GT(big.total_bytes, small.total_bytes * 2);
}

}  // namespace
}  // namespace congos
