// The auditors audit the protocols; these tests audit the auditors, by
// feeding them synthetic events with planted violations.
#include <gtest/gtest.h>

#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "baseline/baseline_payload.h"
#include "partition/bit_partition.h"

namespace congos::audit {
namespace {

sim::Rumor test_rumor(ProcessId src, std::uint64_t seq, std::size_t n,
                      std::vector<std::uint32_t> dest, Round deadline = 64) {
  auto r = sim::make_rumor(src, seq, {1, 2, 3, 4}, deadline,
                           DynamicBitset::from_indices(n, dest));
  r.injected_at = 0;
  return r;
}

core::Fragment frag_for(const sim::Rumor& r, PartitionIndex l, GroupIndex g,
                        GroupIndex groups) {
  core::Fragment f;
  f.meta.key = core::FragmentKey{r.uid, l, g};
  f.meta.dest = r.dest;
  f.meta.expires_at = r.expires_at();
  f.meta.dline = 64;
  f.meta.num_groups = groups;
  f.data = {9, 9, 9, 9};
  return f;
}

sim::Envelope partials_env(ProcessId from, ProcessId to,
                           std::vector<core::Fragment> frags) {
  auto p = std::make_shared<core::PartialsPayload>();
  p->fragments = std::move(frags);
  return sim::Envelope{from, to,
                       sim::ServiceTag{sim::ServiceKind::kGroupDistribution, 0}, p};
}

sim::Envelope direct_env(ProcessId from, ProcessId to, const sim::Rumor& r) {
  auto p = std::make_shared<core::DirectRumorPayload>();
  p->rumor = r;
  return sim::Envelope{from, to, sim::ServiceTag{sim::ServiceKind::kFallback, 0}, p};
}

class ConfAuditorTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 8;
  partition::PartitionSet parts = partition::make_bit_partitions(kN);
  ConfidentialityAuditor auditor{kN, &parts};
};

TEST_F(ConfAuditorTest, CleanDeliveryNoViolations) {
  auto r = test_rumor(0, 1, kN, {2, 3});
  auditor.on_inject(r, 0);
  auditor.on_envelope_delivered(direct_env(0, 2, r), 1);
  auditor.on_envelope_delivered(direct_env(0, 3, r), 1);
  EXPECT_EQ(auditor.leaks(), 0u);
  EXPECT_TRUE(auditor.knowledge().knows_full(2, r.uid));
}

TEST_F(ConfAuditorTest, FullLeakDetected) {
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  auditor.on_envelope_delivered(direct_env(0, 5, r), 3);  // 5 not in D!
  EXPECT_EQ(auditor.count(ViolationKind::kFullLeak), 1u);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].process, 5u);
  EXPECT_EQ(auditor.violations()[0].when, 3);
}

TEST_F(ConfAuditorTest, FullLeakCountedOncePerProcess) {
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  auditor.on_envelope_delivered(direct_env(0, 5, r), 3);
  auditor.on_envelope_delivered(direct_env(0, 5, r), 4);
  EXPECT_EQ(auditor.count(ViolationKind::kFullLeak), 1u);
}

TEST_F(ConfAuditorTest, FragmentSetLeakDetected) {
  // A curious process receiving both groups' fragments of partition 0 can
  // XOR them together: that is a Definition-2 violation.
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  const ProcessId curious = 6;
  auditor.on_envelope_delivered(
      partials_env(0, curious, {frag_for(r, 0, 0, 2)}), 1);
  EXPECT_EQ(auditor.leaks(), 0u);  // one fragment alone is harmless
  auditor.on_envelope_delivered(
      partials_env(1, curious, {frag_for(r, 0, 1, 2)}), 2);
  EXPECT_EQ(auditor.count(ViolationKind::kFragmentSetLeak), 1u);
  EXPECT_TRUE(auditor.knowledge().can_reconstruct(curious, r.uid));
}

TEST_F(ConfAuditorTest, FragmentsAcrossPartitionsDoNotReconstruct) {
  // Fragments of *different* partitions never combine.
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  const ProcessId curious = 6;
  auditor.on_envelope_delivered(partials_env(0, curious, {frag_for(r, 0, 0, 2)}), 1);
  auditor.on_envelope_delivered(partials_env(0, curious, {frag_for(r, 1, 1, 2)}), 1);
  auditor.on_envelope_delivered(partials_env(0, curious, {frag_for(r, 2, 0, 2)}), 1);
  EXPECT_EQ(auditor.leaks(), 0u);
  EXPECT_FALSE(auditor.knowledge().can_reconstruct(curious, r.uid));
}

TEST_F(ConfAuditorTest, ForeignFragmentDetected) {
  // Process 6 is in group (6>>0)&1 = 0 of partition 0; handing it a group-1
  // fragment breaks the structural invariant even if it cannot reconstruct.
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  auditor.on_envelope_delivered(partials_env(0, 6, {frag_for(r, 0, 1, 2)}), 1);
  EXPECT_EQ(auditor.count(ViolationKind::kForeignFragment), 1u);
  EXPECT_EQ(auditor.leaks(), 0u);
}

TEST_F(ConfAuditorTest, DestinationsMayKnowEverything) {
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  auditor.on_envelope_delivered(partials_env(0, 2, {frag_for(r, 0, 0, 2)}), 1);
  auditor.on_envelope_delivered(partials_env(1, 2, {frag_for(r, 0, 1, 2)}), 1);
  auditor.on_envelope_delivered(direct_env(0, 2, r), 2);
  EXPECT_EQ(auditor.leaks(), 0u);
  EXPECT_EQ(auditor.count(ViolationKind::kForeignFragment), 0u);
}

TEST_F(ConfAuditorTest, CoalitionAnalysis) {
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  // Give curious 4 the group-0 fragment and curious 5 the group-1 fragment
  // of partition 0 (process 4 is in group 0, 5 in group 1: structural ok).
  auditor.on_envelope_delivered(partials_env(0, 4, {frag_for(r, 0, 0, 2)}), 1);
  EXPECT_EQ(auditor.min_breaking_coalition(r.uid), SIZE_MAX);
  auditor.on_envelope_delivered(partials_env(0, 5, {frag_for(r, 0, 1, 2)}), 1);
  EXPECT_EQ(auditor.min_breaking_coalition(r.uid), 2u);
  EXPECT_FALSE(auditor.breakable_by_coalition(r.uid, 1));
  EXPECT_TRUE(auditor.breakable_by_coalition(r.uid, 2));
  EXPECT_TRUE(
      auditor.knowledge().coalition_can_reconstruct({4, 5}, r.uid));
  EXPECT_FALSE(auditor.knowledge().coalition_can_reconstruct({4}, r.uid));
}

TEST_F(ConfAuditorTest, BaselineWholePayloadsTracked) {
  auto r = test_rumor(0, 1, kN, {2});
  auditor.on_inject(r, 0);
  auto whole = std::make_shared<baseline::BaselineRumorPayload>();
  whole->rumor = r;
  auditor.on_envelope_delivered(
      sim::Envelope{0, 7, sim::ServiceTag{sim::ServiceKind::kBaseline, 0}, whole}, 1);
  EXPECT_EQ(auditor.count(ViolationKind::kFullLeak), 1u);
}

// ---------------------------------------------------------------------------

class QodAuditorTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 4;
  DeliveryAuditor auditor{kN};
};

TEST_F(QodAuditorTest, OnTimeDeliveryIsOk) {
  auto r = test_rumor(0, 1, kN, {1, 2}, 10);
  auditor.on_inject(r, 0);
  auditor.on_rumor_delivered(1, r.uid, 4, r.data);
  auditor.on_rumor_delivered(2, r.uid, 10, r.data);  // exactly at deadline
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.admissible_pairs, 2u);
  EXPECT_EQ(rep.delivered_on_time, 2u);
  EXPECT_TRUE(rep.ok());
  EXPECT_NEAR(rep.mean_latency, 7.0, 1e-9);
}

TEST_F(QodAuditorTest, LateAndMissingDetected) {
  auto r = test_rumor(0, 1, kN, {1, 2}, 10);
  auditor.on_inject(r, 0);
  auditor.on_rumor_delivered(1, r.uid, 11, r.data);  // one round late
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.late, 1u);
  EXPECT_EQ(rep.missing, 1u);
  EXPECT_FALSE(rep.ok());
}

TEST_F(QodAuditorTest, DataMismatchDetected) {
  auto r = test_rumor(0, 1, kN, {1}, 10);
  auditor.on_inject(r, 0);
  const std::vector<std::uint8_t> wrong = {9, 9, 9, 9};
  auditor.on_rumor_delivered(1, r.uid, 4, wrong);
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.data_mismatches, 1u);
}

TEST_F(QodAuditorTest, CrashedDestinationIsNotAdmissible) {
  auto r = test_rumor(0, 1, kN, {1, 2}, 10);
  auditor.on_inject(r, 0);
  auditor.on_crash(2, 5);  // destination 2 dies mid-window
  auditor.on_rumor_delivered(1, r.uid, 4, r.data);
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.admissible_pairs, 1u);
  EXPECT_TRUE(rep.ok());
}

TEST_F(QodAuditorTest, CrashedSourceExemptsAllDestinations) {
  auto r = test_rumor(0, 1, kN, {1, 2}, 10);
  auditor.on_inject(r, 0);
  auditor.on_crash(0, 3);
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.admissible_pairs, 0u);
  EXPECT_TRUE(rep.ok());
}

TEST_F(QodAuditorTest, RestartBeforeInjectionDoesNotExempt) {
  auditor.on_crash(1, 2);
  auditor.on_restart(1, 5);
  auto r = test_rumor(0, 1, kN, {1}, 10);
  r.injected_at = 8;  // injected after 1 is back up
  auditor.on_inject(r, 8);
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.admissible_pairs, 1u);
  EXPECT_EQ(rep.missing, 1u);
}

TEST_F(QodAuditorTest, BonusDeliveriesCounted) {
  auto r = test_rumor(0, 1, kN, {1}, 10);
  auditor.on_inject(r, 0);
  auditor.on_crash(1, 5);
  auditor.on_restart(1, 6);
  auditor.on_rumor_delivered(1, r.uid, 8, r.data);  // delivered anyway
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.admissible_pairs, 0u);
  EXPECT_EQ(rep.bonus_deliveries, 1u);
  EXPECT_TRUE(rep.ok());
}

TEST_F(QodAuditorTest, ContinuouslyAliveLogic) {
  auditor.on_crash(1, 10);
  auditor.on_restart(1, 20);
  EXPECT_TRUE(auditor.continuously_alive(1, 0, 9));
  EXPECT_FALSE(auditor.continuously_alive(1, 0, 10));
  EXPECT_FALSE(auditor.continuously_alive(1, 10, 15));
  EXPECT_FALSE(auditor.continuously_alive(1, 15, 25));  // dead at start
  EXPECT_TRUE(auditor.continuously_alive(1, 21, 100));
  EXPECT_TRUE(auditor.continuously_alive(0, 0, 1000));  // never touched
}

TEST_F(QodAuditorTest, InFlightRumorsAreSkipped) {
  auto r = test_rumor(0, 1, kN, {1}, 50);
  auditor.on_inject(r, 0);
  auto rep = auditor.finalize(10);  // deadline (50) not yet reached
  EXPECT_EQ(rep.rumors, 0u);
  EXPECT_TRUE(rep.ok());
}

TEST_F(QodAuditorTest, DuplicateDeliveriesKeepFirst) {
  auto r = test_rumor(0, 1, kN, {1}, 10);
  auditor.on_inject(r, 0);
  auditor.on_rumor_delivered(1, r.uid, 3, r.data);
  auditor.on_rumor_delivered(1, r.uid, 9, r.data);
  EXPECT_EQ(auditor.delivery_round(r.uid, 1), 3);
  auto rep = auditor.finalize(100);
  EXPECT_EQ(rep.delivered_on_time, 1u);
}

}  // namespace
}  // namespace congos::audit
