// Link-fault injection layer (DESIGN.md section 10): spec parsing, the
// partition hash schedule, the deadline-aware retransmission schedule, and
// the Network-level fault semantics (drop/dup/delay/partition, counters,
// delayed-queue release and checkpoint rewind).
#include "sim/faults.h"

#include <gtest/gtest.h>

#include "congos/retransmit.h"
#include "sim/network.h"
#include "test_util.h"

namespace congos::sim {
namespace {

using testutil::IntPayload;
using testutil::make_msg;

// ---------------------------------------------------------------------------
// FaultConfig spec parsing and rendering
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesFullSpec) {
  FaultConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_fault_spec("drop:0.05,dup:0.01,delay:3,delay-rate:0.5,"
                               "partition:16/4,seed:7",
                               &cfg, &err))
      << err;
  EXPECT_DOUBLE_EQ(cfg.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.dup_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.5);
  EXPECT_EQ(cfg.max_delay, 3);
  EXPECT_EQ(cfg.partition_period, 16);
  EXPECT_EQ(cfg.partition_duration, 4);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_TRUE(cfg.enabled());
  EXPECT_TRUE(cfg.partitions_enabled());
}

TEST(FaultSpec, DelayAloneImpliesDefaultDelayRate) {
  FaultConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_fault_spec("delay:2", &cfg, &err)) << err;
  EXPECT_EQ(cfg.max_delay, 2);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.25);
}

TEST(FaultSpec, DelayRateOverridesTheDefault) {
  FaultConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_fault_spec("delay:2,delay-rate:0.9", &cfg, &err)) << err;
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.9);
  ASSERT_TRUE(parse_fault_spec("delay-rate:0.9,delay:2", &cfg, &err)) << err;
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.9) << "order must not matter";
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  FaultConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_fault_spec("gremlins:1", &cfg, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_fault_spec("drop:1.5", &cfg, &err));
  EXPECT_FALSE(parse_fault_spec("drop:-0.1", &cfg, &err));
  EXPECT_FALSE(parse_fault_spec("delay:0", &cfg, &err));
  EXPECT_FALSE(parse_fault_spec("partition:4/8", &cfg, &err));  // duration > period
  EXPECT_FALSE(parse_fault_spec("partition:4/0", &cfg, &err));
  EXPECT_FALSE(parse_fault_spec("drop", &cfg, &err));
}

TEST(FaultSpec, DescribeDisabledIsOff) {
  EXPECT_EQ(describe(FaultConfig{}), "off");
}

TEST(FaultSpec, DescribeRoundTrips) {
  const char* specs[] = {
      "drop:0.05",
      "drop:0.1,dup:0.02,delay:4,delay-rate:0.25",
      "delay:2",
      "partition:16/4",
      "drop:0.5,partition:8/2,seed:42",
  };
  for (const char* spec : specs) {
    FaultConfig cfg;
    std::string err;
    ASSERT_TRUE(parse_fault_spec(spec, &cfg, &err)) << spec << ": " << err;
    FaultConfig back;
    ASSERT_TRUE(parse_fault_spec(describe(cfg), &back, &err))
        << describe(cfg) << ": " << err;
    EXPECT_EQ(cfg, back) << spec << " -> " << describe(cfg);
  }
}

// ---------------------------------------------------------------------------
// Partition schedule (pure hash, no RNG state)
// ---------------------------------------------------------------------------

TEST(Partitions, ActiveWindowFollowsThePeriod) {
  FaultConfig cfg;
  cfg.partition_period = 8;
  cfg.partition_duration = 3;
  for (Round r = 0; r < 32; ++r) {
    EXPECT_EQ(partition_active(cfg, r), r % 8 < 3) << "round " << r;
  }
  EXPECT_FALSE(partition_active(FaultConfig{}, 0));
}

TEST(Partitions, SideIsDeterministicAndEpochDependent) {
  // Same (seed, epoch, p) always hashes to the same side; across epochs the
  // split re-shuffles (some process must change sides over a few epochs).
  bool some_flip = false;
  for (ProcessId p = 0; p < 16; ++p) {
    const int side = partition_side(1, 0, p);
    EXPECT_EQ(partition_side(1, 0, p), side);
    EXPECT_TRUE(side == 0 || side == 1);
    for (std::uint64_t epoch = 1; epoch < 4; ++epoch) {
      if (partition_side(1, epoch, p) != side) some_flip = true;
    }
  }
  EXPECT_TRUE(some_flip);
}

TEST(Partitions, CutIsSymmetricAndOnlyCrossSide) {
  FaultConfig cfg;
  cfg.partition_period = 4;
  cfg.partition_duration = 4;  // always active
  cfg.seed = 3;
  constexpr ProcessId kN = 16;
  bool saw_cut = false, saw_pass = false;
  for (ProcessId a = 0; a < kN; ++a) {
    for (ProcessId b = 0; b < kN; ++b) {
      const bool cut = partition_cuts(cfg, 0, a, b);
      EXPECT_EQ(cut, partition_cuts(cfg, 0, b, a)) << a << "->" << b;
      EXPECT_EQ(cut, partition_side(cfg.seed, 0, a) != partition_side(cfg.seed, 0, b));
      (cut ? saw_cut : saw_pass) = true;
    }
  }
  // With 16 processes and a fair hash both sides are non-empty; if this ever
  // fires the hash degenerated into a constant.
  EXPECT_TRUE(saw_cut);
  EXPECT_TRUE(saw_pass);
  // Outside the active window nothing is cut.
  cfg.partition_duration = 1;
  EXPECT_FALSE(partition_cuts(cfg, 1, 0, 1));
}

// ---------------------------------------------------------------------------
// Deadline-aware retransmission schedule
// ---------------------------------------------------------------------------

TEST(Retransmit, FirstAttemptLeadsByTwoToTheBudget) {
  EXPECT_EQ(core::retransmit_first(0, 100, 4), 84);
  EXPECT_EQ(core::retransmit_first(0, 100, 0), 99);
  EXPECT_EQ(core::retransmit_first(90, 100, 4), 90);   // clamped to now
  EXPECT_EQ(core::retransmit_first(0, 100, -5), 99);   // clamped budget
  EXPECT_EQ(core::retransmit_first(0, 100, 200), 0);   // huge lead -> now
}

TEST(Retransmit, GapsHalveTowardsTheDeadline) {
  Round at = core::retransmit_first(0, 100, 4);
  std::vector<Round> fired;
  while (at != kNoRound) {
    fired.push_back(at);
    at = core::retransmit_next(at, 100);
  }
  EXPECT_EQ(fired, (std::vector<Round>{84, 92, 96, 98, 99}));
}

TEST(Retransmit, ScheduleExhaustsAtTheDeadline) {
  EXPECT_EQ(core::retransmit_next(99, 100), kNoRound);
  EXPECT_EQ(core::retransmit_next(100, 100), kNoRound);
  EXPECT_EQ(core::retransmit_next(98, 100), 99);
}

// ---------------------------------------------------------------------------
// Network-level fault semantics
// ---------------------------------------------------------------------------

struct FaultNetFixture : ::testing::Test {
  static constexpr std::size_t kN = 4;
  MessageStats stats;
  Network net{kN, &stats};
  Rng rng{99};
  std::vector<PartialDelivery> out_policy =
      std::vector<PartialDelivery>(kN, PartialDelivery::kDeliverAll);
  DynamicBitset out_filtered{kN};
  std::vector<PartialDelivery> in_policy =
      std::vector<PartialDelivery>(kN, PartialDelivery::kDeliverAll);
  DynamicBitset in_filtered{kN};
  std::vector<Envelope> observed;

  struct Recorder final : DeliveryObserver {
    explicit Recorder(std::vector<Envelope>& sink) : sink(sink) {}
    void on_delivered(const Envelope& e) override { sink.push_back(e); }
    std::vector<Envelope>& sink;
  };

  void deliver() {
    Recorder recorder(observed);
    net.deliver(out_policy, out_filtered, in_policy, in_filtered, rng, &recorder);
  }
};

TEST_F(FaultNetFixture, DisabledByDefault) {
  EXPECT_FALSE(net.faults_enabled());
  EXPECT_EQ(net.in_flight_delayed(), 0u);
}

TEST_F(FaultNetFixture, DropRateOneLosesEverythingButCountsSends) {
  FaultConfig cfg;
  cfg.drop_rate = 1.0;
  net.set_faults(cfg);
  net.submit(make_msg(0, 1, 1, ServiceKind::kProxy));
  net.submit(make_msg(2, 3, 2, ServiceKind::kProxy));
  deliver();
  EXPECT_EQ(net.inbox(1).size(), 0u);
  EXPECT_EQ(net.inbox(3).size(), 0u);
  EXPECT_TRUE(observed.empty());
  // Definition 3 counts sends; faults happen after the send was counted.
  EXPECT_EQ(net.messages_sent_total(), 2u);
  EXPECT_EQ(stats.faults(FaultKind::kDropped), 2u);
  EXPECT_EQ(stats.faults(FaultKind::kDropped, ServiceKind::kProxy), 2u);
  EXPECT_EQ(stats.fault_total(), 2u);
}

TEST_F(FaultNetFixture, DelayedEnvelopeArrivesExactlyMaxDelayLater) {
  FaultConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.max_delay = 1;  // lateness is deterministically 1
  net.set_faults(cfg);
  net.submit(make_msg(0, 1, 7));
  deliver();
  EXPECT_EQ(net.inbox(1).size(), 0u);
  EXPECT_EQ(net.in_flight_delayed(), 1u);
  EXPECT_EQ(stats.faults(FaultKind::kDelayed), 1u);
  net.end_round();

  deliver();  // round 1: the envelope comes due
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.in_flight_delayed(), 0u);
  ASSERT_EQ(observed.size(), 1u);
  const auto* p = dynamic_cast<const IntPayload*>(net.inbox(1)[0].body.get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value, 7);
}

TEST_F(FaultNetFixture, DelayedReleaseKeepsSubmissionOrder) {
  FaultConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.max_delay = 1;
  net.set_faults(cfg);
  net.submit(make_msg(0, 1, 10));
  net.submit(make_msg(2, 1, 11));
  deliver();
  net.end_round();
  deliver();
  ASSERT_EQ(net.inbox(1).size(), 2u);
  const auto* a = dynamic_cast<const IntPayload*>(net.inbox(1)[0].body.get());
  const auto* b = dynamic_cast<const IntPayload*>(net.inbox(1)[1].body.get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->value, 10);
  EXPECT_EQ(b->value, 11);
}

TEST_F(FaultNetFixture, DelayedReleasePrecedesSameRoundTraffic) {
  // Round 0 delays everything by exactly one round.
  FaultConfig delaying;
  delaying.delay_rate = 1.0;
  delaying.max_delay = 1;
  net.set_faults(delaying);
  net.submit(make_msg(0, 1, 1));
  deliver();
  net.end_round();
  // Round 1: swap to a config that keeps the fault layer armed (so the
  // delayed queue still releases) but touches nothing - the partition window
  // covered only round 0, which is already over.
  FaultConfig inert;
  inert.partition_period = 1 << 20;
  inert.partition_duration = 1;
  net.set_faults(inert);
  net.submit(make_msg(2, 1, 2));
  deliver();
  ASSERT_EQ(net.inbox(1).size(), 2u);
  const auto* first = dynamic_cast<const IntPayload*>(net.inbox(1)[0].body.get());
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value, 1) << "late envelope must release ahead of new traffic";
}

TEST_F(FaultNetFixture, DelayedEnvelopeLostToReceiverFilterAtRelease) {
  FaultConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.max_delay = 1;
  net.set_faults(cfg);
  net.submit(make_msg(0, 1, 1));
  deliver();
  net.end_round();
  // Receiver is filtered (restarting) in the release round: the envelope is
  // conservatively dropped even under kRandom - the fault layer must never
  // consume engine randomness.
  in_filtered.set(1);
  in_policy[1] = PartialDelivery::kRandom;
  const auto rng_before = rng;
  deliver();
  EXPECT_EQ(net.inbox(1).size(), 0u);
  EXPECT_EQ(net.in_flight_delayed(), 0u);
  Rng probe = rng_before;
  EXPECT_EQ(rng.next(), probe.next())
      << "release path consumed an engine-RNG draw";
}

TEST_F(FaultNetFixture, DuplicateIsDeliveredNowAndAgainLater) {
  FaultConfig cfg;
  cfg.dup_rate = 1.0;
  cfg.max_delay = 1;
  net.set_faults(cfg);
  net.submit(make_msg(0, 1, 5));
  deliver();
  ASSERT_EQ(net.inbox(1).size(), 1u);  // on-time copy
  EXPECT_EQ(net.in_flight_delayed(), 1u);
  EXPECT_EQ(stats.faults(FaultKind::kDuplicated), 1u);
  net.end_round();
  deliver();
  ASSERT_EQ(net.inbox(1).size(), 1u);  // late copy
  const auto* p = dynamic_cast<const IntPayload*>(net.inbox(1)[0].body.get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value, 5);
  EXPECT_EQ(observed.size(), 2u);
}

TEST_F(FaultNetFixture, PartitionCutsBothDirectionsAndExpires) {
  FaultConfig cfg;
  cfg.partition_period = 2;
  cfg.partition_duration = 1;  // active in even rounds only
  // Find a seed whose epoch-0 hash splits {0..3}; deterministic search.
  ProcessId a = 0, b = 0;
  for (std::uint64_t s = 1; s < 64; ++s) {
    for (ProcessId p = 1; p < kN; ++p) {
      if (partition_side(s, 0, 0) != partition_side(s, 0, p)) {
        cfg.seed = s;
        a = 0;
        b = p;
        break;
      }
    }
    if (cfg.seed == s) break;
  }
  ASSERT_NE(a, b) << "no splitting seed found in 64 tries";
  net.set_faults(cfg);

  net.submit(make_msg(a, b, 1));
  net.submit(make_msg(b, a, 2));
  deliver();  // round 0: partition active
  EXPECT_EQ(net.inbox(a).size(), 0u);
  EXPECT_EQ(net.inbox(b).size(), 0u);
  EXPECT_EQ(stats.faults(FaultKind::kPartitioned), 2u);
  net.end_round();

  net.submit(make_msg(a, b, 3));
  deliver();  // round 1: partition healed
  EXPECT_EQ(net.inbox(b).size(), 1u);
  EXPECT_EQ(stats.faults(FaultKind::kPartitioned), 2u);
}

TEST_F(FaultNetFixture, SameSeedSameFaultPattern) {
  FaultConfig cfg;
  cfg.drop_rate = 0.3;
  cfg.delay_rate = 0.2;
  cfg.max_delay = 2;
  cfg.dup_rate = 0.1;
  cfg.seed = 1234;

  auto run = [&](std::vector<int>* delivered_values) {
    MessageStats st;
    Network n2{kN, &st};
    Rng r2{99};
    n2.set_faults(cfg);
    for (Round round = 0; round < 6; ++round) {
      for (int i = 0; i < 10; ++i) {
        n2.submit(make_msg(0, 1, static_cast<int>(round) * 100 + i));
      }
      n2.deliver(out_policy, out_filtered, in_policy, in_filtered, r2, nullptr);
      for (const auto& e : n2.inbox(1)) {
        const auto* p = dynamic_cast<const IntPayload*>(e.body.get());
        ASSERT_NE(p, nullptr);
        delivered_values->push_back(p->value);
      }
      n2.end_round();
    }
  };
  std::vector<int> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
  EXPECT_LT(first.size(), 60u) << "some envelope should have been dropped";
  EXPECT_FALSE(first.empty());
}

TEST_F(FaultNetFixture, CheckpointRewindsDelayedQueueAndFaultRng) {
  FaultConfig cfg;
  cfg.drop_rate = 0.3;
  cfg.delay_rate = 0.3;
  cfg.max_delay = 2;
  cfg.seed = 77;
  net.set_faults(cfg);

  auto play_round = [&](Round round, std::vector<int>* sink) {
    for (int i = 0; i < 8; ++i) {
      net.submit(make_msg(0, 1, static_cast<int>(round) * 100 + i));
    }
    net.deliver(out_policy, out_filtered, in_policy, in_filtered, rng, nullptr);
    if (sink != nullptr) {
      for (const auto& e : net.inbox(1)) {
        const auto* p = dynamic_cast<const IntPayload*>(e.body.get());
        sink->push_back(p->value);
      }
    }
    net.end_round();
  };

  for (Round r = 0; r < 3; ++r) play_round(r, nullptr);
  const NetworkCheckpoint cp = net.checkpoint();
  const Rng rng_cp = rng;  // the engine RNG is checkpointed by the engine
  EXPECT_EQ(cp.round, 3);

  std::vector<int> first;
  for (Round r = 3; r < 6; ++r) play_round(r, &first);

  net.restore(cp);
  rng = rng_cp;
  std::vector<int> second;
  for (Round r = 3; r < 6; ++r) play_round(r, &second);

  EXPECT_EQ(first, second)
      << "restore() must rewind the delayed queue and the fault Rng";
  EXPECT_EQ(net.messages_sent_total(), cp.sent_total + 24);
}

TEST_F(FaultNetFixture, FaultsOffConsumesNoEngineRandomness) {
  // The faults-off hot path must be byte-identical to a build without the
  // fault layer: no extra RNG draws, no counter movement.
  net.submit(make_msg(0, 1, 1));
  const Rng rng_before = rng;
  deliver();
  Rng probe = rng_before;
  EXPECT_EQ(rng.next(), probe.next());
  EXPECT_EQ(stats.fault_total(), 0u);
  EXPECT_EQ(net.inbox(1).size(), 1u);
}

TEST(FaultKindNames, AllNamed) {
  for (std::size_t f = 0; f < kNumFaultKinds; ++f) {
    EXPECT_STRNE(to_string(static_cast<FaultKind>(f)), "?");
  }
}

}  // namespace
}  // namespace congos::sim
