// White-box unit tests of the GroupDistribution[l] state machine (Fig. 10).
//
// Geometry: dline = 256 -> block 64, iteration 18 (3 per block). Iterations
// start at block round 2 (round 1 waits for late fragments):
//   block offset 1           - collect waiting fragments, activate;
//   block offset 2 (io==1)   - distribute partials to destinations;
//   block offset 3 (io==2)   - share hitSet via GroupGossip;
//   block offset 63          - publish the sanitized AllGossip report.
#include "congos/group_distribution.h"

#include <gtest/gtest.h>

#include "partition/bit_partition.h"

namespace congos::core {
namespace {

constexpr std::size_t kN = 16;
constexpr Round kDline = 256;
constexpr Round kBlock = 64;
constexpr Round kIter = 18;

struct FakeSender final : sim::Sender {
  std::vector<sim::Envelope> sent;
  void send(sim::Envelope e) override { sent.push_back(std::move(e)); }
  void clear() { sent.clear(); }
};

struct Record {
  Round when;
  sim::PayloadPtr body;
  Round deadline_at;
};

class GdFixture : public ::testing::Test {
 protected:
  GdFixture() : partitions_(partition::make_bit_partitions(kN)), rng_(7) {
    GroupDistributionService::Hooks hooks;
    hooks.gossip_share = [this](Round now, sim::PayloadPtr body, Round deadline_at) {
      shares_.push_back(Record{now, std::move(body), deadline_at});
    };
    hooks.all_gossip = [this](Round now, sim::PayloadPtr body, Round deadline_at) {
      reports_.push_back(Record{now, std::move(body), deadline_at});
    };
    hooks.alive_since = [this] { return alive_since_; };
    gd_ = std::make_unique<GroupDistributionService>(/*self=*/0, /*l=*/0,
                                                     &partitions_[0], kDline, &cfg_,
                                                     &rng_, std::move(hooks));
  }

  void run(Round from, Round to) {
    for (Round t = from; t <= to; ++t) gd_->send_phase(t, sender_);
  }

  Fragment own_fragment(std::vector<std::uint32_t> dest, std::uint64_t seq = 1,
                        Round expires = 20 * kBlock) {
    Fragment f;
    f.meta.key = FragmentKey{RumorUid{5, seq}, 0, 0};  // group 0 = self's group
    f.meta.dest = DynamicBitset::from_indices(kN, dest);
    f.meta.expires_at = expires;
    f.meta.dline = kDline;
    f.meta.num_groups = 2;
    f.data = {9, 9};
    return f;
  }

  partition::PartitionSet partitions_;
  CongosConfig cfg_;
  Rng rng_;
  Round alive_since_ = 0;
  FakeSender sender_;
  std::vector<Record> shares_;
  std::vector<Record> reports_;
  std::unique_ptr<GroupDistributionService> gd_;
};

// The 2/3*dline uptime requirement means activation first succeeds at the
// block boundary after round ceil(2*256/3) = 171, i.e. block 3 (round 192).
constexpr Round kFirstActiveBlock = 3 * kBlock;

TEST_F(GdFixture, ActivationNeedsTwoThirdsDeadlineUptime) {
  gd_->enqueue(0, own_fragment({3}));
  run(0, kFirstActiveBlock);  // blocks 0..2: too young
  EXPECT_TRUE(sender_.sent.empty());
  EXPECT_FALSE(gd_->active());
  run(kFirstActiveBlock + 1, kFirstActiveBlock + 2);
  EXPECT_TRUE(gd_->active());
  EXPECT_FALSE(sender_.sent.empty());
}

TEST_F(GdFixture, PartialsGoOnlyToDestinations) {
  gd_->enqueue(0, own_fragment({3, 6, 9}));
  run(0, kFirstActiveBlock + 2);
  ASSERT_FALSE(sender_.sent.empty());
  std::set<ProcessId> hit;
  for (const auto& e : sender_.sent) {
    EXPECT_EQ(e.tag.kind, sim::ServiceKind::kGroupDistribution);
    EXPECT_TRUE(e.to == 3 || e.to == 6 || e.to == 9) << e.to;
    const auto* p = dynamic_cast<const PartialsPayload*>(e.body.get());
    ASSERT_NE(p, nullptr);
    for (const auto& f : p->fragments) EXPECT_TRUE(f.meta.dest.test(e.to));
    hit.insert(e.to);
  }
  // Fan-out at this scale saturates: all three destinations hit at once.
  EXPECT_EQ(hit.size(), 3u);
}

TEST_F(GdFixture, HitDestinationsAreNotRetargeted) {
  gd_->enqueue(0, own_fragment({3, 6}));
  run(0, kFirstActiveBlock + 2);  // first distribution round
  const auto first = sender_.sent.size();
  ASSERT_GT(first, 0u);
  sender_.clear();
  // Second iteration's distribution round: everyone already hit.
  run(kFirstActiveBlock + 3, kFirstActiveBlock + 1 + kIter + 1);
  EXPECT_EQ(sender_.sent.size(), 0u);
}

TEST_F(GdFixture, HitSetSharedViaGroupGossip) {
  gd_->enqueue(0, own_fragment({3}));
  run(0, kFirstActiveBlock + 3);  // through the share round (offset 3)
  ASSERT_FALSE(shares_.empty());
  const auto* share = dynamic_cast<const HitSetShareBody*>(shares_.back().body.get());
  ASSERT_NE(share, nullptr);
  ASSERT_EQ(share->hits.size(), 1u);
  EXPECT_EQ(share->hits[0].target, 3u);
  EXPECT_EQ(share->hits[0].rumor, (RumorUid{5, 1}));
  EXPECT_EQ(shares_.back().deadline_at, shares_.back().when + 16);
}

TEST_F(GdFixture, LearnedHitsSuppressOwnSends) {
  gd_->enqueue(0, own_fragment({3}));
  // Before our first distribution round, a collaborator tells us 3 was hit.
  HitSetShareBody share;
  share.from = 2;
  share.hits.push_back(Hit{3, RumorUid{5, 1}});
  run(0, kFirstActiveBlock + 1);  // activate and collect
  gd_->on_share(kFirstActiveBlock + 1, share);
  run(kFirstActiveBlock + 2, kFirstActiveBlock + 2);
  EXPECT_TRUE(sender_.sent.empty());  // nothing left to send
}

TEST_F(GdFixture, ReportPublishedAtBlockEndWithGroupTag) {
  gd_->enqueue(0, own_fragment({3}));
  run(0, kFirstActiveBlock + kBlock - 1);
  ASSERT_FALSE(reports_.empty());
  const auto& rec = reports_.back();
  EXPECT_EQ(rec.when, kFirstActiveBlock + kBlock - 1);
  EXPECT_EQ(rec.deadline_at, rec.when + kBlock - 1);
  const auto* rep = dynamic_cast<const DistributionReportBody*>(rec.body.get());
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->reporter, 0u);
  EXPECT_EQ(rep->group, 0u);
  EXPECT_EQ(rep->partition, 0u);
  ASSERT_EQ(rep->hits.size(), 1u);
  EXPECT_EQ(rep->hits[0].target, 3u);
}

TEST_F(GdFixture, NoReportWhenNothingWasSent) {
  run(0, kFirstActiveBlock + kBlock - 1);
  EXPECT_TRUE(reports_.empty());
}

TEST_F(GdFixture, FragmentsEnqueuedMidBlockWaitForNextBlock) {
  run(0, kFirstActiveBlock + 1);  // active, empty
  gd_->enqueue(kFirstActiveBlock + 2, own_fragment({3}));
  run(kFirstActiveBlock + 2, kFirstActiveBlock + kBlock - 1);
  EXPECT_TRUE(sender_.sent.empty());  // waits for the next collection
  run(kFirstActiveBlock + kBlock, kFirstActiveBlock + kBlock + 2);
  EXPECT_FALSE(sender_.sent.empty());
}

TEST_F(GdFixture, ExpiredFragmentsNeverDistributed) {
  gd_->enqueue(0, own_fragment({3}, 1, /*expires=*/kFirstActiveBlock - 1));
  run(0, kFirstActiveBlock + kBlock - 1);
  EXPECT_TRUE(sender_.sent.empty());
  EXPECT_TRUE(reports_.empty());
}

TEST_F(GdFixture, ResetWipesState) {
  gd_->enqueue(0, own_fragment({3}));
  gd_->reset(5);
  run(0, kFirstActiveBlock + kBlock - 1);
  EXPECT_TRUE(sender_.sent.empty());
}

TEST_F(GdFixture, WrongGroupFragmentAborts) {
  Fragment f = own_fragment({3});
  f.meta.key.group = 1;  // self is in group 0
  EXPECT_DEATH(gd_->enqueue(0, f), "own-group");
}

}  // namespace
}  // namespace congos::core
