#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.h"

namespace congos::harness {
namespace {

TEST(Harness, ProtocolNames) {
  EXPECT_STREQ(to_string(Protocol::kCongos), "congos");
  EXPECT_STREQ(to_string(Protocol::kDirect), "direct");
  EXPECT_STREQ(to_string(Protocol::kDirectPaced), "direct-paced");
  EXPECT_STREQ(to_string(Protocol::kStrongConfidential), "strong-conf");
  EXPECT_STREQ(to_string(Protocol::kPlainGossip), "plain-gossip");
}

TEST(Harness, EveryProtocolRunsTheDefaultScenario) {
  for (Protocol p : {Protocol::kCongos, Protocol::kDirect, Protocol::kDirectPaced,
                     Protocol::kStrongConfidential, Protocol::kPlainGossip}) {
    ScenarioConfig cfg;
    cfg.n = 16;
    cfg.seed = 5;
    cfg.rounds = 128;
    cfg.protocol = p;
    cfg.continuous.inject_prob = 0.02;
    cfg.continuous.deadlines = {64};
    const auto r = run_scenario(cfg);
    EXPECT_GT(r.injected, 0u) << to_string(p);
    EXPECT_TRUE(r.qod.ok()) << to_string(p) << " late=" << r.qod.late
                            << " missing=" << r.qod.missing;
    EXPECT_GT(r.total_messages, 0u) << to_string(p);
  }
}

TEST(Harness, NoWorkloadMeansNoTrafficForCongos) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.seed = 6;
  cfg.rounds = 64;
  cfg.workload = WorkloadKind::kNone;
  const auto r = run_scenario(cfg);
  EXPECT_EQ(r.injected, 0u);
  EXPECT_EQ(r.total_messages, 0u);  // quiescent system stays silent
}

TEST(Harness, MeasureFromExcludesWarmup) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.seed = 7;
  cfg.rounds = 128;
  cfg.continuous.inject_prob = 0.05;
  cfg.continuous.deadlines = {64};
  cfg.continuous.last_injection_round = 10;  // burst at the start only
  cfg.measure_from = 0;
  const auto full = run_scenario(cfg);
  cfg.measure_from = 300;  // far past the burst and its drain
  const auto tail = run_scenario(cfg);
  EXPECT_GT(full.max_per_round, tail.max_per_round);
  EXPECT_EQ(tail.max_per_round, 0u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"n", "messages"});
  t.row({"8", "1,000"});
  t.row({"128", "5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n    messages"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("128  5"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CellHelpers) {
  EXPECT_EQ(cell(static_cast<std::uint64_t>(1234567)), "1,234,567");
  EXPECT_EQ(cell(3.14159, 3), "3.142");
  EXPECT_EQ(cell(std::string("x")), "x");
}

TEST(TableDeath, RowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.row({"1"}), "width");
}

}  // namespace
}  // namespace congos::harness
