// Collusion-tolerant CONGOS (Section 6): tau+1 fragments over c*tau*log n
// random partitions. Lemma 14 (confidentiality under coalitions of <= tau)
// and Lemma 15 (QoD) checked end to end; plus the Theorem 16 degenerate case.
#include <gtest/gtest.h>

#include "congos/congos_process.h"
#include "harness/scenario.h"

namespace congos {
namespace {

using harness::Protocol;
using harness::run_scenario;
using harness::ScenarioConfig;
using harness::WorkloadKind;

ScenarioConfig collusion_config(std::size_t n, std::uint32_t tau, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.protocol = Protocol::kCongos;
  cfg.congos.tau = tau;
  // The tau >= n/log^2 n cutoff fires for tau >= 2 at this scale; disable it
  // so the fragment pipeline (the thing under test) actually runs.
  cfg.congos.allow_degenerate = false;
  cfg.rounds = 320;
  cfg.workload = WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.01;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 5;
  cfg.continuous.deadlines = {64};
  cfg.measure_from = 128;
  return cfg;
}

class CollusionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CollusionSweep, QoDAndCoalitionSafety) {
  const std::uint32_t tau = GetParam();
  auto cfg = collusion_config(48, tau, 2000 + tau);
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  // Lemma 14: no single curious process - and no coalition of <= tau - can
  // reconstruct any rumor.
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
}

INSTANTIATE_TEST_SUITE_P(Taus, CollusionSweep, ::testing::Values(1u, 2u, 3u));

TEST(Collusion, MinBreakingCoalitionExceedsTau) {
  // Drive a run directly (not through the harness) so we can query the
  // auditor's coalition analysis per rumor.
  const std::size_t n = 32;
  const std::uint32_t tau = 2;
  core::CongosConfig ccfg;
  ccfg.tau = tau;
  ccfg.allow_degenerate = false;
  auto shared_cfg = std::make_shared<const core::CongosConfig>(ccfg);
  auto partitions = core::CongosProcess::build_partitions(n, ccfg);

  audit::DeliveryAuditor qod(n);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(77);
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, shared_cfg, partitions,
                                                          seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  audit::ConfidentialityAuditor conf(n, partitions.get());
  engine.add_observer(&conf);
  engine.add_observer(&qod);

  adversary::Composite adv;
  adversary::Continuous::Options w;
  w.inject_prob = 0.02;
  w.deadlines = {64};
  w.dest_min = 2;
  w.dest_max = 4;
  w.last_injection_round = 200;
  adv.add(std::make_unique<adversary::Continuous>(w));
  engine.set_adversary(&adv);
  engine.run(280);

  EXPECT_EQ(conf.leaks(), 0u);
  // Fragments do escape to curious processes by design (that is the whole
  // collaboration trick), but reconstructing any rumor requires a coalition
  // of more than tau curious processes.
  std::size_t rumors_checked = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto& cp = static_cast<const core::CongosProcess&>(engine.process(p));
    (void)cp;
  }
  // The auditor recorded every injected rumor; check coalition bounds.
  // (min_breaking_coalition == num_groups = tau+1 when all fragments escaped,
  //  SIZE_MAX when some group's fragment never left the destination set.)
  // We verify tau colluders never suffice.
  for (std::uint64_t seq = 1; seq < 20; ++seq) {
    for (ProcessId src = 0; src < n; ++src) {
      const RumorUid uid{src, seq};
      const std::size_t need = conf.min_breaking_coalition(uid);
      if (need == SIZE_MAX) continue;
      ++rumors_checked;
      EXPECT_GT(need, tau) << "rumor (" << src << "," << seq << ")";
    }
  }
  EXPECT_GT(rumors_checked, 0u);
}

TEST(Collusion, DegenerateTauFallsBackToDirect) {
  // tau >= n/log^2 n: Theorem 16's first case - everything goes direct.
  auto cfg = collusion_config(16, 4, 3000);  // 16/log2(16)^2 = 1 -> degenerate
  cfg.congos.allow_degenerate = true;
  ASSERT_TRUE(core::CongosProcess::is_degenerate(16, cfg.congos));
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_EQ(r.cg_injected_direct, r.injected);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
}

TEST(Collusion, HigherTauCostsMoreMessages) {
  // Theorem 16: the tau^2 factor. At small n we only check monotonicity.
  auto cfg1 = collusion_config(48, 1, 4000);
  auto cfg2 = collusion_config(48, 3, 4000);
  const auto r1 = run_scenario(cfg1);
  const auto r2 = run_scenario(cfg2);
  EXPECT_GT(r2.total_messages, r1.total_messages);
}

TEST(Collusion, SurvivesChurnWithTau2) {
  auto cfg = collusion_config(48, 2, 5000);
  cfg.churn = adversary::RandomChurn::Options{};
  cfg.churn->crash_prob = 0.003;
  cfg.churn->restart_prob = 0.05;
  cfg.churn->min_alive = 8;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
}

}  // namespace
}  // namespace congos
