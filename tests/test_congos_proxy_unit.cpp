// White-box unit tests of the Proxy[l] service state machine (Fig. 9),
// driven directly with a mock sender and scripted inputs - no engine.
//
// Geometry used throughout: dline = 256 -> block length 64, iteration length
// sqrt(256)+2 = 18, hence 3 whole iterations per block. Iteration k of block
// B occupies rounds 64B + 18k .. 64B + 18k + 17, with
//   round offset 0  - proxy requests,
//   round offset 1  - intra-group share via GroupGossip,
//   round offset 17 - acknowledgements.
#include "congos/proxy.h"

#include <gtest/gtest.h>

#include "partition/bit_partition.h"

namespace congos::core {
namespace {

constexpr std::size_t kN = 16;
constexpr Round kDline = 256;
constexpr Round kBlock = 64;
constexpr Round kIter = 18;

struct FakeSender final : sim::Sender {
  std::vector<sim::Envelope> sent;
  void send(sim::Envelope e) override { sent.push_back(std::move(e)); }
  void clear() { sent.clear(); }
  std::size_t count(sim::ServiceKind kind) const {
    std::size_t c = 0;
    for (const auto& e : sent) {
      if (e.tag.kind == kind) ++c;
    }
    return c;
  }
};

struct ShareRecord {
  Round when;
  sim::PayloadPtr body;
  Round deadline_at;
};

class ProxyFixture : public ::testing::Test {
 protected:
  ProxyFixture()
      : partitions_(partition::make_bit_partitions(kN)), rng_(42) {
    rebuild(/*self=*/0);
  }

  void rebuild(ProcessId self) {
    self_ = self;
    ProxyService::Hooks hooks;
    hooks.gossip_share = [this](Round now, sim::PayloadPtr body, Round deadline_at) {
      shares_.push_back(ShareRecord{now, std::move(body), deadline_at});
    };
    hooks.return_partials = [this](Round /*now*/, std::vector<Fragment> partials) {
      for (auto& f : partials) returned_.push_back(std::move(f));
    };
    hooks.alive_since = [this] { return alive_since_; };
    proxy_ = std::make_unique<ProxyService>(self, /*l=*/0, &partitions_[0], kDline,
                                            &cfg_, &rng_, std::move(hooks));
  }

  /// Runs send_phase for rounds [from, to].
  void run(Round from, Round to) {
    for (Round t = from; t <= to; ++t) proxy_->send_phase(t, sender_);
  }

  Fragment fragment_for_group(GroupIndex g, std::uint64_t seq = 1,
                              Round expires = 10 * kBlock) {
    Fragment f;
    f.meta.key = FragmentKey{RumorUid{self_, seq}, 0, g};
    f.meta.dest = DynamicBitset::from_indices(kN, {3});
    f.meta.expires_at = expires;
    f.meta.dline = kDline;
    f.meta.num_groups = 2;
    f.data = {1, 2, 3};
    return f;
  }

  partition::PartitionSet partitions_;
  CongosConfig cfg_;
  Rng rng_;
  ProcessId self_ = 0;
  Round alive_since_ = 0;
  FakeSender sender_;
  std::vector<ShareRecord> shares_;
  std::vector<Fragment> returned_;
  std::unique_ptr<ProxyService> proxy_;
};

TEST_F(ProxyFixture, IdleServiceSendsNothing) {
  run(0, 2 * kBlock);
  EXPECT_TRUE(sender_.sent.empty());
  EXPECT_TRUE(shares_.empty());
  EXPECT_FALSE(proxy_->active());
}

TEST_F(ProxyFixture, ActivationWaitsForBlockBoundaryAndUptime) {
  // Fragment enqueued mid-block 0; process alive since round 0, so it has
  // the required dline/4 uptime at the block-1 boundary.
  proxy_->enqueue(5, fragment_for_group(1));
  run(5, kBlock - 1);
  EXPECT_TRUE(sender_.sent.empty());  // still waiting for the block boundary
  run(kBlock, kBlock);                // block 1, iteration 0, round 1
  EXPECT_TRUE(proxy_->active());
  EXPECT_GT(sender_.count(sim::ServiceKind::kProxy), 0u);
}

TEST_F(ProxyFixture, RecentlyRestartedProcessStaysIdleForOneBlock) {
  alive_since_ = kBlock - 4;  // restarted 4 rounds before the boundary
  proxy_->enqueue(kBlock - 3, fragment_for_group(1));
  run(kBlock, 2 * kBlock - 1);
  EXPECT_TRUE(sender_.sent.empty());  // not alive for dline/4 at block 1
  run(2 * kBlock, 2 * kBlock);
  EXPECT_TRUE(proxy_->active());  // block 2: uptime satisfied, rumor kept
  EXPECT_GT(sender_.count(sim::ServiceKind::kProxy), 0u);
}

TEST_F(ProxyFixture, RequestsTargetOnlyTheFragmentGroup) {
  // Self = 0 is in group 0 of partition 0 (bit 0); the fragment belongs to
  // group 1, so every request must go to an odd id ([PROXY:CONFIDENTIAL]).
  proxy_->enqueue(0, fragment_for_group(1));
  run(kBlock, kBlock);
  ASSERT_GT(sender_.sent.size(), 0u);
  for (const auto& e : sender_.sent) {
    EXPECT_EQ(e.tag.kind, sim::ServiceKind::kProxy);
    EXPECT_EQ(partitions_[0].group_of(e.to), 1u);
    const auto* req = dynamic_cast<const ProxyRequestPayload*>(e.body.get());
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->dline, kDline);
    ASSERT_EQ(req->fragments.size(), 1u);
    EXPECT_EQ(req->fragments[0].meta.key.group, 1u);
  }
}

TEST_F(ProxyFixture, UnacknowledgedProxiesAreRetriedAndMarkedFailed) {
  // Shrink the fan-out to one target per iteration so the failed-proxy
  // exclusion is observable (at full fan-out the whole group is tried at
  // once and the exhausted pool legitimately resets).
  cfg_.fanout_c = 1e-9;
  proxy_->enqueue(0, fragment_for_group(1));
  run(kBlock, kBlock);  // iteration 0 requests
  std::vector<ProcessId> first_targets;
  for (const auto& e : sender_.sent) first_targets.push_back(e.to);
  ASSERT_EQ(first_targets.size(), 1u);
  sender_.clear();
  // No acks arrive. Iteration 1 round 0 = kBlock + kIter.
  run(kBlock + 1, kBlock + kIter);
  std::vector<ProcessId> second_targets;
  for (const auto& e : sender_.sent) {
    if (e.tag.kind == sim::ServiceKind::kProxy &&
        dynamic_cast<const ProxyRequestPayload*>(e.body.get()) != nullptr) {
      second_targets.push_back(e.to);
    }
  }
  ASSERT_GT(second_targets.size(), 0u);  // still active: retried
  // Failed proxies from iteration 0 are excluded in iteration 1.
  for (auto t : second_targets) {
    for (auto f : first_targets) EXPECT_NE(t, f);
  }
}

TEST_F(ProxyFixture, ExhaustedProxyPoolResetsToWholeGroup) {
  // With saturating fan-out every group member is tried (and unresponsive)
  // in iteration 0; iteration 1 must fall back to retrying the full group
  // rather than going silent.
  proxy_->enqueue(0, fragment_for_group(1));
  run(kBlock, kBlock);
  const auto first = sender_.count(sim::ServiceKind::kProxy);
  ASSERT_EQ(first, kN / 2);  // all of group 1
  sender_.clear();
  run(kBlock + 1, kBlock + kIter);
  EXPECT_EQ(sender_.count(sim::ServiceKind::kProxy), kN / 2);
}

TEST_F(ProxyFixture, AckSatisfiesGroupAndGoesIdle) {
  proxy_->enqueue(0, fragment_for_group(1));
  run(kBlock, kBlock);
  ASSERT_GT(sender_.sent.size(), 0u);
  const ProcessId acker = sender_.sent[0].to;
  sender_.clear();
  proxy_->on_ack(kBlock + kIter - 1, acker);
  // Iteration 1: the ack settles, all groups satisfied -> idle, no requests.
  run(kBlock + 1, kBlock + kIter);
  EXPECT_EQ(sender_.count(sim::ServiceKind::kProxy), 0u);
  EXPECT_FALSE(proxy_->active());
}

TEST_F(ProxyFixture, ProxySideCachesSharesAndAcks) {
  // This process receives a request for its own group (0).
  ProxyRequestPayload req;
  req.dline = kDline;
  req.fragments.push_back(fragment_for_group(0));
  proxy_->on_request(kBlock + 0, req, /*from=*/7);

  // Round 1 of the iteration: it shares the proxied fragment in-group.
  run(kBlock + 1, kBlock + 1);
  ASSERT_EQ(shares_.size(), 1u);
  const auto* share = dynamic_cast<const ProxyShareBody*>(shares_[0].body.get());
  ASSERT_NE(share, nullptr);
  ASSERT_EQ(share->proxied.size(), 1u);
  EXPECT_EQ(share->proxied[0].meta.key.group, 0u);
  EXPECT_EQ(shares_[0].deadline_at, kBlock + 1 + 16);  // sqrt(256)

  // Last round of the iteration: acknowledgement to the requester.
  run(kBlock + 2, kBlock + kIter - 1);
  ASSERT_EQ(sender_.count(sim::ServiceKind::kProxy), 1u);
  EXPECT_EQ(sender_.sent.back().to, 7u);
  EXPECT_NE(dynamic_cast<const ProxyAckPayload*>(sender_.sent.back().body.get()),
            nullptr);
}

TEST_F(ProxyFixture, DuplicateRequestsAckOnceAndCacheOnce) {
  ProxyRequestPayload req;
  req.dline = kDline;
  req.fragments.push_back(fragment_for_group(0));
  proxy_->on_request(kBlock, req, 7);
  proxy_->on_request(kBlock, req, 7);
  proxy_->on_request(kBlock, req, 9);
  run(kBlock + 1, kBlock + kIter - 1);
  ASSERT_EQ(shares_.size(), 1u);
  const auto* share = dynamic_cast<const ProxyShareBody*>(shares_[0].body.get());
  ASSERT_EQ(share->proxied.size(), 1u);  // deduplicated by fragment key
  EXPECT_EQ(sender_.count(sim::ServiceKind::kProxy), 2u);  // acks to 7 and 9
}

TEST_F(ProxyFixture, SharedFragmentsAreReturnedAtNextBlock) {
  ProxyShareBody share;
  share.dline = kDline;
  share.from = 2;
  share.proxied.push_back(fragment_for_group(0));
  proxy_->on_share(kBlock + 5, share);
  EXPECT_TRUE(returned_.empty());
  run(2 * kBlock, 2 * kBlock);  // next block boundary returns partials
  ASSERT_EQ(returned_.size(), 1u);
  EXPECT_EQ(returned_[0].meta.key.group, 0u);
}

TEST_F(ProxyFixture, ExpiredFragmentsAreDroppedEverywhere) {
  proxy_->enqueue(0, fragment_for_group(1, 1, /*expires=*/kBlock - 1));
  run(kBlock, kBlock + kIter);
  EXPECT_EQ(sender_.count(sim::ServiceKind::kProxy), 0u);  // nothing to place

  ProxyShareBody share;
  share.dline = kDline;
  share.from = 2;
  share.proxied.push_back(fragment_for_group(0, 2, /*expires=*/kBlock));
  proxy_->on_share(2 * kBlock - 1, share);
  returned_.clear();
  run(2 * kBlock, 2 * kBlock);
  EXPECT_TRUE(returned_.empty());  // expired before the return boundary
}

TEST_F(ProxyFixture, ResetWipesEverything) {
  proxy_->enqueue(0, fragment_for_group(1));
  ProxyRequestPayload req;
  req.dline = kDline;
  req.fragments.push_back(fragment_for_group(0));
  proxy_->on_request(3, req, 7);
  proxy_->reset(10);
  run(kBlock, 3 * kBlock);
  EXPECT_TRUE(sender_.sent.empty());
  EXPECT_TRUE(shares_.empty());
  EXPECT_TRUE(returned_.empty());
}

TEST_F(ProxyFixture, OwnGroupFragmentEnqueueAborts) {
  EXPECT_DEATH(proxy_->enqueue(0, fragment_for_group(0)),
               "own-group fragments");
}

}  // namespace
}  // namespace congos::core
