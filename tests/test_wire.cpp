// Wire codec tests (DESIGN.md section 11): per-kind round-trips over
// randomized contents, the golden v1 byte-layout pin, rejection of
// truncated/corrupted frames, the compression claims (delta gids, batched
// fragment framing) and a bounded decode fuzz (CI runs it under ASan/UBSan
// with CONGOS_WIRE_FUZZ_ITERS raised).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/baseline_payload.h"
#include "common/rng.h"
#include "congos/fragment.h"
#include "gossip/continuous_gossip.h"
#include "net/framing.h"
#include "wire/compress.h"
#include "wire/envelope.h"
#include "wire/payload_codec.h"
#include "wire/wire.h"

namespace congos {
namespace {

int fuzz_iters() {
  if (const char* env = std::getenv("CONGOS_WIRE_FUZZ_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 256;
}

DynamicBitset rand_bits(Rng& rng, std::size_t n) {
  DynamicBitset b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.3)) b.set(i);
  }
  return b;
}

std::vector<std::uint8_t> rand_data(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> v(rng.next_below(max_len + 1));
  if (!v.empty()) rng.fill_bytes(v.data(), v.size());
  return v;
}

sim::Rumor rand_rumor(Rng& rng) {
  sim::Rumor r;
  r.uid.source = static_cast<ProcessId>(rng.next_below(1000));
  r.uid.seq = rng.next_below(1u << 20);
  r.deadline = static_cast<Round>(rng.next_below(512));
  r.injected_at = static_cast<Round>(rng.next_below(4096));
  r.dest = rand_bits(rng, 16 + rng.next_below(120));
  r.data = rand_data(rng, 64);
  return r;
}

core::Fragment rand_fragment(Rng& rng) {
  core::Fragment f;
  f.meta.key.rumor = RumorUid{static_cast<ProcessId>(rng.next_below(1000)),
                              rng.next_below(1u << 20)};
  f.meta.key.partition = static_cast<PartitionIndex>(rng.next_below(8));
  f.meta.key.group = static_cast<GroupIndex>(rng.next_below(4));
  f.meta.dest = rand_bits(rng, 16 + rng.next_below(120));
  f.meta.expires_at = static_cast<Round>(rng.next_below(4096));
  f.meta.dline = static_cast<Round>(1 << rng.next_below(8));
  f.meta.num_groups = static_cast<GroupIndex>(2 + rng.next_below(3));
  f.data = rand_data(rng, 48);
  return f;
}

gossip::GossipRumor rand_gossip_rumor(Rng& rng, std::uint64_t gid) {
  gossip::GossipRumor r;
  r.gid = gid;
  r.origin = static_cast<ProcessId>(rng.next_below(1000));
  r.deadline_at = static_cast<Round>(rng.next_below(4096));
  r.dest = rand_bits(rng, 16 + rng.next_below(120));
  if (rng.chance(0.6)) {
    auto body = std::make_shared<core::FragmentBody>();
    body->fragment = rand_fragment(rng);
    r.body = body;
  }
  return r;
}

core::Hit rand_hit(Rng& rng) {
  core::Hit h;
  h.target = static_cast<ProcessId>(rng.next_below(1000));
  h.rumor = RumorUid{static_cast<ProcessId>(rng.next_below(1000)),
                     rng.next_below(1u << 20)};
  return h;
}

/// Random payload of the given kind (never kOpaque).
sim::PayloadPtr rand_payload(Rng& rng, sim::PayloadKind kind) {
  using sim::PayloadKind;
  switch (kind) {
    case PayloadKind::kOpaque:
      break;
    case PayloadKind::kGossipMsg: {
      auto p = std::make_shared<gossip::GossipMsg>();
      std::uint64_t gid = rng.next_below(1u << 20);
      const std::size_t k = rng.next_below(5);
      for (std::size_t i = 0; i < k; ++i) {
        p->rumors.push_back(rand_gossip_rumor(rng, gid));
        gid += 1 + rng.next_below(10);
      }
      return p;
    }
    case PayloadKind::kGossipAck: {
      auto p = std::make_shared<gossip::GossipAck>();
      // arbitrary order on purpose: ack deltas are zigzag-signed
      const std::size_t k = rng.next_below(8);
      for (std::size_t i = 0; i < k; ++i) p->gids.push_back(rng.next_below(1u << 24));
      return p;
    }
    case PayloadKind::kGossipPull:
      return std::make_shared<gossip::GossipPull>();
    case PayloadKind::kProxyRequest: {
      auto p = std::make_shared<core::ProxyRequestPayload>();
      p->dline = static_cast<Round>(1 << rng.next_below(8));
      const std::size_t k = rng.next_below(4);
      for (std::size_t i = 0; i < k; ++i) p->fragments.push_back(rand_fragment(rng));
      return p;
    }
    case PayloadKind::kProxyAck: {
      auto p = std::make_shared<core::ProxyAckPayload>();
      p->dline = static_cast<Round>(1 << rng.next_below(8));
      return p;
    }
    case PayloadKind::kPartials: {
      auto p = std::make_shared<core::PartialsPayload>();
      p->dline = static_cast<Round>(1 << rng.next_below(8));
      const std::size_t k = rng.next_below(4);
      for (std::size_t i = 0; i < k; ++i) p->fragments.push_back(rand_fragment(rng));
      return p;
    }
    case PayloadKind::kDirectRumor: {
      auto p = std::make_shared<core::DirectRumorPayload>();
      p->rumor = rand_rumor(rng);
      return p;
    }
    case PayloadKind::kPartialsAck: {
      auto p = std::make_shared<core::PartialsAckPayload>();
      p->dline = static_cast<Round>(1 << rng.next_below(8));
      return p;
    }
    case PayloadKind::kDirectAck: {
      auto p = std::make_shared<core::DirectAckPayload>();
      p->rumor = RumorUid{static_cast<ProcessId>(rng.next_below(1000)),
                          rng.next_below(1u << 20)};
      return p;
    }
    case PayloadKind::kFragment: {
      auto p = std::make_shared<core::FragmentBody>();
      p->fragment = rand_fragment(rng);
      return p;
    }
    case PayloadKind::kProxyShare: {
      auto p = std::make_shared<core::ProxyShareBody>();
      p->dline = static_cast<Round>(1 << rng.next_below(8));
      p->block = rng.next_below(16);
      p->from = static_cast<ProcessId>(rng.next_below(1000));
      const std::size_t k = rng.next_below(3);
      for (std::size_t i = 0; i < k; ++i) p->proxied.push_back(rand_fragment(rng));
      const std::size_t m = rng.next_below(4);
      for (std::size_t i = 0; i < m; ++i) {
        p->failed_proxies.push_back(static_cast<ProcessId>(rng.next_below(1000)));
      }
      return p;
    }
    case PayloadKind::kHitSetShare: {
      auto p = std::make_shared<core::HitSetShareBody>();
      p->dline = static_cast<Round>(1 << rng.next_below(8));
      p->block = rng.next_below(16);
      p->from = static_cast<ProcessId>(rng.next_below(1000));
      const std::size_t k = rng.next_below(6);
      for (std::size_t i = 0; i < k; ++i) p->hits.push_back(rand_hit(rng));
      return p;
    }
    case PayloadKind::kDistributionReport: {
      auto p = std::make_shared<core::DistributionReportBody>();
      p->reporter = static_cast<ProcessId>(rng.next_below(1000));
      p->partition = static_cast<PartitionIndex>(rng.next_below(8));
      p->group = static_cast<GroupIndex>(rng.next_below(4));
      p->dline = static_cast<Round>(1 << rng.next_below(8));
      const std::size_t k = rng.next_below(6);
      for (std::size_t i = 0; i < k; ++i) p->hits.push_back(rand_hit(rng));
      return p;
    }
    case PayloadKind::kBaselineRumor: {
      auto p = std::make_shared<baseline::BaselineRumorPayload>();
      p->rumor = rand_rumor(rng);
      return p;
    }
    case PayloadKind::kBaselineBatch: {
      auto p = std::make_shared<baseline::BaselineBatchPayload>();
      const std::size_t k = rng.next_below(4);
      for (std::size_t i = 0; i < k; ++i) p->rumors.push_back(rand_rumor(rng));
      return p;
    }
    case PayloadKind::kStrongAck: {
      auto p = std::make_shared<baseline::StrongAckPayload>();
      const std::size_t k = rng.next_below(6);
      for (std::size_t i = 0; i < k; ++i) {
        p->uids.push_back(RumorUid{static_cast<ProcessId>(rng.next_below(1000)),
                                   rng.next_below(1u << 20)});
      }
      return p;
    }
  }
  return nullptr;
}

sim::Envelope rand_envelope(Rng& rng, sim::PayloadPtr body) {
  sim::Envelope e;
  e.from = static_cast<ProcessId>(rng.next_below(1u << 16));
  e.to = static_cast<ProcessId>(rng.next_below(1u << 16));
  e.tag.kind = static_cast<sim::ServiceKind>(
      rng.next_below(static_cast<std::uint64_t>(sim::ServiceKind::kOther) + 1));
  e.tag.partition = static_cast<PartitionIndex>(rng.next_below(8));
  e.body = std::move(body);
  return e;
}

/// Encode, size-check, decode, re-encode: canonical encodings make the
/// re-encode byte-identical, which subsumes field-by-field equality.
void expect_roundtrip(const sim::Envelope& e, Round round) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(wire::encode_envelope(e, round, &bytes));
  EXPECT_EQ(bytes.size(), wire::encoded_envelope_size(e, round));
  wire::DecodedEnvelope d;
  std::string err;
  ASSERT_TRUE(wire::decode_envelope(bytes, &d, &err)) << err;
  EXPECT_EQ(d.version, wire::kWireFormatVersion);
  EXPECT_EQ(d.round, round);
  EXPECT_EQ(d.env.from, e.from);
  EXPECT_EQ(d.env.to, e.to);
  EXPECT_TRUE(d.env.tag == e.tag);
  EXPECT_EQ(e.body == nullptr, d.env.body == nullptr);
  if (e.body != nullptr && d.env.body != nullptr) {
    EXPECT_EQ(d.env.body->kind(), e.body->kind());
    EXPECT_EQ(d.env.body->encoded_size(), e.body->encoded_size());
  }
  std::vector<std::uint8_t> again;
  ASSERT_TRUE(wire::encode_envelope(d.env, d.round, &again));
  EXPECT_EQ(bytes, again);
}

/// Overwrites byte `i` and repairs the trailing checksum, so decode reaches
/// the structural validators instead of stopping at the checksum.
std::vector<std::uint8_t> patched(std::vector<std::uint8_t> bytes, std::size_t i,
                                  std::uint8_t value) {
  bytes[i] = value;
  const std::size_t n = bytes.size() - wire::kChecksumBytes;
  const std::uint64_t h = wire::fnv1a(bytes.data(), n);
  for (std::size_t b = 0; b < wire::kChecksumBytes; ++b) {
    bytes[n + b] = static_cast<std::uint8_t>(h >> (8 * b));
  }
  return bytes;
}

// -- sink primitives --------------------------------------------------------

TEST(WireSinks, VarintRoundTrip) {
  const std::uint64_t cases[] = {0,      1,        127,        128,
                                 16383,  16384,    0xFFFFFFFF, 1ull << 62,
                                 ~0ull,  0x80,     300,        (1ull << 56) - 1};
  for (std::uint64_t v : cases) {
    wire::WriteSink w;
    w.varint(v);
    EXPECT_EQ(w.data().size(), wire::varint_size(v));
    wire::ReadSink r(w.data());
    std::uint64_t out = 0;
    r.varint(out);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(out, v);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(WireSinks, ZigzagRoundTrip) {
  const std::int64_t cases[] = {0,  -1, 1, -2, 63, -64, kNoRound,
                                INT64_MAX, INT64_MIN};
  for (std::int64_t v : cases) {
    EXPECT_EQ(wire::zigzag_decode(wire::zigzag_encode(v)), v);
    wire::WriteSink w;
    w.zigzag(v);
    wire::ReadSink r(w.data());
    std::int64_t out = 0;
    r.zigzag(out);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(out, v);
  }
}

TEST(WireSinks, NonMinimalVarintRejected) {
  // {0x80, 0x00} is a two-byte encoding of 0: canonical codecs reject it
  // (otherwise decode→re-encode would not be byte-identical).
  const std::vector<std::uint8_t> padded = {0x80, 0x00};
  wire::ReadSink r(padded);
  std::uint64_t v = 0;
  r.varint(v);
  EXPECT_FALSE(r.ok());
}

TEST(WireSinks, OverflowingVarintRejected) {
  // 10 continuation bytes
  const std::vector<std::uint8_t> runaway(10, 0xFF);
  wire::ReadSink r1(runaway);
  std::uint64_t v = 0;
  r1.varint(v);
  EXPECT_FALSE(r1.ok());
  // 65 significant bits
  std::vector<std::uint8_t> wide(9, 0xFF);
  wide.push_back(0x02);
  wire::ReadSink r2(wide);
  r2.varint(v);
  EXPECT_FALSE(r2.ok());
}

TEST(WireSinks, Varint32RangeChecked) {
  wire::WriteSink w;
  w.varint(0x1FFFFFFFFull);
  wire::ReadSink r(w.data());
  std::uint32_t v = 0;
  r.varint32(v);
  EXPECT_FALSE(r.ok());
}

TEST(WireSinks, BitsetRoundTripAndPaddingEnforced) {
  Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    const DynamicBitset b = rand_bits(rng, 1 + rng.next_below(200));
    wire::WriteSink w;
    w.bitset(b);
    wire::ReadSink r(w.data());
    DynamicBitset out;
    r.bitset(out);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(out == b);
    EXPECT_EQ(r.remaining(), 0u);
  }
  // 9 declared bits but bit 10 set in the second byte: non-canonical.
  const std::vector<std::uint8_t> padded = {0x09, 0x00, 0x04};
  wire::ReadSink r(padded);
  DynamicBitset out;
  r.bitset(out);
  EXPECT_FALSE(r.ok());
}

TEST(WireSinks, SequenceCountBeyondBufferRejected) {
  // A claimed 1000-element sequence inside a 3-byte buffer must be rejected
  // before any allocation (every v1 element occupies >= 1 byte).
  wire::WriteSink w;
  w.varint(1000);
  wire::ReadSink r(w.data());
  std::vector<std::uint64_t> v;
  r.seq(v);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(v.empty());
}

// -- envelope round-trips ---------------------------------------------------

TEST(WireEnvelope, RoundTripEveryKindRandomized) {
  Rng rng(0xC0DEC);
  for (int k = 1; k <= static_cast<int>(sim::PayloadKind::kStrongAck); ++k) {
    for (int rep = 0; rep < 16; ++rep) {
      auto body = rand_payload(rng, static_cast<sim::PayloadKind>(k));
      ASSERT_NE(body, nullptr);
      const Round round = static_cast<Round>(rng.next_below(100000));
      expect_roundtrip(rand_envelope(rng, std::move(body)), round);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(WireEnvelope, NullBodyRoundTrips) {
  Rng rng(5);
  expect_roundtrip(rand_envelope(rng, nullptr), 42);
}

TEST(WireEnvelope, OpaqueBodyRefused) {
  sim::Envelope e;
  e.from = 0;
  e.to = 1;
  e.body = std::make_shared<sim::Payload>();  // kOpaque test double
  std::vector<std::uint8_t> bytes;
  EXPECT_FALSE(wire::encode_envelope(e, 0, &bytes));
}

// Pins the v1 layout byte for byte. If this test breaks, the format changed:
// bump wire::kWireFormatVersion and keep a v1 decoder instead.
TEST(WireEnvelope, GoldenV1Layout) {
  auto ack = std::make_shared<core::DirectAckPayload>();
  ack->rumor = RumorUid{7, 300};
  sim::Envelope e;
  e.from = 1;
  e.to = 2;
  e.tag.kind = sim::ServiceKind::kFallback;
  e.tag.partition = 3;
  e.body = ack;

  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(wire::encode_envelope(e, /*round=*/5, &bytes));

  const std::vector<std::uint8_t> expected_prefix = {
      0x01,  // version 1
      0x09,  // payload kind kDirectAck
      0x04,  // service kind kFallback
      0x03,  // partition 3
      0x01,  // from 1
      0x02,  // to 2
      0x0A,  // round 5, zigzag -> 10
      0x03,  // body length 3
      0x07,  // body: ack source 7
      0xAC, 0x02,  // body: ack seq 300 as varint
  };
  ASSERT_EQ(bytes.size(), expected_prefix.size() + wire::kChecksumBytes);
  EXPECT_TRUE(std::equal(expected_prefix.begin(), expected_prefix.end(),
                         bytes.begin()));
  const std::uint64_t sum =
      wire::fnv1a(expected_prefix.data(), expected_prefix.size());
  for (std::size_t b = 0; b < wire::kChecksumBytes; ++b) {
    EXPECT_EQ(bytes[expected_prefix.size() + b],
              static_cast<std::uint8_t>(sum >> (8 * b)));
  }
  EXPECT_EQ(wire::encoded_envelope_size(e, 5), bytes.size());
}

// -- rejection --------------------------------------------------------------

std::vector<std::uint8_t> complex_frame() {
  Rng rng(0xBEEF);
  auto body = rand_payload(rng, sim::PayloadKind::kProxyShare);
  std::vector<std::uint8_t> bytes;
  sim::Envelope e = rand_envelope(rng, std::move(body));
  EXPECT_TRUE(wire::encode_envelope(e, 17, &bytes));
  return bytes;
}

TEST(WireReject, EveryTruncationFails) {
  const auto bytes = complex_frame();
  wire::DecodedEnvelope d;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(wire::decode_envelope(bytes.data(), len, &d))
        << "accepted a frame truncated to " << len << " bytes";
  }
}

TEST(WireReject, EveryBitFlipFails) {
  const auto bytes = complex_frame();
  wire::DecodedEnvelope d;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutant = bytes;
      mutant[i] = static_cast<std::uint8_t>(mutant[i] ^ (1u << bit));
      EXPECT_FALSE(wire::decode_envelope(mutant, &d))
          << "accepted a frame with byte " << i << " bit " << bit << " flipped";
    }
  }
}

TEST(WireReject, BadEnumTagsAndVersions) {
  const auto bytes = complex_frame();
  wire::DecodedEnvelope d;
  std::string err;
  // byte 0: version, byte 1: payload kind, byte 2: service kind
  EXPECT_FALSE(wire::decode_envelope(patched(bytes, 0, 2), &d, &err));
  EXPECT_EQ(err, "unsupported wire format version");
  EXPECT_FALSE(wire::decode_envelope(
      patched(bytes, 1, static_cast<std::uint8_t>(sim::PayloadKind::kStrongAck) + 1),
      &d, &err));
  EXPECT_EQ(err, "unknown payload kind");
  EXPECT_FALSE(wire::decode_envelope(patched(bytes, 2, 200), &d, &err));
  EXPECT_EQ(err, "unknown service kind");
}

// -- compression claims -----------------------------------------------------

TEST(WireCompression, SortedGidsDeltaEncode) {
  gossip::GossipMsg msg;
  Rng rng(3);
  std::uint64_t gid = 1'000'000;
  for (int i = 0; i < 64; ++i) {
    gossip::GossipRumor r;
    r.gid = gid;
    gid += 1 + rng.next_below(4);
    r.origin = static_cast<ProcessId>(i % 16);
    r.deadline_at = 128;
    r.dest = rand_bits(rng, 32);
    msg.rumors.push_back(r);
  }
  // Delta-encoded gids: ~1 byte per rumor instead of the modeled 8. The
  // whole batch must come in well under half the fixed-width model.
  EXPECT_LT(msg.encoded_size() * 2, msg.modeled_size());
  // And the batch still round-trips losslessly inside an envelope.
  Rng erng(4);
  expect_roundtrip(rand_envelope(erng, std::make_shared<gossip::GossipMsg>(msg)), 9);
}

TEST(WireCompression, UnsortedGidsStillLossless) {
  gossip::GossipMsg msg;
  Rng rng(6);
  const std::uint64_t gids[] = {500, 7, 1u << 30, 3, 0};  // deliberately unsorted
  for (std::uint64_t g : gids) {
    gossip::GossipRumor r;
    r.gid = g;
    r.origin = 1;
    r.dest = rand_bits(rng, 16);
    msg.rumors.push_back(r);
  }
  expect_roundtrip(rand_envelope(rng, std::make_shared<gossip::GossipMsg>(msg)), 1);
}

TEST(WireCompression, FragmentBatchSharesRumorMeta) {
  Rng rng(11);
  const core::Fragment base = rand_fragment(rng);
  auto shared_meta = std::make_shared<core::ProxyRequestPayload>();
  auto distinct_meta = std::make_shared<core::ProxyRequestPayload>();
  shared_meta->dline = distinct_meta->dline = base.meta.dline;
  for (std::uint32_t i = 0; i < 6; ++i) {
    core::Fragment f = base;  // same rumor: uid/dest/expiry/dline/num_groups
    f.meta.key.group = i;
    shared_meta->fragments.push_back(f);
    f.meta.key.rumor.seq = base.meta.key.rumor.seq + 1 + i;  // distinct rumor
    distinct_meta->fragments.push_back(f);
  }
  // Same fragment count and data bytes; the shared-header framing must beat
  // re-encoding the full metadata per fragment by a wide margin.
  EXPECT_LT(shared_meta->encoded_size() + 5 * base.meta.dest.byte_size(),
            distinct_meta->encoded_size());
  expect_roundtrip(rand_envelope(rng, shared_meta), 3);
  expect_roundtrip(rand_envelope(rng, distinct_meta), 3);
}

// -- fuzz -------------------------------------------------------------------

TEST(WireFuzz, RandomBuffersNeverCrash) {
  Rng rng(0xF022);
  const int iters = fuzz_iters();
  wire::DecodedEnvelope d;
  for (int i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> buf(rng.next_below(300));
    if (!buf.empty()) rng.fill_bytes(buf.data(), buf.size());
    (void)wire::decode_envelope(buf, &d);  // must neither crash nor leak
  }
}

// -- datagram framing (net/framing.h) ---------------------------------------
//
// How envelope frames ride inside UDP datagrams: length-prefixed and
// coalesced. The decode side must handle exactly what a real socket hands
// it - several frames in one datagram, and datagrams cut off mid-stream.

TEST(WireDatagram, TwoCoalescedFramesDecodeIndependently) {
  Rng rng(0xD06);
  const sim::Envelope e1 =
      rand_envelope(rng, rand_payload(rng, sim::PayloadKind::kFragment));
  const sim::Envelope e2 =
      rand_envelope(rng, rand_payload(rng, sim::PayloadKind::kGossipMsg));
  std::vector<std::uint8_t> datagram;
  ASSERT_TRUE(net::append_frame(e1, 11, &datagram));
  ASSERT_TRUE(net::append_frame(e2, 12, &datagram));

  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame);
  wire::DecodedEnvelope d1;
  std::string err;
  ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &d1, &err)) << err;
  EXPECT_EQ(d1.round, 11);
  EXPECT_EQ(d1.env.from, e1.from);
  ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame);
  wire::DecodedEnvelope d2;
  ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &d2, &err)) << err;
  EXPECT_EQ(d2.round, 12);
  EXPECT_EQ(d2.env.from, e2.from);
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kDone);
}

TEST(WireDatagram, TruncationMidSecondFrameKeepsFirstFrame) {
  Rng rng(0xD07);
  const sim::Envelope e1 =
      rand_envelope(rng, rand_payload(rng, sim::PayloadKind::kProxyRequest));
  const sim::Envelope e2 =
      rand_envelope(rng, rand_payload(rng, sim::PayloadKind::kPartials));
  std::vector<std::uint8_t> datagram;
  ASSERT_TRUE(net::append_frame(e1, 1, &datagram));
  const std::size_t first_end = datagram.size();
  ASSERT_TRUE(net::append_frame(e2, 2, &datagram));

  // Every cut inside the second frame: the first frame must still decode,
  // then the splitter must report truncation - never a bogus short frame.
  for (std::size_t cut = first_end + 1; cut < datagram.size(); ++cut) {
    net::FrameSplitter sp(std::span<const std::uint8_t>(datagram.data(), cut));
    std::span<const std::uint8_t> frame;
    ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame) << cut;
    wire::DecodedEnvelope d;
    ASSERT_TRUE(wire::decode_envelope(frame.data(), frame.size(), &d)) << cut;
    EXPECT_EQ(d.env.from, e1.from);
    EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kTruncated) << cut;
  }
}

TEST(WireDatagram, TruncationMidLengthPrefixReported) {
  // A multi-byte length prefix cut after its continuation byte: truncated,
  // not malformed (the bytes seen so far are a valid prefix of a prefix).
  std::vector<std::uint8_t> datagram = {0x80 | 0x12};  // continuation, no end
  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kTruncated);
}

TEST(WireDatagram, NonMinimalLengthPrefixMalformed) {
  // 0x81 0x00 is the non-minimal encoding of length 1; canonical varints
  // reject it, and the splitter must classify it as malformed (corrupted
  // stream) rather than truncated (more bytes pending).
  std::vector<std::uint8_t> datagram = {0x81, 0x00, 0xAB};
  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kMalformed);
}

TEST(WireDatagram, CorruptFrameBodyCaughtByEnvelopeChecksum) {
  // The length prefix survives but a body byte is flipped: the splitter
  // yields the frame (framing cannot know), and the envelope checksum
  // rejects it - the layered design's division of labour.
  Rng rng(0xD08);
  const sim::Envelope e =
      rand_envelope(rng, rand_payload(rng, sim::PayloadKind::kDirectRumor));
  std::vector<std::uint8_t> datagram;
  ASSERT_TRUE(net::append_frame(e, 3, &datagram));
  datagram[datagram.size() / 2] ^= 0x40;
  net::FrameSplitter sp(datagram);
  std::span<const std::uint8_t> frame;
  ASSERT_EQ(sp.next(&frame), net::FrameSplitter::Status::kFrame);
  wire::DecodedEnvelope d;
  EXPECT_FALSE(wire::decode_envelope(frame.data(), frame.size(), &d));
  EXPECT_EQ(sp.next(&frame), net::FrameSplitter::Status::kDone);
}

// -- LZ4 datagram container (wire/compress.h + net/framing.h) ----------------

TEST(WireLz4, RawApiRoundTripsAndEnforcesExactLength) {
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  Rng rng(0x124);
  for (int i = 0; i < 32; ++i) {
    // Mixed compressibility: runs of a repeated byte with random islands.
    std::vector<std::uint8_t> src(64 + rng.next_below(2000));
    for (std::size_t j = 0; j < src.size(); ++j) {
      src[j] = rng.chance(0.8) ? 0x55 : static_cast<std::uint8_t>(rng.next_below(256));
    }
    std::vector<std::uint8_t> packed(wire::lz4_compress_bound(src.size()));
    const std::size_t written = wire::lz4_compress_raw(
        src.data(), src.size(), packed.data(), packed.size());
    ASSERT_GT(written, 0u);
    std::vector<std::uint8_t> back(src.size());
    ASSERT_TRUE(wire::lz4_decompress_raw(packed.data(), written, back.data(),
                                         src.size()));
    EXPECT_EQ(back, src);
    // Wrong declared length (one short) must be rejected, not truncated.
    if (src.size() > 1) {
      std::vector<std::uint8_t> shorter(src.size() - 1);
      EXPECT_FALSE(wire::lz4_decompress_raw(packed.data(), written,
                                            shorter.data(), shorter.size()));
    }
  }
}

TEST(WireFuzz, UnwrapDatagramNeverCrashesOnRandomBuffers) {
  // The unwrap layer sees raw socket bytes before any checksum: random
  // buffers - including ones starting with the compressed marker - must be
  // classified without crashing, over-reading, or unbounded allocation.
  Rng rng(0xF023);
  const int iters = fuzz_iters();
  std::vector<std::uint8_t> scratch;
  for (int i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> buf(rng.next_below(300));
    if (!buf.empty()) rng.fill_bytes(buf.data(), buf.size());
    if (!buf.empty() && rng.chance(0.5)) {
      buf[0] = net::kCompressedDatagramMarker;  // force the container path
    }
    std::span<const std::uint8_t> frames;
    const net::DatagramKind kind = net::unwrap_datagram(buf, &scratch, &frames);
    if (kind == net::DatagramKind::kPlain) {
      EXPECT_EQ(frames.data(), buf.data());
    }
    // Whatever came out feeds the splitter without incident.
    net::FrameSplitter sp(frames);
    std::span<const std::uint8_t> frame;
    while (sp.next(&frame) == net::FrameSplitter::Status::kFrame) {
      wire::DecodedEnvelope d;
      (void)wire::decode_envelope(frame.data(), frame.size(), &d);
    }
  }
}

TEST(WireFuzz, MutatedCompressedContainersNeverCrash) {
  if (!wire::lz4_available()) GTEST_SKIP() << "LZ4 not available";
  Rng rng(0xF024);
  // A real multi-frame datagram, compressed, then mutated: every outcome is
  // acceptable except a crash or a silently-corrupt decoded envelope.
  std::vector<std::uint8_t> datagram;
  const sim::Envelope e1 =
      rand_envelope(rng, rand_payload(rng, sim::PayloadKind::kGossipMsg));
  const sim::Envelope e2 =
      rand_envelope(rng, rand_payload(rng, sim::PayloadKind::kFragment));
  // Repeated frames make the datagram compressible regardless of what the
  // randomized payloads drew.
  for (int rep = 0; rep < 4; ++rep) {
    ASSERT_TRUE(net::append_frame(e1, 7, &datagram));
    ASSERT_TRUE(net::append_frame(e2, 7, &datagram));
  }
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(net::compress_datagram(&datagram, &scratch));
  const int iters = fuzz_iters();
  std::vector<std::uint8_t> us;
  for (int i = 0; i < iters; ++i) {
    auto mutant = datagram;
    const std::size_t mutations = 1 + rng.next_below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      mutant[rng.next_below(mutant.size())] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
    if (rng.chance(0.3)) {
      mutant.resize(rng.next_below(mutant.size()) + 1);  // truncate too
    }
    std::span<const std::uint8_t> frames;
    if (net::unwrap_datagram(mutant, &us, &frames) ==
        net::DatagramKind::kMalformed) {
      continue;
    }
    net::FrameSplitter sp(frames);
    std::span<const std::uint8_t> frame;
    while (sp.next(&frame) == net::FrameSplitter::Status::kFrame) {
      wire::DecodedEnvelope d;
      if (wire::decode_envelope(frame.data(), frame.size(), &d)) {
        // Accepted frames must re-encode cleanly (same contract as the
        // plain-frame mutation fuzz below).
        std::vector<std::uint8_t> again;
        ASSERT_TRUE(wire::encode_envelope(d.env, d.round, &again));
      }
    }
  }
}

TEST(WireFuzz, MutatedFramesWithRepairedChecksums) {
  // Corruption with a *repaired* checksum drives decode past the checksum
  // into the structural validators. An accepted mutant is allowed (the
  // mutation may be semantically harmless) but must re-encode and re-decode
  // cleanly — no accepted frame may put a payload into an unserializable
  // state.
  const auto bytes = complex_frame();
  Rng rng(0xF0F0);
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    auto mutant = bytes;
    const std::size_t mutations = 1 + rng.next_below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t at = rng.next_below(mutant.size() - wire::kChecksumBytes);
      mutant[at] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    mutant = patched(mutant, 0, mutant[0]);  // repair checksum only
    wire::DecodedEnvelope d;
    if (!wire::decode_envelope(mutant, &d)) continue;
    std::vector<std::uint8_t> again;
    ASSERT_TRUE(wire::encode_envelope(d.env, d.round, &again));
    wire::DecodedEnvelope d2;
    std::string err;
    ASSERT_TRUE(wire::decode_envelope(again, &d2, &err)) << err;
  }
}

}  // namespace
}  // namespace congos
