#include "coding/xor_share.h"

#include <gtest/gtest.h>

#include <tuple>

namespace congos::coding {
namespace {

Bytes make_data(std::size_t len, std::uint8_t seed = 0x5A) {
  Bytes d(len);
  for (std::size_t i = 0; i < len; ++i) d[i] = static_cast<std::uint8_t>(seed + i * 7);
  return d;
}

class SplitCombineSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SplitCombineSweep, RoundTrips) {
  const auto [k, len] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 1000 + len));
  const Bytes data = make_data(len);
  auto frags = split(data, k, rng);
  ASSERT_EQ(frags.size(), k);
  for (const auto& f : frags) EXPECT_EQ(f.size(), len);
  EXPECT_EQ(combine(frags), data);
}

INSTANTIATE_TEST_SUITE_P(
    KAndLength, SplitCombineSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 7, 16),
                       ::testing::Values(0, 1, 7, 8, 64, 1000)));

TEST(XorShare, OrderIndependentCombine) {
  Rng rng(1);
  const Bytes data = make_data(64);
  auto frags = split(data, 4, rng);
  std::swap(frags[0], frags[3]);
  std::swap(frags[1], frags[2]);
  EXPECT_EQ(combine(frags), data);
}

TEST(XorShare, ProperSubsetDoesNotReconstruct) {
  Rng rng(2);
  const Bytes data = make_data(64);
  for (std::size_t k : {2u, 3u, 5u}) {
    auto frags = split(data, k, rng);
    // Every proper non-empty subset XORs to something != data (holds with
    // probability 1 - 2^-512 per subset for random shares).
    for (std::size_t mask = 1; mask + 1 < (1u << k); ++mask) {
      std::vector<Bytes> subset;
      for (std::size_t i = 0; i < k; ++i) {
        if (mask & (1u << i)) subset.push_back(frags[i]);
      }
      EXPECT_NE(combine(subset), data) << "k=" << k << " mask=" << mask;
    }
  }
}

TEST(XorShare, SingleFragmentLooksRandom) {
  // Each of the first k-1 fragments is a fresh uniform string: bit balance
  // should be ~50% over a large fragment.
  Rng rng(3);
  const Bytes data(8192, 0x00);  // all-zero plaintext: any bias would show
  auto frags = split(data, 3, rng);
  for (std::size_t i = 0; i < 2; ++i) {
    std::size_t ones = 0;
    for (auto b : frags[i]) ones += static_cast<std::size_t>(__builtin_popcount(b));
    const double frac = static_cast<double>(ones) / (frags[i].size() * 8.0);
    EXPECT_NEAR(frac, 0.5, 0.02);
  }
}

TEST(XorShare, LastFragmentIsDataXorOthers) {
  Rng rng(4);
  const Bytes data = make_data(32);
  auto frags = split(data, 3, rng);
  Bytes acc = data;
  xor_into(acc, frags[0]);
  xor_into(acc, frags[1]);
  EXPECT_EQ(frags[2], acc);
}

TEST(XorShare, DeterministicGivenRngState) {
  const Bytes data = make_data(32);
  Rng a(42), b(42);
  EXPECT_EQ(split(data, 4, a), split(data, 4, b));
}

TEST(XorShare, FreshRandomnessPerCall) {
  const Bytes data = make_data(32);
  Rng rng(42);
  const auto first = split(data, 2, rng);
  const auto second = split(data, 2, rng);
  EXPECT_NE(first[0], second[0]);
  EXPECT_EQ(combine(first), combine(second));
}

TEST(XorShare, XorIntoBasics) {
  Bytes a = {0x0F, 0xF0};
  const Bytes b = {0xFF, 0xFF};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xF0, 0x0F}));
}

TEST(XorShareDeath, KMustBeAtLeastTwo) {
  Rng rng(5);
  const Bytes data = make_data(8);
  EXPECT_DEATH((void)split(data, 1, rng), "at least 2");
}

TEST(XorShareDeath, LengthMismatch) {
  Bytes a(4), b(5);
  EXPECT_DEATH(xor_into(a, b), "mismatch");
}

TEST(XorShareDeath, CombineEmpty) {
  std::vector<Bytes> none;
  EXPECT_DEATH((void)combine(none), "zero fragments");
}

}  // namespace
}  // namespace congos::coding
