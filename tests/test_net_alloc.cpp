// Allocation discipline for the datagram fast path (DESIGN.md section 13).
//
// Replaces the global allocator with a counting shim and drives the whole
// outbound chain - envelope encode, in-place frame append, pooled datagram
// buffers, the UDP transport's per-peer queues, sendmmsg/recvmmsg batching -
// over a real loopback socket pair. After a warm-up that lets the pool, the
// builder buffers, the queues and the socket scratch reach their high-water
// marks, a steady-state send+flush+drain cycle must perform ZERO heap
// allocations, on both the batched and the single-syscall path.
//
// Separate binary: the operator new/delete replacement is process-global
// (same reasoning as tests/test_alloc.cpp).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "congos/fragment.h"
#include "net/framing.h"
#include "net/udp_transport.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

std::uint64_t alloc_count() { return g_news.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace congos {
namespace {

/// Consumes datagrams without touching the heap.
struct CountingSink final : net::DatagramSink {
  std::uint64_t datagrams = 0;
  std::uint64_t bytes = 0;
  void on_datagram(ProcessId, std::span<const std::uint8_t> d) override {
    ++datagrams;
    bytes += d.size();
  }
};

sim::Envelope make_envelope() {
  auto body = std::make_shared<core::DirectRumorPayload>();
  body->rumor.uid = RumorUid{0, 7};
  body->rumor.data.assign(48, 0x5C);
  body->rumor.deadline = 4096;
  body->rumor.dest = DynamicBitset(8);
  body->rumor.dest.set(1);
  sim::Envelope e;
  e.from = 0;
  e.to = 1;
  e.tag.kind = sim::ServiceKind::kFallback;
  e.body = std::move(body);
  return e;
}

/// One steady-state iteration: encode kFramesPerIter envelopes through the
/// pooled builder into the transport, flush the wire, drain the receiver.
void run_iteration(const sim::Envelope& e, net::DatagramBuilder& builder,
                   net::UdpTransport& tx, net::UdpTransport& rx,
                   CountingSink& sink) {
  constexpr int kFramesPerIter = 48;
  const auto ship = [&](net::DatagramHandle d) { tx.send(1, std::move(d)); };
  for (int i = 0; i < kFramesPerIter; ++i) {
    ASSERT_TRUE(builder.add(e, 100, ship));
  }
  builder.finish(ship);
  for (int tries = 0; !tx.flush() && tries < 2000; ++tries) {
  }
  rx.drain(sink);
}

void expect_steady_state_alloc_free(bool batched) {
  constexpr int kWarmup = 40;
  constexpr int kMeasured = 40;

  net::UdpTransport tx;
  net::UdpTransport rx;
  std::string err;
  ASSERT_TRUE(tx.open(0, &err)) << err;
  ASSERT_TRUE(rx.open(0, &err)) << err;
  tx.set_peer(1, rx.local_port());
  rx.set_peer(0, tx.local_port());
  tx.set_batching(batched);
  rx.set_batching(batched);
  if (batched && !tx.batching()) GTEST_SKIP() << "no sendmmsg on this platform";

  net::DatagramPool pool;
  net::DatagramBuilder builder;
  builder.set_pool(&pool);
  const sim::Envelope e = make_envelope();
  CountingSink sink;

  for (int i = 0; i < kWarmup; ++i) run_iteration(e, builder, tx, rx, sink);

  const std::uint64_t datagrams_before = sink.datagrams;
  const std::uint64_t allocs_before = alloc_count();
  for (int i = 0; i < kMeasured; ++i) run_iteration(e, builder, tx, rx, sink);
  const std::uint64_t allocs = alloc_count() - allocs_before;
  const std::uint64_t datagrams = sink.datagrams - datagrams_before;

  // Guard against a vacuous pass: the window must actually move datagrams.
  EXPECT_GE(datagrams, static_cast<std::uint64_t>(kMeasured));
  EXPECT_EQ(allocs, 0u)
      << "steady-state datagram path must not touch the heap (batched="
      << batched << ")";
}

TEST(NetAllocDiscipline, BatchedSendPathIsAllocationFree) {
  expect_steady_state_alloc_free(true);
}

TEST(NetAllocDiscipline, SingleSyscallSendPathIsAllocationFree) {
  expect_steady_state_alloc_free(false);
}

}  // namespace
}  // namespace congos
