#include "common/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace congos {
namespace {

TEST(Math, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_floor(1023), 9);
  EXPECT_EQ(ilog2_floor(1024), 10);
  EXPECT_EQ(ilog2_floor(1ull << 63), 63);
}

TEST(Math, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  EXPECT_EQ(ilog2_ceil(5), 3);
  EXPECT_EQ(ilog2_ceil(1025), 11);
}

TEST(Math, FloorPow2) {
  EXPECT_EQ(floor_pow2(1), 1u);
  EXPECT_EQ(floor_pow2(2), 2u);
  EXPECT_EQ(floor_pow2(3), 2u);
  EXPECT_EQ(floor_pow2(100), 64u);
  EXPECT_EQ(floor_pow2(128), 128u);
}

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
}

TEST(Math, PowRealCeil) {
  EXPECT_EQ(pow_real_ceil(10, 0.0, 1000), 1u);
  EXPECT_EQ(pow_real_ceil(10, 1.0, 1000), 10u);
  EXPECT_EQ(pow_real_ceil(10, 2.0, 1000), 100u);
  EXPECT_EQ(pow_real_ceil(10, 3.0, 500), 500u);  // capped
  EXPECT_EQ(pow_real_ceil(0, 2.0, 100), 0u);
  // fractional exponent: 16^0.5 = 4
  EXPECT_EQ(pow_real_ceil(16, 0.5, 1000), 4u);
  // ceil behaviour: 10^0.5 = 3.16 -> 4
  EXPECT_EQ(pow_real_ceil(10, 0.5, 1000), 4u);
}

TEST(Math, LogFactorFloorsAtOne) {
  EXPECT_DOUBLE_EQ(log_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(log_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(log_factor(2), 1.0);
  EXPECT_NEAR(log_factor(100), std::log(100.0), 1e-12);
}

TEST(Math, IsqrtExactSweep) {
  for (std::uint64_t x = 0; x <= 5000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x) << x;
    EXPECT_GT((r + 1) * (r + 1), x) << x;
  }
}

TEST(Math, IsqrtPerfectSquares) {
  for (std::uint64_t r : {0ull, 1ull, 2ull, 100ull, 65536ull, 1ull << 20}) {
    EXPECT_EQ(isqrt(r * r), r);
  }
}

}  // namespace
}  // namespace congos
