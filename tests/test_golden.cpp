// Golden regression tests: a (seed, configuration) pair fully determines an
// execution (single-threaded engine, own RNG, integer arithmetic), so exact
// aggregate numbers are stable across runs and platforms. A diff here means
// protocol behaviour changed - which may be intentional, but must be
// deliberate: update the constants only after understanding why.
#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace congos {
namespace {

harness::ScenarioConfig golden_config(harness::Protocol proto) {
  harness::ScenarioConfig cfg;
  cfg.n = 24;
  cfg.seed = 4242;
  cfg.rounds = 160;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  cfg.protocol = proto;
  return cfg;
}

TEST(Golden, CongosAggregates) {
  const auto r = harness::run_scenario(golden_config(harness::Protocol::kCongos));
  EXPECT_EQ(r.injected, 71u);
  EXPECT_EQ(r.qod.delivered_on_time, 381u);
  EXPECT_EQ(r.total_messages, 104665u);
  EXPECT_EQ(r.max_per_round, 3240u);
  EXPECT_EQ(r.total_bytes, 1086917669u);
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.cg_shoots, 0u);
}

TEST(Golden, StrongConfidentialAggregates) {
  const auto r =
      harness::run_scenario(golden_config(harness::Protocol::kStrongConfidential));
  EXPECT_EQ(r.injected, 71u);
  EXPECT_EQ(r.qod.delivered_on_time, 381u);
  EXPECT_EQ(r.total_messages, 15441u);
  EXPECT_EQ(r.leaks, 0u);
}

TEST(Golden, PlainGossipAggregates) {
  const auto r = harness::run_scenario(golden_config(harness::Protocol::kPlainGossip));
  EXPECT_EQ(r.total_messages, 16245u);
  EXPECT_EQ(r.leaks, 1267u);
}

TEST(Golden, IdenticalWorkloadAcrossProtocols) {
  // The injection schedule depends only on (seed, n, rounds), never on the
  // protocol under test - the comparisons in the benches rely on this.
  const auto a = harness::run_scenario(golden_config(harness::Protocol::kCongos));
  const auto b =
      harness::run_scenario(golden_config(harness::Protocol::kStrongConfidential));
  const auto c = harness::run_scenario(golden_config(harness::Protocol::kDirect));
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(b.injected, c.injected);
  EXPECT_EQ(a.qod.admissible_pairs, b.qod.admissible_pairs);
  EXPECT_EQ(b.qod.admissible_pairs, c.qod.admissible_pairs);
}

}  // namespace
}  // namespace congos
