// Golden regression tests: a (seed, configuration) pair fully determines an
// execution (single-threaded engine, own RNG, integer arithmetic), so exact
// aggregate numbers are stable across runs and platforms. A diff here means
// protocol behaviour changed - which may be intentional, but must be
// deliberate: update the constants only after understanding why.
#include <gtest/gtest.h>

#include "harness/sweep.h"

namespace congos {
namespace {

harness::ScenarioConfig golden_config(harness::Protocol proto) {
  harness::ScenarioConfig cfg;
  cfg.n = 24;
  cfg.seed = 4242;
  cfg.rounds = 160;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  cfg.protocol = proto;
  return cfg;
}

// The three protocol pins run as one grid through the sweep runner — the
// constants predate the runner, so this doubles as a serial-vs-pool
// equivalence pin on top of tests/test_sweep.cpp.
TEST(Golden, AggregatesAcrossProtocolsViaSweep) {
  const std::vector<harness::ScenarioConfig> grid = {
      golden_config(harness::Protocol::kCongos),
      golden_config(harness::Protocol::kStrongConfidential),
      golden_config(harness::Protocol::kPlainGossip)};
  harness::SweepRunner::Options opts;
  opts.progress = false;
  const auto results = harness::run_sweep(grid, opts);
  ASSERT_EQ(results.size(), 3u);

  const auto& congos = results[0];
  EXPECT_EQ(congos.injected, 71u);
  EXPECT_EQ(congos.qod.delivered_on_time, 381u);
  EXPECT_EQ(congos.total_messages, 104665u);
  EXPECT_EQ(congos.max_per_round, 3240u);
  // Byte pin re-measured when total_bytes switched from the fixed-width
  // size model to actual wire-codec frame sizes (src/wire).
  EXPECT_EQ(congos.total_bytes, 246330656u);
  EXPECT_EQ(congos.leaks, 0u);
  EXPECT_EQ(congos.cg_shoots, 0u);

  const auto& strong = results[1];
  EXPECT_EQ(strong.injected, 71u);
  EXPECT_EQ(strong.qod.delivered_on_time, 381u);
  EXPECT_EQ(strong.total_messages, 15441u);
  EXPECT_EQ(strong.leaks, 0u);

  const auto& plain = results[2];
  EXPECT_EQ(plain.total_messages, 16245u);
  EXPECT_EQ(plain.leaks, 1267u);
}

// Full-system determinism pin: CONGOS under random churn, with the
// confidentiality auditor's coalition analysis on. The per-round delivery
// trace is hashed, so any change in message *ordering or count per round* -
// not just aggregate drift - trips the test. The constants were captured
// from the per-round rebuild-and-sort implementation; the incremental rumor
// index and shared push batches must reproduce them bit-for-bit.
class RoundTrace final : public sim::ExecutionObserver {
 public:
  void on_envelope_delivered(const sim::Envelope&, Round) override { ++current_; }
  void on_round_end(Round) override {
    counts_.push_back(current_);
    current_ = 0;
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::uint64_t current_ = 0;
  std::vector<std::uint64_t> counts_;
};

std::uint64_t fnv1a(const std::vector<std::uint64_t>& counts) {
  std::uint64_t h = 1469598103934665603ull;
  for (auto c : counts) {
    for (int b = 0; b < 8; ++b) {
      h ^= (c >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

harness::ScenarioConfig churn_config() {
  harness::ScenarioConfig cfg;
  cfg.n = 64;
  cfg.seed = 20260805;
  cfg.rounds = 96;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {32};
  adversary::RandomChurn::Options churn;
  churn.crash_prob = 0.01;
  churn.restart_prob = 0.2;
  churn.min_alive = 48;
  cfg.churn = churn;
  return cfg;
}

TEST(Golden, CongosChurnTraceIsPinned) {
  auto cfg = churn_config();
  RoundTrace trace;
  cfg.extra_observers.push_back(&trace);
  const auto r = harness::run_scenario(cfg);

  // 96 workload rounds + 32 drain + 2 engine epilogue rounds.
  ASSERT_EQ(trace.counts().size(), 130u);
  std::uint64_t delivered_total = 0;
  for (auto c : trace.counts()) delivered_total += c;
  EXPECT_EQ(delivered_total, 269790u);
  EXPECT_EQ(fnv1a(trace.counts()), 17331845611235902561ull);

  EXPECT_EQ(r.injected, 92u);
  EXPECT_EQ(r.total_messages, 281730u);
  EXPECT_EQ(r.crashes, 69u);
  EXPECT_EQ(r.restarts, 66u);
  EXPECT_EQ(r.leaks, 0u);
  // Lemma 14: the weakest rumor-breaking coalition stays above tau.
  EXPECT_EQ(r.weakest_coalition, 2u);
  EXPECT_GT(r.weakest_coalition, static_cast<std::size_t>(cfg.congos.tau));
}

TEST(Golden, CongosChurnRunToRunDeterminism) {
  auto cfg = churn_config();
  RoundTrace a, b;
  cfg.extra_observers.assign(1, &a);
  harness::run_scenario(cfg);
  cfg.extra_observers.assign(1, &b);
  harness::run_scenario(cfg);
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(Golden, IdenticalWorkloadAcrossProtocols) {
  // The injection schedule depends only on (seed, n, rounds), never on the
  // protocol under test - the comparisons in the benches rely on this.
  const auto a = harness::run_scenario(golden_config(harness::Protocol::kCongos));
  const auto b =
      harness::run_scenario(golden_config(harness::Protocol::kStrongConfidential));
  const auto c = harness::run_scenario(golden_config(harness::Protocol::kDirect));
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(b.injected, c.injected);
  EXPECT_EQ(a.qod.admissible_pairs, b.qod.admissible_pairs);
  EXPECT_EQ(b.qod.admissible_pairs, c.qod.admissible_pairs);
}

}  // namespace
}  // namespace congos
