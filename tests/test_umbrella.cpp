// Compile check for the public umbrella header: one include must expose the
// whole API surface, and representative symbols from each subsystem must be
// usable together.
#include "congos/congos.h"

#include <gtest/gtest.h>

namespace congos {
namespace {

TEST(Umbrella, WholeApiReachableFromOneInclude) {
  // common
  Rng rng(1);
  DynamicBitset bits(8);
  bits.set(3);
  // coding
  const auto shares = coding::split(std::vector<std::uint8_t>{1, 2, 3}, 2, rng);
  EXPECT_EQ(coding::combine(shares), (coding::Bytes{1, 2, 3}));
  // partition
  auto parts = partition::make_bit_partitions(8);
  EXPECT_EQ(parts.count(), 3u);
  // congos config + behaviours + extensions
  core::CongosConfig cfg;
  EXPECT_EQ(cfg.tau, 1u);
  EXPECT_EQ(static_cast<int>(core::ProcessBehavior::kHonest), 0);
  // gossip strategy enum
  EXPECT_NE(gossip::GossipStrategy::kEpidemicPush, gossip::GossipStrategy::kExpander);
  // harness
  harness::ScenarioConfig scenario;
  scenario.n = 8;
  scenario.rounds = 32;
  scenario.continuous.inject_prob = 0.05;
  scenario.continuous.deadlines = {32};
  scenario.protocol = harness::Protocol::kDirect;
  const auto r = harness::run_scenario(scenario);
  EXPECT_TRUE(r.qod.ok());
}

}  // namespace
}  // namespace congos
