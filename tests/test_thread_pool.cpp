#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace congos {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, UsableAcrossMultipleWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (wave + 1) * 10);
  }
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait_idle();  // nothing submitted: must not hang
}

TEST(ThreadPool, SubmitFromWorkerThread) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    counter.fetch_add(1, std::memory_order_relaxed);
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace congos
