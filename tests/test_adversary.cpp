#include "adversary/adversary.h"

#include <gtest/gtest.h>

#include "adversary/patterns.h"
#include "adversary/workload.h"
#include "test_util.h"

namespace congos::adversary {
namespace {

using sim::Engine;
using testutil::make_system;

TEST(Composite, RunsAllPartsInOrder) {
  auto sys = make_system(4, 1);
  std::vector<int> order;
  struct Tagger final : sim::Adversary {
    std::vector<int>* order;
    int tag;
    Tagger(std::vector<int>* o, int t) : order(o), tag(t) {}
    void at_round_start(Engine&) override { order->push_back(tag); }
  };
  Composite comp;
  comp.add(std::make_unique<Tagger>(&order, 1));
  comp.add(std::make_unique<Tagger>(&order, 2));
  sys.engine->set_adversary(&comp);
  sys.engine->run(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(RandomChurn, RespectsMinAlive) {
  auto sys = make_system(8, 2);
  RandomChurn::Options opt;
  opt.crash_prob = 1.0;  // crash aggressively
  opt.restart_prob = 0.0;
  opt.min_alive = 3;
  RandomChurn churn(opt);
  Composite comp;
  comp.add(std::make_unique<RandomChurn>(opt));
  sys.engine->set_adversary(&comp);
  sys.engine->run(10);
  EXPECT_EQ(sys.engine->alive_count(), 3u);
}

TEST(RandomChurn, ProtectedProcessesSurvive) {
  auto sys = make_system(8, 3);
  RandomChurn::Options opt;
  opt.crash_prob = 1.0;
  opt.restart_prob = 0.0;
  opt.min_alive = 0;
  opt.protected_ids = {2, 5};
  Composite comp;
  comp.add(std::make_unique<RandomChurn>(opt));
  sys.engine->set_adversary(&comp);
  sys.engine->run(5);
  EXPECT_TRUE(sys.engine->alive(2));
  EXPECT_TRUE(sys.engine->alive(5));
  EXPECT_EQ(sys.engine->alive_count(), 2u);
}

TEST(RandomChurn, RestartsBringProcessesBack) {
  auto sys = make_system(8, 4);
  RandomChurn::Options opt;
  opt.crash_prob = 0.3;
  opt.restart_prob = 1.0;  // immediate resurrection next round
  opt.min_alive = 2;
  Composite comp;
  comp.add(std::make_unique<RandomChurn>(opt));
  sys.engine->set_adversary(&comp);
  sys.engine->run(30);
  // With p_restart = 1, at most one round's worth of crashes are dead.
  EXPECT_GE(sys.engine->alive_count(), 2u);
  int restarts = 0;
  for (auto* p : sys.procs) restarts += p->restarts;
  EXPECT_GT(restarts, 0);
}

TEST(CrashOnService, CrashesReceiversOfTargetedService) {
  // p0 sends a kProxy message to p1 and a kOther message to p2 each round.
  auto sys = make_system(4, 5,
                         [](Round, sim::Sender& out, testutil::ScriptedProcess& self) {
                           if (self.id() == 0) {
                             out.send(testutil::make_msg(0, 1, 1, sim::ServiceKind::kProxy));
                             out.send(testutil::make_msg(0, 2, 2, sim::ServiceKind::kOther));
                           }
                         });
  CrashOnService::Options opt;
  opt.target = sim::ServiceKind::kProxy;
  opt.per_round_budget = 1;
  opt.total_budget = 1;
  Composite comp;
  auto pattern = std::make_unique<CrashOnService>(opt);
  auto* raw = pattern.get();
  comp.add(std::move(pattern));
  sys.engine->set_adversary(&comp);
  sys.engine->run(3);
  EXPECT_EQ(raw->crashes_caused(), 1u);
  EXPECT_FALSE(sys.engine->alive(1));  // proxy receiver killed
  EXPECT_TRUE(sys.engine->alive(2));   // kOther receiver spared
  // The round-0 proxy message was dropped with the crash.
  EXPECT_EQ(sys.procs[1]->received.size(), 0u);
}

TEST(CrashOnService, RestartAfterBringsVictimBack) {
  auto sys = make_system(3, 6,
                         [](Round now, sim::Sender& out, testutil::ScriptedProcess& self) {
                           if (self.id() == 0 && now == 0) {
                             out.send(testutil::make_msg(0, 1, 1, sim::ServiceKind::kProxy));
                           }
                         });
  CrashOnService::Options opt;
  opt.target = sim::ServiceKind::kProxy;
  opt.total_budget = 1;
  opt.restart_after = 2;
  Composite comp;
  comp.add(std::make_unique<CrashOnService>(opt));
  sys.engine->set_adversary(&comp);
  sys.engine->run(4);
  EXPECT_TRUE(sys.engine->alive(1));
  EXPECT_EQ(sys.procs[1]->restarts, 1);
}

TEST(CrashSenders, CrashesSenderOfTargetedService) {
  auto sys = make_system(3, 7,
                         [](Round, sim::Sender& out, testutil::ScriptedProcess& self) {
                           if (self.id() == 0) {
                             out.send(testutil::make_msg(
                                 0, 1, 1, sim::ServiceKind::kGroupDistribution));
                           }
                         });
  CrashSenders::Options opt;
  opt.target = sim::ServiceKind::kGroupDistribution;
  opt.total_budget = 1;
  opt.delivery = sim::PartialDelivery::kDropAll;
  Composite comp;
  comp.add(std::make_unique<CrashSenders>(opt));
  sys.engine->set_adversary(&comp);
  sys.engine->run(2);
  EXPECT_FALSE(sys.engine->alive(0));
  EXPECT_EQ(sys.procs[1]->received.size(), 0u);  // message died with sender
}

TEST(Scripted, EventsFireAtTheirRounds) {
  auto sys = make_system(3, 8);
  std::vector<Scripted::Event> events{
      {2, Scripted::Event::Kind::kCrash, 1, sim::PartialDelivery::kDropAll},
      {4, Scripted::Event::Kind::kRestart, 1, sim::PartialDelivery::kDeliverAll},
      {5, Scripted::Event::Kind::kCrash, 2, sim::PartialDelivery::kDropAll},
  };
  Composite comp;
  comp.add(std::make_unique<Scripted>(events));
  sys.engine->set_adversary(&comp);
  sys.engine->run(3);
  EXPECT_FALSE(sys.engine->alive(1));
  sys.engine->run(2);
  EXPECT_TRUE(sys.engine->alive(1));
  sys.engine->run(1);
  EXPECT_FALSE(sys.engine->alive(2));
}

TEST(MassCrash, OnlySurvivorsRemain) {
  auto sys = make_system(6, 9);
  DynamicBitset survivors(6);
  survivors.set(0);
  survivors.set(4);
  Composite comp;
  comp.add(std::make_unique<MassCrash>(3, survivors));
  sys.engine->set_adversary(&comp);
  sys.engine->run(3);
  EXPECT_EQ(sys.engine->alive_count(), 6u);
  sys.engine->run(1);
  EXPECT_EQ(sys.engine->alive_count(), 2u);
  EXPECT_TRUE(sys.engine->alive(0));
  EXPECT_TRUE(sys.engine->alive(4));
}

TEST(CanonicalPayload, DeterministicAndDistinct) {
  const auto a1 = canonical_payload(RumorUid{1, 7}, 32);
  const auto a2 = canonical_payload(RumorUid{1, 7}, 32);
  const auto b = canonical_payload(RumorUid{1, 8}, 32);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(a1.size(), 32u);
  EXPECT_EQ(canonical_payload(RumorUid{2, 2}, 0).size(), 0u);
  EXPECT_EQ(canonical_payload(RumorUid{2, 2}, 5).size(), 5u);
}

TEST(OneShot, InjectsAtScheduledRounds) {
  auto sys = make_system(3, 10);
  std::vector<OneShot::Item> items;
  items.push_back({2, sim::make_rumor(1, 1, {9}, 8, DynamicBitset(3))});
  items.push_back({0, sim::make_rumor(0, 1, {8}, 8, DynamicBitset(3))});
  Composite comp;
  comp.add(std::make_unique<OneShot>(std::move(items)));
  sys.engine->set_adversary(&comp);
  sys.engine->run(3);
  ASSERT_EQ(sys.procs[0]->injected.size(), 1u);
  EXPECT_EQ(sys.procs[0]->injected[0].injected_at, 0);
  ASSERT_EQ(sys.procs[1]->injected.size(), 1u);
  EXPECT_EQ(sys.procs[1]->injected[0].injected_at, 2);
}

TEST(OneShot, SkipsCrashedTargets) {
  auto sys = make_system(2, 11);
  std::vector<OneShot::Item> items;
  items.push_back({1, sim::make_rumor(0, 1, {1}, 8, DynamicBitset(2))});
  Composite comp;
  std::vector<Scripted::Event> ev{{0, Scripted::Event::Kind::kCrash, 0,
                                   sim::PartialDelivery::kDropAll}};
  comp.add(std::make_unique<Scripted>(ev));
  comp.add(std::make_unique<OneShot>(std::move(items)));
  sys.engine->set_adversary(&comp);
  sys.engine->run(2);
  EXPECT_TRUE(sys.procs[0]->injected.empty());
}

TEST(Continuous, InjectsAtExpectedRate) {
  auto sys = make_system(16, 12);
  Continuous::Options opt;
  opt.inject_prob = 0.25;
  opt.dest_min = 1;
  opt.dest_max = 4;
  opt.deadlines = {32, 64};
  Composite comp;
  auto w = std::make_unique<Continuous>(opt);
  auto* raw = w.get();
  comp.add(std::move(w));
  sys.engine->set_adversary(&comp);
  sys.engine->run(100);
  // Expected ~16*0.25*100 = 400 injections.
  EXPECT_GT(raw->injected_count(), 300u);
  EXPECT_LT(raw->injected_count(), 500u);
  // Every injected rumor has valid parameters.
  for (auto* p : sys.procs) {
    for (const auto& r : p->injected) {
      EXPECT_GE(r.dest.count(), 1u);
      EXPECT_LE(r.dest.count(), 4u);
      EXPECT_TRUE(r.deadline == 32 || r.deadline == 64);
      EXPECT_EQ(r.data, canonical_payload(r.uid, opt.payload_len));
    }
  }
}

TEST(Continuous, StopsAfterLastInjectionRound) {
  auto sys = make_system(8, 13);
  Continuous::Options opt;
  opt.inject_prob = 1.0;
  opt.dest_min = 1;
  opt.dest_max = 1;
  opt.last_injection_round = 4;
  Composite comp;
  auto w = std::make_unique<Continuous>(opt);
  auto* raw = w.get();
  comp.add(std::move(w));
  sys.engine->set_adversary(&comp);
  sys.engine->run(20);
  EXPECT_EQ(raw->injected_count(), 8u * 5u);
}

TEST(Theorem1, InjectsOneRumorPerProcessAtRoundZero) {
  auto sys = make_system(32, 14);
  Theorem1::Options opt;
  opt.x = 8.0;
  opt.dmax = 64;
  Composite comp;
  auto w = std::make_unique<Theorem1>(opt);
  auto* raw = w.get();
  comp.add(std::move(w));
  sys.engine->set_adversary(&comp);
  sys.engine->run(3);
  EXPECT_EQ(raw->injected_count(), 32u);
  // Expected destination pairs ~ n*x = 256; allow generous slack.
  EXPECT_GT(raw->dest_pairs(), 120u);
  EXPECT_LT(raw->dest_pairs(), 450u);
  for (auto* p : sys.procs) {
    ASSERT_EQ(p->injected.size(), 1u);
    EXPECT_EQ(p->injected[0].injected_at, 0);
    EXPECT_EQ(p->injected[0].deadline, 64);
  }
}

}  // namespace
}  // namespace congos::adversary
