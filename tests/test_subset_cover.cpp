#include "baseline/subset_cover.h"

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"

namespace congos::baseline {
namespace {

DynamicBitset materialize(std::size_t n,
                          const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cover) {
  DynamicBitset out(n);
  for (auto [lo, len] : cover) {
    for (std::uint32_t i = lo; i < lo + len; ++i) out.set(i);
  }
  return out;
}

TEST(SubsetCover, EmptySet) {
  SubsetCover sc(16);
  EXPECT_EQ(sc.cover_size(DynamicBitset(16)), 0u);
}

TEST(SubsetCover, SingleLeaf) {
  SubsetCover sc(16);
  DynamicBitset d(16);
  d.set(5);
  auto c = sc.cover(d);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], std::make_pair(5u, 1u));
}

TEST(SubsetCover, FullSetIsOneSubtree) {
  SubsetCover sc(16);
  EXPECT_EQ(sc.cover_size(DynamicBitset::full(16)), 1u);
}

TEST(SubsetCover, AlignedHalf) {
  SubsetCover sc(16);
  DynamicBitset d(16);
  for (std::size_t i = 8; i < 16; ++i) d.set(i);
  auto c = sc.cover(d);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], std::make_pair(8u, 8u));
}

TEST(SubsetCover, WorstCaseAlternating) {
  // Alternating leaves cannot be merged at all: n/2 singleton subtrees.
  SubsetCover sc(32);
  DynamicBitset d(32);
  for (std::size_t i = 0; i < 32; i += 2) d.set(i);
  EXPECT_EQ(sc.cover_size(d), 16u);
}

TEST(SubsetCover, NonPowerOfTwoUniverse) {
  SubsetCover sc(11);
  EXPECT_EQ(sc.cover_size(DynamicBitset::full(11)), 1u);
  DynamicBitset d(11);
  d.set(10);
  EXPECT_EQ(sc.cover_size(d), 1u);
}

TEST(SubsetCover, CoverPropertyRandomized) {
  // Property: the cover tiles exactly the destination set, every range is a
  // power-of-two aligned subtree, and the cover is no larger than |D|.
  Rng rng(321);
  for (std::size_t n : {8u, 16u, 31u, 64u, 100u}) {
    SubsetCover sc(n);
    for (int trial = 0; trial < 30; ++trial) {
      DynamicBitset d(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(0.3)) d.set(i);
      }
      auto cover = sc.cover(d);
      EXPECT_EQ(materialize(n, cover), d) << "n=" << n;
      EXPECT_LE(cover.size(), d.count());
      for (auto [lo, len] : cover) {
        if (d.count() == n) continue;  // full-universe special form
        // Each range is an aligned subtree, possibly truncated at the real
        // leaf boundary n (padding leaves are "don't care").
        std::uint32_t subtree = 1;
        while (subtree < len) subtree <<= 1;
        EXPECT_EQ(lo % subtree, 0u) << "unaligned subtree";
        EXPECT_TRUE(len == subtree || lo + len == n) << "non-subtree range";
      }
    }
  }
}

TEST(SubsetCover, MergingBeatsSingletons) {
  // A contiguous aligned block of 2^k leaves costs exactly 1.
  SubsetCover sc(64);
  for (std::uint32_t k = 0; k <= 6; ++k) {
    DynamicBitset d(64);
    for (std::uint32_t i = 0; i < (1u << k); ++i) d.set(i);
    EXPECT_EQ(sc.cover_size(d), 1u) << "k=" << k;
  }
}

TEST(Lkh, RekeyCostScalesWithChangesAndLogN) {
  EXPECT_EQ(lkh_rekey_messages(256, 0, 0), 0u);
  EXPECT_EQ(lkh_rekey_messages(256, 1, 0), 16u);   // 2*log2(256)
  EXPECT_EQ(lkh_rekey_messages(256, 2, 3), 80u);   // 5 changes
  EXPECT_GT(lkh_rekey_messages(1u << 16, 1, 0), lkh_rekey_messages(256, 1, 0));
}

TEST(PerDestination, CountsDestinations) {
  DynamicBitset d(10);
  d.set(1);
  d.set(2);
  d.set(9);
  EXPECT_EQ(per_destination_messages(d), 3u);
}

}  // namespace
}  // namespace congos::baseline
