#include "common/flags.h"

#include <gtest/gtest.h>

namespace congos {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, KeyEqualsValue) {
  auto f = parse({"--n=64", "--protocol=congos"});
  EXPECT_EQ(f.get_int("n", 0), 64);
  EXPECT_EQ(f.get("protocol", ""), "congos");
}

TEST(Flags, KeySpaceValue) {
  auto f = parse({"--n", "128", "--rate", "0.5"});
  EXPECT_EQ(f.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 0.5);
}

TEST(Flags, BooleanSwitch) {
  auto f = parse({"--csv", "--expander", "--quiet=false"});
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_TRUE(f.get_bool("expander", false));
  EXPECT_FALSE(f.get_bool("quiet", true));
  EXPECT_FALSE(f.get_bool("absent", false));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, BooleanSpellings) {
  auto f = parse({"--a=1", "--b=yes", "--c=on", "--d=0", "--e=no", "--f=off"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_TRUE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
  EXPECT_FALSE(f.get_bool("e", true));
  EXPECT_FALSE(f.get_bool("f", true));
}

TEST(Flags, Positional) {
  auto f = parse({"run", "--n=4", "fast"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "fast");
}

TEST(Flags, SwitchFollowedByFlag) {
  // "--csv --n=4": csv must not swallow "--n=4" as its value.
  auto f = parse({"--csv", "--n=4"});
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_EQ(f.get_int("n", 0), 4);
}

TEST(Flags, Defaults) {
  auto f = parse({});
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, UnknownKeys) {
  auto f = parse({"--n=4", "--typo=1"});
  const auto unknown = f.unknown_keys({"n", "rounds"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
  EXPECT_TRUE(f.unknown_keys({"n", "typo"}).empty());
}

TEST(Flags, NegativeNumbersAsValues) {
  auto f = parse({"--offset=-5"});
  EXPECT_EQ(f.get_int("offset", 0), -5);
}

TEST(Flags, LastOccurrenceWins) {
  auto f = parse({"--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

}  // namespace
}  // namespace congos
