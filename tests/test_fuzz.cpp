// Randomized adversary fuzzing: a fully random (but rule-respecting) CRRI
// schedule of crashes, restarts and injections is thrown at CONGOS; the
// auditors then check both halves of Theorem 2 on whatever happened.
//
// This is the strongest correctness test in the suite: the adversary is
// unconstrained by any scenario shape, and each seed explores a different
// schedule. Failures are perfectly reproducible from the seed.
#include <gtest/gtest.h>

#include "adversary/workload.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "congos/congos_process.h"
#include "harness/scenario.h"
#include "sim/engine.h"

namespace congos {
namespace {

/// Chaos adversary: every round, random crashes, restarts and injections
/// with random destination sets and deadlines, drawn from the engine rng.
class ChaosAdversary final : public sim::Adversary {
 public:
  struct Options {
    double crash_prob = 0.01;
    double restart_prob = 0.08;
    double inject_prob = 0.02;
    double adaptive_kill_prob = 0.1;  // chance to kill a random sender
    std::size_t min_alive = 4;
    Round last_injection = 256;
    std::vector<Round> deadlines = {32, 64, 100, 128};
  };

  explicit ChaosAdversary(Options opt) : opt_(std::move(opt)) {}

  void at_round_start(sim::Engine& engine) override {
    auto& rng = engine.rng();
    const auto n = static_cast<ProcessId>(engine.n());
    if (seq_.empty()) seq_.resize(n, 0);
    std::vector<bool> touched(n, false);
    for (ProcessId p = 0; p < n; ++p) {
      if (!engine.alive(p) && rng.chance(opt_.restart_prob)) {
        engine.restart(p, random_policy(rng));
        touched[p] = true;
      }
    }
    for (ProcessId p = 0; p < n; ++p) {
      if (engine.alive(p) && !touched[p] && engine.alive_count() > opt_.min_alive &&
          rng.chance(opt_.crash_prob)) {
        engine.crash(p, random_policy(rng));
        touched[p] = true;
      }
    }
    if (engine.now() > opt_.last_injection) return;
    for (ProcessId p = 0; p < n; ++p) {
      if (!engine.alive(p) || !rng.chance(opt_.inject_prob)) continue;
      sim::Rumor r;
      r.uid = RumorUid{p, ++seq_[p]};
      r.deadline = opt_.deadlines[rng.next_below(opt_.deadlines.size())];
      r.data = adversary::canonical_payload(r.uid, 8 + rng.next_below(24));
      const auto k = static_cast<std::uint32_t>(1 + rng.next_below(6));
      r.dest = DynamicBitset::from_indices(
          engine.n(), rng.sample_without_replacement(n, std::min(k, n)));
      engine.inject(p, std::move(r));
    }
  }

  void after_sends(sim::Engine& engine) override {
    // Adaptive: occasionally kill the sender or receiver of a random pending
    // message, after seeing the round's sends.
    auto& rng = engine.rng();
    if (engine.pending().empty() || !rng.chance(opt_.adaptive_kill_prob)) return;
    if (engine.alive_count() <= opt_.min_alive) return;
    const auto& e = engine.pending()[rng.next_below(engine.pending().size())];
    const ProcessId victim = rng.chance(0.5) ? e.from : e.to;
    if (engine.alive(victim) && !engine.lifecycle_event_this_round(victim)) {
      engine.crash(victim, random_policy(rng));
    }
  }

 private:
  static sim::PartialDelivery random_policy(Rng& rng) {
    switch (rng.next_below(3)) {
      case 0: return sim::PartialDelivery::kDeliverAll;
      case 1: return sim::PartialDelivery::kDropAll;
      default: return sim::PartialDelivery::kRandom;
    }
  }

  Options opt_;
  std::vector<std::uint64_t> seq_;
};

class ChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosFuzz, CongosSurvivesChaos) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 32;

  core::CongosConfig ccfg;
  auto cfg = std::make_shared<const core::CongosConfig>(ccfg);
  auto partitions = core::CongosProcess::build_partitions(n, ccfg);

  audit::DeliveryAuditor qod(n);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(seed);
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, cfg, partitions,
                                                          seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  audit::ConfidentialityAuditor conf(n, partitions.get());
  engine.add_observer(&conf);
  engine.add_observer(&qod);

  ChaosAdversary::Options copt;
  ChaosAdversary chaos(copt);
  engine.set_adversary(&chaos);
  engine.run(256 + 128 + 2);

  const auto report = qod.finalize(engine.now());
  EXPECT_GT(qod.injected_count(), 0u) << "seed " << seed;
  EXPECT_EQ(report.late, 0u) << "seed " << seed;
  EXPECT_EQ(report.missing, 0u) << "seed " << seed;
  EXPECT_EQ(report.data_mismatches, 0u) << "seed " << seed;
  EXPECT_EQ(conf.leaks(), 0u) << "seed " << seed;
  EXPECT_EQ(conf.count(audit::ViolationKind::kForeignFragment), 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(ChaosFuzz, CollusionVariantSurvivesChaosToo) {
  const std::size_t n = 32;
  core::CongosConfig ccfg;
  ccfg.tau = 2;
  ccfg.allow_degenerate = false;
  auto cfg = std::make_shared<const core::CongosConfig>(ccfg);
  auto partitions = core::CongosProcess::build_partitions(n, ccfg);

  audit::DeliveryAuditor qod(n);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seeder(777);
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<core::CongosProcess>(p, cfg, partitions,
                                                          seeder.next(), &qod));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  audit::ConfidentialityAuditor conf(n, partitions.get());
  engine.add_observer(&conf);
  engine.add_observer(&qod);

  ChaosAdversary::Options copt;
  copt.inject_prob = 0.01;
  copt.last_injection = 192;
  ChaosAdversary chaos(copt);
  engine.set_adversary(&chaos);
  engine.run(192 + 128 + 2);

  const auto report = qod.finalize(engine.now());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(conf.leaks(), 0u);
  EXPECT_GT(conf.weakest_rumor_coalition(), 2u);
}

}  // namespace
}  // namespace congos
