#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace congos {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (auto h : hist) {
    EXPECT_NEAR(h, expected, expected * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.015);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(29);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / 20000.0, 2.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaMeanAndVariance) {
  // Knuth's product method compares a running product against exp(-lambda),
  // which underflows to 0.0 for lambda >~ 745 and silently truncates every
  // draw. The chunked implementation stays exact by Poisson additivity, so
  // both the mean and the variance (== lambda) must survive at lambda = 3000.
  Rng rng(67);
  constexpr double kLambda = 3000.0;
  constexpr int kDraws = 4000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.poisson(kLambda);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, kLambda, 5.0);  // ~6 standard errors of the mean
  EXPECT_NEAR(var, kLambda, kLambda * 0.10);
}

TEST(Rng, PoissonJustAboveChunkStaysCalibrated) {
  // lambda slightly above the internal chunk size exercises the split into
  // one full chunk plus a remainder.
  Rng rng(71);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.poisson(600.0);
  EXPECT_NEAR(sum / 20000.0, 600.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = rng.sample_without_replacement(50, 20);
    ASSERT_EQ(s.size(), 20u);
    std::set<std::uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (auto v : s) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleWholeUniverse) {
  Rng rng(41);
  auto s = rng.sample_without_replacement(16, 16);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 16u);
}

TEST(Rng, SampleZero) {
  Rng rng(43);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(Rng, SampleIsUnbiased) {
  // Every element should be picked roughly k/n of the time.
  Rng rng(47);
  constexpr std::uint32_t kN = 20, kK = 5;
  std::vector<int> hist(kN, 0);
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    for (auto v : rng.sample_without_replacement(kN, kK)) ++hist[v];
  }
  const double expected = kTrials * static_cast<double>(kK) / kN;
  for (auto h : hist) EXPECT_NEAR(h, expected, expected * 0.08);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, FillBytesCoversAllLengths) {
  Rng rng(59);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 16u, 33u}) {
    std::vector<std::uint8_t> buf(len + 2, 0xAA);
    rng.fill_bytes(buf.data(), len);
    // Canary bytes untouched.
    EXPECT_EQ(buf[len], 0xAA);
    EXPECT_EQ(buf[len + 1], 0xAA);
  }
}

TEST(Rng, FillBytesIsBalanced) {
  Rng rng(61);
  std::vector<std::uint8_t> buf(10000);
  rng.fill_bytes(buf.data(), buf.size());
  std::size_t ones = 0;
  for (auto b : buf) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double frac = static_cast<double>(ones) / (buf.size() * 8.0);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(Splitmix, KnownProgression) {
  std::uint64_t s1 = 0, s2 = 0;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_EQ(a, b);  // same state, same output
  EXPECT_NE(splitmix64(s1), a);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, AllValuesReachable) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 977 + 3);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < bound * 64; ++i) seen.insert(rng.next_below(bound));
  EXPECT_EQ(seen.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace congos
