// SweepRunner determinism contract: per-scenario results are byte-identical
// to serial execution at any thread count, including a pinned golden trace
// when the scenario runs through the pool. This is the test the CI TSan job
// exercises (CONGOS_SANITIZE=thread).
#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/engine.h"

namespace congos {
namespace {

using harness::Protocol;
using harness::ScenarioConfig;
using harness::ScenarioResult;
using harness::SweepRunner;

/// Field-by-field equality; doubles compare exactly (the executions are
/// deterministic, so even floating-point aggregates must be bitwise equal).
void expect_identical(const ScenarioResult& a, const ScenarioResult& b,
                      const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.max_per_round, b.max_per_round);
  EXPECT_EQ(a.mean_per_round, b.mean_per_round);
  EXPECT_EQ(a.p50_per_round, b.p50_per_round);
  EXPECT_EQ(a.p95_per_round, b.p95_per_round);
  EXPECT_EQ(a.total_messages, b.total_messages);
  for (std::size_t k = 0; k < sim::kNumServiceKinds; ++k) {
    EXPECT_EQ(a.max_by_kind[k], b.max_by_kind[k]) << "kind " << k;
    EXPECT_EQ(a.total_by_kind[k], b.total_by_kind[k]) << "kind " << k;
  }
  EXPECT_EQ(a.max_bytes_per_round, b.max_bytes_per_round);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.qod.rumors, b.qod.rumors);
  EXPECT_EQ(a.qod.admissible_pairs, b.qod.admissible_pairs);
  EXPECT_EQ(a.qod.delivered_on_time, b.qod.delivered_on_time);
  EXPECT_EQ(a.qod.late, b.qod.late);
  EXPECT_EQ(a.qod.missing, b.qod.missing);
  EXPECT_EQ(a.qod.bonus_deliveries, b.qod.bonus_deliveries);
  EXPECT_EQ(a.qod.data_mismatches, b.qod.data_mismatches);
  EXPECT_EQ(a.qod.mean_latency, b.qod.mean_latency);
  EXPECT_EQ(a.qod.latency_p50, b.qod.latency_p50);
  EXPECT_EQ(a.qod.latency_p95, b.qod.latency_p95);
  EXPECT_EQ(a.qod.latency_max, b.qod.latency_max);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.leaks, b.leaks);
  EXPECT_EQ(a.foreign_fragments, b.foreign_fragments);
  EXPECT_EQ(a.unknown_payloads, b.unknown_payloads);
  EXPECT_EQ(a.weakest_coalition, b.weakest_coalition);
  EXPECT_EQ(a.cg_confirmed, b.cg_confirmed);
  EXPECT_EQ(a.cg_shoots, b.cg_shoots);
  EXPECT_EQ(a.cg_shoot_messages, b.cg_shoot_messages);
  EXPECT_EQ(a.cg_injected_direct, b.cg_injected_direct);
  EXPECT_EQ(a.cg_reassembled, b.cg_reassembled);
  EXPECT_EQ(a.filter_drops, b.filter_drops);
  EXPECT_EQ(a.theorem1_dest_pairs, b.theorem1_dest_pairs);
  EXPECT_EQ(a.strong_max_merged, b.strong_max_merged);
}

/// A small but diverse grid: every protocol family, plus churn and a
/// Theorem-1 workload, so the equivalence check covers all result fields.
std::vector<ScenarioConfig> mixed_grid() {
  std::vector<ScenarioConfig> grid;
  for (Protocol p : {Protocol::kCongos, Protocol::kDirect, Protocol::kDirectPaced,
                     Protocol::kStrongConfidential, Protocol::kPlainGossip}) {
    ScenarioConfig cfg;
    cfg.n = 16;
    cfg.seed = 50 + static_cast<std::uint64_t>(p);
    cfg.rounds = 96;
    cfg.protocol = p;
    cfg.continuous.inject_prob = 0.02;
    cfg.continuous.deadlines = {32};
    grid.push_back(cfg);
  }
  {
    ScenarioConfig cfg;
    cfg.n = 24;
    cfg.seed = 99;
    cfg.rounds = 96;
    cfg.protocol = Protocol::kCongos;
    cfg.continuous.inject_prob = 0.02;
    cfg.continuous.deadlines = {32};
    cfg.churn = adversary::RandomChurn::Options{};
    cfg.churn->crash_prob = 0.01;
    cfg.churn->restart_prob = 0.2;
    cfg.churn->min_alive = 8;
    grid.push_back(cfg);
  }
  {
    ScenarioConfig cfg;
    cfg.n = 16;
    cfg.seed = 123;
    cfg.rounds = 48;
    cfg.protocol = Protocol::kStrongConfidential;
    cfg.workload = harness::WorkloadKind::kTheorem1;
    cfg.theorem1.x = 3.0;
    cfg.theorem1.dmax = 32;
    grid.push_back(cfg);
  }
  return grid;
}

SweepRunner::Options quiet(std::size_t threads) {
  SweepRunner::Options opts;
  opts.threads = threads;
  opts.progress = false;
  return opts;
}

TEST(SweepRunner, SerialVsParallelEquivalence) {
  const auto grid = mixed_grid();
  const auto serial = harness::run_sweep(grid, quiet(1));
  ASSERT_EQ(serial.size(), grid.size());
  for (std::size_t threads : {2u, 8u}) {
    const auto parallel = harness::run_sweep(grid, quiet(threads));
    ASSERT_EQ(parallel.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " scenario=" + std::to_string(i));
      expect_identical(serial[i], parallel[i], "serial vs parallel");
    }
  }
}

TEST(SweepRunner, MatchesDirectRunScenario) {
  const auto grid = mixed_grid();
  const auto pooled = harness::run_sweep(grid, quiet(4));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto direct = harness::run_scenario(grid[i]);
    expect_identical(direct, pooled[i],
                     ("run_scenario vs pool, scenario " + std::to_string(i)).c_str());
  }
}

/// Per-round delivery counter, as in test_golden.cpp: catches ordering
/// changes inside a round, not just aggregate drift.
class RoundTrace final : public sim::ExecutionObserver {
 public:
  void on_envelope_delivered(const sim::Envelope&, Round) override { ++current_; }
  void on_round_end(Round) override {
    counts_.push_back(current_);
    current_ = 0;
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::uint64_t current_ = 0;
  std::vector<std::uint64_t> counts_;
};

std::uint64_t fnv1a(const std::vector<std::uint64_t>& counts) {
  std::uint64_t h = 1469598103934665603ull;
  for (auto c : counts) {
    for (int b = 0; b < 8; ++b) {
      h ^= (c >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

TEST(SweepRunner, GoldenChurnTraceSurvivesThePool) {
  // The exact scenario pinned by Golden.CongosChurnTraceIsPinned, run twice
  // concurrently through the pool with per-entry observers: both traces must
  // reproduce the pinned hash bit-for-bit.
  ScenarioConfig cfg;
  cfg.n = 64;
  cfg.seed = 20260805;
  cfg.rounds = 96;
  cfg.protocol = Protocol::kCongos;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {32};
  adversary::RandomChurn::Options churn;
  churn.crash_prob = 0.01;
  churn.restart_prob = 0.2;
  churn.min_alive = 48;
  cfg.churn = churn;

  RoundTrace traces[2];
  std::vector<ScenarioConfig> grid(2, cfg);
  grid[0].extra_observers.push_back(&traces[0]);
  grid[1].extra_observers.push_back(&traces[1]);

  const auto results = harness::run_sweep(grid, quiet(2));
  for (int i = 0; i < 2; ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(traces[i].counts().size(), 130u);
    EXPECT_EQ(fnv1a(traces[i].counts()), 17331845611235902561ull);
    EXPECT_EQ(results[i].injected, 92u);
    EXPECT_EQ(results[i].total_messages, 281730u);
    EXPECT_EQ(results[i].leaks, 0u);
  }
  EXPECT_EQ(traces[0].counts(), traces[1].counts());
}

TEST(SweepRunner, EmptyGridReturnsEmpty) {
  EXPECT_TRUE(harness::run_sweep({}, quiet(4)).empty());
}

TEST(SweepRunner, DefaultThreadsIsPositive) {
  EXPECT_GE(SweepRunner::default_threads(), 1u);
  // threads=0 resolves to the default; an explicit count is honored.
  EXPECT_EQ(SweepRunner(quiet(0)).threads(), SweepRunner::default_threads());
  EXPECT_EQ(SweepRunner(quiet(6)).threads(), 6u);
}

}  // namespace
}  // namespace congos
