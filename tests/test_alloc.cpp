// Allocation discipline test (DESIGN.md section 9).
//
// Replaces the global allocator with a counting shim and drives a plain
// gossip scenario (n = 64, guaranteed mode) through the engine directly: no
// observers, no adversary, rumors injected by hand. After a warm-up long
// enough for every container, pool and queue to reach its high-water mark,
// a steady-state round must perform ZERO heap allocations: payloads come
// from pools, hash containers are flat and pre-grown, scratch vectors keep
// their capacity, and the per-round stats histories are pre-reserved.
//
// The test is deliberately a separate binary: the operator new/delete
// replacement is process-global.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "baseline/plain_gossip.h"
#include "common/bitset.h"
#include "common/thread_pool.h"
#include "sim/engine.h"
#include "sim/rumor.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

std::uint64_t alloc_count() { return g_news.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace congos {
namespace {

TEST(AllocDiscipline, SteadyStateRoundIsAllocationFree) {
  constexpr std::size_t kN = 64;
  constexpr int kFanout = 3;
  constexpr Round kInjectRounds = 8;   // one rumor per round, rotating source
  constexpr Round kWarmup = 48;        // dissemination + capacity ramp-up
  constexpr Round kMeasured = 32;      // the window under test
  constexpr Round kDeadline = 400;     // far beyond the window: no purge,
                                            // no origin fallback inside it
  constexpr Round kTotal = kWarmup + kMeasured + 4;

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(kN);
  Rng seeder(0xa110c8ull);
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(std::make_unique<baseline::PlainGossipProcess>(
        p, baseline::PlainGossipProcess::Options{kFanout, kN}, seeder.next(),
        /*listener=*/nullptr));
  }
  sim::Engine engine(std::move(procs), seeder.next());

  // Pre-size the per-round stat histories for the whole run so end_round()
  // never grows them inside the measured window.
  engine.stats().reserve_rounds(static_cast<std::size_t>(kTotal));

  // Warm-up: inject, then let the epidemic saturate (n = 64 at fanout 3
  // needs ~log n rounds; the rest lets every queue hit its high-water mark).
  for (Round r = 0; r < kWarmup; ++r) {
    if (r < kInjectRounds) {
      const auto src = static_cast<ProcessId>(r % kN);
      engine.inject(src, sim::make_rumor(src, static_cast<std::uint64_t>(r),
                                         {1, 2, 3, 4}, kDeadline,
                                         DynamicBitset::full(kN)));
    }
    engine.step();
  }

  const std::uint64_t sent_before = engine.network().messages_sent_total();
  const std::uint64_t allocs_before = alloc_count();
  for (Round r = 0; r < kMeasured; ++r) engine.step();
  const std::uint64_t allocs = alloc_count() - allocs_before;
  const std::uint64_t sent = engine.network().messages_sent_total() - sent_before;

  // Guard against a vacuous pass: the window must actually gossip.
  EXPECT_GE(sent, static_cast<std::uint64_t>(kMeasured) * kN * kFanout);
  EXPECT_EQ(allocs, 0u) << "steady-state rounds must not touch the heap";
}

// The same discipline with the sharded round engine (DESIGN.md section 12):
// once the per-shard envelope buffers have reached their high-water mark
// during warm-up, a steady-state round must stay allocation-free on every
// thread — shard claiming is a pair of atomic counters, the fork/join
// handshake is condition-variable only, and the merge moves envelopes into
// the network without growing anything.
TEST(AllocDiscipline, ShardedSteadyStateRoundIsAllocationFree) {
  constexpr std::size_t kN = 64;
  constexpr int kFanout = 3;
  constexpr Round kInjectRounds = 8;
  constexpr Round kWarmup = 48;
  constexpr Round kMeasured = 32;
  constexpr Round kDeadline = 400;
  constexpr Round kTotal = kWarmup + kMeasured + 4;
  constexpr std::size_t kEngineThreads = 4;

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(kN);
  Rng seeder(0xa110c8ull);  // same seed: identical trace to the serial test
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(std::make_unique<baseline::PlainGossipProcess>(
        p, baseline::PlainGossipProcess::Options{kFanout, kN}, seeder.next(),
        /*listener=*/nullptr));
  }
  sim::Engine engine(std::move(procs), seeder.next());
  ThreadPool pool(kEngineThreads - 1);  // driving thread participates
  engine.set_parallelism(&pool, 2 * kEngineThreads);
  engine.stats().reserve_rounds(static_cast<std::size_t>(kTotal));

  for (Round r = 0; r < kWarmup; ++r) {
    if (r < kInjectRounds) {
      const auto src = static_cast<ProcessId>(r % kN);
      engine.inject(src, sim::make_rumor(src, static_cast<std::uint64_t>(r),
                                         {1, 2, 3, 4}, kDeadline,
                                         DynamicBitset::full(kN)));
    }
    engine.step();
  }

  const std::uint64_t sent_before = engine.network().messages_sent_total();
  const std::uint64_t allocs_before = alloc_count();
  for (Round r = 0; r < kMeasured; ++r) engine.step();
  const std::uint64_t allocs = alloc_count() - allocs_before;
  const std::uint64_t sent = engine.network().messages_sent_total() - sent_before;

  EXPECT_GE(sent, static_cast<std::uint64_t>(kMeasured) * kN * kFanout);
  EXPECT_EQ(allocs, 0u) << "sharded steady-state rounds must not touch the heap";
}

}  // namespace
}  // namespace congos
