// Unit tests for the deterministic flat hash containers and the payload
// pool (common/flat_map.h, common/flat_set.h, common/pool.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/flat_set.h"
#include "common/pool.h"
#include "common/rng.h"

namespace congos {
namespace {

TEST(FlatMap, BasicOperations) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());

  auto [it, inserted] = m.try_emplace(1, 10);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, 10);
  EXPECT_FALSE(m.try_emplace(1, 99).second);
  EXPECT_EQ(m.find(1)->second, 10);

  m[2] = 20;
  m[2] = 21;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(2)->second, 21);
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(3));

  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.erase(1), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatMap, IterationIsInsertionOrder) {
  FlatMap<std::uint64_t, int> m;
  const std::vector<std::uint64_t> keys = {41, 7, 99, 3, 1000000007ull, 0};
  for (std::size_t i = 0; i < keys.size(); ++i) m[keys[i]] = static_cast<int>(i);
  std::vector<std::uint64_t> seen;
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, keys);
}

TEST(FlatMap, EraseIteratorSweepVisitsEverySurvivor) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = static_cast<int>(k);
  // The `it = m.erase(it)` idiom from ConfidentialGossipService::gc().
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 3 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 66u);
  std::vector<std::uint64_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_NE(k % 3, 0u);
    seen.push_back(k);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomChurn) {
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(123);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.next_below(500);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        flat.try_emplace(key, v);
        ref.try_emplace(key, v);
        break;
      }
      case 1:
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      case 2: {
        const auto fit = flat.find(key);
        const auto rit = ref.find(key);
        ASSERT_EQ(fit == flat.end(), rit == ref.end());
        if (rit != ref.end()) {
          EXPECT_EQ(fit->second, rit->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(flat.contains(k));
    EXPECT_EQ(flat.find(k)->second, v);
  }
}

/// Pathological hasher: every key collides, so every operation walks (and
/// backward-shifts through) one long probe chain.
struct CollidingHash {
  std::size_t operator()(int) const noexcept { return 42; }
};

TEST(FlatMap, SurvivesFullHashCollisions) {
  FlatMap<int, int, CollidingHash> m;
  for (int k = 0; k < 64; ++k) m[k] = k * 2;
  for (int k = 0; k < 64; ++k) {
    ASSERT_TRUE(m.contains(k));
    EXPECT_EQ(m.find(k)->second, k * 2);
  }
  for (int k = 0; k < 64; k += 2) EXPECT_EQ(m.erase(k), 1u);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(m.contains(k), k % 2 == 1);
  for (int k = 1; k < 64; k += 2) EXPECT_EQ(m.find(k)->second, k * 2);
}

TEST(FlatMap, NonTrivialKeysAndValues) {
  FlatMap<std::string, std::vector<int>> m;
  m.try_emplace("alpha").first->second.push_back(1);
  m["beta"] = {2, 3};
  m.try_emplace("alpha").first->second.push_back(4);
  EXPECT_EQ(m.find("alpha")->second, (std::vector<int>{1, 4}));
  EXPECT_EQ(m.find("beta")->second, (std::vector<int>{2, 3}));
  FlatMap<std::string, std::vector<int>> copy = m;
  m.erase("alpha");
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_TRUE(copy.contains("alpha"));
}

TEST(FlatMap, ReserveAvoidsRehashAndKeepsContents) {
  FlatMap<std::uint64_t, int> m;
  m.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) m[k * 7919] = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(m.find(k * 7919)->second, static_cast<int>(k));
  }
}

TEST(FlatSet, BasicOperationsAndOrder) {
  FlatSet<std::uint32_t> s;
  EXPECT_TRUE(s.insert(5).second);
  EXPECT_FALSE(s.insert(5).second);
  EXPECT_TRUE(s.insert(2).second);
  EXPECT_TRUE(s.insert(9).second);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  const std::vector<std::uint32_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{5, 2, 9}));
  EXPECT_EQ(s.erase(5), 1u);
  EXPECT_EQ(s.erase(5), 0u);
  EXPECT_EQ(s.size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(2));
}

TEST(FlatSet, MatchesUnorderedSetUnderRandomChurn) {
  FlatSet<std::uint64_t> flat;
  std::unordered_set<std::uint64_t> ref;
  Rng rng(321);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.next_below(400);
    if (rng.chance(0.6)) {
      EXPECT_EQ(flat.insert(key).second, ref.insert(key).second);
    } else {
      EXPECT_EQ(flat.erase(key), ref.erase(key));
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (auto k : ref) ASSERT_TRUE(flat.contains(k));
}

struct PooledThing {
  std::vector<int> data;
  void reuse() { data.clear(); }
};

TEST(PayloadPool, RecyclesObjectAndKeepsCapacity) {
  PayloadPool<PooledThing> pool;
  auto h = pool.acquire();
  PooledThing* raw = h.get();
  h->data.assign(100, 7);
  const std::size_t cap = h->data.capacity();
  h.reset();
  ASSERT_EQ(pool.idle(), 1u);

  auto h2 = pool.acquire();
  EXPECT_EQ(h2.get(), raw);          // same object came back
  EXPECT_TRUE(h2->data.empty());     // ... cleared by reuse()
  EXPECT_GE(h2->data.capacity(), cap);  // ... with its buffer intact
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(PayloadPool, SteadyStateCyclesAllocateNothingNew) {
  PayloadPool<PooledThing> pool;
  pool.acquire().reset();  // warm up: one object + one control block cached
  PooledThing* warm = nullptr;
  {
    auto h = pool.acquire();
    warm = h.get();
  }
  for (int i = 0; i < 1000; ++i) {
    auto h = pool.acquire();
    ASSERT_EQ(h.get(), warm);  // always the single cached object
  }
}

TEST(PayloadPool, HandlesOutliveThePool) {
  std::shared_ptr<PooledThing> survivor;
  {
    PayloadPool<PooledThing> pool;
    survivor = pool.acquire();
    survivor->data.push_back(1);
  }
  // The pool object is gone; the handle (whose deleter owns the core) must
  // still be usable and destructible.
  EXPECT_EQ(survivor->data.size(), 1u);
  survivor.reset();
}

TEST(PayloadPool, CopiedPoolsShareOneCore) {
  PayloadPool<PooledThing> pool;
  PayloadPool<PooledThing> snapshot = pool;  // service snapshot copies do this
  pool.acquire().reset();
  EXPECT_EQ(snapshot.idle(), 1u);  // released object visible through the copy
  snapshot.acquire().reset();
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(PayloadPool, ConvertsToConstPointer) {
  PayloadPool<PooledThing> pool;
  std::shared_ptr<const PooledThing> as_const = pool.acquire();
  EXPECT_NE(as_const, nullptr);
  as_const.reset();
  EXPECT_EQ(pool.idle(), 1u);
}

}  // namespace
}  // namespace congos
