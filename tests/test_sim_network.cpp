#include "sim/network.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace congos::sim {
namespace {

using testutil::IntPayload;
using testutil::make_msg;

struct NetworkFixture : ::testing::Test {
  static constexpr std::size_t kN = 4;
  MessageStats stats;
  Network net{kN, &stats};
  Rng rng{99};
  std::vector<PartialDelivery> out_policy =
      std::vector<PartialDelivery>(kN, PartialDelivery::kDeliverAll);
  DynamicBitset out_filtered{kN};
  std::vector<PartialDelivery> in_policy =
      std::vector<PartialDelivery>(kN, PartialDelivery::kDeliverAll);
  DynamicBitset in_filtered{kN};
  std::vector<Envelope> observed;

  struct Recorder final : DeliveryObserver {
    explicit Recorder(std::vector<Envelope>& sink) : sink(sink) {}
    void on_delivered(const Envelope& e) override { sink.push_back(e); }
    std::vector<Envelope>& sink;
  };

  void deliver() {
    Recorder recorder(observed);
    net.deliver(out_policy, out_filtered, in_policy, in_filtered, rng, &recorder);
  }
};

TEST_F(NetworkFixture, DeliversToInbox) {
  net.submit(make_msg(0, 1, 7));
  net.submit(make_msg(2, 1, 8));
  net.submit(make_msg(3, 0, 9));
  deliver();
  EXPECT_EQ(net.inbox(1).size(), 2u);
  EXPECT_EQ(net.inbox(0).size(), 1u);
  EXPECT_EQ(net.inbox(2).size(), 0u);
  EXPECT_EQ(observed.size(), 3u);
  const auto* p = dynamic_cast<const IntPayload*>(net.inbox(0)[0].body.get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value, 9);
}

TEST_F(NetworkFixture, EndRoundClearsInboxes) {
  net.submit(make_msg(0, 1, 1));
  deliver();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  net.end_round();
  EXPECT_EQ(net.inbox(1).size(), 0u);
}

TEST_F(NetworkFixture, SenderDropAllLosesEverything) {
  out_filtered.set(0);
  out_policy[0] = PartialDelivery::kDropAll;
  net.submit(make_msg(0, 1, 1));
  net.submit(make_msg(0, 2, 2));
  net.submit(make_msg(3, 1, 3));  // unaffected sender
  deliver();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(2).size(), 0u);
  EXPECT_EQ(observed.size(), 1u);
}

TEST_F(NetworkFixture, ReceiverDropAllLosesInbound) {
  in_filtered.set(2);
  in_policy[2] = PartialDelivery::kDropAll;
  net.submit(make_msg(0, 2, 1));
  net.submit(make_msg(0, 1, 2));
  deliver();
  EXPECT_EQ(net.inbox(2).size(), 0u);
  EXPECT_EQ(net.inbox(1).size(), 1u);
}

TEST_F(NetworkFixture, RandomPolicyDropsAboutHalf) {
  out_filtered.set(0);
  out_policy[0] = PartialDelivery::kRandom;
  constexpr int kMsgs = 2000;
  for (int i = 0; i < kMsgs; ++i) net.submit(make_msg(0, 1, i));
  deliver();
  const auto got = net.inbox(1).size();
  EXPECT_GT(got, kMsgs * 0.4);
  EXPECT_LT(got, kMsgs * 0.6);
}

TEST_F(NetworkFixture, RandomPolicyIsSeedDeterministic) {
  // PartialDelivery::kRandom draws from the engine RNG, so the delivered
  // subset is a pure function of the seed: two networks fed the same
  // submissions and the same Rng seed keep exactly the same envelopes.
  auto delivered_values = [&](std::uint64_t seed) {
    MessageStats st;
    Network n2{kN, &st};
    Rng r2{seed};
    std::vector<PartialDelivery> op(kN, PartialDelivery::kDeliverAll);
    DynamicBitset of(kN);
    of.set(0);
    op[0] = PartialDelivery::kRandom;
    for (int i = 0; i < 64; ++i) n2.submit(make_msg(0, 1, i));
    n2.deliver(op, of, in_policy, in_filtered, r2, nullptr);
    std::vector<int> got;
    for (const auto& e : n2.inbox(1)) {
      got.push_back(dynamic_cast<const IntPayload*>(e.body.get())->value);
    }
    return got;
  };
  const auto first = delivered_values(1234);
  EXPECT_EQ(first, delivered_values(1234));
  EXPECT_NE(first, delivered_values(4321)) << "different seed, same subset: "
                                              "the policy is not drawing";
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 64u);
}

TEST_F(NetworkFixture, RandomPolicySurvivesCheckpointRewind) {
  // Rewinding the network *and* the engine RNG to a round boundary must
  // reproduce the identical kRandom delivered subset - the checkpoint carries
  // every input the filter depends on.
  out_filtered.set(2);
  out_policy[2] = PartialDelivery::kRandom;

  auto play_round = [&]() {
    for (int i = 0; i < 32; ++i) net.submit(make_msg(2, 3, i));
    net.deliver(out_policy, out_filtered, in_policy, in_filtered, rng, nullptr);
    std::vector<int> got;
    for (const auto& e : net.inbox(3)) {
      got.push_back(dynamic_cast<const IntPayload*>(e.body.get())->value);
    }
    net.end_round();
    return got;
  };

  play_round();  // warm-up round before the checkpoint
  const NetworkCheckpoint cp = net.checkpoint();
  const Rng rng_cp = rng;
  const auto first = play_round();
  const auto more = play_round();

  net.restore(cp);
  rng = rng_cp;
  EXPECT_EQ(play_round(), first);
  EXPECT_EQ(play_round(), more);
  EXPECT_FALSE(first.empty());
}

TEST_F(NetworkFixture, SentCountIncludesDropped) {
  // Definition 3 counts messages *sent*, even if a crash loses them.
  out_filtered.set(0);
  out_policy[0] = PartialDelivery::kDropAll;
  net.submit(make_msg(0, 1, 1, ServiceKind::kProxy));
  net.submit(make_msg(3, 1, 2, ServiceKind::kProxy));
  deliver();
  stats.end_round(0);
  EXPECT_EQ(stats.total_sent(ServiceKind::kProxy), 2u);
  EXPECT_EQ(net.messages_sent_total(), 2u);
}

TEST_F(NetworkFixture, StatsPerKind) {
  net.submit(make_msg(0, 1, 1, ServiceKind::kGroupGossip));
  net.submit(make_msg(0, 2, 2, ServiceKind::kGroupGossip));
  net.submit(make_msg(1, 2, 3, ServiceKind::kFallback));
  deliver();
  stats.end_round(0);
  EXPECT_EQ(stats.total_sent(ServiceKind::kGroupGossip), 2u);
  EXPECT_EQ(stats.total_sent(ServiceKind::kFallback), 1u);
  EXPECT_EQ(stats.total_sent(), 3u);
  EXPECT_EQ(stats.max_per_round(), 3u);
}

TEST_F(NetworkFixture, OutOfRangeEndpointsAbort) {
  EXPECT_DEATH(net.submit(make_msg(0, 17, 1)), "out of range");
}

TEST(MessageStats, MaxAndPercentiles) {
  MessageStats s;
  for (Round t = 0; t < 10; ++t) {
    for (Round i = 0; i <= t; ++i) s.note_sent(ServiceKind::kOther);
    s.end_round(t);
  }
  EXPECT_EQ(s.max_per_round(), 10u);
  EXPECT_EQ(s.max_round(), 9);
  EXPECT_EQ(s.total_sent(), 55u);
  EXPECT_EQ(s.percentile(0), 1u);
  EXPECT_EQ(s.percentile(100), 10u);
  EXPECT_NEAR(s.mean_per_round(), 5.5, 1e-9);
}

TEST(MessageStats, WarmupWindows) {
  MessageStats s;
  // rounds 0..4: 100 msgs; rounds 5..9: 1 msg
  for (Round t = 0; t < 10; ++t) {
    const int count = t < 5 ? 100 : 1;
    for (int i = 0; i < count; ++i) s.note_sent(ServiceKind::kProxy);
    s.end_round(t);
  }
  EXPECT_EQ(s.max_from(0), 100u);
  EXPECT_EQ(s.max_from(5), 1u);
  EXPECT_EQ(s.max_from(5, ServiceKind::kProxy), 1u);
  EXPECT_EQ(s.max_from(5, ServiceKind::kFallback), 0u);
  EXPECT_NEAR(s.mean_from(5), 1.0, 1e-9);
  EXPECT_EQ(s.total_from(5, ServiceKind::kProxy), 5u);
}

TEST(MessageStats, PercentileFromExcludesWarmup) {
  MessageStats s;
  // Warm-up rounds 0..4: a 1000-message spike. Steady state rounds 5..14:
  // totals 1..10.
  for (Round t = 0; t < 15; ++t) {
    const int count = t < 5 ? 1000 : static_cast<int>(t) - 4;
    for (int i = 0; i < count; ++i) s.note_sent(ServiceKind::kOther);
    s.end_round(t);
  }
  // Whole-run percentiles see the spike; steady-state percentiles must not.
  EXPECT_EQ(s.percentile(100), 1000u);
  EXPECT_EQ(s.percentile_from(5, 100), 10u);
  EXPECT_EQ(s.percentile_from(5, 0), 1u);
  EXPECT_EQ(s.percentile_from(5, 50), 6u);    // rank 4.5 rounds to index 5
  EXPECT_EQ(s.percentile_from(14, 50), 10u);  // one-round tail
  EXPECT_EQ(s.percentile_from(15, 50), 0u);   // empty tail
}

TEST(ServiceKindNames, AllNamed) {
  for (std::size_t k = 0; k < kNumServiceKinds; ++k) {
    EXPECT_STRNE(to_string(static_cast<ServiceKind>(k)), "?");
  }
}

}  // namespace
}  // namespace congos::sim
