// End-to-end tests of algorithm CONGOS (tau = 1): Theorem 2's two halves -
// confidentiality (Lemma 3) and Quality of Delivery (Lemma 4) - checked by
// the independent auditors on full executions, under benign and adversarial
// (adaptive CRRI) conditions.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/sweep.h"

namespace congos {
namespace {

using harness::Protocol;
using harness::run_scenario;
using harness::ScenarioConfig;
using harness::WorkloadKind;

ScenarioConfig base_config(std::size_t n, Round deadline, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.protocol = Protocol::kCongos;
  cfg.rounds = deadline * 5;
  cfg.workload = WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 6;
  cfg.continuous.deadlines = {deadline};
  cfg.measure_from = deadline * 2;
  return cfg;
}

TEST(CongosIntegration, FailureFreeDeliversAndStaysConfidential) {
  auto cfg = base_config(32, 64, 1001);
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 20u);
  EXPECT_EQ(r.qod.late, 0u);
  EXPECT_EQ(r.qod.missing, 0u);
  EXPECT_EQ(r.qod.data_mismatches, 0u);
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
  EXPECT_EQ(r.filter_drops, 0u);
  EXPECT_EQ(r.unknown_payloads, 0u);
}

TEST(CongosIntegration, FailureFreeConfirmsWithoutFallback) {
  // In a benign, warmed-up run the confirmation pipeline should handle
  // everything: the deadline fallback stays unused.
  auto cfg = base_config(32, 64, 1002);
  const auto r = run_scenario(cfg);
  EXPECT_EQ(r.cg_shoots, 0u);
  EXPECT_EQ(r.cg_confirmed, r.injected);
  EXPECT_GT(r.cg_reassembled, 0u);
}

TEST(CongosIntegration, QoDAndConfidentialityHoldAcrossGrid) {
  // The heavyweight (n, deadline, seed) grid, executed through the sweep
  // runner: each point is an independent scenario, so the pool parallelizes
  // them without touching any per-scenario result.
  const std::tuple<std::size_t, Round, std::uint64_t> points[] = {
      {8, 64, 1},   {16, 32, 2},  {16, 128, 3}, {33, 64, 4},
      {48, 64, 5},  {64, 128, 6}, {20, 256, 7}};
  std::vector<ScenarioConfig> grid;
  for (const auto& [n, deadline, seed] : points) {
    grid.push_back(base_config(n, deadline, seed));
  }
  harness::SweepRunner::Options opts;
  opts.progress = false;
  const auto results = harness::run_sweep(grid, opts);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [n, deadline, seed] = points[i];
    SCOPED_TRACE("n=" + std::to_string(n) + " d=" + std::to_string(deadline) +
                 " seed=" + std::to_string(seed));
    const auto& r = results[i];
    EXPECT_GT(r.injected, 0u);
    EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
    EXPECT_EQ(r.leaks, 0u);
    EXPECT_EQ(r.foreign_fragments, 0u);
  }
}

TEST(CongosIntegration, ShortDeadlinesUseDirectPath) {
  auto cfg = base_config(24, 64, 1003);
  cfg.continuous.deadlines = {8};  // below direct_threshold = 32
  cfg.rounds = 200;
  cfg.measure_from = 0;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_EQ(r.cg_injected_direct, r.injected);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
}

TEST(CongosIntegration, MixedDeadlineClassesCoexist) {
  auto cfg = base_config(32, 128, 1004);
  cfg.continuous.deadlines = {16, 48, 64, 128, 300};
  cfg.rounds = 640;
  const auto r = run_scenario(cfg);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_GT(r.cg_injected_direct, 0u);            // the 16s
  EXPECT_GT(r.injected, r.cg_injected_direct);    // the others pipelined
}

TEST(CongosIntegration, SurvivesRandomChurn) {
  auto cfg = base_config(32, 64, 1005);
  cfg.churn = adversary::RandomChurn::Options{};
  cfg.churn->crash_prob = 0.005;
  cfg.churn->restart_prob = 0.05;
  cfg.churn->min_alive = 4;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  // Only admissible pairs are required; the auditor computes admissibility.
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
}

TEST(CongosIntegration, SurvivesAdaptiveProxyKiller) {
  // The Section-1 attack: crash every process the moment it receives a proxy
  // request (bounded budget). Confidentiality and QoD must still hold.
  auto cfg = base_config(32, 64, 1006);
  cfg.crash_on_service = adversary::CrashOnService::Options{};
  cfg.crash_on_service->target = sim::ServiceKind::kProxy;
  cfg.crash_on_service->per_round_budget = 2;
  cfg.crash_on_service->total_budget = 40;
  cfg.crash_on_service->restart_after = 24;
  cfg.crash_on_service->min_alive = 4;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
}

TEST(CongosIntegration, SurvivesGroupDistributionSenderCrashes) {
  // Crash GroupDistribution senders right after they send, dropping a random
  // half of their partials: the hitSet logic must not produce false
  // confirmations ([GD:CONFIRM]), so nothing may be lost.
  auto cfg = base_config(32, 64, 1007);
  cfg.crash_senders = adversary::CrashSenders::Options{};
  cfg.crash_senders->target = sim::ServiceKind::kGroupDistribution;
  cfg.crash_senders->per_round_budget = 1;
  cfg.crash_senders->total_budget = 25;
  cfg.crash_senders->min_alive = 4;
  cfg.crash_senders->delivery = sim::PartialDelivery::kRandom;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
}

TEST(CongosIntegration, FallbackCoversColdStart) {
  // Rumors injected immediately after start: GroupDistribution is not yet
  // active (needs ~2/3*dline uptime), so early rumors ride the deadline
  // fallback - and must still arrive on time.
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.seed = 1008;
  cfg.protocol = Protocol::kCongos;
  cfg.rounds = 40;
  cfg.workload = WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.2;
  cfg.continuous.deadlines = {64};
  cfg.continuous.last_injection_round = 5;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok());
  EXPECT_EQ(r.leaks, 0u);
}

TEST(CongosIntegration, ExpanderStrategyWorksEndToEnd) {
  // The deterministic expander realization of the gossip black box (closer
  // in spirit to [13]'s derandomization) must satisfy the same guarantees.
  auto cfg = base_config(32, 64, 1013);
  cfg.congos.gossip_strategy = gossip::GossipStrategy::kExpander;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.injected, 0u);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
  EXPECT_EQ(r.foreign_fragments, 0u);
}

TEST(CongosIntegration, ExpanderStrategyUnderChurn) {
  auto cfg = base_config(32, 64, 1014);
  cfg.congos.gossip_strategy = gossip::GossipStrategy::kExpander;
  cfg.churn = adversary::RandomChurn::Options{};
  cfg.churn->crash_prob = 0.004;
  cfg.churn->restart_prob = 0.05;
  cfg.churn->min_alive = 6;
  const auto r = run_scenario(cfg);
  EXPECT_TRUE(r.qod.ok()) << "late=" << r.qod.late << " missing=" << r.qod.missing;
  EXPECT_EQ(r.leaks, 0u);
}

TEST(CongosIntegration, DeterministicAcrossRuns) {
  auto cfg = base_config(24, 64, 1009);
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.qod.delivered_on_time, b.qod.delivered_on_time);
  EXPECT_EQ(a.cg_confirmed, b.cg_confirmed);
}

TEST(CongosIntegration, SeedChangesExecution) {
  auto cfg = base_config(24, 64, 1010);
  const auto a = run_scenario(cfg);
  cfg.seed = 1011;
  const auto b = run_scenario(cfg);
  EXPECT_NE(a.total_messages, b.total_messages);
}

TEST(CongosIntegration, CheaperPerRoundThanStrongConfidentialOnThm1Load) {
  // The whole point of the paper: collaborating through fragments beats
  // keeping everything inside the destination sets. Under the Theorem 1
  // workload (every process one rumor, random destinations), compare the
  // peak per-round message complexity... of the *strongly confidential*
  // baseline against CONGOS's *steady-state* complexity measured per rumor.
  // Here we simply check both run correctly; the quantitative comparison is
  // experiment E1/E3 (bench/exp_lower_bound_strong, exp_msg_vs_n).
  ScenarioConfig cfg;
  cfg.n = 32;
  cfg.seed = 1012;
  cfg.workload = WorkloadKind::kTheorem1;
  cfg.theorem1.x = 5.0;
  cfg.theorem1.dmax = 64;
  cfg.rounds = 80;

  cfg.protocol = Protocol::kCongos;
  const auto congos = run_scenario(cfg);
  EXPECT_TRUE(congos.qod.ok());
  EXPECT_EQ(congos.leaks, 0u);

  cfg.protocol = Protocol::kStrongConfidential;
  const auto strong = run_scenario(cfg);
  EXPECT_TRUE(strong.qod.ok());
  EXPECT_EQ(strong.leaks, 0u);
}

}  // namespace
}  // namespace congos
