#include "common/bitset.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace congos {
namespace {

TEST(Bitset, EmptyByDefault) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  EXPECT_FALSE(b.all());
}

TEST(Bitset, FullConstruction) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 128u, 129u, 1000u}) {
    DynamicBitset b(n, true);
    EXPECT_EQ(b.count(), n) << "n=" << n;
    EXPECT_TRUE(b.all());
    // No stray bits beyond the universe.
    DynamicBitset c = DynamicBitset::full(n);
    EXPECT_EQ(b, c);
  }
}

TEST(Bitset, SetResetTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
  b.assign(5, true);
  EXPECT_TRUE(b[5]);
  b.assign(5, false);
  EXPECT_FALSE(b[5]);
}

TEST(Bitset, SetAllResetAll) {
  DynamicBitset b(77);
  b.set_all();
  EXPECT_EQ(b.count(), 77u);
  b.reset_all();
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitset, BitwiseOps) {
  DynamicBitset a(130), b(130);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(129);

  auto u = a | b;
  EXPECT_TRUE(u.test(1) && u.test(100) && u.test(129));
  EXPECT_EQ(u.count(), 3u);

  auto i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(100));

  auto d = a - b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(Bitset, ContainsAllAndIntersects) {
  DynamicBitset big(200), small(200), other(200);
  big.set(10);
  big.set(150);
  big.set(199);
  small.set(10);
  small.set(199);
  other.set(11);

  EXPECT_TRUE(big.contains_all(small));
  EXPECT_FALSE(small.contains_all(big));
  EXPECT_TRUE(big.contains_all(big));
  EXPECT_TRUE(big.intersects(small));
  EXPECT_FALSE(big.intersects(other));
  DynamicBitset empty(200);
  EXPECT_TRUE(big.contains_all(empty));
  EXPECT_FALSE(big.intersects(empty));
}

TEST(Bitset, ToVectorOrdered) {
  DynamicBitset b(100);
  b.set(99);
  b.set(0);
  b.set(64);
  auto v = b.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 64u);
  EXPECT_EQ(v[2], 99u);
}

TEST(Bitset, FindFirstAndNext) {
  DynamicBitset b(150);
  EXPECT_EQ(b.find_first(), 150u);
  b.set(5);
  b.set(64);
  b.set(149);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 64u);
  EXPECT_EQ(b.find_next(64), 149u);
  EXPECT_EQ(b.find_next(149), 150u);
  EXPECT_EQ(b.find_next(4), 5u);
}

TEST(Bitset, ForEachVisitsExactly) {
  DynamicBitset b(300);
  std::vector<std::uint32_t> want = {0, 63, 64, 65, 127, 128, 299};
  for (auto i : want) b.set(i);
  std::vector<std::uint32_t> got;
  b.for_each([&](std::uint32_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(Bitset, OrComplement) {
  // b.or_complement(o) == b |= ~o with the tail beyond the universe kept
  // clear (the engine uses this to mark every dead process in one sweep).
  for (std::size_t n : {1u, 63u, 64u, 65u, 130u}) {
    SCOPED_TRACE(n);
    DynamicBitset alive(n), filtered(n);
    for (std::size_t i = 0; i < n; i += 3) alive.set(i);
    filtered.set(0);  // pre-existing bit must survive
    filtered.or_complement(alive);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(filtered.test(i), i == 0 || !alive.test(i)) << "bit " << i;
    }
    // No stray bits beyond the universe: count matches a direct tally.
    std::size_t want = 0;
    for (std::size_t i = 0; i < n; ++i) want += (i == 0 || !alive.test(i));
    EXPECT_EQ(filtered.count(), want);
  }
}

TEST(Bitset, ForEachZeroVisitsExactlyTheClearBits) {
  DynamicBitset b(300);
  const std::vector<std::uint32_t> set_bits = {0, 63, 64, 65, 127, 128, 299};
  for (auto i : set_bits) b.set(i);
  std::vector<std::uint32_t> got;
  b.for_each_zero([&](std::uint32_t i) { got.push_back(i); });
  std::vector<std::uint32_t> want;
  for (std::uint32_t i = 0; i < 300; ++i) {
    if (!b.test(i)) want.push_back(i);
  }
  EXPECT_EQ(got, want);

  // Tail masking: a full bitset yields no zeros even at awkward sizes.
  for (std::size_t n : {1u, 63u, 64u, 65u, 129u}) {
    SCOPED_TRACE(n);
    std::size_t zeros = 0;
    DynamicBitset::full(n).for_each_zero([&](std::uint32_t) { ++zeros; });
    EXPECT_EQ(zeros, 0u);
  }
}

TEST(Bitset, FromIndices) {
  auto b = DynamicBitset::from_indices(50, {3, 7, 49});
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.test(3) && b.test(7) && b.test(49));
}

TEST(Bitset, EqualityIncludesUniverse) {
  DynamicBitset a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  b.set(3);
  EXPECT_EQ(a, b);
}

TEST(Bitset, RandomizedAgainstReference) {
  // Property test: compare against a std::vector<bool> reference model.
  Rng rng(12345);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(400);
    DynamicBitset b(n);
    std::vector<bool> ref(n, false);
    for (int op = 0; op < 200; ++op) {
      const std::size_t i = rng.next_below(n);
      if (rng.chance(0.5)) {
        b.set(i);
        ref[i] = true;
      } else {
        b.reset(i);
        ref[i] = false;
      }
    }
    std::size_t want_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(b.test(i), ref[i]);
      if (ref[i]) ++want_count;
    }
    EXPECT_EQ(b.count(), want_count);
  }
}

TEST(BitsetDeath, MismatchedUniversesAbort) {
  DynamicBitset a(10), b(20);
  EXPECT_DEATH((void)(a |= b), "universe mismatch");
}

TEST(BitsetDeath, OutOfRangeAborts) {
  DynamicBitset a(10);
  EXPECT_DEATH(a.set(10), "");
}

}  // namespace
}  // namespace congos
