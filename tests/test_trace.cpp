#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace congos::sim {
namespace {

TEST(TraceLog, RecordsLifecycleEvents) {
  auto sys = testutil::make_system(4, 1,
                                   [](Round, Sender& out, testutil::ScriptedProcess& s) {
                                     if (s.id() == 0) out.send(testutil::make_msg(0, 1, 1));
                                   });
  TraceLog trace(TraceLog::Options{.record_deliveries = false});
  sys.engine->add_observer(&trace);
  testutil::LambdaAdversary adv;
  adv.on_round_start = [](Engine& e) {
    if (e.now() == 1) e.crash(2);
    if (e.now() == 2) e.restart(2);
    if (e.now() == 3) {
      e.inject(0, make_rumor(0, 1, {1, 2}, 16,
                             DynamicBitset::from_indices(4, {1, 3})));
    }
  };
  sys.engine->set_adversary(&adv);
  sys.engine->run(5);

  EXPECT_EQ(trace.total_events_seen(), 3u);
  std::ostringstream os;
  trace.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("[1] crash   p2"), std::string::npos);
  EXPECT_NE(out.find("[2] restart p2"), std::string::npos);
  EXPECT_NE(out.find("[3] inject  p0 rumor (0,1) |D|=2"), std::string::npos);
  EXPECT_NE(out.find("deliveries/round"), std::string::npos);
}

TEST(TraceLog, RingBufferEvicts) {
  TraceLog trace(TraceLog::Options{.capacity = 3});
  for (Round t = 0; t < 10; ++t) {
    trace.on_crash(static_cast<ProcessId>(t % 4), t);
  }
  EXPECT_EQ(trace.event_count(), 3u);
  EXPECT_EQ(trace.total_events_seen(), 10u);
  std::ostringstream os;
  trace.dump(os);
  EXPECT_EQ(os.str().find("[6]"), std::string::npos);  // evicted
  EXPECT_NE(os.str().find("[9]"), std::string::npos);  // retained
}

TEST(TraceLog, DumpLimitsToLastN) {
  TraceLog trace;
  for (Round t = 0; t < 50; ++t) trace.on_crash(0, t);
  std::ostringstream os;
  trace.dump(os, 2);
  EXPECT_EQ(os.str().find("[47]"), std::string::npos);
  EXPECT_NE(os.str().find("[48]"), std::string::npos);
  EXPECT_NE(os.str().find("[49]"), std::string::npos);
}

TEST(TraceLog, RecordsDeliveriesWithServiceKind) {
  auto sys = testutil::make_system(
      3, 2, [](Round now, Sender& out, testutil::ScriptedProcess& s) {
        if (s.id() == 0 && now == 1) {
          out.send(testutil::make_msg(0, 1, 1, ServiceKind::kProxy));
        }
      });
  TraceLog trace;  // record_deliveries defaults to on
  sys.engine->add_observer(&trace);
  sys.engine->run(3);
  EXPECT_EQ(trace.total_events_seen(), 1u);
  const std::string out = trace.dump_string();
  EXPECT_NE(out.find("deliver p0 -> p1 [proxy]"), std::string::npos);
}

TEST(TraceLog, CountsDeliveriesPerRound) {
  auto sys = testutil::make_system(3, 2,
                                   [](Round now, Sender& out,
                                      testutil::ScriptedProcess& s) {
                                     if (s.id() == 0 && now == 1) {
                                       out.send(testutil::make_msg(0, 1, 1));
                                       out.send(testutil::make_msg(0, 2, 2));
                                     }
                                   });
  TraceLog trace;
  sys.engine->add_observer(&trace);
  sys.engine->run(3);
  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("0:0 1:2 2:0"), std::string::npos);
}

}  // namespace
}  // namespace congos::sim
