#include "adversary/patterns.h"

#include <algorithm>

#include "common/assert.h"

namespace congos::adversary {

namespace {
bool is_protected(const std::vector<ProcessId>& ids, ProcessId p) {
  return std::find(ids.begin(), ids.end(), p) != ids.end();
}

struct CrashOnServiceSnapshot final : sim::AdversarySnapshot {
  std::size_t crashes = 0;
  std::vector<std::pair<Round, ProcessId>> to_restart;
};

struct CrashSendersSnapshot final : sim::AdversarySnapshot {
  std::size_t crashes = 0;
};

struct ScriptedSnapshot final : sim::AdversarySnapshot {
  std::size_t next = 0;
};

struct MassCrashSnapshot final : sim::AdversarySnapshot {
  bool done = false;
};
}  // namespace

// ---------------------------------------------------------------- RandomChurn

void RandomChurn::at_round_start(sim::Engine& engine) {
  auto& rng = engine.rng();
  const auto n = static_cast<ProcessId>(engine.n());
  // Restarts first so churn does not permanently drain the system. A process
  // restarted this round must not also be crashed (one lifecycle event per
  // process per round).
  std::vector<bool> touched(n, false);
  for (ProcessId p = 0; p < n; ++p) {
    if (!engine.alive(p) && rng.chance(opt_.restart_prob)) {
      engine.restart(p, sim::PartialDelivery::kRandom);
      touched[p] = true;
    }
  }
  for (ProcessId p = 0; p < n; ++p) {
    if (engine.alive_count() <= opt_.min_alive) break;
    if (!engine.alive(p) || touched[p] || is_protected(opt_.protected_ids, p)) continue;
    if (rng.chance(opt_.crash_prob)) {
      engine.crash(p, sim::PartialDelivery::kRandom);
    }
  }
}

// ------------------------------------------------------------- CrashOnService

void CrashOnService::at_round_start(sim::Engine& engine) {
  // Execute deferred restarts of earlier victims.
  std::size_t i = 0;
  while (i < to_restart_.size()) {
    if (to_restart_[i].first <= engine.now()) {
      const ProcessId p = to_restart_[i].second;
      if (!engine.alive(p)) engine.restart(p, sim::PartialDelivery::kRandom);
      to_restart_.erase(to_restart_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void CrashOnService::after_sends(sim::Engine& engine) {
  if (crashes_ >= opt_.total_budget) return;
  std::size_t this_round = 0;
  for (const auto& e : engine.pending()) {
    if (e.tag.kind != opt_.target) continue;
    if (this_round >= opt_.per_round_budget || crashes_ >= opt_.total_budget) break;
    const ProcessId victim = e.to;
    if (!engine.alive(victim) || engine.lifecycle_event_this_round(victim) ||
        is_protected(opt_.protected_ids, victim)) {
      continue;
    }
    if (engine.alive_count() <= opt_.min_alive) break;
    engine.crash(victim, sim::PartialDelivery::kDropAll);
    ++crashes_;
    ++this_round;
    if (opt_.restart_after > 0) {
      to_restart_.emplace_back(engine.now() + opt_.restart_after, victim);
    }
  }
}

std::unique_ptr<sim::AdversarySnapshot> CrashOnService::snapshot() const {
  auto s = std::make_unique<CrashOnServiceSnapshot>();
  s->crashes = crashes_;
  s->to_restart = to_restart_;
  return s;
}

bool CrashOnService::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const CrashOnServiceSnapshot*>(&snap);
  if (s == nullptr) return false;
  crashes_ = s->crashes;
  to_restart_ = s->to_restart;
  return true;
}

// ---------------------------------------------------------------- CrashSenders

void CrashSenders::after_sends(sim::Engine& engine) {
  if (crashes_ >= opt_.total_budget) return;
  std::size_t this_round = 0;
  for (const auto& e : engine.pending()) {
    if (e.tag.kind != opt_.target) continue;
    if (this_round >= opt_.per_round_budget || crashes_ >= opt_.total_budget) break;
    const ProcessId victim = e.from;
    if (!engine.alive(victim) || engine.lifecycle_event_this_round(victim) ||
        is_protected(opt_.protected_ids, victim)) {
      continue;
    }
    if (engine.alive_count() <= opt_.min_alive) break;
    engine.crash(victim, opt_.delivery);
    ++crashes_;
    ++this_round;
  }
}

std::unique_ptr<sim::AdversarySnapshot> CrashSenders::snapshot() const {
  auto s = std::make_unique<CrashSendersSnapshot>();
  s->crashes = crashes_;
  return s;
}

bool CrashSenders::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const CrashSendersSnapshot*>(&snap);
  if (s == nullptr) return false;
  crashes_ = s->crashes;
  return true;
}

// -------------------------------------------------------------------- Scripted

Scripted::Scripted(std::vector<Event> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.round < b.round; });
}

void Scripted::at_round_start(sim::Engine& engine) {
  while (next_ < events_.size() && events_[next_].round <= engine.now()) {
    const Event& e = events_[next_];
    if (engine.lifecycle_event_this_round(e.pid)) {
      ++next_;
      continue;  // another component already touched this process this round
    }
    if (e.kind == Event::Kind::kCrash) {
      if (engine.alive(e.pid)) engine.crash(e.pid, e.policy);
    } else {
      if (!engine.alive(e.pid)) engine.restart(e.pid, e.policy);
    }
    ++next_;
  }
}

std::unique_ptr<sim::AdversarySnapshot> Scripted::snapshot() const {
  auto s = std::make_unique<ScriptedSnapshot>();
  s->next = next_;
  return s;
}

bool Scripted::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const ScriptedSnapshot*>(&snap);
  if (s == nullptr) return false;
  next_ = s->next;
  return true;
}

// ------------------------------------------------------------------- MassCrash

void MassCrash::at_round_start(sim::Engine& engine) {
  if (done_ || engine.now() < when_) return;
  done_ = true;
  CONGOS_ASSERT(survivors_.size() == engine.n());
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.alive(p) && !survivors_.test(p)) {
      engine.crash(p, sim::PartialDelivery::kDropAll);
    }
  }
}

std::unique_ptr<sim::AdversarySnapshot> MassCrash::snapshot() const {
  auto s = std::make_unique<MassCrashSnapshot>();
  s->done = done_;
  return s;
}

bool MassCrash::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const MassCrashSnapshot*>(&snap);
  if (s == nullptr) return false;
  done_ = s->done;
  return true;
}

}  // namespace congos::adversary
