#include "adversary/adversary.h"

#include "common/assert.h"

namespace congos::adversary {

void Composite::add(std::unique_ptr<sim::Adversary> part) {
  CONGOS_ASSERT(part != nullptr);
  parts_.push_back(part.get());
  owned_.push_back(std::move(part));
}

void Composite::add_unowned(sim::Adversary* part) {
  CONGOS_ASSERT(part != nullptr);
  parts_.push_back(part);
}

void Composite::at_round_start(sim::Engine& engine) {
  for (auto& p : parts_) p->at_round_start(engine);
}

void Composite::after_sends(sim::Engine& engine) {
  for (auto& p : parts_) p->after_sends(engine);
}

void Composite::at_round_end(sim::Engine& engine) {
  for (auto& p : parts_) p->at_round_end(engine);
}

}  // namespace congos::adversary
