#include "adversary/adversary.h"

#include "common/assert.h"

namespace congos::adversary {

void Composite::add(std::unique_ptr<sim::Adversary> part) {
  CONGOS_ASSERT(part != nullptr);
  parts_.push_back(part.get());
  owned_.push_back(std::move(part));
}

void Composite::add_unowned(sim::Adversary* part) {
  CONGOS_ASSERT(part != nullptr);
  parts_.push_back(part);
}

void Composite::at_round_start(sim::Engine& engine) {
  for (auto& p : parts_) p->at_round_start(engine);
}

void Composite::after_sends(sim::Engine& engine) {
  for (auto& p : parts_) p->after_sends(engine);
}

void Composite::at_round_end(sim::Engine& engine) {
  for (auto& p : parts_) p->at_round_end(engine);
}

namespace {
struct CompositeSnapshot final : sim::AdversarySnapshot {
  std::vector<std::unique_ptr<sim::AdversarySnapshot>> parts;
};
}  // namespace

std::unique_ptr<sim::AdversarySnapshot> Composite::snapshot() const {
  auto s = std::make_unique<CompositeSnapshot>();
  s->parts.reserve(parts_.size());
  for (const auto* p : parts_) {
    auto part = p->snapshot();
    if (part == nullptr) return nullptr;
    s->parts.push_back(std::move(part));
  }
  return s;
}

bool Composite::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const CompositeSnapshot*>(&snap);
  if (s == nullptr || s->parts.size() != parts_.size()) return false;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i]->restore(*s->parts[i])) return false;
  }
  return true;
}

}  // namespace congos::adversary
