// CRRI adversary framework (Section 2).
//
// The Crash-and-Restart-Rumor-Injection adversary decides, every round, which
// processes crash, which restart, and which rumors are injected. It is
// *adaptive*: decisions in round t may depend on all prior events and on the
// random choices made in round t itself (it inspects the pending messages of
// the round before delivery).
//
// Adversarial behaviours compose: a typical experiment runs a Composite of an
// injection workload plus one or more failure patterns.
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.h"

namespace congos::adversary {

/// Runs several adversary components in registration order each hook.
class Composite final : public sim::Adversary {
 public:
  void add(std::unique_ptr<sim::Adversary> part);

  /// Registers a component the caller keeps ownership of (workloads whose
  /// counters the experiment reads after the run); it must outlive the
  /// composite.
  void add_unowned(sim::Adversary* part);

  void at_round_start(sim::Engine& engine) override;
  void after_sends(sim::Engine& engine) override;
  void at_round_end(sim::Engine& engine) override;

  /// Aggregates child snapshots in registration order; nullptr as soon as
  /// any component is snapshot-unaware (a partial composite snapshot would
  /// silently desynchronize the others on restore).
  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

  std::size_t size() const { return parts_.size(); }

 private:
  std::vector<std::unique_ptr<sim::Adversary>> owned_;
  std::vector<sim::Adversary*> parts_;  // registration order, owned or not
};

}  // namespace congos::adversary
