// CRRI adversary framework (Section 2).
//
// The Crash-and-Restart-Rumor-Injection adversary decides, every round, which
// processes crash, which restart, and which rumors are injected. It is
// *adaptive*: decisions in round t may depend on all prior events and on the
// random choices made in round t itself (it inspects the pending messages of
// the round before delivery).
//
// Adversarial behaviours compose: a typical experiment runs a Composite of an
// injection workload plus one or more failure patterns.
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.h"

namespace congos::adversary {

/// Runs several adversary components in registration order each hook.
class Composite final : public sim::Adversary {
 public:
  void add(std::unique_ptr<sim::Adversary> part);

  void at_round_start(sim::Engine& engine) override;
  void after_sends(sim::Engine& engine) override;
  void at_round_end(sim::Engine& engine) override;

  std::size_t size() const { return parts_.size(); }

 private:
  std::vector<std::unique_ptr<sim::Adversary>> parts_;
};

}  // namespace congos::adversary
