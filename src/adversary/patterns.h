// Concrete CRRI failure patterns.
//
// * RandomChurn      - memoryless crashes/restarts (benign churn).
// * CrashOnService   - the adaptive attack from Section 1: "every time a
//                      source sends a rumor (fragment) to another process,
//                      the adversary may choose to immediately crash that
//                      recipient". Crashes receivers of messages of a chosen
//                      service kind, after seeing this round's sends.
// * CrashSenders     - adaptive: crashes the *senders* of a chosen service
//                      kind right after they send (tests the partial-delivery
//                      semantics and the source-fallback paths).
// * Scripted         - replays an explicit list of crash/restart events
//                      (oblivious adversary; used for group-killing patterns
//                      and the lower-bound scenarios).
// * MassCrash        - at one round, crashes all but a chosen set of
//                      survivors (Lemma 5 / Lemma 13 stress: only a few
//                      processes stay continuously alive).
#pragma once

#include <vector>

#include "adversary/adversary.h"
#include "common/bitset.h"

namespace congos::adversary {

class RandomChurn final : public sim::Adversary {
 public:
  struct Options {
    double crash_prob = 0.01;    // per alive process per round
    double restart_prob = 0.05;  // per crashed process per round
    std::size_t min_alive = 2;   // never crash below this many alive processes
    /// Processes that are never crashed (e.g. to keep a rumor admissible).
    std::vector<ProcessId> protected_ids;
  };

  explicit RandomChurn(Options opt) : opt_(std::move(opt)) {}

  void at_round_start(sim::Engine& engine) override;

  // Memoryless: draws only from the engine RNG, which the engine checkpoint
  // already captures.
  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override {
    return std::make_unique<sim::AdversarySnapshot>();
  }
  bool restore(const sim::AdversarySnapshot& /*snap*/) override { return true; }

 private:
  Options opt_;
};

class CrashOnService final : public sim::Adversary {
 public:
  struct Options {
    sim::ServiceKind target = sim::ServiceKind::kProxy;
    std::size_t per_round_budget = 4;  // crashes per round
    std::size_t total_budget = 1000;   // crashes overall
    std::size_t min_alive = 2;
    std::vector<ProcessId> protected_ids;
    /// Restart victims this many rounds later (0 = never restart).
    Round restart_after = 0;
  };

  explicit CrashOnService(Options opt) : opt_(std::move(opt)) {}

  void after_sends(sim::Engine& engine) override;
  void at_round_start(sim::Engine& engine) override;

  std::size_t crashes_caused() const { return crashes_; }

  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

 private:
  Options opt_;
  std::size_t crashes_ = 0;
  std::vector<std::pair<Round, ProcessId>> to_restart_;
};

class CrashSenders final : public sim::Adversary {
 public:
  struct Options {
    sim::ServiceKind target = sim::ServiceKind::kGroupDistribution;
    std::size_t per_round_budget = 2;
    std::size_t total_budget = 100;
    std::size_t min_alive = 2;
    std::vector<ProcessId> protected_ids;
    sim::PartialDelivery delivery = sim::PartialDelivery::kRandom;
  };

  explicit CrashSenders(Options opt) : opt_(std::move(opt)) {}

  void after_sends(sim::Engine& engine) override;

  std::size_t crashes_caused() const { return crashes_; }

  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

 private:
  Options opt_;
  std::size_t crashes_ = 0;
};

class Scripted final : public sim::Adversary {
 public:
  struct Event {
    Round round = 0;
    enum class Kind { kCrash, kRestart } kind = Kind::kCrash;
    ProcessId pid = 0;
    sim::PartialDelivery policy = sim::PartialDelivery::kDropAll;
  };

  explicit Scripted(std::vector<Event> events);

  void at_round_start(sim::Engine& engine) override;

  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

 private:
  std::vector<Event> events_;  // sorted by round
  std::size_t next_ = 0;
};

class MassCrash final : public sim::Adversary {
 public:
  /// At round `when`, crash every alive process not in `survivors`.
  MassCrash(Round when, DynamicBitset survivors)
      : when_(when), survivors_(std::move(survivors)) {}

  void at_round_start(sim::Engine& engine) override;

  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

 private:
  Round when_;
  DynamicBitset survivors_;
  bool done_ = false;
};

}  // namespace congos::adversary
