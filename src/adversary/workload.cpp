#include "adversary/workload.h"

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"

namespace congos::adversary {

namespace {
struct OneShotSnapshot final : sim::AdversarySnapshot {
  std::size_t next = 0;
};

struct ContinuousSnapshot final : sim::AdversarySnapshot {
  std::vector<std::uint64_t> seq;
  std::uint64_t injected = 0;
};

struct Theorem1Snapshot final : sim::AdversarySnapshot {
  bool done = false;
  std::uint64_t injected = 0;
  std::uint64_t dest_pairs = 0;
};
}  // namespace

std::vector<std::uint8_t> canonical_payload(RumorUid uid, std::size_t len) {
  // Payload bytes derived from the uid by a splitmix64 stream: reproducible
  // anywhere, distinct across rumors.
  std::vector<std::uint8_t> out(len);
  std::uint64_t state = pack(uid) ^ 0xc0ff'ee00'dead'beefull;
  std::size_t i = 0;
  while (i < len) {
    const std::uint64_t v = splitmix64(state);
    for (int b = 0; b < 8 && i < len; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

// --------------------------------------------------------------------- OneShot

OneShot::OneShot(std::vector<Item> items) : items_(std::move(items)) {
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Item& a, const Item& b) { return a.round < b.round; });
}

void OneShot::at_round_start(sim::Engine& engine) {
  while (next_ < items_.size() && items_[next_].round <= engine.now()) {
    Item& item = items_[next_];
    const ProcessId target = item.rumor.uid.source;
    if (engine.alive(target) && !engine.injected_this_round(target)) {
      engine.inject(target, item.rumor);
    }
    ++next_;
  }
}

std::unique_ptr<sim::AdversarySnapshot> OneShot::snapshot() const {
  auto s = std::make_unique<OneShotSnapshot>();
  s->next = next_;
  return s;
}

bool OneShot::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const OneShotSnapshot*>(&snap);
  if (s == nullptr) return false;
  next_ = s->next;
  return true;
}

// ------------------------------------------------------------------ Continuous

void Continuous::at_round_start(sim::Engine& engine) {
  if (opt_.last_injection_round >= 0 && engine.now() > opt_.last_injection_round) return;
  const auto n = static_cast<ProcessId>(engine.n());
  if (seq_.empty()) seq_.resize(n, 0);
  auto& rng = engine.rng();
  for (ProcessId p = 0; p < n; ++p) {
    if (!engine.alive(p) || engine.injected_this_round(p)) continue;
    if (!rng.chance(opt_.inject_prob)) continue;

    sim::Rumor r;
    std::uint64_t seq = ++seq_[p];
    if (opt_.opaque_ids) {
      // Bijective scrambling of the counter (splitmix64 is a permutation of
      // the 64-bit space keyed by the stream position), truncated to the
      // 40-bit field RumorUid packs; collisions would need 2^20 rumors from
      // one source.
      std::uint64_t state = (static_cast<std::uint64_t>(p) << 40) ^ seq;
      seq = splitmix64(state) & ((1ull << 40) - 1);
    }
    r.uid = RumorUid{p, seq};
    r.deadline = opt_.deadlines[rng.next_below(opt_.deadlines.size())];
    r.data = canonical_payload(r.uid, opt_.payload_len);
    if (opt_.dest_gen) {
      r.dest = opt_.dest_gen(engine, p);
    } else {
      const std::size_t hi = std::min<std::size_t>(opt_.dest_max, engine.n());
      const std::size_t lo = std::min<std::size_t>(opt_.dest_min, hi);
      const auto k = static_cast<std::uint32_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
      r.dest = DynamicBitset::from_indices(
          engine.n(), rng.sample_without_replacement(n, k));
    }
    CONGOS_ASSERT(r.dest.size() == engine.n());
    engine.inject(p, std::move(r));
    ++injected_;
  }
}

std::unique_ptr<sim::AdversarySnapshot> Continuous::snapshot() const {
  auto s = std::make_unique<ContinuousSnapshot>();
  s->seq = seq_;
  s->injected = injected_;
  return s;
}

bool Continuous::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const ContinuousSnapshot*>(&snap);
  if (s == nullptr) return false;
  seq_ = s->seq;
  injected_ = s->injected;
  return true;
}

// ------------------------------------------------------------------- Theorem1

void Theorem1::at_round_start(sim::Engine& engine) {
  if (done_) return;
  done_ = true;
  const auto n = static_cast<ProcessId>(engine.n());
  auto& rng = engine.rng();
  const double p_in = opt_.x / static_cast<double>(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (!engine.alive(p)) continue;
    sim::Rumor r;
    r.uid = RumorUid{p, 1};
    r.deadline = opt_.dmax;
    r.data = canonical_payload(r.uid, opt_.payload_len);
    r.dest = DynamicBitset(engine.n());
    for (ProcessId q = 0; q < n; ++q) {
      if (rng.chance(p_in)) {
        r.dest.set(q);
        ++dest_pairs_;
      }
    }
    engine.inject(p, std::move(r));
    ++injected_;
  }
}

std::unique_ptr<sim::AdversarySnapshot> Theorem1::snapshot() const {
  auto s = std::make_unique<Theorem1Snapshot>();
  s->done = done_;
  s->injected = injected_;
  s->dest_pairs = dest_pairs_;
  return s;
}

bool Theorem1::restore(const sim::AdversarySnapshot& snap) {
  const auto* s = dynamic_cast<const Theorem1Snapshot*>(&snap);
  if (s == nullptr) return false;
  done_ = s->done;
  injected_ = s->injected;
  dest_pairs_ = s->dest_pairs;
  return true;
}

}  // namespace congos::adversary
