// Rumor-injection workloads (the "RI" half of the CRRI adversary).
//
// * OneShot       - explicit (round, source, rumor) list.
// * Continuous    - each alive process injects a fresh rumor each round with
//                   some probability; destination sets and deadlines drawn
//                   from configurable distributions. This is the paper's
//                   dynamic/continuous injection regime.
// * Theorem1      - the lower-bound scenario of Theorems 1 and 12: every
//                   process receives one rumor at round 0 whose destination
//                   set includes each process independently with probability
//                   x/n, all with the same deadline dmax.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "adversary/adversary.h"
#include "common/bitset.h"
#include "sim/rumor.h"

namespace congos::adversary {

/// Deterministically derives rumor payload bytes from the uid so auditors can
/// verify end-to-end data integrity without storing every payload.
std::vector<std::uint8_t> canonical_payload(RumorUid uid, std::size_t len);

class OneShot final : public sim::Adversary {
 public:
  struct Item {
    Round round = 0;
    sim::Rumor rumor;  // uid.source is the injection target
  };

  explicit OneShot(std::vector<Item> items);

  void at_round_start(sim::Engine& engine) override;

  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

 private:
  std::vector<Item> items_;  // sorted by round
  std::size_t next_ = 0;
};

class Continuous final : public sim::Adversary {
 public:
  struct Options {
    /// Probability an alive process injects a rumor in a given round.
    double inject_prob = 0.02;
    /// Destination set size; each rumor picks uniformly in [min, max].
    std::size_t dest_min = 2;
    std::size_t dest_max = 8;
    /// Deadline choices; each rumor picks uniformly among these durations.
    std::vector<Round> deadlines = {64};
    /// Payload length in bytes.
    std::size_t payload_len = 16;
    /// Stop injecting after this round (so executions can drain), -1 = never.
    Round last_injection_round = -1;
    /// Optional explicit destination-set generator; overrides dest_min/max.
    std::function<DynamicBitset(sim::Engine&, ProcessId)> dest_gen;
    /// Section 7: replace sequential rumor sequence numbers with
    /// pseudorandom identifiers so observers cannot infer per-source rumor
    /// counts from confirmation metadata. Uniqueness is preserved (a
    /// per-source permutation of the counter space).
    bool opaque_ids = false;
  };

  explicit Continuous(Options opt) : opt_(std::move(opt)) {}

  void at_round_start(sim::Engine& engine) override;

  std::uint64_t injected_count() const { return injected_; }

  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

 private:
  Options opt_;
  std::vector<std::uint64_t> seq_;  // per-source sequence counters
  std::uint64_t injected_ = 0;
};

class Theorem1 final : public sim::Adversary {
 public:
  struct Options {
    /// Each process is in each destination set independently w.p. x/n.
    double x = 4.0;
    Round dmax = 64;
    std::size_t payload_len = 16;
  };

  explicit Theorem1(Options opt) : opt_(opt) {}

  void at_round_start(sim::Engine& engine) override;

  std::uint64_t injected_count() const { return injected_; }
  /// Total number of (source, destination) pairs created, for the Omega(nx)
  /// accounting in the Theorem 1 experiment.
  std::uint64_t dest_pairs() const { return dest_pairs_; }

  std::unique_ptr<sim::AdversarySnapshot> snapshot() const override;
  bool restore(const sim::AdversarySnapshot& snap) override;

 private:
  Options opt_;
  bool done_ = false;
  std::uint64_t injected_ = 0;
  std::uint64_t dest_pairs_ = 0;
};

}  // namespace congos::adversary
