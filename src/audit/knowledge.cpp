#include "audit/knowledge.h"

#include "common/assert.h"

namespace congos::audit {

namespace {
constexpr std::uint64_t full_mask(GroupIndex groups) {
  return (groups >= 64) ? ~0ull : ((1ull << groups) - 1);
}
}  // namespace

void KnowledgeTracker::note_fragment(ProcessId p, const core::FragmentKey& key,
                                     GroupIndex num_groups) {
  CONGOS_ASSERT(p < n_);
  CONGOS_ASSERT_MSG(key.group < 64, "group bitmask limited to 64 groups");
  PerRumor& pr = frags_[p][key.rumor];
  pr.num_groups = num_groups;
  pr.masks[key.partition] |= (1ull << key.group);
}

void KnowledgeTracker::note_full(ProcessId p, const RumorUid& uid) {
  CONGOS_ASSERT(p < n_);
  full_[p].insert(uid);
}

bool KnowledgeTracker::knows_full(ProcessId p, const RumorUid& uid) const {
  return full_[p].contains(uid);
}

std::uint64_t KnowledgeTracker::fragment_mask(ProcessId p, const RumorUid& uid,
                                              PartitionIndex l) const {
  auto it = frags_[p].find(uid);
  if (it == frags_[p].end()) return 0;
  auto mit = it->second.masks.find(l);
  return mit == it->second.masks.end() ? 0 : mit->second;
}

bool KnowledgeTracker::can_reconstruct(ProcessId p, const RumorUid& uid) const {
  if (knows_full(p, uid)) return true;
  auto it = frags_[p].find(uid);
  if (it == frags_[p].end()) return false;
  const std::uint64_t want = full_mask(it->second.num_groups);
  for (const auto& [l, mask] : it->second.masks) {
    if ((mask & want) == want) return true;
  }
  return false;
}

bool KnowledgeTracker::coalition_can_reconstruct(
    const std::vector<ProcessId>& coalition, const RumorUid& uid) const {
  GroupIndex groups = 0;
  FlatMap<PartitionIndex, std::uint64_t> merged;
  for (ProcessId p : coalition) {
    if (knows_full(p, uid)) return true;
    auto it = frags_[p].find(uid);
    if (it == frags_[p].end()) continue;
    groups = std::max(groups, it->second.num_groups);
    for (const auto& [l, mask] : it->second.masks) merged[l] |= mask;
  }
  if (groups == 0) return false;
  const std::uint64_t want = full_mask(groups);
  for (const auto& [l, mask] : merged) {
    if ((mask & want) == want) return true;
  }
  return false;
}

const FlatMap<PartitionIndex, std::uint64_t>*
KnowledgeTracker::partition_masks(ProcessId p, const RumorUid& uid) const {
  auto it = frags_[p].find(uid);
  return it == frags_[p].end() ? nullptr : &it->second.masks;
}

}  // namespace congos::audit
