#include "audit/qod.h"

#include <algorithm>

#include "common/assert.h"

namespace congos::audit {

DeliveryAuditor::DeliveryAuditor(std::size_t n) : n_(n), life_(n) {}

void DeliveryAuditor::on_inject(const sim::Rumor& rumor, Round /*now*/) {
  injected_.emplace(rumor.uid, InjectedRumor{rumor});
}

void DeliveryAuditor::on_crash(ProcessId p, Round now) {
  life_[p].push_back(LifeEvent{now, true});
}

void DeliveryAuditor::on_restart(ProcessId p, Round now) {
  life_[p].push_back(LifeEvent{now, false});
}

void DeliveryAuditor::on_rumor_delivered(ProcessId at, const RumorUid& uid, Round when,
                                         std::span<const std::uint8_t> data) {
  auto it = injected_.find(uid);
  if (it != injected_.end()) {
    const auto& want = it->second.rumor.data;
    if (want.size() != data.size() ||
        !std::equal(want.begin(), want.end(), data.begin())) {
      ++data_mismatches_;
    }
  }
  auto& per = delivered_[uid];
  per.try_emplace(at, when);  // keep the first delivery
}

bool DeliveryAuditor::continuously_alive(ProcessId p, Round a, Round b) const {
  CONGOS_ASSERT(p < n_);
  // Alive at the beginning of a: the last lifecycle event strictly before a
  // must be a restart (or there is none: processes start alive at round 0).
  bool alive = true;
  for (const auto& ev : life_[p]) {
    if (ev.round >= a) break;
    alive = !ev.crash;
  }
  if (!alive) return false;
  // No crash inside [a, b]. (A restart inside the interval implies a prior
  // crash inside it, so checking crashes suffices.)
  for (const auto& ev : life_[p]) {
    if (ev.round > b) break;
    if (ev.round >= a && ev.crash) return false;
  }
  return true;
}

std::uint64_t DeliveryAuditor::crash_count() const {
  std::uint64_t c = 0;
  for (const auto& events : life_) {
    for (const auto& ev : events) {
      if (ev.crash) ++c;
    }
  }
  return c;
}

std::uint64_t DeliveryAuditor::restart_count() const {
  std::uint64_t c = 0;
  for (const auto& events : life_) {
    for (const auto& ev : events) {
      if (!ev.crash) ++c;
    }
  }
  return c;
}

Round DeliveryAuditor::delivery_round(const RumorUid& uid, ProcessId p) const {
  auto it = delivered_.find(uid);
  if (it == delivered_.end()) return kNoRound;
  auto pit = it->second.find(p);
  return pit == it->second.end() ? kNoRound : pit->second;
}

QodReport DeliveryAuditor::finalize(Round now) const {
  QodReport report;
  report.data_mismatches = data_mismatches_;
  double latency_sum = 0.0;
  std::uint64_t latency_count = 0;
  std::vector<Round> latencies;

  for (const auto& [uid, inj] : injected_) {
    const sim::Rumor& r = inj.rumor;
    if (r.expires_at() > now) continue;  // still in flight; skip
    ++report.rumors;
    const bool source_ok =
        continuously_alive(uid.source, r.injected_at, r.expires_at());
    r.dest.for_each([&](std::uint32_t q) {
      const bool dest_ok = continuously_alive(q, r.injected_at, r.expires_at());
      const Round when = delivery_round(uid, q);
      const bool admissible = source_ok && dest_ok;
      if (admissible) {
        ++report.admissible_pairs;
        if (when == kNoRound) {
          ++report.missing;
        } else if (when > r.expires_at()) {
          ++report.late;
        } else {
          ++report.delivered_on_time;
          latency_sum += static_cast<double>(when - r.injected_at);
          latencies.push_back(when - r.injected_at);
          ++latency_count;
        }
      } else if (when != kNoRound) {
        ++report.bonus_deliveries;
      }
    });
  }
  if (latency_count > 0) {
    report.mean_latency = latency_sum / static_cast<double>(latency_count);
    std::sort(latencies.begin(), latencies.end());
    report.latency_p50 = latencies[latencies.size() / 2];
    report.latency_p95 = latencies[(latencies.size() * 95) / 100];
    report.latency_max = latencies.back();
  }
  return report;
}

}  // namespace congos::audit
