#include "audit/confidentiality.h"

#include "baseline/baseline_payload.h"
#include "common/assert.h"
#include "gossip/continuous_gossip.h"

namespace congos::audit {

ConfidentialityAuditor::ConfidentialityAuditor(std::size_t n,
                                               const partition::PartitionSet* partitions)
    : n_(n), partitions_(partitions), knowledge_(n) {}

std::uint64_t ConfidentialityAuditor::count(ViolationKind kind) const {
  std::uint64_t c = 0;
  for (const auto& v : violations_) {
    if (v.kind == kind) ++c;
  }
  return c;
}

void ConfidentialityAuditor::on_inject(const sim::Rumor& rumor, Round /*now*/) {
  rumors_.emplace(rumor.uid, RumorInfo{rumor.dest, rumor.uid.source});
}

bool ConfidentialityAuditor::curious(ProcessId p, const RumorUid& uid) const {
  auto it = rumors_.find(uid);
  if (it == rumors_.end()) return false;  // unknown rumor (foreign system)
  return p != it->second.source && !it->second.dest.test(p);
}

void ConfidentialityAuditor::saw_full(ProcessId p, const RumorUid& uid, Round now) {
  const bool already = knowledge_.knows_full(p, uid);
  knowledge_.note_full(p, uid);
  if (!already && curious(p, uid)) {
    violations_.push_back(Violation{ViolationKind::kFullLeak, p, uid, now});
  }
}

void ConfidentialityAuditor::saw_fragment(ProcessId p, const core::Fragment& frag,
                                          Round now) {
  const RumorUid uid = frag.meta.key.rumor;
  const bool could_before = knowledge_.can_reconstruct(p, uid);
  knowledge_.note_fragment(p, frag.meta.key, frag.meta.num_groups);
  if (!curious(p, uid)) return;
  if (partitions_ != nullptr) {
    const auto& part = (*partitions_)[frag.meta.key.partition];
    if (part.group_of(p) != frag.meta.key.group) {
      violations_.push_back(Violation{ViolationKind::kForeignFragment, p, uid, now});
    }
  }
  if (!could_before && knowledge_.can_reconstruct(p, uid)) {
    violations_.push_back(Violation{ViolationKind::kFragmentSetLeak, p, uid, now});
  }
}

void ConfidentialityAuditor::on_envelope_delivered(const sim::Envelope& e, Round now) {
  const ProcessId p = e.to;
  const sim::Payload* body = e.body.get();
  if (body == nullptr) {
    ++unknown_payloads_;
    return;
  }

  switch (body->kind()) {
    case sim::PayloadKind::kGossipMsg: {
      const auto& msg = static_cast<const gossip::GossipMsg&>(*body);
      for (const auto& r : msg.rumors) {
        const sim::Payload* inner = r.body.get();
        if (inner == nullptr) {
          ++unknown_payloads_;
          continue;
        }
        switch (inner->kind()) {
          case sim::PayloadKind::kFragment:
            saw_fragment(p, static_cast<const core::FragmentBody*>(inner)->fragment,
                         now);
            break;
          case sim::PayloadKind::kProxyShare:
            for (const auto& f :
                 static_cast<const core::ProxyShareBody*>(inner)->proxied) {
              saw_fragment(p, f, now);
            }
            break;
          case sim::PayloadKind::kHitSetShare:
          case sim::PayloadKind::kDistributionReport:
            break;  // metadata only
          case sim::PayloadKind::kBaselineRumor:
            saw_full(p, static_cast<const baseline::BaselineRumorPayload*>(inner)
                            ->rumor.uid,
                     now);
            break;
          default:
            ++unknown_payloads_;
        }
      }
      return;
    }
    case sim::PayloadKind::kProxyRequest:
      for (const auto& f :
           static_cast<const core::ProxyRequestPayload*>(body)->fragments) {
        saw_fragment(p, f, now);
      }
      return;
    case sim::PayloadKind::kPartials:
      for (const auto& f : static_cast<const core::PartialsPayload*>(body)->fragments) {
        saw_fragment(p, f, now);
      }
      return;
    case sim::PayloadKind::kDirectRumor:
      saw_full(p, static_cast<const core::DirectRumorPayload*>(body)->rumor.uid, now);
      return;
    case sim::PayloadKind::kBaselineRumor:
      saw_full(p, static_cast<const baseline::BaselineRumorPayload*>(body)->rumor.uid,
               now);
      return;
    case sim::PayloadKind::kBaselineBatch:
      for (const auto& r : static_cast<const baseline::BaselineBatchPayload*>(body)->rumors) {
        saw_full(p, r.uid, now);
      }
      return;
    case sim::PayloadKind::kGossipAck:
    case sim::PayloadKind::kProxyAck:
    case sim::PayloadKind::kStrongAck:
    case sim::PayloadKind::kPartialsAck:
    case sim::PayloadKind::kDirectAck:
      return;  // metadata only (acks carry deadlines/uids, never rumor data)
    default:
      // Unknown payload type: count it; protocols with private metadata
      // payloads land here harmlessly, but a nonzero count in a CONGOS-only
      // test is a bug.
      ++unknown_payloads_;
  }
}

std::size_t ConfidentialityAuditor::weakest_rumor_coalition() const {
  std::size_t best = SIZE_MAX;
  for (const auto& [uid, _] : rumors_) {
    best = std::min(best, min_breaking_coalition(uid));
  }
  return best;
}

bool ConfidentialityAuditor::breakable_by_coalition(const RumorUid& uid,
                                                    std::size_t tau) const {
  return min_breaking_coalition(uid) <= tau;
}

std::size_t ConfidentialityAuditor::min_breaking_coalition(const RumorUid& uid) const {
  auto rit = rumors_.find(uid);
  if (rit == rumors_.end()) return SIZE_MAX;

  std::size_t best = SIZE_MAX;
  // A single curious process that can already reconstruct -> coalition of 1.
  // Otherwise: per partition, a coalition needs one curious holder per group;
  // under the structural invariant each curious process contributes at most
  // one group per partition, so the minimum is num_groups when every group's
  // fragment escaped, else impossible for that partition.
  FlatMap<PartitionIndex, std::uint64_t> escaped;  // group mask
  GroupIndex groups = 0;
  for (ProcessId p = 0; p < n_; ++p) {
    if (!curious(p, uid)) continue;
    if (knowledge_.can_reconstruct(p, uid)) return 1;
    const auto* masks = knowledge_.partition_masks(p, uid);
    if (masks == nullptr) continue;
    for (const auto& [l, mask] : *masks) escaped[l] |= mask;
  }
  if (partitions_ != nullptr && partitions_->count() > 0) {
    groups = (*partitions_)[0].num_groups();
  }
  if (groups == 0) return best;
  const std::uint64_t want = (groups >= 64) ? ~0ull : ((1ull << groups) - 1);
  for (const auto& [l, mask] : escaped) {
    if ((mask & want) == want) best = std::min<std::size_t>(best, groups);
  }
  return best;
}

}  // namespace congos::audit
