// DeliveryAuditor: machine-checks Quality of Delivery (Definition 1) and
// end-to-end data integrity.
//
// It observes injections, crashes and restarts (to decide admissibility:
// source and destination continuously alive over [t, t+d]) and receives
// every application-level delivery through the DeliveryListener interface.
// The crash/restart stream comes from the sim engine's lifecycle hooks in
// lockstep runs, and from the cluster runner's lifecycle.log (real SIGKILLs
// of congos_d daemons, net/control.h line format) on the real wire - the
// same admissibility rule judges both (DESIGN.md section 14).
// finalize() classifies every (rumor, destination) pair:
//   * admissible + delivered on time  -> ok          (required by Def. 1)
//   * admissible + late/missing       -> violation   (protocol bug)
//   * not admissible + delivered      -> bonus       (allowed, not required)
// and verifies that delivered bytes equal the injected bytes.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "congos/config.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/process.h"

namespace congos::audit {

/// Fault/retransmission delivery contract (DESIGN.md section 10).
///
/// Against a lossy link the deterministic QoD guarantee (Definition 1)
/// survives only when the stack retransmits and the fault mix stays within
/// bounds; outside the bounds the auditor must *detect* violations - the
/// report below never relaxes its classification based on the fault config.
/// Per-envelope drop probability up to which retransmission restores QoD.
inline constexpr double kGuaranteedLossThreshold = 0.10;

/// True iff Definition 1 is still owed under `faults`: faults off, or
/// retransmission on with drop <= kGuaranteedLossThreshold, no partitions,
/// and every possible link delay budgeted for (max_delay <= max_link_delay).
inline bool delivery_guaranteed(const sim::FaultConfig& faults,
                                const core::RetransmitConfig& retransmit) {
  if (!faults.enabled()) return true;
  if (!retransmit.enabled) return false;
  if (faults.partitions_enabled()) return false;
  if (faults.drop_rate > kGuaranteedLossThreshold) return false;
  if (faults.delay_rate > 0.0 && faults.max_delay > retransmit.max_link_delay) {
    return false;
  }
  return true;
}

struct QodReport {
  std::uint64_t rumors = 0;
  std::uint64_t admissible_pairs = 0;
  std::uint64_t delivered_on_time = 0;  // of admissible pairs
  std::uint64_t late = 0;               // admissible but after the deadline
  std::uint64_t missing = 0;            // admissible, never delivered
  std::uint64_t bonus_deliveries = 0;   // non-admissible pairs delivered anyway
  std::uint64_t data_mismatches = 0;
  /// Delivery-latency distribution (rounds) over on-time admissible pairs.
  double mean_latency = 0.0;
  Round latency_p50 = 0;
  Round latency_p95 = 0;
  Round latency_max = 0;

  bool ok() const { return late == 0 && missing == 0 && data_mismatches == 0; }
};

class DeliveryAuditor final : public sim::ExecutionObserver,
                              public sim::DeliveryListener {
 public:
  explicit DeliveryAuditor(std::size_t n);

  // -- ExecutionObserver -----------------------------------------------------
  void on_inject(const sim::Rumor& rumor, Round now) override;
  void on_crash(ProcessId p, Round now) override;
  void on_restart(ProcessId p, Round now) override;

  // -- DeliveryListener -------------------------------------------------------
  void on_rumor_delivered(ProcessId at, const RumorUid& uid, Round when,
                          std::span<const std::uint8_t> data) override;

  /// True iff p was alive for the whole closed interval [a, b] with no crash.
  bool continuously_alive(ProcessId p, Round a, Round b) const;

  /// Classify all rumors whose deadline has passed by round `now`
  /// (pass the final round + max deadline to cover everything).
  QodReport finalize(Round now) const;

  /// Delivery round of (uid, p), or kNoRound.
  Round delivery_round(const RumorUid& uid, ProcessId p) const;

  std::uint64_t injected_count() const { return injected_.size(); }

  /// Total crash events observed.
  std::uint64_t crash_count() const;
  /// Total restart events observed.
  std::uint64_t restart_count() const;

 private:
  struct InjectedRumor {
    sim::Rumor rumor;
  };
  struct LifeEvent {
    Round round = 0;
    bool crash = false;  // false = restart
  };

  std::size_t n_;
  std::unordered_map<RumorUid, InjectedRumor> injected_;
  std::vector<std::vector<LifeEvent>> life_;  // per process, chronological
  // first delivery per (uid, process)
  std::unordered_map<RumorUid, std::unordered_map<ProcessId, Round>> delivered_;
  std::uint64_t data_mismatches_ = 0;
};

}  // namespace congos::audit
