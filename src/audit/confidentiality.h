// ConfidentialityAuditor: machine-checks Definition 2 (and its collusion
// variant) on every execution.
//
// Registered as an ExecutionObserver, it inspects every *delivered* envelope,
// feeds a KnowledgeTracker with the rumor data and fragment payloads each
// process has seen, and flags:
//   * kFullLeak          - a process outside rho.D (and not the source) saw
//                          the whole datum;
//   * kFragmentSetLeak   - such a process saw all groups' fragments of some
//                          partition (it can XOR them into the datum);
//   * kForeignFragment   - such a process saw a fragment of a group it does
//                          not belong to (stronger, structural invariant of
//                          CONGOS: [PROXY:CONFIDENTIAL] + [GD:CONFIDENTIAL]);
//   * coalition queries  - whether any coalition of <= tau curious processes
//                          could pool fragments into the datum (Lemma 14).
//
// The auditor is protocol-independent: it knows the wire payload types, not
// the protocol state. Plain (non-confidential) gossip runs produce nonzero
// kFullLeak counts by design - that is experiment E2's contrast column.
#pragma once

#include <vector>

#include "audit/knowledge.h"
#include "partition/partition.h"
#include "sim/engine.h"

namespace congos::audit {

enum class ViolationKind : std::uint8_t {
  kFullLeak,
  kFragmentSetLeak,
  kForeignFragment,
};

struct Violation {
  ViolationKind kind = ViolationKind::kFullLeak;
  ProcessId process = kNoProcess;
  RumorUid rumor;
  Round when = 0;
};

class ConfidentialityAuditor final : public sim::ExecutionObserver {
 public:
  /// `partitions` may be null (baseline protocols); when provided, the
  /// foreign-fragment structural check is enabled.
  ConfidentialityAuditor(std::size_t n,
                         const partition::PartitionSet* partitions = nullptr);

  // -- ExecutionObserver ------------------------------------------------------
  void on_inject(const sim::Rumor& rumor, Round now) override;
  void on_envelope_delivered(const sim::Envelope& e, Round now) override;

  // -- results ---------------------------------------------------------------

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t count(ViolationKind kind) const;
  /// Confidentiality violations in the paper's sense (Definition 2): a
  /// non-destination learned (or could reconstruct) a rumor.
  std::uint64_t leaks() const {
    return count(ViolationKind::kFullLeak) + count(ViolationKind::kFragmentSetLeak);
  }

  const KnowledgeTracker& knowledge() const { return knowledge_; }

  /// True iff some coalition of `tau` *curious* processes (outside the
  /// rumor's destination set and source) can reconstruct `uid`. Exact under
  /// CONGOS's structural invariant (each curious process holds at most its
  /// own group per partition): a partition is breakable iff every group's
  /// fragment escaped to some curious process and tau >= num_groups.
  bool breakable_by_coalition(const RumorUid& uid, std::size_t tau) const;

  /// Smallest curious coalition able to reconstruct `uid` (0 if a single
  /// curious process knows it outright; SIZE_MAX if impossible so far).
  std::size_t min_breaking_coalition(const RumorUid& uid) const;

  /// Minimum of min_breaking_coalition over every injected rumor: the size
  /// of the smallest coalition that could break *some* rumor (SIZE_MAX when
  /// no rumor is breakable). Lemma 14 predicts > tau for CONGOS.
  std::size_t weakest_rumor_coalition() const;

  /// Payload types the auditor did not recognize (should stay 0 in tests of
  /// protocols the auditor supports).
  std::uint64_t unknown_payloads() const { return unknown_payloads_; }

 private:
  struct RumorInfo {
    DynamicBitset dest;
    ProcessId source = kNoProcess;
  };

  std::size_t n_;
  const partition::PartitionSet* partitions_;
  KnowledgeTracker knowledge_;
  FlatMap<RumorUid, RumorInfo> rumors_;
  std::vector<Violation> violations_;
  std::uint64_t unknown_payloads_ = 0;

  bool curious(ProcessId p, const RumorUid& uid) const;
  void saw_fragment(ProcessId p, const core::Fragment& frag, Round now);
  void saw_full(ProcessId p, const RumorUid& uid, Round now);
};

}  // namespace congos::audit
