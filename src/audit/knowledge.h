// KnowledgeTracker: a ground-truth model of what every process has *seen*.
//
// Fed by the confidentiality auditor from actually-delivered envelopes (not
// from protocol state): a process "knows" fragment (uid, l, g) once a
// delivered message carried that fragment's payload bytes, and "knows" rumor
// uid once it saw the whole datum or a complete fragment set for some
// partition. The tracker is deliberately independent of the protocol code it
// audits.
#pragma once

#include <cstdint>

#include "common/flat_map.h"
#include "common/flat_set.h"
#include "common/types.h"
#include "congos/fragment.h"

namespace congos::audit {

class KnowledgeTracker {
 public:
  explicit KnowledgeTracker(std::size_t n) : n_(n), frags_(n), full_(n) {}

  std::size_t n() const { return n_; }

  /// Process p saw the payload bytes of fragment `key` (num_groups of the
  /// fragment's partition supplied for reconstruction accounting).
  void note_fragment(ProcessId p, const core::FragmentKey& key, GroupIndex num_groups);

  /// Process p saw the whole rumor datum.
  void note_full(ProcessId p, const RumorUid& uid);

  /// True iff p saw the whole datum directly.
  bool knows_full(ProcessId p, const RumorUid& uid) const;

  /// Groups of (uid, partition) whose fragments p has seen, as a bitmask.
  std::uint64_t fragment_mask(ProcessId p, const RumorUid& uid,
                              PartitionIndex l) const;

  /// True iff p can reconstruct the rumor: saw it fully, or holds all groups
  /// of some partition.
  bool can_reconstruct(ProcessId p, const RumorUid& uid) const;

  /// True iff the union of the coalition's fragments covers all groups of
  /// some partition (or some member knows the rumor outright).
  bool coalition_can_reconstruct(const std::vector<ProcessId>& coalition,
                                 const RumorUid& uid) const;

  /// All (partition -> group mask) knowledge of p about uid.
  const FlatMap<PartitionIndex, std::uint64_t>* partition_masks(
      ProcessId p, const RumorUid& uid) const;

 private:
  struct PerRumor {
    GroupIndex num_groups = 0;
    FlatMap<PartitionIndex, std::uint64_t> masks;  // group bitmask
  };

  std::size_t n_;
  std::vector<FlatMap<RumorUid, PerRumor>> frags_;  // per process
  std::vector<FlatSet<RumorUid>> full_;             // per process
};

}  // namespace congos::audit
