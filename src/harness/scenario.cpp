#include "harness/scenario.h"

#include <algorithm>

#include "adversary/adversary.h"
#include "baseline/direct_send.h"
#include "baseline/plain_gossip.h"
#include "baseline/strong_confidential.h"
#include "common/assert.h"
#include "congos/congos_process.h"
#include "sim/engine.h"

namespace congos::harness {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kCongos: return "congos";
    case Protocol::kDirect: return "direct";
    case Protocol::kDirectPaced: return "direct-paced";
    case Protocol::kStrongConfidential: return "strong-conf";
    case Protocol::kPlainGossip: return "plain-gossip";
  }
  return "?";
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  CONGOS_ASSERT(cfg.n >= 2);
  Rng seeder(cfg.seed);

  audit::DeliveryAuditor qod(cfg.n);

  // Shared CONGOS inputs (partition family is common knowledge).
  std::shared_ptr<const core::CongosConfig> ccfg;
  std::shared_ptr<const partition::PartitionSet> partitions;
  if (cfg.protocol == Protocol::kCongos) {
    ccfg = std::make_shared<const core::CongosConfig>(cfg.congos);
    partitions = core::CongosProcess::build_partitions(cfg.n, *ccfg);
  }

  // Deterministic lazy-process selection (CONGOS only).
  DynamicBitset lazy(cfg.n);
  if (cfg.lazy_fraction > 0.0 && cfg.protocol == Protocol::kCongos) {
    const auto k = static_cast<std::uint32_t>(
        static_cast<double>(cfg.n) * std::min(cfg.lazy_fraction, 1.0));
    Rng picker(cfg.seed ^ 0x1a27ULL);
    lazy = DynamicBitset::from_indices(
        cfg.n, picker.sample_without_replacement(static_cast<std::uint32_t>(cfg.n), k));
  }

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(cfg.n);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    const std::uint64_t pseed = seeder.next();
    switch (cfg.protocol) {
      case Protocol::kCongos:
        procs.push_back(std::make_unique<core::CongosProcess>(
            p, ccfg, partitions, pseed, &qod,
            lazy.test(p) ? core::ProcessBehavior::kLazy
                         : core::ProcessBehavior::kHonest));
        break;
      case Protocol::kDirect:
        procs.push_back(std::make_unique<baseline::DirectSendProcess>(
            p, baseline::DirectSendProcess::Options{false}, &qod));
        break;
      case Protocol::kDirectPaced:
        procs.push_back(std::make_unique<baseline::DirectSendProcess>(
            p, baseline::DirectSendProcess::Options{true}, &qod));
        break;
      case Protocol::kStrongConfidential:
        procs.push_back(std::make_unique<baseline::StrongConfidentialProcess>(
            p, baseline::StrongConfidentialProcess::Options{cfg.baseline_fanout},
            pseed, &qod));
        break;
      case Protocol::kPlainGossip:
        procs.push_back(std::make_unique<baseline::PlainGossipProcess>(
            p, baseline::PlainGossipProcess::Options{cfg.baseline_fanout, cfg.n},
            pseed, &qod));
        break;
    }
  }

  sim::Engine engine(std::move(procs), seeder.next());

  audit::ConfidentialityAuditor confidentiality(cfg.n, partitions.get());
  if (cfg.audit_confidentiality) engine.add_observer(&confidentiality);
  engine.add_observer(&qod);
  for (auto* obs : cfg.extra_observers) engine.add_observer(obs);

  adversary::Composite adversaries;
  Round max_deadline = 0;
  adversary::Theorem1* thm1 = nullptr;
  switch (cfg.workload) {
    case WorkloadKind::kContinuous: {
      auto opts = cfg.continuous;
      if (opts.last_injection_round < 0) {
        // Stop injecting early enough that every rumor can drain.
        for (Round d : opts.deadlines) max_deadline = std::max(max_deadline, d);
        opts.last_injection_round = cfg.rounds - 1;
      } else {
        for (Round d : opts.deadlines) max_deadline = std::max(max_deadline, d);
      }
      adversaries.add(std::make_unique<adversary::Continuous>(opts));
      break;
    }
    case WorkloadKind::kTheorem1: {
      auto w = std::make_unique<adversary::Theorem1>(cfg.theorem1);
      thm1 = w.get();
      max_deadline = cfg.theorem1.dmax;
      adversaries.add(std::move(w));
      break;
    }
    case WorkloadKind::kNone:
      break;
  }
  if (cfg.churn) adversaries.add(std::make_unique<adversary::RandomChurn>(*cfg.churn));
  if (cfg.crash_on_service) {
    adversaries.add(std::make_unique<adversary::CrashOnService>(*cfg.crash_on_service));
  }
  if (cfg.crash_senders) {
    adversaries.add(std::make_unique<adversary::CrashSenders>(*cfg.crash_senders));
  }
  for (auto* adv : cfg.extra_adversaries) adversaries.add_unowned(adv);
  engine.set_adversary(&adversaries);

  // Run the scenario plus a drain window so every injected rumor's deadline
  // passes before finalize().
  max_deadline = std::max(max_deadline, cfg.min_drain);
  engine.run(cfg.rounds + max_deadline + 2);

  ScenarioResult result;
  const auto& stats = engine.stats();
  result.max_per_round = stats.max_from(cfg.measure_from);
  result.mean_per_round = stats.mean_from(cfg.measure_from);
  result.p50_per_round = stats.percentile_from(cfg.measure_from, 50.0);
  result.p95_per_round = stats.percentile_from(cfg.measure_from, 95.0);
  result.total_messages = stats.total_sent();
  for (std::size_t k = 0; k < sim::kNumServiceKinds; ++k) {
    result.max_by_kind[k] =
        stats.max_from(cfg.measure_from, static_cast<sim::ServiceKind>(k));
    result.total_by_kind[k] =
        stats.total_from(cfg.measure_from, static_cast<sim::ServiceKind>(k));
  }

  result.max_bytes_per_round = stats.max_bytes_from(cfg.measure_from);
  result.total_bytes = stats.total_bytes();

  result.qod = qod.finalize(engine.now());
  result.leaks = confidentiality.leaks();
  result.foreign_fragments =
      confidentiality.count(audit::ViolationKind::kForeignFragment);
  result.unknown_payloads = confidentiality.unknown_payloads();
  result.weakest_coalition = confidentiality.weakest_rumor_coalition();
  if (thm1 != nullptr) {
    result.theorem1_dest_pairs = thm1->dest_pairs();
  }
  result.injected = qod.injected_count();
  result.crashes = qod.crash_count();
  result.restarts = qod.restart_count();

  if (cfg.protocol == Protocol::kStrongConfidential) {
    for (ProcessId p = 0; p < cfg.n; ++p) {
      const auto& sp =
          static_cast<const baseline::StrongConfidentialProcess&>(engine.process(p));
      result.strong_max_merged =
          std::max<std::uint64_t>(result.strong_max_merged, sp.max_merged());
    }
  }

  if (cfg.protocol == Protocol::kCongos) {
    for (ProcessId p = 0; p < cfg.n; ++p) {
      const auto& cp = static_cast<const core::CongosProcess&>(engine.process(p));
      const auto& c = cp.counters();
      result.cg_confirmed += c.confirmed;
      result.cg_shoots += c.shoots;
      result.cg_shoot_messages += c.shoot_messages;
      result.cg_injected_direct += c.injected_direct;
      result.cg_reassembled += c.reassembled;
      result.filter_drops += cp.filter_drops();
    }
  }
  return result;
}

}  // namespace congos::harness
