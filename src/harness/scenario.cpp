#include "harness/scenario.h"

#include <algorithm>
#include <cstdlib>

#include "adversary/adversary.h"
#include "baseline/direct_send.h"
#include "baseline/plain_gossip.h"
#include "baseline/strong_confidential.h"
#include "common/assert.h"
#include "common/thread_pool.h"
#include "congos/congos_process.h"
#include "sim/delivery_mux.h"
#include "sim/engine.h"

namespace congos::harness {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kCongos: return "congos";
    case Protocol::kDirect: return "direct";
    case Protocol::kDirectPaced: return "direct-paced";
    case Protocol::kStrongConfidential: return "strong-conf";
    case Protocol::kPlainGossip: return "plain-gossip";
  }
  return "?";
}

/// Everything a running scenario owns. Auditors and the adversary composite
/// must have stable addresses (the engine holds pointers), hence the pimpl.
struct ScenarioRun::Impl {
  explicit Impl(std::size_t n) : qod(n) {}

  audit::DeliveryAuditor qod;
  std::shared_ptr<const core::CongosConfig> ccfg;
  std::shared_ptr<const partition::PartitionSet> partitions;
  // Sharded-execution plumbing; both stay null for a serial engine. Declared
  // before `engine` so the engine (which holds raw pointers to them) is
  // destroyed first.
  std::unique_ptr<sim::DeliveryMux> mux;
  std::unique_ptr<ThreadPool> engine_pool;
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<audit::ConfidentialityAuditor> confidentiality;
  adversary::Composite adversaries;
  adversary::Theorem1* thm1 = nullptr;
  Round max_deadline = 0;
};

std::size_t default_engine_threads() {
  static const std::size_t cached = [] {
    if (const char* v = std::getenv("CONGOS_ENGINE_THREADS")) {
      const long parsed = std::strtol(v, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{1};
  }();
  return cached;
}

ScenarioRun::ScenarioRun(const ScenarioConfig& cfg)
    : cfg_(cfg), impl_(std::make_unique<Impl>(cfg.n)) {
  CONGOS_ASSERT(cfg_.n >= 2);
  Rng seeder(cfg_.seed);

  // With a sharded engine the shared QoD auditor must sit behind a
  // DeliveryMux (re-serializes per-process delivery reports); processes are
  // wired to whichever listener the thread count calls for.
  const std::size_t engine_threads =
      cfg_.engine_threads != 0 ? cfg_.engine_threads : default_engine_threads();
  sim::DeliveryListener* listener = &impl_->qod;
  if (engine_threads > 1) {
    impl_->mux = std::make_unique<sim::DeliveryMux>(&impl_->qod, cfg_.n);
    listener = impl_->mux.get();
  }

  // Shared CONGOS inputs (partition family is common knowledge).
  if (cfg_.protocol == Protocol::kCongos) {
    impl_->ccfg = std::make_shared<const core::CongosConfig>(cfg_.congos);
    impl_->partitions = core::CongosProcess::build_partitions(cfg_.n, *impl_->ccfg);
  }

  // Deterministic lazy-process selection (CONGOS only).
  DynamicBitset lazy(cfg_.n);
  if (cfg_.lazy_fraction > 0.0 && cfg_.protocol == Protocol::kCongos) {
    const auto k = static_cast<std::uint32_t>(
        static_cast<double>(cfg_.n) * std::min(cfg_.lazy_fraction, 1.0));
    Rng picker(cfg_.seed ^ 0x1a27ULL);
    lazy = DynamicBitset::from_indices(
        cfg_.n, picker.sample_without_replacement(static_cast<std::uint32_t>(cfg_.n), k));
  }

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(cfg_.n);
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    const std::uint64_t pseed = seeder.next();
    switch (cfg_.protocol) {
      case Protocol::kCongos:
        procs.push_back(std::make_unique<core::CongosProcess>(
            p, impl_->ccfg, impl_->partitions, pseed, listener,
            lazy.test(p) ? core::ProcessBehavior::kLazy
                         : core::ProcessBehavior::kHonest));
        break;
      case Protocol::kDirect:
        procs.push_back(std::make_unique<baseline::DirectSendProcess>(
            p, baseline::DirectSendProcess::Options{false}, listener));
        break;
      case Protocol::kDirectPaced:
        procs.push_back(std::make_unique<baseline::DirectSendProcess>(
            p, baseline::DirectSendProcess::Options{true}, listener));
        break;
      case Protocol::kStrongConfidential:
        procs.push_back(std::make_unique<baseline::StrongConfidentialProcess>(
            p, baseline::StrongConfidentialProcess::Options{cfg_.baseline_fanout},
            pseed, listener));
        break;
      case Protocol::kPlainGossip:
        procs.push_back(std::make_unique<baseline::PlainGossipProcess>(
            p, baseline::PlainGossipProcess::Options{cfg_.baseline_fanout, cfg_.n},
            pseed, listener));
        break;
    }
  }

  impl_->engine = std::make_unique<sim::Engine>(std::move(procs), seeder.next());
  sim::Engine& engine = *impl_->engine;
  if (cfg_.faults.enabled()) engine.network().set_faults(cfg_.faults);
  if (engine_threads > 1) {
    // The driving thread participates in every shard batch, so a budget of k
    // threads means k-1 pool workers. 2x shards over-decomposes for load
    // balance; the partition is fixed, so this stays deterministic.
    impl_->engine_pool = std::make_unique<ThreadPool>(engine_threads - 1);
    engine.set_parallelism(impl_->engine_pool.get(), 2 * engine_threads,
                           impl_->mux.get());
  }

  impl_->confidentiality = std::make_unique<audit::ConfidentialityAuditor>(
      cfg_.n, impl_->partitions.get());
  if (cfg_.audit_confidentiality) engine.add_observer(impl_->confidentiality.get());
  engine.add_observer(&impl_->qod);
  for (auto* obs : cfg_.extra_observers) engine.add_observer(obs);

  switch (cfg_.workload) {
    case WorkloadKind::kContinuous: {
      auto opts = cfg_.continuous;
      for (Round d : opts.deadlines) {
        impl_->max_deadline = std::max(impl_->max_deadline, d);
      }
      if (opts.last_injection_round < 0) {
        // Stop injecting early enough that every rumor can drain.
        opts.last_injection_round = cfg_.rounds - 1;
      }
      impl_->adversaries.add(std::make_unique<adversary::Continuous>(opts));
      break;
    }
    case WorkloadKind::kTheorem1: {
      auto w = std::make_unique<adversary::Theorem1>(cfg_.theorem1);
      impl_->thm1 = w.get();
      impl_->max_deadline = cfg_.theorem1.dmax;
      impl_->adversaries.add(std::move(w));
      break;
    }
    case WorkloadKind::kNone:
      break;
  }
  if (cfg_.churn) {
    impl_->adversaries.add(std::make_unique<adversary::RandomChurn>(*cfg_.churn));
  }
  if (cfg_.crash_on_service) {
    impl_->adversaries.add(
        std::make_unique<adversary::CrashOnService>(*cfg_.crash_on_service));
  }
  if (cfg_.crash_senders) {
    impl_->adversaries.add(
        std::make_unique<adversary::CrashSenders>(*cfg_.crash_senders));
  }
  for (auto* adv : cfg_.extra_adversaries) impl_->adversaries.add_unowned(adv);
  engine.set_adversary(&impl_->adversaries);

  // Drain window: every injected rumor's deadline must pass before
  // finalize() classifies it.
  impl_->max_deadline = std::max(impl_->max_deadline, cfg_.min_drain);
}

ScenarioRun::~ScenarioRun() = default;

sim::Engine& ScenarioRun::engine() { return *impl_->engine; }

Round ScenarioRun::total_rounds() const {
  return cfg_.rounds + impl_->max_deadline + 2;
}

void ScenarioRun::run_until(Round r) {
  const Round stop = std::min(r, total_rounds());
  if (stop > impl_->engine->now()) {
    impl_->engine->stats().reserve_rounds(
        static_cast<std::size_t>(stop - impl_->engine->now()));
  }
  while (impl_->engine->now() < stop) impl_->engine->step();
}

bool ScenarioRun::finished() const {
  return impl_->engine->now() >= total_rounds();
}

ScenarioResult ScenarioRun::finalize() const {
  const sim::Engine& engine = *impl_->engine;

  ScenarioResult result;
  const auto& stats = engine.stats();
  result.max_per_round = stats.max_from(cfg_.measure_from);
  result.mean_per_round = stats.mean_from(cfg_.measure_from);
  result.p50_per_round = stats.percentile_from(cfg_.measure_from, 50.0);
  result.p95_per_round = stats.percentile_from(cfg_.measure_from, 95.0);
  result.total_messages = stats.total_sent();
  for (std::size_t k = 0; k < sim::kNumServiceKinds; ++k) {
    result.max_by_kind[k] =
        stats.max_from(cfg_.measure_from, static_cast<sim::ServiceKind>(k));
    result.total_by_kind[k] =
        stats.total_from(cfg_.measure_from, static_cast<sim::ServiceKind>(k));
  }

  result.max_bytes_per_round = stats.max_bytes_from(cfg_.measure_from);
  result.total_bytes = stats.total_bytes();
  result.total_bytes_modeled = stats.total_modeled_bytes();
  // Satellite of the wire-codec PR: assert the aggregation path never
  // narrows (stats accumulates in u64; the result fields must match).
  static_assert(std::is_same_v<decltype(result.total_bytes), std::uint64_t>);
  static_assert(std::is_same_v<
                std::remove_reference_t<decltype(result.total_bytes_by_kind[0])>,
                std::uint64_t>);
  for (std::size_t k = 0; k < sim::kNumServiceKinds; ++k) {
    result.total_bytes_by_kind[k] =
        stats.total_bytes(static_cast<sim::ServiceKind>(k));
  }

  for (std::size_t f = 0; f < sim::kNumFaultKinds; ++f) {
    result.faults_by_kind[f] = stats.faults(static_cast<sim::FaultKind>(f));
  }
  result.fault_total = stats.fault_total();

  result.qod = impl_->qod.finalize(engine.now());
  result.leaks = impl_->confidentiality->leaks();
  result.foreign_fragments =
      impl_->confidentiality->count(audit::ViolationKind::kForeignFragment);
  result.unknown_payloads = impl_->confidentiality->unknown_payloads();
  result.weakest_coalition = impl_->confidentiality->weakest_rumor_coalition();
  if (impl_->thm1 != nullptr) {
    result.theorem1_dest_pairs = impl_->thm1->dest_pairs();
  }
  result.injected = impl_->qod.injected_count();
  result.crashes = impl_->qod.crash_count();
  result.restarts = impl_->qod.restart_count();

  if (cfg_.protocol == Protocol::kStrongConfidential) {
    for (ProcessId p = 0; p < cfg_.n; ++p) {
      const auto& sp =
          static_cast<const baseline::StrongConfidentialProcess&>(engine.process(p));
      result.strong_max_merged =
          std::max<std::uint64_t>(result.strong_max_merged, sp.max_merged());
    }
  }

  if (cfg_.protocol == Protocol::kCongos) {
    for (ProcessId p = 0; p < cfg_.n; ++p) {
      const auto& cp = static_cast<const core::CongosProcess&>(engine.process(p));
      const auto& c = cp.counters();
      result.cg_confirmed += c.confirmed;
      result.cg_shoots += c.shoots;
      result.cg_shoot_messages += c.shoot_messages;
      result.cg_injected_direct += c.injected_direct;
      result.cg_reassembled += c.reassembled;
      result.filter_drops += cp.filter_drops();
      result.duplicates_suppressed += cp.duplicates_suppressed();
    }
  }
  return result;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  ScenarioRun run(cfg);
  run.run_all();
  return run.finalize();
}

}  // namespace congos::harness
