// ClusterRunner: fork a localhost CONGOS cluster of congos_d daemons and
// audit the observed traffic (DESIGN.md section 13).
//
// run_cluster() forks N congos_d processes, reads their READY handshakes
// off stdout pipes (the daemons bind ephemeral ports, so parallel ctest
// runs never collide), distributes the shared wall-clock epoch and the
// peer port table over the control sockets, injects the configured rumors
// once their target round opens, waits for the round bound, and reaps
// every daemon.
//
// The audits run on what actually happened on the wire: the runner parses
// the per-daemon event logs (net/control.h line format) and replays them
// through the same audit::DeliveryAuditor and audit::ConfidentialityAuditor
// the simulator uses - injections and application deliveries drive QoD
// (Definition 1), and every received envelope frame is re-decoded from its
// logged bytes and fed to the confidentiality auditor (Definition 2), so a
// leak on the real wire is caught by the identical machinery that guards
// the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "common/bitset.h"
#include "common/types.h"

namespace congos::harness {

/// One rumor the runner injects at its source daemon once `round` opens
/// (wall-clock best effort: the daemon stamps the actual injection round).
struct ClusterInject {
  ProcessId source = 0;
  std::uint64_t seq = 0;
  Round round = 2;
  Round deadline = 40;
  DynamicBitset dest;
  std::vector<std::uint8_t> data;
};

struct ClusterConfig {
  /// Path to the congos_d binary (tests take it from $CONGOS_D_BIN).
  std::string daemon;
  /// Directory for per-daemon artifacts (node<i>.log / node<i>.err);
  /// created if missing.
  std::string workdir;

  std::size_t n = 8;
  std::uint64_t seed = 1;
  std::uint32_t tau = 1;
  /// Keep the fragment pipeline below the Theorem 16 cutoff (congos_d
  /// --no-degenerate). On by default: at cluster-smoke scales (n ~ 8) CONGOS
  /// would otherwise degenerate to direct sending and the run would not
  /// exercise the confidential pipeline at all.
  bool no_degenerate = true;
  /// Forwarded to congos_d --faults (socket-level fault shim); empty = off.
  std::string fault_spec;
  /// Retransmission hardening; on by default - real sockets always risk the
  /// +-1 round of apparent delay from scheduling jitter.
  bool retransmit = true;
  Round max_link_delay = 2;
  /// Batched UDP (sendmmsg/recvmmsg) is the daemon default; false forces
  /// the single-syscall fallback (congos_d --no-batch).
  bool udp_batch = true;
  /// LZ4-compress outbound datagrams (congos_d --compress). Check
  /// wire::lz4_available() first - daemons exit 2 at startup without LZ4.
  bool compress = false;

  Round rounds = 64;
  std::int64_t round_ms = 30;
  /// Per-daemon wall-clock cap (congos_d --duration backstop).
  std::int64_t duration_s = 60;

  std::vector<ClusterInject> injections;
};

struct ClusterResult {
  /// Setup failure description; empty when the cluster ran to completion.
  std::string error;

  // Observed-traffic audits.
  audit::QodReport qod;
  std::uint64_t leaks = 0;
  std::uint64_t foreign_fragments = 0;
  std::uint64_t unknown_payloads = 0;
  std::size_t weakest_coalition = SIZE_MAX;

  // Log volume (sanity: a silent cluster is a failed cluster).
  std::uint64_t injected = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t recv_frames = 0;
  std::uint64_t log_parse_errors = 0;

  /// Exit code per daemon (0 = clean; 128+sig when killed).
  std::vector<int> exit_codes;
  /// Each daemon's final `STATS` JSON line (empty when it produced none).
  std::vector<std::string> stats_json;

  bool daemons_ok() const {
    for (const int c : exit_codes) {
      if (c != 0) return false;
    }
    return !exit_codes.empty();
  }
  /// The cluster acceptance gate: everything launched, every daemon exited
  /// clean, QoD held and no confidentiality violation was observed.
  bool ok() const {
    return error.empty() && daemons_ok() && qod.ok() && leaks == 0 &&
           foreign_fragments == 0 && log_parse_errors == 0;
  }
};

ClusterResult run_cluster(const ClusterConfig& cfg);

}  // namespace congos::harness
