// ClusterRunner: fork a localhost CONGOS cluster of congos_d daemons and
// audit the observed traffic (DESIGN.md section 13).
//
// run_cluster() forks N congos_d processes, reads their READY handshakes
// off stdout pipes (the daemons bind ephemeral ports, so parallel ctest
// runs never collide), distributes the shared wall-clock epoch and the
// peer port table over the control sockets, injects the configured rumors
// once their target round opens, waits for the round bound, and reaps
// every daemon.
//
// The audits run on what actually happened on the wire: the runner parses
// the per-daemon event logs (net/control.h line format) and replays them
// through the same audit::DeliveryAuditor and audit::ConfidentialityAuditor
// the simulator uses - injections and application deliveries drive QoD
// (Definition 1), and every received envelope frame is re-decoded from its
// logged bytes and fed to the confidentiality auditor (Definition 2), so a
// leak on the real wire is caught by the identical machinery that guards
// the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "common/bitset.h"
#include "common/types.h"

namespace congos::harness {

/// One rumor the runner injects at its source daemon once `round` opens
/// (wall-clock best effort: the daemon stamps the actual injection round).
struct ClusterInject {
  ProcessId source = 0;
  std::uint64_t seq = 0;
  Round round = 2;
  Round deadline = 40;
  DynamicBitset dest;
  std::vector<std::uint8_t> data;
};

/// One scheduled crash in a chaos run: daemon `target` is SIGKILLed (never
/// graceful - the kernel gives it no chance to flush anything) once
/// `kill_round` opens, and respawned `down_rounds` rounds later with
/// congos_d --resume pointed at its last durable checkpoint.
struct KillEvent {
  ProcessId target = 0;
  Round kill_round = 8;
  Round down_rounds = 4;
};

/// Seeded kill-schedule generator - the real-wire echo of the sim
/// adversary's RandomChurn (adversary/patterns.h): which daemons die, when,
/// and for how long are all drawn from one Rng, so a chaos cluster run is
/// reproducible from (seed, n, rounds) alone.
struct KillScheduleConfig {
  std::uint64_t seed = 1;
  /// Scheduled kills to draw (distinct victims; capped by eligible daemons).
  std::size_t kills = 2;
  /// Kill rounds are uniform in [min_round, max_round]; max_round <= 0
  /// derives a bound that leaves every victim time to resume and drain
  /// before the round budget ends.
  Round min_round = 8;
  Round max_round = 0;
  /// Downtime drawn uniform in [down_min, down_max] rounds.
  Round down_min = 4;
  Round down_max = 8;
  /// Never killed - the RandomChurn min_alive/protected_ids analogue (e.g.
  /// injection sources that must outlive their own deadline fallback).
  std::vector<ProcessId> protected_ids;
};

std::vector<KillEvent> make_kill_schedule(const KillScheduleConfig& gen,
                                          std::size_t n, Round rounds);

struct ClusterConfig {
  /// Path to the congos_d binary (tests take it from $CONGOS_D_BIN).
  std::string daemon;
  /// Directory for per-daemon artifacts (node<i>.log / node<i>.err);
  /// created if missing.
  std::string workdir;

  std::size_t n = 8;
  std::uint64_t seed = 1;
  std::uint32_t tau = 1;
  /// Keep the fragment pipeline below the Theorem 16 cutoff (congos_d
  /// --no-degenerate). On by default: at cluster-smoke scales (n ~ 8) CONGOS
  /// would otherwise degenerate to direct sending and the run would not
  /// exercise the confidential pipeline at all.
  bool no_degenerate = true;
  /// Forwarded to congos_d --faults (socket-level fault shim); empty = off.
  std::string fault_spec;
  /// Retransmission hardening; on by default - real sockets always risk the
  /// +-1 round of apparent delay from scheduling jitter.
  bool retransmit = true;
  Round max_link_delay = 2;
  /// Batched UDP (sendmmsg/recvmmsg) is the daemon default; false forces
  /// the single-syscall fallback (congos_d --no-batch).
  bool udp_batch = true;
  /// LZ4-compress outbound datagrams (congos_d --compress). Check
  /// wire::lz4_available() first - daemons exit 2 at startup without LZ4.
  bool compress = false;

  Round rounds = 64;
  std::int64_t round_ms = 30;
  /// Per-daemon wall-clock cap (congos_d --duration backstop).
  std::int64_t duration_s = 60;
  /// Per-daemon --duration override in seconds (0 / missing = duration_s).
  /// Tests use this to provoke an unscheduled mid-run exit and assert the
  /// supervisor surfaces it.
  std::vector<std::int64_t> duration_overrides;

  /// Durable checkpoints (congos_d --state / --checkpoint-every): written
  /// to <workdir>/state<i>.ckpt. Forced on whenever kill_plan is non-empty,
  /// since a respawn without a state file has nothing to resume from.
  bool durable_state = false;
  Round checkpoint_every = 8;
  /// Scheduled SIGKILL + resume events; supervised by run_cluster's
  /// waitpid loop (see KillEvent / make_kill_schedule).
  std::vector<KillEvent> kill_plan;
  /// Respawn attempts per scheduled kill before the daemon is declared
  /// lost (bounded exponential backoff between attempts).
  int respawn_retries = 3;

  std::vector<ClusterInject> injections;
};

struct ClusterResult {
  /// Setup failure description; empty when the cluster ran to completion.
  std::string error;

  // Observed-traffic audits.
  audit::QodReport qod;
  std::uint64_t leaks = 0;
  std::uint64_t foreign_fragments = 0;
  std::uint64_t unknown_payloads = 0;
  std::size_t weakest_coalition = SIZE_MAX;

  // Log volume (sanity: a silent cluster is a failed cluster).
  std::uint64_t injected = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t recv_frames = 0;
  std::uint64_t log_parse_errors = 0;

  // Crash/restart bookkeeping (mirrors <workdir>/lifecycle.log, which the
  // offline auditors also consume for continuously-alive admissibility).
  std::uint64_t scheduled_kills = 0;
  std::uint64_t resumes = 0;
  /// Daemons that died without a scheduled kill (a real crash or a
  /// mis-specified run). Surfaced, never masked: ok() fails on any.
  std::uint64_t unexpected_exits = 0;
  /// Scheduled respawns that exhausted their retry budget.
  std::uint64_t respawn_failures = 0;
  /// Checkpoint files decoded and replayed through the confidentiality
  /// auditor after the run (a state file is readable by anyone with the
  /// disk, so it gets the same scrutiny as wire traffic).
  std::uint64_t state_files_audited = 0;
  std::uint64_t state_file_errors = 0;

  /// Exit code per daemon (0 = clean; 128+sig when killed).
  std::vector<int> exit_codes;
  /// Each daemon's final `STATS` JSON line (empty when it produced none).
  std::vector<std::string> stats_json;

  bool daemons_ok() const {
    for (const int c : exit_codes) {
      if (c != 0) return false;
    }
    return !exit_codes.empty();
  }
  /// The cluster acceptance gate: everything launched, every daemon's
  /// final incarnation exited clean (scheduled mid-run kills are recorded
  /// in lifecycle counters, not here), no unscheduled death or failed
  /// respawn, QoD held under continuously-alive admissibility, and no
  /// confidentiality violation was observed on the wire or in state files.
  bool ok() const {
    return error.empty() && daemons_ok() && qod.ok() && leaks == 0 &&
           foreign_fragments == 0 && log_parse_errors == 0 &&
           unexpected_exits == 0 && respawn_failures == 0 &&
           state_file_errors == 0;
  }
};

ClusterResult run_cluster(const ClusterConfig& cfg);

}  // namespace congos::harness
