// Recorded scenario execution and deterministic replay.
//
// run_recorded() executes a scenario with a replay::DecisionRecorder and a
// TraceLog attached and returns the result together with a filled
// replay::ReproFile — the artifact SweepRunner dumps when an auditor flags a
// scenario, and what `congos replay` consumes. replay_file() re-executes a
// ReproFile's config from scratch and cross-checks every recorded
// observation (per-round delivery counts, their FNV-1a golden hash, the
// adversary decision trace); any mismatch pinpoints the first diverging
// round/decision. Because the simulator is a pure function of
// (config, seed), a verified replay is byte-identical, not merely similar.
#pragma once

#include <string>

#include "harness/scenario.h"
#include "replay/recorder.h"
#include "replay/repro.h"

namespace congos::harness {

/// The auditor-failure predicate shared by SweepRunner's artifact dumping
/// and the CI smoke checks: QoD violated, any confidentiality leak, or a
/// structural foreign-fragment violation.
inline bool scenario_failed(const ScenarioResult& r) {
  return !r.qod.ok() || r.leaks > 0 || r.foreign_fragments > 0;
}

struct RecordedRun {
  ScenarioResult result;
  replay::ReproFile repro;
};

/// Run `cfg` to completion with recording observers attached (they are
/// passive: the execution is identical to run_scenario()). The config must
/// be recordable (replay::is_recordable); CONGOS_ASSERTs otherwise.
/// `label`/`reason` are stored verbatim in the artifact.
RecordedRun run_recorded(const ScenarioConfig& cfg, const std::string& label = {},
                         const std::string& reason = {});

struct ReplayOptions {
  /// Stop the re-execution at this round (< 0: run to completion). Partial
  /// replays verify the per-round count prefix; the full-trace hash is only
  /// checked on complete runs.
  Round until_round = -1;
};

struct ReplayReport {
  ScenarioResult result;
  Round executed_rounds = 0;
  bool complete = false;

  /// FNV-1a hash of the re-executed per-round delivery counts.
  std::uint64_t trace_hash = 0;
  /// Full-run hash equals the recorded hash (complete runs only).
  bool hash_match = false;
  /// Re-executed per-round counts match the recorded ones over the
  /// executed prefix.
  bool counts_match = false;
  /// First differing per-round count, or kNoRound.
  Round first_count_divergence = kNoRound;
  /// Decision traces agree over the executed prefix.
  bool decisions_match = false;
  /// Index of the first differing decision, or SIZE_MAX.
  std::size_t first_decision_divergence = SIZE_MAX;

  /// Everything checked agrees with the recording.
  bool verified() const {
    return counts_match && decisions_match && (!complete || hash_match);
  }
};

/// Re-execute `file.config` deterministically and compare against the
/// recorded observations.
ReplayReport replay_file(const replay::ReproFile& file, ReplayOptions opt = {});

}  // namespace congos::harness
