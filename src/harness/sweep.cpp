#include "harness/sweep.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/thread_pool.h"
#include "harness/record.h"
#include "replay/repro.h"

namespace congos::harness {

namespace {

/// Serializes the progress line; completions arrive from every worker.
class ProgressLine {
 public:
  ProgressLine(const char* label, std::size_t total, std::size_t threads,
               bool enabled)
      : label_(label),
        total_(total),
        threads_(threads),
        enabled_(enabled && isatty(fileno(stderr)) != 0) {}

  void tick() {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    std::fprintf(stderr, "\r[%s] %zu/%zu scenarios (threads=%zu)", label_, done_,
                 total_, threads_);
    if (done_ == total_) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }

 private:
  const char* label_;
  std::size_t total_;
  std::size_t threads_;
  bool enabled_;
  std::mutex mu_;
  std::size_t done_ = 0;
};

}  // namespace

SweepRunner::SweepRunner() : SweepRunner(Options{}) {}

SweepRunner::SweepRunner(Options opts) : opts_(opts) {
  threads_ = opts_.threads != 0 ? opts_.threads : default_threads();
}

std::size_t SweepRunner::default_threads() {
  static const std::size_t cached = [] {
    if (const char* v = std::getenv("CONGOS_BENCH_THREADS")) {
      const long parsed = std::strtol(v, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    return std::max<std::size_t>(hw / default_engine_threads(), 1);
  }();
  return cached;
}

std::string SweepRunner::artifact_dir() const {
  if (opts_.artifact_dir != nullptr) return opts_.artifact_dir;
  if (const char* env = std::getenv("CONGOS_REPRO_DIR")) return env;
  return {};
}

ScenarioResult SweepRunner::run_one(const ScenarioConfig& cfg,
                                    const std::string& dir, std::size_t index,
                                    std::string* artifact) const {
  if (dir.empty() || !replay::is_recordable(cfg)) return run_scenario(cfg);

  // Recording observers are passive, so the result stays byte-identical to
  // an unrecorded run (tests/test_replay.cpp pins this).
  auto recorded = run_recorded(cfg, opts_.label,
                               "auditor failure during sweep");
  if (scenario_failed(recorded.result)) {
    std::string path = dir + "/" + opts_.label + "-" + std::to_string(index) +
                       ".repro";
    if (replay::write_file(path, recorded.repro)) {
      *artifact = std::move(path);
    } else {
      std::fprintf(stderr, "[%s] failed to write repro artifact %s\n",
                   opts_.label, path.c_str());
    }
  }
  return recorded.result;
}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<ScenarioConfig>& grid) const {
  std::vector<ScenarioResult> results(grid.size());
  const std::size_t workers = std::min(threads_, std::max<std::size_t>(grid.size(), 1));
  ProgressLine progress(opts_.label, grid.size(), workers, opts_.progress);

  const std::string dir = artifact_dir();
  if (!dir.empty()) {
    ::mkdir(dir.c_str(), 0777);  // best effort; write_file reports failures
  }
  std::vector<std::string> paths(grid.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      results[i] = run_one(grid[i], dir, i, &paths[i]);
      progress.tick();
    }
  } else {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      pool.submit([this, &grid, &results, &progress, &dir, &paths, i] {
        results[i] = run_one(grid[i], dir, i, &paths[i]);
        progress.tick();
      });
    }
    pool.wait_idle();
  }

  artifacts_.clear();
  for (auto& p : paths) {
    if (!p.empty()) artifacts_.push_back(std::move(p));
  }
  return results;
}

}  // namespace congos::harness
