#include "harness/cluster.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "congos/congos_process.h"
#include "net/clock.h"
#include "net/control.h"
#include "wire/envelope.h"

namespace congos::harness {
namespace {

struct Daemon {
  pid_t pid = -1;
  int stdout_fd = -1;          // read end of the stdout pipe
  std::uint16_t data_port = 0;
  std::uint16_t control_port = 0;
  std::string stdout_tail;     // everything read after READY
  int exit_code = -1;
};

std::vector<std::string> daemon_args(const ClusterConfig& cfg, ProcessId id) {
  std::vector<std::string> args;
  args.push_back(cfg.daemon);
  args.push_back("--id=" + std::to_string(id));
  args.push_back("--n=" + std::to_string(cfg.n));
  args.push_back("--seed=" + std::to_string(cfg.seed));
  args.push_back("--tau=" + std::to_string(cfg.tau));
  args.push_back("--rounds=" + std::to_string(cfg.rounds));
  args.push_back("--duration=" + std::to_string(cfg.duration_s));
  args.push_back("--log=" + cfg.workdir + "/node" + std::to_string(id) + ".log");
  if (cfg.no_degenerate) args.push_back("--no-degenerate");
  if (cfg.retransmit) {
    args.push_back("--retransmit");
    args.push_back("--max-link-delay=" + std::to_string(cfg.max_link_delay));
  }
  if (!cfg.fault_spec.empty()) args.push_back("--faults=" + cfg.fault_spec);
  if (!cfg.udp_batch) args.push_back("--no-batch");
  if (cfg.compress) args.push_back("--compress");
  return args;
}

bool spawn_daemon(const ClusterConfig& cfg, ProcessId id, Daemon* d,
                  std::string* error) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  const std::string err_path =
      cfg.workdir + "/node" + std::to_string(id) + ".err";
  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: stdout -> pipe, stderr -> node<i>.err, exec the daemon.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    const int ef = ::open(err_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (ef >= 0) {
      ::dup2(ef, STDERR_FILENO);
      ::close(ef);
    }
    const std::vector<std::string> args = daemon_args(cfg, id);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  d->pid = pid;
  d->stdout_fd = pipe_fds[0];
  return true;
}

/// Reads one '\n'-terminated line from fd, polling up to `deadline_ms` wall
/// time. Returns false on timeout/EOF.
bool read_line(int fd, std::int64_t deadline_ms, std::string* line) {
  line->clear();
  char c = 0;
  for (;;) {
    const ssize_t got = ::read(fd, &c, 1);
    if (got == 1) {
      if (c == '\n') return true;
      line->push_back(c);
      continue;
    }
    if (got == 0) return false;  // EOF
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return false;
    const std::int64_t now = net::wall_ms_now();
    if (now >= deadline_ms) return false;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::min<std::int64_t>(
                            deadline_ms - now, 200))) < 0 &&
        errno != EINTR) {
      return false;
    }
  }
}

bool parse_ready(const std::string& text, ProcessId expect_id, Daemon* d) {
  net::Line line;
  if (!net::parse_line(text, &line) || line.verb != "READY") return false;
  bool ok = true;
  const std::int64_t id = line.get_int("id", &ok);
  const std::int64_t data = line.get_int("data", &ok);
  const std::int64_t control = line.get_int("control", &ok);
  if (!ok || id != static_cast<std::int64_t>(expect_id) || data <= 0 ||
      data > 65535 || control <= 0 || control > 65535) {
    return false;
  }
  d->data_port = static_cast<std::uint16_t>(data);
  d->control_port = static_cast<std::uint16_t>(control);
  return true;
}

/// The runner's control-side socket: sends a command to one daemon's
/// control port and waits for a reply from that port.
class ControlClient {
 public:
  bool open(std::string* error) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      *error = std::string("control socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      *error = std::string("control bind: ") + std::strerror(errno);
      return false;
    }
    return true;
  }
  ~ControlClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends `cmd` and waits for a reply starting with `expect`; retries the
  /// send (commands and acks are datagrams; either may drop). Returns the
  /// full reply via *reply when non-null.
  bool request(std::uint16_t port, const std::string& cmd,
               const std::string& expect, std::string* reply = nullptr,
               int tries = 20, int wait_ms = 150) {
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    to.sin_port = htons(port);
    for (int t = 0; t < tries; ++t) {
      (void)::sendto(fd_, cmd.data(), cmd.size(), 0,
                     reinterpret_cast<sockaddr*>(&to), sizeof(to));
      const std::int64_t deadline = net::wall_ms_now() + wait_ms;
      for (;;) {
        const std::int64_t now = net::wall_ms_now();
        if (now >= deadline) break;
        pollfd pfd{fd_, POLLIN, 0};
        (void)::poll(&pfd, 1, static_cast<int>(deadline - now));
        char buf[65536];
        sockaddr_in from{};
        socklen_t from_len = sizeof(from);
        const ssize_t got =
            ::recvfrom(fd_, buf, sizeof(buf), 0,
                       reinterpret_cast<sockaddr*>(&from), &from_len);
        if (got < 0) continue;
        if (ntohs(from.sin_port) != port) continue;  // stale reply
        const std::string text(buf, static_cast<std::size_t>(got));
        if (text.rfind(expect, 0) == 0) {
          if (reply != nullptr) *reply = text;
          return true;
        }
      }
    }
    return false;
  }

 private:
  int fd_ = -1;
};

void sleep_until(std::int64_t wall_ms) {
  for (;;) {
    const std::int64_t now = net::wall_ms_now();
    if (now >= wall_ms) return;
    ::usleep(static_cast<useconds_t>(
        std::min<std::int64_t>(wall_ms - now, 100) * 1000));
  }
}

/// Reaps `d` within `grace_ms`, escalating SIGTERM -> SIGKILL.
void reap(Daemon* d, std::int64_t grace_ms) {
  if (d->pid < 0) return;
  const std::int64_t deadline = net::wall_ms_now() + grace_ms;
  bool killed = false;
  for (;;) {
    int status = 0;
    const pid_t got = ::waitpid(d->pid, &status, WNOHANG);
    if (got == d->pid) {
      d->exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                       : 128 + WTERMSIG(status);
      break;
    }
    if (got < 0 && errno != EINTR) {
      d->exit_code = -1;
      break;
    }
    const std::int64_t now = net::wall_ms_now();
    if (now >= deadline) {
      if (!killed) {
        ::kill(d->pid, SIGKILL);
        killed = true;
      }
      int st = 0;
      (void)::waitpid(d->pid, &st, 0);
      d->exit_code = 128 + SIGKILL;
      break;
    }
    ::usleep(20 * 1000);
  }
  d->pid = -1;
  // Drain whatever stdout remains (the STATS line) now that the writer is
  // gone.
  if (d->stdout_fd >= 0) {
    char buf[4096];
    for (;;) {
      const ssize_t got = ::read(d->stdout_fd, buf, sizeof(buf));
      if (got <= 0) break;
      d->stdout_tail.append(buf, static_cast<std::size_t>(got));
    }
    ::close(d->stdout_fd);
    d->stdout_fd = -1;
  }
}

std::string stats_line_of(const std::string& tail) {
  std::istringstream in(tail);
  std::string line;
  std::string stats;
  while (std::getline(in, line)) {
    if (line.rfind("STATS ", 0) == 0) stats = line.substr(6);
  }
  return stats;
}

struct LoggedDelivery {
  ProcessId at = kNoProcess;
  RumorUid uid;
  Round when = 0;
  std::vector<std::uint8_t> data;
};

/// Replays the daemons' event logs through the simulator's auditors.
void audit_logs(const ClusterConfig& cfg, ClusterResult* r) {
  std::vector<std::pair<sim::Rumor, Round>> injects;
  std::vector<LoggedDelivery> deliveries;
  std::vector<std::pair<std::vector<std::uint8_t>, Round>> frames;

  for (std::size_t i = 0; i < cfg.n; ++i) {
    const std::string path = cfg.workdir + "/node" + std::to_string(i) + ".log";
    std::ifstream in(path);
    std::string text;
    while (std::getline(in, text)) {
      if (text.empty()) continue;
      net::Line line;
      if (!net::parse_line(text, &line)) {
        ++r->log_parse_errors;
        continue;
      }
      bool ok = true;
      if (line.verb == "inject") {
        sim::Rumor rumor;
        Round round = 0;
        std::string err;
        if (!net::parse_inject_event(line, &rumor, &round, &err)) {
          ++r->log_parse_errors;
          continue;
        }
        injects.emplace_back(std::move(rumor), round);
      } else if (line.verb == "deliver") {
        LoggedDelivery d;
        d.when = line.get_int("round", &ok);
        d.at = static_cast<ProcessId>(line.get_int("at", &ok));
        d.uid.source = static_cast<ProcessId>(line.get_int("src", &ok));
        d.uid.seq = static_cast<std::uint64_t>(line.get_int("seq", &ok));
        if (!ok || !net::from_hex(line.get("data", &ok), &d.data) || !ok) {
          ++r->log_parse_errors;
          continue;
        }
        deliveries.push_back(std::move(d));
      } else if (line.verb == "recv") {
        const Round round = line.get_int("round", &ok);
        std::vector<std::uint8_t> frame;
        if (!ok || !net::from_hex(line.get("frame", &ok), &frame) || !ok) {
          ++r->log_parse_errors;
          continue;
        }
        frames.emplace_back(std::move(frame), round);
      } else {
        ++r->log_parse_errors;
      }
    }
  }

  core::CongosConfig ccfg;
  ccfg.tau = cfg.tau;
  ccfg.allow_degenerate = !cfg.no_degenerate;
  const auto partitions = core::CongosProcess::build_partitions(cfg.n, ccfg);

  audit::DeliveryAuditor qod(cfg.n);
  audit::ConfidentialityAuditor conf(cfg.n, partitions.get());
  Round horizon = cfg.rounds;
  for (const auto& [rumor, round] : injects) {
    qod.on_inject(rumor, round);
    conf.on_inject(rumor, round);
    horizon = std::max(horizon, round + rumor.deadline + 1);
  }
  for (const LoggedDelivery& d : deliveries) {
    qod.on_rumor_delivered(d.at, d.uid, d.when, d.data);
  }
  for (const auto& [frame, round] : frames) {
    wire::DecodedEnvelope dec;
    if (!wire::decode_envelope(frame, &dec)) {
      ++r->log_parse_errors;
      continue;
    }
    conf.on_envelope_delivered(dec.env, round);
  }

  r->qod = qod.finalize(horizon);
  r->leaks = conf.leaks();
  r->foreign_fragments = conf.count(audit::ViolationKind::kForeignFragment);
  r->unknown_payloads = conf.unknown_payloads();
  r->weakest_coalition = conf.weakest_rumor_coalition();
  r->injected = injects.size();
  r->deliveries = deliveries.size();
  r->recv_frames = frames.size();
}

}  // namespace

ClusterResult run_cluster(const ClusterConfig& cfg) {
  ClusterResult result;
  if (cfg.daemon.empty()) {
    result.error = "no daemon binary configured";
    return result;
  }
  if (cfg.n < 2) {
    result.error = "cluster needs n >= 2";
    return result;
  }
  ::mkdir(cfg.workdir.c_str(), 0755);  // best effort; open errors surface below

  std::vector<Daemon> daemons(cfg.n);
  const auto fail = [&](const std::string& why) {
    for (Daemon& d : daemons) {
      if (d.pid > 0) ::kill(d.pid, SIGKILL);
      reap(&d, 1000);
    }
    result.error = why;
    return result;
  };

  for (ProcessId id = 0; id < cfg.n; ++id) {
    std::string err;
    if (!spawn_daemon(cfg, id, &daemons[id], &err)) {
      return fail("spawn daemon " + std::to_string(id) + ": " + err);
    }
    // The READY read below polls, so the pipe must not block.
    const int fl = ::fcntl(daemons[id].stdout_fd, F_GETFL, 0);
    ::fcntl(daemons[id].stdout_fd, F_SETFL, fl | O_NONBLOCK);
  }

  const std::int64_t ready_deadline = net::wall_ms_now() + 15000;
  for (ProcessId id = 0; id < cfg.n; ++id) {
    std::string line;
    if (!read_line(daemons[id].stdout_fd, ready_deadline, &line) ||
        !parse_ready(line, id, &daemons[id])) {
      return fail("daemon " + std::to_string(id) + " sent no READY (got '" +
                  line + "')");
    }
  }

  ControlClient control;
  {
    std::string err;
    if (!control.open(&err)) return fail(err);
  }

  net::StartCommand start;
  start.round_ms = cfg.round_ms;
  start.epoch_ms = net::wall_ms_now() + 400;  // time to ack start everywhere
  for (const Daemon& d : daemons) start.peer_ports.push_back(d.data_port);
  const std::string start_line = net::encode_start(start);
  for (ProcessId id = 0; id < cfg.n; ++id) {
    if (!control.request(daemons[id].control_port, start_line, "ok start")) {
      return fail("daemon " + std::to_string(id) + " never acked start");
    }
  }
  const net::RoundClock clock(start.epoch_ms, start.round_ms);

  // Injections, grouped by target round in ascending order.
  std::vector<ClusterInject> plan = cfg.injections;
  std::stable_sort(plan.begin(), plan.end(),
                   [](const ClusterInject& a, const ClusterInject& b) {
                     return a.round < b.round;
                   });
  for (const ClusterInject& inj : plan) {
    sleep_until(clock.start_of(inj.round) + cfg.round_ms / 4);
    if (inj.source >= cfg.n) return fail("inject source out of range");
    net::InjectCommand cmd;
    cmd.seq = inj.seq;
    cmd.deadline = inj.deadline;
    cmd.dest = inj.dest;
    cmd.data = inj.data;
    if (!control.request(daemons[inj.source].control_port,
                         net::encode_inject(cmd),
                         "ok inject seq=" + std::to_string(inj.seq))) {
      return fail("daemon " + std::to_string(inj.source) +
                  " never acked inject seq=" + std::to_string(inj.seq));
    }
  }

  // Let the cluster run out its round budget, then reap. Daemons exit on
  // their own at --rounds; `stop` just hurries along any straggler.
  sleep_until(clock.start_of(cfg.rounds) + 200);
  for (const Daemon& d : daemons) {
    (void)control.request(d.control_port, "stop", "ok stop", nullptr,
                          /*tries=*/3, /*wait_ms=*/100);
  }
  for (Daemon& d : daemons) reap(&d, 5000);

  for (Daemon& d : daemons) {
    result.exit_codes.push_back(d.exit_code);
    result.stats_json.push_back(stats_line_of(d.stdout_tail));
  }

  audit_logs(cfg, &result);
  return result;
}

}  // namespace congos::harness
