#include "harness/cluster.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "congos/congos_process.h"
#include "net/checkpoint.h"
#include "net/clock.h"
#include "net/control.h"
#include "wire/envelope.h"

namespace congos::harness {
namespace {

struct Daemon {
  pid_t pid = -1;
  int stdout_fd = -1;          // read end of the stdout pipe
  std::uint16_t data_port = 0;
  std::uint16_t control_port = 0;
  std::string stdout_tail;     // everything read after READY, all incarnations
  int exit_code = -1;
};

/// True when daemons keep durable checkpoints: asked for explicitly, or
/// implied by a kill plan (a respawn needs a state file to resume from).
bool durable(const ClusterConfig& cfg) {
  return cfg.durable_state || !cfg.kill_plan.empty();
}

std::string state_path(const ClusterConfig& cfg, ProcessId id) {
  return cfg.workdir + "/state" + std::to_string(id) + ".ckpt";
}

std::int64_t duration_for(const ClusterConfig& cfg, ProcessId id) {
  if (id < cfg.duration_overrides.size() && cfg.duration_overrides[id] > 0) {
    return cfg.duration_overrides[id];
  }
  return cfg.duration_s;
}

/// Per-spawn variation: a respawn must reuse the dead incarnation's ports
/// (the peers' tables are fixed at `start`) and resume from its state file.
struct SpawnExtra {
  bool resume = false;
  std::uint16_t data_port = 0;     // 0 = ephemeral
  std::uint16_t control_port = 0;  // 0 = ephemeral
};

std::vector<std::string> daemon_args(const ClusterConfig& cfg, ProcessId id,
                                     const SpawnExtra& extra) {
  std::vector<std::string> args;
  args.push_back(cfg.daemon);
  args.push_back("--id=" + std::to_string(id));
  args.push_back("--n=" + std::to_string(cfg.n));
  args.push_back("--seed=" + std::to_string(cfg.seed));
  args.push_back("--tau=" + std::to_string(cfg.tau));
  args.push_back("--rounds=" + std::to_string(cfg.rounds));
  args.push_back("--duration=" + std::to_string(duration_for(cfg, id)));
  args.push_back("--log=" + cfg.workdir + "/node" + std::to_string(id) + ".log");
  if (cfg.no_degenerate) args.push_back("--no-degenerate");
  if (cfg.retransmit) {
    args.push_back("--retransmit");
    args.push_back("--max-link-delay=" + std::to_string(cfg.max_link_delay));
  }
  if (!cfg.fault_spec.empty()) args.push_back("--faults=" + cfg.fault_spec);
  if (!cfg.udp_batch) args.push_back("--no-batch");
  if (cfg.compress) args.push_back("--compress");
  if (durable(cfg)) {
    args.push_back("--state=" + state_path(cfg, id));
    args.push_back("--checkpoint-every=" + std::to_string(cfg.checkpoint_every));
  }
  if (extra.resume) args.push_back("--resume=" + state_path(cfg, id));
  if (extra.data_port != 0) {
    args.push_back("--port=" + std::to_string(extra.data_port));
    args.push_back("--control-port=" + std::to_string(extra.control_port));
  }
  return args;
}

bool spawn_daemon(const ClusterConfig& cfg, ProcessId id, Daemon* d,
                  std::string* error, const SpawnExtra& extra = {}) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  const std::string err_path =
      cfg.workdir + "/node" + std::to_string(id) + ".err";
  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: stdout -> pipe, stderr -> node<i>.err, exec the daemon.
    // Respawns append: the first incarnation's stderr is crash evidence.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    const int ef = ::open(err_path.c_str(),
                          O_WRONLY | O_CREAT | (extra.resume ? O_APPEND : O_TRUNC),
                          0644);
    if (ef >= 0) {
      ::dup2(ef, STDERR_FILENO);
      ::close(ef);
    }
    const std::vector<std::string> args = daemon_args(cfg, id, extra);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  d->pid = pid;
  d->stdout_fd = pipe_fds[0];
  return true;
}

/// Reads one '\n'-terminated line from fd, polling up to `deadline_ms` wall
/// time. Returns false on timeout/EOF.
bool read_line(int fd, std::int64_t deadline_ms, std::string* line) {
  line->clear();
  char c = 0;
  for (;;) {
    const ssize_t got = ::read(fd, &c, 1);
    if (got == 1) {
      if (c == '\n') return true;
      line->push_back(c);
      continue;
    }
    if (got == 0) return false;  // EOF
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return false;
    const std::int64_t now = net::wall_ms_now();
    if (now >= deadline_ms) return false;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::min<std::int64_t>(
                            deadline_ms - now, 200))) < 0 &&
        errno != EINTR) {
      return false;
    }
  }
}

bool parse_ready(const std::string& text, ProcessId expect_id, Daemon* d) {
  net::Line line;
  if (!net::parse_line(text, &line) || line.verb != "READY") return false;
  bool ok = true;
  const std::int64_t id = line.get_int("id", &ok);
  const std::int64_t data = line.get_int("data", &ok);
  const std::int64_t control = line.get_int("control", &ok);
  if (!ok || id != static_cast<std::int64_t>(expect_id) || data <= 0 ||
      data > 65535 || control <= 0 || control > 65535) {
    return false;
  }
  d->data_port = static_cast<std::uint16_t>(data);
  d->control_port = static_cast<std::uint16_t>(control);
  return true;
}

/// The runner's control-side socket: sends a command to one daemon's
/// control port and waits for a reply from that port.
class ControlClient {
 public:
  bool open(std::string* error) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      *error = std::string("control socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      *error = std::string("control bind: ") + std::strerror(errno);
      return false;
    }
    return true;
  }
  ~ControlClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends `cmd` and waits for a reply starting with `expect`; retries the
  /// send (commands and acks are datagrams; either may drop). Retries back
  /// off exponentially (x1.5 per attempt, capped at 1s) under an overall
  /// wall-clock budget, so one lost datagram or a daemon that is mid-restart
  /// does not fail the run - and a permanently dead control port cannot
  /// hang it either. Returns the full reply via *reply when non-null.
  bool request(std::uint16_t port, const std::string& cmd,
               const std::string& expect, std::string* reply = nullptr,
               int tries = 20, int wait_ms = 150,
               std::int64_t overall_ms = 15000) {
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    to.sin_port = htons(port);
    const std::int64_t overall_deadline = net::wall_ms_now() + overall_ms;
    std::int64_t wait = wait_ms;
    for (int t = 0; t < tries && net::wall_ms_now() < overall_deadline; ++t) {
      (void)::sendto(fd_, cmd.data(), cmd.size(), 0,
                     reinterpret_cast<sockaddr*>(&to), sizeof(to));
      const std::int64_t deadline =
          std::min(net::wall_ms_now() + wait, overall_deadline);
      wait = std::min<std::int64_t>(wait + wait / 2, 1000);
      for (;;) {
        const std::int64_t now = net::wall_ms_now();
        if (now >= deadline) break;
        pollfd pfd{fd_, POLLIN, 0};
        (void)::poll(&pfd, 1, static_cast<int>(deadline - now));
        char buf[65536];
        sockaddr_in from{};
        socklen_t from_len = sizeof(from);
        const ssize_t got =
            ::recvfrom(fd_, buf, sizeof(buf), 0,
                       reinterpret_cast<sockaddr*>(&from), &from_len);
        if (got < 0) continue;
        if (ntohs(from.sin_port) != port) continue;  // stale reply
        const std::string text(buf, static_cast<std::size_t>(got));
        if (text.rfind(expect, 0) == 0) {
          if (reply != nullptr) *reply = text;
          return true;
        }
      }
    }
    return false;
  }

 private:
  int fd_ = -1;
};

void sleep_until(std::int64_t wall_ms) {
  for (;;) {
    const std::int64_t now = net::wall_ms_now();
    if (now >= wall_ms) return;
    ::usleep(static_cast<useconds_t>(
        std::min<std::int64_t>(wall_ms - now, 100) * 1000));
  }
}

/// Drains whatever stdout remains (the STATS line) once the writer is gone
/// and closes the pipe. The tail accumulates across incarnations.
void drain_stdout(Daemon* d) {
  if (d->stdout_fd < 0) return;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(d->stdout_fd, buf, sizeof(buf));
    if (got <= 0) break;
    d->stdout_tail.append(buf, static_cast<std::size_t>(got));
  }
  ::close(d->stdout_fd);
  d->stdout_fd = -1;
}

/// Status word -> the exit code the shell would report.
int exit_code_of(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// Polls for p to exit until `deadline_ms`; true (with *status) once reaped.
bool wait_until(pid_t p, std::int64_t deadline_ms, int* status) {
  for (;;) {
    const pid_t got = ::waitpid(p, status, WNOHANG);
    if (got == p) return true;
    if (got < 0 && errno != EINTR) return false;  // ECHILD: nothing to reap
    if (net::wall_ms_now() >= deadline_ms) return false;
    ::usleep(10 * 1000);
  }
}

/// Reaps `d`, escalating politely: up to `grace_ms` for a voluntary exit,
/// SIGTERM and another `grace_ms` (the daemon checkpoints and dumps STATS
/// on SIGTERM), then SIGKILL - which cannot be ignored - followed by a
/// blocking wait. The zombie is always collected, and exit_code records
/// the real status (exit code, or 128+signal), never an assumption about
/// which escalation step landed.
void reap(Daemon* d, std::int64_t grace_ms) {
  if (d->pid >= 0) {
    int status = 0;
    bool reaped = wait_until(d->pid, net::wall_ms_now() + grace_ms, &status);
    if (!reaped) {
      (void)::kill(d->pid, SIGTERM);
      reaped = wait_until(d->pid, net::wall_ms_now() + grace_ms, &status);
    }
    if (!reaped) {
      (void)::kill(d->pid, SIGKILL);
      pid_t got;
      do {
        got = ::waitpid(d->pid, &status, 0);
      } while (got < 0 && errno == EINTR);
      reaped = got == d->pid;
    }
    d->exit_code = reaped ? exit_code_of(status) : -1;
    d->pid = -1;
  }
  drain_stdout(d);
}

/// One respawn attempt: fork a fresh incarnation on the dead one's ports
/// with --resume, wait for its READY, and re-send the original `start`
/// command (same epoch - the daemon validates its state file against it
/// and rejects stale state with exit 2, which shows up here as a missing
/// ack). On any failure the half-started child is killed and reaped so a
/// retry starts clean.
bool respawn_once(const ClusterConfig& cfg, ProcessId id, Daemon* d,
                  const std::string& start_line, ControlClient* control,
                  std::string* why) {
  SpawnExtra extra;
  extra.resume = true;
  extra.data_port = d->data_port;
  extra.control_port = d->control_port;
  Daemon fresh;
  if (!spawn_daemon(cfg, id, &fresh, why, extra)) return false;
  const int fl = ::fcntl(fresh.stdout_fd, F_GETFL, 0);
  ::fcntl(fresh.stdout_fd, F_SETFL, fl | O_NONBLOCK);

  const auto abandon = [&](const std::string& reason) {
    *why = reason;
    if (fresh.pid > 0) {
      (void)::kill(fresh.pid, SIGKILL);
      int st = 0;
      pid_t got;
      do {
        got = ::waitpid(fresh.pid, &st, 0);
      } while (got < 0 && errno == EINTR);
    }
    drain_stdout(&fresh);
    d->stdout_tail += fresh.stdout_tail;
    return false;
  };

  std::string line;
  Daemon parsed = fresh;
  if (!read_line(fresh.stdout_fd, net::wall_ms_now() + 5000, &line) ||
      !parse_ready(line, id, &parsed)) {
    return abandon("no READY from respawned daemon (got '" + line + "')");
  }
  if (parsed.data_port != d->data_port ||
      parsed.control_port != d->control_port) {
    return abandon("respawned daemon bound different ports");
  }
  if (!control->request(parsed.control_port, start_line, "ok start", nullptr,
                        /*tries=*/10, /*wait_ms=*/100, /*overall_ms=*/3000)) {
    return abandon("respawned daemon never acked start");
  }
  d->pid = fresh.pid;
  d->stdout_fd = fresh.stdout_fd;
  return true;
}

std::string stats_line_of(const std::string& tail) {
  std::istringstream in(tail);
  std::string line;
  std::string stats;
  while (std::getline(in, line)) {
    if (line.rfind("STATS ", 0) == 0) stats = line.substr(6);
  }
  return stats;
}

struct LoggedDelivery {
  ProcessId at = kNoProcess;
  RumorUid uid;
  Round when = 0;
  std::vector<std::uint8_t> data;
};

/// Replays the daemons' event logs through the simulator's auditors.
void audit_logs(const ClusterConfig& cfg, ClusterResult* r) {
  std::vector<std::pair<sim::Rumor, Round>> injects;
  std::vector<LoggedDelivery> deliveries;
  std::vector<std::pair<std::vector<std::uint8_t>, Round>> frames;

  for (std::size_t i = 0; i < cfg.n; ++i) {
    const std::string path = cfg.workdir + "/node" + std::to_string(i) + ".log";
    std::ifstream in(path);
    std::string text;
    while (std::getline(in, text)) {
      if (text.empty()) continue;
      net::Line line;
      if (!net::parse_line(text, &line)) {
        ++r->log_parse_errors;
        continue;
      }
      bool ok = true;
      if (line.verb == "inject") {
        sim::Rumor rumor;
        Round round = 0;
        std::string err;
        if (!net::parse_inject_event(line, &rumor, &round, &err)) {
          ++r->log_parse_errors;
          continue;
        }
        injects.emplace_back(std::move(rumor), round);
      } else if (line.verb == "deliver") {
        LoggedDelivery d;
        d.when = line.get_int("round", &ok);
        d.at = static_cast<ProcessId>(line.get_int("at", &ok));
        d.uid.source = static_cast<ProcessId>(line.get_int("src", &ok));
        d.uid.seq = static_cast<std::uint64_t>(line.get_int("seq", &ok));
        if (!ok || !net::from_hex(line.get("data", &ok), &d.data) || !ok) {
          ++r->log_parse_errors;
          continue;
        }
        deliveries.push_back(std::move(d));
      } else if (line.verb == "recv") {
        const Round round = line.get_int("round", &ok);
        std::vector<std::uint8_t> frame;
        if (!ok || !net::from_hex(line.get("frame", &ok), &frame) || !ok) {
          ++r->log_parse_errors;
          continue;
        }
        frames.emplace_back(std::move(frame), round);
      } else {
        ++r->log_parse_errors;
      }
    }
  }

  core::CongosConfig ccfg;
  ccfg.tau = cfg.tau;
  ccfg.allow_degenerate = !cfg.no_degenerate;
  const auto partitions = core::CongosProcess::build_partitions(cfg.n, ccfg);

  audit::DeliveryAuditor qod(cfg.n);
  audit::ConfidentialityAuditor conf(cfg.n, partitions.get());
  Round horizon = cfg.rounds;
  for (const auto& [rumor, round] : injects) {
    qod.on_inject(rumor, round);
    conf.on_inject(rumor, round);
    horizon = std::max(horizon, round + rumor.deadline + 1);
  }

  // Lifecycle events gate admissibility exactly like sim churn: a rumor
  // pair whose source or destination was down inside [injected, deadline]
  // is inadmissible per the paper's continuously-alive rule, so a killed
  // destination shows up as a (permitted) bonus or nothing - never as a
  // false QoD violation - while admissible pairs keep the full guarantee.
  struct LifeEv {
    Round round = 0;
    ProcessId id = 0;
    bool crash = false;
  };
  std::vector<LifeEv> life;
  {
    std::ifstream in(cfg.workdir + "/lifecycle.log");
    std::string text;
    while (std::getline(in, text)) {
      if (text.empty()) continue;
      net::Line line;
      if (!net::parse_line(text, &line)) {
        ++r->log_parse_errors;
        continue;
      }
      if (line.verb != "crash" && line.verb != "restart") {
        continue;  // respawn-failed etc.: runner bookkeeping, not liveness
      }
      bool ok = true;
      LifeEv e;
      e.round = line.get_int("round", &ok);
      e.id = static_cast<ProcessId>(line.get_int("id", &ok));
      e.crash = line.verb == "crash";
      if (!ok || e.id >= cfg.n) {
        ++r->log_parse_errors;
        continue;
      }
      life.push_back(e);
    }
  }
  std::stable_sort(life.begin(), life.end(),
                   [](const LifeEv& a, const LifeEv& b) {
                     return a.round < b.round;
                   });
  for (const LifeEv& e : life) {
    if (e.crash) {
      qod.on_crash(e.id, e.round);
    } else {
      qod.on_restart(e.id, e.round);
    }
  }

  for (const LoggedDelivery& d : deliveries) {
    qod.on_rumor_delivered(d.at, d.uid, d.when, d.data);
  }
  for (const auto& [frame, round] : frames) {
    wire::DecodedEnvelope dec;
    if (!wire::decode_envelope(frame, &dec)) {
      ++r->log_parse_errors;
      continue;
    }
    conf.on_envelope_delivered(dec.env, round);
  }

  // Checkpoint files are readable by anyone with the disk, so they face
  // the same Definition 2 scrutiny as wire traffic: every journaled frame
  // is replayed through the confidentiality auditor. (Inject events are
  // the node's own rumors - it is their source, inside D by definition.)
  if (durable(cfg)) {
    for (ProcessId id = 0; id < cfg.n; ++id) {
      net::NodeCheckpoint ck;
      std::string err;
      if (!net::read_checkpoint_file(state_path(cfg, id), &ck, &err)) {
        ++r->state_file_errors;
        continue;
      }
      ++r->state_files_audited;
      for (const net::CheckpointEvent& e : ck.events) {
        if (e.kind != net::CheckpointEvent::Kind::kRecv) continue;
        wire::DecodedEnvelope dec;
        if (!wire::decode_envelope(e.frame.data(), e.frame.size(), &dec)) {
          ++r->state_file_errors;
          continue;
        }
        conf.on_envelope_delivered(dec.env, e.round);
      }
    }
  }

  r->qod = qod.finalize(horizon);
  r->leaks = conf.leaks();
  r->foreign_fragments = conf.count(audit::ViolationKind::kForeignFragment);
  r->unknown_payloads = conf.unknown_payloads();
  r->weakest_coalition = conf.weakest_rumor_coalition();
  r->injected = injects.size();
  r->deliveries = deliveries.size();
  r->recv_frames = frames.size();
}

}  // namespace

std::vector<KillEvent> make_kill_schedule(const KillScheduleConfig& gen,
                                          std::size_t n, Round rounds) {
  Rng rng(gen.seed);
  const Round down_max = std::max(gen.down_min, gen.down_max);
  Round max_round = gen.max_round;
  if (max_round <= 0) {
    // Leave the worst-case victim time to resume and drain: downtime plus
    // a rejoin cushion before the round budget runs out.
    max_round = rounds - down_max - 8;
  }
  if (max_round < gen.min_round) max_round = gen.min_round;

  std::vector<bool> excluded(n, false);
  for (const ProcessId p : gen.protected_ids) {
    if (p < n) excluded[p] = true;
  }
  std::vector<KillEvent> plan;
  for (std::size_t k = 0; k < gen.kills; ++k) {
    // Distinct victims, like RandomChurn's at-most-one-crash-per-process
    // constraint between restarts: killing a daemon twice would need its
    // second checkpoint to land between the two kills, which a static
    // schedule cannot guarantee.
    std::vector<ProcessId> candidates;
    for (ProcessId p = 0; p < n; ++p) {
      if (!excluded[p]) candidates.push_back(p);
    }
    if (candidates.empty()) break;
    KillEvent e;
    e.target = candidates[rng.next_below(candidates.size())];
    e.kill_round =
        rng.uniform_int(gen.min_round, max_round);
    e.down_rounds = rng.uniform_int(gen.down_min, down_max);
    excluded[e.target] = true;
    plan.push_back(e);
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const KillEvent& a, const KillEvent& b) {
                     return a.kill_round < b.kill_round;
                   });
  return plan;
}

ClusterResult run_cluster(const ClusterConfig& cfg) {
  ClusterResult result;
  if (cfg.daemon.empty()) {
    result.error = "no daemon binary configured";
    return result;
  }
  if (cfg.n < 2) {
    result.error = "cluster needs n >= 2";
    return result;
  }
  ::mkdir(cfg.workdir.c_str(), 0755);  // best effort; open errors surface below

  std::vector<Daemon> daemons(cfg.n);
  const auto fail = [&](const std::string& why) {
    for (Daemon& d : daemons) {
      if (d.pid > 0) ::kill(d.pid, SIGKILL);
      reap(&d, 1000);
    }
    result.error = why;
    return result;
  };

  for (ProcessId id = 0; id < cfg.n; ++id) {
    std::string err;
    if (!spawn_daemon(cfg, id, &daemons[id], &err)) {
      return fail("spawn daemon " + std::to_string(id) + ": " + err);
    }
    // The READY read below polls, so the pipe must not block.
    const int fl = ::fcntl(daemons[id].stdout_fd, F_GETFL, 0);
    ::fcntl(daemons[id].stdout_fd, F_SETFL, fl | O_NONBLOCK);
  }

  const std::int64_t ready_deadline = net::wall_ms_now() + 15000;
  for (ProcessId id = 0; id < cfg.n; ++id) {
    std::string line;
    if (!read_line(daemons[id].stdout_fd, ready_deadline, &line) ||
        !parse_ready(line, id, &daemons[id])) {
      return fail("daemon " + std::to_string(id) + " sent no READY (got '" +
                  line + "')");
    }
  }

  ControlClient control;
  {
    std::string err;
    if (!control.open(&err)) return fail(err);
  }

  net::StartCommand start;
  start.round_ms = cfg.round_ms;
  start.epoch_ms = net::wall_ms_now() + 400;  // time to ack start everywhere
  for (const Daemon& d : daemons) start.peer_ports.push_back(d.data_port);
  const std::string start_line = net::encode_start(start);
  for (ProcessId id = 0; id < cfg.n; ++id) {
    if (!control.request(daemons[id].control_port, start_line, "ok start")) {
      return fail("daemon " + std::to_string(id) + " never acked start");
    }
  }
  const net::RoundClock clock(start.epoch_ms, start.round_ms);

  // Injections and scheduled kills/respawns share one supervised timeline,
  // and a waitpid sweep between events catches any unscheduled death - a
  // daemon that dies off-schedule is recorded and surfaced, never respawned
  // (masking a real crash would hide exactly the bug chaos runs hunt for).
  std::vector<ClusterInject> plan = cfg.injections;
  std::stable_sort(plan.begin(), plan.end(),
                   [](const ClusterInject& a, const ClusterInject& b) {
                     return a.round < b.round;
                   });
  std::vector<KillEvent> kills = cfg.kill_plan;
  std::stable_sort(kills.begin(), kills.end(),
                   [](const KillEvent& a, const KillEvent& b) {
                     return a.kill_round < b.kill_round;
                   });
  for (const KillEvent& k : kills) {
    if (k.target >= cfg.n || k.kill_round < 1 || k.down_rounds < 1) {
      return fail("bad kill plan entry (target " + std::to_string(k.target) +
                  " round " + std::to_string(k.kill_round) + ")");
    }
  }

  // Every lifecycle event lands here for the offline auditors: `crash` and
  // `restart` lines drive the continuously-alive admissibility rule.
  std::ofstream lifecycle(cfg.workdir + "/lifecycle.log", std::ios::trunc);

  struct PendingRespawn {
    ProcessId id = 0;
    std::int64_t at_ms = 0;
  };
  std::vector<PendingRespawn> respawns;
  std::size_t next_kill = 0;
  std::size_t next_inject = 0;
  const std::int64_t end_ms = clock.start_of(cfg.rounds) + 200;

  for (;;) {
    const std::int64_t now_ms = net::wall_ms_now();
    if (now_ms >= end_ms) break;

    // Scheduled kills fire mid-round - SIGKILL, no grace, a real crash:
    // whatever the daemon buffered since its last checkpoint is gone.
    while (next_kill < kills.size() &&
           now_ms >=
               clock.start_of(kills[next_kill].kill_round) + cfg.round_ms / 2) {
      const KillEvent& k = kills[next_kill++];
      Daemon& d = daemons[k.target];
      if (d.pid <= 0) continue;  // an unexpected exit beat the schedule
      (void)::kill(d.pid, SIGKILL);
      int st = 0;
      pid_t got;
      do {
        got = ::waitpid(d.pid, &st, 0);
      } while (got < 0 && errno == EINTR);
      drain_stdout(&d);
      d.pid = -1;
      ++result.scheduled_kills;
      lifecycle << "crash round=" << clock.round_at(net::wall_ms_now())
                << " id=" << k.target << " scheduled=1 code="
                << exit_code_of(st) << "\n"
                << std::flush;
      respawns.push_back(
          {k.target, clock.start_of(k.kill_round + k.down_rounds)});
    }

    // Injections due this round.
    while (next_inject < plan.size() &&
           now_ms >= clock.start_of(plan[next_inject].round) + cfg.round_ms / 4) {
      const ClusterInject& inj = plan[next_inject++];
      if (inj.source >= cfg.n) return fail("inject source out of range");
      net::InjectCommand cmd;
      cmd.seq = inj.seq;
      cmd.deadline = inj.deadline;
      cmd.dest = inj.dest;
      cmd.data = inj.data;
      if (!control.request(daemons[inj.source].control_port,
                           net::encode_inject(cmd),
                           "ok inject seq=" + std::to_string(inj.seq))) {
        return fail("daemon " + std::to_string(inj.source) +
                    " never acked inject seq=" + std::to_string(inj.seq));
      }
    }

    // Respawns whose downtime has elapsed: bounded retries with backoff.
    for (std::size_t i = 0; i < respawns.size();) {
      if (now_ms < respawns[i].at_ms) {
        ++i;
        continue;
      }
      const ProcessId id = respawns[i].id;
      respawns.erase(respawns.begin() + i);
      bool up = false;
      std::string why;
      for (int attempt = 0; attempt < cfg.respawn_retries && !up; ++attempt) {
        if (attempt > 0) {
          ::usleep(static_cast<useconds_t>((100u << attempt) * 1000u));
        }
        up = respawn_once(cfg, id, &daemons[id], start_line, &control, &why);
      }
      if (up) {
        ++result.resumes;
        lifecycle << "restart round=" << clock.round_at(net::wall_ms_now())
                  << " id=" << id << " resume=1\n"
                  << std::flush;
      } else {
        ++result.respawn_failures;
        lifecycle << "respawn-failed round="
                  << clock.round_at(net::wall_ms_now()) << " id=" << id << "\n"
                  << std::flush;
        daemons[id].stdout_tail += "\nrespawn failed: " + why + "\n";
      }
    }

    // Unscheduled deaths. Only before the round budget ends: at --rounds
    // every daemon exits on its own, and those exits belong to the final
    // reap below, not the crash ledger.
    if (clock.round_at(now_ms) < cfg.rounds) {
      for (ProcessId id = 0; id < cfg.n; ++id) {
        Daemon& d = daemons[id];
        if (d.pid <= 0) continue;
        int st = 0;
        if (::waitpid(d.pid, &st, WNOHANG) != d.pid) continue;
        drain_stdout(&d);
        d.pid = -1;
        d.exit_code = exit_code_of(st);
        ++result.unexpected_exits;
        lifecycle << "crash round=" << clock.round_at(net::wall_ms_now())
                  << " id=" << id << " scheduled=0 code=" << d.exit_code
                  << "\n"
                  << std::flush;
      }
    }

    // Sleep to the next due event, bounded by the 50ms supervision beat.
    std::int64_t next = now_ms + 50;
    if (next_kill < kills.size()) {
      next = std::min(
          next, clock.start_of(kills[next_kill].kill_round) + cfg.round_ms / 2);
    }
    if (next_inject < plan.size()) {
      next = std::min(
          next, clock.start_of(plan[next_inject].round) + cfg.round_ms / 4);
    }
    for (const PendingRespawn& p : respawns) next = std::min(next, p.at_ms);
    next = std::min(next, end_ms);
    sleep_until(std::max(next, now_ms + 1));
  }

  // Round budget exhausted: daemons exit on their own at --rounds; `stop`
  // just hurries along any straggler, then the hardened reap collects the
  // real exit status of every final incarnation.
  for (const Daemon& d : daemons) {
    if (d.pid <= 0) continue;
    (void)control.request(d.control_port, "stop", "ok stop", nullptr,
                          /*tries=*/3, /*wait_ms=*/100, /*overall_ms=*/1000);
  }
  for (Daemon& d : daemons) reap(&d, 5000);

  for (Daemon& d : daemons) {
    result.exit_codes.push_back(d.exit_code);
    result.stats_json.push_back(stats_line_of(d.stdout_tail));
  }

  audit_logs(cfg, &result);
  return result;
}

}  // namespace congos::harness
