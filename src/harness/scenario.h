// Scenario runner: one-call construction and execution of a full experiment
// (protocol + workload + failure patterns + auditors), shared by the test
// suite, the examples and every bench binary.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "adversary/patterns.h"
#include "adversary/workload.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "congos/config.h"
#include "sim/engine.h"
#include "sim/stats.h"

namespace congos::harness {

enum class Protocol {
  kCongos,              // the paper's algorithm
  kDirect,              // source sends all destinations at injection
  kDirectPaced,         // source paces sends across the deadline window
  kStrongConfidential,  // Section 3 baseline (gossip within D only)
  kPlainGossip,         // non-confidential epidemic gossip
};

const char* to_string(Protocol p);

enum class WorkloadKind { kNone, kContinuous, kTheorem1 };

struct ScenarioConfig {
  std::size_t n = 64;
  std::uint64_t seed = 1;
  Round rounds = 512;
  Protocol protocol = Protocol::kCongos;
  core::CongosConfig congos;

  /// Link-fault injection (sim::Network adversary dimension). Disabled by
  /// default; when enabled, see audit::delivery_guaranteed() for whether the
  /// QoD contract still holds for the combination with congos.retransmit.
  sim::FaultConfig faults;

  WorkloadKind workload = WorkloadKind::kContinuous;
  adversary::Continuous::Options continuous;
  adversary::Theorem1::Options theorem1;

  std::optional<adversary::RandomChurn::Options> churn;
  std::optional<adversary::CrashOnService::Options> crash_on_service;
  std::optional<adversary::CrashSenders::Options> crash_senders;

  /// Rounds before this one are excluded from the "measured" statistics
  /// (warm-up: services need ~2/3 * dline uptime before activating).
  Round measure_from = 0;

  /// Fraction of processes behaving lazily (Section 7 "malicious users"
  /// direction: they freeload - no proxy service, no GroupDistribution).
  /// Lazy ids are drawn deterministically from the scenario seed.
  double lazy_fraction = 0.0;

  /// Baseline knobs.
  int baseline_fanout = 3;

  /// The confidentiality auditor inspects every delivered envelope; for pure
  /// message-cost sweeps it can be disabled (QoD auditing stays on). E2 runs
  /// the same protocols with it enabled.
  bool audit_confidentiality = true;

  /// Additional observers to register on the engine (tracing, custom
  /// counters). Not owned; must outlive run_scenario(). When the config is
  /// part of a SweepRunner grid, each entry needs its own observers — they
  /// run on different threads.
  std::vector<sim::ExecutionObserver*> extra_observers;

  /// Additional adversary components, registered after the built-in workload
  /// and failure patterns (custom injection schedules, cover traffic). Not
  /// owned; must outlive run_scenario(). Same per-grid-entry rule as
  /// extra_observers.
  std::vector<sim::Adversary*> extra_adversaries;

  /// Lower bound on the post-run drain window, for workloads injected by
  /// extra_adversaries whose deadlines run_scenario cannot see (the built-in
  /// workloads extend the drain to their own maximum deadline automatically).
  Round min_drain = 0;

  /// Intra-round engine threads (DESIGN.md section 12): the send and receive
  /// phases of every round run sharded across this many threads (the driving
  /// thread participates, so k threads = k-1 pool workers). Results are
  /// byte-identical at any value — this knob trades wall clock only, which
  /// is also why it is deliberately NOT part of the .repro serialization: a
  /// run recorded at any thread count replays exactly at any other.
  /// 0 = default_engine_threads() (CONGOS_ENGINE_THREADS, else 1).
  std::size_t engine_threads = 0;
};

/// CONGOS_ENGINE_THREADS when set to a positive integer, else 1 (serial
/// engine). Parsed once and cached.
std::size_t default_engine_threads();

struct ScenarioResult {
  // message complexity
  std::uint64_t max_per_round = 0;       // after warm-up
  double mean_per_round = 0.0;           // after warm-up
  std::uint64_t p50_per_round = 0;       // after warm-up
  std::uint64_t p95_per_round = 0;       // after warm-up
  std::uint64_t total_messages = 0;      // whole run
  std::uint64_t max_by_kind[sim::kNumServiceKinds] = {};    // after warm-up
  std::uint64_t total_by_kind[sim::kNumServiceKinds] = {};  // after warm-up

  // communication complexity (Section 7 discussion): serialized bytes.
  // Since the wire codec (src/wire) these are ACTUAL encoded sizes — the
  // exact bytes wire::encode_envelope() produces, frame header and checksum
  // included.
  std::uint64_t max_bytes_per_round = 0;  // after warm-up
  std::uint64_t total_bytes = 0;          // whole run
  /// By-service split of total_bytes (E15 reports the breakdown).
  std::uint64_t total_bytes_by_kind[sim::kNumServiceKinds] = {};  // whole run
  /// Whole-run bytes under the legacy fixed-width size model (what
  /// total_bytes reported before the codec); exp_bytes/exp_msg_vs_n print
  /// the modeled-vs-actual delta, i.e. what varint/delta encoding buys.
  std::uint64_t total_bytes_modeled = 0;

  // delivery
  audit::QodReport qod;
  std::uint64_t injected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;

  // link faults (all zero when faults are disabled)
  std::uint64_t faults_by_kind[sim::kNumFaultKinds] = {};
  std::uint64_t fault_total = 0;
  /// Incoming gossip rumors absorbed by gid-idempotence (CONGOS only).
  std::uint64_t duplicates_suppressed = 0;

  // confidentiality
  std::uint64_t leaks = 0;              // Definition-2 violations
  std::uint64_t foreign_fragments = 0;  // structural violations (CONGOS)
  std::uint64_t unknown_payloads = 0;
  /// Smallest curious coalition that could break some rumor (SIZE_MAX when
  /// none): Lemma 14 predicts > tau.
  std::size_t weakest_coalition = SIZE_MAX;

  // CONGOS-specific aggregates (zero for baselines)
  std::uint64_t cg_confirmed = 0;
  std::uint64_t cg_shoots = 0;
  std::uint64_t cg_shoot_messages = 0;
  std::uint64_t cg_injected_direct = 0;
  std::uint64_t cg_reassembled = 0;
  std::uint64_t filter_drops = 0;

  // extra from specific workloads
  std::uint64_t theorem1_dest_pairs = 0;
  /// Largest per-message rumor merge seen by the strongly-confidential
  /// baseline (Theorem 1 bounds this by a constant c w.h.p.).
  std::uint64_t strong_max_merged = 0;
};

/// Builds the system, runs it for cfg.rounds rounds plus a drain period of
/// the maximum deadline, and returns the audited results.
ScenarioResult run_scenario(const ScenarioConfig& cfg);

/// A constructed but not-yet-finished scenario: the decomposed form of
/// run_scenario() for callers that need to stop at a round boundary —
/// checkpoint/rewind experiments (sim::EngineCheckpoint) and the replay
/// tooling (tools/congos_replay --until-round). Construction performs
/// exactly the same RNG draws in the same order as run_scenario(), so a
/// ScenarioRun stepped to completion is byte-identical to run_scenario()
/// on the same config.
class ScenarioRun {
 public:
  explicit ScenarioRun(const ScenarioConfig& cfg);
  ~ScenarioRun();
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;

  const ScenarioConfig& config() const { return cfg_; }
  sim::Engine& engine();

  /// Rounds a full execution takes: cfg.rounds plus the drain window
  /// (maximum workload deadline, at least cfg.min_drain) plus 2.
  Round total_rounds() const;

  /// Step until the engine clock reaches min(r, total_rounds()).
  void run_until(Round r);
  void run_all() { run_until(total_rounds()); }
  bool finished() const;

  /// Aggregate the auditors into a ScenarioResult. Valid any time the
  /// engine is at a round boundary; QoD classification of still-undelivered
  /// rumors is only final once finished().
  ScenarioResult finalize() const;

 private:
  ScenarioConfig cfg_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace congos::harness
