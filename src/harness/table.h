// Fixed-width table printer for experiment output (the "rows the paper
// reports" format used by every bench binary), with optional CSV emission.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace congos::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& row(std::vector<std::string> cells);

  /// Pretty fixed-width print.
  void print(std::ostream& os) const;

  /// Comma-separated (for scripting).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Helpers for assembling cells.
std::string cell(std::uint64_t v);
std::string cell(double v, int precision = 2);
std::string cell(const std::string& s);

}  // namespace congos::harness
