#include "harness/table.h"

#include <algorithm>
#include <ostream>

#include "common/assert.h"
#include "common/strings.h"

namespace congos::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row(std::vector<std::string> cells) {
  CONGOS_ASSERT_MSG(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (auto w : width) rule.push_back(std::string(w, '-'));
  emit(rule);
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string cell(std::uint64_t v) { return fmt_count(v); }
std::string cell(double v, int precision) { return fmt_double(v, precision); }
std::string cell(const std::string& s) { return s; }

}  // namespace congos::harness
