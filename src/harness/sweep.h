// SweepRunner: executes a grid of independent scenarios across a fixed-size
// worker pool.
//
// Every experiment in EXPERIMENTS.md is a grid of run_scenario() calls that
// share nothing: each scenario derives all randomness from its own seed and
// owns its engine, network and auditors. The runner exploits exactly that —
// scenarios are the unit of parallelism, the engine stays single-threaded —
// so per-scenario results are byte-identical to serial execution regardless
// of thread count (tests/test_sweep.cpp pins this, including a golden trace).
//
// Thread count resolution: Options::threads when non-zero, else the
// CONGOS_BENCH_THREADS environment variable, else hardware concurrency
// divided by the per-scenario engine thread count (CONGOS_ENGINE_THREADS) —
// sweep workers and engine shards draw from the same core budget.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace congos::harness {

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 = default_threads().
    std::size_t threads = 0;
    /// Emit a live "[label] done/total" progress line (stderr, only when
    /// stderr is a terminal, so piped/CI output stays clean).
    bool progress = true;
    /// Progress-line prefix, typically the experiment id.
    const char* label = "sweep";
    /// Directory for .repro failure artifacts: when a scenario trips the
    /// auditor predicate (harness::scenario_failed), a self-contained
    /// reproduction file is written here as <label>-<index>.repro. nullptr
    /// defers to the CONGOS_REPRO_DIR environment variable; "" disables
    /// dumping. The directory is created if missing. Works under any thread
    /// count: each worker records its own scenario independently.
    const char* artifact_dir = nullptr;
  };

  SweepRunner();
  explicit SweepRunner(Options opts);

  /// Resolved worker count for this runner.
  std::size_t threads() const { return threads_; }

  /// Runs every scenario in `grid` and returns the results in submission
  /// order. Scenarios with extra_observers/extra_adversaries run fine, but
  /// those objects must not be shared between grid entries (each runs on its
  /// own thread).
  std::vector<ScenarioResult> run(const std::vector<ScenarioConfig>& grid) const;

  /// CONGOS_BENCH_THREADS when set to a positive integer, else
  /// hardware_concurrency / default_engine_threads() (>= 1, so the sweep and
  /// the sharded engines don't oversubscribe the machine together). Parsed
  /// once and cached.
  static std::size_t default_threads();

  /// Paths of the .repro artifacts written by the last run(), in grid order
  /// (empty when nothing failed or dumping is disabled).
  const std::vector<std::string>& artifacts() const { return artifacts_; }

 private:
  /// Resolved artifact directory ("" = disabled).
  std::string artifact_dir() const;
  /// Runs one grid entry; on auditor failure writes a .repro into `dir`
  /// (when enabled) and stores its path in *artifact.
  ScenarioResult run_one(const ScenarioConfig& cfg, const std::string& dir,
                         std::size_t index, std::string* artifact) const;

  Options opts_;
  std::size_t threads_;
  /// Written by run(): each worker fills its own pre-sized slot, then run()
  /// compacts, so no locking is needed.
  mutable std::vector<std::string> artifacts_;
};

/// One-call convenience used by the bench binaries.
inline std::vector<ScenarioResult> run_sweep(
    const std::vector<ScenarioConfig>& grid, SweepRunner::Options opts = {}) {
  return SweepRunner(opts).run(grid);
}

}  // namespace congos::harness
