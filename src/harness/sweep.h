// SweepRunner: executes a grid of independent scenarios across a fixed-size
// worker pool.
//
// Every experiment in EXPERIMENTS.md is a grid of run_scenario() calls that
// share nothing: each scenario derives all randomness from its own seed and
// owns its engine, network and auditors. The runner exploits exactly that —
// scenarios are the unit of parallelism, the engine stays single-threaded —
// so per-scenario results are byte-identical to serial execution regardless
// of thread count (tests/test_sweep.cpp pins this, including a golden trace).
//
// Thread count resolution: Options::threads when non-zero, else the
// CONGOS_BENCH_THREADS environment variable, else hardware concurrency.
#pragma once

#include <cstddef>
#include <vector>

#include "harness/scenario.h"

namespace congos::harness {

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 = default_threads().
    std::size_t threads = 0;
    /// Emit a live "[label] done/total" progress line (stderr, only when
    /// stderr is a terminal, so piped/CI output stays clean).
    bool progress = true;
    /// Progress-line prefix, typically the experiment id.
    const char* label = "sweep";
  };

  SweepRunner();
  explicit SweepRunner(Options opts);

  /// Resolved worker count for this runner.
  std::size_t threads() const { return threads_; }

  /// Runs every scenario in `grid` and returns the results in submission
  /// order. Scenarios with extra_observers/extra_adversaries run fine, but
  /// those objects must not be shared between grid entries (each runs on its
  /// own thread).
  std::vector<ScenarioResult> run(const std::vector<ScenarioConfig>& grid) const;

  /// CONGOS_BENCH_THREADS when set to a positive integer, else
  /// std::thread::hardware_concurrency() (>= 1). Parsed once and cached.
  static std::size_t default_threads();

 private:
  Options opts_;
  std::size_t threads_;
};

/// One-call convenience used by the bench binaries.
inline std::vector<ScenarioResult> run_sweep(
    const std::vector<ScenarioConfig>& grid, SweepRunner::Options opts = {}) {
  return SweepRunner(opts).run(grid);
}

}  // namespace congos::harness
