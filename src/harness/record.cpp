#include "harness/record.h"

#include <algorithm>

#include "common/assert.h"
#include "sim/trace.h"
#include "wire/wire.h"

namespace congos::harness {

namespace {

void fill_result_summary(replay::ReproFile* file, const ScenarioResult& r) {
  file->total_messages = r.total_messages;
  file->total_bytes = r.total_bytes;
  file->injected = r.injected;
  file->crashes = r.crashes;
  file->restarts = r.restarts;
  file->leaks = r.leaks;
  file->foreign_fragments = r.foreign_fragments;
  file->qod_delivered_on_time = r.qod.delivered_on_time;
  file->qod_late = r.qod.late;
  file->qod_missing = r.qod.missing;
  file->qod_data_mismatches = r.qod.data_mismatches;
  for (std::size_t f = 0; f < sim::kNumFaultKinds; ++f) {
    file->faults_by_kind[f] = r.faults_by_kind[f];
  }
  file->duplicates_suppressed = r.duplicates_suppressed;
  // v3: total_bytes above is only comparable across runs serialized with the
  // same wire codec version, so the artifact records which one it was.
  file->wire_codec_version = wire::kWireFormatVersion;
}

}  // namespace

RecordedRun run_recorded(const ScenarioConfig& cfg, const std::string& label,
                         const std::string& reason) {
  std::string why;
  CONGOS_ASSERT_MSG(replay::is_recordable(cfg, &why), why.c_str());

  replay::DecisionRecorder recorder;
  sim::TraceLog trace;

  ScenarioConfig copy = cfg;
  copy.extra_observers.push_back(&recorder);
  copy.extra_observers.push_back(&trace);

  RecordedRun out;
  out.result = run_scenario(copy);

  // The artifact stores the caller's config (without this function's
  // observers) so a replay re-attaches its own.
  out.repro.config = cfg;
  out.repro.config.extra_observers.clear();
  out.repro.label = label;
  out.repro.reason = reason;
  recorder.fill(&out.repro);
  fill_result_summary(&out.repro, out.result);
  out.repro.trace_tail = trace.dump_string();
  return out;
}

ReplayReport replay_file(const replay::ReproFile& file, ReplayOptions opt) {
  replay::DecisionRecorder recorder;

  ScenarioConfig cfg = file.config;
  cfg.extra_observers.clear();
  cfg.extra_adversaries.clear();
  cfg.extra_observers.push_back(&recorder);

  ScenarioRun run(cfg);
  run.run_until(opt.until_round < 0 ? run.total_rounds() : opt.until_round);

  ReplayReport report;
  report.result = run.finalize();
  report.executed_rounds = run.engine().now();
  report.complete = run.finished();
  report.trace_hash = recorder.trace_hash();
  report.hash_match = report.complete && report.trace_hash == file.trace_hash;

  const auto& got = recorder.round_deliveries();
  const auto& want = file.round_deliveries;
  const std::size_t common = std::min(got.size(), want.size());
  report.counts_match = true;
  for (std::size_t i = 0; i < common; ++i) {
    if (got[i] != want[i]) {
      report.counts_match = false;
      report.first_count_divergence = static_cast<Round>(i);
      break;
    }
  }
  if (report.counts_match && report.complete && got.size() != want.size()) {
    // A complete replay must cover exactly the recorded rounds.
    report.counts_match = false;
    report.first_count_divergence = static_cast<Round>(common);
  }

  report.first_decision_divergence = recorder.first_divergence(file.decisions);
  report.decisions_match = report.first_decision_divergence == SIZE_MAX &&
                           (!report.complete ||
                            recorder.decisions().size() == file.decisions.size());
  return report;
}

}  // namespace congos::harness
