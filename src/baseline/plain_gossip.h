// Plain (non-confidential) epidemic gossip baseline.
//
// All n processes collaborate on whole rumors: this is classic continuous
// gossip and what the paper contrasts against in the introduction ("if the
// users rely on epidemic gossip ... every device in the system may learn
// every piece of information"). It reuses the ContinuousGossipService over
// the full universe in guaranteed mode, so Quality of Delivery holds for
// admissible rumors - but every relay learns every rumor, which the
// confidentiality auditor counts as violations (experiment E2's contrast
// column).
#pragma once

#include <memory>

#include "baseline/baseline_payload.h"
#include "common/rng.h"
#include "gossip/continuous_gossip.h"
#include "sim/process.h"

namespace congos::baseline {

class PlainGossipProcess final : public sim::Process {
 public:
  struct Options {
    int fanout = 3;
    std::size_t n = 0;  // universe size
  };

  PlainGossipProcess(ProcessId id, Options opt, std::uint64_t seed,
                     sim::DeliveryListener* listener);

  void on_restart(Round now) override;
  void send_phase(Round now, sim::Sender& out) override;
  void receive_phase(Round now, std::span<const sim::Envelope> inbox) override;
  void inject(const sim::Rumor& rumor) override;

  std::unique_ptr<sim::ProcessSnapshot> snapshot() const override;
  bool restore(const sim::ProcessSnapshot& snap, Round now) override;

 private:
  Options opt_;
  Rng rng_;
  sim::DeliveryListener* listener_;
  std::unique_ptr<gossip::ContinuousGossipService> service_;
};

}  // namespace congos::baseline
