#include "baseline/direct_send.h"

#include "common/assert.h"
#include "common/math.h"

namespace congos::baseline {

void DirectSendProcess::on_restart(Round /*now*/) { queue_.clear(); }

void DirectSendProcess::inject(const sim::Rumor& rumor) {
  if (rumor.dest.test(id()) && listener_ != nullptr) {
    listener_->on_rumor_delivered(id(), rumor.uid, rumor.injected_at,
                                  {rumor.data.data(), rumor.data.size()});
  }
  PendingRumor p;
  p.rumor = rumor;
  rumor.dest.for_each([&](std::uint32_t q) {
    if (q != id()) p.targets.push_back(q);
  });
  if (p.targets.empty()) return;
  p.per_round =
      opt_.paced
          ? static_cast<std::size_t>(ceil_div(
                p.targets.size(), static_cast<std::uint64_t>(
                                      std::max<Round>(1, rumor.deadline))))
          : p.targets.size();
  queue_.push_back(std::move(p));
}

void DirectSendProcess::send_phase(Round /*now*/, sim::Sender& out) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    auto body = std::make_shared<BaselineRumorPayload>();
    body->rumor = it->rumor;
    std::size_t sent = 0;
    while (!it->targets.empty() && sent < it->per_round) {
      const ProcessId q = it->targets.back();
      it->targets.pop_back();
      out.send(sim::Envelope{id(), q,
                             sim::ServiceTag{sim::ServiceKind::kBaseline, 0}, body});
      ++sent;
    }
    it = it->targets.empty() ? queue_.erase(it) : std::next(it);
  }
}

void DirectSendProcess::receive_phase(Round now, std::span<const sim::Envelope> inbox) {
  for (const auto& e : inbox) {
    CONGOS_ASSERT_MSG(e.body != nullptr &&
                          e.body->kind() == sim::PayloadKind::kBaselineRumor,
                      "unexpected payload at DirectSendProcess");
    const auto* body = static_cast<const BaselineRumorPayload*>(e.body.get());
    CONGOS_ASSERT_MSG(body->rumor.dest.test(id()),
                      "direct send to a process outside the destination set");
    if (listener_ != nullptr) {
      listener_->on_rumor_delivered(id(), body->rumor.uid, now,
                                    {body->rumor.data.data(), body->rumor.data.size()});
    }
  }
}

namespace {
struct DirectSendSnapshot final : sim::ProcessSnapshot {
  std::deque<DirectSendProcess::PendingRumor> queue;
};
}  // namespace

std::unique_ptr<sim::ProcessSnapshot> DirectSendProcess::snapshot() const {
  auto s = std::make_unique<DirectSendSnapshot>();
  s->queue = queue_;
  return s;
}

bool DirectSendProcess::restore(const sim::ProcessSnapshot& snap, Round /*now*/) {
  const auto* s = dynamic_cast<const DirectSendSnapshot*>(&snap);
  if (s == nullptr) return false;
  queue_ = s->queue;
  return true;
}

}  // namespace congos::baseline
