// DirectSend baseline: the source sends the rumor straight to every
// destination, with no collaboration.
//
// Trivially confidential and trivially correct for admissible rumors, but
// the per-round message complexity is driven entirely by the injection load:
// a source with destination set D costs |D| messages, either in one burst or
// paced at ceil(|D| / d) messages per round until the deadline (the paced
// mode is what the Omega(.../dmax) lower bounds divide by).
#pragma once

#include <deque>

#include "baseline/baseline_payload.h"
#include "sim/process.h"

namespace congos::baseline {

class DirectSendProcess final : public sim::Process {
 public:
  struct Options {
    /// false: send every destination at injection round. true: spread the
    /// sends evenly across the rumor's deadline window.
    bool paced = false;
  };

  DirectSendProcess(ProcessId id, Options opt, sim::DeliveryListener* listener)
      : sim::Process(id), opt_(opt), listener_(listener) {}

  void on_restart(Round now) override;
  void send_phase(Round now, sim::Sender& out) override;
  void receive_phase(Round now, std::span<const sim::Envelope> inbox) override;
  void inject(const sim::Rumor& rumor) override;

  std::unique_ptr<sim::ProcessSnapshot> snapshot() const override;
  bool restore(const sim::ProcessSnapshot& snap, Round now) override;

  /// Public for the snapshot type in direct_send.cpp.
  struct PendingRumor {
    sim::Rumor rumor;
    std::vector<ProcessId> targets;  // destinations not yet sent
    std::size_t per_round = 0;       // paced sends per round
  };

 private:
  Options opt_;
  sim::DeliveryListener* listener_;
  std::deque<PendingRumor> queue_;
};

}  // namespace congos::baseline
