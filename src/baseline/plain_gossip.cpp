#include "baseline/plain_gossip.h"

#include "common/assert.h"

namespace congos::baseline {

PlainGossipProcess::PlainGossipProcess(ProcessId id, Options opt, std::uint64_t seed,
                                       sim::DeliveryListener* listener)
    : sim::Process(id), opt_(opt), rng_(seed), listener_(listener) {
  CONGOS_ASSERT(opt_.n > 0);
  gossip::GossipConfig gcfg;
  gcfg.tag = sim::ServiceTag{sim::ServiceKind::kBaseline, 0};
  gcfg.universe = DynamicBitset::full(opt_.n);
  gcfg.fanout = opt_.fanout;
  gcfg.guaranteed = true;
  service_ = std::make_unique<gossip::ContinuousGossipService>(
      id, std::move(gcfg), &rng_,
      [this](Round now, const gossip::GossipRumor& r) {
        CONGOS_ASSERT(r.body != nullptr &&
                      r.body->kind() == sim::PayloadKind::kBaselineRumor);
        const auto* body = static_cast<const BaselineRumorPayload*>(r.body.get());
        if (listener_ != nullptr) {
          listener_->on_rumor_delivered(
              this->id(), body->rumor.uid, now,
              {body->rumor.data.data(), body->rumor.data.size()});
        }
      });
}

void PlainGossipProcess::on_restart(Round now) { service_->reset(now); }

void PlainGossipProcess::inject(const sim::Rumor& rumor) {
  auto body = std::make_shared<BaselineRumorPayload>();
  body->rumor = rumor;
  // The service delivers locally at inject when this process is in the
  // destination set, so no extra listener call is needed here.
  service_->inject(rumor.injected_at, std::move(body), rumor.dest,
                   rumor.injected_at + rumor.deadline);
}

void PlainGossipProcess::send_phase(Round now, sim::Sender& out) {
  service_->send_phase(now, out);
}

void PlainGossipProcess::receive_phase(Round now,
                                       std::span<const sim::Envelope> inbox) {
  for (const auto& e : inbox) service_->on_envelope(now, e);
}

namespace {
struct PlainGossipSnapshot final : sim::ProcessSnapshot {
  Rng rng{0};
  std::unique_ptr<gossip::ContinuousGossipService> service;
};
}  // namespace

std::unique_ptr<sim::ProcessSnapshot> PlainGossipProcess::snapshot() const {
  auto s = std::make_unique<PlainGossipSnapshot>();
  s->rng = rng_;
  s->service = std::make_unique<gossip::ContinuousGossipService>(*service_);
  return s;
}

bool PlainGossipProcess::restore(const sim::ProcessSnapshot& snap, Round /*now*/) {
  const auto* s = dynamic_cast<const PlainGossipSnapshot*>(&snap);
  if (s == nullptr) return false;
  rng_ = s->rng;
  service_ = std::make_unique<gossip::ContinuousGossipService>(*s->service);
  return true;
}

}  // namespace congos::baseline
