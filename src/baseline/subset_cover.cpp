#include "baseline/subset_cover.h"

#include <cmath>

#include "common/assert.h"
#include "common/math.h"

namespace congos::baseline {

SubsetCover::SubsetCover(std::size_t n) : n_(n) {
  CONGOS_ASSERT(n >= 1);
  padded_ = 1;
  while (padded_ < n) padded_ <<= 1;
}

namespace {

/// Recursive minimal cover over the leaf range [lo, lo+len) (len a power of
/// two). Padding leaves (index >= n) are "don't care": a subtree whose real
/// leaves are all destinations is usable even when it also spans padding
/// (padding keys are never assigned to a device, so including them leaks
/// nothing). Appends (first_leaf, real_leaf_count) ranges.
struct NodeSummary {
  bool any_dest = false;     // some real leaf in range is a destination
  bool any_nondest = false;  // some real leaf in range is NOT a destination
  bool full() const { return any_dest && !any_nondest; }
};

NodeSummary cover_rec(const DynamicBitset& dest, std::size_t n, std::uint32_t lo,
                      std::uint32_t len,
                      std::vector<std::pair<std::uint32_t, std::uint32_t>>& out) {
  if (lo >= n) return {};  // entirely padding
  if (len == 1) {
    return {dest.test(lo), !dest.test(lo)};
  }
  const std::uint32_t half = len / 2;
  const std::size_t mark = out.size();
  auto real_count = [&](std::uint32_t first, std::uint32_t span) {
    return std::min<std::uint32_t>(span, static_cast<std::uint32_t>(n) - first);
  };
  const NodeSummary left = cover_rec(dest, n, lo, half, out);
  if (left.full()) out.emplace_back(lo, real_count(lo, half));
  const NodeSummary right = cover_rec(dest, n, lo + half, half, out);
  if (right.full()) out.emplace_back(lo + half, real_count(lo + half, half));

  const NodeSummary me{left.any_dest || right.any_dest,
                       left.any_nondest || right.any_nondest};
  // A full node lets the parent merge: drop the children's entries.
  if (me.full()) out.resize(mark);
  return me;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> SubsetCover::cover(
    const DynamicBitset& dest) const {
  CONGOS_ASSERT(dest.size() == n_);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  const NodeSummary root =
      cover_rec(dest, n_, 0, static_cast<std::uint32_t>(padded_), out);
  if (root.full()) {
    out.clear();
    out.emplace_back(0, static_cast<std::uint32_t>(n_));
  }
  return out;
}

std::size_t SubsetCover::cover_size(const DynamicBitset& dest) const {
  return cover(dest).size();
}

std::uint64_t lkh_rekey_messages(std::size_t n, std::size_t joins, std::size_t leaves) {
  const double log_n = std::max(1.0, std::log2(static_cast<double>(n)));
  return static_cast<std::uint64_t>(
      std::ceil(2.0 * log_n * static_cast<double>(joins + leaves)));
}

std::uint64_t per_destination_messages(const DynamicBitset& dest) {
  return dest.count();
}

}  // namespace congos::baseline
