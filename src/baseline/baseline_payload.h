// Shared payload type for the comparison protocols: a whole rumor in one
// message. Any delivery of this payload to a process outside the rumor's
// destination set is a confidentiality violation the auditor can observe.
#pragma once

#include "sim/message.h"
#include "sim/rumor.h"

namespace congos::baseline {

struct BaselineRumorPayload final : sim::Payload {
  BaselineRumorPayload() : sim::Payload(sim::PayloadKind::kBaselineRumor) {}

  sim::Rumor rumor;

  std::size_t wire_size() const override { return sim::wire_size(rumor); }
};

/// Batch of whole rumors (used by the strongly-confidential protocol, where
/// one message may merge several rumors when allowed).
struct BaselineBatchPayload final : sim::Payload {
  BaselineBatchPayload() : sim::Payload(sim::PayloadKind::kBaselineBatch) {}

  std::vector<sim::Rumor> rumors;

  std::size_t wire_size() const override {
    std::size_t total = 4;
    for (const auto& r : rumors) total += sim::wire_size(r);
    return total;
  }
};

}  // namespace congos::baseline
