// Shared payload type for the comparison protocols: a whole rumor in one
// message. Any delivery of this payload to a process outside the rumor's
// destination set is a confidentiality violation the auditor can observe.
#pragma once

#include "sim/message.h"
#include "sim/rumor.h"
#include "wire/wire.h"

namespace congos::baseline {

struct BaselineRumorPayload final : sim::Payload {
  BaselineRumorPayload() : sim::Payload(sim::PayloadKind::kBaselineRumor) {}

  sim::Rumor rumor;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return sim::modeled_size(rumor); }
};

/// Batch of whole rumors (used by the strongly-confidential protocol, where
/// one message may merge several rumors when allowed).
struct BaselineBatchPayload final : sim::Payload {
  BaselineBatchPayload() : sim::Payload(sim::PayloadKind::kBaselineBatch) {}

  std::vector<sim::Rumor> rumors;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override {
    std::uint64_t total = 4;
    for (const auto& r : rumors) total += sim::modeled_size(r);
    return total;
  }
};

/// Receipt acknowledgement of the strongly-confidential baseline: rumor uids
/// received. Previously a file-local struct in strong_confidential.cpp with
/// NO size override at all — every ack was billed the 8-byte opaque default
/// no matter how many uids it carried. Moved here so the wire codec can
/// serialize it and the byte accounting sees its real size.
struct StrongAckPayload final : sim::Payload {
  StrongAckPayload() : sim::Payload(sim::PayloadKind::kStrongAck) {}

  std::vector<RumorUid> uids;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return 4 + 12 * uids.size(); }
};

// -- codec field walks (src/wire/wire.h) ------------------------------------

template <class S, wire::SameBase<BaselineRumorPayload> P>
void wire_fields(S& s, P& p) {
  wire_fields(s, p.rumor);
}

template <class S, wire::SameBase<BaselineBatchPayload> P>
void wire_fields(S& s, P& p) {
  s.seq(p.rumors);
  for (auto& r : p.rumors) {
    if (!s.ok()) return;
    wire_fields(s, r);
  }
}

template <class S, wire::SameBase<StrongAckPayload> P>
void wire_fields(S& s, P& p) {
  s.seq(p.uids);
  for (auto& uid : p.uids) {
    if (!s.ok()) return;
    s.varint32(uid.source);
    s.varint(uid.seq);
  }
}

inline std::uint64_t BaselineRumorPayload::encoded_size() const {
  wire::SizeSink s;
  wire_fields(s, *this);
  return s.size();
}

inline std::uint64_t BaselineBatchPayload::encoded_size() const {
  wire::SizeSink s;
  wire_fields(s, *this);
  return s.size();
}

inline std::uint64_t StrongAckPayload::encoded_size() const {
  wire::SizeSink s;
  wire_fields(s, *this);
  return s.size();
}

}  // namespace congos::baseline
