#include "baseline/strong_confidential.h"

#include <algorithm>

#include "common/assert.h"

namespace congos::baseline {

// StrongAckPayload moved to baseline/baseline_payload.h so the wire codec
// (and the byte accounting) can see it.

void StrongConfidentialProcess::on_restart(Round /*now*/) {
  known_.clear();
  pending_acks_.clear();
}

void StrongConfidentialProcess::inject(const sim::Rumor& rumor) {
  accept(rumor.injected_at, rumor, /*as_source=*/true);
}

void StrongConfidentialProcess::accept(Round now, const sim::Rumor& rumor,
                                       bool as_source) {
  auto [it, inserted] = known_.try_emplace(rumor.uid);
  if (!inserted) return;
  Tracked& t = it->second;
  t.rumor = rumor;
  t.i_am_source = as_source;
  if (as_source) t.acked = DynamicBitset(rumor.dest.size());
  if (rumor.dest.test(id())) {
    if (listener_ != nullptr) {
      listener_->on_rumor_delivered(id(), rumor.uid, now,
                                    {rumor.data.data(), rumor.data.size()});
    }
    if (!as_source) pending_acks_[rumor.uid.source].push_back(rumor.uid);
  }
}

void StrongConfidentialProcess::send_phase(Round now, sim::Sender& out) {
  // Flush acks to sources. A destination acking the source is causally
  // dependent on the rumor, but the source trivially knows the rumor, so
  // strong confidentiality is preserved.
  for (auto& [src, uids] : pending_acks_) {
    auto ack = std::make_shared<StrongAckPayload>();
    ack->uids = std::move(uids);
    out.send(
        sim::Envelope{id(), src, sim::ServiceTag{sim::ServiceKind::kBaseline, 0}, ack});
  }
  pending_acks_.clear();

  // Drop expired rumors.
  for (auto it = known_.begin(); it != known_.end();) {
    it = (it->second.rumor.expires_at() < now) ? known_.erase(it) : std::next(it);
  }
  if (known_.empty()) return;

  // Candidate relay targets: union of destination sets of held rumors,
  // restricted - by definition of strong confidentiality - to those sets.
  DynamicBitset candidates;
  bool have = false;
  for (const auto& [uid, t] : known_) {
    if (!t.rumor.dest.test(id()) && !t.i_am_source) continue;  // cannot relay
    if (!have) {
      candidates = t.rumor.dest;
      have = true;
    } else {
      candidates |= t.rumor.dest;
    }
  }
  if (!have) return;
  candidates.reset(id());
  auto pool = candidates.to_vector();
  if (pool.empty()) return;

  const auto k = static_cast<std::uint32_t>(
      std::min<std::size_t>(static_cast<std::size_t>(opt_.fanout), pool.size()));
  const auto picks =
      rng_.sample_without_replacement(static_cast<std::uint32_t>(pool.size()), k);
  for (auto idx : picks) {
    const ProcessId target = pool[idx];
    auto batch = std::make_shared<BaselineBatchPayload>();
    for (const auto& [uid, t] : known_) {
      // Merge only rumors legal for BOTH endpoints (Theorem 1's constraint):
      // the target must be a destination, and we must be allowed to hold it.
      const bool relay_ok = t.rumor.dest.test(id()) || t.i_am_source;
      if (relay_ok && t.rumor.dest.test(target)) batch->rumors.push_back(t.rumor);
    }
    if (batch->rumors.empty()) continue;
    max_merged_ = std::max(max_merged_, batch->rumors.size());
    out.send(sim::Envelope{id(), target,
                           sim::ServiceTag{sim::ServiceKind::kBaseline, 0},
                           std::move(batch)});
  }

  // Source fallback: direct-send unacked destinations just before expiry.
  for (auto& [uid, t] : known_) {
    if (!t.i_am_source || t.fallback_sent) continue;
    if (now < t.rumor.expires_at() - 1) continue;
    t.fallback_sent = true;
    auto single = std::make_shared<BaselineBatchPayload>();
    single->rumors.push_back(t.rumor);
    t.rumor.dest.for_each([&](std::uint32_t q) {
      if (q == id() || t.acked.test(q)) return;
      out.send(sim::Envelope{id(), static_cast<ProcessId>(q),
                             sim::ServiceTag{sim::ServiceKind::kBaseline, 0}, single});
    });
  }
}

void StrongConfidentialProcess::receive_phase(Round now,
                                              std::span<const sim::Envelope> inbox) {
  for (const auto& e : inbox) {
    CONGOS_ASSERT(e.body != nullptr);
    switch (e.body->kind()) {
      case sim::PayloadKind::kBaselineBatch: {
        const auto& batch = static_cast<const BaselineBatchPayload&>(*e.body);
        for (const auto& r : batch.rumors) {
          CONGOS_ASSERT_MSG(r.dest.test(id()),
                            "strongly confidential rumor reached a non-destination");
          if (r.expires_at() >= now) accept(now, r, /*as_source=*/false);
        }
        break;
      }
      case sim::PayloadKind::kStrongAck: {
        const auto& ack = static_cast<const StrongAckPayload&>(*e.body);
        for (const auto& uid : ack.uids) {
          auto it = known_.find(uid);
          if (it != known_.end() && it->second.i_am_source) {
            it->second.acked.set(e.from);
          }
        }
        break;
      }
      default:
        CONGOS_ASSERT_MSG(false, "unexpected payload at StrongConfidentialProcess");
    }
  }
}

namespace {
struct StrongConfidentialSnapshot final : sim::ProcessSnapshot {
  Rng rng{0};
  std::unordered_map<RumorUid, StrongConfidentialProcess::Tracked> known;
  std::unordered_map<ProcessId, std::vector<RumorUid>> pending_acks;
  std::size_t max_merged = 0;
};
}  // namespace

std::unique_ptr<sim::ProcessSnapshot> StrongConfidentialProcess::snapshot() const {
  auto s = std::make_unique<StrongConfidentialSnapshot>();
  s->rng = rng_;
  s->known = known_;
  s->pending_acks = pending_acks_;
  s->max_merged = max_merged_;
  return s;
}

bool StrongConfidentialProcess::restore(const sim::ProcessSnapshot& snap,
                                        Round /*now*/) {
  const auto* s = dynamic_cast<const StrongConfidentialSnapshot*>(&snap);
  if (s == nullptr) return false;
  rng_ = s->rng;
  known_ = s->known;
  pending_acks_ = s->pending_acks;
  max_merged_ = s->max_merged;
  return true;
}

}  // namespace congos::baseline
