// Strongly confidential gossip (Section 3).
//
// A protocol is *strongly confidential* when no message causally dependent on
// a rumor is ever sent to a process outside the rumor's destination set: only
// the destination set (plus the source) may collaborate on dissemination.
// Theorem 1 shows this forces Omega(n^{3/2 - eps} / dmax) per-round messages
// under random destination sets; experiment E1 measures this protocol in
// exactly that scenario.
//
// Protocol: each process relays the active rumors it holds to random members
// of those rumors' destination sets; one message to a peer may merge all
// rumors whose destination set contains both endpoints (the merging that
// Theorem 1's counting argument limits to c rumors per message). The source
// direct-sends unacknowledged destinations in the round before the deadline,
// so Quality of Delivery is deterministic for admissible rumors.
#pragma once

#include <unordered_map>
#include <vector>

#include "baseline/baseline_payload.h"
#include "common/rng.h"
#include "sim/process.h"

namespace congos::baseline {

class StrongConfidentialProcess final : public sim::Process {
 public:
  struct Options {
    int fanout = 2;  // random relay targets per round while holding rumors
  };

  StrongConfidentialProcess(ProcessId id, Options opt, std::uint64_t seed,
                            sim::DeliveryListener* listener)
      : sim::Process(id), opt_(opt), rng_(seed), listener_(listener) {}

  void on_restart(Round now) override;
  void send_phase(Round now, sim::Sender& out) override;
  void receive_phase(Round now, std::span<const sim::Envelope> inbox) override;
  void inject(const sim::Rumor& rumor) override;

  std::unique_ptr<sim::ProcessSnapshot> snapshot() const override;
  bool restore(const sim::ProcessSnapshot& snap, Round now) override;

  /// Largest number of rumors merged into one outgoing message so far - the
  /// quantity Theorem 1 bounds by a constant c w.h.p.
  std::size_t max_merged() const { return max_merged_; }

  /// Public for the snapshot type in strong_confidential.cpp.
  struct Tracked {
    sim::Rumor rumor;
    bool i_am_source = false;
    DynamicBitset acked;  // source side
    bool fallback_sent = false;
  };

 private:
  Options opt_;
  Rng rng_;
  sim::DeliveryListener* listener_;
  std::unordered_map<RumorUid, Tracked> known_;
  std::unordered_map<ProcessId, std::vector<RumorUid>> pending_acks_;
  std::size_t max_merged_ = 0;

  void accept(Round now, const sim::Rumor& rumor, bool as_source);
};

}  // namespace congos::baseline
