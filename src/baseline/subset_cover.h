// Cryptographic multicast cost models (the paper's "alternative approaches"
// discussion, Section 1).
//
// Two standard constructions are modelled analytically (no network traffic -
// these are comparators for experiment E9):
//
//  * Complete-Subtree broadcast encryption [Fiat-Naor'93 lineage]: processes
//    are leaves of a complete binary tree; each process holds the keys on its
//    root-to-leaf path. A rumor for destination set D is encrypted once per
//    node of the minimal subtree cover of D; cover_size(D) is the number of
//    ciphertext headers (and of per-group multicast "channels") needed.
//
//  * LKH / key-tree group keying [Wong-Gouda-Lam'00, Sherman-McGrew'03]: a
//    long-lived group with one shared key; each membership change re-keys the
//    changed leaf's path, costing about 2*log2(n) key-update messages.
//
// The paper's argument: these are efficient for *stable* groups but expensive
// when every rumor has a fresh destination set; E9 measures exactly that
// crossover against CONGOS.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"

namespace congos::baseline {

/// Complete-subtree cover: minimal set of maximal subtrees whose leaf sets
/// exactly tile the destination set D (|D| >= 1). Returned as the number of
/// subtrees; the cover itself is available for inspection.
class SubsetCover {
 public:
  /// `n` leaves; n need not be a power of two (the tree is conceptually
  /// padded, padding leaves never count as destinations).
  explicit SubsetCover(std::size_t n);

  std::size_t n() const { return n_; }

  /// Number of subtrees in the minimal cover of `dest`.
  std::size_t cover_size(const DynamicBitset& dest) const;

  /// The cover as (first_leaf, subtree_leaf_count) ranges.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cover(
      const DynamicBitset& dest) const;

 private:
  std::size_t n_;
  std::size_t padded_;  // next power of two >= n
};

/// LKH re-keying cost: key-update messages for `joins` + `leaves` membership
/// changes in a group over an n-leaf key tree (~2 log2 n per change).
std::uint64_t lkh_rekey_messages(std::size_t n, std::size_t joins, std::size_t leaves);

/// Point-to-point message cost of delivering one rumor to D with per-
/// destination encryption (the "encrypt individually for each process"
/// fallback the paper mentions): |D| messages, |D| encryptions.
std::uint64_t per_destination_messages(const DynamicBitset& dest);

}  // namespace congos::baseline
