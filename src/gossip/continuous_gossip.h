// Continuous gossip service: our realization of the black box the paper
// imports from [13] (Georgiou, Gilbert, Kowalski, "Meeting the Deadline",
// PODC'10 / Dist. Comp. 2011).
//
// Interface contract used by CONGOS (Section 4.2):
//   * rumors are injected at any time with an absolute deadline and a
//     destination set within a fixed universe (the group, for GroupGossip[l],
//     or [n] for AllGossip);
//   * an admissible rumor (source continuously alive) reaches every
//     continuously-alive destination by its deadline;
//   * per-round message complexity stays bounded.
//
// Realization (documented as a substitution in DESIGN.md section 2): an
// epidemic push protocol - every process holding active rumors forwards all
// of them to `fanout` uniformly random universe members per round. Two
// delivery modes:
//   * best-effort (default): delivery is w.h.p. within O(log |U|) rounds;
//     CONGOS layers its own confirmation + direct-send fallback on top, so
//     end-to-end QoD stays deterministic (exactly the paper's structure).
//   * guaranteed: destinations ack the origin on first receipt and the origin
//     direct-sends to unacked destinations in the round before the deadline,
//     making delivery deterministic for admissible rumors. Used by baselines
//     that have no outer fallback.
//
// All traffic passes a Filter pinned to the universe; in a correct build the
// filter never fires (tests assert this).
#pragma once

#include <functional>
#include <vector>

#include "common/bitset.h"
#include "common/flat_map.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/types.h"
#include "gossip/filter.h"
#include "sim/message.h"
#include "sim/process.h"
#include "wire/wire.h"

namespace congos::gossip {

/// A rumor as carried by the gossip service. `body` is opaque to the service
/// (fragments, metadata records, ...).
struct GossipRumor {
  std::uint64_t gid = 0;  // unique within a service instance
  ProcessId origin = kNoProcess;
  Round deadline_at = 0;  // absolute round
  DynamicBitset dest;     // subset of the universe
  sim::PayloadPtr body;
};

/// Modeled (fixed-width) size of one gossip rumor record: gid (8) + origin
/// (4) + deadline (8) + destination bitset + opaque body.
inline std::uint64_t modeled_size(const GossipRumor& r) {
  return 8 + 4 + 8 + r.dest.byte_size() + (r.body ? r.body->modeled_size() : 0);
}

/// Wire payload: a batch of rumors pushed to one peer. One batch is shared
/// between every same-round recipient (push targets, pull repliers, expander
/// neighbors), so both serialized sizes are memoized: the payload is
/// immutable once handed to a Sender, and encoded_size()/modeled_size() are
/// re-queried per recipient by the byte accounting.
struct GossipMsg final : sim::Payload {
  GossipMsg() : sim::Payload(sim::PayloadKind::kGossipMsg) {}

  std::vector<GossipRumor> rumors;

  std::uint64_t encoded_size() const override;  // defined after the walk
  std::uint64_t modeled_size() const override;

  /// PayloadPool recycle hook: a recycled message starts empty.
  void reuse() {
    rumors.clear();
    reset_wire_memo();
  }

  /// Must be called after any in-place mutation of `rumors` (the batch
  /// rebuild reuses one message object across rounds): the count-keyed memo
  /// cannot see content changes that keep the rumor count constant.
  void reset_wire_memo() const { cached_for_count_ = SIZE_MAX; }

 private:
  void refresh_size_memo() const;  // defined after the walk

  mutable std::uint64_t cached_encoded_size_ = 0;
  mutable std::uint64_t cached_modeled_size_ = 0;
  // Memo is invalidated when the rumor count changes; mutating a rumor
  // in place after a size query is still forbidden (see the class
  // comment: payloads are immutable once handed to a Sender).
  mutable std::size_t cached_for_count_ = SIZE_MAX;
};

/// Wire payload: receipt acknowledgements (guaranteed mode only).
struct GossipAck final : sim::Payload {
  GossipAck() : sim::Payload(sim::PayloadKind::kGossipAck) {}

  std::vector<std::uint64_t> gids;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return 4 + 8 * gids.size(); }

  void reuse() { gids.clear(); }
};

/// Dissemination strategy.
///
/// * kEpidemicPush - classic randomized gossip: `fanout` uniform targets per
///   round. Matches the randomized protocols the paper cites [19-21].
/// * kExpander - deterministic: a circulant expander graph over the universe
///   (skip offsets derived from a shared seed, degree max(fanout, log2 m));
///   active processes push to all their neighbors every round. This mirrors
///   [13]'s derandomization, which "replaces random choices with carefully
///   chosen expander graphs", and makes the per-round message count of the
///   black box deterministic.
/// * kPushPull - randomized push-pull a la Karp et al. [19]: alongside the
///   pushes, every universe member (even one holding nothing) sends one pull
///   request to a random peer each round; peers answer with their active
///   rumors. Pull closes the "last stragglers" tail that pure push pays
///   Theta(log n) extra rounds for, at the cost of a steady request load.
enum class GossipStrategy : std::uint8_t { kEpidemicPush, kExpander, kPushPull };

/// Wire payload: a pull request (kPushPull); the receiver responds next
/// round with its active rumors.
struct GossipPull final : sim::Payload {
  GossipPull() : sim::Payload(sim::PayloadKind::kGossipPull) {}

  std::uint64_t encoded_size() const override { return 0; }  // stateless body
  std::uint64_t modeled_size() const override { return 4; }

  void reuse() {}  // stateless; PayloadPool recycle hook
};

// ---------------------------------------------------------------------------
// Codec field walks (src/wire/wire.h). Batches delta-encode their gids: the
// sorted_gids_ invariant keeps batch rumors in ascending gid order, so the
// per-rumor gid shrinks from 8 modeled bytes to (usually) 1 actual byte.
// ---------------------------------------------------------------------------

/// Fields of one rumor record, gid excluded (the containing batch encodes
/// gids as deltas).
template <class S, wire::SameBase<GossipRumor> R>
void wire_rumor_fields(S& s, R& r) {
  s.varint32(r.origin);
  s.zigzag(r.deadline_at);
  s.bitset(r.dest);
  s.nested(r.body);
}

template <class S, wire::SameBase<GossipMsg> M>
void wire_fields(S& s, M& m) {
  s.seq(m.rumors);
  std::uint64_t prev = 0;
  for (auto& r : m.rumors) {
    if (!s.ok()) return;
    if constexpr (S::kReading) {
      std::uint64_t delta = 0;
      s.varint(delta);
      r.gid = prev + delta;  // unsigned wrap-around restores any gid
    } else {
      s.varint(r.gid - prev);  // small for sorted batches; lossless regardless
    }
    prev = r.gid;
    wire_rumor_fields(s, r);
  }
}

/// Ack gids are in arbitrary arrival order, so deltas are zigzag-signed.
template <class S, wire::SameBase<GossipAck> A>
void wire_fields(S& s, A& a) {
  s.seq(a.gids);
  std::uint64_t prev = 0;
  for (auto& g : a.gids) {
    if (!s.ok()) return;
    if constexpr (S::kReading) {
      std::int64_t delta = 0;
      s.zigzag(delta);
      g = prev + static_cast<std::uint64_t>(delta);
    } else {
      s.zigzag(static_cast<std::int64_t>(g - prev));
    }
    prev = g;
  }
}

template <class S, wire::SameBase<GossipPull> P>
void wire_fields(S&, P&) {}  // stateless

inline void GossipMsg::refresh_size_memo() const {
  if (cached_for_count_ == rumors.size()) return;
  wire::SizeSink actual;
  wire_fields(actual, *this);
  cached_encoded_size_ = actual.size();
  std::uint64_t modeled = 4;  // count
  for (const auto& r : rumors) modeled += gossip::modeled_size(r);
  cached_modeled_size_ = modeled;
  cached_for_count_ = rumors.size();
}

inline std::uint64_t GossipMsg::encoded_size() const {
  refresh_size_memo();
  return cached_encoded_size_;
}

inline std::uint64_t GossipMsg::modeled_size() const {
  refresh_size_memo();
  return cached_modeled_size_;
}

inline std::uint64_t GossipAck::encoded_size() const {
  wire::SizeSink s;
  wire_fields(s, *this);
  return s.size();
}

struct GossipConfig {
  sim::ServiceTag tag;      // kGroupGossip/partition or kAllGossip
  DynamicBitset universe;   // membership filter; must include the host
  int fanout = 3;           // push targets per round while active
  bool guaranteed = false;  // ack + origin fallback mode
  GossipStrategy strategy = GossipStrategy::kEpidemicPush;
  /// Seed for the deterministic expander graph; must be identical at every
  /// member of the universe (it is common knowledge, like the partitions).
  std::uint64_t graph_seed = 0xeca17e5eedULL;
};

/// Deterministic circulant out-neighbors of `self` within `universe`:
/// the member at rank i points at ranks (i + skip_k) mod m for `degree`
/// distinct skips derived from `seed`. Every member computes the same graph
/// locally. Exposed for tests (connectivity/diameter properties).
std::vector<ProcessId> expander_neighbors(ProcessId self, const DynamicBitset& universe,
                                          int degree, std::uint64_t seed);

class ContinuousGossipService {
 public:
  using DeliverFn = std::function<void(Round, const GossipRumor&)>;

  /// `rng` must outlive the service (typically the host process's rng).
  ContinuousGossipService(ProcessId self, GossipConfig cfg, Rng* rng, DeliverFn deliver);

  /// Crash-restart: drop all state (no durable storage). `now` is read from
  /// the global clock.
  void reset(Round now);

  /// Inject a rumor originated at this process. Returns its gid.
  /// `deadline_at` is absolute and must be >= now.
  std::uint64_t inject(Round now, sim::PayloadPtr body, DynamicBitset dest,
                       Round deadline_at);

  /// Host's send phase hook.
  void send_phase(Round now, sim::Sender& out);

  /// Host routes envelopes whose tag matches cfg.tag here.
  void on_envelope(Round now, const sim::Envelope& e);

  // -- introspection --------------------------------------------------------

  std::size_t known_active(Round now) const;
  std::uint64_t filter_drops() const { return filter_.drops(); }
  /// Incoming rumors absorbed by gid-idempotence (re-pushes, fault-layer
  /// duplicates, retransmissions). Survives reset(): it describes the
  /// experiment, not protocol state.
  std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  const sim::ServiceTag& tag() const { return cfg_.tag; }
  const DynamicBitset& universe() const { return cfg_.universe; }

 private:
  struct Tracked {
    GossipRumor rumor;
    bool delivered_locally = false;
    // guaranteed mode, origin side:
    DynamicBitset acked;
    bool fallback_sent = false;
  };

  ProcessId self_;
  GossipConfig cfg_;
  Rng* rng_;
  DeliverFn deliver_;
  Filter filter_;

  /// Universe members other than self_ (the sampling population).
  std::size_t peer_count_ = 0;
  /// True when the universe is the whole process space: then the i-th peer
  /// in ascending order is simply i + (i >= self_) and no materialized list
  /// is needed. A plain n-process system holds n of these services, so the
  /// list would be O(n^2) memory across the system (17 GB at n = 65536);
  /// the closed form makes it zero. Sparse universes (congos groups) still
  /// materialize `sparse_peers_` — they are a fraction of n each.
  bool full_universe_ = false;
  std::vector<ProcessId> sparse_peers_;  // universe minus self, ascending
  /// The i-th universe member other than self_, ascending; identical to the
  /// previously materialized peers_[i] for both universe shapes, so sampled
  /// targets (and hence traces) are unchanged.
  ProcessId peer_at(std::size_t i) const {
    return full_universe_ ? static_cast<ProcessId>(i + (i >= self_ ? 1 : 0))
                          : sparse_peers_[i];
  }
  std::vector<ProcessId> neighbors_;  // expander out-neighbors (kExpander)
  FlatMap<std::uint64_t, Tracked> known_;
  /// Sorted gids of `known_`, maintained incrementally by accept() /
  /// purge_expired() / reset(). Invariant: `sorted_gids_` holds exactly the
  /// keys of `known_`, in ascending order. This replaces the per-round
  /// rebuild-and-sort of the rumor list in send_phase(), which dominated the
  /// hot path at large n; the sorted order is what keeps batch contents (and
  /// hence traces) deterministic.
  std::vector<std::uint64_t> sorted_gids_;
  /// Deadlines parallel to `sorted_gids_` (struct-of-arrays view of the
  /// tracked rumors): the per-round expiry scan and the guaranteed-mode
  /// fallback check walk this dense array and only touch the map for the
  /// few entries that actually fire. Invariant: sorted_deadlines_[i] is the
  /// deadline of sorted_gids_[i].
  std::vector<Round> sorted_deadlines_;
  // acks to emit next send phase: origin -> gids (guaranteed mode)
  FlatMap<ProcessId, std::vector<std::uint64_t>> pending_acks_;
  // pull requests to answer next send phase (kPushPull)
  std::vector<ProcessId> pending_pulls_;
  Round epoch_start_ = 0;
  std::uint64_t counter_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;

  // -- allocation-free round machinery (DESIGN.md section 9) ----------------
  // The push batch persists across rounds. While the active rumor set is
  // unchanged (batch_dirty_ == false) the very same payload object is
  // re-sent; when it changes, the batch is rebuilt *in place* if this
  // service holds the only reference (use_count() == 1, guaranteed in steady
  // state because Network::end_round() drops every inbox reference), else a
  // fresh object is drawn from the pool and the old one recycles itself once
  // the last reader lets go.
  PayloadPool<GossipMsg> msg_pool_;
  PayloadPool<GossipAck> ack_pool_;
  PayloadPool<GossipPull> pull_pool_;
  std::shared_ptr<GossipMsg> batch_;
  bool batch_dirty_ = true;
  std::vector<std::uint32_t> pick_scratch_;  // push-target sample buffer
  /// Rebuild staging for active_batch(): surviving rumors are moved (not
  /// copied) from the exclusively-owned previous batch into this buffer,
  /// which is then swapped in — a rebuild costs O(active) pointer moves
  /// plus a real copy only per genuinely new rumor.
  std::vector<GossipRumor> batch_scratch_;

  std::uint64_t next_gid(Round now);
  void accept(Round now, const GossipRumor& r);
  void purge_expired(Round now);
  const std::shared_ptr<GossipMsg>& active_batch();
};

}  // namespace congos::gossip
