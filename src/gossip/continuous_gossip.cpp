#include "gossip/continuous_gossip.h"

#include <algorithm>

#include "common/assert.h"
#include "common/math.h"

namespace congos::gossip {

std::vector<ProcessId> expander_neighbors(ProcessId self, const DynamicBitset& universe,
                                          int degree, std::uint64_t seed) {
  CONGOS_ASSERT(universe.test(self));
  const auto members = universe.to_vector();
  const std::size_t m = members.size();
  if (m <= 1) return {};

  // Rank of self within the (sorted) member list.
  std::size_t rank = 0;
  while (members[rank] != self) ++rank;

  const auto want = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(degree), m - 1));
  // Distinct non-zero skips from a seeded splitmix stream; skip 1 first so
  // the ring is always included (guaranteed strong connectivity).
  std::vector<std::size_t> skips;
  skips.push_back(1);
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(m) << 32);
  while (skips.size() < want) {
    const auto s = 1 + static_cast<std::size_t>(splitmix64(state) % (m - 1));
    bool dup = false;
    for (auto existing : skips) dup = dup || existing == s;
    if (!dup) skips.push_back(s);
  }
  std::vector<ProcessId> out;
  out.reserve(skips.size());
  for (auto s : skips) out.push_back(members[(rank + s) % m]);
  return out;
}

ContinuousGossipService::ContinuousGossipService(ProcessId self, GossipConfig cfg,
                                                 Rng* rng, DeliverFn deliver)
    : self_(self),
      cfg_(std::move(cfg)),
      rng_(rng),
      deliver_(std::move(deliver)),
      filter_(cfg_.universe) {
  CONGOS_ASSERT(rng_ != nullptr);
  CONGOS_ASSERT_MSG(cfg_.universe.test(self_), "host must belong to its universe");
  CONGOS_ASSERT(cfg_.fanout >= 1);
  peer_count_ = cfg_.universe.count() - 1;
  full_universe_ = peer_count_ + 1 == cfg_.universe.size();
  if (!full_universe_) {
    sparse_peers_.reserve(peer_count_);
    cfg_.universe.for_each([&](std::uint32_t p) {
      if (p != self_) sparse_peers_.push_back(p);
    });
  }
  if (cfg_.strategy == GossipStrategy::kExpander) {
    // Degree at least log2(m): random circulants of logarithmic degree have
    // logarithmic diameter, the polylog round budget [13] works within.
    const auto m = peer_count_ + 1;
    const int degree =
        std::max(cfg_.fanout, m >= 2 ? ilog2_ceil(static_cast<std::uint64_t>(m)) : 1);
    neighbors_ = expander_neighbors(self_, cfg_.universe, degree, cfg_.graph_seed);
  }
}

void ContinuousGossipService::reset(Round now) {
  known_.clear();
  sorted_gids_.clear();
  sorted_deadlines_.clear();
  pending_acks_.clear();
  pending_pulls_.clear();
  batch_.reset();
  batch_dirty_ = true;
  epoch_start_ = now;
  counter_ = 0;
}

std::uint64_t ContinuousGossipService::next_gid(Round now) {
  // Unique across restarts: the epoch (restart round) is part of the id, and
  // a process restarts at most once per round. The packed layout is
  // [source:24 | epoch+1:19 | counter:21], so the *stored* value
  // `epoch_start_ + 1` must stay strictly below 2^19 - otherwise it spills
  // into bit 40, the low bit of the source-id field, and gids of different
  // processes can collide (a process restarted at round 2^19 - 1 would alias
  // source id self+1, epoch 0).
  CONGOS_ASSERT_MSG(counter_ < (1ull << 21), "too many gossip rumors in one epoch");
  CONGOS_ASSERT_MSG(now >= epoch_start_, "clock ran backwards");
  CONGOS_ASSERT_MSG(epoch_start_ >= 0 &&
                        static_cast<std::uint64_t>(epoch_start_) + 1 < (1ull << 19),
                    "epoch round exceeds gid packing range");
  return (static_cast<std::uint64_t>(self_) << 40) |
         (static_cast<std::uint64_t>(epoch_start_ + 1) << 21) | counter_++;
}

std::uint64_t ContinuousGossipService::inject(Round now, sim::PayloadPtr body,
                                              DynamicBitset dest, Round deadline_at) {
  CONGOS_ASSERT_MSG(deadline_at >= now, "injected rumor already expired");
  CONGOS_ASSERT_MSG(dest.size() == cfg_.universe.size(), "dest universe mismatch");
  CONGOS_ASSERT_MSG(cfg_.universe.contains_all(dest),
                    "gossip destinations must lie within the service universe");
  GossipRumor r;
  r.gid = next_gid(now);
  r.origin = self_;
  r.deadline_at = deadline_at;
  r.dest = std::move(dest);
  r.body = std::move(body);
  accept(now, r);
  return r.gid;
}

void ContinuousGossipService::accept(Round now, const GossipRumor& r) {
  if (r.deadline_at < now) return;  // expired in flight
  auto [it, inserted] = known_.try_emplace(r.gid);
  if (!inserted) {
    // Already known: re-pushed by a peer, duplicated by the fault layer, or a
    // retransmission. Gids make suppression exact - nothing downstream ever
    // sees the same rumor twice from this service.
    ++duplicates_suppressed_;
    return;
  }
  batch_dirty_ = true;
  const auto pos = std::lower_bound(sorted_gids_.begin(), sorted_gids_.end(), r.gid);
  const auto idx = static_cast<std::size_t>(pos - sorted_gids_.begin());
  sorted_gids_.insert(pos, r.gid);
  sorted_deadlines_.insert(sorted_deadlines_.begin() + static_cast<std::ptrdiff_t>(idx),
                           r.deadline_at);
  Tracked& t = it->second;
  t.rumor = r;
  if (cfg_.guaranteed && r.origin == self_) {
    t.acked = DynamicBitset(cfg_.universe.size());
  }
  if (r.dest.test(self_) && !t.delivered_locally) {
    t.delivered_locally = true;
    if (deliver_) deliver_(now, t.rumor);
    if (cfg_.guaranteed && r.origin != self_) {
      pending_acks_[r.origin].push_back(r.gid);
    }
  }
}

void ContinuousGossipService::purge_expired(Round now) {
  // One pass over the dense deadline array, preserving order (so no re-sort
  // is ever needed); the map is only touched for entries that actually
  // expire, so the common nothing-expires round is a pure sequential scan.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < sorted_gids_.size(); ++i) {
    if (sorted_deadlines_[i] < now) {
      auto it = known_.find(sorted_gids_[i]);
      CONGOS_ASSERT_MSG(it != known_.end(), "rumor index out of sync with known set");
      known_.erase(it);
      batch_dirty_ = true;
    } else {
      sorted_gids_[keep] = sorted_gids_[i];
      sorted_deadlines_[keep] = sorted_deadlines_[i];
      ++keep;
    }
  }
  sorted_gids_.resize(keep);
  sorted_deadlines_.resize(keep);
}

const std::shared_ptr<GossipMsg>& ContinuousGossipService::active_batch() {
  if (batch_dirty_ || !batch_) {
    if (!batch_ || batch_.use_count() > 1) {
      // Someone (an inbox mid-round, a snapshot, a recorder) still reads the
      // old object: leave it alone and draw a fresh one; the old batch
      // returns to the pool when its last reader drops it.
      batch_ = msg_pool_.acquire();
    }
    // Merge-sync against the previous contents: both sides are ascending by
    // gid and rumors are immutable once accepted, so every surviving rumor
    // is *moved* through the scratch buffer (O(1), no dest/body copies) and
    // only genuinely new gids are copied out of known_. When the old object
    // went to a fresh reader-shared one above, `rumors` is empty and every
    // entry is a fresh copy — the plain full rebuild.
    auto& rumors = batch_->rumors;
    batch_scratch_.clear();
    batch_scratch_.reserve(sorted_gids_.size());
    std::size_t j = 0;
    for (const std::uint64_t gid : sorted_gids_) {
      while (j < rumors.size() && rumors[j].gid < gid) ++j;  // dropped rumor
      if (j < rumors.size() && rumors[j].gid == gid) {
        batch_scratch_.push_back(std::move(rumors[j]));
        ++j;
      } else {
        batch_scratch_.push_back(known_.find(gid)->second.rumor);
      }
    }
    rumors.swap(batch_scratch_);
    // The memo is keyed on the rumor count, which an in-place rebuild can
    // leave unchanged while contents differ.
    batch_->reset_wire_memo();
    batch_dirty_ = false;
  }
  return batch_;
}

void ContinuousGossipService::send_phase(Round now, sim::Sender& out) {
  purge_expired(now);

  // All same-round recipients (pull repliers, push targets, expander
  // neighbors) share one batch of active rumors in gid order (see
  // active_batch(): the payload object itself persists across rounds and is
  // only rebuilt when the active set changed).

  // Guaranteed mode: flush receipt acks accumulated since the last round.
  if (cfg_.guaranteed && !pending_acks_.empty()) {
    // Deterministic emission order.
    std::vector<ProcessId> origins;
    origins.reserve(pending_acks_.size());
    for (const auto& [origin, _] : pending_acks_) origins.push_back(origin);
    std::sort(origins.begin(), origins.end());
    for (ProcessId origin : origins) {
      if (!filter_.allows(origin)) continue;
      auto ack = ack_pool_.acquire();
      ack->gids = pending_acks_.find(origin)->second;
      out.send(sim::Envelope{self_, origin, cfg_.tag, std::move(ack)});
    }
    pending_acks_.clear();
  }

  // Push-pull: answer last round's pull requests with our active rumors,
  // and issue one pull request to a random peer. Pulls are issued even when
  // we hold nothing - that is what lets late joiners and restarted processes
  // catch up without waiting to be pushed at.
  if (cfg_.strategy == GossipStrategy::kPushPull && peer_count_ > 0) {
    if (!known_.empty() && !pending_pulls_.empty()) {
      const auto& reply = active_batch();
      std::sort(pending_pulls_.begin(), pending_pulls_.end());
      pending_pulls_.erase(
          std::unique(pending_pulls_.begin(), pending_pulls_.end()),
          pending_pulls_.end());
      for (ProcessId requester : pending_pulls_) {
        if (!filter_.allows(requester)) continue;
        out.send(sim::Envelope{self_, requester, cfg_.tag, reply});
      }
    }
    pending_pulls_.clear();
    const ProcessId target = peer_at(rng_->next_below(peer_count_));
    if (filter_.allows(target)) {
      out.send(sim::Envelope{self_, target, cfg_.tag, pull_pool_.acquire()});
    }
  }

  if (known_.empty() || peer_count_ == 0) return;

  // Epidemic push: all active rumors to `fanout` random universe peers.
  if (cfg_.strategy == GossipStrategy::kExpander) {
    // Deterministic push along the expander out-edges.
    for (ProcessId target : neighbors_) {
      if (!filter_.allows(target)) continue;
      out.send(sim::Envelope{self_, target, cfg_.tag, active_batch()});
    }
  } else {
    // kEpidemicPush and the push half of kPushPull.
    const auto k = static_cast<std::uint32_t>(
        std::min<std::size_t>(static_cast<std::size_t>(cfg_.fanout), peer_count_));
    rng_->sample_without_replacement(static_cast<std::uint32_t>(peer_count_), k,
                                     pick_scratch_);
    for (auto idx : pick_scratch_) {
      const ProcessId target = peer_at(idx);
      if (!filter_.allows(target)) continue;
      out.send(sim::Envelope{self_, target, cfg_.tag, active_batch()});
    }
  }

  // Guaranteed mode: origin fallback in the round before each deadline. The
  // dense deadline array screens out not-yet-imminent rumors (the vast
  // majority every round) before any map lookup.
  if (cfg_.guaranteed) {
    for (std::size_t i = 0; i < sorted_gids_.size(); ++i) {
      if (now < sorted_deadlines_[i] - 1) continue;
      Tracked& t = known_.find(sorted_gids_[i])->second;
      if (t.rumor.origin != self_ || t.fallback_sent) continue;
      t.fallback_sent = true;
      auto single = msg_pool_.acquire();
      single->rumors.push_back(t.rumor);
      t.rumor.dest.for_each([&](std::uint32_t q) {
        if (q == self_ || t.acked.test(q)) return;
        if (!filter_.allows(q)) return;
        out.send(sim::Envelope{self_, static_cast<ProcessId>(q), cfg_.tag, single});
      });
    }
  }
}

void ContinuousGossipService::on_envelope(Round now, const sim::Envelope& e) {
  CONGOS_ASSERT(e.to == self_);
  CONGOS_ASSERT(e.tag == cfg_.tag);
  CONGOS_ASSERT(e.body != nullptr);
  switch (e.body->kind()) {
    case sim::PayloadKind::kGossipMsg: {
      const auto& msg = static_cast<const GossipMsg&>(*e.body);
      for (const auto& r : msg.rumors) accept(now, r);
      return;
    }
    case sim::PayloadKind::kGossipPull:
      CONGOS_ASSERT_MSG(cfg_.strategy == GossipStrategy::kPushPull,
                        "pull request under a non-pull strategy");
      pending_pulls_.push_back(e.from);
      return;
    case sim::PayloadKind::kGossipAck: {
      const auto& ack = static_cast<const GossipAck&>(*e.body);
      for (auto gid : ack.gids) {
        auto it = known_.find(gid);
        if (it != known_.end() && it->second.rumor.origin == self_ &&
            it->second.acked.size() != 0) {
          it->second.acked.set(e.from);
        }
      }
      return;
    }
    default:
      CONGOS_ASSERT_MSG(false, "unknown payload type on gossip service tag");
  }
}

std::size_t ContinuousGossipService::known_active(Round now) const {
  std::size_t c = 0;
  for (const Round d : sorted_deadlines_) {
    if (d >= now) ++c;
  }
  return c;
}

}  // namespace congos::gossip
