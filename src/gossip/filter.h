// Filter[l] (Section 4.2, Fig. 11).
//
// Every message emitted by GroupGossip[l] at a process p is filtered before
// reaching the Network: messages to processes outside p's group in partition
// l are dropped. From GroupGossip's perspective the filtered processes are
// simply failed (the continuous gossip service tolerates arbitrary failures).
//
// Our gossip realization samples targets inside the universe to begin with,
// so in a correct build the filter never fires; it is kept as an enforced
// boundary (and a bug canary: tests assert drops() == 0).
#pragma once

#include <cstdint>

#include "common/bitset.h"
#include "common/types.h"

namespace congos::gossip {

class Filter {
 public:
  /// `universe`: the processes this service instance may talk to.
  explicit Filter(DynamicBitset universe) : universe_(std::move(universe)) {}

  /// True iff a message to `to` may pass. Counts refusals.
  bool allows(ProcessId to) {
    if (universe_.test(to)) return true;
    ++drops_;
    return false;
  }

  const DynamicBitset& universe() const { return universe_; }
  std::uint64_t drops() const { return drops_; }

 private:
  DynamicBitset universe_;
  std::uint64_t drops_ = 0;
};

}  // namespace congos::gossip
