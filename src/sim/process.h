// The process abstraction (Section 2 of the paper).
//
// Each round an alive process: (i) sends point-to-point messages, (ii)
// receives the messages sent to it in the current round, (iii) performs local
// computation. Crashed processes do nothing; a restarting process is reset to
// its default initial state (no durable storage) knowing only the algorithm,
// [n], and the global clock.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "sim/rumor.h"

namespace congos::sim {

/// Opaque snapshot of a process's protocol state, produced by
/// Process::snapshot() and consumed by Process::restore(). Concrete types
/// are private to each process implementation; payload pointers inside are
/// shared (payloads are immutable once sent), so snapshots are cheap
/// relative to the state they capture. Part of the engine checkpoint
/// machinery (see sim::EngineCheckpoint and DESIGN.md section 7).
struct ProcessSnapshot {
  virtual ~ProcessSnapshot() = default;
};

/// Interface through which a process hands messages to the network during its
/// send phase.
class Sender {
 public:
  virtual ~Sender() = default;
  virtual void send(Envelope e) = 0;
};

/// Sink for application-level rumor deliveries: a protocol process calls this
/// exactly when it "returns" a rumor to its user (reassembly in CONGOS,
/// direct receipt in the baselines). The QoD auditor listens here.
class DeliveryListener {
 public:
  virtual ~DeliveryListener() = default;
  virtual void on_rumor_delivered(ProcessId at, const RumorUid& uid, Round when,
                                  std::span<const std::uint8_t> data) = 0;
};

class Process {
 public:
  explicit Process(ProcessId id) : id_(id) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }

  /// Initial boot (round 0, or whenever the engine first starts the process).
  virtual void on_start(Round /*now*/) {}

  /// Crash-and-restart: all protocol state must be discarded. The process may
  /// read the global clock (`now`).
  virtual void on_restart(Round now) = 0;

  /// Phase (i): emit this round's messages.
  virtual void send_phase(Round now, Sender& out) = 0;

  /// Phases (ii)+(iii): consume the messages delivered this round and run
  /// local computation.
  virtual void receive_phase(Round now, std::span<const Envelope> inbox) = 0;

  /// Rumor injection (adversary-driven). Protocols that do not accept
  /// injections may keep the default no-op.
  virtual void inject(const Rumor& /*rumor*/) {}

  /// Checkpoint support: capture all mutable protocol state at a round
  /// boundary. nullptr = unsupported (the engine checkpoint is then marked
  /// incomplete and cannot be restored).
  virtual std::unique_ptr<ProcessSnapshot> snapshot() const { return nullptr; }

  /// Restore a state captured by snapshot() *on the same object* (snapshots
  /// may hold callbacks bound to their host). `now` is the round the
  /// snapshot was taken at. Returns false when unsupported or the snapshot
  /// type does not match.
  virtual bool restore(const ProcessSnapshot& /*snap*/, Round /*now*/) {
    return false;
  }

 private:
  ProcessId id_;
};

}  // namespace congos::sim
