// The process abstraction (Section 2 of the paper).
//
// Each round an alive process: (i) sends point-to-point messages, (ii)
// receives the messages sent to it in the current round, (iii) performs local
// computation. Crashed processes do nothing; a restarting process is reset to
// its default initial state (no durable storage) knowing only the algorithm,
// [n], and the global clock.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "sim/rumor.h"

namespace congos::sim {

/// Interface through which a process hands messages to the network during its
/// send phase.
class Sender {
 public:
  virtual ~Sender() = default;
  virtual void send(Envelope e) = 0;
};

/// Sink for application-level rumor deliveries: a protocol process calls this
/// exactly when it "returns" a rumor to its user (reassembly in CONGOS,
/// direct receipt in the baselines). The QoD auditor listens here.
class DeliveryListener {
 public:
  virtual ~DeliveryListener() = default;
  virtual void on_rumor_delivered(ProcessId at, const RumorUid& uid, Round when,
                                  std::span<const std::uint8_t> data) = 0;
};

class Process {
 public:
  explicit Process(ProcessId id) : id_(id) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }

  /// Initial boot (round 0, or whenever the engine first starts the process).
  virtual void on_start(Round /*now*/) {}

  /// Crash-and-restart: all protocol state must be discarded. The process may
  /// read the global clock (`now`).
  virtual void on_restart(Round now) = 0;

  /// Phase (i): emit this round's messages.
  virtual void send_phase(Round now, Sender& out) = 0;

  /// Phases (ii)+(iii): consume the messages delivered this round and run
  /// local computation.
  virtual void receive_phase(Round now, std::span<const Envelope> inbox) = 0;

  /// Rumor injection (adversary-driven). Protocols that do not accept
  /// injections may keep the default no-op.
  virtual void inject(const Rumor& /*rumor*/) {}

 private:
  ProcessId id_;
};

}  // namespace congos::sim
