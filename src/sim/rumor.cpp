#include "sim/rumor.h"

namespace congos::sim {

Rumor make_rumor(ProcessId source, std::uint64_t seq, std::vector<std::uint8_t> data,
                 Round deadline, DynamicBitset dest) {
  Rumor r;
  r.uid = RumorUid{source, seq};
  r.data = std::move(data);
  r.deadline = deadline;
  r.dest = std::move(dest);
  return r;
}

}  // namespace congos::sim
