// The synchronous round engine.
//
// Drives the computation described in Section 2: globally numbered rounds,
// each consisting of a send phase, an adversary phase (the CRRI adversary is
// adaptive and may crash processes *after* seeing this round's sends and
// random choices), a delivery phase, and a receive/compute phase.
//
// The engine owns lifecycle state (alive/crashed), enforces the "at most one
// crash or restart per process per round" rule, and fans events out to
// registered observers (auditors, statistics).
//
// Sharded round execution (DESIGN.md section 12): the send and receive
// phases touch only per-process state (each process draws from its own RNG;
// the engine RNG is confined to the serial adversary and delivery phases),
// so set_parallelism() can fan them out over a ThreadPool in fixed
// contiguous shards of the alive-id list. Per-shard send buffers are merged
// into the network in ascending shard order, reproducing the serial
// submission order exactly — traces are byte-identical at any thread count.
#pragma once

#include <memory>
#include <vector>

#include "common/bitset.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/stats.h"

namespace congos {
class ThreadPool;
}  // namespace congos

namespace congos::sim {

class Engine;
class DeliveryMux;

/// Opaque snapshot of an adversary component's mutable state (sequence
/// counters, budgets, script cursors). Produced by Adversary::snapshot() and
/// consumed by Adversary::restore(); concrete types are private to each
/// component. Part of the engine checkpoint machinery (see
/// Engine::save_checkpoint and DESIGN.md section 7).
struct AdversarySnapshot {
  virtual ~AdversarySnapshot() = default;
};

/// The CRRI adversary hook points. Implementations live in src/adversary.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Before the send phase: inject rumors, crash (process will not send),
  /// restart processes.
  virtual void at_round_start(Engine& /*engine*/) {}

  /// After the send phase, before delivery: the adaptive adversary may
  /// inspect Engine::pending() (the messages and hence the random choices of
  /// this round) and crash processes; their outgoing messages are then
  /// subject to the chosen PartialDelivery policy and they receive nothing.
  virtual void after_sends(Engine& /*engine*/) {}

  /// After the receive phase.
  virtual void at_round_end(Engine& /*engine*/) {}

  /// Checkpoint support: capture the component's mutable state so a run can
  /// be rewound. nullptr = unsupported (the engine checkpoint is then marked
  /// incomplete). Stateless components return the base AdversarySnapshot.
  virtual std::unique_ptr<AdversarySnapshot> snapshot() const { return nullptr; }
  /// Restore a state captured by snapshot() *on the same object*. Returns
  /// false when unsupported or the snapshot type does not match.
  virtual bool restore(const AdversarySnapshot& /*snap*/) { return false; }
};

/// Passive observers of the execution (auditors, tracing).
///
/// Crash/restart events come in two flavours: the legacy two-argument hooks
/// and policy-carrying overloads whose default implementation forwards to
/// them. Observers that need the adversary's full decision (the
/// PartialDelivery policy chosen for the victim's in-flight messages - e.g.
/// the replay DecisionRecorder) override the three-argument form; everyone
/// else keeps overriding the two-argument form and is unaffected.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void on_envelope_delivered(const Envelope& /*e*/, Round /*now*/) {}
  virtual void on_crash(ProcessId /*p*/, Round /*now*/) {}
  virtual void on_restart(ProcessId /*p*/, Round /*now*/) {}
  virtual void on_crash(ProcessId p, Round now, PartialDelivery /*policy*/) {
    on_crash(p, now);
  }
  virtual void on_restart(ProcessId p, Round now, PartialDelivery /*policy*/) {
    on_restart(p, now);
  }
  virtual void on_inject(const Rumor& /*rumor*/, Round /*now*/) {}
  virtual void on_round_end(Round /*now*/) {}
};

/// A point-in-time snapshot of the simulation core, taken at a round
/// boundary: engine bookkeeping, RNG position, message statistics, network
/// counters, per-process protocol state and (when present) adversary state.
/// Execution observers and auditors are *not* captured - see DESIGN.md
/// section 7 for the determinism contract.
///
/// Restore is only valid on the engine that produced the snapshot (process
/// snapshots hold callbacks bound to their host objects); a checkpoint can
/// be restored any number of times.
struct EngineCheckpoint {
  Round now = 0;
  bool started = false;
  Rng rng{0};
  MessageStats stats;
  NetworkCheckpoint network;
  DynamicBitset alive;
  std::size_t alive_count = 0;
  std::vector<Round> alive_since;
  std::vector<std::unique_ptr<ProcessSnapshot>> processes;
  std::unique_ptr<AdversarySnapshot> adversary;
  bool had_adversary = false;

  /// True iff every process (and the adversary, when one is attached)
  /// produced a snapshot; restore_checkpoint() requires this.
  bool complete = true;
};

class Engine {
 public:
  /// `seed` determines every random choice in the execution (network tie
  /// breaking, adversary randomness drawn from Engine::rng()).
  Engine(std::vector<std::unique_ptr<Process>> processes, std::uint64_t seed);

  std::size_t n() const { return processes_.size(); }
  Round now() const { return now_; }
  Rng& rng() { return rng_; }
  MessageStats& stats() { return stats_; }
  const MessageStats& stats() const { return stats_; }
  Network& network() { return network_; }

  Process& process(ProcessId p) { return *processes_[p]; }
  const Process& process(ProcessId p) const { return *processes_[p]; }

  bool alive(ProcessId p) const { return alive_.test(p); }
  /// Maintained incrementally by crash()/restart(); workloads call this every
  /// round, so it must not rescan alive_.
  std::size_t alive_count() const { return alive_count_; }
  /// The alive process ids in ascending order, likewise maintained
  /// incrementally (ordered insert/erase on lifecycle events, rebuilt only by
  /// restore_checkpoint). The shard partition walks this list directly.
  const std::vector<ProcessId>& alive_ids() const { return alive_ids_; }

  /// Rounds the process has been continuously alive, as of the current round
  /// (the Proxy / GroupDistribution activation checks use this through the
  /// process's own bookkeeping; exposed here for adversaries and tests).
  Round alive_since(ProcessId p) const { return alive_since_[p]; }

  // -- adversary actions ---------------------------------------------------

  /// Crash p. If called after the send phase, p's outgoing messages of this
  /// round are resolved per `policy`. At most one lifecycle event per
  /// process per round.
  void crash(ProcessId p, PartialDelivery policy = PartialDelivery::kDropAll);

  /// Restart p with default-initial state. `policy` governs the in-flight
  /// messages addressed to p this round.
  void restart(ProcessId p, PartialDelivery policy = PartialDelivery::kDeliverAll);

  /// Inject a rumor at alive process p (at most one injection per process per
  /// round). Stamps rumor.injected_at.
  void inject(ProcessId p, Rumor rumor);

  /// True iff p already received an injection this round (composite
  /// workloads use this to respect the one-injection-per-round rule).
  bool injected_this_round(ProcessId p) const { return injected_this_round_.test(p); }

  /// True iff p already crashed or restarted this round (composite
  /// adversaries use this to respect the one-lifecycle-event rule).
  bool lifecycle_event_this_round(ProcessId p) const {
    return lifecycle_event_this_round_.test(p);
  }

  /// Messages submitted this round so far (valid inside Adversary hooks).
  const std::vector<Envelope>& pending() const { return network_.pending(); }

  // -- wiring ----------------------------------------------------------------

  void set_adversary(Adversary* adversary) { adversary_ = adversary; }
  void add_observer(ExecutionObserver* obs) { observers_.push_back(obs); }

  /// Deterministic intra-round parallelism (DESIGN.md section 12): run the
  /// send and receive phases across `pool` workers in `shards` fixed
  /// contiguous chunks of the ascending alive-id list. Results are
  /// byte-identical to serial execution at any thread/shard count. When the
  /// processes share a DeliveryListener it MUST be a DeliveryMux passed here
  /// so delivery reports are re-serialized in process-id order; adversary
  /// hooks and the delivery phase stay on the calling thread. Pass
  /// pool == nullptr to return to serial execution. Only valid at a round
  /// boundary.
  void set_parallelism(ThreadPool* pool, std::size_t shards, DeliveryMux* mux = nullptr);

  // -- execution ---------------------------------------------------------

  /// Run `rounds` additional rounds.
  void run(Round rounds);

  /// Run a single round.
  void step();

  // -- snapshots -----------------------------------------------------------

  /// Capture the simulation core at the current round boundary (must not be
  /// called from inside a step). Check `complete` before relying on restore:
  /// a process or adversary without snapshot support leaves a partial
  /// checkpoint that cannot be restored.
  EngineCheckpoint save_checkpoint() const;

  /// Rewind to a checkpoint taken on *this* engine. Returns false (leaving
  /// the engine untouched as far as possible) when the checkpoint is
  /// incomplete or shaped for a different system. Observers are not rewound:
  /// re-running after a restore replays the same event stream, but
  /// cumulative auditor state will include the pre-rewind events.
  bool restore_checkpoint(const EngineCheckpoint& cp);

 private:
  enum class Phase { kIdle, kRoundStart, kSending, kAfterSends, kDelivering, kReceiving, kRoundEnd };

  std::vector<std::unique_ptr<Process>> processes_;
  Rng rng_;
  MessageStats stats_;
  Network network_;

  Adversary* adversary_ = nullptr;
  std::vector<ExecutionObserver*> observers_;

  Round now_ = 0;
  Phase phase_ = Phase::kIdle;
  bool started_ = false;

  DynamicBitset alive_;
  std::size_t alive_count_ = 0;     // invariant: == count of set bits in alive_
  std::vector<Round> alive_since_;  // round the current "alive" run began
  /// Ascending ids of alive processes, maintained incrementally by
  /// crash()/restart() (ordered erase/insert of one id) so the send/receive
  /// loops skip dead processes without ever rescanning alive_.
  std::vector<ProcessId> alive_ids_;

  // Per-round flags as bitsets, one "touched" bool per flag so begin_round()
  // skips even the word-clear when the previous round left the flag empty —
  // a faults-off steady-state round does no per-process bookkeeping at all.
  DynamicBitset lifecycle_event_this_round_;
  DynamicBitset injected_this_round_;
  bool lifecycle_touched_ = false;
  bool injected_touched_ = false;

  // crash/restart bookkeeping for the delivery filters of the current round.
  // Invariant between rounds: every dead process has in_policy_ == kDropAll
  // (established by crash(), re-derived on restore_checkpoint()), so
  // begin_round() only marks filter *bits* for the dead set.
  std::vector<PartialDelivery> out_policy_;
  DynamicBitset out_filtered_;
  std::vector<PartialDelivery> in_policy_;
  DynamicBitset in_filtered_;
  bool out_touched_ = false;
  bool in_touched_ = false;
  DynamicBitset sent_this_round_;  // participated in the send phase

  // Sharded execution state (unused while pool_ == nullptr).
  ThreadPool* pool_ = nullptr;
  std::size_t shard_count_ = 1;
  DeliveryMux* mux_ = nullptr;
  struct ShardBuffer {
    std::vector<Envelope> out;  // send-phase submissions, in submission order
  };
  std::vector<ShardBuffer> shard_buffers_;

  class NetworkSender;
  class ShardSender;
  class DeliveryFanout;
  class PhaseTask;

  void begin_round();
  bool use_shards() const { return pool_ != nullptr && alive_ids_.size() > 1; }
  void run_phase_sharded(bool receive);
  void notify_crash(ProcessId p, PartialDelivery policy);
  void notify_restart(ProcessId p, PartialDelivery policy);
};

}  // namespace congos::sim
