#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace congos::sim {

const char* to_string(FaultKind f) {
  switch (f) {
    case FaultKind::kDropped: return "dropped";
    case FaultKind::kDuplicated: return "duplicated";
    case FaultKind::kDelayed: return "delayed";
    case FaultKind::kPartitioned: return "partitioned";
  }
  return "?";
}

void MessageStats::end_round(Round t) {
  std::uint64_t round_total = 0;
  per_round_by_kind_.push_back(current_);
  for (std::size_t k = 0; k < kNumServiceKinds; ++k) {
    totals_[k] += current_[k];
    max_[k] = std::max(max_[k], current_[k]);
    round_total += current_[k];
    current_[k] = 0;
  }
  total_all_ += round_total;
  if (round_total > max_all_) {
    max_all_ = round_total;
    max_round_ = t;
  }
  per_round_.push_back(round_total);
  total_bytes_ += current_bytes_;
  max_bytes_ = std::max(max_bytes_, current_bytes_);
  per_round_bytes_.push_back(current_bytes_);
  current_bytes_ = 0;
  ++rounds_;
}

std::uint64_t MessageStats::max_bytes_from(Round start) const {
  std::uint64_t m = 0;
  for (std::size_t r = static_cast<std::size_t>(std::max<Round>(start, 0));
       r < per_round_bytes_.size(); ++r) {
    m = std::max(m, per_round_bytes_[r]);
  }
  return m;
}

std::uint64_t MessageStats::percentile_from(Round start, double p) const {
  const auto first = static_cast<std::size_t>(std::max<Round>(start, 0));
  if (first >= per_round_.size()) return 0;
  std::vector<std::uint64_t> sorted(per_round_.begin() +
                                        static_cast<std::ptrdiff_t>(first),
                                    per_round_.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::uint64_t MessageStats::max_from(Round start) const {
  std::uint64_t m = 0;
  for (std::size_t r = static_cast<std::size_t>(std::max<Round>(start, 0));
       r < per_round_.size(); ++r) {
    m = std::max(m, per_round_[r]);
  }
  return m;
}

std::uint64_t MessageStats::max_from(Round start, ServiceKind kind) const {
  std::uint64_t m = 0;
  for (std::size_t r = static_cast<std::size_t>(std::max<Round>(start, 0));
       r < per_round_by_kind_.size(); ++r) {
    m = std::max(m, per_round_by_kind_[r][static_cast<std::size_t>(kind)]);
  }
  return m;
}

double MessageStats::mean_from(Round start) const {
  std::uint64_t sum = 0;
  std::size_t count = 0;
  for (std::size_t r = static_cast<std::size_t>(std::max<Round>(start, 0));
       r < per_round_.size(); ++r) {
    sum += per_round_[r];
    ++count;
  }
  return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
}

std::uint64_t MessageStats::total_from(Round start, ServiceKind kind) const {
  std::uint64_t sum = 0;
  for (std::size_t r = static_cast<std::size_t>(std::max<Round>(start, 0));
       r < per_round_by_kind_.size(); ++r) {
    sum += per_round_by_kind_[r][static_cast<std::size_t>(kind)];
  }
  return sum;
}

void MessageStats::reset() { *this = MessageStats{}; }

}  // namespace congos::sim
