// Typed message envelopes.
//
// Every point-to-point message is an Envelope tagged with the service that
// produced it (Fig. 1 of the paper: ConfidentialGossip / Proxy[l] /
// GroupDistribution[l] / GroupGossip[l] / AllGossip all multiplex over one
// Network). The tag is what lets the statistics collector attribute each
// message to a service (needed to verify Lemma 7 separately from the
// black-box gossip traffic) and lets the confidentiality auditor inspect
// payloads without any protocol cooperating.
#pragma once

#include <memory>

#include "common/types.h"

namespace congos::sim {

/// Which service sent a message. `kBaseline` covers the comparison protocols.
enum class ServiceKind : std::uint8_t {
  kGroupGossip,        // filtered continuous gossip instance (per partition)
  kAllGossip,          // unfiltered continuous gossip instance
  kProxy,              // Proxy[l] requests / acks
  kGroupDistribution,  // GroupDistribution[l] "partials" messages
  kFallback,           // ConfidentialGossip direct "shoot" at deadline
  kBaseline,           // baseline protocols (direct send, strong confidential...)
  kOther,
};

const char* to_string(ServiceKind k);

struct ServiceTag {
  ServiceKind kind = ServiceKind::kOther;
  PartitionIndex partition = 0;

  friend bool operator==(const ServiceTag&, const ServiceTag&) = default;
};

/// Concrete payload type, one tag per wire format. Receivers dispatch on
/// this tag with a switch + `static_cast` instead of RTTI type-cast chains:
/// the tag lives in the envelope hot path of every simulated round, and a
/// one-byte compare is what keeps large-n sweeps affordable.
///
/// The enum is the central registry of wire formats (like the protocol
/// numbers of a real network stack). A new payload type must (a) add a tag
/// here, (b) pass it to the Payload base constructor, and (c) keep its
/// contents deterministic functions of (seed, configuration) - see
/// DESIGN.md section 5, "Type-tagged payload dispatch".
enum class PayloadKind : std::uint8_t {
  kOpaque,  // default: test doubles and payloads nobody dispatches on

  // continuous gossip service (src/gossip)
  kGossipMsg,   // batch of rumors pushed to one peer
  kGossipAck,   // receipt acknowledgements (guaranteed mode)
  kGossipPull,  // pull request (kPushPull strategy)

  // CONGOS point-to-point payloads (src/congos)
  kProxyRequest,  // Proxy[l] request: fragments to distribute
  kProxyAck,      // Proxy[l] acknowledgement
  kPartials,      // GroupDistribution[l] "partials"
  kDirectRumor,   // ConfidentialGossip deadline fallback ("shoot")
  kPartialsAck,   // receipt ack for kPartials (retransmission mode only)
  kDirectAck,     // receipt ack for kDirectRumor (retransmission mode only)

  // CONGOS gossip rumor bodies (carried inside kGossipMsg)
  kFragment,            // one XOR share, intra-group dissemination
  kProxyShare,          // Proxy[l] intra-group share
  kHitSetShare,         // GroupDistribution[l] intra-group share
  kDistributionReport,  // AllGossip sanitized hitSet report

  // comparison protocols (src/baseline)
  kBaselineRumor,  // a whole rumor in one message
  kBaselineBatch,  // merged whole rumors (strongly-confidential baseline)
  kStrongAck,      // strongly-confidential receipt ack
};

/// Base class for all message payloads. Payloads are immutable once sent and
/// shared between the network queue, the inboxes and the auditors.
///
/// wire_size() estimates the serialized byte size of the payload, enabling
/// the *communication* complexity accounting the paper discusses in Section 7
/// (bits per round, as opposed to Definition 3's messages per round).
struct Payload {
  constexpr explicit Payload(PayloadKind kind = PayloadKind::kOpaque)
      : kind_(kind) {}
  virtual ~Payload() = default;
  virtual std::size_t wire_size() const { return 8; }

  PayloadKind kind() const { return kind_; }

 private:
  PayloadKind kind_;
};

/// Serialized size of an envelope: addressing/tag header plus body.
constexpr std::size_t kEnvelopeHeaderBytes = 12;

using PayloadPtr = std::shared_ptr<const Payload>;

struct Envelope {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  ServiceTag tag;
  PayloadPtr body;
};

}  // namespace congos::sim
