// Typed message envelopes.
//
// Every point-to-point message is an Envelope tagged with the service that
// produced it (Fig. 1 of the paper: ConfidentialGossip / Proxy[l] /
// GroupDistribution[l] / GroupGossip[l] / AllGossip all multiplex over one
// Network). The tag is what lets the statistics collector attribute each
// message to a service (needed to verify Lemma 7 separately from the
// black-box gossip traffic) and lets the confidentiality auditor inspect
// payloads without any protocol cooperating.
#pragma once

#include <memory>

#include "common/types.h"

namespace congos::sim {

/// Which service sent a message. `kBaseline` covers the comparison protocols.
enum class ServiceKind : std::uint8_t {
  kGroupGossip,        // filtered continuous gossip instance (per partition)
  kAllGossip,          // unfiltered continuous gossip instance
  kProxy,              // Proxy[l] requests / acks
  kGroupDistribution,  // GroupDistribution[l] "partials" messages
  kFallback,           // ConfidentialGossip direct "shoot" at deadline
  kBaseline,           // baseline protocols (direct send, strong confidential...)
  kOther,
};

const char* to_string(ServiceKind k);

struct ServiceTag {
  ServiceKind kind = ServiceKind::kOther;
  PartitionIndex partition = 0;

  friend bool operator==(const ServiceTag&, const ServiceTag&) = default;
};

/// Base class for all message payloads. Payloads are immutable once sent and
/// shared between the network queue, the inboxes and the auditors.
///
/// wire_size() estimates the serialized byte size of the payload, enabling
/// the *communication* complexity accounting the paper discusses in Section 7
/// (bits per round, as opposed to Definition 3's messages per round).
struct Payload {
  virtual ~Payload() = default;
  virtual std::size_t wire_size() const { return 8; }
};

/// Serialized size of an envelope: addressing/tag header plus body.
constexpr std::size_t kEnvelopeHeaderBytes = 12;

using PayloadPtr = std::shared_ptr<const Payload>;

struct Envelope {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  ServiceTag tag;
  PayloadPtr body;
};

}  // namespace congos::sim
