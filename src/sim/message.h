// Typed message envelopes.
//
// Every point-to-point message is an Envelope tagged with the service that
// produced it (Fig. 1 of the paper: ConfidentialGossip / Proxy[l] /
// GroupDistribution[l] / GroupGossip[l] / AllGossip all multiplex over one
// Network). The tag is what lets the statistics collector attribute each
// message to a service (needed to verify Lemma 7 separately from the
// black-box gossip traffic) and lets the confidentiality auditor inspect
// payloads without any protocol cooperating.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace congos::wire {
class WriteSink;
class ReadSink;
}  // namespace congos::wire

namespace congos::sim {

/// Which service sent a message. `kBaseline` covers the comparison protocols.
enum class ServiceKind : std::uint8_t {
  kGroupGossip,        // filtered continuous gossip instance (per partition)
  kAllGossip,          // unfiltered continuous gossip instance
  kProxy,              // Proxy[l] requests / acks
  kGroupDistribution,  // GroupDistribution[l] "partials" messages
  kFallback,           // ConfidentialGossip direct "shoot" at deadline
  kBaseline,           // baseline protocols (direct send, strong confidential...)
  kOther,
};

const char* to_string(ServiceKind k);

struct ServiceTag {
  ServiceKind kind = ServiceKind::kOther;
  PartitionIndex partition = 0;

  friend bool operator==(const ServiceTag&, const ServiceTag&) = default;
};

/// Concrete payload type, one tag per wire format. Receivers dispatch on
/// this tag with a switch + `static_cast` instead of RTTI type-cast chains:
/// the tag lives in the envelope hot path of every simulated round, and a
/// one-byte compare is what keeps large-n sweeps affordable.
///
/// The enum is the central registry of wire formats (like the protocol
/// numbers of a real network stack). A new payload type must (a) add a tag
/// here, (b) pass it to the Payload base constructor, and (c) keep its
/// contents deterministic functions of (seed, configuration) - see
/// DESIGN.md section 5, "Type-tagged payload dispatch".
enum class PayloadKind : std::uint8_t {
  kOpaque,  // default: test doubles and payloads nobody dispatches on

  // continuous gossip service (src/gossip)
  kGossipMsg,   // batch of rumors pushed to one peer
  kGossipAck,   // receipt acknowledgements (guaranteed mode)
  kGossipPull,  // pull request (kPushPull strategy)

  // CONGOS point-to-point payloads (src/congos)
  kProxyRequest,  // Proxy[l] request: fragments to distribute
  kProxyAck,      // Proxy[l] acknowledgement
  kPartials,      // GroupDistribution[l] "partials"
  kDirectRumor,   // ConfidentialGossip deadline fallback ("shoot")
  kPartialsAck,   // receipt ack for kPartials (retransmission mode only)
  kDirectAck,     // receipt ack for kDirectRumor (retransmission mode only)

  // CONGOS gossip rumor bodies (carried inside kGossipMsg)
  kFragment,            // one XOR share, intra-group dissemination
  kProxyShare,          // Proxy[l] intra-group share
  kHitSetShare,         // GroupDistribution[l] intra-group share
  kDistributionReport,  // AllGossip sanitized hitSet report

  // comparison protocols (src/baseline)
  kBaselineRumor,  // a whole rumor in one message
  kBaselineBatch,  // merged whole rumors (strongly-confidential baseline)
  kStrongAck,      // strongly-confidential receipt ack
};

/// Base class for all message payloads. Payloads are immutable once sent and
/// shared between the network queue, the inboxes and the auditors.
///
/// Two byte-size accessors drive the *communication* complexity accounting
/// the paper discusses in Section 7 (bits per round, as opposed to
/// Definition 3's messages per round):
///
///   * encoded_size() is the ACTUAL serialized size of the body under the
///     versioned wire codec (src/wire): exactly the bytes encode_envelope()
///     emits, computed by walking the same field template with a counting
///     sink (wire::SizeSink) — so it cannot drift from the encoder.
///   * modeled_size() is the legacy fixed-width size model (explicit-width
///     ints, no varint/delta compression). It is kept so experiments can
///     report the modeled-vs-actual delta (exp_bytes), i.e. what the
///     compact encoding buys.
///
/// The kOpaque defaults (8 bytes) cover test doubles the codec never
/// serializes; wire::encode_payload() refuses kOpaque bodies.
struct Payload {
  constexpr explicit Payload(PayloadKind kind = PayloadKind::kOpaque)
      : kind_(kind) {}
  virtual ~Payload() = default;
  virtual std::uint64_t encoded_size() const { return 8; }
  virtual std::uint64_t modeled_size() const { return 8; }

  PayloadKind kind() const { return kind_; }

 private:
  PayloadKind kind_;
};

/// Envelope header size under the legacy fixed-width model (addressing/tag
/// header). The actual v1 frame header is varint-encoded and checksummed —
/// see wire::encoded_envelope_size() — so real headers are usually larger
/// (checksum) but addressing shrinks; this constant only feeds the modeled
/// side of the modeled-vs-actual audit.
constexpr std::size_t kEnvelopeHeaderBytes = 12;

using PayloadPtr = std::shared_ptr<const Payload>;

/// Codec hooks for nested payloads (rumor bodies carried inside gossip
/// batches). Declared here — next to PayloadPtr, below the concrete payload
/// types — to break the layering cycle: the wire sink templates call them by
/// argument-dependent lookup, and their definitions live in
/// src/wire/payload_codec.cpp (link congos_wire), where every payload type
/// is visible. A null body encodes as one kOpaque kind byte and decodes back
/// to nullptr.
void wire_encode_nested(wire::WriteSink& s, const PayloadPtr& p);
void wire_decode_nested(wire::ReadSink& s, PayloadPtr& p);

struct Envelope {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  ServiceTag tag;
  PayloadPtr body;
};

}  // namespace congos::sim
