// Synchronous point-to-point network (Section 2).
//
// By default the network is *reliable*, exactly as the paper assumes:
// messages sent in round t are received in round t, and messages between two
// processes that are alive for the whole round are never lost. When a process
// crashes mid-round, an adversary-chosen subset of its outgoing messages is
// delivered; symmetrically for the inbound messages of a process that
// restarts mid-round.
//
// set_faults() breaks the reliability assumption deliberately: a seeded
// FaultConfig adds per-envelope drop / duplication / bounded delay and
// transient bidirectional partitions on top of the crash/restart filters
// (DESIGN.md section 10). Fault randomness lives in a dedicated Rng so the
// faults-off path stays byte-identical to the reliable network.
#pragma once

#include <span>
#include <vector>

#include "common/bitset.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/faults.h"
#include "sim/message.h"
#include "sim/stats.h"

namespace congos::sim {

/// Per-delivery hook for Network::deliver. A plain virtual interface rather
/// than std::function: deliver() runs once per round for every envelope in
/// flight, and the indirect call must not allocate or touch a type-erased
/// wrapper on that path.
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;
  virtual void on_delivered(const Envelope& e) = 0;
};

/// How the adversary resolves the in-flight messages of a process that
/// crashes (outgoing) or restarts (incoming) in the current round.
enum class PartialDelivery : std::uint8_t {
  kDeliverAll,  // every in-flight message goes through
  kDropAll,     // every in-flight message is lost
  kRandom,      // each in-flight message delivered with probability 1/2
};

/// An envelope the fault layer held back, due for delivery in round `due`.
struct DelayedEnvelope {
  Envelope env;
  Round due = 0;
};

/// All round-boundary network state a checkpoint must capture. sent_total_
/// alone is not enough: rewinding past a record-setting round must also
/// rewind the inbox high-water mark (or replayed runs reserve differently
/// and the allocation trace diverges), and under faults the in-flight
/// delayed queue, the fault counters' source clock and the fault Rng all
/// shape future deliveries.
struct NetworkCheckpoint {
  std::uint64_t sent_total = 0;
  std::size_t inbox_high_water = 0;
  Round round = 0;
  std::vector<DelayedEnvelope> delayed;
  Rng fault_rng{0};
};

class Network {
 public:
  explicit Network(std::size_t n, MessageStats* stats) : n_(n), stats_(stats) {}

  /// Arm the link-fault layer. Resets the dedicated fault Rng from
  /// cfg.seed; call before the first round (or right after restoring a
  /// checkpoint taken before the first round).
  void set_faults(const FaultConfig& cfg) {
    faults_ = cfg;
    faults_enabled_ = cfg.enabled();
    fault_rng_ = Rng(cfg.seed);
  }
  const FaultConfig& faults() const { return faults_; }
  bool faults_enabled() const { return faults_enabled_; }

  /// Envelopes currently held back by the fault layer (delays/duplicates).
  std::size_t in_flight_delayed() const { return delayed_.size(); }

  std::size_t n() const { return n_; }

  /// Queue a message for same-round delivery. Counted as "sent" immediately
  /// (Definition 3 counts sent messages).
  void submit(Envelope e);

  const std::vector<Envelope>& pending() const { return pending_; }

  /// Resolve the round: move each pending envelope into its target inbox,
  /// applying the crash/restart delivery filters.
  ///
  /// drop_from[p]  - p crashed this round; policy applies to p's sends.
  /// drop_to[p]    - p is unable to receive this round (crashed, or was dead
  ///                 at send time); restart partial delivery uses the policy.
  /// observer      - called for every *delivered* envelope (auditing);
  ///                 nullptr when nobody is listening.
  void deliver(const std::vector<PartialDelivery>& out_policy,
               const DynamicBitset& out_filtered,
               const std::vector<PartialDelivery>& in_policy,
               const DynamicBitset& in_filtered, Rng& rng,
               DeliveryObserver* observer);

  /// Inbox of process p for the current round; cleared by end_round().
  std::span<const Envelope> inbox(ProcessId p) const {
    return {inboxes_[p].data(), inboxes_[p].size()};
  }

  void end_round();

  std::uint64_t messages_sent_total() const { return sent_total_; }

  /// Checkpoint support. At a round boundary the pending queue and inboxes
  /// are empty, but the counters, the high-water mark, the round clock and
  /// (under faults) the delayed queue and fault Rng all carry state forward;
  /// restore() rewinds every one of them.
  NetworkCheckpoint checkpoint() const;
  void restore(const NetworkCheckpoint& cp);

 private:
  /// Applies the fault plan to a kept envelope. Returns true when the
  /// envelope should be delivered this round; may schedule delayed copies.
  bool apply_faults(const Envelope& e);
  /// Delivers delayed envelopes that came due, compacting the queue.
  void release_delayed(const std::vector<PartialDelivery>& in_policy,
                       const DynamicBitset& in_filtered,
                       DeliveryObserver* observer);

  std::size_t n_;
  MessageStats* stats_;
  // pending_ and the inboxes are cleared - never deallocated - between
  // rounds, so after warm-up the hot path performs no queue reallocation.
  std::vector<Envelope> pending_;
  std::vector<std::vector<Envelope>> inboxes_ = std::vector<std::vector<Envelope>>(n_);
  /// Global high-water mark of per-inbox messages received in a round.
  /// deliver() pre-reserves every inbox against it (with headroom), so after
  /// ramp-up a record-setting round almost never reallocates (DESIGN.md
  /// section 9).
  std::size_t inbox_high_water_ = 0;
  std::uint64_t sent_total_ = 0;

  // -- link-fault layer (inert unless set_faults() armed it) -----------------
  FaultConfig faults_;
  bool faults_enabled_ = false;
  Rng fault_rng_{0};
  /// Envelopes held back by delay/duplication faults, in scheduling order
  /// (FIFO per due round: earlier-submitted envelopes release first).
  std::vector<DelayedEnvelope> delayed_;
  /// Round clock mirroring Engine::now(): deliver() runs during round
  /// `round_`, end_round() advances it. Owned here so delayed releases do
  /// not change any public signature on the reliable path.
  Round round_ = 0;
};

}  // namespace congos::sim
