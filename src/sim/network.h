// Synchronous reliable point-to-point network (Section 2).
//
// Messages sent in round t are received in round t. Messages between two
// processes that are alive for the whole round are never lost. When a process
// crashes mid-round, an adversary-chosen subset of its outgoing messages is
// delivered; symmetrically for the inbound messages of a process that
// restarts mid-round.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/stats.h"

namespace congos::sim {

/// Per-delivery hook for Network::deliver. A plain virtual interface rather
/// than std::function: deliver() runs once per round for every envelope in
/// flight, and the indirect call must not allocate or touch a type-erased
/// wrapper on that path.
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;
  virtual void on_delivered(const Envelope& e) = 0;
};

/// How the adversary resolves the in-flight messages of a process that
/// crashes (outgoing) or restarts (incoming) in the current round.
enum class PartialDelivery : std::uint8_t {
  kDeliverAll,  // every in-flight message goes through
  kDropAll,     // every in-flight message is lost
  kRandom,      // each in-flight message delivered with probability 1/2
};

class Network {
 public:
  explicit Network(std::size_t n, MessageStats* stats) : n_(n), stats_(stats) {}

  std::size_t n() const { return n_; }

  /// Queue a message for same-round delivery. Counted as "sent" immediately
  /// (Definition 3 counts sent messages).
  void submit(Envelope e);

  const std::vector<Envelope>& pending() const { return pending_; }

  /// Resolve the round: move each pending envelope into its target inbox,
  /// applying the crash/restart delivery filters.
  ///
  /// drop_from[p]  - p crashed this round; policy applies to p's sends.
  /// drop_to[p]    - p is unable to receive this round (crashed, or was dead
  ///                 at send time); restart partial delivery uses the policy.
  /// observer      - called for every *delivered* envelope (auditing);
  ///                 nullptr when nobody is listening.
  void deliver(const std::vector<PartialDelivery>& out_policy,
               const std::vector<bool>& out_filtered,
               const std::vector<PartialDelivery>& in_policy,
               const std::vector<bool>& in_filtered, Rng& rng,
               DeliveryObserver* observer);

  /// Inbox of process p for the current round; cleared by end_round().
  std::span<const Envelope> inbox(ProcessId p) const {
    return {inboxes_[p].data(), inboxes_[p].size()};
  }

  void end_round();

  std::uint64_t messages_sent_total() const { return sent_total_; }

  /// Checkpoint support: rewind the sent counter to a value captured at a
  /// round boundary (pending queue and inboxes are empty there, so the
  /// counter is the only state worth restoring).
  void restore_sent_total(std::uint64_t total) { sent_total_ = total; }

 private:
  std::size_t n_;
  MessageStats* stats_;
  // pending_ and the inboxes are cleared - never deallocated - between
  // rounds, so after warm-up the hot path performs no queue reallocation.
  std::vector<Envelope> pending_;
  std::vector<std::vector<Envelope>> inboxes_ = std::vector<std::vector<Envelope>>(n_);
  /// Global high-water mark of per-inbox messages received in a round.
  /// deliver() pre-reserves every inbox against it (with headroom), so after
  /// ramp-up a record-setting round almost never reallocates (DESIGN.md
  /// section 9).
  std::size_t inbox_high_water_ = 0;
  std::uint64_t sent_total_ = 0;
};

}  // namespace congos::sim
