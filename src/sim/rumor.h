// Rumors, as defined in Section 2 of the paper.
//
// A rumor is a triple <z, d, D>: payload data z, deadline duration d, and a
// destination set D subseteq [n]. Rumors are injected dynamically by the CRRI
// adversary; at most one rumor per process per round.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/types.h"
#include "wire/wire.h"

namespace congos::sim {

struct Rumor {
  /// Unique id; uid.source is the injecting ("source") process and uid.seq is
  /// the per-source sequence counter used in delivery confirmations.
  RumorUid uid;

  /// The datum z to be disseminated.
  std::vector<std::uint8_t> data;

  /// Deadline *duration* d: the rumor must reach its destinations no later
  /// than round injected_at + deadline.
  Round deadline = 0;

  /// Destination set D. May or may not include the source itself.
  DynamicBitset dest;

  /// Round the rumor was injected; set by the engine at injection time.
  Round injected_at = kNoRound;

  Round expires_at() const { return injected_at + deadline; }

  /// True while the deadline has not yet passed ("active" in the paper).
  bool active_at(Round t) const { return injected_at <= t && t <= expires_at(); }
};

/// Convenience factory for tests and examples.
Rumor make_rumor(ProcessId source, std::uint64_t seq, std::vector<std::uint8_t> data,
                 Round deadline, DynamicBitset dest);

/// v1 wire fields of a rumor (codec walk, see src/wire/wire.h).
template <class S, wire::SameBase<Rumor> R>
void wire_fields(S& s, R& r) {
  s.varint32(r.uid.source);
  s.varint(r.uid.seq);
  s.zigzag(r.deadline);
  s.zigzag(r.injected_at);
  s.bitset(r.dest);
  s.bytes(r.data);
}

/// Modeled (fixed-width) serialized size of a rumor: uid (12) + deadline (8)
/// + injected_at (8) + destination bitset + payload bytes. The old estimate
/// forgot injected_at, which rides the wire (receivers need it to evaluate
/// active_at); the codec cross-check in test_wire_size caught it.
inline std::uint64_t modeled_size(const Rumor& r) {
  return 12 + 8 + 8 + r.dest.byte_size() + r.data.size();
}

}  // namespace congos::sim
