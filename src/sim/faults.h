// Deterministic link-fault injection (DESIGN.md section 10).
//
// The paper assumes a synchronous *reliable* network (Section 2); this layer
// deliberately breaks that assumption so experiments can measure how the
// protocol stack degrades. A FaultConfig describes a per-envelope fault
// distribution - independent drop / duplication / bounded delay - plus a
// deterministic schedule of transient bidirectional partitions. The plan is
// a first-class adversary dimension: it is part of the scenario
// configuration, recorded into .repro files, and rewound by checkpoints.
//
// Determinism contract: all fault randomness comes from a dedicated Rng
// seeded by FaultConfig::seed, never from the engine RNG, so (a) a faults-off
// run is byte-identical to a run of a build without this layer, and (b)
// enabling faults perturbs only deliveries, not the protocol's own random
// choices. Partition membership is a pure hash of (seed, epoch, process) and
// consumes no RNG state at all.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace congos::sim {

/// Per-envelope link-fault model. All-defaults means "reliable network".
struct FaultConfig {
  /// Probability an envelope is silently lost.
  double drop_rate = 0.0;
  /// Probability a delivered envelope is additionally delivered a second
  /// time, 1..max(1, max_delay) rounds later.
  double dup_rate = 0.0;
  /// Probability an envelope is late: it arrives 1..max_delay rounds after
  /// the round it was sent in (reordering falls out of this - a delayed
  /// envelope is overtaken by everything sent meanwhile).
  double delay_rate = 0.0;
  /// Upper bound (inclusive) on the lateness of delayed/duplicated envelopes.
  Round max_delay = 1;
  /// Transient partitions: every `partition_period` rounds the processes are
  /// re-split into two sides by hash; for the first `partition_duration`
  /// rounds of each period, envelopes crossing the cut are lost in both
  /// directions. 0 disables partitions.
  Round partition_period = 0;
  Round partition_duration = 0;
  /// Seed of the dedicated fault Rng and of the partition-side hash.
  std::uint64_t seed = 0xfa071;

  bool partitions_enabled() const {
    return partition_period > 0 && partition_duration > 0;
  }
  bool enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || delay_rate > 0.0 ||
           partitions_enabled();
  }

  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

/// Parses the CLI fault spec: comma-separated `key:value` pairs, e.g.
/// `drop:0.05,delay:2,dup:0.01,partition:16/4,seed:7`.
///   drop:P        - drop_rate = P
///   dup:P         - dup_rate = P
///   delay:K       - max_delay = K rounds; sets delay_rate to 0.25 unless
///                   delay-rate is also given
///   delay-rate:P  - delay_rate = P
///   partition:A/B - partition_period = A, partition_duration = B
///   seed:S        - fault seed
/// Returns false and fills *error on a malformed spec.
bool parse_fault_spec(const std::string& spec, FaultConfig* out, std::string* error);

/// Canonical one-line rendering of a config, round-trippable through
/// parse_fault_spec. Returns "off" for a disabled config.
std::string describe(const FaultConfig& cfg);

/// Which side of the transient cut process p is on during epoch `epoch`
/// (= round / partition_period). Pure hash: no RNG state.
inline int partition_side(std::uint64_t seed, std::uint64_t epoch, ProcessId p) {
  std::uint64_t x = seed ^ (epoch * 0x9e3779b97f4a7c15ull) ^
                    ((static_cast<std::uint64_t>(p) + 1) * 0xbf58476d1ce4e5b9ull);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return static_cast<int>(x & 1);
}

/// True iff the transient partition is active in `round`.
inline bool partition_active(const FaultConfig& cfg, Round round) {
  if (!cfg.partitions_enabled() || round < 0) return false;
  return round % cfg.partition_period < cfg.partition_duration;
}

/// True iff an envelope from -> to crosses an active cut in `round`.
inline bool partition_cuts(const FaultConfig& cfg, Round round, ProcessId from,
                           ProcessId to) {
  if (!partition_active(cfg, round)) return false;
  const auto epoch = static_cast<std::uint64_t>(round / cfg.partition_period);
  return partition_side(cfg.seed, epoch, from) != partition_side(cfg.seed, epoch, to);
}

}  // namespace congos::sim
