// Per-round, per-service message accounting.
//
// The paper's efficiency metric (Definition 3) is the maximum number of
// point-to-point messages sent in any single round. MessageStats tracks that
// maximum, per service and overall, plus totals, so experiments can report
// both the headline metric and the per-service breakdown of Lemma 7.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/types.h"
#include "sim/message.h"

namespace congos::sim {

constexpr std::size_t kNumServiceKinds = 7;

/// What the link-fault layer did to an envelope (src/sim/faults.h). Counted
/// here so the tallies ride the existing stats checkpoint/rewind machinery.
enum class FaultKind : std::uint8_t {
  kDropped,      // lost to random per-envelope loss
  kDuplicated,   // an extra delayed copy was scheduled
  kDelayed,      // held back 1..max_delay rounds
  kPartitioned,  // lost crossing an active transient cut
};
constexpr std::size_t kNumFaultKinds = 4;

const char* to_string(FaultKind f);

class MessageStats {
 public:
  /// Record one sent message (counted even if later lost to a crash:
  /// Definition 3 counts messages *sent*). `bytes` is the actual serialized
  /// size under the wire codec (envelope frame included); `modeled_bytes` is
  /// the legacy fixed-width model's estimate for the same envelope, kept so
  /// experiments can report the modeled-vs-actual delta. All byte counters
  /// are std::uint64_t end-to-end — large-n sweeps overflow 32 bits.
  void note_sent(ServiceKind kind, std::uint64_t bytes = 0,
                 std::uint64_t modeled_bytes = 0) {
    current_[static_cast<std::size_t>(kind)] += 1;
    current_bytes_ += bytes;
    bytes_by_kind_[static_cast<std::size_t>(kind)] += bytes;
    total_modeled_bytes_ += modeled_bytes;
    modeled_bytes_by_kind_[static_cast<std::size_t>(kind)] += modeled_bytes;
  }

  /// Record one fault-layer event against the envelope's service.
  void note_fault(FaultKind f, ServiceKind kind) {
    faults_[static_cast<std::size_t>(f)][static_cast<std::size_t>(kind)] += 1;
  }

  /// Close the accounting for round `t`.
  void end_round(Round t);

  // -- queries ------------------------------------------------------------

  std::uint64_t total_sent() const { return total_all_; }
  std::uint64_t total_sent(ServiceKind kind) const {
    return totals_[static_cast<std::size_t>(kind)];
  }

  /// Maximum messages sent in any single round, across all services.
  std::uint64_t max_per_round() const { return max_all_; }
  std::uint64_t max_per_round(ServiceKind kind) const {
    return max_[static_cast<std::size_t>(kind)];
  }

  Round max_round() const { return max_round_; }
  std::uint64_t rounds_recorded() const { return rounds_; }

  double mean_per_round() const {
    return rounds_ == 0 ? 0.0 : static_cast<double>(total_all_) / static_cast<double>(rounds_);
  }

  /// Per-round totals, in round order (for percentile computations).
  const std::vector<std::uint64_t>& per_round_totals() const { return per_round_; }

  /// p-th percentile (0..100) of per-round totals over rounds >= start.
  /// EXPERIMENTS.md mandates steady-state measurement, so percentile queries
  /// take the same warm-up exclusion as max_from()/mean_from().
  std::uint64_t percentile_from(Round start, double p) const;
  /// p-th percentile (0..100) of per-round totals, whole run.
  std::uint64_t percentile(double p) const { return percentile_from(0, p); }

  /// Maximum per-round total over rounds >= start (warm-up exclusion).
  std::uint64_t max_from(Round start) const;
  /// Same, restricted to one service kind.
  std::uint64_t max_from(Round start, ServiceKind kind) const;
  /// Mean per-round total over rounds >= start.
  double mean_from(Round start) const;
  /// Total messages of one kind over rounds >= start.
  std::uint64_t total_from(Round start, ServiceKind kind) const;

  // -- link faults ------------------------------------------------------------

  std::uint64_t faults(FaultKind f) const {
    std::uint64_t total = 0;
    for (std::uint64_t c : faults_[static_cast<std::size_t>(f)]) total += c;
    return total;
  }
  std::uint64_t faults(FaultKind f, ServiceKind kind) const {
    return faults_[static_cast<std::size_t>(f)][static_cast<std::size_t>(kind)];
  }
  std::uint64_t fault_total() const {
    std::uint64_t total = 0;
    for (std::size_t f = 0; f < kNumFaultKinds; ++f) {
      total += faults(static_cast<FaultKind>(f));
    }
    return total;
  }

  // -- communication complexity (bytes) --------------------------------------

  std::uint64_t total_bytes() const { return total_bytes_; }
  /// Whole-run serialized bytes attributed to one service (the by-service
  /// split of total_bytes(); E15 reports the breakdown).
  std::uint64_t total_bytes(ServiceKind kind) const {
    return bytes_by_kind_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t max_bytes_per_round() const { return max_bytes_; }
  /// Maximum bytes in a round over rounds >= start.
  std::uint64_t max_bytes_from(Round start) const;
  /// Whole-run bytes under the legacy fixed-width size model (the number
  /// total_bytes() reported before the wire codec landed); the benches
  /// print the modeled-vs-actual delta.
  std::uint64_t total_modeled_bytes() const { return total_modeled_bytes_; }
  std::uint64_t total_modeled_bytes(ServiceKind kind) const {
    return modeled_bytes_by_kind_[static_cast<std::size_t>(kind)];
  }
  double mean_bytes_per_round() const {
    return rounds_ == 0 ? 0.0
                        : static_cast<double>(total_bytes_) /
                              static_cast<double>(rounds_);
  }

  void reset();

  /// Pre-size the per-round histories for `rounds` additional rounds so
  /// steady-state end_round() calls never reallocate (DESIGN.md section 9).
  void reserve_rounds(std::size_t rounds) {
    per_round_.reserve(per_round_.size() + rounds);
    per_round_by_kind_.reserve(per_round_by_kind_.size() + rounds);
    per_round_bytes_.reserve(per_round_bytes_.size() + rounds);
  }

 private:
  std::array<std::uint64_t, kNumServiceKinds> current_{};
  std::array<std::uint64_t, kNumServiceKinds> totals_{};
  std::array<std::uint64_t, kNumServiceKinds> max_{};
  std::uint64_t max_all_ = 0;
  std::uint64_t total_all_ = 0;
  Round max_round_ = kNoRound;
  std::uint64_t rounds_ = 0;
  std::vector<std::uint64_t> per_round_;
  std::vector<std::array<std::uint64_t, kNumServiceKinds>> per_round_by_kind_;
  std::uint64_t current_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t max_bytes_ = 0;
  std::array<std::uint64_t, kNumServiceKinds> bytes_by_kind_{};
  std::uint64_t total_modeled_bytes_ = 0;
  std::array<std::uint64_t, kNumServiceKinds> modeled_bytes_by_kind_{};
  std::vector<std::uint64_t> per_round_bytes_;

  // The byte accumulation path must never narrow: a 1M-process sweep sends
  // >2^32 bytes in well under a minute of simulated time.
  static_assert(std::is_same_v<decltype(current_bytes_), std::uint64_t>);
  static_assert(std::is_same_v<decltype(total_bytes_), std::uint64_t>);
  static_assert(std::is_same_v<decltype(total_modeled_bytes_), std::uint64_t>);
  static_assert(
      std::is_same_v<decltype(bytes_by_kind_)::value_type, std::uint64_t>);
  /// fault kind x service kind tallies (src/sim/faults.h). Value state like
  /// everything else here: copied into checkpoints and rewound with them.
  std::array<std::array<std::uint64_t, kNumServiceKinds>, kNumFaultKinds> faults_{};
};

}  // namespace congos::sim
