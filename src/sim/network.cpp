#include "sim/network.h"

#include "common/assert.h"
#include "wire/envelope.h"

namespace congos::sim {

const char* to_string(ServiceKind k) {
  switch (k) {
    case ServiceKind::kGroupGossip: return "group-gossip";
    case ServiceKind::kAllGossip: return "all-gossip";
    case ServiceKind::kProxy: return "proxy";
    case ServiceKind::kGroupDistribution: return "group-dist";
    case ServiceKind::kFallback: return "fallback";
    case ServiceKind::kBaseline: return "baseline";
    case ServiceKind::kOther: return "other";
  }
  return "?";
}

void Network::submit(Envelope e) {
  CONGOS_ASSERT_MSG(e.from < n_ && e.to < n_, "envelope endpoints out of range");
  if (stats_ != nullptr) {
    // Actual bytes: the exact v1 frame size encode_envelope() would emit
    // (header-only SizeSink walk, allocation-free). Modeled bytes: the
    // legacy fixed-width estimate, kept for the modeled-vs-actual audit.
    const std::uint64_t actual = wire::encoded_envelope_size(e, round_);
    const std::uint64_t modeled =
        kEnvelopeHeaderBytes + (e.body ? e.body->modeled_size() : 0);
    stats_->note_sent(e.tag.kind, actual, modeled);
  }
  ++sent_total_;
  pending_.push_back(std::move(e));
}

bool Network::apply_faults(const Envelope& e) {
  if (partition_cuts(faults_, round_, e.from, e.to)) {
    if (stats_ != nullptr) stats_->note_fault(FaultKind::kPartitioned, e.tag.kind);
    return false;
  }
  if (faults_.drop_rate > 0.0 && fault_rng_.chance(faults_.drop_rate)) {
    if (stats_ != nullptr) stats_->note_fault(FaultKind::kDropped, e.tag.kind);
    return false;
  }
  if (faults_.delay_rate > 0.0 && fault_rng_.chance(faults_.delay_rate)) {
    const auto span = static_cast<std::uint64_t>(std::max<Round>(faults_.max_delay, 1));
    const Round lateness = 1 + static_cast<Round>(fault_rng_.next_below(span));
    delayed_.push_back(DelayedEnvelope{e, round_ + lateness});
    if (stats_ != nullptr) stats_->note_fault(FaultKind::kDelayed, e.tag.kind);
    return false;
  }
  if (faults_.dup_rate > 0.0 && fault_rng_.chance(faults_.dup_rate)) {
    // The duplicate is a late copy: same body (shared), due 1..max_delay
    // rounds from now, on top of the on-time delivery below.
    const auto span = static_cast<std::uint64_t>(std::max<Round>(faults_.max_delay, 1));
    const Round lateness = 1 + static_cast<Round>(fault_rng_.next_below(span));
    delayed_.push_back(DelayedEnvelope{e, round_ + lateness});
    if (stats_ != nullptr) stats_->note_fault(FaultKind::kDuplicated, e.tag.kind);
  }
  return true;
}

void Network::release_delayed(const std::vector<PartialDelivery>& in_policy,
                              const DynamicBitset& in_filtered,
                              DeliveryObserver* observer) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < delayed_.size(); ++i) {
    DelayedEnvelope& d = delayed_[i];
    if (d.due > round_) {
      if (kept != i) delayed_[kept] = std::move(d);
      ++kept;
      continue;
    }
    Envelope& e = d.env;
    // The sender-side crash filter was already applied the round the
    // envelope entered the network; only the receiver's state at the
    // release round matters now. kRandom would need an engine-RNG draw,
    // which would shift the trace of every later round, so a delayed
    // envelope caught in any receive filter is simply lost - the fault
    // layer may only ever remove deliveries, never add engine randomness.
    if (in_filtered.test(e.to) && in_policy[e.to] != PartialDelivery::kDeliverAll) continue;
    if (observer != nullptr) observer->on_delivered(e);
    inboxes_[e.to].push_back(std::move(e));
  }
  delayed_.resize(kept);
}

void Network::deliver(const std::vector<PartialDelivery>& out_policy,
                      const DynamicBitset& out_filtered,
                      const std::vector<PartialDelivery>& in_policy,
                      const DynamicBitset& in_filtered, Rng& rng,
                      DeliveryObserver* observer) {
  // Keep a headroom margin above the global high-water mark. Per-round
  // inbox sizes are a binomial tail: records creep past the previous
  // maximum by one or two, and a record round would otherwise pay a
  // push_back reallocation. Keying on the *global* maximum (all inboxes
  // draw from the same distribution) makes the bound converge within a few
  // rounds instead of creeping per inbox, and the margin check plus
  // geometric growth keeps re-reservations O(log) over the whole run -
  // steady-state rounds stay allocation-free (tests/test_alloc.cpp pins
  // this).
  const std::size_t want = 2 * inbox_high_water_ + 16;
  for (std::size_t p = 0; p < n_; ++p) {
    if (inboxes_[p].capacity() < inbox_high_water_ + 8) inboxes_[p].reserve(want);
  }
  // Late envelopes come due at the start of the delivery phase, ahead of
  // anything submitted this round (they were sent in an earlier round).
  if (faults_enabled_ && !delayed_.empty()) {
    release_delayed(in_policy, in_filtered, observer);
  }
  for (auto& e : pending_) {
    bool keep = true;
    if (out_filtered.test(e.from)) {
      switch (out_policy[e.from]) {
        case PartialDelivery::kDeliverAll: break;
        case PartialDelivery::kDropAll: keep = false; break;
        case PartialDelivery::kRandom: keep = rng.chance(0.5); break;
      }
    }
    if (keep && in_filtered.test(e.to)) {
      switch (in_policy[e.to]) {
        case PartialDelivery::kDeliverAll: break;
        case PartialDelivery::kDropAll: keep = false; break;
        case PartialDelivery::kRandom: keep = rng.chance(0.5); break;
      }
    }
    if (!keep) continue;
    if (faults_enabled_ && !apply_faults(e)) continue;
    if (observer != nullptr) observer->on_delivered(e);
    inboxes_[e.to].push_back(std::move(e));
  }
  pending_.clear();  // keeps capacity: the buffer is reused next round
}

void Network::end_round() {
  for (std::size_t p = 0; p < n_; ++p) {
    auto& box = inboxes_[p];
    if (box.size() > inbox_high_water_) inbox_high_water_ = box.size();
    box.clear();
  }
  ++round_;
}

NetworkCheckpoint Network::checkpoint() const {
  NetworkCheckpoint cp;
  cp.sent_total = sent_total_;
  cp.inbox_high_water = inbox_high_water_;
  cp.round = round_;
  cp.delayed = delayed_;
  cp.fault_rng = fault_rng_;
  return cp;
}

void Network::restore(const NetworkCheckpoint& cp) {
  sent_total_ = cp.sent_total;
  inbox_high_water_ = cp.inbox_high_water;
  round_ = cp.round;
  delayed_ = cp.delayed;
  fault_rng_ = cp.fault_rng;
}

}  // namespace congos::sim
