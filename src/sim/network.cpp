#include "sim/network.h"

#include "common/assert.h"

namespace congos::sim {

const char* to_string(ServiceKind k) {
  switch (k) {
    case ServiceKind::kGroupGossip: return "group-gossip";
    case ServiceKind::kAllGossip: return "all-gossip";
    case ServiceKind::kProxy: return "proxy";
    case ServiceKind::kGroupDistribution: return "group-dist";
    case ServiceKind::kFallback: return "fallback";
    case ServiceKind::kBaseline: return "baseline";
    case ServiceKind::kOther: return "other";
  }
  return "?";
}

void Network::submit(Envelope e) {
  CONGOS_ASSERT_MSG(e.from < n_ && e.to < n_, "envelope endpoints out of range");
  if (stats_ != nullptr) {
    const std::size_t body = e.body ? e.body->wire_size() : 0;
    stats_->note_sent(e.tag.kind, kEnvelopeHeaderBytes + body);
  }
  ++sent_total_;
  pending_.push_back(std::move(e));
}

void Network::deliver(const std::vector<PartialDelivery>& out_policy,
                      const std::vector<bool>& out_filtered,
                      const std::vector<PartialDelivery>& in_policy,
                      const std::vector<bool>& in_filtered, Rng& rng,
                      DeliveryObserver* observer) {
  // Keep a headroom margin above the global high-water mark. Per-round
  // inbox sizes are a binomial tail: records creep past the previous
  // maximum by one or two, and a record round would otherwise pay a
  // push_back reallocation. Keying on the *global* maximum (all inboxes
  // draw from the same distribution) makes the bound converge within a few
  // rounds instead of creeping per inbox, and the margin check plus
  // geometric growth keeps re-reservations O(log) over the whole run -
  // steady-state rounds stay allocation-free (tests/test_alloc.cpp pins
  // this).
  const std::size_t want = 2 * inbox_high_water_ + 16;
  for (std::size_t p = 0; p < n_; ++p) {
    if (inboxes_[p].capacity() < inbox_high_water_ + 8) inboxes_[p].reserve(want);
  }
  for (auto& e : pending_) {
    bool keep = true;
    if (out_filtered[e.from]) {
      switch (out_policy[e.from]) {
        case PartialDelivery::kDeliverAll: break;
        case PartialDelivery::kDropAll: keep = false; break;
        case PartialDelivery::kRandom: keep = rng.chance(0.5); break;
      }
    }
    if (keep && in_filtered[e.to]) {
      switch (in_policy[e.to]) {
        case PartialDelivery::kDeliverAll: break;
        case PartialDelivery::kDropAll: keep = false; break;
        case PartialDelivery::kRandom: keep = rng.chance(0.5); break;
      }
    }
    if (!keep) continue;
    if (observer != nullptr) observer->on_delivered(e);
    inboxes_[e.to].push_back(std::move(e));
  }
  pending_.clear();  // keeps capacity: the buffer is reused next round
}

void Network::end_round() {
  for (std::size_t p = 0; p < n_; ++p) {
    auto& box = inboxes_[p];
    if (box.size() > inbox_high_water_) inbox_high_water_ = box.size();
    box.clear();
  }
}

}  // namespace congos::sim
