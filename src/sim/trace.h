// TraceLog: a bounded execution event log for debugging and post-mortems.
//
// Registered as an ExecutionObserver, it keeps the most recent events
// (crashes, restarts, injections, and envelope deliveries tagged with the
// service that sent them) in a ring buffer plus a per-round delivery
// counter, and renders a human-readable tail on demand. Used by the CLI
// (--trace), embedded in .repro failure artifacts (src/replay), and
// available to tests; overhead is O(1) per event.
#pragma once

#include <deque>
#include <iosfwd>
#include <string>

#include "sim/engine.h"

namespace congos::sim {

class TraceLog final : public ExecutionObserver {
 public:
  struct Options {
    /// Maximum retained events (older ones are evicted).
    std::size_t capacity = 4096;
    /// Record one kEnvelopeDelivered event per delivery (with its
    /// ServiceKind) in the ring buffer. High-volume: on a busy round these
    /// evict older lifecycle events, which is exactly what a post-mortem of
    /// the failing round wants; disable for long-lived lifecycle-only logs.
    bool record_deliveries = true;
  };

  TraceLog() = default;
  explicit TraceLog(Options opt) : opt_(opt) {}

  // -- ExecutionObserver ------------------------------------------------------
  void on_crash(ProcessId p, Round now) override;
  void on_restart(ProcessId p, Round now) override;
  void on_inject(const Rumor& rumor, Round now) override;
  void on_envelope_delivered(const Envelope& e, Round now) override;
  void on_round_end(Round now) override;

  /// Renders the last `last_n` retained events plus the per-round delivery
  /// counts of the most recent rounds.
  void dump(std::ostream& os, std::size_t last_n = 100) const;

  /// dump() into a string (the form embedded in .repro artifacts).
  std::string dump_string(std::size_t last_n = 100) const;

  std::size_t event_count() const { return events_.size(); }
  std::uint64_t total_events_seen() const { return seen_; }

 private:
  enum class Kind : std::uint8_t { kCrash, kRestart, kInject, kEnvelopeDelivered };
  struct Event {
    Round when = 0;
    Kind kind = Kind::kCrash;
    ProcessId process = kNoProcess;  // victim / injection target / receiver
    RumorUid rumor;       // kInject only
    std::size_t dest = 0; // kInject only: |D|
    // kEnvelopeDelivered only: sending service and sender.
    ServiceKind service = ServiceKind::kOther;
    ProcessId from = kNoProcess;
  };

  void push(Event e);

  Options opt_{};
  std::deque<Event> events_;
  std::uint64_t seen_ = 0;
  // most recent rounds' delivered-message counts (bounded window)
  std::deque<std::pair<Round, std::uint64_t>> round_deliveries_;
  std::uint64_t current_round_deliveries_ = 0;
};

}  // namespace congos::sim
