// DeliveryMux: makes one shared DeliveryListener safe under sharded round
// execution (DESIGN.md section 12).
//
// Protocol processes report application-level rumor deliveries to a single
// listener (the QoD auditor). With the send/receive phases running on worker
// threads, those calls would race on the auditor's state and — worse — reach
// it in a thread-interleaving-dependent order. The mux sits between the
// processes and the real listener: during a parallel phase each call is
// appended to the calling process's *own* slot (a process only ever reports
// deliveries at itself, so slots are touched by exactly one worker), and
// after the phase joins, the engine flushes every slot in ascending process
// id — the exact order the serial loop would have produced. Outside parallel
// phases (adversary hooks, serial engines) calls pass straight through.
//
// Buffers keep their capacity across rounds, so a warmed-up mux adds no
// allocation to the steady-state round (payload bytes are copied into a
// per-slot arena: the span handed to on_rumor_delivered is only valid for
// the duration of the call).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "sim/process.h"

namespace congos::sim {

class DeliveryMux final : public DeliveryListener {
 public:
  /// `downstream` may be nullptr (deliveries are then dropped, matching a
  /// process constructed without a listener). `n` is the process count.
  DeliveryMux(DeliveryListener* downstream, std::size_t n)
      : downstream_(downstream), slots_(n) {}

  void on_rumor_delivered(ProcessId at, const RumorUid& uid, Round when,
                          std::span<const std::uint8_t> data) override {
    if (!buffering_) {
      if (downstream_ != nullptr) {
        downstream_->on_rumor_delivered(at, uid, when, data);
      }
      return;
    }
    CONGOS_ASSERT_MSG(at < slots_.size(), "delivery at unknown process");
    Slot& s = slots_[at];
    s.records.push_back(Record{uid, when, s.bytes.size(), data.size()});
    s.bytes.insert(s.bytes.end(), data.begin(), data.end());
    buffered_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Engine hooks. begin_buffering() is called on the driving thread before
  /// a parallel phase is dispatched; flush() after it joins. The fork-join
  /// barrier of ThreadPool::run_shards orders the mode flag and the slot
  /// contents between the driving thread and the workers.
  void begin_buffering() { buffering_ = true; }

  void flush() {
    buffering_ = false;
    if (buffered_.load(std::memory_order_relaxed) == 0) return;
    for (ProcessId p = 0; p < slots_.size(); ++p) {
      Slot& s = slots_[p];
      if (s.records.empty()) continue;
      for (const Record& r : s.records) {
        if (downstream_ != nullptr) {
          downstream_->on_rumor_delivered(
              p, r.uid, r.when,
              std::span<const std::uint8_t>(s.bytes.data() + r.offset, r.len));
        }
      }
      s.records.clear();  // keeps capacity
      s.bytes.clear();
    }
    buffered_.store(0, std::memory_order_relaxed);
  }

  DeliveryListener* downstream() const { return downstream_; }

 private:
  struct Record {
    RumorUid uid;
    Round when = 0;
    std::size_t offset = 0;
    std::size_t len = 0;
  };
  struct Slot {
    std::vector<Record> records;
    std::vector<std::uint8_t> bytes;
  };

  DeliveryListener* downstream_;
  /// Parallel-phase mode flag. Plain bool: every transition happens on the
  /// driving thread across a run_shards() fork-join barrier, which provides
  /// the happens-before edge to and from the workers.
  bool buffering_ = false;
  /// Total buffered records, so an empty flush skips the slot scan.
  std::atomic<std::size_t> buffered_{0};
  std::vector<Slot> slots_;
};

}  // namespace congos::sim
