#include "sim/faults.h"

#include <cstdlib>
#include <sstream>

namespace congos::sim {

namespace {

bool parse_double(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 0);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool parse_fault_spec(const std::string& spec, FaultConfig* out, std::string* error) {
  FaultConfig cfg;
  bool delay_rate_given = false;
  bool delay_given = false;

  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      return fail(error, "fault spec item '" + item + "' is not key:value");
    }
    const std::string key = item.substr(0, colon);
    const std::string val = item.substr(colon + 1);
    if (key == "drop") {
      if (!parse_double(val, &cfg.drop_rate) || cfg.drop_rate < 0.0 ||
          cfg.drop_rate > 1.0) {
        return fail(error, "drop rate must be a probability, got '" + val + "'");
      }
    } else if (key == "dup") {
      if (!parse_double(val, &cfg.dup_rate) || cfg.dup_rate < 0.0 ||
          cfg.dup_rate > 1.0) {
        return fail(error, "dup rate must be a probability, got '" + val + "'");
      }
    } else if (key == "delay") {
      std::int64_t k = 0;
      if (!parse_i64(val, &k) || k < 1) {
        return fail(error, "delay must be a round count >= 1, got '" + val + "'");
      }
      cfg.max_delay = k;
      delay_given = true;
    } else if (key == "delay-rate") {
      if (!parse_double(val, &cfg.delay_rate) || cfg.delay_rate < 0.0 ||
          cfg.delay_rate > 1.0) {
        return fail(error, "delay-rate must be a probability, got '" + val + "'");
      }
      delay_rate_given = true;
    } else if (key == "partition") {
      const auto slash = val.find('/');
      std::int64_t period = 0;
      std::int64_t duration = 0;
      if (slash == std::string::npos || !parse_i64(val.substr(0, slash), &period) ||
          !parse_i64(val.substr(slash + 1), &duration) || period < 1 ||
          duration < 1 || duration > period) {
        return fail(error,
                    "partition wants PERIOD/DURATION with 1 <= DURATION <= PERIOD, "
                    "got '" + val + "'");
      }
      cfg.partition_period = period;
      cfg.partition_duration = duration;
    } else if (key == "seed") {
      if (!parse_u64(val, &cfg.seed)) {
        return fail(error, "seed must be an integer, got '" + val + "'");
      }
    } else {
      return fail(error, "unknown fault key '" + key + "'");
    }
  }

  // `delay:K` alone should mean "some messages are up to K rounds late".
  if (delay_given && !delay_rate_given) cfg.delay_rate = 0.25;

  *out = cfg;
  return true;
}

std::string describe(const FaultConfig& cfg) {
  if (!cfg.enabled()) return "off";
  std::ostringstream os;
  const char* sep = "";
  if (cfg.drop_rate > 0.0) {
    os << sep << "drop:" << cfg.drop_rate;
    sep = ",";
  }
  if (cfg.dup_rate > 0.0) {
    os << sep << "dup:" << cfg.dup_rate;
    sep = ",";
  }
  // max_delay also bounds duplicate lateness, so it matters whenever either
  // knob is on; the explicit delay-rate keeps the string parse round-trippable
  // (a bare `delay:K` implies delay-rate 0.25).
  if (cfg.delay_rate > 0.0 || (cfg.dup_rate > 0.0 && cfg.max_delay > 1)) {
    os << sep << "delay:" << cfg.max_delay << ",delay-rate:" << cfg.delay_rate;
    sep = ",";
  }
  if (cfg.partitions_enabled()) {
    os << sep << "partition:" << cfg.partition_period << "/" << cfg.partition_duration;
    sep = ",";
  }
  os << sep << "seed:" << cfg.seed;
  return os.str();
}

}  // namespace congos::sim
