#include "sim/engine.h"

#include <algorithm>

#include "common/assert.h"
#include "common/thread_pool.h"
#include "sim/delivery_mux.h"

namespace congos::sim {

class Engine::NetworkSender final : public Sender {
 public:
  NetworkSender(Network& net, ProcessId from) : net_(net), from_(from) {}
  void send(Envelope e) override {
    CONGOS_ASSERT_MSG(e.from == from_, "process spoofed sender id");
    net_.submit(std::move(e));
  }

 private:
  Network& net_;
  ProcessId from_;
};

/// Sender used by shard workers: envelopes land in the shard's private
/// buffer (no shared state touched) and are merged into the network by the
/// driving thread, shard by shard in ascending order — the exact order the
/// serial loop would have submitted them.
class Engine::ShardSender final : public Sender {
 public:
  ShardSender(std::vector<Envelope>& out, ProcessId from) : out_(out), from_(from) {}
  void send(Envelope e) override {
    CONGOS_ASSERT_MSG(e.from == from_, "process spoofed sender id");
    out_.push_back(std::move(e));
  }

 private:
  std::vector<Envelope>& out_;
  ProcessId from_;
};

/// Fans delivered envelopes out to the registered execution observers.
/// Stack-allocated per step; replaces a per-round std::function closure.
class Engine::DeliveryFanout final : public DeliveryObserver {
 public:
  explicit DeliveryFanout(Engine& engine) : engine_(engine) {}
  void on_delivered(const Envelope& e) override {
    for (auto* obs : engine_.observers_) obs->on_envelope_delivered(e, engine_.now_);
  }

 private:
  Engine& engine_;
};

/// One send or receive phase as a ShardTask: shard i covers the i-th fixed
/// contiguous chunk of the alive-id list. The partition depends only on
/// (alive set, shard count), never on which thread runs what.
class Engine::PhaseTask final : public ShardTask {
 public:
  PhaseTask(Engine& engine, bool receive) : engine_(engine), receive_(receive) {}

  void run_shard(std::size_t shard) override {
    const std::vector<ProcessId>& ids = engine_.alive_ids_;
    const std::size_t m = ids.size();
    const std::size_t lo = shard * m / engine_.shard_count_;
    const std::size_t hi = (shard + 1) * m / engine_.shard_count_;
    if (receive_) {
      for (std::size_t i = lo; i < hi; ++i) {
        const ProcessId p = ids[i];
        engine_.processes_[p]->receive_phase(engine_.now_, engine_.network_.inbox(p));
      }
    } else {
      std::vector<Envelope>& out = engine_.shard_buffers_[shard].out;
      for (std::size_t i = lo; i < hi; ++i) {
        const ProcessId p = ids[i];
        ShardSender sender(out, p);
        engine_.processes_[p]->send_phase(engine_.now_, sender);
      }
    }
  }

 private:
  Engine& engine_;
  const bool receive_;
};

Engine::Engine(std::vector<std::unique_ptr<Process>> processes, std::uint64_t seed)
    : processes_(std::move(processes)),
      rng_(seed),
      network_(processes_.size(), &stats_),
      alive_(processes_.size(), true),
      alive_count_(processes_.size()),
      alive_since_(processes_.size(), 0),
      lifecycle_event_this_round_(processes_.size()),
      injected_this_round_(processes_.size()),
      out_policy_(processes_.size(), PartialDelivery::kDeliverAll),
      out_filtered_(processes_.size()),
      in_policy_(processes_.size(), PartialDelivery::kDeliverAll),
      in_filtered_(processes_.size()),
      sent_this_round_(processes_.size()) {
  alive_ids_.reserve(processes_.size());
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    CONGOS_ASSERT_MSG(processes_[p] != nullptr, "null process");
    CONGOS_ASSERT_MSG(processes_[p]->id() == p, "process ids must be dense 0..n-1");
    alive_ids_.push_back(static_cast<ProcessId>(p));
  }
}

void Engine::set_parallelism(ThreadPool* pool, std::size_t shards, DeliveryMux* mux) {
  CONGOS_ASSERT_MSG(phase_ == Phase::kIdle,
                    "parallelism reconfiguration only at round boundaries");
  pool_ = pool;
  if (pool == nullptr) {
    shard_count_ = 1;
    mux_ = nullptr;
    shard_buffers_.clear();
    return;
  }
  shard_count_ = std::max<std::size_t>(shards, 1);
  mux_ = mux;
  shard_buffers_.resize(shard_count_);
}

void Engine::crash(ProcessId p, PartialDelivery policy) {
  CONGOS_ASSERT(p < n());
  CONGOS_ASSERT_MSG(alive_.test(p), "crash of an already-crashed process");
  CONGOS_ASSERT_MSG(!lifecycle_event_this_round_.test(p),
                    "at most one crash/restart per process per round");
  lifecycle_event_this_round_.set(p);
  lifecycle_touched_ = true;
  alive_.reset(p);
  --alive_count_;
  alive_ids_.erase(std::lower_bound(alive_ids_.begin(), alive_ids_.end(), p));
  if (phase_ == Phase::kAfterSends && sent_this_round_.test(p)) {
    // Crash after sending: the adversary controls which in-flight messages
    // survive.
    out_filtered_.set(p);
    out_touched_ = true;
    out_policy_[p] = policy;
  }
  // In any phase: the process no longer receives this round. kDropAll also
  // holds for every later round p stays dead (begin_round() relies on it).
  in_filtered_.set(p);
  in_touched_ = true;
  in_policy_[p] = PartialDelivery::kDropAll;
  notify_crash(p, policy);
}

void Engine::restart(ProcessId p, PartialDelivery policy) {
  CONGOS_ASSERT(p < n());
  CONGOS_ASSERT_MSG(!alive_.test(p), "restart of an alive process");
  CONGOS_ASSERT_MSG(!lifecycle_event_this_round_.test(p),
                    "at most one crash/restart per process per round");
  lifecycle_event_this_round_.set(p);
  lifecycle_touched_ = true;
  alive_.set(p);
  ++alive_count_;
  alive_ids_.insert(std::lower_bound(alive_ids_.begin(), alive_ids_.end(), p), p);
  alive_since_[p] = now_;
  // Some of the messages sent to p this round may be lost (Section 2).
  in_filtered_.set(p);
  in_touched_ = true;
  in_policy_[p] = policy;
  processes_[p]->on_restart(now_);
  notify_restart(p, policy);
}

void Engine::inject(ProcessId p, Rumor rumor) {
  CONGOS_ASSERT(p < n());
  CONGOS_ASSERT_MSG(alive_.test(p), "injection at a crashed process");
  CONGOS_ASSERT_MSG(!injected_this_round_.test(p),
                    "at most one rumor injected per process per round");
  CONGOS_ASSERT_MSG(rumor.uid.source == p, "rumor source must match inject target");
  injected_this_round_.set(p);
  injected_touched_ = true;
  rumor.injected_at = now_;
  for (auto* obs : observers_) obs->on_inject(rumor, now_);
  processes_[p]->inject(rumor);
}

void Engine::notify_crash(ProcessId p, PartialDelivery policy) {
  for (auto* obs : observers_) obs->on_crash(p, now_, policy);
}

void Engine::notify_restart(ProcessId p, PartialDelivery policy) {
  for (auto* obs : observers_) obs->on_restart(p, now_, policy);
}

EngineCheckpoint Engine::save_checkpoint() const {
  CONGOS_ASSERT_MSG(phase_ == Phase::kIdle, "checkpoint only at round boundaries");
  EngineCheckpoint cp;
  cp.now = now_;
  cp.started = started_;
  cp.rng = rng_;
  cp.stats = stats_;
  cp.network = network_.checkpoint();
  cp.alive = alive_;
  cp.alive_count = alive_count_;
  cp.alive_since = alive_since_;
  cp.processes.reserve(processes_.size());
  for (const auto& p : processes_) {
    cp.processes.push_back(p->snapshot());
    if (cp.processes.back() == nullptr) cp.complete = false;
  }
  cp.had_adversary = adversary_ != nullptr;
  if (adversary_ != nullptr) {
    cp.adversary = adversary_->snapshot();
    if (cp.adversary == nullptr) cp.complete = false;
  }
  return cp;
}

bool Engine::restore_checkpoint(const EngineCheckpoint& cp) {
  CONGOS_ASSERT_MSG(phase_ == Phase::kIdle, "restore only at round boundaries");
  if (!cp.complete || cp.processes.size() != processes_.size()) return false;
  if (cp.had_adversary != (adversary_ != nullptr)) return false;
  // Restore process state first: a type mismatch aborts before the engine's
  // own bookkeeping is touched.
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    if (!processes_[p]->restore(*cp.processes[p], cp.now)) return false;
  }
  if (adversary_ != nullptr && !adversary_->restore(*cp.adversary)) return false;
  now_ = cp.now;
  started_ = cp.started;
  rng_ = cp.rng;
  stats_ = cp.stats;
  network_.restore(cp.network);
  alive_ = cp.alive;
  alive_count_ = cp.alive_count;
  alive_since_ = cp.alive_since;
  alive_ids_.clear();
  alive_.for_each([this](std::uint32_t p) { alive_ids_.push_back(p); });
  // Re-establish the dead-process policy invariant begin_round() relies on:
  // the per-round filter arrays are not part of a boundary snapshot, and the
  // pre-restore timeline may have left a stale restart policy behind.
  alive_.for_each_zero(
      [this](std::uint32_t p) { in_policy_[p] = PartialDelivery::kDropAll; });
  // Flag bitsets may hold arbitrary pre-restore state: force full clears.
  lifecycle_touched_ = injected_touched_ = out_touched_ = in_touched_ = true;
  return true;
}

void Engine::begin_round() {
  // Word-granular clears, each skipped when the previous round never set the
  // flag: the faults-off steady state takes none of these branches.
  if (lifecycle_touched_) {
    lifecycle_event_this_round_.reset_all();
    lifecycle_touched_ = false;
  }
  if (injected_touched_) {
    injected_this_round_.reset_all();
    injected_touched_ = false;
  }
  if (out_touched_) {
    out_filtered_.reset_all();
    out_touched_ = false;
  }
  if (in_touched_) {
    in_filtered_.reset_all();
    in_touched_ = false;
  }
  // Dead processes never receive. Their in_policy_ slots already hold
  // kDropAll (crash() set them; restore_checkpoint() re-derives them), so
  // only the filter bits need marking — one word-wise or_complement.
  if (alive_count_ != n()) {
    in_filtered_.or_complement(alive_);
    in_touched_ = true;
  }
}

void Engine::run_phase_sharded(bool receive) {
  // Processes report deliveries into per-process mux slots during the
  // parallel phase; flushing after the join re-serializes them in ascending
  // process id — the serial loop's order.
  if (mux_ != nullptr) mux_->begin_buffering();
  PhaseTask task(*this, receive);
  pool_->run_shards(task, shard_count_);
  if (!receive) {
    // Fixed merge order: shard 0's envelopes first. Reproduces the serial
    // submission order, so delivery (and traces) cannot tell the difference.
    for (ShardBuffer& buf : shard_buffers_) {
      for (Envelope& e : buf.out) network_.submit(std::move(e));
      buf.out.clear();  // keeps capacity: no allocation next round
    }
  }
  if (mux_ != nullptr) mux_->flush();
}

void Engine::step() {
  if (!started_) {
    started_ = true;
    for (auto& p : processes_) p->on_start(now_);
  }

  begin_round();

  phase_ = Phase::kRoundStart;
  if (adversary_ != nullptr) adversary_->at_round_start(*this);

  phase_ = Phase::kSending;
  // Exactly the processes alive now participate in the send phase; crash()
  // consults this when the adversary strikes in kAfterSends.
  sent_this_round_ = alive_;
  if (use_shards()) {
    run_phase_sharded(/*receive=*/false);
  } else {
    for (const ProcessId p : alive_ids_) {
      NetworkSender sender(network_, p);
      processes_[p]->send_phase(now_, sender);
    }
  }

  phase_ = Phase::kAfterSends;
  if (adversary_ != nullptr) adversary_->after_sends(*this);

  phase_ = Phase::kDelivering;
  DeliveryFanout fanout(*this);
  network_.deliver(out_policy_, out_filtered_, in_policy_, in_filtered_, rng_,
                   observers_.empty() ? nullptr : &fanout);

  phase_ = Phase::kReceiving;
  // after_sends may have crashed processes: alive_ids_ is already current.
  if (use_shards()) {
    run_phase_sharded(/*receive=*/true);
  } else {
    for (const ProcessId p : alive_ids_) {
      processes_[p]->receive_phase(now_, network_.inbox(p));
    }
  }

  phase_ = Phase::kRoundEnd;
  if (adversary_ != nullptr) adversary_->at_round_end(*this);

  network_.end_round();
  stats_.end_round(now_);
  for (auto* obs : observers_) obs->on_round_end(now_);

  phase_ = Phase::kIdle;
  ++now_;
}

void Engine::run(Round rounds) {
  stats_.reserve_rounds(static_cast<std::size_t>(rounds));
  for (Round i = 0; i < rounds; ++i) step();
}

}  // namespace congos::sim
