#include "sim/engine.h"

#include "common/assert.h"

namespace congos::sim {

class Engine::NetworkSender final : public Sender {
 public:
  NetworkSender(Network& net, ProcessId from) : net_(net), from_(from) {}
  void send(Envelope e) override {
    CONGOS_ASSERT_MSG(e.from == from_, "process spoofed sender id");
    net_.submit(std::move(e));
  }

 private:
  Network& net_;
  ProcessId from_;
};

/// Fans delivered envelopes out to the registered execution observers.
/// Stack-allocated per step; replaces a per-round std::function closure.
class Engine::DeliveryFanout final : public DeliveryObserver {
 public:
  explicit DeliveryFanout(Engine& engine) : engine_(engine) {}
  void on_delivered(const Envelope& e) override {
    for (auto* obs : engine_.observers_) obs->on_envelope_delivered(e, engine_.now_);
  }

 private:
  Engine& engine_;
};

Engine::Engine(std::vector<std::unique_ptr<Process>> processes, std::uint64_t seed)
    : processes_(std::move(processes)),
      rng_(seed),
      network_(processes_.size(), &stats_),
      alive_(processes_.size(), true),
      alive_count_(processes_.size()),
      alive_since_(processes_.size(), 0),
      lifecycle_event_this_round_(processes_.size(), false),
      injected_this_round_(processes_.size(), false),
      out_policy_(processes_.size(), PartialDelivery::kDeliverAll),
      out_filtered_(processes_.size(), false),
      in_policy_(processes_.size(), PartialDelivery::kDeliverAll),
      in_filtered_(processes_.size(), false),
      sent_this_round_(processes_.size(), false) {
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    CONGOS_ASSERT_MSG(processes_[p] != nullptr, "null process");
    CONGOS_ASSERT_MSG(processes_[p]->id() == p, "process ids must be dense 0..n-1");
  }
}

void Engine::crash(ProcessId p, PartialDelivery policy) {
  CONGOS_ASSERT(p < n());
  CONGOS_ASSERT_MSG(alive_[p], "crash of an already-crashed process");
  CONGOS_ASSERT_MSG(!lifecycle_event_this_round_[p],
                    "at most one crash/restart per process per round");
  lifecycle_event_this_round_[p] = true;
  alive_[p] = false;
  --alive_count_;
  alive_ids_dirty_ = true;
  if (phase_ == Phase::kAfterSends && sent_this_round_[p]) {
    // Crash after sending: the adversary controls which in-flight messages
    // survive.
    out_filtered_[p] = true;
    out_policy_[p] = policy;
  }
  // In any phase: the process no longer receives this round.
  in_filtered_[p] = true;
  in_policy_[p] = PartialDelivery::kDropAll;
  notify_crash(p, policy);
}

void Engine::restart(ProcessId p, PartialDelivery policy) {
  CONGOS_ASSERT(p < n());
  CONGOS_ASSERT_MSG(!alive_[p], "restart of an alive process");
  CONGOS_ASSERT_MSG(!lifecycle_event_this_round_[p],
                    "at most one crash/restart per process per round");
  lifecycle_event_this_round_[p] = true;
  alive_[p] = true;
  ++alive_count_;
  alive_ids_dirty_ = true;
  alive_since_[p] = now_;
  // Some of the messages sent to p this round may be lost (Section 2).
  in_filtered_[p] = true;
  in_policy_[p] = policy;
  processes_[p]->on_restart(now_);
  notify_restart(p, policy);
}

void Engine::inject(ProcessId p, Rumor rumor) {
  CONGOS_ASSERT(p < n());
  CONGOS_ASSERT_MSG(alive_[p], "injection at a crashed process");
  CONGOS_ASSERT_MSG(!injected_this_round_[p],
                    "at most one rumor injected per process per round");
  CONGOS_ASSERT_MSG(rumor.uid.source == p, "rumor source must match inject target");
  injected_this_round_[p] = true;
  rumor.injected_at = now_;
  for (auto* obs : observers_) obs->on_inject(rumor, now_);
  processes_[p]->inject(rumor);
}

void Engine::notify_crash(ProcessId p, PartialDelivery policy) {
  for (auto* obs : observers_) obs->on_crash(p, now_, policy);
}

void Engine::notify_restart(ProcessId p, PartialDelivery policy) {
  for (auto* obs : observers_) obs->on_restart(p, now_, policy);
}

EngineCheckpoint Engine::save_checkpoint() const {
  CONGOS_ASSERT_MSG(phase_ == Phase::kIdle, "checkpoint only at round boundaries");
  EngineCheckpoint cp;
  cp.now = now_;
  cp.started = started_;
  cp.rng = rng_;
  cp.stats = stats_;
  cp.network = network_.checkpoint();
  cp.alive = alive_;
  cp.alive_count = alive_count_;
  cp.alive_since = alive_since_;
  cp.processes.reserve(processes_.size());
  for (const auto& p : processes_) {
    cp.processes.push_back(p->snapshot());
    if (cp.processes.back() == nullptr) cp.complete = false;
  }
  cp.had_adversary = adversary_ != nullptr;
  if (adversary_ != nullptr) {
    cp.adversary = adversary_->snapshot();
    if (cp.adversary == nullptr) cp.complete = false;
  }
  return cp;
}

bool Engine::restore_checkpoint(const EngineCheckpoint& cp) {
  CONGOS_ASSERT_MSG(phase_ == Phase::kIdle, "restore only at round boundaries");
  if (!cp.complete || cp.processes.size() != processes_.size()) return false;
  if (cp.had_adversary != (adversary_ != nullptr)) return false;
  // Restore process state first: a type mismatch aborts before the engine's
  // own bookkeeping is touched.
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    if (!processes_[p]->restore(*cp.processes[p], cp.now)) return false;
  }
  if (adversary_ != nullptr && !adversary_->restore(*cp.adversary)) return false;
  now_ = cp.now;
  started_ = cp.started;
  rng_ = cp.rng;
  stats_ = cp.stats;
  network_.restore(cp.network);
  alive_ = cp.alive;
  alive_count_ = cp.alive_count;
  alive_ids_dirty_ = true;
  alive_since_ = cp.alive_since;
  return true;
}

void Engine::begin_round() {
  std::fill(lifecycle_event_this_round_.begin(), lifecycle_event_this_round_.end(), false);
  std::fill(injected_this_round_.begin(), injected_this_round_.end(), false);
  std::fill(out_filtered_.begin(), out_filtered_.end(), false);
  std::fill(in_filtered_.begin(), in_filtered_.end(), false);
  std::fill(sent_this_round_.begin(), sent_this_round_.end(), false);
  // Dead processes never receive. With everyone alive (the common case)
  // there is nothing to mark.
  if (alive_count_ == n()) return;
  for (std::size_t p = 0; p < n(); ++p) {
    if (!alive_[p]) {
      in_filtered_[p] = true;
      in_policy_[p] = PartialDelivery::kDropAll;
    }
  }
}

const std::vector<ProcessId>& Engine::alive_ids() {
  if (alive_ids_dirty_) {
    alive_ids_.clear();
    alive_ids_.reserve(alive_count_);
    for (std::size_t p = 0; p < n(); ++p) {
      if (alive_[p]) alive_ids_.push_back(static_cast<ProcessId>(p));
    }
    alive_ids_dirty_ = false;
  }
  return alive_ids_;
}

void Engine::step() {
  if (!started_) {
    started_ = true;
    for (auto& p : processes_) p->on_start(now_);
  }

  begin_round();

  phase_ = Phase::kRoundStart;
  if (adversary_ != nullptr) adversary_->at_round_start(*this);

  // Processes crashed in at_round_start must not receive; refresh the filter
  // (crash() already set it, but a process dead before this round is covered
  // by begin_round()).

  phase_ = Phase::kSending;
  for (const ProcessId p : alive_ids()) {
    sent_this_round_[p] = true;
    NetworkSender sender(network_, p);
    processes_[p]->send_phase(now_, sender);
  }

  phase_ = Phase::kAfterSends;
  if (adversary_ != nullptr) adversary_->after_sends(*this);

  phase_ = Phase::kDelivering;
  DeliveryFanout fanout(*this);
  network_.deliver(out_policy_, out_filtered_, in_policy_, in_filtered_, rng_,
                   observers_.empty() ? nullptr : &fanout);

  phase_ = Phase::kReceiving;
  // after_sends may have crashed processes: re-query the alive list.
  for (const ProcessId p : alive_ids()) {
    processes_[p]->receive_phase(now_, network_.inbox(p));
  }

  phase_ = Phase::kRoundEnd;
  if (adversary_ != nullptr) adversary_->at_round_end(*this);

  network_.end_round();
  stats_.end_round(now_);
  for (auto* obs : observers_) obs->on_round_end(now_);

  phase_ = Phase::kIdle;
  ++now_;
}

void Engine::run(Round rounds) {
  stats_.reserve_rounds(static_cast<std::size_t>(rounds));
  for (Round i = 0; i < rounds; ++i) step();
}

}  // namespace congos::sim
