#include "sim/trace.h"

#include <ostream>
#include <sstream>

namespace congos::sim {

void TraceLog::push(Event e) {
  ++seen_;
  events_.push_back(e);
  while (events_.size() > opt_.capacity) events_.pop_front();
}

void TraceLog::on_crash(ProcessId p, Round now) {
  push(Event{now, Kind::kCrash, p, {}, 0});
}

void TraceLog::on_restart(ProcessId p, Round now) {
  push(Event{now, Kind::kRestart, p, {}, 0});
}

void TraceLog::on_inject(const Rumor& rumor, Round now) {
  push(Event{now, Kind::kInject, rumor.uid.source, rumor.uid, rumor.dest.count()});
}

void TraceLog::on_envelope_delivered(const Envelope& e, Round now) {
  ++current_round_deliveries_;
  if (opt_.record_deliveries) {
    Event ev{now, Kind::kEnvelopeDelivered, e.to, {}, 0, e.tag.kind, e.from};
    push(ev);
  }
}

void TraceLog::on_round_end(Round now) {
  round_deliveries_.emplace_back(now, current_round_deliveries_);
  current_round_deliveries_ = 0;
  while (round_deliveries_.size() > 64) round_deliveries_.pop_front();
}

void TraceLog::dump(std::ostream& os, std::size_t last_n) const {
  os << "trace: " << seen_ << " lifecycle events total, showing last "
     << std::min(last_n, events_.size()) << "\n";
  const std::size_t start =
      events_.size() > last_n ? events_.size() - last_n : 0;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << "  [" << e.when << "] ";
    switch (e.kind) {
      case Kind::kCrash:
        os << "crash   p" << e.process;
        break;
      case Kind::kRestart:
        os << "restart p" << e.process;
        break;
      case Kind::kInject:
        os << "inject  p" << e.process << " rumor (" << e.rumor.source << ","
           << e.rumor.seq << ") |D|=" << e.dest;
        break;
      case Kind::kEnvelopeDelivered:
        os << "deliver p" << e.from << " -> p" << e.process << " ["
           << to_string(e.service) << "]";
        break;
    }
    os << "\n";
  }
  os << "recent rounds (deliveries/round):";
  for (const auto& [round, count] : round_deliveries_) {
    os << " " << round << ":" << count;
  }
  os << "\n";
}

std::string TraceLog::dump_string(std::size_t last_n) const {
  std::ostringstream os;
  dump(os, last_n);
  return os.str();
}

}  // namespace congos::sim
