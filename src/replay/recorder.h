// DecisionRecorder: the passive observer behind .repro artifacts.
//
// Registered as a sim::ExecutionObserver, it captures (a) the adversary
// decision trace — every crash/restart with its partial-delivery policy and
// every injection with the rumor identity — and (b) the per-round delivered
// envelope counts together with their incrementally-folded FNV-1a hash,
// which is bit-identical to the golden-trace hash in tests/test_golden.cpp.
//
// The same class serves recording (fill a ReproFile from a live run) and
// replay verification (re-run and compare hash + decisions against the
// file). It draws no randomness and never touches the engine, so attaching
// it cannot perturb the execution it is recording.
#pragma once

#include "replay/codec.h"
#include "replay/repro.h"
#include "sim/engine.h"

namespace congos::replay {

class DecisionRecorder final : public sim::ExecutionObserver {
 public:
  DecisionRecorder() : hash_(kFnvOffset) {}

  // -- ExecutionObserver ------------------------------------------------------
  void on_crash(ProcessId p, Round now, sim::PartialDelivery policy) override;
  void on_restart(ProcessId p, Round now, sim::PartialDelivery policy) override;
  void on_inject(const sim::Rumor& rumor, Round now) override;
  void on_envelope_delivered(const sim::Envelope& e, Round now) override;
  void on_round_end(Round now) override;

  const std::vector<Decision>& decisions() const { return decisions_; }
  const std::vector<std::uint64_t>& round_deliveries() const { return rounds_; }
  /// Hash of the per-round counts recorded so far.
  std::uint64_t trace_hash() const { return hash_; }

  /// Copy the recorded observations (decision trace, per-round counts, trace
  /// hash) into `file`. The caller fills config, label and result fields.
  void fill(ReproFile* file) const;

  /// Index of the first recorded decision differing from `expected`, or
  /// SIZE_MAX when one trace is a prefix of the other (compare sizes to tell
  /// "identical" from "one stopped early").
  std::size_t first_divergence(const std::vector<Decision>& expected) const;

 private:
  std::vector<Decision> decisions_;
  std::vector<std::uint64_t> rounds_;
  std::uint64_t current_ = 0;
  std::uint64_t hash_;
};

}  // namespace congos::replay
