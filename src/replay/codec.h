// Little-endian binary codec for .repro files.
//
// A deliberately tiny, dependency-free format layer: explicit-width
// little-endian integers, IEEE-754 doubles carried as their bit pattern,
// length-prefixed strings and vectors. The reader is fully bounds-checked
// and latches an error flag instead of throwing, so a truncated or corrupted
// file degrades into `ok() == false` rather than undefined behaviour —
// replay::read_file turns that into a rejection (tests/test_replay.cpp pins
// this for bit flips and truncation at every offset).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace congos::replay {

/// FNV-1a over a byte range (same constants as the golden-trace hash in
/// tests/test_golden.cpp). Used both for the per-round delivery-trace hash
/// and for the whole-file integrity checksum.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len,
                           std::uint64_t h = kFnvOffset) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Fold one u64 value (little-endian byte order) into an FNV-1a hash.
/// fnv1a_u64 over a sequence of per-round counts reproduces exactly the
/// golden fnv1a(std::vector<std::uint64_t>) of tests/test_golden.cpp.
inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int b = 0; b < 4; ++b) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
  void u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (auto x : v) u64(x);
  }
  void vec_i64(const std::vector<std::int64_t>& v) {
    u64(v.size());
    for (auto x : v) i64(x);
  }
  void vec_u32(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (auto x : v) u32(x);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_++];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * b);
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * b);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint64_t> vec_u64() {
    const std::uint64_t n = u64();
    if (!check_count(n, 8)) return {};
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }
  std::vector<std::int64_t> vec_i64() {
    const std::uint64_t n = u64();
    if (!check_count(n, 8)) return {};
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = i64();
    return v;
  }
  std::vector<std::uint32_t> vec_u32() {
    const std::uint64_t n = u64();
    if (!check_count(n, 4)) return {};
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = u32();
    return v;
  }

  /// Mark the stream as bad (a semantic validation failed downstream of the
  /// raw bounds checks).
  void fail() { ok_ = false; }

 private:
  bool take(std::uint64_t n) {
    if (!ok_ || n > len_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }
  /// Guards vector pre-allocation: an adversarially large length prefix must
  /// not drive a multi-gigabyte allocation before the bounds check trips.
  bool check_count(std::uint64_t n, std::uint64_t elem_size) {
    if (!ok_ || n > (len_ - pos_) / elem_size) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace congos::replay
