// Self-contained reproduction artifacts (.repro files).
//
// A ReproFile captures everything needed to re-execute one scenario
// deterministically and check the re-execution against the original run:
//
//   * the full ScenarioConfig (protocol, CONGOS knobs, workload and failure
//     pattern options, seeds) — the execution is a pure function of this,
//   * the adversary decision trace actually taken (every crash, restart and
//     injection, with round, victim and partial-delivery policy),
//   * the per-round delivered-envelope counts and their FNV-1a hash (the
//     same golden-trace hash the regression tests pin),
//   * a summary of the original ScenarioResult,
//   * a human-readable TraceLog tail and a free-form reason string.
//
// The binary layout is versioned ("CGRP" magic + format version) and ends in
// a whole-file FNV-1a checksum; decode() rejects truncation, corruption and
// unknown versions. Snapshots (sim::EngineCheckpoint) are intentionally NOT
// serialized: process state reaches gigabytes and re-execution from the
// config is exact, so the file only needs the inputs plus the expected
// observations. See DESIGN.md section 7.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "sim/network.h"

namespace congos::replay {

inline constexpr std::uint32_t kReproMagic = 0x50524743;  // "CGRP" little-endian
/// Version 2 added the link-fault config, the retransmission config and the
/// fault counter totals; version 3 added the wire codec version the original
/// run's byte accounting used. decode() still accepts version-1 and
/// version-2 files (their fault fields default to "off"/zero and their
/// wire_codec_version to 0 = "pre-codec modeled sizes").
inline constexpr std::uint32_t kReproVersion = 3;

/// One adversary decision, in execution order. Crash/restart decisions carry
/// the partial-delivery policy; injections carry the rumor identity and its
/// shape (destination count, deadline) — payload bytes are reproduced by the
/// workload, not stored.
struct Decision {
  enum class Kind : std::uint8_t { kCrash = 0, kRestart = 1, kInject = 2 };

  Round round = 0;
  Kind kind = Kind::kCrash;
  ProcessId process = 0;                                        // victim / source
  sim::PartialDelivery policy = sim::PartialDelivery::kDeliverAll;  // crash/restart
  RumorUid rumor;                                               // inject
  std::uint64_t dest_count = 0;                                 // inject
  Round deadline = 0;                                           // inject

  friend bool operator==(const Decision&, const Decision&) = default;
};

struct ReproFile {
  harness::ScenarioConfig config;

  /// Where the artifact came from (sweep label, grid index) and why it was
  /// written (auditor verdict). Informational only.
  std::string label;
  std::string reason;

  /// Adversary decision trace of the original run.
  std::vector<Decision> decisions;

  /// Per-round delivered-envelope counts of the original run, and their
  /// FNV-1a hash (replay must reproduce this hash byte-identically).
  std::vector<std::uint64_t> round_deliveries;
  std::uint64_t trace_hash = 0;

  /// Key aggregates of the original ScenarioResult, for --diff-golden.
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t injected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t leaks = 0;
  std::uint64_t foreign_fragments = 0;
  std::uint64_t qod_delivered_on_time = 0;
  std::uint64_t qod_late = 0;
  std::uint64_t qod_missing = 0;
  std::uint64_t qod_data_mismatches = 0;

  /// v2: link-fault counter totals of the original run (zero for v1 files
  /// and fault-free runs). Indexed by sim::FaultKind.
  std::uint64_t faults_by_kind[sim::kNumFaultKinds] = {};
  std::uint64_t duplicates_suppressed = 0;

  /// v3: wire::kWireFormatVersion at record time. total_bytes above is only
  /// comparable across runs that serialized with the same codec version;
  /// 0 means the file predates the wire codec (byte counts are the old
  /// fixed-width model).
  std::uint32_t wire_codec_version = 0;

  /// Human-readable TraceLog tail of the original run (empty when tracing
  /// was off). Never parsed — for eyes only.
  std::string trace_tail;
};

/// A config is recordable iff the execution is a pure function of its
/// serializable fields: no custom destination generator (std::function) and
/// no external adversary components. Returns false and explains in `why`
/// (when non-null) otherwise. extra_observers are passive and do not block
/// recording.
bool is_recordable(const harness::ScenarioConfig& cfg, std::string* why = nullptr);

/// Serialize to the versioned checksummed byte layout.
std::vector<std::uint8_t> encode(const ReproFile& file);

/// Parse bytes produced by encode(). Returns false on bad magic, unknown
/// version, checksum mismatch, truncation, or out-of-range enum values;
/// `error` (when non-null) describes the first problem found.
bool decode(const std::vector<std::uint8_t>& bytes, ReproFile* out,
            std::string* error = nullptr);

/// encode() + atomic-ish write (write to path, no temp file: artifacts land
/// in per-run directories). Returns false on I/O failure.
bool write_file(const std::string& path, const ReproFile& file);

/// Slurp + decode(). Returns false on I/O or parse failure.
bool read_file(const std::string& path, ReproFile* out,
               std::string* error = nullptr);

}  // namespace congos::replay
