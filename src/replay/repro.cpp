#include "replay/repro.h"

#include <cstdio>

#include "replay/codec.h"

namespace congos::replay {

namespace {

void set_error(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
}

template <typename Enum>
bool checked_enum(ByteReader& r, Enum* out, std::uint8_t max_value) {
  const std::uint8_t v = r.u8();
  if (!r.ok() || v > max_value) {
    r.fail();
    return false;
  }
  *out = static_cast<Enum>(v);
  return true;
}

// --------------------------------------------------------------- sub-configs

void put_congos(ByteWriter& w, const core::CongosConfig& c) {
  w.u32(c.tau);
  w.f64(c.partition_c);
  w.f64(c.fanout_exponent);
  w.f64(c.fanout_c);
  w.u32(static_cast<std::uint32_t>(c.gossip_fanout));
  w.u8(static_cast<std::uint8_t>(c.gossip_strategy));
  w.i64(c.direct_threshold);
  w.i64(c.max_effective_deadline);
  w.f64(c.gd_alive_factor);
  w.boolean(c.allow_degenerate);
  w.u64(c.partition_seed);
}

bool get_congos(ByteReader& r, core::CongosConfig* c) {
  c->tau = r.u32();
  c->partition_c = r.f64();
  c->fanout_exponent = r.f64();
  c->fanout_c = r.f64();
  c->gossip_fanout = static_cast<int>(r.u32());
  if (!checked_enum(r, &c->gossip_strategy,
                    static_cast<std::uint8_t>(gossip::GossipStrategy::kPushPull))) {
    return false;
  }
  c->direct_threshold = r.i64();
  c->max_effective_deadline = r.i64();
  c->gd_alive_factor = r.f64();
  c->allow_degenerate = r.boolean();
  c->partition_seed = r.u64();
  return r.ok();
}

void put_continuous(ByteWriter& w, const adversary::Continuous::Options& o) {
  w.f64(o.inject_prob);
  w.u64(o.dest_min);
  w.u64(o.dest_max);
  w.vec_i64(o.deadlines);
  w.u64(o.payload_len);
  w.i64(o.last_injection_round);
  w.boolean(o.opaque_ids);
}

bool get_continuous(ByteReader& r, adversary::Continuous::Options* o) {
  o->inject_prob = r.f64();
  o->dest_min = r.u64();
  o->dest_max = r.u64();
  o->deadlines = r.vec_i64();
  o->payload_len = r.u64();
  o->last_injection_round = r.i64();
  o->opaque_ids = r.boolean();
  return r.ok();
}

void put_theorem1(ByteWriter& w, const adversary::Theorem1::Options& o) {
  w.f64(o.x);
  w.i64(o.dmax);
  w.u64(o.payload_len);
}

bool get_theorem1(ByteReader& r, adversary::Theorem1::Options* o) {
  o->x = r.f64();
  o->dmax = r.i64();
  o->payload_len = r.u64();
  return r.ok();
}

void put_churn(ByteWriter& w, const adversary::RandomChurn::Options& o) {
  w.f64(o.crash_prob);
  w.f64(o.restart_prob);
  w.u64(o.min_alive);
  w.vec_u32(o.protected_ids);
}

bool get_churn(ByteReader& r, adversary::RandomChurn::Options* o) {
  o->crash_prob = r.f64();
  o->restart_prob = r.f64();
  o->min_alive = r.u64();
  o->protected_ids = r.vec_u32();
  return r.ok();
}

void put_crash_on_service(ByteWriter& w, const adversary::CrashOnService::Options& o) {
  w.u8(static_cast<std::uint8_t>(o.target));
  w.u64(o.per_round_budget);
  w.u64(o.total_budget);
  w.u64(o.min_alive);
  w.vec_u32(o.protected_ids);
  w.i64(o.restart_after);
}

bool get_crash_on_service(ByteReader& r, adversary::CrashOnService::Options* o) {
  if (!checked_enum(r, &o->target, static_cast<std::uint8_t>(sim::ServiceKind::kOther))) {
    return false;
  }
  o->per_round_budget = r.u64();
  o->total_budget = r.u64();
  o->min_alive = r.u64();
  o->protected_ids = r.vec_u32();
  o->restart_after = r.i64();
  return r.ok();
}

void put_crash_senders(ByteWriter& w, const adversary::CrashSenders::Options& o) {
  w.u8(static_cast<std::uint8_t>(o.target));
  w.u64(o.per_round_budget);
  w.u64(o.total_budget);
  w.u64(o.min_alive);
  w.vec_u32(o.protected_ids);
  w.u8(static_cast<std::uint8_t>(o.delivery));
}

bool get_crash_senders(ByteReader& r, adversary::CrashSenders::Options* o) {
  if (!checked_enum(r, &o->target, static_cast<std::uint8_t>(sim::ServiceKind::kOther))) {
    return false;
  }
  o->per_round_budget = r.u64();
  o->total_budget = r.u64();
  o->min_alive = r.u64();
  o->protected_ids = r.vec_u32();
  return checked_enum(r, &o->delivery,
                      static_cast<std::uint8_t>(sim::PartialDelivery::kRandom));
}

// v2 additions: the link-fault plan and the retransmission knobs are part of
// the execution's pure-function inputs, so replay must restore both.
void put_faults(ByteWriter& w, const sim::FaultConfig& f) {
  w.f64(f.drop_rate);
  w.f64(f.dup_rate);
  w.f64(f.delay_rate);
  w.i64(f.max_delay);
  w.i64(f.partition_period);
  w.i64(f.partition_duration);
  w.u64(f.seed);
}

bool get_faults(ByteReader& r, sim::FaultConfig* f) {
  f->drop_rate = r.f64();
  f->dup_rate = r.f64();
  f->delay_rate = r.f64();
  f->max_delay = r.i64();
  f->partition_period = r.i64();
  f->partition_duration = r.i64();
  f->seed = r.u64();
  return r.ok();
}

void put_retransmit(ByteWriter& w, const core::RetransmitConfig& rt) {
  w.boolean(rt.enabled);
  w.u32(static_cast<std::uint32_t>(rt.budget));
  w.i64(rt.max_link_delay);
}

bool get_retransmit(ByteReader& r, core::RetransmitConfig* rt) {
  rt->enabled = r.boolean();
  rt->budget = static_cast<int>(r.u32());
  rt->max_link_delay = r.i64();
  return r.ok();
}

void put_config(ByteWriter& w, const harness::ScenarioConfig& cfg) {
  w.u64(cfg.n);
  w.u64(cfg.seed);
  w.i64(cfg.rounds);
  w.u8(static_cast<std::uint8_t>(cfg.protocol));
  put_congos(w, cfg.congos);
  w.u8(static_cast<std::uint8_t>(cfg.workload));
  put_continuous(w, cfg.continuous);
  put_theorem1(w, cfg.theorem1);
  w.boolean(cfg.churn.has_value());
  if (cfg.churn) put_churn(w, *cfg.churn);
  w.boolean(cfg.crash_on_service.has_value());
  if (cfg.crash_on_service) put_crash_on_service(w, *cfg.crash_on_service);
  w.boolean(cfg.crash_senders.has_value());
  if (cfg.crash_senders) put_crash_senders(w, *cfg.crash_senders);
  w.i64(cfg.measure_from);
  w.f64(cfg.lazy_fraction);
  w.u32(static_cast<std::uint32_t>(cfg.baseline_fanout));
  w.boolean(cfg.audit_confidentiality);
  w.i64(cfg.min_drain);
  // v2 extension (after every v1 field, so v1 readers of old files and this
  // reader of v1 files agree on the prefix).
  put_faults(w, cfg.faults);
  put_retransmit(w, cfg.congos.retransmit);
}

bool get_config(ByteReader& r, harness::ScenarioConfig* cfg, std::uint32_t version) {
  cfg->n = r.u64();
  cfg->seed = r.u64();
  cfg->rounds = r.i64();
  if (!checked_enum(r, &cfg->protocol,
                    static_cast<std::uint8_t>(harness::Protocol::kPlainGossip))) {
    return false;
  }
  if (!get_congos(r, &cfg->congos)) return false;
  if (!checked_enum(r, &cfg->workload,
                    static_cast<std::uint8_t>(harness::WorkloadKind::kTheorem1))) {
    return false;
  }
  if (!get_continuous(r, &cfg->continuous)) return false;
  if (!get_theorem1(r, &cfg->theorem1)) return false;
  if (r.boolean()) {
    cfg->churn.emplace();
    if (!get_churn(r, &*cfg->churn)) return false;
  }
  if (r.boolean()) {
    cfg->crash_on_service.emplace();
    if (!get_crash_on_service(r, &*cfg->crash_on_service)) return false;
  }
  if (r.boolean()) {
    cfg->crash_senders.emplace();
    if (!get_crash_senders(r, &*cfg->crash_senders)) return false;
  }
  cfg->measure_from = r.i64();
  cfg->lazy_fraction = r.f64();
  cfg->baseline_fanout = static_cast<int>(r.u32());
  cfg->audit_confidentiality = r.boolean();
  cfg->min_drain = r.i64();
  if (version >= 2) {
    if (!get_faults(r, &cfg->faults)) return false;
    if (!get_retransmit(r, &cfg->congos.retransmit)) return false;
  }
  return r.ok();
}

void put_decision(ByteWriter& w, const Decision& d) {
  w.i64(d.round);
  w.u8(static_cast<std::uint8_t>(d.kind));
  w.u32(d.process);
  w.u8(static_cast<std::uint8_t>(d.policy));
  w.u32(d.rumor.source);
  w.u64(d.rumor.seq);
  w.u64(d.dest_count);
  w.i64(d.deadline);
}

bool get_decision(ByteReader& r, Decision* d) {
  d->round = r.i64();
  if (!checked_enum(r, &d->kind, static_cast<std::uint8_t>(Decision::Kind::kInject))) {
    return false;
  }
  d->process = r.u32();
  if (!checked_enum(r, &d->policy,
                    static_cast<std::uint8_t>(sim::PartialDelivery::kRandom))) {
    return false;
  }
  d->rumor.source = r.u32();
  d->rumor.seq = r.u64();
  d->dest_count = r.u64();
  d->deadline = r.i64();
  return r.ok();
}

}  // namespace

bool is_recordable(const harness::ScenarioConfig& cfg, std::string* why) {
  if (cfg.workload == harness::WorkloadKind::kContinuous && cfg.continuous.dest_gen) {
    set_error(why, "continuous.dest_gen is a custom std::function and cannot "
                   "be serialized");
    return false;
  }
  if (!cfg.extra_adversaries.empty()) {
    set_error(why, "extra_adversaries are external components and cannot be "
                   "serialized");
    return false;
  }
  return true;
}

std::vector<std::uint8_t> encode(const ReproFile& file) {
  ByteWriter w;
  w.u32(kReproMagic);
  w.u32(kReproVersion);
  put_config(w, file.config);
  w.str(file.label);
  w.str(file.reason);
  w.u64(file.decisions.size());
  for (const auto& d : file.decisions) put_decision(w, d);
  w.vec_u64(file.round_deliveries);
  w.u64(file.trace_hash);
  w.u64(file.total_messages);
  w.u64(file.total_bytes);
  w.u64(file.injected);
  w.u64(file.crashes);
  w.u64(file.restarts);
  w.u64(file.leaks);
  w.u64(file.foreign_fragments);
  w.u64(file.qod_delivered_on_time);
  w.u64(file.qod_late);
  w.u64(file.qod_missing);
  w.u64(file.qod_data_mismatches);
  for (std::size_t f = 0; f < sim::kNumFaultKinds; ++f) {
    w.u64(file.faults_by_kind[f]);
  }
  w.u64(file.duplicates_suppressed);
  w.u32(file.wire_codec_version);  // v3
  w.str(file.trace_tail);

  std::vector<std::uint8_t> bytes = w.take();
  const std::uint64_t checksum = fnv1a(bytes.data(), bytes.size());
  for (int b = 0; b < 8; ++b) {
    bytes.push_back(static_cast<std::uint8_t>(checksum >> (8 * b)));
  }
  return bytes;
}

bool decode(const std::vector<std::uint8_t>& bytes, ReproFile* out,
            std::string* error) {
  if (bytes.size() < 16) {
    set_error(error, "file too short to be a .repro");
    return false;
  }
  // Magic before checksum, so "not a .repro at all" and "damaged .repro"
  // read differently in error reports.
  const std::size_t body_len = bytes.size() - 8;
  ByteReader r(bytes.data(), body_len);
  if (r.u32() != kReproMagic) {
    set_error(error, "bad magic (not a .repro file)");
    return false;
  }
  std::uint64_t stored = 0;
  for (int b = 0; b < 8; ++b) {
    stored |= static_cast<std::uint64_t>(bytes[body_len + b]) << (8 * b);
  }
  if (fnv1a(bytes.data(), body_len) != stored) {
    set_error(error, "checksum mismatch (truncated or corrupted file)");
    return false;
  }
  const std::uint32_t version = r.u32();
  if (version < 1 || version > kReproVersion) {
    set_error(error, "unsupported .repro format version");
    return false;
  }

  ReproFile file;
  if (!get_config(r, &file.config, version)) {
    set_error(error, "malformed scenario config section");
    return false;
  }
  file.label = r.str();
  file.reason = r.str();
  const std::uint64_t n_decisions = r.u64();
  // A decision occupies >= 34 bytes; reject counts the remaining bytes
  // cannot possibly hold before allocating.
  if (!r.ok() || n_decisions > r.remaining() / 34) {
    set_error(error, "malformed decision trace");
    return false;
  }
  file.decisions.resize(n_decisions);
  for (auto& d : file.decisions) {
    if (!get_decision(r, &d)) {
      set_error(error, "malformed decision trace");
      return false;
    }
  }
  file.round_deliveries = r.vec_u64();
  file.trace_hash = r.u64();
  file.total_messages = r.u64();
  file.total_bytes = r.u64();
  file.injected = r.u64();
  file.crashes = r.u64();
  file.restarts = r.u64();
  file.leaks = r.u64();
  file.foreign_fragments = r.u64();
  file.qod_delivered_on_time = r.u64();
  file.qod_late = r.u64();
  file.qod_missing = r.u64();
  file.qod_data_mismatches = r.u64();
  if (version >= 2) {
    for (std::size_t f = 0; f < sim::kNumFaultKinds; ++f) {
      file.faults_by_kind[f] = r.u64();
    }
    file.duplicates_suppressed = r.u64();
  }
  if (version >= 3) {
    file.wire_codec_version = r.u32();
  }
  file.trace_tail = r.str();
  if (!r.ok()) {
    set_error(error, "malformed trailer section");
    return false;
  }
  if (r.remaining() != 0) {
    set_error(error, "trailing garbage after .repro payload");
    return false;
  }
  *out = std::move(file);
  return true;
}

bool write_file(const std::string& path, const ReproFile& file) {
  const std::vector<std::uint8_t> bytes = encode(file);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == bytes.size() && closed;
}

bool read_file(const std::string& path, ReproFile* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    set_error(error, "cannot open file");
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);
  return decode(bytes, out, error);
}

}  // namespace congos::replay
