#include "replay/recorder.h"

#include "sim/rumor.h"

namespace congos::replay {

void DecisionRecorder::on_crash(ProcessId p, Round now,
                                sim::PartialDelivery policy) {
  Decision d;
  d.round = now;
  d.kind = Decision::Kind::kCrash;
  d.process = p;
  d.policy = policy;
  decisions_.push_back(d);
}

void DecisionRecorder::on_restart(ProcessId p, Round now,
                                  sim::PartialDelivery policy) {
  Decision d;
  d.round = now;
  d.kind = Decision::Kind::kRestart;
  d.process = p;
  d.policy = policy;
  decisions_.push_back(d);
}

void DecisionRecorder::on_inject(const sim::Rumor& rumor, Round now) {
  Decision d;
  d.round = now;
  d.kind = Decision::Kind::kInject;
  d.process = rumor.uid.source;
  d.rumor = rumor.uid;
  d.dest_count = rumor.dest.count();
  d.deadline = rumor.deadline;
  decisions_.push_back(d);
}

void DecisionRecorder::on_envelope_delivered(const sim::Envelope& /*e*/,
                                             Round /*now*/) {
  ++current_;
}

void DecisionRecorder::on_round_end(Round /*now*/) {
  rounds_.push_back(current_);
  hash_ = fnv1a_u64(hash_, current_);
  current_ = 0;
}

void DecisionRecorder::fill(ReproFile* file) const {
  file->decisions = decisions_;
  file->round_deliveries = rounds_;
  file->trace_hash = hash_;
}

std::size_t DecisionRecorder::first_divergence(
    const std::vector<Decision>& expected) const {
  const std::size_t common = std::min(decisions_.size(), expected.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(decisions_[i] == expected[i])) return i;
  }
  return SIZE_MAX;
}

}  // namespace congos::replay
