// Deterministic collusion-tolerant partitions (the paper's open problem).
//
// Section 6.2 constructs the c*tau*log n partitions of tau+1 groups by the
// probabilistic method and "leave[s] the polynomial time construction of
// partitions satisfying the required conditions as future work". This file
// implements a deterministic Reed-Solomon-style candidate:
//
//   * pick the smallest prime q >= max(tau + 2, c*tau*log2(n));
//   * write each process id as the coefficient vector of a polynomial f_p of
//     degree < k = ceil(log_q n) over GF(q);
//   * partition l uses evaluation point x_l in GF(q): process p lands in
//     group f_p(x_l) mod (tau + 1).
//
// Distinct ids share at most k-1 evaluation values (a nonzero polynomial of
// degree < k has < k roots), so any two processes are separated by at least
// L - (k-1) of the L partitions *before* the mod-(tau+1) folding - a strong
// deterministic generalization of Lemma 5. The folding can merge values, so
// Partition-Properties 1 and 2 are still verified explicitly (exactly and by
// sampling, respectively, with the same checker as the random construction);
// the verification is part of the returned result, not an assumption.
#pragma once

#include "partition/random_partition.h"

namespace congos::partition {

struct AlgebraicPartitionResult {
  PartitionSet partitions;
  std::uint64_t field_size = 0;   // the prime q
  std::size_t poly_degree = 0;    // k - 1
  bool property1 = false;         // every group of every partition non-empty
  double property2_pass = 0.0;    // fraction of sampled subsets covered
  std::size_t property2_subset_size = 0;
  /// Guaranteed minimum number of partitions separating any two distinct
  /// processes before group folding: L - (k - 1).
  std::size_t separation_floor = 0;
};

/// Smallest prime >= x (trial division; x stays tiny here).
std::uint64_t next_prime(std::uint64_t x);

/// Builds the deterministic family. Never aborts: the caller inspects the
/// verification fields (experiment E10 compares this against the
/// probabilistic construction).
AlgebraicPartitionResult make_algebraic_partitions(std::size_t n,
                                                   const RandomPartitionOptions& opt,
                                                   Rng& verification_rng);

}  // namespace congos::partition
