#include "partition/algebraic_partition.h"

#include <cmath>

#include "common/assert.h"

namespace congos::partition {

std::uint64_t next_prime(std::uint64_t x) {
  if (x <= 2) return 2;
  if (x % 2 == 0) ++x;
  while (true) {
    bool prime = true;
    for (std::uint64_t d = 3; d * d <= x; d += 2) {
      if (x % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) return x;
    x += 2;
  }
}

namespace {

/// Digits of `value` in base q, least significant first, padded to k.
std::vector<std::uint64_t> to_coefficients(std::uint64_t value, std::uint64_t q,
                                           std::size_t k) {
  std::vector<std::uint64_t> coeffs(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    coeffs[i] = value % q;
    value /= q;
  }
  CONGOS_ASSERT_MSG(value == 0, "id does not fit in k base-q digits");
  return coeffs;
}

/// Horner evaluation of the coefficient polynomial at x over GF(q).
std::uint64_t eval_poly(const std::vector<std::uint64_t>& coeffs, std::uint64_t x,
                        std::uint64_t q) {
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = (acc * x + coeffs[i]) % q;
  }
  return acc;
}

}  // namespace

AlgebraicPartitionResult make_algebraic_partitions(std::size_t n,
                                                   const RandomPartitionOptions& opt,
                                                   Rng& verification_rng) {
  CONGOS_ASSERT(opt.tau >= 1);
  const std::uint64_t groups = opt.tau + 1;
  CONGOS_ASSERT_MSG(groups <= n, "more groups than processes");

  const double log_n = std::max(1.0, std::log2(static_cast<double>(n)));
  const auto want_partitions = static_cast<std::size_t>(
      std::ceil(opt.c * static_cast<double>(opt.tau) * log_n));

  AlgebraicPartitionResult result;
  // Field large enough for (a) one *distinct* nonzero evaluation point per
  // partition (q - 1 >= want_partitions) and (b) a reasonable fold onto
  // tau+1 groups.
  const std::uint64_t q = next_prime(std::max<std::uint64_t>(
      groups + 1, static_cast<std::uint64_t>(want_partitions) + 1));
  result.field_size = q;

  // Degree bound: k symbols cover ids < q^k.
  std::size_t k = 1;
  {
    std::uint64_t span = q;
    while (span < n) {
      span *= q;
      ++k;
    }
  }
  result.poly_degree = k - 1;
  result.separation_floor =
      want_partitions > (k - 1) ? want_partitions - (k - 1) : 0;

  std::vector<std::vector<std::uint64_t>> coeffs;
  coeffs.reserve(n);
  for (std::size_t p = 0; p < n; ++p) coeffs.push_back(to_coefficients(p, q, k));

  std::vector<Partition> parts;
  parts.reserve(want_partitions);
  for (std::size_t l = 0; l < want_partitions; ++l) {
    const std::uint64_t x = 1 + (l % (q - 1));  // distinct nonzero points
    std::vector<GroupIndex> group_of(n);
    for (std::size_t p = 0; p < n; ++p) {
      const std::uint64_t value = eval_poly(coeffs[p], x, q);
      // Non-linear fold onto tau+1 groups. A plain `value % groups` keeps
      // the code's linear structure: two ids whose polynomials differ by a
      // constant multiple of `groups` would land in the same group at
      // almost every point. Hashing the (point, value) pair before reducing
      // destroys that structure while staying deterministic; equal
      // evaluations still map to equal groups, so the <= k-1 agreement
      // bound from the RS code is what limits correlated placements.
      std::uint64_t h = value * q + x;
      group_of[p] = static_cast<GroupIndex>(splitmix64(h) % groups);
    }
    parts.emplace_back(n, static_cast<GroupIndex>(groups), std::move(group_of));
  }
  result.partitions = PartitionSet(std::move(parts));

  // --- verification (the construction is a candidate, not an assumption) ---
  result.property1 = true;
  for (PartitionIndex l = 0; l < result.partitions.count(); ++l) {
    result.property1 = result.property1 && result.partitions[l].well_formed();
  }

  auto subset_size = static_cast<std::size_t>(
      std::ceil(2.0 * opt.c_prime * static_cast<double>(opt.tau) * log_n));
  subset_size = std::min(std::max<std::size_t>(subset_size, groups), n);
  result.property2_subset_size = subset_size;
  std::size_t pass = 0;
  for (std::size_t t = 0; t < opt.property2_trials; ++t) {
    const auto idx = verification_rng.sample_without_replacement(
        static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(subset_size));
    const auto s = DynamicBitset::from_indices(n, idx);
    for (PartitionIndex l = 0; l < result.partitions.count(); ++l) {
      if (result.partitions[l].covers(s)) {
        ++pass;
        break;
      }
    }
  }
  result.property2_pass =
      opt.property2_trials == 0
          ? 0.0
          : static_cast<double>(pass) / static_cast<double>(opt.property2_trials);
  return result;
}

}  // namespace congos::partition
