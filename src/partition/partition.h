// Process-space partitions (Sections 4.2 and 6.2).
//
// CONGOS splits the id space [n] into groups, once per partition index:
//   * without collusion: log n partitions of 2 groups each, partition l
//     separating on the l-th bit of the process id (Lemma 5: any two distinct
//     ids are separated by some partition);
//   * with collusion tolerance tau: c*tau*log n random partitions of tau+1
//     groups each, satisfying Partition-Property 1 (every group non-empty)
//     and Partition-Property 2 (every set of >= 2c'*tau*log n processes has
//     some partition with a member in every group) - Lemma 13.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/types.h"

namespace congos::partition {

/// A single partition: a total map from process id to group index.
class Partition {
 public:
  Partition() = default;
  Partition(std::size_t n, GroupIndex num_groups, std::vector<GroupIndex> group_of);

  std::size_t n() const { return group_of_.size(); }
  GroupIndex num_groups() const { return num_groups_; }
  GroupIndex group_of(ProcessId p) const { return group_of_[p]; }

  /// Membership bitset of group g (computed once, cached).
  const DynamicBitset& members(GroupIndex g) const { return members_[g]; }

  std::size_t group_size(GroupIndex g) const { return members_[g].count(); }

  /// True iff every group is non-empty (Partition-Property 1).
  bool well_formed() const;

  /// True iff every group contains at least one member of `s`.
  bool covers(const DynamicBitset& s) const;

 private:
  GroupIndex num_groups_ = 0;
  std::vector<GroupIndex> group_of_;
  std::vector<DynamicBitset> members_;
};

/// A family of partitions, indexed by PartitionIndex.
class PartitionSet {
 public:
  PartitionSet() = default;
  explicit PartitionSet(std::vector<Partition> parts) : parts_(std::move(parts)) {}

  std::size_t count() const { return parts_.size(); }
  const Partition& operator[](PartitionIndex l) const { return parts_[l]; }

  /// Index of some partition that separates p and q into different groups,
  /// or count() if none exists.
  PartitionIndex separating(ProcessId p, ProcessId q) const;

 private:
  std::vector<Partition> parts_;
};

}  // namespace congos::partition
