#include "partition/random_partition.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/math.h"
#include "partition/bit_partition.h"

namespace congos::partition {

namespace {

PartitionSet sample_family(std::size_t n, std::uint32_t groups, std::size_t count,
                           Rng& rng) {
  std::vector<Partition> parts;
  parts.reserve(count);
  for (std::size_t l = 0; l < count; ++l) {
    std::vector<GroupIndex> group_of(n);
    for (std::size_t p = 0; p < n; ++p) {
      group_of[p] = static_cast<GroupIndex>(rng.next_below(groups));
    }
    parts.emplace_back(n, groups, std::move(group_of));
  }
  return PartitionSet(std::move(parts));
}

bool property1(const PartitionSet& set) {
  for (PartitionIndex l = 0; l < set.count(); ++l) {
    if (!set[l].well_formed()) return false;
  }
  return true;
}

bool some_partition_covers(const PartitionSet& set, const DynamicBitset& s) {
  for (PartitionIndex l = 0; l < set.count(); ++l) {
    if (set[l].covers(s)) return true;
  }
  return false;
}

bool property2_sampled(const PartitionSet& set, std::size_t n, std::size_t subset_size,
                       std::size_t trials, Rng& rng) {
  for (std::size_t t = 0; t < trials; ++t) {
    const auto idx = rng.sample_without_replacement(
        static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(subset_size));
    if (!some_partition_covers(set, DynamicBitset::from_indices(n, idx))) return false;
  }
  return true;
}

}  // namespace

RandomPartitionResult make_random_partitions(std::size_t n,
                                             const RandomPartitionOptions& opt,
                                             Rng& rng) {
  CONGOS_ASSERT(opt.tau >= 1);
  const std::uint32_t groups = opt.tau + 1;
  CONGOS_ASSERT_MSG(groups <= n, "more groups than processes");

  const double log_n = std::max(1.0, std::log2(static_cast<double>(n)));
  const auto part_count = static_cast<std::size_t>(
      std::ceil(opt.c * static_cast<double>(opt.tau) * log_n));
  auto subset_size = static_cast<std::size_t>(
      std::ceil(2.0 * opt.c_prime * static_cast<double>(opt.tau) * log_n));
  subset_size = std::min(subset_size, n);
  // A subset smaller than the group count can never cover all groups; the
  // guarantee only speaks about sets of at least 2c'*tau*log n >= tau+1
  // processes, so clamp up.
  subset_size = std::max<std::size_t>(subset_size, groups);

  RandomPartitionResult result;
  result.property2_subset_size = subset_size;
  for (std::size_t attempt = 1; attempt <= opt.max_attempts; ++attempt) {
    result.attempts = attempt;
    PartitionSet candidate = sample_family(n, groups, part_count, rng);
    if (!property1(candidate)) continue;
    if (subset_size < n &&
        !property2_sampled(candidate, n, subset_size, opt.property2_trials, rng)) {
      continue;
    }
    result.partitions = std::move(candidate);
    return result;
  }
  CONGOS_ASSERT_MSG(false,
                    "random partition construction failed; tau likely too large "
                    "relative to n (Lemma 13 needs tau < n/log^2 n)");
  return result;  // unreachable
}

PartitionSet make_congos_partitions(std::size_t n, std::uint32_t tau, Rng& rng) {
  if (tau <= 1) return make_bit_partitions(n);
  RandomPartitionOptions opt;
  opt.tau = tau;
  return make_random_partitions(n, opt, rng).partitions;
}

}  // namespace congos::partition
