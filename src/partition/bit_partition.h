// Bit partitions (Section 4.2): partition l assigns process p to group
// p[l] in {0,1}, where p[l] is the l-th bit of p's id. With ceil(log2 n)
// partitions, any two distinct ids land in different groups of some
// partition (Lemma 5).
#pragma once

#include "partition/partition.h"

namespace congos::partition {

/// Number of bit partitions needed for universe size n (>= 2).
int bit_partition_count(std::size_t n);

/// Builds the ceil(log2 n) bit partitions over [0, n).
PartitionSet make_bit_partitions(std::size_t n);

}  // namespace congos::partition
