// Randomized collusion-tolerant partitions (Section 6.2, Lemma 13).
//
// For collusion tolerance tau we need c*tau*log(n) partitions of tau+1 groups
// such that:
//   Partition-Property 1: every group of every partition is non-empty;
//   Partition-Property 2: for every set S of >= 2c'*tau*log(n) processes,
//     some partition has a member of S in every group.
//
// Lemma 13 proves such a family exists (probabilistic method) for
// tau < n/log^2 n; the paper leaves a deterministic polynomial-time
// construction open. We implement exactly the probabilistic object: sample
// uniform group assignments, verify Property 1 exactly and Property 2 on a
// battery of random subsets, and resample on failure. Construction statistics
// (resample counts) are exposed for experiment E10.
#pragma once

#include "common/rng.h"
#include "partition/partition.h"

namespace congos::partition {

struct RandomPartitionOptions {
  /// Collusion tolerance tau (number of groups = tau + 1).
  std::uint32_t tau = 2;
  /// Partition count multiplier: we build ceil(c * tau * log2(n)) partitions.
  double c = 2.0;
  /// Property-2 subset size multiplier: subsets of ceil(2 * c_prime * tau *
  /// log2(n)) processes must be covered by some partition.
  double c_prime = 1.0;
  /// Number of random subsets sampled when verifying Property 2.
  std::size_t property2_trials = 200;
  /// Give up after this many resamples (construction failure is a test
  /// failure; Lemma 13 predicts success within a few attempts).
  std::size_t max_attempts = 64;
};

struct RandomPartitionResult {
  PartitionSet partitions;
  std::size_t attempts = 0;              // construction attempts used
  std::size_t property2_subset_size = 0; // the subset size that was verified
};

/// Builds a verified random partition family. Aborts (assert) if
/// max_attempts is exceeded - for tau < n/log^2 n this indicates a bug.
RandomPartitionResult make_random_partitions(std::size_t n,
                                             const RandomPartitionOptions& opt,
                                             Rng& rng);

/// Convenience dispatch used by CONGOS: tau <= 1 -> bit partitions (2 groups,
/// log n partitions), tau >= 2 -> verified random partitions.
PartitionSet make_congos_partitions(std::size_t n, std::uint32_t tau, Rng& rng);

}  // namespace congos::partition
