#include "partition/partition.h"

#include "common/assert.h"

namespace congos::partition {

Partition::Partition(std::size_t n, GroupIndex num_groups,
                     std::vector<GroupIndex> group_of)
    : num_groups_(num_groups), group_of_(std::move(group_of)) {
  CONGOS_ASSERT(group_of_.size() == n);
  CONGOS_ASSERT(num_groups_ >= 2);
  members_.assign(num_groups_, DynamicBitset(n));
  for (std::size_t p = 0; p < n; ++p) {
    CONGOS_ASSERT_MSG(group_of_[p] < num_groups_, "group index out of range");
    members_[group_of_[p]].set(p);
  }
}

bool Partition::well_formed() const {
  for (const auto& m : members_) {
    if (m.none()) return false;
  }
  return true;
}

bool Partition::covers(const DynamicBitset& s) const {
  for (const auto& m : members_) {
    if (!m.intersects(s)) return false;
  }
  return true;
}

PartitionIndex PartitionSet::separating(ProcessId p, ProcessId q) const {
  for (PartitionIndex l = 0; l < parts_.size(); ++l) {
    if (parts_[l].group_of(p) != parts_[l].group_of(q)) return l;
  }
  return static_cast<PartitionIndex>(parts_.size());
}

}  // namespace congos::partition
