#include "partition/bit_partition.h"

#include "common/assert.h"
#include "common/math.h"

namespace congos::partition {

int bit_partition_count(std::size_t n) {
  CONGOS_ASSERT_MSG(n >= 2, "need at least two processes to partition");
  return ilog2_ceil(n);
}

PartitionSet make_bit_partitions(std::size_t n) {
  const int bits = bit_partition_count(n);
  std::vector<Partition> parts;
  parts.reserve(static_cast<std::size_t>(bits));
  for (int l = 0; l < bits; ++l) {
    std::vector<GroupIndex> group_of(n);
    for (std::size_t p = 0; p < n; ++p) {
      group_of[p] = static_cast<GroupIndex>((p >> l) & 1u);
    }
    // Bit l may be constant over [0, n) when n is not a power of two and the
    // range doesn't reach that bit -- it cannot be, since bits = ceil(log2 n)
    // ensures bit l < ceil(log2 n) varies within [0, n). Verified below.
    Partition part(n, 2, std::move(group_of));
    CONGOS_ASSERT_MSG(part.well_formed(), "bit partition has an empty group");
    parts.push_back(std::move(part));
  }
  return PartitionSet(std::move(parts));
}

}  // namespace congos::partition
