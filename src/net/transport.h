// Transport abstraction: how one CONGOS node's datagrams reach its peers
// (DESIGN.md section 13).
//
// The protocol stack above this interface is transport-blind: a node frames
// its envelopes into datagrams (net/framing.h), hands them to a Transport,
// and gets peer datagrams back from poll(). Two backends implement it:
//
//   * SimTransport (net/sim_transport.h) carries datagrams through the
//     existing deterministic sim::Network - same delivery order, same
//     seeded link-fault layer, zero real I/O. It exists to prove the
//     abstraction costs nothing: the lockstep simulator and its golden
//     traces are untouched (the round engine keeps calling sim::Network
//     directly), and NodeRuntime tests run byte-identically in-process.
//   * UdpTransport (net/udp_transport.h) is a real nonblocking UDP socket
//     with per-peer send queues, used by the congos_d daemon.
//
// The interface is byte-level on purpose. Keeping envelope framing out of
// the transport means the codec (src/wire) stays the single source of truth
// for bytes-on-wire, and the socket-level fault shim (net/fault_shim.h) can
// drop/duplicate/delay whole datagrams without understanding them.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"
#include "net/datagram.h"

namespace congos::net {

/// Counters every backend maintains; the daemon dumps them in its stats
/// JSON and the cluster tests assert on them.
struct TransportStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// sendto()/submit failures after queueing (EWOULDBLOCK retries are not
  /// errors; they stay queued).
  std::uint64_t send_errors = 0;
  /// Datagrams addressed to an id outside the peer table.
  std::uint64_t no_route = 0;
  /// Datagrams evicted drop-oldest from a full per-peer send queue (the
  /// queue cap keeps a dead peer from growing memory without bound).
  std::uint64_t queue_overflow = 0;
  /// High-water mark of datagrams queued across all peers at once.
  std::uint64_t queue_hwm = 0;
  /// Kernel crossings on each side; the batched path's whole point is
  /// send_syscalls << datagrams_sent (asserted in test_net.cpp).
  std::uint64_t send_syscalls = 0;
  std::uint64_t recv_syscalls = 0;
};

/// Receiver of inbound datagrams, called from inside poll(). `from_hint` is
/// the peer id the backend attributes the datagram to (kNoProcess when the
/// source address matches no known peer - the frame header still carries
/// the authoritative `from`).
class DatagramSink {
 public:
  virtual ~DatagramSink() = default;
  virtual void on_datagram(ProcessId from_hint,
                           std::span<const std::uint8_t> data) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queue one datagram for peer `to`. Returns false when the datagram can
  /// never be delivered (unknown peer, oversized); transient backpressure
  /// is absorbed by the per-peer queues and is not an error.
  virtual bool send(ProcessId to, std::span<const std::uint8_t> datagram) = 0;

  /// Pooled-ownership variant: backends that queue take the handle instead
  /// of copying the bytes (the zero-copy send path, DESIGN.md section 13).
  /// The default forwards the span view, so span-only backends (the sim
  /// adapter, test doubles) need no changes.
  virtual bool send(ProcessId to, DatagramHandle datagram) {
    return send(to, std::span<const std::uint8_t>(datagram->bytes));
  }

  /// Flush pending sends and deliver every inbound datagram to `sink`.
  /// Blocks at most `timeout_ms` (0 = nonblocking probe); the sim backend
  /// ignores the timeout - its time is the simulated round clock. Returns
  /// the number of datagrams delivered to `sink`.
  virtual std::size_t poll(int timeout_ms, DatagramSink& sink) = 0;

  virtual const TransportStats& stats() const = 0;
};

}  // namespace congos::net
