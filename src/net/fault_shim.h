// Socket-level fault shim: the PR 5 link-fault plan applied to real
// datagrams (DESIGN.md section 13).
//
// A Transport decorator that re-implements sim::FaultConfig's per-envelope
// distribution at datagram granularity on the SEND side: drop, duplicate
// (the copy arrives 1..max_delay rounds late), delay, and the transient
// hash-scheduled partitions (partition_cuts is the exact same pure
// function the simulator uses, so both runtimes cut the same pairs in the
// same rounds). Randomness comes from a dedicated Rng seeded from
// (cfg.seed, self) - per-daemon deterministic given its send sequence,
// which is as strong as determinism gets once real sockets and wall
// clocks are involved; the chaos the shim adds is bounded and seeded
// rather than left to the kernel's mood.
//
// Delay units are rounds, mapped to wall time by the runtime advancing
// set_round() at each boundary; held datagrams release on the first
// send/poll after their due round, preserving the fault layer's FIFO
// per-due-round order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"
#include "sim/faults.h"
#include "sim/stats.h"

namespace congos::net {

class FaultShim final : public Transport {
 public:
  /// Decorates `inner` (not owned; must outlive the shim). `self` is the
  /// local process id - the partition-side hash and the duplicate/delay
  /// stream must differ per daemon or every node would drop the same
  /// k-th datagram.
  FaultShim(Transport* inner, const sim::FaultConfig& cfg, ProcessId self);

  /// Advance the shim's round clock; releases held datagrams that came due.
  void set_round(Round now);
  Round round() const { return now_; }

  std::uint64_t faults(sim::FaultKind f) const {
    return counters_[static_cast<std::size_t>(f)];
  }
  std::uint64_t fault_total() const;

  // -- Transport --------------------------------------------------------------

  bool send(ProcessId to, std::span<const std::uint8_t> datagram) override;
  bool send(ProcessId to, DatagramHandle datagram) override;
  std::size_t poll(int timeout_ms, DatagramSink& sink) override;
  const TransportStats& stats() const override { return inner_->stats(); }

 private:
  /// What the seeded distribution decided for one outgoing datagram. Both
  /// send() overloads share one decide() so the randomness stream - and
  /// therefore the fault mix - is identical whether callers pass spans or
  /// pooled handles.
  enum class Decision : std::uint8_t { kPass, kAbsorbed, kHold, kDupHold };

  /// A held datagram keeps its pooled buffer alive via the handle; the
  /// pool simply does not get the buffer back until the due round ships it.
  struct Held {
    Round due = 0;
    ProcessId to = kNoProcess;
    DatagramHandle datagram;
  };

  Decision decide(ProcessId to, Round* lateness);
  void release_due();

  Transport* inner_;
  sim::FaultConfig cfg_;
  ProcessId self_;
  Rng rng_;
  Round now_ = 0;
  std::vector<Held> held_;
  /// Materializes held copies of span sends (handle sends are held as-is).
  DatagramPool pool_;
  std::uint64_t counters_[sim::kNumFaultKinds] = {};
};

}  // namespace congos::net
