// Sim backend of the Transport interface: datagrams carried through the
// existing deterministic sim::Network (DESIGN.md section 13).
//
// A SimLink owns one sim::Network with one endpoint per process; each
// endpoint is a Transport. send() wraps the datagram bytes in an opaque
// payload and submits a regular envelope; advance_round() runs the
// network's delivery phase (including the seeded link-fault layer when
// armed) and sorts the delivered datagrams into the endpoints' receive
// queues. Everything is deterministic: same sends in the same order =>
// same deliveries, byte for byte, which is what lets the NodeRuntime test
// suite pin real-wire behaviour without a socket in sight.
//
// The round engine does NOT run on top of this adapter - sim::Engine keeps
// calling sim::Network directly, so the golden traces cannot move. The
// adapter proves the Transport interface adds nothing the simulator lacks,
// and gives multi-NodeRuntime tests a lockstep in-process cluster.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"
#include "sim/network.h"
#include "sim/stats.h"

namespace congos::net {

/// The datagram as a sim payload: opaque bytes, sized like the real thing
/// so the network's byte accounting tracks actual datagram sizes.
struct DatagramPayload final : sim::Payload {
  explicit DatagramPayload(std::vector<std::uint8_t> b)
      : sim::Payload(sim::PayloadKind::kOpaque), bytes(std::move(b)) {}
  std::uint64_t encoded_size() const override { return bytes.size(); }
  std::uint64_t modeled_size() const override { return bytes.size(); }

  std::vector<std::uint8_t> bytes;
};

class SimLink {
 public:
  explicit SimLink(std::size_t n, std::uint64_t seed = 0x51f7ull);
  ~SimLink();

  /// Arm the network's seeded link-fault layer (drop/dup/delay/partition) -
  /// the same FaultConfig the lockstep simulator uses.
  void set_faults(const sim::FaultConfig& cfg) { network_.set_faults(cfg); }

  std::size_t n() const { return endpoints_.size(); }
  Transport& endpoint(ProcessId p);
  sim::Network& network() { return network_; }
  Round round() const { return round_; }

  /// Delivers everything submitted this round into the endpoints' receive
  /// queues and advances the round clock.
  void advance_round();

 private:
  class Endpoint;

  sim::MessageStats stats_;
  sim::Network network_;
  Rng rng_;
  Round round_ = 0;
  // All-clear lifecycle filters: the transport layer has no crash/restart
  // notion; process lifecycle lives above it - NodeRuntime's journal
  // checkpoint + resume (DESIGN.md section 14), which is exactly why
  // tests/test_checkpoint.cpp can crash and resume a node over this link
  // without the link itself noticing.
  std::vector<sim::PartialDelivery> all_deliver_;
  DynamicBitset no_filter_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace congos::net
