#include "net/control.h"

#include <charconv>
#include <sstream>

#include "wire/wire.h"

namespace congos::net {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

bool from_hex(const std::string& hex, std::vector<std::uint8_t>* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_val(hex[i]);
    const int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::string bitset_to_hex(const DynamicBitset& b) {
  wire::WriteSink s;
  s.bitset(b);
  return to_hex(s.data());
}

bool bitset_from_hex(const std::string& hex, DynamicBitset* out) {
  std::vector<std::uint8_t> bytes;
  if (!from_hex(hex, &bytes)) return false;
  wire::ReadSink s(bytes);
  s.bitset(*out);
  return s.ok() && s.remaining() == 0;
}

std::int64_t Line::get_int(const std::string& key, bool* ok) const {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    *ok = false;
    return 0;
  }
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(
      it->second.data(), it->second.data() + it->second.size(), v);
  if (ec != std::errc{} || ptr != it->second.data() + it->second.size()) {
    *ok = false;
    return 0;
  }
  return v;
}

std::string Line::get(const std::string& key, bool* ok) const {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    *ok = false;
    return {};
  }
  return it->second;
}

bool parse_line(const std::string& text, Line* out) {
  out->verb.clear();
  out->kv.clear();
  std::istringstream in(text);
  if (!(in >> out->verb)) return false;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    out->kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return true;
}

std::string encode_start(const StartCommand& cmd) {
  std::ostringstream out;
  out << "start epoch=" << cmd.epoch_ms << " round-ms=" << cmd.round_ms
      << " peers=";
  for (std::size_t i = 0; i < cmd.peer_ports.size(); ++i) {
    if (i > 0) out << ',';
    out << cmd.peer_ports[i];
  }
  return out.str();
}

bool parse_start(const Line& line, StartCommand* out, std::string* error) {
  bool ok = true;
  out->epoch_ms = line.get_int("epoch", &ok);
  out->round_ms = line.get_int("round-ms", &ok);
  const std::string peers = line.get("peers", &ok);
  if (!ok || line.verb != "start" || out->round_ms <= 0) {
    if (error != nullptr) *error = "bad start command";
    return false;
  }
  out->peer_ports.clear();
  std::size_t pos = 0;
  while (pos <= peers.size()) {
    const std::size_t comma = peers.find(',', pos);
    const std::string part =
        peers.substr(pos, comma == std::string::npos ? comma : comma - pos);
    unsigned v = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), v);
    if (ec != std::errc{} || ptr != part.data() + part.size() || v == 0 ||
        v > 65535) {
      if (error != nullptr) *error = "bad peer port '" + part + "'";
      return false;
    }
    out->peer_ports.push_back(static_cast<std::uint16_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

std::string encode_inject(const InjectCommand& cmd) {
  std::ostringstream out;
  out << "inject seq=" << cmd.seq << " deadline=" << cmd.deadline
      << " dest=" << bitset_to_hex(cmd.dest) << " data=" << to_hex(cmd.data);
  return out.str();
}

bool parse_inject(const Line& line, InjectCommand* out, std::string* error) {
  bool ok = true;
  out->seq = static_cast<std::uint64_t>(line.get_int("seq", &ok));
  out->deadline = line.get_int("deadline", &ok);
  const std::string dest = line.get("dest", &ok);
  const std::string data = line.get("data", &ok);
  if (!ok || line.verb != "inject" || out->deadline <= 0 ||
      !bitset_from_hex(dest, &out->dest) || !from_hex(data, &out->data)) {
    if (error != nullptr) *error = "bad inject command";
    return false;
  }
  return true;
}

std::string encode_inject_event(Round round, const sim::Rumor& rumor) {
  std::ostringstream out;
  out << "inject round=" << round << " src=" << rumor.uid.source
      << " seq=" << rumor.uid.seq << " deadline=" << rumor.deadline
      << " dest=" << bitset_to_hex(rumor.dest) << " data=" << to_hex(rumor.data);
  return out.str();
}

std::string encode_deliver_event(Round round, ProcessId at, const RumorUid& uid,
                                 std::span<const std::uint8_t> data) {
  std::ostringstream out;
  out << "deliver round=" << round << " at=" << at << " src=" << uid.source
      << " seq=" << uid.seq << " data=" << to_hex(data);
  return out.str();
}

std::string encode_recv_event(Round round, std::span<const std::uint8_t> frame) {
  std::ostringstream out;
  out << "recv round=" << round << " frame=" << to_hex(frame);
  return out.str();
}

bool parse_inject_event(const Line& line, sim::Rumor* out, Round* round,
                        std::string* error) {
  bool ok = true;
  *round = line.get_int("round", &ok);
  out->uid.source = static_cast<ProcessId>(line.get_int("src", &ok));
  out->uid.seq = static_cast<std::uint64_t>(line.get_int("seq", &ok));
  out->deadline = line.get_int("deadline", &ok);
  const std::string dest = line.get("dest", &ok);
  const std::string data = line.get("data", &ok);
  if (!ok || line.verb != "inject" || !bitset_from_hex(dest, &out->dest) ||
      !from_hex(data, &out->data)) {
    if (error != nullptr) *error = "bad inject event";
    return false;
  }
  out->injected_at = *round;
  return true;
}

}  // namespace congos::net
