#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/framing.h"

namespace congos::net {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  return sa;
}

}  // namespace

UdpTransport::~UdpTransport() { close(); }

bool UdpTransport::open(std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in sa = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    close();
    return false;
  }
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + std::strerror(errno);
    }
    close();
    return false;
  }
  local_port_ = ntohs(sa.sin_port);
  recv_buf_.resize(kMaxDatagramBytes + 1);
  return true;
}

void UdpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  local_port_ = 0;
  for (auto& [id, peer] : peers_) peer.queue.clear();
  queued_ = 0;
}

void UdpTransport::set_peer(ProcessId id, std::uint16_t port) {
  auto& peer = peers_[id];
  if (peer.port != 0) port_to_id_.erase(peer.port);
  peer.port = port;
  port_to_id_[port] = id;
}

bool UdpTransport::send_now(std::uint16_t port,
                            const std::vector<std::uint8_t>& datagram,
                            bool* fatal) {
  *fatal = false;
  sockaddr_in sa = loopback(port);
  const ssize_t n = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                             reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  if (n == static_cast<ssize_t>(datagram.size())) {
    ++stats_.datagrams_sent;
    stats_.bytes_sent += datagram.size();
    return true;
  }
  if (n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN || errno == ENOBUFS)) {
    return false;  // transient: stay queued
  }
  // ECONNREFUSED (peer port closed) and friends: the datagram is gone the
  // way a lossy link loses it; drop it and count the error.
  ++stats_.send_errors;
  *fatal = true;
  return false;
}

bool UdpTransport::send(ProcessId to, std::span<const std::uint8_t> datagram) {
  if (fd_ < 0) return false;
  auto it = peers_.find(to);
  if (it == peers_.end() || it->second.port == 0) {
    ++stats_.no_route;
    return false;
  }
  if (datagram.size() > kMaxDatagramBytes) {
    ++stats_.send_errors;
    return false;
  }
  Peer& peer = it->second;
  if (peer.queue.empty()) {
    // Fast path: try the wire directly; queue only on backpressure.
    bool fatal = false;
    std::vector<std::uint8_t> copy(datagram.begin(), datagram.end());
    if (send_now(peer.port, copy, &fatal)) return true;
    if (fatal) return true;  // counted, intentionally not retried
    peer.queue.push_back(std::move(copy));
    ++queued_;
    return true;
  }
  peer.queue.emplace_back(datagram.begin(), datagram.end());
  ++queued_;
  return true;
}

bool UdpTransport::flush() {
  if (fd_ < 0 || queued_ == 0) return true;
  for (auto& [id, peer] : peers_) {
    while (!peer.queue.empty()) {
      bool fatal = false;
      if (send_now(peer.port, peer.queue.front(), &fatal)) {
        peer.queue.pop_front();
        --queued_;
      } else if (fatal) {
        peer.queue.pop_front();
        --queued_;
      } else {
        return false;  // socket buffer full; retry on the next poll
      }
    }
  }
  return true;
}

std::size_t UdpTransport::drain(DatagramSink& sink) {
  std::size_t delivered = 0;
  while (fd_ >= 0) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    const ssize_t n =
        ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) break;  // EAGAIN or a transient error: nothing more to read
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    ProcessId hint = kNoProcess;
    const auto it = port_to_id_.find(ntohs(from.sin_port));
    if (it != port_to_id_.end()) hint = it->second;
    sink.on_datagram(hint, {recv_buf_.data(), static_cast<std::size_t>(n)});
    ++delivered;
  }
  return delivered;
}

std::size_t UdpTransport::poll(int timeout_ms, DatagramSink& sink) {
  if (fd_ < 0) return 0;
  flush();
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  if (want_write()) pfd.events |= POLLOUT;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0) return 0;
  if ((pfd.revents & POLLOUT) != 0) flush();
  return drain(sink);
}

const TransportStats& UdpTransport::stats() const { return stats_; }

}  // namespace congos::net
