#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/framing.h"

namespace congos::net {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  return sa;
}

/// One receive slot: room for a max datagram plus one byte so oversize
/// input is detectable as truncation by the frame layer.
constexpr std::size_t kRecvSlot = kMaxDatagramBytes + 1;

bool env_forbids_batching() {
  const char* v = std::getenv("CONGOS_UDP_NO_BATCH");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

/// Preallocated kernel-interface arrays for sendmmsg/recvmmsg: filled in
/// place on every batch, never reallocated after open() (the zero-alloc
/// steady state covers the batched path too).
struct UdpTransport::BatchScratch {
#ifdef __linux__
  std::array<iovec, kMaxBatch> send_iovs;
  std::array<sockaddr_in, kMaxBatch> send_addrs;
  std::array<mmsghdr, kMaxBatch> send_msgs;
  std::array<Peer*, kMaxBatch> entry_peer;

  std::vector<std::uint8_t> recv_bufs;  // kMaxBatch contiguous kRecvSlot slots
  std::array<iovec, kMaxBatch> recv_iovs;
  std::array<sockaddr_in, kMaxBatch> recv_addrs;
  std::array<mmsghdr, kMaxBatch> recv_msgs;

  BatchScratch() { recv_bufs.resize(kMaxBatch * kRecvSlot); }
#endif
};

UdpTransport::UdpTransport() = default;

UdpTransport::~UdpTransport() { close(); }

bool UdpTransport::open(std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Best-effort buffer sizing: a whole batched send phase should fit in the
  // socket buffers so loopback never drops under normal load. The kernel
  // clamps to its rmem/wmem limits; failure is not fatal.
  const int buf = socket_buffer_;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof buf);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof buf);
  sockaddr_in sa = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    close();
    return false;
  }
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + std::strerror(errno);
    }
    close();
    return false;
  }
  local_port_ = ntohs(sa.sin_port);
  recv_buf_.resize(kRecvSlot);
  set_batching(!env_forbids_batching());
  return true;
}

void UdpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  local_port_ = 0;
  for (auto& [id, peer] : peers_) peer.queue.clear();
  queued_ = 0;
}

void UdpTransport::set_peer(ProcessId id, std::uint16_t port) {
  auto& peer = peers_[id];
  if (peer.port != 0) port_to_id_.erase(peer.port);
  peer.port = port;
  port_to_id_[port] = id;
}

void UdpTransport::set_batching(bool on) {
#ifndef __linux__
  on = false;  // sendmmsg/recvmmsg are Linux syscalls
#endif
  if (on && scratch_ == nullptr) scratch_ = std::make_unique<BatchScratch>();
  batching_ = on && scratch_ != nullptr;
}

UdpTransport::WireResult UdpTransport::wire_send(std::uint16_t port,
                                                 const std::uint8_t* data,
                                                 std::size_t len) {
  sockaddr_in sa = loopback(port);
  const ssize_t n = ::sendto(fd_, data, len, 0,
                             reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  if (n == static_cast<ssize_t>(len)) return WireResult::kSent;
  if (n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN || errno == ENOBUFS)) {
    return WireResult::kAgain;  // transient: stay queued
  }
  // ECONNREFUSED (peer port closed) and friends: the datagram is gone the
  // way a lossy link loses it.
  return WireResult::kFatal;
}

UdpTransport::Peer* UdpTransport::admit(ProcessId to, std::size_t len) {
  if (fd_ < 0) return nullptr;
  auto it = peers_.find(to);
  if (it == peers_.end() || it->second.port == 0) {
    ++stats_.no_route;
    return nullptr;
  }
  if (len > kMaxDatagramBytes) {
    ++stats_.send_errors;
    return nullptr;
  }
  return &it->second;
}

void UdpTransport::enqueue(Peer& peer, DatagramHandle d) {
  if (queue_cap_ > 0 && peer.queue.size() >= queue_cap_) {
    peer.queue.pop_front();
    --queued_;
    ++stats_.queue_overflow;
  }
  peer.queue.push_back(std::move(d));
  ++queued_;
  if (queued_ > stats_.queue_hwm) stats_.queue_hwm = queued_;
}

void UdpTransport::pop_sent(Peer& peer) {
  peer.queue.pop_front();
  --queued_;
}

bool UdpTransport::send(ProcessId to, std::span<const std::uint8_t> datagram) {
  Peer* peer = admit(to, datagram.size());
  if (peer == nullptr) return false;
  if (!batching_ && peer->queue.empty()) {
    // Fast path: write the wire straight from the caller's span - no copy,
    // no buffer. Only a backpressured datagram is materialized for queueing.
    ++stats_.send_syscalls;
    const WireResult r = wire_send(peer->port, datagram.data(), datagram.size());
    if (r == WireResult::kSent) {
      ++stats_.datagrams_sent;
      stats_.bytes_sent += datagram.size();
      return true;
    }
    if (r == WireResult::kFatal) {
      ++stats_.send_errors;
      return true;  // counted, intentionally not retried
    }
  }
  DatagramHandle d = pool_.acquire();
  d->bytes.assign(datagram.begin(), datagram.end());
  enqueue(*peer, std::move(d));
  return true;
}

bool UdpTransport::send(ProcessId to, DatagramHandle datagram) {
  if (datagram == nullptr) return false;
  Peer* peer = admit(to, datagram->bytes.size());
  if (peer == nullptr) return false;
  if (!batching_ && peer->queue.empty()) {
    ++stats_.send_syscalls;
    const WireResult r =
        wire_send(peer->port, datagram->bytes.data(), datagram->bytes.size());
    if (r == WireResult::kSent) {
      ++stats_.datagrams_sent;
      stats_.bytes_sent += datagram->bytes.size();
      return true;
    }
    if (r == WireResult::kFatal) {
      ++stats_.send_errors;
      return true;
    }
  }
  // Batched mode defers every datagram to the next flush() so sendmmsg can
  // gather a full batch; the handle moves into the queue - still no copy.
  enqueue(*peer, std::move(datagram));
  return true;
}

bool UdpTransport::flush() {
  if (fd_ < 0 || queued_ == 0) return true;
  return batching_ ? flush_batched() : flush_single();
}

bool UdpTransport::flush_single() {
  bool all_drained = true;
  for (auto& [id, peer] : peers_) {
    while (!peer.queue.empty()) {
      ++stats_.send_syscalls;
      const DatagramBuffer& d = *peer.queue.front();
      const WireResult r = wire_send(peer.port, d.bytes.data(), d.bytes.size());
      if (r == WireResult::kSent) {
        ++stats_.datagrams_sent;
        stats_.bytes_sent += d.bytes.size();
        pop_sent(peer);
      } else if (r == WireResult::kFatal) {
        ++stats_.send_errors;
        pop_sent(peer);
      } else {
        // This peer is backpressured; move on to the next peer's queue
        // instead of stalling everyone behind it (head-of-line fix).
        all_drained = false;
        break;
      }
    }
  }
  return all_drained;
}

bool UdpTransport::flush_batched() {
#ifndef __linux__
  return flush_single();
#else
  BatchScratch& sc = *scratch_;
  while (queued_ > 0) {
    // Gather up to kMaxBatch queue fronts across all peers. Entries for one
    // peer appear in queue order, so popping fronts in entry order below
    // preserves per-peer FIFO.
    unsigned prepared = 0;
    for (auto& [id, peer] : peers_) {
      for (std::size_t qi = peer.queue.head;
           qi < peer.queue.items.size() && prepared < kMaxBatch; ++qi) {
        DatagramBuffer& d = *peer.queue.items[qi];
        sc.send_addrs[prepared] = loopback(peer.port);
        iovec& iov = sc.send_iovs[prepared];
        iov.iov_base = d.bytes.data();
        iov.iov_len = d.bytes.size();
        mmsghdr& m = sc.send_msgs[prepared];
        std::memset(&m, 0, sizeof m);
        m.msg_hdr.msg_name = &sc.send_addrs[prepared];
        m.msg_hdr.msg_namelen = sizeof(sockaddr_in);
        m.msg_hdr.msg_iov = &iov;
        m.msg_hdr.msg_iovlen = 1;
        sc.entry_peer[prepared] = &peer;
        ++prepared;
      }
      if (prepared == kMaxBatch) break;
    }
    if (prepared == 0) return true;
    ++stats_.send_syscalls;
    const int rc = ::sendmmsg(fd_, sc.send_msgs.data(), prepared, 0);
    if (rc < 0) {
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        // Capability probe failed: fall back to single syscalls for good.
        batching_ = false;
        return flush_single();
      }
      if (errno == EINTR) continue;
      if (errno == EWOULDBLOCK || errno == EAGAIN || errno == ENOBUFS) {
        return false;  // socket buffer full; retry on the next poll
      }
      // sendmmsg reports an error only when the FIRST message fails: drop
      // that datagram (a lossy link losing it), count, keep flushing.
      ++stats_.send_errors;
      pop_sent(*sc.entry_peer[0]);
      continue;
    }
    for (int i = 0; i < rc; ++i) {
      ++stats_.datagrams_sent;
      stats_.bytes_sent += sc.send_iovs[static_cast<std::size_t>(i)].iov_len;
      pop_sent(*sc.entry_peer[static_cast<std::size_t>(i)]);
    }
    if (static_cast<unsigned>(rc) < prepared) {
      return false;  // kernel stopped mid-batch: backpressure
    }
  }
  return true;
#endif
}

std::size_t UdpTransport::drain(DatagramSink& sink) {
  if (fd_ < 0) return 0;
  return batching_ ? drain_batched(sink) : drain_single(sink);
}

std::size_t UdpTransport::drain_single(DatagramSink& sink) {
  std::size_t delivered = 0;
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    ++stats_.recv_syscalls;
    const ssize_t n =
        ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) break;  // EAGAIN or a transient error: nothing more to read
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    ProcessId hint = kNoProcess;
    const auto it = port_to_id_.find(ntohs(from.sin_port));
    if (it != port_to_id_.end()) hint = it->second;
    sink.on_datagram(hint, {recv_buf_.data(), static_cast<std::size_t>(n)});
    ++delivered;
  }
  return delivered;
}

std::size_t UdpTransport::drain_batched(DatagramSink& sink) {
#ifndef __linux__
  return drain_single(sink);
#else
  BatchScratch& sc = *scratch_;
  std::size_t delivered = 0;
  for (;;) {
    // The kernel rewrites msg_namelen and msg_len; reset the headers fully
    // before each crossing.
    for (std::size_t i = 0; i < kMaxBatch; ++i) {
      iovec& iov = sc.recv_iovs[i];
      iov.iov_base = sc.recv_bufs.data() + i * kRecvSlot;
      iov.iov_len = kRecvSlot;
      mmsghdr& m = sc.recv_msgs[i];
      std::memset(&m, 0, sizeof m);
      m.msg_hdr.msg_name = &sc.recv_addrs[i];
      m.msg_hdr.msg_namelen = sizeof(sockaddr_in);
      m.msg_hdr.msg_iov = &iov;
      m.msg_hdr.msg_iovlen = 1;
    }
    ++stats_.recv_syscalls;
    const int rc = ::recvmmsg(fd_, sc.recv_msgs.data(),
                              static_cast<unsigned>(kMaxBatch), 0, nullptr);
    if (rc < 0) {
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        batching_ = false;
        return delivered + drain_single(sink);
      }
      break;  // EAGAIN/EINTR: nothing more to read now
    }
    if (rc == 0) break;
    for (int i = 0; i < rc; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::size_t n = sc.recv_msgs[idx].msg_len;
      ++stats_.datagrams_received;
      stats_.bytes_received += n;
      ProcessId hint = kNoProcess;
      const auto it = port_to_id_.find(ntohs(sc.recv_addrs[idx].sin_port));
      if (it != port_to_id_.end()) hint = it->second;
      sink.on_datagram(hint, {sc.recv_bufs.data() + idx * kRecvSlot, n});
      ++delivered;
    }
    if (rc < static_cast<int>(kMaxBatch)) break;
  }
  return delivered;
#endif
}

std::size_t UdpTransport::poll(int timeout_ms, DatagramSink& sink) {
  if (fd_ < 0) return 0;
  flush();
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  if (want_write()) pfd.events |= POLLOUT;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0) return 0;
  if ((pfd.revents & POLLOUT) != 0) flush();
  return drain(sink);
}

const TransportStats& UdpTransport::stats() const { return stats_; }

}  // namespace congos::net
