#include "net/runtime.h"

#include <sstream>
#include <utility>

#include "net/control.h"
#include "net/framing.h"
#include "wire/compress.h"
#include "wire/envelope.h"

namespace congos::net {

// Routes one send phase's envelopes into per-destination coalesced
// datagrams. Builders live on the runtime so their buffers persist across
// rounds.
class NodeRuntime::PhaseSender final : public sim::Sender {
 public:
  PhaseSender(NodeRuntime* rt, std::vector<DatagramBuilder>* builders)
      : rt_(rt), builders_(builders) {}

  void send(sim::Envelope e) override {
    if (e.to >= builders_->size()) {
      ++rt_->encode_errors_;
      return;
    }
    const ProcessId to = e.to;
    const bool ok = (*builders_)[to].add(
        e, rt_->now_, [&](DatagramHandle d) { rt_->ship(to, std::move(d)); });
    if (!ok) ++rt_->encode_errors_;
  }

 private:
  NodeRuntime* rt_;
  std::vector<DatagramBuilder>* builders_;
};

NodeRuntime::NodeRuntime(const NodeConfig& cfg, Transport* transport,
                         FaultShim* shim)
    : cfg_(cfg), transport_(transport), shim_(shim) {}

NodeRuntime::~NodeRuntime() {
  if (log_ != nullptr) std::fclose(log_);
}

bool NodeRuntime::start(std::string* error) {
  if (cfg_.compress && !wire::lz4_available()) {
    if (error != nullptr) {
      *error = "compression requested but LZ4 is unavailable in this process";
    }
    return false;
  }
  if (!cfg_.log_path.empty()) {
    log_ = std::fopen(cfg_.log_path.c_str(), "w");
    if (log_ == nullptr) {
      if (error != nullptr) *error = "cannot open log '" + cfg_.log_path + "'";
      return false;
    }
  }
  ccfg_ = std::make_shared<const core::CongosConfig>(cfg_.congos);
  partitions_ = core::CongosProcess::build_partitions(cfg_.n, *ccfg_);
  // Same per-process seed schedule as harness::run_scenario: process p gets
  // the (p+1)-th draw of a seeder over the system seed, so an in-process
  // cluster and a daemon cluster with equal configs run identical protocols.
  Rng seeder(cfg_.seed);
  std::uint64_t pseed = seeder.next();
  for (ProcessId p = 0; p < cfg_.id; ++p) pseed = seeder.next();
  process_ = std::make_unique<core::CongosProcess>(cfg_.id, ccfg_, partitions_,
                                                   pseed, this);
  process_->on_start(0);
  run_send_phase();
  return true;
}

void NodeRuntime::handle_datagram(ProcessId /*from_hint*/,
                                  std::span<const std::uint8_t> datagram) {
  std::span<const std::uint8_t> frames;
  switch (unwrap_datagram(datagram, &decompress_scratch_, &frames)) {
    case DatagramKind::kPlain:
      break;
    case DatagramKind::kDecompressed:
      ++compressed_received_;
      break;
    case DatagramKind::kUnsupported:
      ++unsupported_datagrams_;
      return;
    case DatagramKind::kMalformed:
      ++malformed_datagrams_;
      return;
  }
  FrameSplitter splitter(frames);
  std::span<const std::uint8_t> frame;
  for (;;) {
    const FrameSplitter::Status st = splitter.next(&frame);
    if (st == FrameSplitter::Status::kDone) return;
    if (st != FrameSplitter::Status::kFrame) {
      ++malformed_datagrams_;
      return;
    }
    wire::DecodedEnvelope dec;
    if (!wire::decode_envelope(frame.data(), frame.size(), &dec)) {
      ++decode_errors_;
      continue;
    }
    if (dec.env.to != cfg_.id) {
      ++misrouted_;
      continue;
    }
    ++frames_received_;
    log_line(encode_recv_event(now_, frame));
    inbox_.push_back(std::move(dec.env));
  }
}

void NodeRuntime::run_send_phase() {
  if (builders_.size() != cfg_.n) {
    builders_.resize(cfg_.n);
    for (DatagramBuilder& b : builders_) b.set_pool(&dgram_pool_);
  }
  PhaseSender sender(this, &builders_);
  process_->send_phase(now_, sender);
  for (ProcessId to = 0; to < builders_.size(); ++to) {
    builders_[to].finish([&](DatagramHandle d) { ship(to, std::move(d)); });
  }
}

void NodeRuntime::ship(ProcessId to, DatagramHandle d) {
  if (cfg_.compress && compress_datagram(&d->bytes, &compress_scratch_)) {
    ++datagrams_compressed_;
  }
  transport_->send(to, std::move(d));
}

void NodeRuntime::tick() {
  process_->receive_phase(now_, inbox_);
  inbox_.clear();
  ++now_;
  if (shim_ != nullptr) shim_->set_round(now_);
  if (!done()) run_send_phase();
}

void NodeRuntime::advance_to(Round target) {
  if (cfg_.max_rounds > 0 && target > cfg_.max_rounds) target = cfg_.max_rounds;
  while (now_ < target) tick();
}

void NodeRuntime::inject(std::uint64_t seq, Round deadline, DynamicBitset dest,
                         std::vector<std::uint8_t> data) {
  sim::Rumor rumor;
  rumor.uid = RumorUid{cfg_.id, seq};
  rumor.data = std::move(data);
  rumor.deadline = deadline;
  rumor.dest = std::move(dest);
  rumor.injected_at = now_;
  log_line(encode_inject_event(now_, rumor));
  ++injections_;
  process_->inject(rumor);
}

void NodeRuntime::on_rumor_delivered(ProcessId at, const RumorUid& uid,
                                     Round when,
                                     std::span<const std::uint8_t> data) {
  ++deliveries_;
  log_line(encode_deliver_event(when, at, uid, data));
}

bool NodeRuntime::healthy() const {
  return decode_errors_ == 0 && malformed_datagrams_ == 0 &&
         encode_errors_ == 0 && misrouted_ == 0 &&
         unsupported_datagrams_ == 0 &&
         (process_ == nullptr || process_->filter_drops() == 0);
}

std::string NodeRuntime::stats_json() const {
  const TransportStats& t = transport_->stats();
  std::ostringstream out;
  out << "{\"id\":" << cfg_.id << ",\"n\":" << cfg_.n
      << ",\"rounds\":" << now_ << ",\"healthy\":" << (healthy() ? "true" : "false")
      << ",\"injections\":" << injections_ << ",\"deliveries\":" << deliveries_
      << ",\"frames_received\":" << frames_received_
      << ",\"decode_errors\":" << decode_errors_
      << ",\"malformed_datagrams\":" << malformed_datagrams_
      << ",\"misrouted\":" << misrouted_
      << ",\"encode_errors\":" << encode_errors_
      << ",\"datagrams_compressed\":" << datagrams_compressed_
      << ",\"compressed_received\":" << compressed_received_
      << ",\"unsupported_datagrams\":" << unsupported_datagrams_
      << ",\"transport\":{\"datagrams_sent\":" << t.datagrams_sent
      << ",\"datagrams_received\":" << t.datagrams_received
      << ",\"bytes_sent\":" << t.bytes_sent
      << ",\"bytes_received\":" << t.bytes_received
      << ",\"send_errors\":" << t.send_errors << ",\"no_route\":" << t.no_route
      << ",\"queue_overflow\":" << t.queue_overflow
      << ",\"queue_hwm\":" << t.queue_hwm
      << ",\"send_syscalls\":" << t.send_syscalls
      << ",\"recv_syscalls\":" << t.recv_syscalls << "}";
  if (process_ != nullptr) {
    const core::CgCounters& c = process_->counters();
    out << ",\"congos\":{\"injected\":" << c.injected
        << ",\"confirmed\":" << c.confirmed << ",\"shoots\":" << c.shoots
        << ",\"delivered\":" << c.delivered
        << ",\"reassembled\":" << c.reassembled
        << ",\"filter_drops\":" << process_->filter_drops()
        << ",\"duplicates_suppressed\":" << process_->duplicates_suppressed()
        << "}";
  }
  if (shim_ != nullptr) {
    out << ",\"faults\":{\"dropped\":" << shim_->faults(sim::FaultKind::kDropped)
        << ",\"duplicated\":" << shim_->faults(sim::FaultKind::kDuplicated)
        << ",\"delayed\":" << shim_->faults(sim::FaultKind::kDelayed)
        << ",\"partitioned\":"
        << shim_->faults(sim::FaultKind::kPartitioned) << "}";
  }
  out << "}";
  return out.str();
}

void NodeRuntime::log_line(const std::string& line) {
  if (log_ == nullptr) return;
  std::fputs(line.c_str(), log_);
  std::fputc('\n', log_);
}

void NodeRuntime::flush_log() {
  if (log_ != nullptr) std::fflush(log_);
}

}  // namespace congos::net
