#include "net/runtime.h"

#include <sstream>
#include <utility>

#include "net/control.h"
#include "net/framing.h"
#include "wire/compress.h"
#include "wire/envelope.h"

namespace congos::net {

// Routes one send phase's envelopes into per-destination coalesced
// datagrams. Builders live on the runtime so their buffers persist across
// rounds.
class NodeRuntime::PhaseSender final : public sim::Sender {
 public:
  PhaseSender(NodeRuntime* rt, std::vector<DatagramBuilder>* builders)
      : rt_(rt), builders_(builders) {}

  void send(sim::Envelope e) override {
    if (e.to >= builders_->size()) {
      ++rt_->encode_errors_;
      return;
    }
    const ProcessId to = e.to;
    const bool ok = (*builders_)[to].add(
        e, rt_->now_, [&](DatagramHandle d) { rt_->ship(to, std::move(d)); });
    if (!ok) ++rt_->encode_errors_;
  }

 private:
  NodeRuntime* rt_;
  std::vector<DatagramBuilder>* builders_;
};

NodeRuntime::NodeRuntime(const NodeConfig& cfg, Transport* transport,
                         FaultShim* shim)
    : cfg_(cfg), transport_(transport), shim_(shim) {}

NodeRuntime::~NodeRuntime() {
  if (log_ != nullptr) std::fclose(log_);
}

bool NodeRuntime::boot(const char* log_mode, std::string* error) {
  if (cfg_.compress && !wire::lz4_available()) {
    if (error != nullptr) {
      *error = "compression requested but LZ4 is unavailable in this process";
    }
    return false;
  }
  if (!cfg_.log_path.empty()) {
    log_ = std::fopen(cfg_.log_path.c_str(), log_mode);
    if (log_ == nullptr) {
      if (error != nullptr) *error = "cannot open log '" + cfg_.log_path + "'";
      return false;
    }
  }
  journaling_ = cfg_.journal || !cfg_.state_path.empty();
  last_heard_.assign(cfg_.n, kNoRound);
  ccfg_ = std::make_shared<const core::CongosConfig>(cfg_.congos);
  partitions_ = core::CongosProcess::build_partitions(cfg_.n, *ccfg_);
  // Same per-process seed schedule as harness::run_scenario: process p gets
  // the (p+1)-th draw of a seeder over the system seed, so an in-process
  // cluster and a daemon cluster with equal configs run identical protocols.
  Rng seeder(cfg_.seed);
  std::uint64_t pseed = seeder.next();
  for (ProcessId p = 0; p < cfg_.id; ++p) pseed = seeder.next();
  process_ = std::make_unique<core::CongosProcess>(cfg_.id, ccfg_, partitions_,
                                                   pseed, this);
  return true;
}

bool NodeRuntime::start(std::string* error) {
  if (!boot("w", error)) return false;
  process_->on_start(0);
  run_send_phase();
  return true;
}

bool NodeRuntime::resume(const NodeCheckpoint& ck, std::string* error) {
  if (started()) {
    if (error != nullptr) *error = "resume on an already-started runtime";
    return false;
  }
  if (ck.id != cfg_.id || ck.n != cfg_.n || ck.seed != cfg_.seed ||
      ck.tau != cfg_.congos.tau ||
      ck.allow_degenerate != cfg_.congos.allow_degenerate ||
      !(ck.retransmit == cfg_.congos.retransmit) ||
      ck.max_rounds != cfg_.max_rounds) {
    if (error != nullptr) {
      *error = "state file config binding does not match this daemon's flags";
    }
    return false;
  }
  if (clock_bound_ &&
      !validate_checkpoint_clock(ck, epoch_ms_, round_ms_, error)) {
    return false;
  }
  // Append: the pre-crash event-log lines are the audit evidence for
  // everything this incarnation is about to *not* re-log.
  if (!boot("a", error)) return false;

  // Replay the journal through the live phase machinery. Determinism in
  // (seed, journal) makes the result byte-identical to the pre-crash state;
  // replaying_ keeps the re-run invisible on the wire and in the log.
  replaying_ = true;
  process_->on_start(0);
  run_send_phase();
  std::size_t next = 0;
  for (Round r = 0; r < ck.round; ++r) {
    // Journal order within a round is live order: injections landed after
    // send_phase(r), frames were consumed by receive_phase(r) in tick().
    while (next < ck.events.size() && ck.events[next].round == r) {
      apply_journal_event(ck.events[next++]);
    }
    tick();
  }
  // Events at the checkpoint round itself are the pending inbox (and any
  // round-R injections): applied, not yet consumed - exactly where the
  // previous incarnation stood between send_phase(R) and receive_phase(R).
  while (next < ck.events.size()) apply_journal_event(ck.events[next++]);
  replaying_ = false;

  journal_ = ck.events;
  resume_count_ = ck.resume_count + 1;
  resumed_at_ = ck.round;
  return true;
}

void NodeRuntime::apply_journal_event(const CheckpointEvent& e) {
  if (e.kind == CheckpointEvent::Kind::kInject) {
    sim::Rumor rumor;
    rumor.uid = RumorUid{cfg_.id, e.seq};
    rumor.data = e.data;
    rumor.deadline = e.deadline;
    rumor.dest = e.dest;
    rumor.injected_at = now_;
    ++injections_;
    process_->inject(rumor);
    return;
  }
  wire::DecodedEnvelope dec;
  if (!wire::decode_envelope(e.frame.data(), e.frame.size(), &dec) ||
      dec.env.to != cfg_.id) {
    // The frame was validated when first accepted and the file passed its
    // checksum, so this can only be a logic regression - surface it.
    ++decode_errors_;
    return;
  }
  ++frames_received_;
  if (dec.env.from < last_heard_.size()) last_heard_[dec.env.from] = now_;
  inbox_.push_back(std::move(dec.env));
}

void NodeRuntime::set_clock_binding(std::int64_t epoch_ms, std::int64_t round_ms) {
  clock_bound_ = true;
  epoch_ms_ = epoch_ms;
  round_ms_ = round_ms;
}

NodeCheckpoint NodeRuntime::make_checkpoint() const {
  NodeCheckpoint ck;
  ck.id = cfg_.id;
  ck.n = cfg_.n;
  ck.seed = cfg_.seed;
  ck.tau = cfg_.congos.tau;
  ck.allow_degenerate = cfg_.congos.allow_degenerate;
  ck.retransmit = cfg_.congos.retransmit;
  ck.max_rounds = cfg_.max_rounds;
  ck.epoch_ms = epoch_ms_;
  ck.round_ms = round_ms_;
  ck.round = now_;
  ck.resume_count = resume_count_;
  ck.events = journal_;
  return ck;
}

bool NodeRuntime::save_checkpoint(std::string* error) {
  if (cfg_.state_path.empty()) {
    if (error != nullptr) *error = "no state_path configured";
    return false;
  }
  if (!write_checkpoint_file(cfg_.state_path, make_checkpoint(), error)) {
    return false;
  }
  ++checkpoint_writes_;
  last_checkpoint_round_ = now_;
  return true;
}

void NodeRuntime::handle_datagram(ProcessId /*from_hint*/,
                                  std::span<const std::uint8_t> datagram) {
  std::span<const std::uint8_t> frames;
  switch (unwrap_datagram(datagram, &decompress_scratch_, &frames)) {
    case DatagramKind::kPlain:
      break;
    case DatagramKind::kDecompressed:
      ++compressed_received_;
      break;
    case DatagramKind::kUnsupported:
      ++unsupported_datagrams_;
      return;
    case DatagramKind::kMalformed:
      ++malformed_datagrams_;
      return;
  }
  FrameSplitter splitter(frames);
  std::span<const std::uint8_t> frame;
  for (;;) {
    const FrameSplitter::Status st = splitter.next(&frame);
    if (st == FrameSplitter::Status::kDone) return;
    if (st != FrameSplitter::Status::kFrame) {
      ++malformed_datagrams_;
      return;
    }
    wire::DecodedEnvelope dec;
    if (!wire::decode_envelope(frame.data(), frame.size(), &dec)) {
      ++decode_errors_;
      continue;
    }
    if (dec.env.to != cfg_.id) {
      ++misrouted_;
      continue;
    }
    ++frames_received_;
    if (dec.env.from < last_heard_.size()) last_heard_[dec.env.from] = now_;
    log_line(encode_recv_event(now_, frame));
    if (journaling_) {
      CheckpointEvent ev;
      ev.round = now_;
      ev.kind = CheckpointEvent::Kind::kRecv;
      ev.frame.assign(frame.begin(), frame.end());
      journal_.push_back(std::move(ev));
    }
    inbox_.push_back(std::move(dec.env));
  }
}

void NodeRuntime::run_send_phase() {
  if (builders_.size() != cfg_.n) {
    builders_.resize(cfg_.n);
    for (DatagramBuilder& b : builders_) b.set_pool(&dgram_pool_);
  }
  PhaseSender sender(this, &builders_);
  process_->send_phase(now_, sender);
  for (ProcessId to = 0; to < builders_.size(); ++to) {
    builders_[to].finish([&](DatagramHandle d) { ship(to, std::move(d)); });
  }
}

void NodeRuntime::ship(ProcessId to, DatagramHandle d) {
  if (replaying_) return;  // already on the wire in the previous incarnation
  if (cfg_.compress && compress_datagram(&d->bytes, &compress_scratch_)) {
    ++datagrams_compressed_;
  }
  transport_->send(to, std::move(d));
}

void NodeRuntime::tick() {
  process_->receive_phase(now_, inbox_);
  inbox_.clear();
  ++now_;
  if (shim_ != nullptr) shim_->set_round(now_);
  if (!done()) run_send_phase();
}

void NodeRuntime::advance_to(Round target) {
  if (cfg_.max_rounds > 0 && target > cfg_.max_rounds) target = cfg_.max_rounds;
  while (now_ < target) tick();
}

void NodeRuntime::inject(std::uint64_t seq, Round deadline, DynamicBitset dest,
                         std::vector<std::uint8_t> data) {
  sim::Rumor rumor;
  rumor.uid = RumorUid{cfg_.id, seq};
  rumor.data = std::move(data);
  rumor.deadline = deadline;
  rumor.dest = std::move(dest);
  rumor.injected_at = now_;
  log_line(encode_inject_event(now_, rumor));
  if (journaling_) {
    CheckpointEvent ev;
    ev.round = now_;
    ev.kind = CheckpointEvent::Kind::kInject;
    ev.seq = seq;
    ev.deadline = deadline;
    ev.dest = rumor.dest;
    ev.data = rumor.data;
    journal_.push_back(std::move(ev));
  }
  ++injections_;
  process_->inject(rumor);
}

void NodeRuntime::on_rumor_delivered(ProcessId at, const RumorUid& uid,
                                     Round when,
                                     std::span<const std::uint8_t> data) {
  ++deliveries_;
  log_line(encode_deliver_event(when, at, uid, data));
}

bool NodeRuntime::healthy() const {
  return decode_errors_ == 0 && malformed_datagrams_ == 0 &&
         encode_errors_ == 0 && misrouted_ == 0 &&
         unsupported_datagrams_ == 0 &&
         (process_ == nullptr || process_->filter_drops() == 0);
}

std::string NodeRuntime::stats_json() const {
  const TransportStats& t = transport_->stats();
  std::ostringstream out;
  out << "{\"id\":" << cfg_.id << ",\"n\":" << cfg_.n
      << ",\"rounds\":" << now_ << ",\"healthy\":" << (healthy() ? "true" : "false")
      << ",\"injections\":" << injections_ << ",\"deliveries\":" << deliveries_
      << ",\"frames_received\":" << frames_received_
      << ",\"decode_errors\":" << decode_errors_
      << ",\"malformed_datagrams\":" << malformed_datagrams_
      << ",\"misrouted\":" << misrouted_
      << ",\"encode_errors\":" << encode_errors_
      << ",\"datagrams_compressed\":" << datagrams_compressed_
      << ",\"compressed_received\":" << compressed_received_
      << ",\"unsupported_datagrams\":" << unsupported_datagrams_
      << ",\"uptime_rounds\":" << (now_ - resumed_at_)
      << ",\"resume_count\":" << resume_count_
      << ",\"checkpoint_writes\":" << checkpoint_writes_
      << ",\"last_checkpoint_round\":" << last_checkpoint_round_;
  // Peer liveness: last round an accepted frame arrived from each peer
  // (-1 = never heard). The cluster supervisor reads this to distinguish a
  // resumed peer (last_heard advances again) from a silent one.
  std::size_t peers_heard = 0;
  out << ",\"last_heard\":[";
  for (std::size_t p = 0; p < last_heard_.size(); ++p) {
    if (p != 0) out << ",";
    if (last_heard_[p] == kNoRound) {
      out << -1;
    } else {
      out << last_heard_[p];
      ++peers_heard;
    }
  }
  out << "],\"peers_heard\":" << peers_heard
      << ",\"transport\":{\"datagrams_sent\":" << t.datagrams_sent
      << ",\"datagrams_received\":" << t.datagrams_received
      << ",\"bytes_sent\":" << t.bytes_sent
      << ",\"bytes_received\":" << t.bytes_received
      << ",\"send_errors\":" << t.send_errors << ",\"no_route\":" << t.no_route
      << ",\"queue_overflow\":" << t.queue_overflow
      << ",\"queue_hwm\":" << t.queue_hwm
      << ",\"send_syscalls\":" << t.send_syscalls
      << ",\"recv_syscalls\":" << t.recv_syscalls << "}";
  if (process_ != nullptr) {
    const core::CgCounters& c = process_->counters();
    out << ",\"congos\":{\"injected\":" << c.injected
        << ",\"confirmed\":" << c.confirmed << ",\"shoots\":" << c.shoots
        << ",\"delivered\":" << c.delivered
        << ",\"reassembled\":" << c.reassembled
        << ",\"filter_drops\":" << process_->filter_drops()
        << ",\"duplicates_suppressed\":" << process_->duplicates_suppressed()
        << "}";
  }
  if (shim_ != nullptr) {
    out << ",\"faults\":{\"dropped\":" << shim_->faults(sim::FaultKind::kDropped)
        << ",\"duplicated\":" << shim_->faults(sim::FaultKind::kDuplicated)
        << ",\"delayed\":" << shim_->faults(sim::FaultKind::kDelayed)
        << ",\"partitioned\":"
        << shim_->faults(sim::FaultKind::kPartitioned) << "}";
  }
  out << "}";
  return out.str();
}

void NodeRuntime::log_line(const std::string& line) {
  if (log_ == nullptr || replaying_) return;
  std::fputs(line.c_str(), log_);
  std::fputc('\n', log_);
}

void NodeRuntime::flush_log() {
  if (log_ != nullptr) std::fflush(log_);
}

}  // namespace congos::net
