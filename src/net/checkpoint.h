// Durable daemon checkpoints: the on-disk state file behind congos_d
// --state/--resume (DESIGN.md section 14).
//
// The file does not serialize the service stack field by field. A
// CongosProcess is deterministic in (seed, injection sequence, per-round
// inbox contents) - the exact property PR 3's replay subsystem proves and
// the golden traces pin - so the checkpoint stores those *inputs* instead:
// the node's config binding, the shared RoundClock epoch, and the ordered
// journal of every event that mutated the process (rumor injections and
// accepted envelope frames, stamped with the runtime round they happened
// in). NodeRuntime::resume() reconstructs the live state by re-running the
// engine phase contract over the journal with outbound datagrams and event
// logging suppressed; the result is byte-identical to the state at the
// checkpoint round, including the partially buffered inbox of the round in
// progress (tests/test_checkpoint.cpp pins this over a SimLink cluster).
//
// Confidentiality by construction: the journal holds exactly the bytes the
// process legitimately held - its own injected rumors (it is their source)
// and the envelope frames addressed to it that already crossed the wire.
// A curious reader of the file learns nothing a wiretap of that node's
// inbound link plus its own injections would not reveal, which is what the
// cluster auditor re-checks offline by replaying every checkpointed frame
// through the confidentiality auditor (harness/cluster.cpp).
//
// Wire format (replay/codec.h conventions: little-endian, length-prefixed,
// fully bounds-checked reader):
//
//   u64   magic   "CGDSTATE"
//   u32   version (kCheckpointVersion)
//   ...   config binding + clock binding + progress (see NodeCheckpoint)
//   u64   event count, then per event: i64 round, u8 kind, fields
//   u64   FNV-1a over every preceding byte
//
// Readers reject truncation, any bit flip (checksum), unknown versions or
// event kinds, non-monotone event rounds, and events past the checkpoint
// round - a corrupted or tampered state file degrades into a clean load
// error, never into a trusted resume. Staleness (a file from a different
// cluster run) is caught by validate_checkpoint_clock(): the shared epoch
// the runner distributes must match the one the file was written under.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/types.h"
#include "congos/config.h"

namespace congos::net {

inline constexpr std::uint64_t kCheckpointMagic = 0x4554415453444743ull;  // "CGDSTATE"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One journaled state mutation, in the order it happened.
struct CheckpointEvent {
  enum class Kind : std::uint8_t { kInject = 0, kRecv = 1 };

  Round round = 0;
  Kind kind = Kind::kInject;

  // kInject: one locally sourced rumor (seq/deadline/dest/data).
  std::uint64_t seq = 0;
  Round deadline = 0;
  DynamicBitset dest;
  std::vector<std::uint8_t> data;

  // kRecv: one accepted envelope frame, verbatim wire bytes.
  std::vector<std::uint8_t> frame;

  friend bool operator==(const CheckpointEvent&, const CheckpointEvent&) = default;
};

struct NodeCheckpoint {
  // -- config binding: a resume must match the daemon's own flags ------------
  ProcessId id = 0;
  std::uint64_t n = 0;
  std::uint64_t seed = 0;
  std::uint32_t tau = 0;
  bool allow_degenerate = true;
  core::RetransmitConfig retransmit;
  Round max_rounds = 0;

  // -- clock binding: rejects state files from a different cluster run -------
  std::int64_t epoch_ms = 0;
  std::int64_t round_ms = 0;

  // -- progress ---------------------------------------------------------------
  /// Runtime round the checkpoint was taken at: send_phase(round) has run,
  /// receive_phase(round) has not; kRecv events at `round` are the pending
  /// inbox.
  Round round = 0;
  /// Resumes this state has already been through (0 on first incarnation).
  std::uint32_t resume_count = 0;

  std::vector<CheckpointEvent> events;

  friend bool operator==(const NodeCheckpoint&, const NodeCheckpoint&) = default;
};

/// Serializes `ck` (including the trailing whole-file checksum).
std::vector<std::uint8_t> encode_checkpoint(const NodeCheckpoint& ck);

/// Strict parse + validation; on failure *error says what was rejected.
bool decode_checkpoint(const std::uint8_t* data, std::size_t len,
                       NodeCheckpoint* out, std::string* error);
bool decode_checkpoint(const std::vector<std::uint8_t>& bytes, NodeCheckpoint* out,
                       std::string* error);

/// Atomic durable write: the bytes land in `path + ".tmp"`, are fsynced,
/// then renamed over `path`, so a crash mid-write leaves the previous
/// complete file (or nothing), never a torn one.
bool write_checkpoint_file(const std::string& path, const NodeCheckpoint& ck,
                           std::string* error);

/// Reads and fully validates `path`.
bool read_checkpoint_file(const std::string& path, NodeCheckpoint* out,
                          std::string* error);

/// Staleness gate: true iff the file was written under the same shared
/// RoundClock the cluster runner just distributed. A mismatch means the
/// state belongs to an earlier run and must not be rejoined.
bool validate_checkpoint_clock(const NodeCheckpoint& ck, std::int64_t epoch_ms,
                               std::int64_t round_ms, std::string* error);

}  // namespace congos::net
