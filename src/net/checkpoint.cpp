#include "net/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "replay/codec.h"

namespace congos::net {

namespace {

void put_bitset(replay::ByteWriter& w, const DynamicBitset& b) {
  w.u64(b.size());
  w.vec_u32(b.to_vector());
}

DynamicBitset get_bitset(replay::ByteReader& r) {
  const std::uint64_t universe = r.u64();
  const std::vector<std::uint32_t> idx = r.vec_u32();
  if (!r.ok()) return {};
  for (std::uint32_t i : idx) {
    if (i >= universe) {
      r.fail();
      return {};
    }
  }
  return DynamicBitset::from_indices(universe, idx);
}

void put_bytes(replay::ByteWriter& w, const std::vector<std::uint8_t>& v) {
  w.u64(v.size());
  for (std::uint8_t b : v) w.u8(b);
}

std::vector<std::uint8_t> get_bytes(replay::ByteReader& r) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    r.fail();
    return {};
  }
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = r.u8();
  return v;
}

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const NodeCheckpoint& ck) {
  replay::ByteWriter w;
  w.u64(kCheckpointMagic);
  w.u32(kCheckpointVersion);

  w.u32(ck.id);
  w.u64(ck.n);
  w.u64(ck.seed);
  w.u32(ck.tau);
  w.boolean(ck.allow_degenerate);
  w.boolean(ck.retransmit.enabled);
  w.u32(static_cast<std::uint32_t>(ck.retransmit.budget));
  w.i64(ck.retransmit.max_link_delay);
  w.i64(ck.max_rounds);

  w.u64(static_cast<std::uint64_t>(ck.epoch_ms));
  w.i64(ck.round_ms);

  w.i64(ck.round);
  w.u32(ck.resume_count);

  w.u64(ck.events.size());
  for (const CheckpointEvent& e : ck.events) {
    w.i64(e.round);
    w.u8(static_cast<std::uint8_t>(e.kind));
    if (e.kind == CheckpointEvent::Kind::kInject) {
      w.u64(e.seq);
      w.i64(e.deadline);
      put_bitset(w, e.dest);
      put_bytes(w, e.data);
    } else {
      put_bytes(w, e.frame);
    }
  }

  // Whole-file integrity trailer over everything written so far.
  const std::vector<std::uint8_t>& body = w.bytes();
  w.u64(replay::fnv1a(body.data(), body.size()));
  return w.take();
}

bool decode_checkpoint(const std::uint8_t* data, std::size_t len,
                       NodeCheckpoint* out, std::string* error) {
  // The checksum gate runs first: anything shorter than the trailer, or
  // whose trailer disagrees with the body hash, is rejected before a single
  // field is interpreted.
  if (len < 8) return set_error(error, "state file truncated (no checksum)");
  const std::size_t body_len = len - 8;
  std::uint64_t stored = 0;
  for (int b = 0; b < 8; ++b) {
    stored |= static_cast<std::uint64_t>(data[body_len + b]) << (8 * b);
  }
  if (replay::fnv1a(data, body_len) != stored) {
    return set_error(error, "state file checksum mismatch (corrupted)");
  }

  replay::ByteReader r(data, body_len);
  if (r.u64() != kCheckpointMagic) {
    return set_error(error, "not a congos_d state file (bad magic)");
  }
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion) {
    return set_error(error, "unsupported state file version " + std::to_string(version));
  }

  NodeCheckpoint ck;
  ck.id = r.u32();
  ck.n = r.u64();
  ck.seed = r.u64();
  ck.tau = r.u32();
  ck.allow_degenerate = r.boolean();
  ck.retransmit.enabled = r.boolean();
  ck.retransmit.budget = static_cast<int>(r.u32());
  ck.retransmit.max_link_delay = r.i64();
  ck.max_rounds = r.i64();

  ck.epoch_ms = static_cast<std::int64_t>(r.u64());
  ck.round_ms = r.i64();

  ck.round = r.i64();
  ck.resume_count = r.u32();

  const std::uint64_t count = r.u64();
  Round prev = 0;
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    CheckpointEvent e;
    e.round = r.i64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(CheckpointEvent::Kind::kRecv)) {
      return set_error(error, "state file has unknown event kind");
    }
    e.kind = static_cast<CheckpointEvent::Kind>(kind);
    if (e.kind == CheckpointEvent::Kind::kInject) {
      e.seq = r.u64();
      e.deadline = r.i64();
      e.dest = get_bitset(r);
      e.data = get_bytes(r);
    } else {
      e.frame = get_bytes(r);
    }
    if (!r.ok()) break;
    // Semantic validation: the journal is an ordered history of one run.
    if (e.round < prev || e.round < 0) {
      return set_error(error, "state file journal rounds not monotone");
    }
    if (e.round > ck.round) {
      return set_error(error, "state file journal event past checkpoint round");
    }
    prev = e.round;
    ck.events.push_back(std::move(e));
  }
  if (!r.ok() || r.remaining() != 0) {
    return set_error(error, "state file truncated or malformed");
  }
  if (ck.n == 0 || ck.id >= ck.n || ck.round < 0 || ck.round_ms <= 0) {
    return set_error(error, "state file config binding out of range");
  }
  if (ck.max_rounds > 0 && ck.round > ck.max_rounds) {
    return set_error(error, "state file round past max_rounds");
  }
  *out = std::move(ck);
  return true;
}

bool decode_checkpoint(const std::vector<std::uint8_t>& bytes, NodeCheckpoint* out,
                       std::string* error) {
  return decode_checkpoint(bytes.data(), bytes.size(), out, error);
}

bool write_checkpoint_file(const std::string& path, const NodeCheckpoint& ck,
                           std::string* error) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(ck);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return set_error(error, "cannot open '" + tmp + "': " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return set_error(error, "write '" + tmp + "': " + std::strerror(saved));
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never promote a file whose bytes
  // are still only in the page cache, or a machine crash could leave a
  // "complete" name pointing at torn contents.
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return set_error(error, "fsync '" + tmp + "': " + std::strerror(saved));
  }
  if (::close(fd) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return set_error(error, "close '" + tmp + "': " + std::strerror(saved));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return set_error(error, "rename to '" + path + "': " + std::strerror(saved));
  }
  return true;
}

bool read_checkpoint_file(const std::string& path, NodeCheckpoint* out,
                          std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return set_error(error, "cannot open state file '" + path + "'");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return set_error(error, "cannot read state file '" + path + "'");
  }
  return decode_checkpoint(bytes, out, error);
}

bool validate_checkpoint_clock(const NodeCheckpoint& ck, std::int64_t epoch_ms,
                               std::int64_t round_ms, std::string* error) {
  if (ck.epoch_ms != epoch_ms) {
    return set_error(error,
                     "stale state file: epoch " + std::to_string(ck.epoch_ms) +
                         " does not match cluster epoch " + std::to_string(epoch_ms));
  }
  if (ck.round_ms != round_ms) {
    return set_error(error,
                     "stale state file: round-ms " + std::to_string(ck.round_ms) +
                         " does not match cluster round-ms " + std::to_string(round_ms));
  }
  return true;
}

}  // namespace congos::net
