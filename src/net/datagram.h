// Pooled datagram buffers: the zero-copy currency of the datagram fast
// path (DESIGN.md section 13).
//
// The PR 8 send path copied every outgoing datagram into a fresh
// std::vector even when the very next line handed it to sendto() and threw
// it away. A DatagramBuffer is instead acquired from a DatagramPool (the
// common/pool.h recycling idiom that already keeps payload traffic off the
// heap), encoded into in place by DatagramBuilder, and passed BY HANDLE
// down through FaultShim into UdpTransport:
//
//   * fast path: the transport writes the wire directly from the pooled
//     bytes and the handle dies on return - object and control block go
//     back to the pool, so a steady-state send performs zero heap
//     allocations (pinned by tests/test_net_alloc.cpp);
//   * backpressure: the transport moves the handle into the per-peer queue
//     - still no copy; the buffer is released once the kernel accepts it;
//   * fault shim: a delayed/duplicated datagram holds the handle until its
//     due round - the pool simply does not get the buffer back until then.
//
// Handles are plain shared_ptr so any Transport that ignores pooling (the
// sim adapter, test doubles) can fall back to the span view of the same
// bytes via the default Transport::send(ProcessId, DatagramHandle) overload.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/pool.h"

namespace congos::net {

/// One reusable datagram: cleared on reuse, capacity retained.
struct DatagramBuffer {
  std::vector<std::uint8_t> bytes;

  void reuse() { bytes.clear(); }
};

using DatagramHandle = std::shared_ptr<DatagramBuffer>;

/// Recycling pool of DatagramBuffers (see common/pool.h for the lifetime
/// rules: handles may outlive the pool object; release on any thread).
using DatagramPool = PayloadPool<DatagramBuffer>;

}  // namespace congos::net
