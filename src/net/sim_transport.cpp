#include "net/sim_transport.h"

#include <deque>

#include "common/assert.h"

namespace congos::net {

/// One process's view of the link: a Transport whose poll() drains the
/// datagrams advance_round() sorted into its queue.
class SimLink::Endpoint final : public Transport {
 public:
  Endpoint(SimLink* link, ProcessId id) : link_(link), id_(id) {}

  bool send(ProcessId to, std::span<const std::uint8_t> datagram) override {
    if (to >= link_->n()) {
      ++stats_.no_route;
      return false;
    }
    sim::Envelope e;
    e.from = id_;
    e.to = to;
    e.tag = {sim::ServiceKind::kOther, 0};
    e.body = std::make_shared<DatagramPayload>(
        std::vector<std::uint8_t>(datagram.begin(), datagram.end()));
    link_->network_.submit(std::move(e));
    ++stats_.datagrams_sent;
    stats_.bytes_sent += datagram.size();
    return true;
  }

  std::size_t poll(int /*timeout_ms*/, DatagramSink& sink) override {
    std::size_t delivered = 0;
    while (!inbox_.empty()) {
      const auto& [from, bytes] = inbox_.front();
      ++stats_.datagrams_received;
      stats_.bytes_received += bytes.size();
      sink.on_datagram(from, bytes);
      inbox_.pop_front();
      ++delivered;
    }
    return delivered;
  }

  const TransportStats& stats() const override { return stats_; }

  void push(ProcessId from, std::vector<std::uint8_t> bytes) {
    inbox_.emplace_back(from, std::move(bytes));
  }

 private:
  SimLink* link_;
  ProcessId id_;
  TransportStats stats_;
  std::deque<std::pair<ProcessId, std::vector<std::uint8_t>>> inbox_;
};

SimLink::SimLink(std::size_t n, std::uint64_t seed)
    : network_(n, &stats_),
      rng_(seed),
      all_deliver_(n, sim::PartialDelivery::kDeliverAll),
      no_filter_(n) {
  endpoints_.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    endpoints_.push_back(std::make_unique<Endpoint>(this, p));
  }
}

SimLink::~SimLink() = default;

Transport& SimLink::endpoint(ProcessId p) {
  CONGOS_ASSERT(p < endpoints_.size());
  return *endpoints_[p];
}

void SimLink::advance_round() {
  network_.deliver(all_deliver_, no_filter_, all_deliver_, no_filter_, rng_,
                   nullptr);
  for (ProcessId p = 0; p < endpoints_.size(); ++p) {
    for (const sim::Envelope& e : network_.inbox(p)) {
      const auto* dg = static_cast<const DatagramPayload*>(e.body.get());
      endpoints_[p]->push(e.from, dg->bytes);
    }
  }
  network_.end_round();
  ++round_;
}

}  // namespace congos::net
