// Datagram framing: how envelope frames (wire/envelope.h) ride inside UDP
// datagrams (DESIGN.md section 13).
//
// A datagram carries one or more length-prefixed frames:
//
//   varint  frame length L
//   L bytes one v1 envelope frame (wire::encode_envelope output)
//   ... repeated ...
//
// The length prefix makes coalescing trivial (a send phase packs all
// envelopes for one peer into as few datagrams as fit) and makes partial
// data detectable: a reader that runs out of bytes mid-frame reports
// kTruncated instead of feeding a cut-off frame to the envelope decoder.
// The envelope checksum then guards the frame contents themselves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/message.h"

namespace congos::net {

/// Hard ceiling on one datagram: IPv4 localhost allows ~65507 payload
/// bytes; leave margin for stacks with smaller SO_SNDBUF defaults.
inline constexpr std::size_t kMaxDatagramBytes = 60000;

/// Soft coalescing budget: the builder starts a new datagram once the
/// current one would exceed this. Chosen to fit a typical localhost MTU
/// without fragmentation; a single frame larger than the budget still gets
/// its own (possibly fragmented) datagram up to kMaxDatagramBytes.
inline constexpr std::size_t kDatagramBudget = 1400;

/// Appends one length-prefixed envelope frame to `datagram`. Returns false
/// (datagram untouched) when the codec cannot express the body (kOpaque)
/// or the frame would exceed kMaxDatagramBytes on its own.
bool append_frame(const sim::Envelope& e, Round round,
                  std::vector<std::uint8_t>* datagram);

/// Walks the frames of a received datagram.
class FrameSplitter {
 public:
  enum class Status : std::uint8_t {
    kFrame,      // *out holds the next complete frame
    kDone,       // clean end of datagram
    kTruncated,  // bytes end mid-prefix or mid-frame
    kMalformed,  // length prefix is not a minimal varint or overflows
  };

  explicit FrameSplitter(std::span<const std::uint8_t> datagram)
      : data_(datagram) {}

  Status next(std::span<const std::uint8_t>* out);

  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Per-peer coalescing writer for one send phase: frames accumulate into a
/// datagram until the soft budget is hit, then the full datagram is handed
/// to the flush callback and a new one starts. Reused across rounds - the
/// internal buffers are cleared, never deallocated.
class DatagramBuilder {
 public:
  /// Appends a frame, flushing through `flush` when the budget forces a new
  /// datagram. Returns false when the frame is unencodable.
  template <class Flush>
  bool add(const sim::Envelope& e, Round round, Flush&& flush) {
    const std::size_t before = buf_.size();
    if (!append_frame(e, round, &buf_)) return false;
    if (before > 0 && buf_.size() > kDatagramBudget) {
      // The new frame tipped a non-empty datagram over the budget: ship the
      // old frames alone and carry the new frame into a fresh datagram.
      carry_.assign(buf_.begin() + static_cast<std::ptrdiff_t>(before), buf_.end());
      buf_.resize(before);
      flush(std::span<const std::uint8_t>(buf_));
      buf_.assign(carry_.begin(), carry_.end());
    }
    return true;
  }

  /// Ships the final partial datagram of the phase, if any.
  template <class Flush>
  void finish(Flush&& flush) {
    if (!buf_.empty()) flush(std::span<const std::uint8_t>(buf_));
    buf_.clear();
  }

  bool empty() const { return buf_.empty(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::uint8_t> carry_;
};

}  // namespace congos::net
