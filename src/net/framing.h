// Datagram framing: how envelope frames (wire/envelope.h) ride inside UDP
// datagrams (DESIGN.md section 13).
//
// A datagram carries one or more length-prefixed frames:
//
//   varint  frame length L        (L >= 1; a zero length is malformed)
//   L bytes one v1 envelope frame (wire::encode_envelope output)
//   ... repeated ...
//
// The length prefix makes coalescing trivial (a send phase packs all
// envelopes for one peer into as few datagrams as fit) and makes partial
// data detectable: a reader that runs out of bytes mid-frame reports
// kTruncated instead of feeding a cut-off frame to the envelope decoder.
// The envelope checksum then guards the frame contents themselves.
//
// Because a legal frame sequence can never start with a zero byte (the
// varint prefix of a length >= 1 always has a non-zero first byte), the
// zero byte doubles as the marker of the optional compressed container:
//
//   u8      0x00 (kCompressedDatagramMarker)
//   varint  raw length R of the plain frame sequence (1..kMaxDatagramBytes)
//   ...     LZ4 block of the plain frame sequence
//
// Compression is a per-datagram property — a receiver accepts plain and
// compressed datagrams interchangeably, so compressing and non-compressing
// peers interoperate without negotiation. A receiver without LZ4
// (wire::lz4_available() false) reports kUnsupported and drops the
// datagram, which the runtime counts and flags as unhealthy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/datagram.h"
#include "sim/message.h"

namespace congos::net {

/// Hard ceiling on one datagram: IPv4 localhost allows ~65507 payload
/// bytes; leave margin for stacks with smaller SO_SNDBUF defaults.
inline constexpr std::size_t kMaxDatagramBytes = 60000;

/// Soft coalescing budget: the builder starts a new datagram once the
/// current one would exceed this. Chosen to fit a typical localhost MTU
/// without fragmentation; a single frame larger than the budget still gets
/// its own (possibly fragmented) datagram up to kMaxDatagramBytes.
inline constexpr std::size_t kDatagramBudget = 1400;

/// First byte of the compressed-datagram container (see header comment for
/// why 0x00 can never begin a plain frame sequence).
inline constexpr std::uint8_t kCompressedDatagramMarker = 0x00;

/// Datagrams smaller than this skip compression: the syscall dominates and
/// LZ4 rarely wins on a lone small frame.
inline constexpr std::size_t kCompressMinBytes = 96;

/// Appends one length-prefixed envelope frame to `datagram`. Returns false
/// (datagram untouched) when the codec cannot express the body (kOpaque)
/// or the frame would exceed kMaxDatagramBytes on its own. Encodes in
/// place: with warm capacity this allocates nothing.
bool append_frame(const sim::Envelope& e, Round round,
                  std::vector<std::uint8_t>* datagram);

/// Replaces `*bytes` with its compressed container when that is both
/// possible (LZ4 available, input large enough) and beneficial (container
/// strictly smaller than the plain bytes). Returns true when `*bytes` now
/// holds the container; on false `*bytes` is unchanged and ships plain.
/// `scratch` provides the working buffer (capacity retained across calls).
bool compress_datagram(std::vector<std::uint8_t>* bytes,
                       std::vector<std::uint8_t>* scratch);

/// Result of unwrapping a received datagram before frame splitting.
enum class DatagramKind : std::uint8_t {
  kPlain,         // *frames aliases the input
  kDecompressed,  // *frames aliases *scratch, which holds the plain bytes
  kUnsupported,   // compressed container but LZ4 is unavailable here
  kMalformed,     // bad container header, oversize raw length, or the
                  // block fails to decode to exactly the declared length
};

/// Peels the optional compressed container off a received datagram; on
/// kPlain/kDecompressed, *frames is the plain frame sequence to split.
DatagramKind unwrap_datagram(std::span<const std::uint8_t> in,
                             std::vector<std::uint8_t>* scratch,
                             std::span<const std::uint8_t>* frames);

/// Walks the frames of a received (plain) datagram.
class FrameSplitter {
 public:
  enum class Status : std::uint8_t {
    kFrame,      // *out holds the next complete frame
    kDone,       // clean end of datagram
    kTruncated,  // bytes end mid-prefix or mid-frame
    kMalformed,  // length prefix is zero, not a minimal varint, or overflows
  };

  explicit FrameSplitter(std::span<const std::uint8_t> datagram)
      : data_(datagram) {}

  Status next(std::span<const std::uint8_t>* out);

  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Per-peer coalescing writer for one send phase: frames accumulate into a
/// pooled datagram buffer until the soft budget is hit, then the buffer's
/// handle is passed to the flush callback (which may keep it — the
/// transport queues handles, not copies) and a fresh buffer is acquired.
/// With a pool attached and warm, a steady-state send phase allocates
/// nothing (tests/test_net_alloc.cpp pins this); without a pool the
/// builder falls back to make_shared per datagram.
class DatagramBuilder {
 public:
  void set_pool(DatagramPool* pool) { pool_ = pool; }

  /// Appends a frame, flushing through `flush(DatagramHandle)` when the
  /// budget forces a new datagram. Returns false when the frame is
  /// unencodable.
  template <class Flush>
  bool add(const sim::Envelope& e, Round round, Flush&& flush) {
    if (buf_ == nullptr) buf_ = acquire();
    std::vector<std::uint8_t>& bytes = buf_->bytes;
    const std::size_t before = bytes.size();
    if (!append_frame(e, round, &bytes)) return false;
    if (before > 0 && bytes.size() > kDatagramBudget) {
      // The new frame tipped a non-empty datagram over the budget: ship the
      // old frames alone and carry the new frame into a fresh buffer.
      DatagramHandle next = acquire();
      next->bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(before),
                         bytes.end());
      bytes.resize(before);
      flush(std::move(buf_));
      buf_ = std::move(next);
    }
    return true;
  }

  /// Ships the final partial datagram of the phase, if any.
  template <class Flush>
  void finish(Flush&& flush) {
    if (buf_ != nullptr && !buf_->bytes.empty()) {
      flush(std::move(buf_));
    }
    buf_.reset();
  }

  bool empty() const { return buf_ == nullptr || buf_->bytes.empty(); }

 private:
  DatagramHandle acquire() {
    return pool_ != nullptr ? pool_->acquire()
                            : std::make_shared<DatagramBuffer>();
  }

  DatagramPool* pool_ = nullptr;
  DatagramHandle buf_;
};

}  // namespace congos::net
