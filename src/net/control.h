// congos_d control protocol and event-log line format (DESIGN.md
// section 13).
//
// Both are single text lines of `verb key=value ...` - trivially greppable
// when a cluster run goes wrong, and parsed by the same helpers on both
// sides. The control channel is a second UDP socket on 127.0.0.1: the
// cluster runner sends commands, the daemon acks each one (`ok <verb>`)
// so the runner can retry a lost command instead of hanging.
//
//   start epoch=<wall ms> round-ms=<ms> peers=<port0,port1,...>
//   inject seq=<q> deadline=<rounds> dest=<hex bitset> data=<hex bytes>
//   stats          -> daemon replies with its stats JSON line
//   stop           -> daemon finishes the current round, dumps stats, exits
//
// The daemon's event log reuses the same encoding, one line per event:
//
//   inject round=<r> src=<p> seq=<q> deadline=<d> dest=<hex> data=<hex>
//   deliver round=<r> at=<p> src=<p> seq=<q> data=<hex>
//   recv round=<r> frame=<hex envelope frame>
//
// `recv` lines are the observed traffic: every envelope frame the daemon
// decoded, re-hexed verbatim, which is what lets the cluster runner replay
// the traffic through the confidentiality auditor offline. Bitsets are
// hex of their canonical wire encoding (wire::WriteSink::bitset), so the
// destination set round-trips exactly.
//
// The cluster runner's <workdir>/lifecycle.log uses the same
// `verb key=value` encoding for crash/restart supervision (DESIGN.md
// section 14); these lines feed the QoD auditor's continuously-alive
// admissibility rule:
//
//   crash round=<r> id=<i> scheduled=<0|1> code=<exit or 128+sig>
//   restart round=<r> id=<i> resume=1
//   respawn-failed round=<r> id=<i>
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "sim/rumor.h"

namespace congos::net {

// -- hex / bitset helpers ----------------------------------------------------

std::string to_hex(std::span<const std::uint8_t> bytes);
bool from_hex(const std::string& hex, std::vector<std::uint8_t>* out);

/// Canonical wire encoding of a bitset, hexed (round-trips size exactly).
std::string bitset_to_hex(const DynamicBitset& b);
bool bitset_from_hex(const std::string& hex, DynamicBitset* out);

// -- line parsing ------------------------------------------------------------

/// A parsed `verb key=value ...` line. Values never contain spaces.
struct Line {
  std::string verb;
  std::map<std::string, std::string> kv;

  bool has(const std::string& key) const { return kv.count(key) != 0; }
  /// Missing/malformed keys latch *ok to false and return the fallback.
  std::int64_t get_int(const std::string& key, bool* ok) const;
  std::string get(const std::string& key, bool* ok) const;
};

bool parse_line(const std::string& text, Line* out);

// -- control commands --------------------------------------------------------

struct StartCommand {
  std::int64_t epoch_ms = 0;
  std::int64_t round_ms = 20;
  /// Data-socket port of every process, indexed by ProcessId.
  std::vector<std::uint16_t> peer_ports;
};

std::string encode_start(const StartCommand& cmd);
bool parse_start(const Line& line, StartCommand* out, std::string* error);

struct InjectCommand {
  std::uint64_t seq = 0;
  Round deadline = 0;
  DynamicBitset dest;
  std::vector<std::uint8_t> data;
};

std::string encode_inject(const InjectCommand& cmd);
bool parse_inject(const Line& line, InjectCommand* out, std::string* error);

// -- event-log lines ---------------------------------------------------------

std::string encode_inject_event(Round round, const sim::Rumor& rumor);
std::string encode_deliver_event(Round round, ProcessId at, const RumorUid& uid,
                                 std::span<const std::uint8_t> data);
std::string encode_recv_event(Round round, std::span<const std::uint8_t> frame);

/// Parses an `inject` event back into a Rumor (injected_at = round).
bool parse_inject_event(const Line& line, sim::Rumor* out, Round* round,
                        std::string* error);

}  // namespace congos::net
