#include "net/fault_shim.h"

#include <algorithm>

namespace congos::net {

FaultShim::FaultShim(Transport* inner, const sim::FaultConfig& cfg,
                     ProcessId self)
    : inner_(inner),
      cfg_(cfg),
      self_(self),
      rng_(cfg.seed ^ (0x9e3779b97f4a7c15ull * (self + 1))) {}

std::uint64_t FaultShim::fault_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counters_) total += c;
  return total;
}

// Mirrors sim::Network::apply_faults decision order (partition, drop,
// delay, dup) so the shim's fault mix matches the simulator's for the same
// config - only the randomness stream differs.
FaultShim::Decision FaultShim::decide(ProcessId to, Round* lateness) {
  if (sim::partition_cuts(cfg_, now_, self_, to)) {
    ++counters_[static_cast<std::size_t>(sim::FaultKind::kPartitioned)];
    return Decision::kAbsorbed;
  }
  if (cfg_.drop_rate > 0.0 && rng_.chance(cfg_.drop_rate)) {
    ++counters_[static_cast<std::size_t>(sim::FaultKind::kDropped)];
    return Decision::kAbsorbed;
  }
  const auto span = static_cast<std::uint64_t>(std::max<Round>(cfg_.max_delay, 1));
  if (cfg_.delay_rate > 0.0 && rng_.chance(cfg_.delay_rate)) {
    *lateness = 1 + static_cast<Round>(rng_.next_below(span));
    ++counters_[static_cast<std::size_t>(sim::FaultKind::kDelayed)];
    return Decision::kHold;
  }
  if (cfg_.dup_rate > 0.0 && rng_.chance(cfg_.dup_rate)) {
    *lateness = 1 + static_cast<Round>(rng_.next_below(span));
    ++counters_[static_cast<std::size_t>(sim::FaultKind::kDuplicated)];
    return Decision::kDupHold;
  }
  return Decision::kPass;
}

bool FaultShim::send(ProcessId to, std::span<const std::uint8_t> datagram) {
  if (!cfg_.enabled()) return inner_->send(to, datagram);
  Round lateness = 0;
  switch (decide(to, &lateness)) {
    case Decision::kAbsorbed:
      return true;
    case Decision::kHold: {
      DatagramHandle d = pool_.acquire();
      d->bytes.assign(datagram.begin(), datagram.end());
      held_.push_back(Held{now_ + lateness, to, std::move(d)});
      return true;
    }
    case Decision::kDupHold: {
      DatagramHandle d = pool_.acquire();
      d->bytes.assign(datagram.begin(), datagram.end());
      held_.push_back(Held{now_ + lateness, to, std::move(d)});
      return inner_->send(to, datagram);
    }
    case Decision::kPass:
      break;
  }
  return inner_->send(to, datagram);
}

bool FaultShim::send(ProcessId to, DatagramHandle datagram) {
  if (!cfg_.enabled()) return inner_->send(to, std::move(datagram));
  Round lateness = 0;
  switch (decide(to, &lateness)) {
    case Decision::kAbsorbed:
      return true;
    case Decision::kHold:
      held_.push_back(Held{now_ + lateness, to, std::move(datagram)});
      return true;
    case Decision::kDupHold:
      // The held copy shares the buffer with the datagram sent now; neither
      // path mutates the bytes, and the pool only reclaims the buffer once
      // the last handle dies.
      held_.push_back(Held{now_ + lateness, to, datagram});
      return inner_->send(to, std::move(datagram));
    case Decision::kPass:
      break;
  }
  return inner_->send(to, std::move(datagram));
}

void FaultShim::release_due() {
  if (held_.empty()) return;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].due <= now_) {
      inner_->send(held_[i].to, std::move(held_[i].datagram));
    } else {
      if (kept != i) held_[kept] = std::move(held_[i]);
      ++kept;
    }
  }
  held_.resize(kept);
}

void FaultShim::set_round(Round now) {
  now_ = now;
  release_due();
}

std::size_t FaultShim::poll(int timeout_ms, DatagramSink& sink) {
  release_due();
  return inner_->poll(timeout_ms, sink);
}

}  // namespace congos::net
