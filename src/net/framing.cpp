#include "net/framing.h"

#include "wire/compress.h"
#include "wire/envelope.h"
#include "wire/wire.h"

namespace congos::net {

bool append_frame(const sim::Envelope& e, Round round,
                  std::vector<std::uint8_t>* datagram) {
  // Size first (allocation-free), then encode straight into the datagram:
  // no temporary frame buffer, no second copy.
  const std::uint64_t frame_size = wire::encoded_envelope_size(e, round);
  if (frame_size + wire::varint_size(frame_size) > kMaxDatagramBytes) {
    return false;
  }
  const std::size_t start = datagram->size();
  std::uint64_t v = frame_size;
  while (v >= 0x80) {
    datagram->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  datagram->push_back(static_cast<std::uint8_t>(v));
  if (!wire::encode_envelope_append(e, round, datagram) ||
      datagram->size() - start !=
          frame_size + wire::varint_size(frame_size)) {
    datagram->resize(start);
    return false;
  }
  return true;
}

bool compress_datagram(std::vector<std::uint8_t>* bytes,
                       std::vector<std::uint8_t>* scratch) {
  const std::size_t raw = bytes->size();
  if (raw < kCompressMinBytes || raw > kMaxDatagramBytes ||
      !wire::lz4_available()) {
    return false;
  }
  const std::size_t bound = wire::lz4_compress_bound(raw);
  if (bound == 0) return false;
  const std::size_t header = 1 + wire::varint_size(raw);
  scratch->resize(header + bound);
  (*scratch)[0] = kCompressedDatagramMarker;
  std::size_t pos = 1;
  std::uint64_t v = raw;
  while (v >= 0x80) {
    (*scratch)[pos++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  (*scratch)[pos++] = static_cast<std::uint8_t>(v);
  const std::size_t written =
      wire::lz4_compress_raw(bytes->data(), raw, scratch->data() + header,
                             bound);
  // Only ship the container when it actually saves bytes on the wire.
  if (written == 0 || header + written >= raw) return false;
  scratch->resize(header + written);
  bytes->swap(*scratch);
  return true;
}

DatagramKind unwrap_datagram(std::span<const std::uint8_t> in,
                             std::vector<std::uint8_t>* scratch,
                             std::span<const std::uint8_t>* frames) {
  if (in.empty() || in[0] != kCompressedDatagramMarker) {
    *frames = in;
    return DatagramKind::kPlain;
  }
  wire::ReadSink s(in.data() + 1, in.size() - 1);
  std::uint64_t raw = 0;
  s.varint(raw);
  // The raw-length bound caps decompression work: a hostile container can
  // never make the receiver materialize more than one datagram's worth.
  if (!s.ok() || raw == 0 || raw > kMaxDatagramBytes) {
    return DatagramKind::kMalformed;
  }
  if (!wire::lz4_available()) return DatagramKind::kUnsupported;
  const std::size_t off = 1 + s.pos();
  scratch->resize(static_cast<std::size_t>(raw));
  if (!wire::lz4_decompress_raw(in.data() + off, in.size() - off,
                                scratch->data(),
                                static_cast<std::size_t>(raw))) {
    return DatagramKind::kMalformed;
  }
  *frames = std::span<const std::uint8_t>(*scratch);
  return DatagramKind::kDecompressed;
}

FrameSplitter::Status FrameSplitter::next(std::span<const std::uint8_t>* out) {
  if (pos_ == data_.size()) return Status::kDone;
  wire::ReadSink prefix(data_.data() + pos_, data_.size() - pos_);
  std::uint64_t len = 0;
  prefix.varint(len);
  if (!prefix.ok()) {
    // Distinguish "bytes ran out mid-prefix" (every remaining byte has its
    // continuation bit set) from a malformed prefix (non-minimal varint or
    // 64-bit overflow, which ReadSink also latches as failure).
    bool all_continuation = true;
    for (std::size_t i = pos_; i < data_.size(); ++i) {
      if ((data_[i] & 0x80) == 0) {
        all_continuation = false;
        break;
      }
    }
    return (all_continuation && data_.size() - pos_ < 10) ? Status::kTruncated
                                                          : Status::kMalformed;
  }
  // A zero-length frame cannot be honest (every envelope frame has a header
  // and checksum); rejecting it is also what frees the zero byte to mark
  // the compressed container (see header comment).
  if (len == 0) return Status::kMalformed;
  const std::size_t body_at = pos_ + prefix.pos();
  if (len > data_.size() - body_at) return Status::kTruncated;
  if (out != nullptr) {
    *out = data_.subspan(body_at, static_cast<std::size_t>(len));
  }
  pos_ = body_at + static_cast<std::size_t>(len);
  return Status::kFrame;
}

}  // namespace congos::net
