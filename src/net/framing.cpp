#include "net/framing.h"

#include "wire/envelope.h"
#include "wire/wire.h"

namespace congos::net {

bool append_frame(const sim::Envelope& e, Round round,
                  std::vector<std::uint8_t>* datagram) {
  std::vector<std::uint8_t> frame;
  if (!wire::encode_envelope(e, round, &frame)) return false;
  if (frame.size() + wire::varint_size(frame.size()) > kMaxDatagramBytes) {
    return false;
  }
  wire::WriteSink prefix;
  prefix.varint(frame.size());
  datagram->insert(datagram->end(), prefix.data().begin(), prefix.data().end());
  datagram->insert(datagram->end(), frame.begin(), frame.end());
  return true;
}

FrameSplitter::Status FrameSplitter::next(std::span<const std::uint8_t>* out) {
  if (pos_ == data_.size()) return Status::kDone;
  wire::ReadSink prefix(data_.data() + pos_, data_.size() - pos_);
  std::uint64_t len = 0;
  prefix.varint(len);
  if (!prefix.ok()) {
    // Distinguish "bytes ran out mid-prefix" (every remaining byte has its
    // continuation bit set) from a malformed prefix (non-minimal varint or
    // 64-bit overflow, which ReadSink also latches as failure).
    bool all_continuation = true;
    for (std::size_t i = pos_; i < data_.size(); ++i) {
      if ((data_[i] & 0x80) == 0) {
        all_continuation = false;
        break;
      }
    }
    return (all_continuation && data_.size() - pos_ < 10) ? Status::kTruncated
                                                          : Status::kMalformed;
  }
  const std::size_t body_at = pos_ + prefix.pos();
  if (len > data_.size() - body_at) return Status::kTruncated;
  if (out != nullptr) {
    *out = data_.subspan(body_at, static_cast<std::size_t>(len));
  }
  pos_ = body_at + static_cast<std::size_t>(len);
  return Status::kFrame;
}

}  // namespace congos::net
