// NodeRuntime: one CONGOS process driven by a Transport instead of the
// lockstep simulator (DESIGN.md section 13).
//
// The runtime hosts an unmodified core::CongosProcess and reproduces the
// engine's per-round contract around it: send_phase(r) at the start of
// round r, receive_phase(r) at the round's end with every envelope that
// arrived during the round's wall-clock window. Outbound envelopes are
// framed with the versioned wire codec and coalesced into datagrams per
// destination (net/framing.h); inbound datagrams are split, decoded,
// checksum-verified and buffered as the next receive_phase's inbox. The
// driving loop - wall-clock boundaries in congos_d, explicit calls in the
// in-process tests - decides *when* rounds advance; the runtime only
// guarantees the protocol sees the same phase order it sees under
// sim::Engine.
//
// Every observable event (injection, application-level delivery, received
// frame) is appended to a key=value event log (net/control.h), which is
// what harness::ClusterRunner feeds to the QoD and confidentiality
// auditors after the run - the audits run on observed traffic, not on
// simulator introspection.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "congos/congos_process.h"
#include "net/checkpoint.h"
#include "net/fault_shim.h"
#include "net/framing.h"
#include "net/transport.h"
#include "sim/faults.h"

namespace congos::net {

struct NodeConfig {
  ProcessId id = 0;
  std::size_t n = 0;
  std::uint64_t seed = 1;
  core::CongosConfig congos;
  /// Total rounds to run (horizon + drain); 0 = until stopped externally.
  Round max_rounds = 0;
  /// Event-log path; empty = no log (unit tests that audit in-process).
  std::string log_path;
  /// LZ4-compress coalesced outbound datagrams (net/framing.h container).
  /// Receivers always accept both plain and compressed datagrams, so nodes
  /// with different settings interoperate; start() fails when compression
  /// is requested but LZ4 is unavailable in this process.
  bool compress = false;
  /// Durable state file (net/checkpoint.h); empty = no file. When set,
  /// every state mutation is journaled and save_checkpoint() atomically
  /// rewrites the file so a SIGKILLed daemon can rejoin via resume().
  std::string state_path;
  /// Journal state mutations even without a state_path, for in-process
  /// tests that checkpoint via make_checkpoint() instead of the filesystem.
  bool journal = false;
};

class NodeRuntime final : public sim::DeliveryListener {
 public:
  /// `transport` is not owned and must outlive the runtime. Pass `shim`
  /// when `transport` is (or wraps) a FaultShim so the runtime can advance
  /// its round clock; stats pick the fault counters up from there too.
  NodeRuntime(const NodeConfig& cfg, Transport* transport,
              FaultShim* shim = nullptr);
  ~NodeRuntime() override;

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Builds the process stack and runs round 0's send phase. Returns false
  /// (with *error) when the event log cannot be opened.
  bool start(std::string* error);
  bool started() const { return process_ != nullptr; }

  /// Rebuilds this node's state from a decoded checkpoint instead of
  /// start(): the journal is replayed through the same phase contract with
  /// outbound datagrams and event logging suppressed, which reproduces the
  /// exact pre-crash state (process, retransmission timers, pending inbox)
  /// because the protocol is deterministic in (seed, journal). The event
  /// log is reopened in append mode so pre-crash audit evidence survives.
  /// Fails when the checkpoint's config binding does not match `cfg` -
  /// resuming under different flags would silently diverge.
  bool resume(const NodeCheckpoint& ck, std::string* error);

  /// Binds the shared RoundClock parameters stamped into checkpoints (the
  /// daemon calls this when the `start` command arrives); resume() uses it
  /// to reject state files from a different cluster run.
  void set_clock_binding(std::int64_t epoch_ms, std::int64_t round_ms);

  /// Current state as a checkpoint value (config + clock binding + journal).
  NodeCheckpoint make_checkpoint() const;

  /// Atomically rewrites cfg.state_path with make_checkpoint().
  bool save_checkpoint(std::string* error);

  Round now() const { return now_; }
  bool done() const { return cfg_.max_rounds > 0 && now_ >= cfg_.max_rounds; }

  /// Feed one received datagram (any number of frames) into the pending
  /// inbox. Safe to call between ticks only (single-threaded loop).
  void handle_datagram(ProcessId from_hint, std::span<const std::uint8_t> datagram);

  /// Run round boundaries until now() == min(target, max_rounds): each tick
  /// closes the current round (receive_phase over the buffered inbox) and
  /// opens the next (send_phase). Catch-up after a stall processes every
  /// skipped round individually - protocols see all their scheduled rounds.
  void advance_to(Round target);

  /// Inject a rumor sourced at this node (stamps injected_at = now()).
  void inject(std::uint64_t seq, Round deadline, DynamicBitset dest,
              std::vector<std::uint8_t> data);

  // -- health / stats ---------------------------------------------------------

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t decode_errors() const { return decode_errors_; }
  std::uint64_t malformed_datagrams() const { return malformed_datagrams_; }
  std::uint64_t encode_errors() const { return encode_errors_; }
  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t injections() const { return injections_; }
  std::uint64_t datagrams_compressed() const { return datagrams_compressed_; }
  std::uint64_t compressed_received() const { return compressed_received_; }
  std::uint64_t unsupported_datagrams() const { return unsupported_datagrams_; }

  /// Resumes this incarnation chain has been through (0 = first boot).
  std::uint32_t resume_count() const { return resume_count_; }
  /// Round this incarnation came up at (0 on a fresh start).
  Round resumed_at() const { return resumed_at_; }
  std::uint64_t checkpoint_writes() const { return checkpoint_writes_; }
  /// Round of the last successful save_checkpoint(), or -1 when none.
  Round last_checkpoint_round() const { return last_checkpoint_round_; }
  /// Peer liveness: last round an accepted frame arrived from each peer
  /// (kNoRound = never heard). The supervisor reads this out of stats JSON
  /// to tell a resumed peer from a silent one.
  const std::vector<Round>& last_heard() const { return last_heard_; }

  /// Local invariants that must hold on a healthy node: every frame decoded,
  /// no unencodable payloads, no group-filter drops in the gossip stack.
  bool healthy() const;

  /// One-line stats JSON (the daemon's stats dump / `stats` control reply).
  std::string stats_json() const;

  /// Flushes the event log to disk (the daemon calls this per round).
  void flush_log();

  // -- sim::DeliveryListener --------------------------------------------------
  void on_rumor_delivered(ProcessId at, const RumorUid& uid, Round when,
                          std::span<const std::uint8_t> data) override;

 private:
  class PhaseSender;

  void tick();
  void run_send_phase();
  /// Final hop of one outbound datagram: optional LZ4 wrap, then the
  /// transport takes the handle (zero copy all the way to the socket).
  /// No-op while replaying a checkpoint journal (the bytes already went
  /// over the wire in the previous incarnation).
  void ship(ProcessId to, DatagramHandle d);
  void log_line(const std::string& line);
  /// Shared start()/resume() setup: log file, partitions, process stack.
  bool boot(const char* log_mode, std::string* error);
  /// Re-applies one journaled mutation at its original round during resume.
  void apply_journal_event(const CheckpointEvent& e);

  NodeConfig cfg_;
  Transport* transport_;
  FaultShim* shim_;
  std::shared_ptr<const core::CongosConfig> ccfg_;
  std::shared_ptr<const partition::PartitionSet> partitions_;
  std::unique_ptr<core::CongosProcess> process_;
  Round now_ = 0;
  std::vector<sim::Envelope> inbox_;
  std::vector<DatagramBuilder> builders_;  // one per destination, reused
  /// Backs the builders' datagram buffers; warm after the first rounds, so
  /// steady-state sends allocate nothing (tests/test_net_alloc.cpp).
  DatagramPool dgram_pool_;
  std::vector<std::uint8_t> compress_scratch_;
  std::vector<std::uint8_t> decompress_scratch_;
  std::FILE* log_ = nullptr;

  std::uint64_t frames_received_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t malformed_datagrams_ = 0;
  std::uint64_t misrouted_ = 0;
  std::uint64_t encode_errors_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t injections_ = 0;
  std::uint64_t datagrams_compressed_ = 0;
  std::uint64_t compressed_received_ = 0;
  /// Compressed datagrams dropped because this process lacks LZ4; nonzero
  /// means a capability mismatch in the cluster - flagged unhealthy.
  std::uint64_t unsupported_datagrams_ = 0;

  // -- crash/restart survival (DESIGN.md section 14) --------------------------
  /// Ordered history of every state mutation since round 0 (injections and
  /// accepted frames), carried across resumes; this *is* the durable state.
  std::vector<CheckpointEvent> journal_;
  bool journaling_ = false;
  /// True while resume() re-runs the journal: sends and log lines are
  /// suppressed, everything else executes exactly as it did live.
  bool replaying_ = false;
  std::uint32_t resume_count_ = 0;
  Round resumed_at_ = 0;
  std::uint64_t checkpoint_writes_ = 0;
  Round last_checkpoint_round_ = -1;
  bool clock_bound_ = false;
  std::int64_t epoch_ms_ = 0;
  std::int64_t round_ms_ = 0;
  std::vector<Round> last_heard_;
};

}  // namespace congos::net
