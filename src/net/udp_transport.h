// Real-wire backend of the Transport interface: one nonblocking UDP socket
// on 127.0.0.1 with per-peer send queues (DESIGN.md section 13).
//
// The shape follows the single-socket gossip daemons this subsystem is
// modeled on (ROADMAP item 2): bind one datagram socket, address peers by
// a static id -> port table, and drive everything from a poll(2) loop. The
// per-peer queues absorb transient EWOULDBLOCK backpressure - a datagram
// is only counted as a send_error when the kernel rejects it outright
// (e.g. ECONNREFUSED from a dead peer's port); queued datagrams are
// retried on every poll()/flush() until they leave the socket.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace congos::net {

class UdpTransport final : public Transport {
 public:
  UdpTransport() = default;
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds a nonblocking datagram socket to 127.0.0.1:`port` (0 = kernel
  /// picks a free port). Returns false and fills *error on failure.
  bool open(std::uint16_t port, std::string* error);
  void close();
  bool is_open() const { return fd_ >= 0; }

  int fd() const { return fd_; }
  std::uint16_t local_port() const { return local_port_; }

  /// Registers (or re-registers) peer `id` at 127.0.0.1:`port`. The reverse
  /// port -> id map provides the from_hint of inbound datagrams.
  void set_peer(ProcessId id, std::uint16_t port);
  std::size_t peer_count() const { return peers_.size(); }

  // -- Transport --------------------------------------------------------------

  bool send(ProcessId to, std::span<const std::uint8_t> datagram) override;
  std::size_t poll(int timeout_ms, DatagramSink& sink) override;
  const TransportStats& stats() const override;

  // -- event-loop building blocks (the daemon polls several fds jointly) -----

  /// Attempts to push every queued datagram out of the socket; stops at the
  /// first EWOULDBLOCK. Returns true when all queues drained.
  bool flush();
  /// Nonblocking receive loop: delivers every readable datagram to `sink`.
  std::size_t drain(DatagramSink& sink);
  /// True when flush() still has queued datagrams (poll for POLLOUT too).
  bool want_write() const { return queued_ > 0; }

 private:
  struct Peer {
    std::uint16_t port = 0;
    std::deque<std::vector<std::uint8_t>> queue;
  };

  bool send_now(std::uint16_t port, const std::vector<std::uint8_t>& datagram,
                bool* fatal);

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  TransportStats stats_;
  std::unordered_map<ProcessId, Peer> peers_;
  std::unordered_map<std::uint16_t, ProcessId> port_to_id_;
  std::size_t queued_ = 0;
  std::vector<std::uint8_t> recv_buf_;
};

}  // namespace congos::net
