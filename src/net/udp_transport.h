// Real-wire backend of the Transport interface: one nonblocking UDP socket
// on 127.0.0.1 with per-peer send queues (DESIGN.md section 13).
//
// The shape follows the single-socket gossip daemons this subsystem is
// modeled on (ROADMAP item 2): bind one datagram socket, address peers by
// a static id -> port table, and drive everything from a poll(2) loop. The
// per-peer queues absorb transient EWOULDBLOCK backpressure - a datagram
// is only counted as a send_error when the kernel rejects it outright
// (e.g. ECONNREFUSED from a dead peer's port); queued datagrams are
// retried on every poll()/flush() until they leave the socket.
//
// Datagram fast path (this PR's tentpole): by default the transport runs
// BATCHED - send() enqueues pooled buffer handles (zero copy) and flush()
// gathers up to kMaxBatch datagrams across all peers into one sendmmsg(2);
// drain() likewise pulls up to kMaxBatch datagrams per recvmmsg(2). The
// batched and single-syscall paths emit byte-identical per-peer streams
// (test_net.cpp proves it); batching is dropped permanently when the
// kernel lacks the calls (ENOSYS probe), switched off per-process with
// CONGOS_UDP_NO_BATCH=1, or per-transport with set_batching(false).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/datagram.h"
#include "net/transport.h"

namespace congos::net {

class UdpTransport : public Transport {
 public:
  /// Datagrams moved per kernel crossing on the batched path.
  static constexpr std::size_t kMaxBatch = 32;
  /// Default per-peer send-queue cap (drop-oldest beyond it).
  static constexpr std::size_t kDefaultQueueCap = 512;
  /// Default SO_SNDBUF/SO_RCVBUF request at open(): large enough that a
  /// full send phase burst fits without loopback drops.
  static constexpr int kDefaultSocketBufferBytes = 1 << 21;

  // Both defined in the .cpp where BatchScratch is complete (the defaulted
  // ctor must be able to destroy scratch_ during unwind).
  UdpTransport();
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds a nonblocking datagram socket to 127.0.0.1:`port` (0 = kernel
  /// picks a free port). Returns false and fills *error on failure.
  bool open(std::uint16_t port, std::string* error);
  void close();
  bool is_open() const { return fd_ >= 0; }

  int fd() const { return fd_; }
  std::uint16_t local_port() const { return local_port_; }

  /// Registers (or re-registers) peer `id` at 127.0.0.1:`port`. The reverse
  /// port -> id map provides the from_hint of inbound datagrams.
  void set_peer(ProcessId id, std::uint16_t port);
  std::size_t peer_count() const { return peers_.size(); }

  /// Toggles sendmmsg/recvmmsg batching (call after open()). Forced off on
  /// platforms without the calls and by CONGOS_UDP_NO_BATCH=1.
  void set_batching(bool on);
  bool batching() const { return batching_; }

  /// Per-peer send-queue cap; 0 = unbounded. Overflow drops the OLDEST
  /// queued datagram (the retransmit layer re-requests anything that
  /// mattered; the newest data is the most likely to still be useful).
  void set_queue_cap(std::size_t per_peer) { queue_cap_ = per_peer; }
  std::size_t queue_cap() const { return queue_cap_; }

  /// SO_SNDBUF/SO_RCVBUF request applied at the next open().
  void set_socket_buffer(int bytes) { socket_buffer_ = bytes; }

  // -- Transport --------------------------------------------------------------

  bool send(ProcessId to, std::span<const std::uint8_t> datagram) override;
  bool send(ProcessId to, DatagramHandle datagram) override;
  std::size_t poll(int timeout_ms, DatagramSink& sink) override;
  const TransportStats& stats() const override;

  // -- event-loop building blocks (the daemon polls several fds jointly) -----

  /// Attempts to push every queued datagram out of the socket. A
  /// backpressured peer no longer blocks the rest: the single-syscall path
  /// skips to the next peer's queue, the batched path gathers across peers
  /// by construction. Returns true when all queues drained.
  bool flush();
  /// Nonblocking receive loop: delivers every readable datagram to `sink`.
  std::size_t drain(DatagramSink& sink);
  /// True when flush() still has queued datagrams (poll for POLLOUT too).
  bool want_write() const { return queued_ > 0; }

 protected:
  enum class WireResult : std::uint8_t { kSent, kAgain, kFatal };

  /// One single-datagram wire write (the non-batched path). Virtual so
  /// tests can script backpressure and fatal outcomes deterministically -
  /// loopback UDP almost never surfaces either for real.
  virtual WireResult wire_send(std::uint16_t port, const std::uint8_t* data,
                               std::size_t len);

 private:
  /// FIFO of pooled handles built on a vector + head index instead of
  /// std::deque: a deque's chunk map churns allocations as elements cycle
  /// through, which would break the zero-alloc steady state the pool buys.
  /// The vector's capacity is reclaimed by compaction, never freed.
  struct HandleQueue {
    std::vector<DatagramHandle> items;
    std::size_t head = 0;

    std::size_t size() const { return items.size() - head; }
    bool empty() const { return head == items.size(); }
    DatagramHandle& front() { return items[head]; }
    void pop_front() {
      items[head].reset();  // release to the pool now, not at compaction
      if (++head == items.size()) {
        items.clear();
        head = 0;
      }
    }
    void push_back(DatagramHandle d) {
      if (head > 0 && items.size() == items.capacity()) {
        items.erase(items.begin(),
                    items.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      items.push_back(std::move(d));
    }
    void clear() {
      items.clear();
      head = 0;
    }
  };

  struct Peer {
    std::uint16_t port = 0;
    HandleQueue queue;
  };

  struct BatchScratch;  // mmsghdr/iovec/sockaddr arrays (udp_transport.cpp)

  /// Admission checks shared by both send() overloads; counts no_route /
  /// oversize and returns nullptr when the datagram can never go out.
  Peer* admit(ProcessId to, std::size_t len);
  void enqueue(Peer& peer, DatagramHandle d);
  void pop_sent(Peer& peer);
  bool flush_single();
  bool flush_batched();
  std::size_t drain_single(DatagramSink& sink);
  std::size_t drain_batched(DatagramSink& sink);

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  bool batching_ = false;  // decided at open(); see header comment
  std::size_t queue_cap_ = kDefaultQueueCap;
  int socket_buffer_ = kDefaultSocketBufferBytes;
  TransportStats stats_;
  std::unordered_map<ProcessId, Peer> peers_;
  std::unordered_map<std::uint16_t, ProcessId> port_to_id_;
  std::size_t queued_ = 0;
  std::vector<std::uint8_t> recv_buf_;
  /// Materializes span sends that have to queue (handle sends never copy).
  DatagramPool pool_;
  std::unique_ptr<BatchScratch> scratch_;
};

}  // namespace congos::net
