// Wall-clock round timing for the real-wire runtime (DESIGN.md section 13).
//
// The paper's global synchronous clock becomes a shared epoch: the cluster
// runner picks one wall-clock instant (milliseconds since the Unix epoch,
// a little in the future) and every daemon derives its round number as
// (now - epoch) / round_ms. Localhost clock agreement is what makes this
// a usable stand-in for the global clock; the slack between neighbouring
// daemons shows up as +-1 round of apparent link delay, which the
// retransmission layer already budgets for (max_link_delay).
#pragma once

#include <chrono>
#include <cstdint>

#include "common/types.h"

namespace congos::net {

/// Milliseconds since the Unix epoch, from the system (wall) clock - the
/// only clock whose zero point daemons on one host share.
inline std::int64_t wall_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

class RoundClock {
 public:
  RoundClock() = default;
  RoundClock(std::int64_t epoch_ms, std::int64_t round_ms)
      : epoch_ms_(epoch_ms), round_ms_(round_ms > 0 ? round_ms : 1) {}

  std::int64_t epoch_ms() const { return epoch_ms_; }
  std::int64_t round_ms() const { return round_ms_; }

  /// Round in progress at wall time `at_ms`; negative before the epoch
  /// (the daemon idles until round 0 starts).
  Round round_at(std::int64_t at_ms) const {
    const std::int64_t dt = at_ms - epoch_ms_;
    if (dt < 0) return -((-dt + round_ms_ - 1) / round_ms_);
    return dt / round_ms_;
  }

  /// Wall time round `r` begins.
  std::int64_t start_of(Round r) const { return epoch_ms_ + r * round_ms_; }

  /// Milliseconds from `at_ms` until the next round boundary (>= 1, so a
  /// poll timeout built from it always makes progress).
  std::int64_t ms_until_next(std::int64_t at_ms) const {
    const Round r = round_at(at_ms);
    const std::int64_t next = start_of(r + 1);
    return next > at_ms ? next - at_ms : 1;
  }

 private:
  std::int64_t epoch_ms_ = 0;
  std::int64_t round_ms_ = 20;
};

}  // namespace congos::net
