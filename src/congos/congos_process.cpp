#include "congos/congos_process.h"

#include <cmath>

#include "common/assert.h"
#include "partition/bit_partition.h"
#include "partition/random_partition.h"

namespace congos::core {

std::shared_ptr<const partition::PartitionSet> CongosProcess::build_partitions(
    std::size_t n, const CongosConfig& cfg) {
  Rng rng(cfg.partition_seed);
  if (cfg.tau <= 1) {
    return std::make_shared<const partition::PartitionSet>(
        partition::make_bit_partitions(n));
  }
  partition::RandomPartitionOptions opt;
  opt.tau = cfg.tau;
  opt.c = cfg.partition_c;
  return std::make_shared<const partition::PartitionSet>(
      partition::make_random_partitions(n, opt, rng).partitions);
}

bool CongosProcess::is_degenerate(std::size_t n, const CongosConfig& cfg) {
  if (!cfg.allow_degenerate) return false;
  const double log_n = std::max(1.0, std::log2(static_cast<double>(n)));
  return static_cast<double>(cfg.tau) >= static_cast<double>(n) / (log_n * log_n);
}

CongosProcess::CongosProcess(ProcessId id, std::shared_ptr<const CongosConfig> cfg,
                             std::shared_ptr<const partition::PartitionSet> partitions,
                             std::uint64_t seed, sim::DeliveryListener* listener,
                             ProcessBehavior behavior)
    : sim::Process(id),
      cfg_(std::move(cfg)),
      partitions_(std::move(partitions)),
      rng_(seed),
      listener_(listener),
      behavior_(behavior),
      degenerate_(false) {
  CONGOS_ASSERT(cfg_ != nullptr && partitions_ != nullptr);
  CONGOS_ASSERT(partitions_->count() > 0);
  degenerate_ = is_degenerate((*partitions_)[0].n(), *cfg_);
  build_services();
}

void CongosProcess::build_services() {
  const std::size_t n = (*partitions_)[0].n();
  const auto self = id();

  group_gossip_.clear();
  group_gossip_.reserve(partitions_->count());
  for (PartitionIndex l = 0; l < partitions_->count(); ++l) {
    const auto& part = (*partitions_)[l];
    gossip::GossipConfig gcfg;
    gcfg.tag = sim::ServiceTag{sim::ServiceKind::kGroupGossip, l};
    gcfg.universe = part.members(part.group_of(self));
    gcfg.fanout = cfg_->gossip_fanout;
    gcfg.strategy = cfg_->gossip_strategy;
    gcfg.graph_seed = cfg_->partition_seed ^ (static_cast<std::uint64_t>(l) << 8);
    group_gossip_.push_back(std::make_unique<gossip::ContinuousGossipService>(
        self, std::move(gcfg), &rng_,
        [this, l](Round now, const gossip::GossipRumor& r) {
          on_group_gossip_deliver(l, now, r);
        }));
  }

  gossip::GossipConfig acfg;
  acfg.tag = sim::ServiceTag{sim::ServiceKind::kAllGossip, 0};
  acfg.universe = DynamicBitset::full(n);
  acfg.fanout = cfg_->gossip_fanout;
  acfg.strategy = cfg_->gossip_strategy;
  acfg.graph_seed = cfg_->partition_seed ^ 0xa11ULL;
  all_gossip_ = std::make_unique<gossip::ContinuousGossipService>(
      self, std::move(acfg), &rng_,
      [this](Round now, const gossip::GossipRumor& r) { on_all_gossip_deliver(now, r); });

  ConfidentialGossipService::Hooks hooks;
  hooks.gossip_fragment = [this](PartitionIndex l, Round now, sim::PayloadPtr body,
                                 Round deadline_at) {
    const auto& part = (*partitions_)[l];
    group_gossip_[l]->inject(now, std::move(body), part.members(part.group_of(id())),
                             deadline_at);
  };
  hooks.proxy = [this](Round dline, PartitionIndex l) { return proxy(dline, l); };
  hooks.gd = [this](Round dline, PartitionIndex l) { return gd(dline, l); };
  cg_ = std::make_unique<ConfidentialGossipService>(
      self, cfg_.get(), partitions_.get(), degenerate_, &rng_, listener_,
      std::move(hooks));

  instances_.clear();
  pending_acks_.clear();  // queued acks are volatile state, lost on restart
}

CongosProcess::Instance& CongosProcess::instance(Round dline) {
  auto it = instances_.find(dline);
  if (it != instances_.end()) return it->second;

  Instance inst;
  inst.proxies.reserve(partitions_->count());
  inst.gds.reserve(partitions_->count());
  for (PartitionIndex l = 0; l < partitions_->count(); ++l) {
    const auto* part = &(*partitions_)[l];

    ProxyService::Hooks ph;
    ph.gossip_share = [this, l, part](Round now, sim::PayloadPtr body,
                                      Round deadline_at) {
      group_gossip_[l]->inject(now, std::move(body),
                               part->members(part->group_of(id())), deadline_at);
    };
    ph.return_partials = [this, l](Round now, std::vector<Fragment> partials) {
      cg_->on_proxy_return(now, l, std::move(partials));
    };
    ph.alive_since = [this] { return wakeup_; };
    inst.proxies.push_back(std::make_unique<ProxyService>(id(), l, part, dline,
                                                          cfg_.get(), &rng_,
                                                          std::move(ph)));

    GroupDistributionService::Hooks gh;
    gh.gossip_share = [this, l, part](Round now, sim::PayloadPtr body,
                                      Round deadline_at) {
      group_gossip_[l]->inject(now, std::move(body),
                               part->members(part->group_of(id())), deadline_at);
    };
    gh.all_gossip = [this](Round now, sim::PayloadPtr body, Round deadline_at) {
      all_gossip_->inject(now, std::move(body),
                          DynamicBitset::full(all_gossip_->universe().size()),
                          deadline_at);
    };
    gh.alive_since = [this] { return wakeup_; };
    inst.gds.push_back(std::make_unique<GroupDistributionService>(
        id(), l, part, dline, cfg_.get(), &rng_, std::move(gh)));
  }
  return instances_.emplace(dline, std::move(inst)).first->second;
}

ProxyService* CongosProcess::proxy(Round dline, PartitionIndex l) {
  return instance(dline).proxies[l].get();
}

GroupDistributionService* CongosProcess::gd(Round dline, PartitionIndex l) {
  return instance(dline).gds[l].get();
}

void CongosProcess::on_start(Round now) {
  wakeup_ = now;
  now_ = now;
}

void CongosProcess::on_restart(Round now) {
  // No durable storage: every service restarts from its initial state. The
  // process re-reads the global clock (`now`).
  wakeup_ = now;
  now_ = now;
  build_services();
}

void CongosProcess::inject(const sim::Rumor& rumor) {
  cg_->inject(rumor.injected_at, rumor);
}

void CongosProcess::send_phase(Round now, sim::Sender& out) {
  now_ = now;
  // Receipt acks queued during the previous receive phase go out first
  // (retransmission mode; empty otherwise).
  for (auto& a : pending_acks_) out.send(std::move(a));
  pending_acks_.clear();
  cg_->send_phase(now, out);
  for (auto& [dline, inst] : instances_) {
    for (auto& p : inst.proxies) p->send_phase(now, out);
    if (behavior_ == ProcessBehavior::kLazy) continue;  // freeloader: no GD work
    for (auto& g : inst.gds) g->send_phase(now, out);
  }
  for (auto& gg : group_gossip_) gg->send_phase(now, out);
  all_gossip_->send_phase(now, out);
}

void CongosProcess::receive_phase(Round now, std::span<const sim::Envelope> inbox) {
  now_ = now;
  for (const auto& e : inbox) {
    CONGOS_ASSERT(e.body != nullptr);
    switch (e.tag.kind) {
      case sim::ServiceKind::kGroupGossip:
        CONGOS_ASSERT(e.tag.partition < group_gossip_.size());
        group_gossip_[e.tag.partition]->on_envelope(now, e);
        break;
      case sim::ServiceKind::kAllGossip:
        all_gossip_->on_envelope(now, e);
        break;
      case sim::ServiceKind::kProxy: {
        if (e.body->kind() == sim::PayloadKind::kProxyRequest) {
          const auto& req = static_cast<const ProxyRequestPayload&>(*e.body);
          // A lazy process silently drops proxy work addressed to it (no
          // cache, no ack): the requester times it out as a failed proxy.
          if (behavior_ == ProcessBehavior::kLazy) break;
          proxy(req.dline, e.tag.partition)->on_request(now, req, e.from);
        } else if (e.body->kind() == sim::PayloadKind::kProxyAck) {
          const auto& ack = static_cast<const ProxyAckPayload&>(*e.body);
          proxy(ack.dline, e.tag.partition)->on_ack(now, e.from);
        } else {
          CONGOS_ASSERT_MSG(false, "unknown proxy payload");
        }
        break;
      }
      case sim::ServiceKind::kGroupDistribution: {
        if (e.body->kind() == sim::PayloadKind::kPartials) {
          const auto& partials = static_cast<const PartialsPayload&>(*e.body);
          cg_->on_partials(now, partials);
          if (cfg_->retransmit.enabled) {
            auto ack = partials_ack_pool_.acquire();
            ack->dline = partials.dline;
            pending_acks_.push_back(sim::Envelope{
                id(), e.from,
                sim::ServiceTag{sim::ServiceKind::kGroupDistribution, e.tag.partition},
                std::move(ack)});
          }
        } else if (e.body->kind() == sim::PayloadKind::kPartialsAck) {
          const auto& ack = static_cast<const PartialsAckPayload&>(*e.body);
          gd(ack.dline, e.tag.partition)->on_partials_ack(now, e.from);
        } else {
          CONGOS_ASSERT_MSG(false, "unknown group-distribution payload");
        }
        break;
      }
      case sim::ServiceKind::kFallback: {
        if (e.body->kind() == sim::PayloadKind::kDirectRumor) {
          const auto& direct = static_cast<const DirectRumorPayload&>(*e.body);
          cg_->on_direct(now, direct);
          if (cfg_->retransmit.enabled) {
            auto ack = direct_ack_pool_.acquire();
            ack->rumor = direct.rumor.uid;
            pending_acks_.push_back(sim::Envelope{
                id(), e.from, sim::ServiceTag{sim::ServiceKind::kFallback, 0},
                std::move(ack)});
          }
        } else if (e.body->kind() == sim::PayloadKind::kDirectAck) {
          const auto& ack = static_cast<const DirectAckPayload&>(*e.body);
          cg_->on_direct_ack(ack.rumor, e.from);
        } else {
          CONGOS_ASSERT_MSG(false, "unknown fallback payload");
        }
        break;
      }
      default:
        CONGOS_ASSERT_MSG(false, "unexpected service kind at CongosProcess");
    }
  }
}

void CongosProcess::on_group_gossip_deliver(PartitionIndex l, Round now,
                                            const gossip::GossipRumor& rumor) {
  CONGOS_ASSERT(rumor.body != nullptr);
  switch (rumor.body->kind()) {
    case sim::PayloadKind::kFragment:
      cg_->on_group_fragment(now, l,
                             static_cast<const FragmentBody&>(*rumor.body).fragment);
      return;
    case sim::PayloadKind::kProxyShare: {
      const auto& share = static_cast<const ProxyShareBody&>(*rumor.body);
      instance(share.dline).proxies[l]->on_share(now, share);
      return;
    }
    case sim::PayloadKind::kHitSetShare: {
      const auto& share = static_cast<const HitSetShareBody&>(*rumor.body);
      instance(share.dline).gds[l]->on_share(now, share);
      return;
    }
    default:
      CONGOS_ASSERT_MSG(false, "unknown GroupGossip rumor body");
  }
}

void CongosProcess::on_all_gossip_deliver(Round now, const gossip::GossipRumor& rumor) {
  CONGOS_ASSERT_MSG(rumor.body != nullptr &&
                        rumor.body->kind() == sim::PayloadKind::kDistributionReport,
                    "unknown AllGossip rumor body");
  cg_->on_report(now, static_cast<const DistributionReportBody&>(*rumor.body));
}

namespace {
/// Value copies of every mutable piece of a CongosProcess. Service copies
/// keep their hooks (std::functions bound to the host process) and their
/// Rng*/config pointers, all of which stay valid because restore() only
/// happens on the process that produced the snapshot.
struct CongosProcessSnapshot final : sim::ProcessSnapshot {
  Rng rng{0};
  Round wakeup = 0;
  Round now = 0;
  std::vector<gossip::ContinuousGossipService> group_gossip;
  std::unique_ptr<gossip::ContinuousGossipService> all_gossip;
  struct Inst {
    std::vector<ProxyService> proxies;
    std::vector<GroupDistributionService> gds;
  };
  std::map<Round, Inst> instances;
  std::unique_ptr<ConfidentialGossipService> cg;
  std::vector<sim::Envelope> pending_acks;
};
}  // namespace

std::unique_ptr<sim::ProcessSnapshot> CongosProcess::snapshot() const {
  auto s = std::make_unique<CongosProcessSnapshot>();
  s->rng = rng_;
  s->wakeup = wakeup_;
  s->now = now_;
  s->group_gossip.reserve(group_gossip_.size());
  for (const auto& gg : group_gossip_) s->group_gossip.push_back(*gg);
  s->all_gossip = std::make_unique<gossip::ContinuousGossipService>(*all_gossip_);
  for (const auto& [dline, inst] : instances_) {
    auto& copy = s->instances[dline];
    copy.proxies.reserve(inst.proxies.size());
    for (const auto& p : inst.proxies) copy.proxies.push_back(*p);
    copy.gds.reserve(inst.gds.size());
    for (const auto& g : inst.gds) copy.gds.push_back(*g);
  }
  s->cg = std::make_unique<ConfidentialGossipService>(*cg_);
  s->pending_acks = pending_acks_;  // shallow payload sharing is fine: sent
                                    // payloads are immutable once queued
  return s;
}

bool CongosProcess::restore(const sim::ProcessSnapshot& snap, Round /*now*/) {
  const auto* s = dynamic_cast<const CongosProcessSnapshot*>(&snap);
  if (s == nullptr || s->group_gossip.size() != group_gossip_.size()) return false;
  rng_ = s->rng;
  wakeup_ = s->wakeup;
  now_ = s->now;
  for (std::size_t l = 0; l < group_gossip_.size(); ++l) {
    group_gossip_[l] =
        std::make_unique<gossip::ContinuousGossipService>(s->group_gossip[l]);
  }
  all_gossip_ = std::make_unique<gossip::ContinuousGossipService>(*s->all_gossip);
  // Instances created after the snapshot (later deadline classes) are
  // discarded wholesale; the snapshot's set is rebuilt exactly.
  instances_.clear();
  for (const auto& [dline, inst] : s->instances) {
    Instance live;
    live.proxies.reserve(inst.proxies.size());
    for (const auto& p : inst.proxies) {
      live.proxies.push_back(std::make_unique<ProxyService>(p));
    }
    live.gds.reserve(inst.gds.size());
    for (const auto& g : inst.gds) {
      live.gds.push_back(std::make_unique<GroupDistributionService>(g));
    }
    instances_.emplace(dline, std::move(live));
  }
  cg_ = std::make_unique<ConfidentialGossipService>(*s->cg);
  pending_acks_ = s->pending_acks;
  return true;
}

std::uint64_t CongosProcess::filter_drops() const {
  std::uint64_t total = all_gossip_->filter_drops();
  for (const auto& gg : group_gossip_) total += gg->filter_drops();
  return total;
}

std::uint64_t CongosProcess::duplicates_suppressed() const {
  std::uint64_t total = all_gossip_->duplicates_suppressed();
  for (const auto& gg : group_gossip_) total += gg->duplicates_suppressed();
  return total;
}

}  // namespace congos::core
